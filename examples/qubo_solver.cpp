// Generic QUBO/Ising solver CLI: loads a GSet graph (--gset FILE, solved
// as Max-Cut) or a sparse J/h coefficient file (--jh FILE, solved as a
// generic Ising model) and anneals it on the noisy digital-CIM
// substrate through the core::CimSolver front-end.
//
//   ./qubo_solver --gset tests/qubo_fixtures/petersen.gset
//   ./qubo_solver --jh tests/qubo_fixtures/chain4.jh --seed 3
//       --sweeps 800 --strategy index-blocks --block 32 --warm-dir /tmp/ws
//
// --strategy picks the window-clustering hook (chromatic, index-blocks,
// bfs-blocks, degree-major); --warm-dir enables the persistent spin
// warm-start store, so a second run on the same instance starts from the
// stored best assignment.
#include <cstdio>
#include <exception>
#include <string>

#include "core/solver.hpp"
#include "ising/generic.hpp"
#include "qubo/io.hpp"
#include "util/args.hpp"
#include "util/units.hpp"

namespace {

cim::core::SolverConfig make_config(const cim::util::Args& args) {
  cim::core::SolverConfig config;
  config.schedule.total_iterations =
      static_cast<std::uint32_t>(args.get_int("sweeps", 400));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.group_block =
      static_cast<std::uint32_t>(args.get_int("block", 64));
  config.warm_start_dir = args.get_or("warm-dir", "");
  config.compute_reference = false;
  config.compute_ppa = false;
  const std::string strategy = args.get_or("strategy", "chromatic");
  const auto parsed = cim::ising::parse_group_strategy(strategy);
  if (!parsed) {
    throw cim::ConfigError("unknown --strategy '" + strategy +
                           "' (chromatic, index-blocks, bfs-blocks, "
                           "degree-major)");
  }
  config.group_strategy = *parsed;
  return config;
}

void print_warm_start(bool warm_started) {
  std::printf("warm start: %s\n",
              warm_started ? "hit (stored assignment seeded the anneal)"
                           : "cold");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cim::util::Args args(argc, argv);
    if (args.has("gset") == args.has("jh")) {
      std::fprintf(stderr,
                   "usage: %s (--gset FILE | --jh FILE) [--seed N] "
                   "[--sweeps N] [--strategy NAME] [--block N] "
                   "[--warm-dir DIR]\n",
                   args.program().c_str());
      return 2;
    }
    const auto config = make_config(args);
    const cim::core::CimSolver solver(config);

    if (args.has("gset")) {
      const auto problem = cim::qubo::load_gset_file(*args.get("gset"));
      std::printf("Max-Cut '%s': %zu vertices, %zu edges, total weight "
                  "%lld\n",
                  problem.name().c_str(), problem.size(),
                  problem.edge_count(), problem.total_weight());
      const auto outcome = solver.solve_maxcut(problem);
      print_warm_start(outcome.warm_started);
      std::printf("best cut %lld (%zu flips, %llu update cycles) in %s\n",
                  outcome.cut, outcome.anneal.flips,
                  static_cast<unsigned long long>(
                      outcome.anneal.update_cycles),
                  cim::util::format_seconds(outcome.solve_wall_seconds)
                      .c_str());
      return 0;
    }

    const auto model = cim::qubo::load_jh_file(*args.get("jh"));
    std::printf("Ising '%s': %zu spins, %zu couplings, %zu fields\n"
                "fingerprint %s\n",
                model.name().c_str(), model.size(),
                model.couplings().size(), model.fields().size(),
                model.fingerprint().c_str());
    const auto outcome = solver.solve_ising(model);
    print_warm_start(outcome.warm_started);
    std::printf(
        "best energy %.6g (hw units %lld%s) across %zu window groups in "
        "%s\n",
        outcome.energy, outcome.energy_hw,
        outcome.anneal.exact_mapping ? ", exact mapping"
                                     : ", quantised dynamics",
        outcome.anneal.group_count,
        cim::util::format_seconds(outcome.solve_wall_seconds).c_str());
    std::printf("spins:");
    for (const auto spin : outcome.anneal.best_spins) {
      std::printf(" %c", spin > 0 ? '+' : '-');
    }
    std::printf("\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
