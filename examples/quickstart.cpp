// Quickstart: solve one TSP instance with the digital-CIM clustered
// annealer and print the solution quality and the hardware projection.
//
//   ./quickstart                       # default: pcb3038 mimic, p_max=3
//   ./quickstart --instance rl5915 --p 4 --seed 7
//   CIMANNEAL_TSPLIB_DIR=/data/tsplib ./quickstart --instance pcb3038
#include <cstdio>
#include <exception>

#include "core/report.hpp"
#include "core/solver.hpp"
#include "tsp/generator.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  try {
    const cim::util::Args args(argc, argv);
    const std::string name = args.get_or("instance", "pcb3038");
    cim::core::SolverConfig config;
    config.p_max = static_cast<std::uint32_t>(args.get_int("p", 3));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    std::printf("Loading instance %s ...\n", name.c_str());
    const cim::tsp::Instance instance = cim::tsp::make_paper_instance(name);
    std::printf("  %zu cities (%s)\n", instance.size(),
                instance.comment().c_str());

    const cim::core::CimSolver solver(config);
    std::printf("Solving with p_max=%u, %s noise ...\n", config.p_max,
                cim::anneal::noise_mode_name(config.noise));
    const auto outcome = solver.solve(instance);

    cim::util::Table table({"metric", "value"});
    table.set_title("cimanneal quickstart: " + name);
    table.add_row({"tour length", std::to_string(outcome.tour_length)});
    if (outcome.reference_length) {
      table.add_row({"reference length",
                     std::to_string(*outcome.reference_length)});
    }
    if (outcome.optimal_ratio) {
      table.add_row({"optimal ratio",
                     cim::util::Table::num(*outcome.optimal_ratio, 3)});
    }
    table.add_row({"hierarchy depth",
                   std::to_string(outcome.anneal.hierarchy_depth)});
    table.add_row({"swap attempts",
                   std::to_string(outcome.anneal.hw.swap_attempts)});
    table.add_row({"host solve time",
                   cim::util::format_seconds(outcome.solve_wall_seconds)});
    if (outcome.ppa) {
      const auto& ppa = *outcome.ppa;
      table.add_separator();
      table.add_row({"SRAM capacity",
                     cim::util::format_bits(
                         static_cast<double>(ppa.layout.capacity_bits))});
      table.add_row({"chip area",
                     cim::util::format_area(ppa.chip_area)});
      table.add_row({"annealing time",
                     cim::util::format_seconds(ppa.latency.total().seconds())});
      table.add_row({"energy-to-solution",
                     cim::util::format_joules(ppa.energy.total())});
      table.add_row({"average power",
                     cim::util::format_watts(ppa.average_power.watts())});
    }
    table.print();

    // Machine-readable report on request: --json report.json
    if (const auto path = args.get("json"); path && !path->empty()) {
      cim::core::outcome_to_json(outcome, name).save(*path);
      std::printf("JSON report written to %s\n", path->c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
