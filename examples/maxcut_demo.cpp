// Max-Cut on the noisy-CIM substrate: the problem class of the paper's
// Table III competitors, solved with the same weight-noise annealing.
// Compares the CIM annealer, parallel tempering and classical greedy on a
// G-set-style random graph, and reports the hardware activity.
//
//   ./maxcut_demo --n 512 --p 0.01 --seed 1
#include <algorithm>
#include <cstdio>
#include <exception>

#include "anneal/maxcut_annealer.hpp"
#include "anneal/tempering.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  try {
    const cim::util::Args args(argc, argv);
    const auto n = static_cast<std::size_t>(args.get_int("n", 512));
    const double p = args.get_double("p", 0.01);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    const auto problem = cim::ising::random_maxcut(n, p, seed, 3);
    std::printf("Max-Cut: %zu vertices, %zu edges, max degree %u, total "
                "weight %lld\n",
                problem.size(), problem.edge_count(), problem.max_degree(),
                problem.total_weight());

    cim::util::Table table({"solver", "best cut", "host time"});

    cim::util::Timer timer;
    cim::anneal::MaxCutConfig config;
    config.seed = seed;
    config.record_trace = true;
    const auto cim_result =
        cim::anneal::MaxCutAnnealer(config).solve(problem);
    table.add_row({"CIM noisy-weight annealer",
                   std::to_string(cim_result.best_cut),
                   cim::util::format_seconds(timer.seconds())});

    timer.restart();
    cim::anneal::TemperingConfig pt;
    pt.seed = seed;
    const long long pt_cut =
        cim::anneal::ParallelTempering(pt).solve_maxcut(problem);
    table.add_row({"parallel tempering (8 replicas)",
                   std::to_string(pt_cut),
                   cim::util::format_seconds(timer.seconds())});

    timer.restart();
    long long greedy = 0;
    for (std::uint64_t restart = 0; restart < 8; ++restart) {
      greedy = std::max(greedy,
                        cim::ising::greedy_maxcut(problem, restart));
    }
    table.add_row({"greedy local search (x8)", std::to_string(greedy),
                   cim::util::format_seconds(timer.seconds())});
    table.print();

    std::printf(
        "\nhardware activity (CIM annealer): %llu MACs, %llu pseudo-read "
        "flips, %llu update cycles across %zu colour groups\n",
        static_cast<unsigned long long>(cim_result.storage.macs),
        static_cast<unsigned long long>(
            cim_result.storage.pseudo_read_flips),
        static_cast<unsigned long long>(cim_result.update_cycles),
        cim_result.color_count);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
