// End-user CLI: solve a TSPLIB file (or a named synthetic instance) with
// the CIM annealer, compare against the classical baselines, and write the
// tour out. The intro's motivating scenario: PCB drill-path optimisation —
// thousands of holes whose visiting order is a TSP.
//
//   ./tsplib_solver path/to/board.tsp --out tour.txt
//   ./tsplib_solver --instance pcb3038 --p 3 --seed 7
//   ./tsplib_solver --instance pcb442 --warm-start-dir .cim-store
//     (re-solves of the same board start from the stored best tour)
//   ./tsplib_solver --instance pcb442 --telemetry-out telem.json
//     (writes telem.json + telem.trace.json — load the latter in
//      chrome://tracing or ui.perfetto.dev)
#include <cstdio>
#include <exception>
#include <fstream>

#include "core/solver.hpp"
#include "heuristics/construct.hpp"
#include "heuristics/sa_baseline.hpp"
#include "tsp/generator.hpp"
#include "tsp/tour_io.hpp"
#include "tsp/tsplib.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  try {
    const cim::util::Args args(argc, argv);

    // Load from file (positional arg) or by instance name.
    const cim::tsp::Instance instance = [&] {
      if (!args.positional().empty()) {
        std::printf("loading TSPLIB file %s\n",
                    args.positional().front().c_str());
        return cim::tsp::load_tsplib(args.positional().front());
      }
      const std::string name = args.get_or("instance", "pcb3038");
      std::printf("generating instance %s\n", name.c_str());
      return cim::tsp::make_paper_instance(name);
    }();
    std::printf("%zu cities, metric %s\n", instance.size(),
                cim::geo::metric_name(instance.metric()).c_str());

    cim::core::SolverConfig config;
    config.p_max = static_cast<std::uint32_t>(args.get_int("p", 3));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    config.telemetry_out = args.get_or("telemetry-out", "");
    config.warm_start_dir = args.get_or("warm-start-dir", "");

    cim::util::Table table(
        {"solver", "tour length", "vs reference", "host time"});

    // Classical baselines for context.
    const cim::util::Timer t_ref;
    const auto outcome = cim::core::CimSolver(config).solve(instance);
    const long long reference =
        outcome.reference_length.value_or(outcome.tour_length);

    const auto add = [&](const std::string& label, long long length,
                         double seconds) {
      table.add_row({label, std::to_string(length),
                     cim::util::Table::num(
                         static_cast<double>(length) /
                             static_cast<double>(reference),
                         3),
                     cim::util::format_seconds(seconds)});
    };

    cim::util::Timer t;
    const auto nn = cim::heuristics::nearest_neighbor(instance);
    add("nearest neighbour", nn.length(instance), t.seconds());

    t.restart();
    cim::heuristics::SaOptions sa;
    sa.sweeps = 100;
    const auto sa_result =
        cim::heuristics::simulated_annealing(instance, nn, sa);
    add("CPU simulated annealing", sa_result.final_length, t.seconds());

    add("reference (greedy+2opt+or-opt)", reference, t_ref.seconds());
    add("CIM clustered annealer", outcome.tour_length,
        outcome.solve_wall_seconds);
    table.print();

    if (outcome.ppa) {
      std::printf(
          "hardware projection: %s SRAM, %s, solution in %s at %s\n",
          cim::util::format_bits(
              static_cast<double>(outcome.ppa->layout.capacity_bits))
              .c_str(),
          cim::util::format_area(outcome.ppa->chip_area).c_str(),
          cim::util::format_seconds(outcome.ppa->latency.total().seconds()).c_str(),
          cim::util::format_watts(outcome.ppa->average_power.watts()).c_str());
    }

    if (!config.telemetry_out.empty()) {
      std::printf("telemetry written to %s and %s\n",
                  config.telemetry_out.c_str(),
                  cim::core::telemetry_trace_path(config.telemetry_out)
                      .c_str());
    }

    if (!config.warm_start_dir.empty()) {
      std::printf("warm start: %s (store at %s)\n",
                  outcome.warm_started ? "hit" : "cold",
                  config.warm_start_dir.c_str());
    }

    if (const auto out = args.get("out"); out && !out->empty()) {
      cim::tsp::save_tour(outcome.anneal.tour, instance.name() + ".tour",
                          *out);
      std::printf("tour written to %s\n", out->c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
