// Hardware-level walkthrough on the bit-exact backend: solve a small
// instance with the faithful 14T-cell model and report what the silicon
// would have done — per-level swap/MAC activity, pseudo-read corruption per
// schedule epoch, dataflow volumes, and the convergence trace.
//
//   ./hardware_trace --instance pcb300
#include <cstdio>
#include <exception>

#include "anneal/clustered_annealer.hpp"
#include "cim/pipeline.hpp"
#include "noise/monte_carlo.hpp"
#include "tsp/generator.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  try {
    const cim::util::Args args(argc, argv);
    const std::string name = args.get_or("instance", "pcb300");
    const auto instance = cim::tsp::make_paper_instance(name);
    std::printf("bit-level hardware trace: %s (%zu cities)\n", name.c_str(),
                instance.size());

    // The schedule the silicon runs (§V).
    cim::anneal::AnnealerConfig config;
    config.backend = cim::anneal::BackendKind::kBitLevel;
    config.record_trace = true;
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const cim::noise::AnnealSchedule schedule(config.schedule);
    std::printf("schedule: %s\n", schedule.describe().c_str());

    // Per-epoch error rates the pseudo-read injects.
    const cim::noise::SramCellModel cell_model(config.sram);
    cim::util::Table epochs({"epoch", "V_DD", "noisy LSBs",
                             "weight-bit error rate"});
    epochs.set_title("annealing schedule epochs");
    for (std::size_t e = 0; e < schedule.epochs(); ++e) {
      const auto phase = schedule.at(e * config.schedule.iterations_per_step);
      epochs.add_row(
          {std::to_string(e),
           cim::util::Table::num(phase.vdd * 1000.0, 0) + " mV",
           std::to_string(phase.noisy_lsbs),
           cim::util::Table::percent(
               cell_model.expected_error_rate(phase.vdd), 2)});
    }
    epochs.print();

    const cim::anneal::ClusteredAnnealer annealer(config);
    const auto result = annealer.solve(instance);

    cim::util::Table levels({"level", "clusters", "swap attempts",
                             "accepted", "uphill", "hw cycles",
                             "ring length"});
    levels.set_title("hierarchical annealing, top level first");
    for (const auto& level : result.levels) {
      levels.add_row({std::to_string(level.level),
                      std::to_string(level.clusters),
                      std::to_string(level.swaps_attempted),
                      std::to_string(level.swaps_accepted),
                      std::to_string(level.uphill_accepted),
                      std::to_string(level.update_cycles),
                      cim::util::Table::num(level.ring_length_after, 0)});
    }
    levels.print();

    cim::util::Table hw({"hardware activity", "count"});
    const auto& activity = result.hw;
    hw.add_row({"window MACs", std::to_string(activity.storage.macs)});
    hw.add_row({"weight bit-cells read",
                std::to_string(activity.storage.mac_bit_reads)});
    hw.add_row({"write-back events",
                std::to_string(activity.storage.writeback_events)});
    hw.add_row({"bit-cells written",
                std::to_string(activity.storage.writeback_bits)});
    hw.add_row({"pseudo-read flips",
                std::to_string(activity.storage.pseudo_read_flips)});
    hw.add_row({"inter-array edge bits",
                std::to_string(activity.dataflow.edge_bits_transferred())});
    hw.add_row({"downstream / upstream transfers",
                std::to_string(activity.dataflow.downstream_transfers()) +
                    " / " +
                    std::to_string(activity.dataflow.upstream_transfers())});
    hw.add_row({"input-register shifts",
                std::to_string(activity.dataflow.input_shift_events())});
    hw.print();

    // Stage-level view of one swap update (Fig. 5(a)).
    const cim::hw::PipelineModel pipe(
        cim::hw::WindowShape::hardware(config.clustering.p));
    std::printf("\nswap-update pipeline (p_max=%zu): %zu stages [",
                static_cast<std::size_t>(config.clustering.p),
                pipe.depth());
    for (std::size_t s = 0; s < pipe.stages().size(); ++s) {
      std::printf("%s%s", s ? " " : "",
                  cim::hw::stage_name(pipe.stages()[s].kind));
    }
    std::printf("], MAC latency %llu cy, update latency %llu cy at issue "
                "rate 1/cy\n",
                static_cast<unsigned long long>(pipe.mac_latency()),
                static_cast<unsigned long long>(pipe.update_latency()));

    std::printf("\nlevel-0 convergence (ring length every 50 iterations):\n");
    for (std::size_t i = 0; i < result.trace.size(); i += 50) {
      std::printf("  iter %3zu: %.0f\n", i, result.trace[i]);
    }
    std::printf("final tour length: %lld\n", result.length);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
