// Design-space exploration: sweep the cluster strategy and p_max on one
// instance and print the quality / capacity / latency / energy trade-off —
// the workflow an architect would run before freezing the hardware
// configuration (paper §V.A).
//
//   ./design_space --instance rl5915 --seeds 3
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "tsp/generator.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

struct SweepPoint {
  const char* label;
  cim::cluster::Strategy strategy;
  std::uint32_t p;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const cim::util::Args args(argc, argv);
    const std::string name = args.get_or("instance", "pcb3038");
    const auto seeds =
        static_cast<std::uint64_t>(args.get_int("seeds", 2));

    const auto instance = cim::tsp::make_paper_instance(name);
    std::printf("design-space exploration on %s (%zu cities), %llu seeds\n",
                name.c_str(), instance.size(),
                static_cast<unsigned long long>(seeds));

    const std::vector<SweepPoint> sweep{
        {"unlimited (sw only)", cim::cluster::Strategy::kUnlimited, 3},
        {"fixed p=2", cim::cluster::Strategy::kFixed, 2},
        {"fixed p=3", cim::cluster::Strategy::kFixed, 3},
        {"fixed p=4", cim::cluster::Strategy::kFixed, 4},
        {"semi-flex p_max=2", cim::cluster::Strategy::kSemiFlexible, 2},
        {"semi-flex p_max=3", cim::cluster::Strategy::kSemiFlexible, 3},
        {"semi-flex p_max=4", cim::cluster::Strategy::kSemiFlexible, 4},
    };

    cim::util::Table table({"configuration", "mean ratio", "capacity",
                            "chip area", "anneal time", "energy",
                            "depth"});
    table.set_title("quality vs hardware cost");
    for (const auto& point : sweep) {
      cim::util::RunningStats ratio;
      std::optional<cim::ppa::PpaReport> ppa;
      std::size_t depth = 0;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        cim::core::SolverConfig config;
        config.strategy = point.strategy;
        config.p_max = point.p;
        config.seed = seed;
        const auto outcome = cim::core::CimSolver(config).solve(instance);
        if (outcome.optimal_ratio) ratio.add(*outcome.optimal_ratio);
        if (seed == 1) {
          ppa = outcome.ppa;
          depth = outcome.anneal.hierarchy_depth;
        }
      }
      const bool hw = point.strategy != cim::cluster::Strategy::kUnlimited;
      table.add_row(
          {point.label, cim::util::Table::num(ratio.mean(), 3),
           hw && ppa ? cim::util::format_bits(static_cast<double>(
                           ppa->layout.capacity_bits))
                     : "n/a",
           hw && ppa ? cim::util::format_area(ppa->chip_area)
                     : "n/a",
           ppa ? cim::util::format_seconds(ppa->latency.total().seconds()) : "n/a",
           ppa ? cim::util::format_joules(ppa->energy.total()) : "n/a",
           std::to_string(depth)});
    }
    table.add_footnote(
        "paper recommendation: semi-flex p_max=3 — close-to-best quality "
        "at moderate cost (Table I, Fig. 7)");
    table.print();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
