// Fig. 1: required memory capacity vs. TSP scale for the three
// formulations — naive PBM O(N⁴), clustered O(N²) [3], and this work's
// compact digital-CIM mapping O(N).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "ppa/capacity.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using cim::util::Table;
  using cim::util::format_bits;
  cim::bench::print_header("Fig. 1 — memory capacity vs. TSP scale",
                           "paper Fig. 1 (O(N^4) vs O(N^2) vs O(N))");

  const cim::ppa::CapacityModel cap;
  constexpr double kP = 3.0;  // p_max = 3 operating point

  Table table({"N cities", "naive O(N^4)", "clustered O(N^2)",
               "this work O(N)", "reduction vs naive"});
  table.set_title("required weight memory (8-bit weights)");

  cim::util::CsvWriter csv({"n", "naive_bits", "clustered_bits",
                            "compact_bits"});
  for (const double n : {10.0, 30.0, 100.0, 300.0, 1e3, 3e3, 1e4, 3e4,
                         85900.0, 1e5}) {
    const double naive = cap.bits(cap.naive_weights(n));
    const double clustered = cap.bits(cap.clustered_weights(n, kP));
    const double compact = cap.bits(cap.compact_weights_semiflex(n, kP));
    table.add_row({Table::integer(static_cast<long long>(n)),
                   format_bits(naive), format_bits(clustered),
                   format_bits(compact),
                   Table::sci(naive / compact, 1)});
    csv.add_row({Table::num(n, 0), Table::sci(naive, 6),
                 Table::sci(clustered, 6), Table::sci(compact, 6)});
  }
  table.add_footnote(
      "paper anchor: pla85900 (N=85900) needs 4e20 b naive but 46.4 Mb "
      "compact");
  table.add_footnote("series exported to fig1_capacity.csv");
  table.print();
  csv.save("fig1_capacity.csv");

  // The paper's headline check, printed explicitly.
  const double flagship =
      cap.bits(cap.compact_weights_semiflex(85900.0, 3.0));
  std::printf("pla85900 @ p_max=3: %s (paper: 46.4 Mb)\n",
              format_bits(flagship).c_str());
  return 0;
}
