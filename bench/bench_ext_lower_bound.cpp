// Extension bench: certified optimality gaps. The synthetic instances
// have no published optima, so the optimal ratios elsewhere are measured
// against a heuristic reference; this harness brackets that reference
// with the Held–Karp lower bound, certifying how much the reference can
// possibly overstate quality (EXPERIMENTS.md deviation note 1).
#include <cstdio>

#include "anneal/clustered_annealer.hpp"
#include "bench_common.hpp"
#include "heuristics/lower_bound.hpp"
#include "heuristics/reference.hpp"
#include "tsp/generator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "Extension — certified bounds on the quality methodology",
      "Held-Karp 1-tree lower bound brackets the heuristic reference: "
      "bound <= optimum <= reference");

  const std::vector<std::string> datasets =
      cim::bench::full_scale()
          ? std::vector<std::string>{"pcb1173", "rl1304", "geo1500",
                                     "pcb3038"}
          : std::vector<std::string>{"pcb1173", "rl1304", "geo1500"};

  Table table({"dataset", "HK lower bound", "reference tour",
               "ref/bound (cert. gap)", "cim tour", "ratio vs ref",
               "ratio vs bound", "time"});
  for (const auto& name : datasets) {
    const cim::util::Timer timer;
    const auto inst = cim::tsp::make_paper_instance(name);
    const auto reference = cim::heuristics::compute_reference(inst);
    const auto lb = cim::heuristics::held_karp_lower_bound(inst);

    cim::anneal::AnnealerConfig config;
    config.clustering.p = 3;
    config.seed = 3;
    const auto result = cim::anneal::ClusteredAnnealer(config).solve(inst);

    const double ref = static_cast<double>(reference.length);
    const double cim_len = static_cast<double>(result.length);
    table.add_row({name, Table::num(lb.bound, 0),
                   Table::integer(reference.length),
                   Table::num(ref / lb.bound, 4),
                   Table::integer(result.length),
                   Table::num(cim_len / ref, 3),
                   Table::num(cim_len / lb.bound, 3),
                   Table::num(timer.seconds(), 1) + " s"});
  }
  table.add_footnote(
      "'ref/bound' certifies the reference is within that factor of the "
      "true optimum — so every optimal ratio reported elsewhere is "
      "understated by at most that factor");
  table.print();
  return 0;
}
