// Table III: comparison with state-of-the-art scalable annealers. The
// competitor rows are published silicon numbers; "this design" is computed
// from our PPA models at the flagship design point (pla85900, p_max=3),
// with both physical and functionally normalised per-weight-bit metrics.
#include <cstdio>

#include "bench_common.hpp"
#include "ppa/maxcut_ppa.hpp"
#include "ppa/report.hpp"
#include "ppa/sota.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using cim::util::Table;
  using namespace cim::util;
  cim::bench::print_header(
      "Table III — comparison with SOTA scalable annealers",
      "paper Table III: >10^13x improvement on functionally normalised "
      "area and power");

  cim::ppa::DesignPoint point;
  point.instance_name = "pla85900";
  point.n_cities = 85900;
  point.p = 3;
  const auto report = cim::ppa::analytic_report(point);
  const auto row = cim::ppa::this_design_row(report);

  Table table({"design", "technology", "problem", "#spins", "weight mem",
               "chip area", "chip power", "area/bit", "power/bit"});
  for (const auto& entry : cim::ppa::sota_annealers()) {
    table.add_row(
        {entry.name, entry.technology, entry.problem,
         Table::sci(entry.spins, 1), format_bits(entry.weight_bits),
         Table::num(entry.chip_area_mm2, 2) + " mm^2",
         entry.power_w ? format_watts(*entry.power_w) : "n/a",
         Table::num(entry.area_per_bit().um2(), 1) + " um^2",
         entry.power_per_bit_w()
             ? format_watts(*entry.power_per_bit_w(), 1)
             : "n/a"});
  }
  table.add_separator();
  table.add_row({"this design (physical)", "16/14nm CMOS", "TSP",
                 Table::sci(row.physical_spins, 2),
                 format_bits(row.physical_weight_bits),
                 Table::num(row.chip_area.mm2(), 1) + " mm^2",
                 format_watts(row.power),
                 Table::num(row.physical_area_per_bit().um2(), 2) + " um^2",
                 format_watts(row.physical_power_per_bit_w(), 1)});
  table.add_row({"this design (functional)", "16/14nm CMOS", "TSP",
                 Table::sci(row.functional_spins, 2),
                 format_bits(row.functional_weight_bits),
                 Table::num(row.chip_area.mm2(), 1) + " mm^2",
                 format_watts(row.power),
                 Table::sci(row.functional_area_per_bit().um2(), 1) + " um^2",
                 Table::sci(row.functional_power_per_bit_w() * 1e9, 1) +
                     " nW"});
  // Like-for-like reference row: a 512-spin all-to-all Max-Cut macro
  // (STATICA's workload shape) built from this work's 14T cell at 16 nm.
  const auto macro = cim::ppa::maxcut_macro_report(512);
  table.add_row({"this cell, Max-Cut 512*", "16/14nm CMOS", "Max-Cut",
                 Table::sci(static_cast<double>(macro.spins), 1),
                 format_bits(macro.capacity_bits),
                 Table::num(macro.area.mm2(), 2) + " mm^2",
                 format_watts(macro.power),
                 Table::num(macro.area_per_bit().um2(), 2) + " um^2",
                 format_watts(macro.power_per_bit_w(), 1)});
  table.add_footnote(
      "paper: physical 0.94 um^2/bit and 9.3 nW/bit; functional "
      "normalisation ~1e-13 um^2/bit (>1e13x better than competitors)");
  table.add_footnote(
      "* extension row: an all-to-all 512-spin Max-Cut macro built from "
      "the same 14T cell/16nm constants, for a like-for-like workload "
      "comparison with STATICA");
  table.print();

  // Headline improvement factors.
  double best_area = 1e300;
  double best_power = 1e300;
  for (const auto& entry : cim::ppa::sota_annealers()) {
    best_area = std::min(best_area, entry.area_per_bit().um2());
    if (const auto p = entry.power_per_bit_w()) {
      best_power = std::min(best_power, *p);
    }
  }
  std::printf(
      "\nfunctional-normalised improvement vs best competitor: area %s, "
      "power %s (paper: >1e13x)\n",
      format_factor(best_area / row.functional_area_per_bit().um2()).c_str(),
      format_factor(best_power / row.functional_power_per_bit_w()).c_str());
  return 0;
}
