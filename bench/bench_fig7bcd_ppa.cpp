// Fig. 7(b)–(d): chip area, latency and dynamic energy (with read/write
// breakdown) vs. dataset and p_max. Defaults use the analytic depth
// estimate (instant); CIMANNEAL_FULL=1 builds the real hierarchies for
// measured depths.
#include <cstdio>

#include "bench_common.hpp"
#include "cluster/hierarchy.hpp"
#include "ppa/report.hpp"
#include "tsp/generator.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using cim::util::Table;
  using namespace cim::util;
  cim::bench::print_header(
      "Fig. 7(b)-(d) — chip area, latency, dynamic energy",
      "paper Fig. 7(b)-(d): area tracks capacity; p_max=2 smallest but "
      "slowest (deepest hierarchy); write share is small");

  Table table({"dataset", "N", "p_max", "capacity", "chip area",
               "latency (read)", "latency (write)", "energy (read)",
               "energy (write)", "avg power"});
  cim::util::CsvWriter csv({"dataset", "n", "pmax", "capacity_bits",
                            "area_um2", "lat_read_s", "lat_write_s",
                            "e_read_j", "e_write_j", "power_w"});

  for (const auto& name : cim::bench::ppa_datasets()) {
    // Size from the instance registry without generating coordinates
    // unless we need the real hierarchy.
    std::size_t n = 0;
    std::optional<cim::tsp::Instance> inst;
    if (cim::bench::full_scale()) {
      inst = cim::tsp::make_paper_instance(name);
      n = inst->size();
    } else {
      // Parse the trailing number of the canonical names.
      std::size_t digits = name.size();
      while (digits > 0 && std::isdigit(static_cast<unsigned char>(
                               name[digits - 1]))) {
        --digits;
      }
      n = std::stoull(name.substr(digits));
    }

    for (std::uint32_t p = 2; p <= 4; ++p) {
      cim::ppa::DesignPoint point;
      point.instance_name = name;
      point.n_cities = n;
      point.p = p;

      std::optional<std::size_t> depth;
      if (inst) {
        cim::cluster::Options copt;
        copt.strategy = cim::cluster::Strategy::kSemiFlexible;
        copt.p = p;
        const cim::cluster::Hierarchy h(*inst, copt);
        depth = h.depth();
      }
      const auto report = cim::ppa::analytic_report(point, depth);
      table.add_row(
          {name, Table::integer(static_cast<long long>(n)),
           Table::integer(p),
           format_bits(static_cast<double>(report.layout.capacity_bits)),
           format_area(report.chip_area),
           format_seconds(report.latency.read_compute),
           format_seconds(report.latency.write),
           format_joules(report.energy.read_compute),
           format_joules(report.energy.write),
           format_watts(report.average_power)});
      csv.add_row({name, Table::integer(static_cast<long long>(n)),
                   Table::integer(p),
                   Table::sci(static_cast<double>(
                                  report.layout.capacity_bits),
                              4),
                   Table::sci(report.chip_area.um2(), 4),
                   Table::sci(report.latency.read_compute.seconds(), 4),
                   Table::sci(report.latency.write.seconds(), 4),
                   Table::sci(report.energy.read_compute.joules(), 4),
                   Table::sci(report.energy.write.joules(), 4),
                   Table::sci(report.average_power.watts(), 4)});
    }
    table.add_separator();
  }
  table.add_footnote(
      "paper anchors: pla85900 @ p_max=3 -> 46.4 Mb, 43.7 mm^2, 433 mW; "
      "rl5934-class problems anneal in ~44 us");
  table.add_footnote("series exported to fig7bcd_ppa.csv");
  table.print();
  csv.save("fig7bcd_ppa.csv");
  return 0;
}
