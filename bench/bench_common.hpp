// Shared helpers for the experiment harnesses (one binary per paper
// table/figure). Default runs are sized to finish in seconds; set
// CIMANNEAL_FULL=1 to run the paper's full instance list (up to
// pla85900).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "util/args.hpp"

namespace cim::bench {

/// True when the full paper-scale experiment list is requested.
inline bool full_scale() { return util::Args::env_flag("CIMANNEAL_FULL"); }

/// Quality-evaluation datasets (Fig. 7(a), Table I scale).
inline std::vector<std::string> quality_datasets() {
  if (full_scale()) {
    return {"pcb3038", "rl5915",   "rl11849",
            "usa13509", "d18512", "pla33810"};
  }
  return {"pcb3038", "rl5915"};
}

/// PPA-evaluation datasets (Fig. 7(b)–(d), up to pla85900).
inline std::vector<std::string> ppa_datasets() {
  return {"pcb3038",  "rl5915", "rl11849", "usa13509",
          "d18512", "pla33810", "pla85900"};
}

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  if (!full_scale()) {
    std::printf(
        "note: default (reduced) run — set CIMANNEAL_FULL=1 for the "
        "paper's full instance list\n");
  }
  std::printf("\n");
}

}  // namespace cim::bench
