// Table I: exploration of cluster size and strategy on pcb3038 and
// rl5915 — SRAM capacity and optimal ratio for the arbitrary (unlimited)
// baseline, strictly fixed p ∈ {2,4}, and semi-flexible p_max ∈ {2,3,4}.
#include <cstdio>
#include <optional>

#include "anneal/clustered_annealer.hpp"
#include "bench_common.hpp"
#include "heuristics/reference.hpp"
#include "ppa/capacity.hpp"
#include "tsp/generator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct StrategyRow {
  const char* label;
  cim::cluster::Strategy strategy;
  std::uint32_t p;
  // Paper Table I values: {capacity kB, optimal ratio} per dataset.
  double paper_cap_pcb;
  double paper_ratio_pcb;
  double paper_cap_rl;
  double paper_ratio_rl;
};

constexpr StrategyRow kRows[] = {
    {"arbitrary (baseline)", cim::cluster::Strategy::kUnlimited, 3, 0.0,
     1.177, 0.0, 1.234},
    {"fixed p=2", cim::cluster::Strategy::kFixed, 2, 48.6, 1.468, 94.7,
     1.788},
    {"fixed p=4", cim::cluster::Strategy::kFixed, 4, 291.8, 1.303, 567.9,
     1.477},
    {"semi-flex 1/2", cim::cluster::Strategy::kSemiFlexible, 2, 64.8,
     1.201, 126.2, 1.317},
    {"semi-flex 1/2/3", cim::cluster::Strategy::kSemiFlexible, 3, 205.1,
     1.180, 399.3, 1.259},
    {"semi-flex 1/2/3/4", cim::cluster::Strategy::kSemiFlexible, 4, 466.9,
     1.177, 908.5, 1.250},
};

double capacity_kb(const StrategyRow& row, std::size_t n) {
  const cim::ppa::CapacityModel cap;
  switch (row.strategy) {
    case cim::cluster::Strategy::kUnlimited:
      return 0.0;
    case cim::cluster::Strategy::kFixed:
      return cap.compact_weights_fixed(static_cast<double>(n),
                                       row.p) /
             1e3;
    case cim::cluster::Strategy::kSemiFlexible:
      return cap.compact_weights_semiflex(static_cast<double>(n),
                                          row.p) /
             1e3;
  }
  return 0.0;
}

double solve_ratio(const cim::tsp::Instance& inst, const StrategyRow& row,
                   long long reference) {
  cim::anneal::AnnealerConfig config;
  config.clustering.strategy = row.strategy;
  config.clustering.p = row.p;
  config.seed = 7;
  const cim::anneal::ClusteredAnnealer annealer(config);
  const auto result = annealer.solve(inst);
  return static_cast<double>(result.length) /
         static_cast<double>(reference);
}

}  // namespace

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "Table I — cluster size / strategy exploration",
      "paper Table I: capacity (kB) and optimal ratio on pcb3038, rl5915");

  for (const char* name : {"pcb3038", "rl5915"}) {
    const auto inst = cim::tsp::make_paper_instance(name);
    cim::util::Timer timer;
    const auto reference = cim::heuristics::compute_reference(inst);
    std::printf("%s: %zu cities, reference length %lld (%s, %.1fs)\n",
                name, inst.size(), reference.length,
                reference.from_registry ? "published optimum"
                                        : "greedy+2opt+or-opt",
                timer.seconds());

    const bool is_pcb = std::string(name) == "pcb3038";
    Table table({"#elements / cluster", "capacity (kB)", "paper cap (kB)",
                 "optimal ratio", "paper ratio"});
    table.set_title(std::string("Table I — ") + name);
    for (const auto& row : kRows) {
      const double cap = capacity_kb(row, inst.size());
      const double ratio = solve_ratio(inst, row, reference.length);
      table.add_row(
          {row.label, cap > 0 ? Table::num(cap, 1) : "n/a (no fixed hw)",
           (is_pcb ? row.paper_cap_pcb : row.paper_cap_rl) > 0
               ? Table::num(is_pcb ? row.paper_cap_pcb : row.paper_cap_rl,
                            1)
               : "-",
           Table::num(ratio, 3),
           Table::num(is_pcb ? row.paper_ratio_pcb : row.paper_ratio_rl,
                      3)});
    }
    table.add_footnote(
        "expected shape: fixed p=2 worst; semi-flex approaches the "
        "arbitrary baseline as p_max grows; capacity grows with p_max");
    table.print();
  }
  return 0;
}
