// §III.A ablation: chromatic (odd/even) parallel cluster updates vs
// sequential Gibbs. Chromatic Gibbs sampling updates all non-adjacent
// clusters at once — per-iteration hardware cycles become O(1) instead of
// O(#clusters), at equal solution quality.
#include <cstdio>

#include "anneal/clustered_annealer.hpp"
#include "bench_common.hpp"
#include "heuristics/reference.hpp"
#include "tsp/generator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using cim::util::Table;
  using cim::util::format_factor;
  cim::bench::print_header(
      "§III.A ablation — chromatic parallel vs sequential updates",
      "paper §III.A: non-adjacent clusters update in parallel (chromatic "
      "Gibbs) with no quality loss");

  const std::vector<std::string> datasets =
      cim::bench::full_scale()
          ? std::vector<std::string>{"pcb1173", "rl1304", "pcb3038"}
          : std::vector<std::string>{"pcb1173", "rl1304"};
  const std::size_t seeds = 3;

  Table table({"dataset", "mode", "mean ratio", "hw update cycles",
               "cycle speedup"});
  for (const auto& name : datasets) {
    const auto inst = cim::tsp::make_paper_instance(name);
    const auto reference = cim::heuristics::compute_reference(inst);

    double cycles[2] = {};
    double ratios[2] = {};
    for (int parallel = 1; parallel >= 0; --parallel) {
      cim::util::RunningStats ratio_stats;
      cim::util::RunningStats cycle_stats;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        cim::anneal::AnnealerConfig config;
        config.clustering.p = 3;
        config.chromatic_parallel = parallel != 0;
        config.seed = seed;
        const auto result =
            cim::anneal::ClusteredAnnealer(config).solve(inst);
        ratio_stats.add(static_cast<double>(result.length) /
                        static_cast<double>(reference.length));
        cycle_stats.add(static_cast<double>(result.hw.update_cycles));
      }
      cycles[parallel] = cycle_stats.mean();
      ratios[parallel] = ratio_stats.mean();
    }
    table.add_row({name, "chromatic parallel", Table::num(ratios[1], 3),
                   Table::sci(cycles[1], 2), "1.0 x (ref)"});
    table.add_row({name, "sequential Gibbs", Table::num(ratios[0], 3),
                   Table::sci(cycles[0], 2),
                   format_factor(cycles[0] / cycles[1])});
    table.add_separator();
  }
  table.add_footnote(
      "expected: equal ratios; sequential needs ~#clusters/2 more cycles "
      "per level (the parallelism the CIM arrays exploit)");
  table.print();
  return 0;
}
