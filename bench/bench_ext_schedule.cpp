// Extension bench: annealing-schedule design space (§IV.B/§V choices).
// Sweeps iteration budget, write-back period and the V_DD ramp span, and
// reports quality against hardware time — the trade-off behind the
// paper's "400 iterations, 40 mV every 50" operating point.
#include <cstdio>

#include "anneal/clustered_annealer.hpp"
#include "bench_common.hpp"
#include "heuristics/reference.hpp"
#include "ppa/report.hpp"
#include "tsp/generator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

struct ScheduleCase {
  const char* label;
  std::size_t iterations;
  std::size_t per_step;
  double vdd_start;
  double vdd_step;
};

}  // namespace

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "Extension — annealing schedule design space",
      "ablates the paper's §V operating point (400 iters, V_DD 300->580mV "
      "in 40mV/50-iter steps, 6 noisy LSBs)");

  const std::string name =
      cim::bench::full_scale() ? "pcb3038" : "pcb1173";
  const auto inst = cim::tsp::make_paper_instance(name);
  const auto reference = cim::heuristics::compute_reference(inst);
  const std::size_t seeds = 3;

  const std::vector<ScheduleCase> cases{
      {"paper (400 it, 50/step)", 400, 50, 0.30, 0.04},
      {"short (100 it, 13/step)", 100, 13, 0.30, 0.04},
      {"long (800 it, 100/step)", 800, 100, 0.30, 0.04},
      {"no ramp (flat 300 mV)", 400, 50, 0.30, 0.00},
      {"cold start (flat 580 mV)", 400, 50, 0.58, 0.00},
      {"fast ramp (400 it, 25/step)", 400, 25, 0.30, 0.04},
  };

  Table table({"schedule", "mean ratio", "uphill acc.", "hw time",
               "iterations"});
  table.set_title(name + " — schedule sweep (mean of " +
                  std::to_string(seeds) + " seeds)");
  for (const auto& c : cases) {
    cim::util::RunningStats ratio;
    std::size_t uphill = 0;
    std::size_t accepted = 0;
    double hw_time = 0.0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      cim::anneal::AnnealerConfig config;
      config.clustering.p = 3;
      config.seed = seed;
      config.schedule.total_iterations = c.iterations;
      config.schedule.iterations_per_step = c.per_step;
      config.schedule.vdd_start = c.vdd_start;
      config.schedule.vdd_step = c.vdd_step;
      const auto result =
          cim::anneal::ClusteredAnnealer(config).solve(inst);
      ratio.add(static_cast<double>(result.length) /
                static_cast<double>(reference.length));
      for (const auto& level : result.levels) {
        uphill += level.uphill_accepted;
        accepted += level.swaps_accepted;
      }
      if (seed == 1) {
        cim::ppa::DesignPoint point;
        point.instance_name = name;
        point.n_cities = inst.size();
        point.p = 3;
        point.schedule = config.schedule;
        hw_time = cim::ppa::measured_report(point, result.hw, result.hierarchy_depth)
                      .latency.total().seconds();
      }
    }
    table.add_row(
        {c.label, Table::num(ratio.mean(), 3),
         Table::percent(accepted ? static_cast<double>(uphill) /
                                       static_cast<double>(accepted)
                                 : 0.0,
                        1),
         cim::util::format_seconds(hw_time),
         Table::integer(static_cast<long long>(c.iterations))});
  }
  table.add_footnote(
      "expected: flat-low-V_DD never converges cleanly (noise persists); "
      "flat-nominal is greedy; the ramp balances exploration and "
      "convergence at moderate hardware time");
  table.print();
  return 0;
}
