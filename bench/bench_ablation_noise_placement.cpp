// §IV.B ablation: where the annealing noise lives matters.
//   * sram-weight (this work): spatial variation becomes temporal noise;
//   * sram-spin ([4]-style): spatially fixed spin errors — deterministic,
//     poorly converging dynamics;
//   * lfsr: conventional digital SA at noise-equivalent temperature;
//   * none: greedy descent.
#include <cstdio>

#include "anneal/clustered_annealer.hpp"
#include "bench_common.hpp"
#include "heuristics/reference.hpp"
#include "tsp/generator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

struct ModeOutcome {
  cim::util::RunningStats ratio;
  double uphill_fraction = 0.0;  ///< accepted swaps that were truly uphill
};

ModeOutcome run_mode(const cim::tsp::Instance& inst,
                     cim::anneal::NoiseMode mode, long long reference,
                     std::size_t seeds) {
  ModeOutcome outcome;
  std::size_t uphill = 0;
  std::size_t accepted = 0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    cim::anneal::AnnealerConfig config;
    config.clustering.p = 3;
    config.noise = mode;
    config.seed = seed;
    const auto result = cim::anneal::ClusteredAnnealer(config).solve(inst);
    outcome.ratio.add(static_cast<double>(result.length) /
                      static_cast<double>(reference));
    for (const auto& level : result.levels) {
      uphill += level.uphill_accepted;
      accepted += level.swaps_accepted;
    }
  }
  outcome.uphill_fraction =
      accepted ? static_cast<double>(uphill) / static_cast<double>(accepted)
               : 0.0;
  return outcome;
}

}  // namespace

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "§IV.B ablation — noise placement (weights vs spins vs LFSR)",
      "paper §IV.B: spatial spin noise ([4]) fails; weight noise anneals");

  const std::size_t seeds = cim::bench::full_scale() ? 10 : 5;
  const std::vector<std::string> datasets =
      cim::bench::full_scale()
          ? std::vector<std::string>{"rl1304", "pcb1173", "geo1500"}
          : std::vector<std::string>{"rl1304", "pcb1173"};

  Table table({"dataset", "noise source", "mean ratio", "best", "worst",
               "uphill acc."});
  for (const auto& name : datasets) {
    const auto inst = cim::tsp::make_paper_instance(name);
    const auto reference = cim::heuristics::compute_reference(inst);
    for (const auto mode :
         {cim::anneal::NoiseMode::kSramWeight,
          cim::anneal::NoiseMode::kSramSpin, cim::anneal::NoiseMode::kLfsr,
          cim::anneal::NoiseMode::kNone}) {
      const auto outcome = run_mode(inst, mode, reference.length, seeds);
      table.add_row({name, cim::anneal::noise_mode_name(mode),
                     Table::num(outcome.ratio.mean(), 3),
                     Table::num(outcome.ratio.min(), 3),
                     Table::num(outcome.ratio.max(), 3),
                     Table::percent(outcome.uphill_fraction, 1)});
    }
    table.add_separator();
  }
  table.add_footnote(
      "'uphill acc.' = accepted swaps with truly positive energy delta: "
      "the annealing signature. Greedy (none) must show 0%; weight noise "
      "and LFSR explore; spin noise accepts a fixed biased set");
  table.print();

  // The determinism failure mode of [4]: identical restarts.
  const auto inst = cim::tsp::make_paper_instance("rl1304");
  cim::anneal::AnnealerConfig config;
  config.noise = cim::anneal::NoiseMode::kSramSpin;
  config.seed = 42;
  const auto a = cim::anneal::ClusteredAnnealer(config).solve(inst);
  const auto b = cim::anneal::ClusteredAnnealer(config).solve(inst);
  std::printf(
      "\nsram-spin restart determinism (the [4] failure): two identical "
      "runs produced %s tours (length %lld vs %lld)\n",
      a.tour == b.tour ? "IDENTICAL" : "different", a.length, b.length);
  return 0;
}
