// Fig. 2(b) made executable: system energy converging towards the ground
// state, with annealing noise letting the system escape local minima that
// trap pure greedy descent. Prints the level-0 convergence series for the
// noisy design and the greedy baseline, plus the escape statistics.
//
// The convergence data is sourced from the telemetry layer: the annealer
// emits one "anneal.trace" instant event per recorded iteration, and the
// curves below are read back out of the registry's merged event stream —
// asserted bit-identical to the in-memory AnnealResult::trace, so the
// telemetry path is proven lossless on every bench run. With telemetry
// compiled off (CIMANNEAL_TELEMETRY=OFF) the bench falls back to the
// in-memory trace.
#include <bit>
#include <cstdio>

#include "anneal/clustered_annealer.hpp"
#include "bench_common.hpp"
#include "tsp/generator.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"

namespace {

namespace telemetry = cim::util::telemetry;

/// The level-0 convergence curve of the *preceding* solve, read from the
/// telemetry event stream and verified bit-identical to the in-memory
/// trace. Resets the registry afterwards so back-to-back runs don't mix
/// their event streams.
std::vector<double> curve_from_telemetry(
    const cim::anneal::AnnealResult& result) {
  if constexpr (!telemetry::kEnabled) {
    return result.trace;
  } else {
    std::vector<double> curve;
    for (const auto& event : telemetry::Registry::global().merged_events()) {
      if (event.name != "anneal.trace" || event.phase != 'i') continue;
      double level = -1.0;
      double energy = 0.0;
      for (const auto& arg : event.args) {
        if (arg.key == "level") level = arg.value;
        if (arg.key == "energy") energy = arg.value;
      }
      if (static_cast<long long>(level) == 0) curve.push_back(energy);
    }
    CIM_REQUIRE(curve.size() == result.trace.size(),
                "telemetry trace length differs from the in-memory trace");
    for (std::size_t i = 0; i < curve.size(); ++i) {
      CIM_REQUIRE(std::bit_cast<std::uint64_t>(curve[i]) ==
                      std::bit_cast<std::uint64_t>(result.trace[i]),
                  "telemetry trace diverged from the in-memory trace");
    }
    telemetry::Registry::global().reset();
    return curve;
  }
}

}  // namespace

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "Fig. 2(b) — convergence towards the ground state",
      "paper Fig. 2(b): annealing escapes local minima on the way to the "
      "energy minimum");

  const std::string name =
      cim::bench::full_scale() ? "rl5915" : "rl1304";
  const auto inst = cim::tsp::make_paper_instance(name);

  const auto run = [&](cim::anneal::NoiseMode mode) {
    cim::anneal::AnnealerConfig config;
    config.clustering.p = 3;
    config.noise = mode;
    config.record_trace = true;
    config.seed = 4;
    return cim::anneal::ClusteredAnnealer(config).solve(inst);
  };

  const auto noisy = run(cim::anneal::NoiseMode::kSramWeight);
  const auto noisy_curve = curve_from_telemetry(noisy);
  const auto greedy = run(cim::anneal::NoiseMode::kNone);
  const auto greedy_curve = curve_from_telemetry(greedy);

  Table table({"iteration", "energy (sram-weight)", "energy (greedy)"});
  table.set_title(name + " — level-0 ring length per iteration");
  cim::util::CsvWriter csv({"iteration", "noisy", "greedy"});
  for (std::size_t i = 0; i < noisy_curve.size(); ++i) {
    csv.add_row({Table::integer(static_cast<long long>(i)),
                 Table::num(noisy_curve[i], 0),
                 Table::num(greedy_curve[i], 0)});
    if (i % 25 == 0 || i + 1 == noisy_curve.size()) {
      table.add_row({Table::integer(static_cast<long long>(i)),
                     Table::num(noisy_curve[i], 0),
                     Table::num(greedy_curve[i], 0)});
    }
  }
  table.add_footnote("full series exported to fig2_convergence.csv");
  table.add_footnote(telemetry::kEnabled
                         ? "curves sourced from telemetry events "
                           "(verified bit-identical to the in-memory trace)"
                         : "telemetry compiled off; curves from the "
                           "in-memory trace");
  table.print();
  csv.save("fig2_convergence.csv");

  // Escape statistics: uphill acceptances by level (annealing signature).
  std::size_t noisy_uphill = 0;
  std::size_t greedy_uphill = 0;
  for (const auto& level : noisy.levels) noisy_uphill += level.uphill_accepted;
  for (const auto& level : greedy.levels) {
    greedy_uphill += level.uphill_accepted;
  }
  std::printf(
      "\nuphill escapes: %zu (sram-weight) vs %zu (greedy); final length "
      "%lld vs %lld\n",
      noisy_uphill, greedy_uphill, noisy.length, greedy.length);
  return 0;
}
