// Fig. 2(b) made executable: system energy converging towards the ground
// state, with annealing noise letting the system escape local minima that
// trap pure greedy descent. Prints the level-0 convergence series for the
// noisy design and the greedy baseline, plus the escape statistics.
#include <cstdio>

#include "anneal/clustered_annealer.hpp"
#include "bench_common.hpp"
#include "tsp/generator.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "Fig. 2(b) — convergence towards the ground state",
      "paper Fig. 2(b): annealing escapes local minima on the way to the "
      "energy minimum");

  const std::string name =
      cim::bench::full_scale() ? "rl5915" : "rl1304";
  const auto inst = cim::tsp::make_paper_instance(name);

  const auto run = [&](cim::anneal::NoiseMode mode) {
    cim::anneal::AnnealerConfig config;
    config.clustering.p = 3;
    config.noise = mode;
    config.record_trace = true;
    config.seed = 4;
    return cim::anneal::ClusteredAnnealer(config).solve(inst);
  };

  const auto noisy = run(cim::anneal::NoiseMode::kSramWeight);
  const auto greedy = run(cim::anneal::NoiseMode::kNone);

  Table table({"iteration", "energy (sram-weight)", "energy (greedy)"});
  table.set_title(name + " — level-0 ring length per iteration");
  cim::util::CsvWriter csv({"iteration", "noisy", "greedy"});
  for (std::size_t i = 0; i < noisy.trace.size(); ++i) {
    csv.add_row({Table::integer(static_cast<long long>(i)),
                 Table::num(noisy.trace[i], 0),
                 Table::num(greedy.trace[i], 0)});
    if (i % 25 == 0 || i + 1 == noisy.trace.size()) {
      table.add_row({Table::integer(static_cast<long long>(i)),
                     Table::num(noisy.trace[i], 0),
                     Table::num(greedy.trace[i], 0)});
    }
  }
  table.add_footnote("full series exported to fig2_convergence.csv");
  table.print();
  csv.save("fig2_convergence.csv");

  // Escape statistics: uphill acceptances by level (annealing signature).
  std::size_t noisy_uphill = 0;
  std::size_t greedy_uphill = 0;
  for (const auto& level : noisy.levels) noisy_uphill += level.uphill_accepted;
  for (const auto& level : greedy.levels) {
    greedy_uphill += level.uphill_accepted;
  }
  std::printf(
      "\nuphill escapes: %zu (sram-weight) vs %zu (greedy); final length "
      "%lld vs %lld\n",
      noisy_uphill, greedy_uphill, noisy.length, greedy.length);
  return 0;
}
