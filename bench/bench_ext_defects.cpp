// Extension bench: yield robustness. Annealers are often claimed to be
// inherently defect-tolerant (wrong weights just act as extra noise);
// this harness quantifies solution quality vs stuck-cell density — the
// curve a yield engineer would want before binning defective dies.
#include <cstdio>

#include "anneal/clustered_annealer.hpp"
#include "bench_common.hpp"
#include "heuristics/reference.hpp"
#include "tsp/generator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "Extension — stuck-cell yield robustness",
      "solution quality vs manufacturing defect density (stuck-at bit "
      "cells override writes at any V_DD)");

  const std::string name =
      cim::bench::full_scale() ? "pcb3038" : "pcb1173";
  const auto inst = cim::tsp::make_paper_instance(name);
  const auto reference = cim::heuristics::compute_reference(inst);
  const std::size_t seeds = 3;

  Table table({"stuck-cell rate", "mean ratio", "worst ratio",
               "vs healthy"});
  table.set_title(name + " — defect sweep (mean of " +
                  std::to_string(seeds) + " seeds)");
  double healthy = 0.0;
  for (const double rate : {0.0, 1e-4, 1e-3, 1e-2, 0.05, 0.10}) {
    cim::util::RunningStats ratio;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      cim::anneal::AnnealerConfig config;
      config.clustering.p = 3;
      config.sram.stuck_cell_rate = rate;
      config.seed = seed;
      const auto result =
          cim::anneal::ClusteredAnnealer(config).solve(inst);
      ratio.add(static_cast<double>(result.length) /
                static_cast<double>(reference.length));
    }
    if (rate == 0.0) healthy = ratio.mean();
    table.add_row({Table::percent(rate, 2), Table::num(ratio.mean(), 3),
                   Table::num(ratio.max(), 3),
                   Table::percent(ratio.mean() / healthy - 1.0, 2)});
  }
  table.add_footnote(
      "expected: flat through realistic defect densities (<0.1%), "
      "graceful degradation beyond — broken weights act as static noise "
      "the energy comparisons tolerate");
  table.print();
  return 0;
}
