// Extension bench: clustering design choices — Lloyd refinement on/off
// and the compactness → tour-quality chain the hierarchy rests on
// (DESIGN.md §4, design decision 2).
#include <cstdio>

#include "anneal/clustered_annealer.hpp"
#include "bench_common.hpp"
#include "cluster/hierarchy.hpp"
#include "heuristics/reference.hpp"
#include "tsp/generator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

struct Row {
  double ratio = 0.0;
  double mean_size = 0.0;
  std::size_t depth = 0;
};

Row run_case(const cim::tsp::Instance& inst, bool refine,
             cim::cluster::Strategy strategy, std::uint32_t p,
             long long reference, std::size_t seeds) {
  Row row;
  cim::util::RunningStats ratio;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    cim::anneal::AnnealerConfig config;
    config.clustering.strategy = strategy;
    config.clustering.p = p;
    config.clustering.refine = refine;
    config.clustering.seed = seed;
    config.seed = seed;
    const auto result = cim::anneal::ClusteredAnnealer(config).solve(inst);
    ratio.add(static_cast<double>(result.length) /
              static_cast<double>(reference));
    if (seed == 1) {
      cim::cluster::Options opts = config.clustering;
      const cim::cluster::Hierarchy h(inst, opts);
      row.mean_size = h.mean_cluster_size();
      row.depth = h.depth();
    }
  }
  row.ratio = ratio.mean();
  return row;
}

}  // namespace

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "Extension — clustering refinement ablation",
      "design decision: Lloyd-style boundary reassignment after each "
      "grouping level");

  const std::vector<std::string> datasets =
      cim::bench::full_scale()
          ? std::vector<std::string>{"pcb3038", "rl5915"}
          : std::vector<std::string>{"pcb1173", "rl1304"};
  const std::size_t seeds = 3;

  Table table({"dataset", "strategy", "refine", "mean ratio",
               "mean cluster size", "depth"});
  for (const auto& name : datasets) {
    const auto inst = cim::tsp::make_paper_instance(name);
    const auto reference = cim::heuristics::compute_reference(inst);
    for (const auto strategy : {cim::cluster::Strategy::kSemiFlexible,
                                cim::cluster::Strategy::kUnlimited}) {
      for (const bool refine : {false, true}) {
        const Row row = run_case(inst, refine, strategy, 3,
                                 reference.length, seeds);
        table.add_row({name, cim::cluster::strategy_name(strategy),
                       refine ? "on" : "off", Table::num(row.ratio, 3),
                       Table::num(row.mean_size, 2),
                       std::to_string(row.depth)});
      }
    }
    table.add_separator();
  }
  table.add_footnote(
      "refinement tightens clusters (shorter intra/boundary edges); the "
      "effect on final tours is instance-dependent but never needs extra "
      "hardware — it runs at clustering time");
  table.print();
  return 0;
}
