// google-benchmark micro-kernels: the hot operations of the functional
// simulator (window MACs on both backends, write-back with noise
// injection, adder-tree reduction, swap evaluation) and the supporting
// geometry (kd-tree queries).
//
// Besides the google-benchmark suite, main() times the three variants of
// the 4-MAC swap kernel (dense rebuild-and-scan, sparse row-list rebuild,
// incremental sparse) head-to-head and writes BENCH_swap_kernel.json —
// see EXPERIMENTS.md for the format — and times per-epoch thread spawning
// against the persistent util::ThreadPool over an annealer-shaped epoch
// loop, writing BENCH_parallel_runtime.json. CIMANNEAL_BENCH_OUT /
// CIMANNEAL_BENCH_OUT_RUNTIME override the output paths;
// CIMANNEAL_BENCH_SMOKE=1 shrinks the sweeps for CI.
//
// Both report writers run under telemetry scopes and publish their
// per-variant results as counter events; main() exports the registry to
// BENCH_telemetry.json (+ .trace.json), path overridable via
// CIMANNEAL_BENCH_OUT_TRACE. With CIMANNEAL_TELEMETRY=OFF the files
// still appear carrying telemetry_enabled=false — and, crucially, the
// timed loops themselves contain no TELEM_* calls, so the swap timings
// are unaffected by the telemetry build flavour.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "util/thread_pool.hpp"

#include "cim/adder_tree.hpp"
#include "cim/bitslice.hpp"
#include "cim/storage.hpp"
#include "cim/window.hpp"
#include "geo/kdtree.hpp"
#include "ising/pbm.hpp"
#include "noise/sram_model.hpp"
#include "tsp/dist_cache.hpp"
#include "tsp/generator.hpp"
#include "tsp/neighbors.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/random.hpp"
#include "util/simd.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace {

using cim::hw::ColIndex;

std::vector<std::uint8_t> random_image(std::uint32_t rows,
                                       std::uint32_t cols,
                                       std::uint64_t seed) {
  cim::util::Rng rng(seed);
  std::vector<std::uint8_t> image(static_cast<std::size_t>(rows) * cols);
  for (auto& w : image) w = static_cast<std::uint8_t>(rng.below(256));
  return image;
}

void BM_WindowMacFast(benchmark::State& state) {
  const auto p = static_cast<std::uint32_t>(state.range(0));
  const cim::hw::WindowShape shape = cim::hw::WindowShape::hardware(p);
  auto storage =
      cim::hw::make_fast_storage(shape.rows(), shape.cols(), nullptr, 0);
  storage->write(random_image(shape.rows(), shape.cols(), 1));
  std::vector<std::uint8_t> input(shape.rows(), 0);
  for (std::uint32_t i = 0; i < p; ++i) input[i * p + i % p] = 1;
  std::uint32_t col = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage->mac(ColIndex(col), input));
    col = (col + 1) % shape.cols();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WindowMacFast)->Arg(2)->Arg(3)->Arg(4);

void BM_WindowMacBitLevel(benchmark::State& state) {
  const auto p = static_cast<std::uint32_t>(state.range(0));
  const cim::hw::WindowShape shape = cim::hw::WindowShape::hardware(p);
  auto storage = cim::hw::make_bit_level_storage(shape.rows(), shape.cols(),
                                                 nullptr, 0);
  storage->write(random_image(shape.rows(), shape.cols(), 2));
  std::vector<std::uint8_t> input(shape.rows(), 1);
  std::uint32_t col = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage->mac(ColIndex(col), input));
    col = (col + 1) % shape.cols();
  }
}
BENCHMARK(BM_WindowMacBitLevel)->Arg(3);

void BM_WriteBackNoisy(benchmark::State& state) {
  const cim::hw::WindowShape shape = cim::hw::WindowShape::hardware(3);
  static const cim::noise::SramCellModel model;
  auto storage =
      cim::hw::make_fast_storage(shape.rows(), shape.cols(), &model, 0);
  storage->write(random_image(shape.rows(), shape.cols(), 3));
  cim::noise::SchedulePhase phase;
  phase.vdd = 0.30;
  phase.noisy_lsbs = 6;
  for (auto _ : state) {
    storage->write_back(phase);
    ++phase.epoch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          shape.weights());
}
BENCHMARK(BM_WriteBackNoisy);

void BM_AdderTreeReduce(benchmark::State& state) {
  const auto fan_in = static_cast<std::uint32_t>(state.range(0));
  cim::hw::AdderTree tree(fan_in);
  std::vector<std::uint8_t> products(fan_in, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.reduce(products));
  }
}
BENCHMARK(BM_AdderTreeReduce)->Arg(8)->Arg(15)->Arg(24);

void BM_PseudoReadDecision(benchmark::State& state) {
  static const cim::noise::SramCellModel model;
  std::uint64_t cell = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.settled_value(cell++, 3, 0.34, true));
  }
}
BENCHMARK(BM_PseudoReadDecision);

void BM_PbmSwapDelta(benchmark::State& state) {
  static const auto inst = cim::tsp::generate_uniform(1000, 7);
  cim::ising::PbmState pbm(inst, cim::tsp::Tour::identity(1000));
  cim::util::Rng rng(1);
  for (auto _ : state) {
    const auto i = static_cast<std::size_t>(rng.below(1000));
    const auto j = static_cast<std::size_t>(rng.below(1000));
    benchmark::DoNotOptimize(pbm.swap_delta(i, j));
  }
}
BENCHMARK(BM_PbmSwapDelta);

/// One fast-backend window plus the annealer's swap state (member order
/// and the p + 2 set input rows), shared by the three swap-kernel
/// variants. Every variant evaluates the same 4-MAC order swap and
/// reverts, so identically-seeded runs must produce identical delta
/// streams — checked in the JSON report.
class SwapKernelFixture {
 public:
  explicit SwapKernelFixture(std::uint32_t p)
      : p_(p), shape_(cim::hw::WindowShape::hardware(p)) {
    storage_ = cim::hw::make_fast_storage(shape_.rows(), shape_.cols(),
                                          nullptr, 0);
    storage_->write(random_image(shape_.rows(), shape_.cols(), 11));
    perm_.resize(p);
    for (std::uint32_t i = 0; i < p; ++i) perm_[i] = i;
    input_.assign(shape_.rows(), 0);
    active_.resize(p_ + 2ULL);
    rebuild_active();
    packed_.resize(shape_.rows());
    for (const std::uint32_t r : active_) packed_.set(r);
  }

  std::uint32_t rows() const { return shape_.rows(); }
  std::uint32_t active_rows() const { return p_ + 2; }

  /// Legacy kernel: rebuild the dense input vector and scan every row.
  std::int64_t dense_swap(cim::util::Rng& rng) {
    const auto [i, j] = pick_pair(rng);
    const std::uint32_t k = perm_[i];
    const std::uint32_t l = perm_[j];
    rebuild_input();
    const std::int64_t before = storage_->mac(ColIndex(i * p_ + k), input_) +
                                storage_->mac(ColIndex(j * p_ + l), input_);
    std::swap(perm_[i], perm_[j]);
    rebuild_input();
    const std::int64_t after = storage_->mac(ColIndex(i * p_ + l), input_) +
                               storage_->mac(ColIndex(j * p_ + k), input_);
    std::swap(perm_[i], perm_[j]);
    return after - before;
  }

  /// Sparse MAC but the row list is rebuilt from the perm per half.
  std::int64_t sparse_swap(cim::util::Rng& rng) {
    const auto [i, j] = pick_pair(rng);
    const std::uint32_t k = perm_[i];
    const std::uint32_t l = perm_[j];
    rebuild_active();
    const std::int64_t before = storage_->mac_sparse(ColIndex(i * p_ + k), active_) +
                                storage_->mac_sparse(ColIndex(j * p_ + l), active_);
    std::swap(perm_[i], perm_[j]);
    rebuild_active();
    const std::int64_t after = storage_->mac_sparse(ColIndex(i * p_ + l), active_) +
                               storage_->mac_sparse(ColIndex(j * p_ + k), active_);
    std::swap(perm_[i], perm_[j]);
    rebuild_active();
    return after - before;
  }

  /// The production kernel: persistent row list, O(1) entry updates.
  std::int64_t incremental_swap(cim::util::Rng& rng) {
    const auto [i, j] = pick_pair(rng);
    const std::uint32_t k = perm_[i];
    const std::uint32_t l = perm_[j];
    const std::int64_t before = storage_->mac_sparse(ColIndex(i * p_ + k), active_) +
                                storage_->mac_sparse(ColIndex(j * p_ + l), active_);
    std::swap(perm_[i], perm_[j]);
    apply_entries(i, j);
    const std::int64_t after = storage_->mac_sparse(ColIndex(i * p_ + l), active_) +
                               storage_->mac_sparse(ColIndex(j * p_ + k), active_);
    std::swap(perm_[i], perm_[j]);
    apply_entries(i, j);
    return after - before;
  }

  /// The bit-sliced kernel: persistent packed input plane, word MACs.
  std::int64_t vector_swap(cim::util::Rng& rng) {
    const auto [i, j] = pick_pair(rng);
    const std::uint32_t k = perm_[i];
    const std::uint32_t l = perm_[j];
    const std::int64_t before =
        storage_->mac_packed(ColIndex(i * p_ + k), packed_.words()) +
        storage_->mac_packed(ColIndex(j * p_ + l), packed_.words());
    toggle_swap(i, j);
    const std::int64_t after =
        storage_->mac_packed(ColIndex(i * p_ + l), packed_.words()) +
        storage_->mac_packed(ColIndex(j * p_ + k), packed_.words());
    toggle_swap(i, j);
    return after - before;
  }

 private:
  /// Applies (or reverts) the swap on both the row list and its packed
  /// mirror: clear the stale bits, update the entries, set the new ones.
  void toggle_swap(std::uint32_t i, std::uint32_t j) {
    const auto words = packed_.words();
    cim::hw::packed_assign(words, active_[i], false);
    cim::hw::packed_assign(words, active_[j], false);
    cim::hw::packed_assign(words, active_[p_], false);
    cim::hw::packed_assign(words, active_[p_ + 1], false);
    std::swap(perm_[i], perm_[j]);
    apply_entries(i, j);
    cim::hw::packed_assign(words, active_[i], true);
    cim::hw::packed_assign(words, active_[j], true);
    cim::hw::packed_assign(words, active_[p_], true);
    cim::hw::packed_assign(words, active_[p_ + 1], true);
  }
  std::pair<std::uint32_t, std::uint32_t> pick_pair(cim::util::Rng& rng) {
    std::uint32_t i = static_cast<std::uint32_t>(rng.below(p_));
    std::uint32_t j = static_cast<std::uint32_t>(rng.below(p_ - 1));
    if (j >= i) ++j;
    if (i > j) std::swap(i, j);
    return {i, j};
  }

  void rebuild_input() {
    input_.assign(shape_.rows(), 0);
    for (std::uint32_t i = 0; i < p_; ++i) input_[i * p_ + perm_[i]] = 1;
    input_[shape_.own_rows() + perm_.back()] = 1;
    input_[shape_.own_rows() + shape_.p_prev + perm_.front()] = 1;
  }

  void rebuild_active() {
    for (std::uint32_t i = 0; i < p_; ++i) active_[i] = i * p_ + perm_[i];
    active_[p_] = shape_.own_rows() + perm_.back();
    active_[p_ + 1] = shape_.own_rows() + shape_.p_prev + perm_.front();
  }

  void apply_entries(std::uint32_t i, std::uint32_t j) {
    active_[i] = i * p_ + perm_[i];
    active_[j] = j * p_ + perm_[j];
    active_[p_] = shape_.own_rows() + perm_.back();
    active_[p_ + 1] = shape_.own_rows() + shape_.p_prev + perm_.front();
  }

  std::uint32_t p_;
  cim::hw::WindowShape shape_;
  std::unique_ptr<cim::hw::WeightStorage> storage_;
  std::vector<std::uint32_t> perm_;
  std::vector<std::uint8_t> input_;
  std::vector<std::uint32_t> active_;
  cim::hw::PackedBits packed_;
};

/// R replicas annealing over one shared weight window, the ensemble shape
/// the batched packed path is built for. Each replica owns its
/// permutation, active-row list, dense 0/1 input vector, packed input
/// plane (a slice of one shared arena) and RNG stream. One round proposes
/// one swap per replica and reverts it, in three interchangeable passes:
///
///  - scalar_round: the full-row dense MAC (4 mac calls per swap) — the
///    scalar execution of exactly the computation the bit-sliced kernel
///    vectorizes, and the hardware-faithful field evaluation (the CIM
///    array reads every row of the addressed column).
///  - sparse_round: the production host-side shortcut (4 mac_sparse calls
///    per swap) that skips the rows known to be zero — an algorithmic
///    optimisation, not a vectorization, reported as its own column.
///  - vector_round: issues the 2R "before" MACs as one
///    WeightStorage::mac_packed_batch, applies every swap, and batches
///    the 2R "after" MACs.
///
/// Identically-seeded passes must agree on the accumulated delta.
class ReplicaSwapFixture {
 public:
  ReplicaSwapFixture(std::uint32_t p, std::size_t replicas)
      : p_(p),
        shape_(cim::hw::WindowShape::hardware(p)),
        words_(cim::hw::packed_words(shape_.rows())) {
    storage_ = cim::hw::make_fast_storage(shape_.rows(), shape_.cols(),
                                          nullptr, 0);
    storage_->write(random_image(shape_.rows(), shape_.cols(), 11));
    arena_.assign(replicas * words_, 0);
    for (std::size_t r = 0; r < replicas; ++r) {
      Replica rep;
      rep.perm.resize(p_);
      for (std::uint32_t i = 0; i < p_; ++i) rep.perm[i] = i;
      rep.rng.reseed(0xC0FFEE + r);
      rep.rng.shuffle(rep.perm);
      rep.active.resize(p_ + 2ULL);
      rebuild_active(rep);
      rep.dense.assign(shape_.rows(), 0);
      const auto words = replica_words(r);
      for (const std::uint32_t row : rep.active) {
        rep.dense[row] = 1;
        cim::hw::packed_assign(words, row, true);
      }
      replicas_.push_back(std::move(rep));
    }
    reqs_.resize(2 * replicas);
    out_before_.resize(2 * replicas);
    out_after_.resize(2 * replicas);
    picks_.resize(replicas);
  }

  std::uint32_t rows() const { return shape_.rows(); }
  std::size_t replicas() const { return replicas_.size(); }

  std::int64_t scalar_round() {
    std::int64_t sum = 0;
    for (Replica& rep : replicas_) {
      const auto [i, j] = pick_pair(rep);
      const std::uint32_t k = rep.perm[i];
      const std::uint32_t l = rep.perm[j];
      const std::int64_t before =
          storage_->mac(ColIndex(i * p_ + k), rep.dense) +
          storage_->mac(ColIndex(j * p_ + l), rep.dense);
      toggle(rep, i, j);
      const std::int64_t after =
          storage_->mac(ColIndex(i * p_ + l), rep.dense) +
          storage_->mac(ColIndex(j * p_ + k), rep.dense);
      toggle(rep, i, j);
      sum += after - before;
    }
    return sum;
  }

  std::int64_t sparse_round() {
    std::int64_t sum = 0;
    for (Replica& rep : replicas_) {
      const auto [i, j] = pick_pair(rep);
      const std::uint32_t k = rep.perm[i];
      const std::uint32_t l = rep.perm[j];
      const std::int64_t before =
          storage_->mac_sparse(ColIndex(i * p_ + k), rep.active) +
          storage_->mac_sparse(ColIndex(j * p_ + l), rep.active);
      toggle(rep, i, j);
      const std::int64_t after =
          storage_->mac_sparse(ColIndex(i * p_ + l), rep.active) +
          storage_->mac_sparse(ColIndex(j * p_ + k), rep.active);
      toggle(rep, i, j);
      sum += after - before;
    }
    return sum;
  }

  std::int64_t vector_round() {
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      Replica& rep = replicas_[r];
      picks_[r] = pick_pair(rep);
      const auto [i, j] = picks_[r];
      reqs_[2 * r] = {ColIndex(i * p_ + rep.perm[i]),
                      static_cast<std::uint32_t>(r)};
      reqs_[2 * r + 1] = {ColIndex(j * p_ + rep.perm[j]),
                          static_cast<std::uint32_t>(r)};
    }
    storage_->mac_packed_batch(reqs_, arena_, words_, out_before_);
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      const auto [i, j] = picks_[r];
      toggle(replicas_[r], i, j);
      reqs_[2 * r].col = ColIndex(i * p_ + replicas_[r].perm[i]);
      reqs_[2 * r + 1].col = ColIndex(j * p_ + replicas_[r].perm[j]);
    }
    storage_->mac_packed_batch(reqs_, arena_, words_, out_after_);
    std::int64_t sum = 0;
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      const auto [i, j] = picks_[r];
      toggle(replicas_[r], i, j);
      sum += out_after_[2 * r] + out_after_[2 * r + 1] -
             out_before_[2 * r] - out_before_[2 * r + 1];
    }
    return sum;
  }

 private:
  struct Replica {
    std::vector<std::uint32_t> perm;
    std::vector<std::uint32_t> active;
    std::vector<std::uint8_t> dense;
    cim::util::Rng rng;
  };

  std::span<std::uint64_t> replica_words(std::size_t r) {
    return {arena_.data() + r * words_, words_};
  }

  std::pair<std::uint32_t, std::uint32_t> pick_pair(Replica& rep) {
    std::uint32_t i = static_cast<std::uint32_t>(rep.rng.below(p_));
    std::uint32_t j = static_cast<std::uint32_t>(rep.rng.below(p_ - 1));
    if (j >= i) ++j;
    if (i > j) std::swap(i, j);
    return {i, j};
  }

  void rebuild_active(Replica& rep) {
    for (std::uint32_t i = 0; i < p_; ++i) {
      rep.active[i] = i * p_ + rep.perm[i];
    }
    rep.active[p_] = shape_.own_rows() + rep.perm.back();
    rep.active[p_ + 1] = shape_.own_rows() + shape_.p_prev + rep.perm.front();
  }

  void toggle(Replica& rep, std::uint32_t i, std::uint32_t j) {
    const auto words =
        replica_words(static_cast<std::size_t>(&rep - replicas_.data()));
    for (const std::uint32_t slot : {i, j, p_, p_ + 1}) {
      rep.dense[rep.active[slot]] = 0;
      cim::hw::packed_assign(words, rep.active[slot], false);
    }
    std::swap(rep.perm[i], rep.perm[j]);
    rep.active[i] = i * p_ + rep.perm[i];
    rep.active[j] = j * p_ + rep.perm[j];
    rep.active[p_] = shape_.own_rows() + rep.perm.back();
    rep.active[p_ + 1] = shape_.own_rows() + shape_.p_prev + rep.perm.front();
    for (const std::uint32_t slot : {i, j, p_, p_ + 1}) {
      rep.dense[rep.active[slot]] = 1;
      cim::hw::packed_assign(words, rep.active[slot], true);
    }
  }

  std::uint32_t p_;
  cim::hw::WindowShape shape_;
  std::uint32_t words_;
  std::unique_ptr<cim::hw::WeightStorage> storage_;
  std::vector<std::uint64_t> arena_;
  std::vector<Replica> replicas_;
  std::vector<cim::hw::PackedMac> reqs_;
  std::vector<std::int64_t> out_before_;
  std::vector<std::int64_t> out_after_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> picks_;
};

void BM_SwapKernelDense(benchmark::State& state) {
  SwapKernelFixture fixture(static_cast<std::uint32_t>(state.range(0)));
  cim::util::Rng rng(21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.dense_swap(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SwapKernelDense)->Arg(4)->Arg(8)->Arg(16);

void BM_SwapKernelSparse(benchmark::State& state) {
  SwapKernelFixture fixture(static_cast<std::uint32_t>(state.range(0)));
  cim::util::Rng rng(21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.sparse_swap(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SwapKernelSparse)->Arg(4)->Arg(8)->Arg(16);

void BM_SwapKernelIncremental(benchmark::State& state) {
  SwapKernelFixture fixture(static_cast<std::uint32_t>(state.range(0)));
  cim::util::Rng rng(21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.incremental_swap(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SwapKernelIncremental)->Arg(4)->Arg(8)->Arg(16);

void BM_SwapKernelVector(benchmark::State& state) {
  SwapKernelFixture fixture(static_cast<std::uint32_t>(state.range(0)));
  cim::util::Rng rng(21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.vector_swap(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SwapKernelVector)->Arg(4)->Arg(8)->Arg(16);

void BM_KdTreeNearest(benchmark::State& state) {
  const auto inst = cim::tsp::generate_uniform(
      static_cast<std::size_t>(state.range(0)), 9);
  const cim::geo::KdTree tree(inst.coords());
  cim::util::Rng rng(2);
  for (auto _ : state) {
    const cim::geo::Point q{rng.uniform(0.0, 10000.0),
                            rng.uniform(0.0, 10000.0)};
    benchmark::DoNotOptimize(tree.nearest(q));
  }
}
BENCHMARK(BM_KdTreeNearest)->Arg(1000)->Arg(100000);

// The reuse-layer smoke row: candidate-scan distance traffic of a
// perturbed re-solve routed through the sharded DistanceCache. Each
// iteration replays every city's k-nearest scan (the window-build /
// exact-delta access pattern); after the first lap the pair population is
// stable, so the steady-state hit rate — exported as the `hit_rate`
// counter — is what the annealer's repeated exact-distance queries see.
void BM_DistanceCacheRescan(benchmark::State& state) {
  const auto inst = cim::tsp::generate_clustered(
      static_cast<std::size_t>(state.range(0)), 8, 21);
  const cim::tsp::NeighborLists neighbors(inst, 10);
  cim::tsp::DistanceCache cache(inst);
  for (auto _ : state) {
    long long sum = 0;
    for (std::size_t c = 0; c < inst.size(); ++c) {
      const auto city = static_cast<cim::tsp::CityId>(c);
      for (const cim::tsp::CityId cand : neighbors.of(city)) {
        sum += cache.distance(city, cand);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  const auto& stats = cache.stats();
  const double total = static_cast<double>(stats.hits + stats.misses);
  state.counters["hit_rate"] =
      total > 0.0 ? static_cast<double>(stats.hits) / total : 0.0;
  state.counters["bytes_touched"] = static_cast<double>(stats.bytes_touched);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()) * 10);
}
BENCHMARK(BM_DistanceCacheRescan)->Arg(2000);

/// Times the three swap-kernel variants head-to-head over identical swap
/// sequences and writes BENCH_swap_kernel.json. Aborts if the variants'
/// accumulated energy deltas disagree (they evaluate the same swaps on
/// the same weights, so any divergence is a kernel bug).
void write_swap_kernel_report() {
  TELEM_SCOPE("bench.swap_kernel");
  const bool smoke = cim::util::Args::env_flag("CIMANNEAL_BENCH_SMOKE");
  const char* out_env = std::getenv("CIMANNEAL_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_swap_kernel.json";
  const std::vector<std::uint32_t> scales =
      smoke ? std::vector<std::uint32_t>{4}
            : std::vector<std::uint32_t>{4, 8, 16};
  const std::size_t iterations = smoke ? 20000 : 200000;

  cim::util::Json report = cim::util::Json::object();
  report["benchmark"] = "swap_kernel";
  report["backend"] = "fast";
  report["simd_backend"] = std::string(cim::util::simd::backend());
  report["smoke"] = smoke;
  report["iterations_per_variant"] = static_cast<std::uint64_t>(iterations);
  cim::util::Json rows = cim::util::Json::array();

  for (const std::uint32_t p : scales) {
    // One fixture + one RNG per variant: each variant reverts every swap,
    // so identically-seeded runs draw the exact same (i, j) sequence.
    SwapKernelFixture dense_fx(p), sparse_fx(p), incr_fx(p), vector_fx(p);
    cim::util::Rng dense_rng(33), sparse_rng(33), incr_rng(33), vector_rng(33);
    const auto time_variant = [iterations](auto&& step) {
      std::int64_t checksum = 0;
      for (std::size_t it = 0; it < iterations / 10 + 1; ++it) {
        checksum += step();  // warm-up
      }
      cim::util::Timer timer;
      for (std::size_t it = 0; it < iterations; ++it) {
        checksum += step();
      }
      const double ns = timer.seconds() * 1e9 /
                        static_cast<double>(iterations);
      return std::pair<double, std::int64_t>{ns, checksum};
    };
    const auto [dense_ns, dense_sum] =
        time_variant([&] { return dense_fx.dense_swap(dense_rng); });
    const auto [sparse_ns, sparse_sum] =
        time_variant([&] { return sparse_fx.sparse_swap(sparse_rng); });
    const auto [incr_ns, incr_sum] =
        time_variant([&] { return incr_fx.incremental_swap(incr_rng); });
    const auto [vector_ns, vector_sum] =
        time_variant([&] { return vector_fx.vector_swap(vector_rng); });
    CIM_REQUIRE(dense_sum == sparse_sum && dense_sum == incr_sum &&
                    dense_sum == vector_sum,
                "swap-kernel variants disagree on energy deltas");

    TELEM_COUNTER_ADD("bench.swap_kernel.swaps_timed", 4 * iterations);
    TELEM_COUNTER_EVENT("bench.swap_kernel",
                        {"p", static_cast<double>(p)},
                        {"dense_ns_per_swap", dense_ns},
                        {"sparse_ns_per_swap", sparse_ns},
                        {"incremental_ns_per_swap", incr_ns},
                        {"vector_ns_per_swap", vector_ns});

    cim::util::Json row = cim::util::Json::object();
    row["p"] = static_cast<std::uint64_t>(p);
    row["window_rows"] = static_cast<std::uint64_t>(dense_fx.rows());
    row["active_rows"] = static_cast<std::uint64_t>(dense_fx.active_rows());
    row["dense_ns_per_swap"] = dense_ns;
    row["sparse_ns_per_swap"] = sparse_ns;
    row["incremental_ns_per_swap"] = incr_ns;
    row["vector_ns_per_swap"] = vector_ns;
    row["speedup_sparse_vs_dense"] = sparse_ns > 0.0 ? dense_ns / sparse_ns
                                                     : 0.0;
    row["speedup_incremental_vs_dense"] =
        incr_ns > 0.0 ? dense_ns / incr_ns : 0.0;
    row["speedup_vector_vs_dense"] =
        vector_ns > 0.0 ? dense_ns / vector_ns : 0.0;
    rows.push_back(std::move(row));
    std::printf(
        "swap_kernel p=%u rows=%u: dense %.1f ns, sparse %.1f ns, "
        "incremental %.1f ns (%.2fx), vector %.1f ns (%.2fx)\n",
        p, dense_fx.rows(), dense_ns, sparse_ns, incr_ns,
        incr_ns > 0.0 ? dense_ns / incr_ns : 0.0, vector_ns,
        vector_ns > 0.0 ? dense_ns / vector_ns : 0.0);
  }
  report["scales"] = std::move(rows);

  // Multi-replica head-to-head over one shared window. "scalar" is the
  // dense full-row MAC — the scalar execution of the exact computation
  // the bit-sliced batch vectorizes (and what the CIM array physically
  // does). "sparse" is the production host-side shortcut that skips
  // known-zero rows: an algorithmic optimisation reported alongside, not
  // the vectorization baseline. Identically-seeded fixtures must agree on
  // the accumulated deltas (the batch is semantically a per-request
  // loop).
  const std::vector<std::size_t> replica_counts =
      smoke ? std::vector<std::size_t>{8} : std::vector<std::size_t>{2, 8, 16};
  const std::uint32_t kReplicaP = 8;
  const std::size_t rounds = smoke ? 4000 : 40000;
  cim::util::Json replica_rows = cim::util::Json::array();
  for (const std::size_t replicas : replica_counts) {
    ReplicaSwapFixture scalar_fx(kReplicaP, replicas);
    ReplicaSwapFixture sparse_fx(kReplicaP, replicas);
    ReplicaSwapFixture vector_fx2(kReplicaP, replicas);
    const auto time_rounds = [rounds](auto&& round) {
      std::int64_t checksum = 0;
      for (std::size_t it = 0; it < rounds / 10 + 1; ++it) {
        checksum += round();  // warm-up
      }
      cim::util::Timer timer;
      for (std::size_t it = 0; it < rounds; ++it) {
        checksum += round();
      }
      return std::pair<double, std::int64_t>{timer.seconds(), checksum};
    };
    const auto [scalar_s, scalar_sum] =
        time_rounds([&] { return scalar_fx.scalar_round(); });
    const auto [sparse_s, sparse_sum] =
        time_rounds([&] { return sparse_fx.sparse_round(); });
    const auto [vector_s, vector_sum] =
        time_rounds([&] { return vector_fx2.vector_round(); });
    CIM_REQUIRE(scalar_sum == sparse_sum && scalar_sum == vector_sum,
                "replica swap passes disagree on energy deltas");
    const double swaps =
        static_cast<double>(rounds) * static_cast<double>(replicas);
    const double scalar_ns = scalar_s * 1e9 / swaps;
    const double sparse_ns = sparse_s * 1e9 / swaps;
    const double vector_ns = vector_s * 1e9 / swaps;

    TELEM_COUNTER_ADD("bench.swap_kernel.replica_swaps_timed",
                      3 * rounds * replicas);
    TELEM_COUNTER_EVENT("bench.swap_kernel.replicas",
                        {"replicas", static_cast<double>(replicas)},
                        {"scalar_ns_per_swap", scalar_ns},
                        {"sparse_ns_per_swap", sparse_ns},
                        {"vector_ns_per_swap", vector_ns});

    cim::util::Json row = cim::util::Json::object();
    row["replicas"] = static_cast<std::uint64_t>(replicas);
    row["p"] = static_cast<std::uint64_t>(kReplicaP);
    row["window_rows"] = static_cast<std::uint64_t>(scalar_fx.rows());
    row["scalar_ns_per_swap"] = scalar_ns;
    row["sparse_ns_per_swap"] = sparse_ns;
    row["vector_ns_per_swap"] = vector_ns;
    row["speedup_vector_vs_scalar"] =
        vector_ns > 0.0 ? scalar_ns / vector_ns : 0.0;
    row["speedup_vector_vs_sparse"] =
        vector_ns > 0.0 ? sparse_ns / vector_ns : 0.0;
    replica_rows.push_back(std::move(row));
    std::printf(
        "swap_kernel replicas=%zu p=%u: scalar %.1f ns/swap, sparse %.1f "
        "ns/swap, vector %.1f ns/swap (%.2fx vs scalar, %.2fx vs sparse)\n",
        replicas, kReplicaP, scalar_ns, sparse_ns, vector_ns,
        vector_ns > 0.0 ? scalar_ns / vector_ns : 0.0,
        vector_ns > 0.0 ? sparse_ns / vector_ns : 0.0);
  }
  report["replica_scales"] = std::move(replica_rows);
  report.save(out_path);
  std::printf("wrote %s\n", out_path.c_str());
}

/// An annealer-shaped epoch workload: a bank of independent swap-kernel
/// slots, each with its own persistent RNG stream. One epoch updates all
/// slots on T tasks (task t takes slots t, t+T, …), exactly like the
/// color-parallel phase of the clustered annealer. Because every slot's
/// swap sequence is a pure function of its own RNG, the accumulated
/// checksum is identical for any task count and any scheduling backend.
class EpochWorkload {
 public:
  EpochWorkload(std::size_t slots, std::uint32_t p, std::size_t swaps)
      : swaps_per_slot_(swaps) {
    slots_.reserve(slots);
    for (std::size_t s = 0; s < slots; ++s) {
      slots_.push_back(std::make_unique<SwapKernelFixture>(p));
      rngs_.emplace_back(0x9e3779b9ULL + s);
      sums_.push_back(0);
    }
  }

  std::size_t slots() const { return slots_.size(); }

  void run_slot(std::size_t s) {
    std::int64_t sum = 0;
    for (std::size_t it = 0; it < swaps_per_slot_; ++it) {
      sum += slots_[s]->incremental_swap(rngs_[s]);
    }
    sums_[s] += sum;
  }

  void run_strided(std::size_t task, std::size_t tasks) {
    for (std::size_t s = task; s < slots_.size(); s += tasks) run_slot(s);
  }

  std::int64_t checksum() const {
    std::int64_t sum = 0;
    for (const std::int64_t s : sums_) sum += s;
    return sum;
  }

 private:
  std::size_t swaps_per_slot_;
  std::vector<std::unique_ptr<SwapKernelFixture>> slots_;
  std::vector<cim::util::Rng> rngs_;
  std::vector<std::int64_t> sums_;
};

/// Times the per-epoch-spawn baseline against the persistent ThreadPool
/// over the same epoch loop and writes BENCH_parallel_runtime.json. Both
/// variants run the identical workload (checked via checksum), and the
/// pool's threads_created() counter must not grow across the epoch loop —
/// the whole point of the runtime is zero thread creations per epoch.
void write_parallel_runtime_report() {
  TELEM_SCOPE("bench.parallel_runtime");
  const bool smoke = cim::util::Args::env_flag("CIMANNEAL_BENCH_SMOKE");
  const char* out_env = std::getenv("CIMANNEAL_BENCH_OUT_RUNTIME");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_parallel_runtime.json";
  const std::size_t kSlots = smoke ? 16 : 64;
  const std::size_t kSwapsPerSlot = smoke ? 8 : 16;
  const std::size_t kEpochs = smoke ? 40 : 400;
  const std::vector<std::size_t> task_counts = smoke
                                                   ? std::vector<std::size_t>{2, 8}
                                                   : std::vector<std::size_t>{2, 4, 8};

  cim::util::Json report = cim::util::Json::object();
  report["benchmark"] = "parallel_runtime";
  report["smoke"] = smoke;
  report["slots"] = static_cast<std::uint64_t>(kSlots);
  report["swaps_per_slot"] = static_cast<std::uint64_t>(kSwapsPerSlot);
  report["epochs"] = static_cast<std::uint64_t>(kEpochs);
  cim::util::Json rows = cim::util::Json::array();

  for (const std::size_t tasks : task_counts) {
    // Fresh, identically-seeded workloads per variant: the checksum
    // comparison below then proves both executed the same swaps.
    EpochWorkload spawn_work(kSlots, 4, kSwapsPerSlot);
    EpochWorkload pool_work(kSlots, 4, kSwapsPerSlot);

    // Baseline: what the annealer used to do — T fresh threads per epoch.
    cim::util::Timer spawn_timer;
    for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
      std::vector<std::thread> threads;  // NOLINT(raw-thread): this IS the spawn baseline being measured
      threads.reserve(tasks);
      for (std::size_t t = 0; t < tasks; ++t) {
        threads.emplace_back(
            [&spawn_work, t, tasks] { spawn_work.run_strided(t, tasks); });
      }
      for (auto& th : threads) th.join();
    }
    const double spawn_ns =
        spawn_timer.seconds() * 1e9 / static_cast<double>(kEpochs);

    // The persistent pool, sized like color_threads=tasks. Constructed
    // outside the timed loop — exactly how the annealer holds the shared
    // pool across colors, epochs, and levels.
    cim::util::ThreadPool pool(tasks);
    const std::uint64_t created_before = pool.threads_created();
    cim::util::Timer pool_timer;
    for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
      pool.run(tasks,
               [&pool_work, tasks](std::size_t t) {
                 pool_work.run_strided(t, tasks);
               });
    }
    const double pool_ns =
        pool_timer.seconds() * 1e9 / static_cast<double>(kEpochs);
    const std::uint64_t created_during = pool.threads_created() - created_before;

    CIM_REQUIRE(spawn_work.checksum() == pool_work.checksum(),
                "spawn and pool epoch variants disagree on swap deltas");
    CIM_REQUIRE(created_during == 0,
                "ThreadPool created threads inside the epoch loop");

    TELEM_COUNTER_ADD("bench.parallel_runtime.epochs_timed", 2 * kEpochs);
    TELEM_COUNTER_EVENT("bench.parallel_runtime",
                        {"tasks", static_cast<double>(tasks)},
                        {"spawn_ns_per_epoch", spawn_ns},
                        {"pool_ns_per_epoch", pool_ns});

    cim::util::Json row = cim::util::Json::object();
    row["tasks"] = static_cast<std::uint64_t>(tasks);
    row["spawn_ns_per_epoch"] = spawn_ns;
    row["pool_ns_per_epoch"] = pool_ns;
    row["speedup_pool_vs_spawn"] = pool_ns > 0.0 ? spawn_ns / pool_ns : 0.0;
    row["pool_threads_created_during_epochs"] = created_during;
    row["checksum"] = static_cast<long long>(pool_work.checksum());
    rows.push_back(std::move(row));
    std::printf(
        "parallel_runtime tasks=%zu: spawn %.1f ns/epoch, pool %.1f ns/epoch "
        "(%.2fx), threads created in loop: %llu\n",
        tasks, spawn_ns, pool_ns, pool_ns > 0.0 ? spawn_ns / pool_ns : 0.0,
        static_cast<unsigned long long>(created_during));
  }
  report["task_counts"] = std::move(rows);
  report.save(out_path);
  std::printf("wrote %s\n", out_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_swap_kernel_report();
  write_parallel_runtime_report();

  // Export the registry so CI archives a bench telemetry artifact. The
  // snapshot lands at CIMANNEAL_BENCH_OUT_TRACE (default
  // BENCH_telemetry.json), the Chrome trace next to it.
  const char* telem_env = std::getenv("CIMANNEAL_BENCH_OUT_TRACE");
  const std::string telem_path =
      telem_env != nullptr ? telem_env : "BENCH_telemetry.json";
  std::string trace_path = telem_path;
  const std::string suffix = ".json";
  if (trace_path.size() > suffix.size() &&
      trace_path.compare(trace_path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    trace_path.resize(trace_path.size() - suffix.size());
  }
  trace_path += ".trace.json";
  const auto& telem = cim::util::telemetry::Registry::global();
  telem.save_snapshot(telem_path);
  telem.save_trace(trace_path);
  std::printf("wrote %s and %s\n", telem_path.c_str(), trace_path.c_str());
  return 0;
}
