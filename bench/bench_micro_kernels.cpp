// google-benchmark micro-kernels: the hot operations of the functional
// simulator (window MACs on both backends, write-back with noise
// injection, adder-tree reduction, swap evaluation) and the supporting
// geometry (kd-tree queries).
#include <benchmark/benchmark.h>

#include "cim/adder_tree.hpp"
#include "cim/storage.hpp"
#include "cim/window.hpp"
#include "geo/kdtree.hpp"
#include "ising/pbm.hpp"
#include "noise/sram_model.hpp"
#include "tsp/generator.hpp"
#include "util/random.hpp"

namespace {

std::vector<std::uint8_t> random_image(std::uint32_t rows,
                                       std::uint32_t cols,
                                       std::uint64_t seed) {
  cim::util::Rng rng(seed);
  std::vector<std::uint8_t> image(static_cast<std::size_t>(rows) * cols);
  for (auto& w : image) w = static_cast<std::uint8_t>(rng.below(256));
  return image;
}

void BM_WindowMacFast(benchmark::State& state) {
  const auto p = static_cast<std::uint32_t>(state.range(0));
  const cim::hw::WindowShape shape = cim::hw::WindowShape::hardware(p);
  auto storage =
      cim::hw::make_fast_storage(shape.rows(), shape.cols(), nullptr, 0);
  storage->write(random_image(shape.rows(), shape.cols(), 1));
  std::vector<std::uint8_t> input(shape.rows(), 0);
  for (std::uint32_t i = 0; i < p; ++i) input[i * p + i % p] = 1;
  std::uint32_t col = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage->mac(col, input));
    col = (col + 1) % shape.cols();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WindowMacFast)->Arg(2)->Arg(3)->Arg(4);

void BM_WindowMacBitLevel(benchmark::State& state) {
  const auto p = static_cast<std::uint32_t>(state.range(0));
  const cim::hw::WindowShape shape = cim::hw::WindowShape::hardware(p);
  auto storage = cim::hw::make_bit_level_storage(shape.rows(), shape.cols(),
                                                 nullptr, 0);
  storage->write(random_image(shape.rows(), shape.cols(), 2));
  std::vector<std::uint8_t> input(shape.rows(), 1);
  std::uint32_t col = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage->mac(col, input));
    col = (col + 1) % shape.cols();
  }
}
BENCHMARK(BM_WindowMacBitLevel)->Arg(3);

void BM_WriteBackNoisy(benchmark::State& state) {
  const cim::hw::WindowShape shape = cim::hw::WindowShape::hardware(3);
  static const cim::noise::SramCellModel model;
  auto storage =
      cim::hw::make_fast_storage(shape.rows(), shape.cols(), &model, 0);
  storage->write(random_image(shape.rows(), shape.cols(), 3));
  cim::noise::SchedulePhase phase;
  phase.vdd = 0.30;
  phase.noisy_lsbs = 6;
  for (auto _ : state) {
    storage->write_back(phase);
    ++phase.epoch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          shape.weights());
}
BENCHMARK(BM_WriteBackNoisy);

void BM_AdderTreeReduce(benchmark::State& state) {
  const auto fan_in = static_cast<std::uint32_t>(state.range(0));
  cim::hw::AdderTree tree(fan_in);
  std::vector<std::uint8_t> products(fan_in, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.reduce(products));
  }
}
BENCHMARK(BM_AdderTreeReduce)->Arg(8)->Arg(15)->Arg(24);

void BM_PseudoReadDecision(benchmark::State& state) {
  static const cim::noise::SramCellModel model;
  std::uint64_t cell = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.settled_value(cell++, 3, 0.34, true));
  }
}
BENCHMARK(BM_PseudoReadDecision);

void BM_PbmSwapDelta(benchmark::State& state) {
  static const auto inst = cim::tsp::generate_uniform(1000, 7);
  cim::ising::PbmState pbm(inst, cim::tsp::Tour::identity(1000));
  cim::util::Rng rng(1);
  for (auto _ : state) {
    const auto i = static_cast<std::size_t>(rng.below(1000));
    const auto j = static_cast<std::size_t>(rng.below(1000));
    benchmark::DoNotOptimize(pbm.swap_delta(i, j));
  }
}
BENCHMARK(BM_PbmSwapDelta);

void BM_KdTreeNearest(benchmark::State& state) {
  const auto inst = cim::tsp::generate_uniform(
      static_cast<std::size_t>(state.range(0)), 9);
  const cim::geo::KdTree tree(inst.coords());
  cim::util::Rng rng(2);
  for (auto _ : state) {
    const cim::geo::Point q{rng.uniform(0.0, 10000.0),
                            rng.uniform(0.0, 10000.0)};
    benchmark::DoNotOptimize(tree.nearest(q));
  }
}
BENCHMARK(BM_KdTreeNearest)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
