// Extension bench: spatial statistics of the synthetic instance mimics —
// the evidence behind DESIGN.md's substitution table. Each TSPLIB family
// should land in its own region of (clustering, grid-alignment) space,
// matching the property the clustered annealer is sensitive to.
#include <cstdio>

#include "bench_common.hpp"
#include "tsp/generator.hpp"
#include "tsp/instance_stats.hpp"
#include "util/table.hpp"

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "Extension — synthetic instance family statistics",
      "DESIGN.md substitution: mimics must reproduce each family's "
      "spatial signature");

  const std::vector<std::string> names =
      cim::bench::full_scale()
          ? std::vector<std::string>{"pcb3038", "rl5915", "usa13509",
                                     "pla33810", "uniform5000"}
          : std::vector<std::string>{"pcb1173", "rl1304", "geo1500",
                                     "pla1500", "uniform1500"};

  Table table({"instance", "N", "NN ratio", "NN coeff. of var.",
               "axis alignment", "signature"});
  table.set_title(
      "NN ratio: <1 clustered, ~1 uniform, >1 regular; axis alignment: "
      "grid structure");
  for (const auto& name : names) {
    const auto inst = cim::tsp::make_paper_instance(name);
    const auto stats = cim::tsp::compute_stats(inst);
    const char* signature = "uniform";
    if (stats.axis_alignment > 0.3) {
      signature = "grid/rows (pcb/pla)";
    } else if (stats.nn_ratio < 0.85) {
      signature = "clustered (rl/usa/d)";
    }
    table.add_row(
        {name, Table::integer(static_cast<long long>(inst.size())),
         Table::num(stats.nn_ratio, 2), Table::num(stats.nn_cv, 2),
         Table::percent(stats.axis_alignment, 1), signature});
  }
  table.add_footnote(
      "pcb/pla families: high axis alignment (drill grids, pad rows); "
      "rl/usa/geo: low NN ratio + high variation (heavy clustering); "
      "uniform: NN ratio ~ 1");
  table.print();
  return 0;
}
