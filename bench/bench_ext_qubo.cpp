// Extension bench: the generic QUBO/Ising front-end on the noisy
// digital-CIM substrate. One quality/speed row per problem family —
// Max-Cut from GSet files (through the strict parser), penalty-encoded
// graph colouring and 0/1 knapsack — swept over the clustering-strategy
// hook (chromatic windows vs index blocks). Every instance is also run
// through all four kernel variants (scalar/vector × memo on/off) and the
// row records whether they were bit-identical (energies, spins, flips,
// StorageCounters).
//
// Writes BENCH_ext_qubo.json (CIMANNEAL_BENCH_OUT_QUBO overrides the
// path; CIMANNEAL_BENCH_SMOKE=1 shrinks seeds/sweeps for CI). Oracles:
// brute-force maximum cut / colourability / best knapsack value on the
// small instances, best-of-8 greedy on the generated graph.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "anneal/generic_annealer.hpp"
#include "bench_common.hpp"
#include "ising/generic.hpp"
#include "ising/maxcut.hpp"
#include "qubo/coloring.hpp"
#include "qubo/io.hpp"
#include "qubo/knapsack.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using cim::util::Json;
using cim::util::Table;

struct Workload {
  std::string family;      ///< "maxcut" | "coloring" | "knapsack"
  std::string instance;
  cim::ising::GenericModel model;
  bool oracle_known = false;
  double oracle_energy = 0.0;  ///< model-unit optimum when known
  std::string note;            ///< oracle provenance for the table
  long long maxcut_total = 0;  ///< total edge weight (maxcut rows only)
};

cim::anneal::GenericAnnealConfig base_config(bool smoke) {
  cim::anneal::GenericAnnealConfig config;
  config.schedule.total_iterations = smoke ? 150 : 400;
  config.schedule.iterations_per_step = 25;
  return config;
}

/// All four kernel variants at seed 1 must agree bit-for-bit.
bool variants_agree(const cim::ising::GenericModel& model, bool smoke) {
  auto config = base_config(smoke);
  config.seed = 1;
  const cim::anneal::GenericResult* reference = nullptr;
  cim::anneal::GenericResult results[4];
  int index = 0;
  for (const bool vector_kernel : {false, true}) {
    for (const bool memoize : {false, true}) {
      config.vector_kernel = vector_kernel;
      config.memoize_partial_sums = memoize;
      results[index] =
          cim::anneal::GenericAnnealer(config).solve(model);
      const auto& r = results[index];
      if (reference == nullptr) {
        reference = &results[index];
      } else if (r.spins != reference->spins ||
                 r.best_spins != reference->best_spins ||
                 r.energy_hw != reference->energy_hw ||
                 r.best_energy_hw != reference->best_energy_hw ||
                 r.flips != reference->flips ||
                 r.update_cycles != reference->update_cycles ||
                 r.storage.macs != reference->storage.macs ||
                 r.storage.mac_bit_reads != reference->storage.mac_bit_reads ||
                 r.storage.writeback_events !=
                     reference->storage.writeback_events ||
                 r.storage.writeback_bits != reference->storage.writeback_bits ||
                 r.storage.pseudo_read_flips !=
                     reference->storage.pseudo_read_flips) {
        return false;
      }
      ++index;
    }
  }
  return true;
}

}  // namespace

int main() {
  try {
    const bool smoke = cim::util::Args::env_flag("CIMANNEAL_BENCH_SMOKE");
    const char* out_env = std::getenv("CIMANNEAL_BENCH_OUT_QUBO");
    const std::string out_path =
        out_env != nullptr ? out_env : "BENCH_ext_qubo.json";
    const std::string fixtures = QUBO_FIXTURE_DIR;
    cim::bench::print_header(
        "Extension — generic QUBO/Ising front-end",
        "DESIGN.md §17: GSet/J-h loaders + penalty families on the "
        "clustered-window machinery");

    std::vector<Workload> workloads;

    // Max-Cut family: the fixture GSet files go through the strict
    // parser; optima are exhaustive. One generated graph uses best-of-8
    // greedy as the reference instead.
    for (const char* file : {"ring8.gset", "petersen.gset", "signed5.gset"}) {
      auto problem = cim::qubo::load_gset_file(fixtures + "/" + file);
      const long long optimum = cim::ising::brute_force_maxcut(problem);
      const long long total = problem.total_weight();
      Workload w{"maxcut", file,
                 cim::ising::GenericModel::from_maxcut(problem), true,
                 static_cast<double>(total - 2 * optimum),
                 "opt cut " + std::to_string(optimum) + " (exhaustive)",
                 total};
      workloads.push_back(std::move(w));
    }
    {
      const auto problem = cim::ising::random_maxcut(128, 0.05, 7, 3);
      long long greedy = 0;
      for (std::uint64_t restart = 0; restart < 8; ++restart) {
        greedy = std::max(greedy,
                          cim::ising::greedy_maxcut(problem, restart));
      }
      Workload w{"maxcut", "G(128,5%)",
                 cim::ising::GenericModel::from_maxcut(problem), false, 0.0,
                 "greedy x8 cut " + std::to_string(greedy),
                 problem.total_weight()};
      workloads.push_back(std::move(w));
    }

    // Colouring family: both instances are colourable, so the penalty
    // optimum is exactly 0 (exhaustive via brute_force_colorable).
    for (auto& instance :
         {cim::qubo::ring_coloring(10, 2), cim::qubo::petersen_coloring(3)}) {
      const bool colorable = cim::qubo::brute_force_colorable(instance);
      auto encoding = cim::qubo::encode_coloring(instance);
      Workload w{"coloring", instance.name, std::move(encoding.model),
                 colorable, 0.0,
                 colorable ? "feasible at energy 0" : "not colourable"};
      workloads.push_back(std::move(w));
    }

    // Knapsack family: optimum energy is −(best value), exhaustive.
    for (auto& instance :
         {cim::qubo::make_knapsack("knap4", {6, 5, 4, 3}, {3, 2, 2, 1}, 5),
          cim::qubo::make_knapsack("knap6", {7, 2, 5, 4, 3, 6},
                                   {4, 1, 3, 2, 2, 5}, 7)}) {
      const long long oracle = cim::qubo::brute_force_knapsack(instance);
      auto encoding = cim::qubo::encode_knapsack(instance);
      Workload w{"knapsack", instance.name, std::move(encoding.model), true,
                 -static_cast<double>(oracle),
                 "opt value " + std::to_string(oracle) + " (exhaustive)"};
      workloads.push_back(std::move(w));
    }

    const struct {
      cim::ising::GroupStrategy strategy;
      std::uint32_t block;
    } strategies[] = {
        {cim::ising::GroupStrategy::kChromatic, 64},
        {cim::ising::GroupStrategy::kIndexBlocks, 16},
    };

    Table table({"family", "instance", "spins", "strategy", "best energy",
                 "oracle", "gap", "equiv", "hw cycles", "time"});
    Json rows = Json::array();
    bool all_equivalent = true;
    const std::uint64_t seed_count = smoke ? 2 : 6;

    for (const auto& workload : workloads) {
      const bool equivalent = variants_agree(workload.model, smoke);
      all_equivalent = all_equivalent && equivalent;
      for (const auto& axis : strategies) {
        auto config = base_config(smoke);
        config.strategy = axis.strategy;
        config.group_block = axis.block;
        cim::util::Timer timer;
        double best = 0.0;
        bool have_best = false;
        std::uint64_t cycles = 0;
        std::size_t flips = 0;
        bool exact = false;
        bool parallel = false;
        for (std::uint64_t seed = 1; seed <= seed_count; ++seed) {
          config.seed = seed;
          const auto result =
              cim::anneal::GenericAnnealer(config).solve(workload.model);
          if (!have_best || result.best_energy < best) {
            best = result.best_energy;
          }
          have_best = true;
          cycles += result.update_cycles;
          flips += result.flips;
          exact = result.exact_mapping;
          parallel = result.parallel_groups;
        }
        const double seconds = timer.seconds();
        const double gap =
            workload.oracle_known ? best - workload.oracle_energy : 0.0;

        const char* strategy_name =
            cim::ising::group_strategy_name(axis.strategy);
        table.add_row(
            {workload.family, workload.instance,
             Table::integer(static_cast<long long>(workload.model.size())),
             strategy_name, Table::num(best, 1),
             workload.oracle_known ? Table::num(workload.oracle_energy, 1)
                                   : workload.note,
             workload.oracle_known ? Table::num(gap, 1) : "n/a",
             equivalent ? "yes" : "NO",
             Table::sci(static_cast<double>(cycles), 2),
             Table::num(seconds, 3) + "s"});

        Json row = Json::object();
        row["family"] = workload.family;
        row["instance"] = workload.instance;
        row["spins"] = static_cast<long long>(workload.model.size());
        row["strategy"] = strategy_name;
        row["parallel_groups"] = parallel;
        row["seeds"] = static_cast<long long>(seed_count);
        row["best_energy"] = best;
        row["oracle_known"] = workload.oracle_known;
        row["oracle_energy"] = workload.oracle_energy;
        row["oracle_gap"] = gap;
        // Energies are exact hw integers, so a zero gap is exact too.
        row["reached_oracle"] =
            workload.oracle_known && gap == 0.0;  // NOLINT(unit-float-eq)
        row["oracle_note"] = workload.note;
        if (workload.family == "maxcut") {
          // E_hw = W_total − 2·cut for from_maxcut models (multiplier 1).
          row["best_cut"] =
              (workload.maxcut_total - static_cast<long long>(best)) / 2;
        }
        row["variants_equivalent"] = equivalent;
        row["exact_mapping"] = exact;
        row["solve_seconds"] = seconds;
        row["update_cycles"] = static_cast<long long>(cycles);
        row["flips"] = static_cast<long long>(flips);
        rows.push_back(std::move(row));
      }
    }
    table.add_footnote(
        "best energy over " + std::to_string(seed_count) +
        " seeds, model units; equiv = scalar/vector x memo variants "
        "bit-identical incl. StorageCounters");
    table.print();

    Json report = Json::object();
    report["benchmark"] = "ext_qubo";
    report["smoke"] = smoke;
    Json families = Json::array();
    families.push_back(Json("maxcut"));
    families.push_back(Json("coloring"));
    families.push_back(Json("knapsack"));
    report["families"] = std::move(families);
    report["all_variants_equivalent"] = all_equivalent;
    report["rows"] = std::move(rows);
    report.save(out_path);
    std::printf("wrote %s\n", out_path.c_str());
    return all_equivalent ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_ext_qubo: %s\n", e.what());
    return 1;
  }
}
