// Extension bench: weight-precision ablation. §III.B adopts 8-bit weights
// "to ensure solution quality" and to give the noise-control granularity
// (6 noisy LSBs); this sweep shows what lower precision costs and what it
// saves in SRAM.
#include <cstdio>

#include "anneal/clustered_annealer.hpp"
#include "bench_common.hpp"
#include "heuristics/reference.hpp"
#include "ppa/capacity.hpp"
#include "tsp/generator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "Extension — weight precision ablation",
      "paper §III.B: 8-bit weights chosen for solution quality and noise "
      "granularity");

  const std::string name =
      cim::bench::full_scale() ? "pcb3038" : "pcb1173";
  const auto inst = cim::tsp::make_paper_instance(name);
  const auto reference = cim::heuristics::compute_reference(inst);
  const std::size_t seeds = 3;

  Table table({"weight bits", "noisy LSBs", "mean ratio", "capacity",
               "capacity vs 8-bit"});
  table.set_title(name + " — precision sweep (mean of " +
                  std::to_string(seeds) + " seeds)");

  const cim::ppa::CapacityModel cap8;
  const double weights =
      cap8.compact_weights_semiflex(static_cast<double>(inst.size()), 3.0);
  for (unsigned bits = 2; bits <= 8; ++bits) {
    // Keep the same noisy/clean split ratio as the paper's 6-of-8.
    const unsigned noisy = bits * 6 / 8;
    cim::util::RunningStats ratio;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      cim::anneal::AnnealerConfig config;
      config.clustering.p = 3;
      config.weight_bits = bits;
      config.schedule.lsb_start = noisy;
      config.seed = seed;
      const auto result =
          cim::anneal::ClusteredAnnealer(config).solve(inst);
      ratio.add(static_cast<double>(result.length) /
                static_cast<double>(reference.length));
    }
    const double bits_total = weights * bits;
    table.add_row({Table::integer(bits), Table::integer(noisy),
                   Table::num(ratio.mean(), 3),
                   cim::util::format_bits(bits_total),
                   Table::percent(bits / 8.0, 0)});
  }
  table.add_footnote(
      "expected: quality degrades once quantisation cells exceed typical "
      "inter-city distance gaps (<= 4 bits), saturating by ~6-8 bits");
  table.print();
  return 0;
}
