// Table II: PPA evaluation settings — window size, array size and array
// area per p_max, computed from the geometry/area models and compared
// against the paper's published values.
#include <cstdio>

#include "bench_common.hpp"
#include "ppa/area.hpp"
#include "ppa/breakdown.hpp"
#include "util/table.hpp"

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "Table II — array geometry and area per p_max",
      "paper Table II: 16/14nm FinFET, 8-bit weights, 5x2 windows/array");

  struct PaperRow {
    std::uint32_t p;
    const char* window;
    const char* array;
    double area_h;
    double area_w;
  };
  constexpr PaperRow kPaper[] = {
      {2, "8x4", "40x64", 57.0, 55.0},
      {3, "15x9", "75x144", 102.0, 98.0},
      {4, "24x16", "120x256", 161.0, 162.0},
  };

  Table table({"p_max", "window (rows x cols)", "array (cells)",
               "array area (um x um)", "paper window", "paper array",
               "paper area"});
  for (const auto& row : kPaper) {
    cim::hw::ArrayGeometry geom;
    geom.p_max = row.p;
    const auto shape = geom.window();
    const auto area = cim::ppa::array_area(geom);
    table.add_row(
        {Table::integer(row.p),
         std::to_string(shape.rows()) + "x" + std::to_string(shape.cols()),
         std::to_string(geom.cell_rows()) + "x" +
             std::to_string(geom.cell_cols()),
         Table::num(area.height_um, 0) + "x" + Table::num(area.width_um, 0),
         row.window, row.array,
         Table::num(row.area_h, 0) + "x" + Table::num(row.area_w, 0)});
  }
  table.add_footnote(
      "cell geometry fitted to the paper's three published array areas "
      "(DESIGN.md section 6); residual <= ~3%");
  table.print();

  // Component decomposition (NeuroSim-style; Fig. 5(c) blocks).
  Table parts({"p_max", "cells", "adder trees", "write drv", "decoders",
               "switch matrix", "cell fraction"});
  parts.set_title("array area breakdown (um^2)");
  for (const auto& row : kPaper) {
    cim::hw::ArrayGeometry geom;
    geom.p_max = row.p;
    const auto b = cim::ppa::array_area_breakdown(geom);
    parts.add_row({Table::integer(row.p), Table::num(b.cell_array.um2(), 0),
                   Table::num(b.adder_trees.um2(), 0),
                   Table::num(b.write_drivers.um2(), 0),
                   Table::num(b.decoders.um2(), 0),
                   Table::num(b.switch_matrix.um2(), 0),
                   Table::percent(b.cell_fraction(), 1)});
  }
  parts.add_footnote(
      "peripheral share shrinks as p_max grows — the digital-CIM density "
      "argument of section II.B");
  parts.print();
  return 0;
}
