// Reuse-layer head-to-head (DESIGN.md §16): the three memory-hierarchy
// optimisations measured against their baselines on one report.
//
//   warm_start    cold vs. warm-started solve of the same instance:
//                 time to reach a 1% optimality gap against the best
//                 final tour either run produced. The warm run seeds the
//                 ring/slot order from the persistent store, so it starts
//                 inside the gap the cold run spends most of its epochs
//                 closing.
//   scan          candidate-scan throughput: blocked NeighborLists
//                 distances (contiguous, precomputed) vs. recomputing
//                 instance.distance() per visit. Checksums must match —
//                 the stored values are the exact TSPLIB integers.
//   memoization   full annealer run with the per-slot partial-sum memo on
//                 vs. off. Tours, lengths and hardware MAC counters must
//                 be bit-identical (§9 equivalence); only wall time and
//                 the hit counters may differ.
//
// Writes BENCH_reuse.json (CIMANNEAL_BENCH_OUT_REUSE overrides the path;
// CIMANNEAL_BENCH_SMOKE=1 shrinks the workloads for CI). See
// EXPERIMENTS.md for the report schema.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "anneal/clustered_annealer.hpp"
#include "bench_common.hpp"
#include "store/warm_start.hpp"
#include "tsp/fingerprint.hpp"
#include "tsp/generator.hpp"
#include "tsp/neighbors.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

/// Seconds until the recorded trace first dips to `target`, scaled from
/// the run's wall time (the trace is sampled once per iteration). A run
/// that never reaches the target is charged its full wall time.
double time_to_target(const std::vector<double>& trace, double target,
                      double wall_seconds) {
  if (trace.empty()) return wall_seconds;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i] <= target) {
      return wall_seconds * static_cast<double>(i + 1) /
             static_cast<double>(trace.size());
    }
  }
  return wall_seconds;
}

cim::util::Json warm_start_section(bool smoke) {
  const auto instance =
      cim::tsp::generate_clustered(smoke ? 400 : 2000, 8, 1234);
  const std::string key = cim::tsp::instance_fingerprint(instance);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "cim_bench_reuse_store")
          .string();
  std::filesystem::remove_all(dir);

  cim::anneal::AnnealerConfig config;
  config.clustering.p = 3;
  config.seed = 7;
  config.record_trace = true;

  cim::util::Timer timer;
  const cim::anneal::ClusteredAnnealer cold_annealer(config);
  const auto cold = cold_annealer.solve(instance);
  const double cold_wall = timer.seconds();

  cim::store::WarmStartStore store(dir);
  const auto cold_order = cold.tour.order();
  store.store_tour(key, cold_order, cold.length);

  auto warm_config = config;
  const auto stored = store.load_tour(key, instance.size());
  CIM_REQUIRE(stored.has_value(), "bench_reuse: stored tour did not load");
  warm_config.initial_order = *stored;
  timer.restart();
  const cim::anneal::ClusteredAnnealer warm_annealer(warm_config);
  const auto warm = warm_annealer.solve(instance);
  const double warm_wall = timer.seconds();

  const double best_final =
      static_cast<double>(std::min(cold.length, warm.length));
  const double target = 1.01 * best_final;
  const double cold_ttt = time_to_target(cold.trace, target, cold_wall);
  // The warm run's starting tour is the cold run's final one: when it is
  // already inside the 1% gap, the warm solve reaches the target by its
  // first iteration.
  const double warm_first_sample =
      warm_wall / static_cast<double>(std::max<std::size_t>(
                      warm.trace.size(), 1));
  const double warm_ttt =
      static_cast<double>(cold.length) <= target
          ? warm_first_sample
          : time_to_target(warm.trace, target, warm_wall);

  cim::util::Json section = cim::util::Json::object();
  section["cities"] = static_cast<std::uint64_t>(instance.size());
  section["cold_seconds"] = cold_wall;
  section["warm_seconds"] = warm_wall;
  section["cold_length"] = static_cast<std::uint64_t>(cold.length);
  section["warm_length"] = static_cast<std::uint64_t>(warm.length);
  section["target_length"] = target;
  section["cold_time_to_target_s"] = cold_ttt;
  section["warm_time_to_target_s"] = warm_ttt;
  section["speedup_time_to_target"] =
      warm_ttt > 0.0 ? cold_ttt / warm_ttt : 0.0;
  section["store_hits"] = store.stats().hits;
  section["store_stores"] = store.stats().stores;
  std::printf(
      "warm_start n=%zu: cold %.3fs (to-1%%-gap %.3fs), warm %.3fs "
      "(to-1%%-gap %.3fs), speedup %.1fx\n",
      instance.size(), cold_wall, cold_ttt, warm_wall, warm_ttt,
      warm_ttt > 0.0 ? cold_ttt / warm_ttt : 0.0);

  std::filesystem::remove_all(dir);
  return section;
}

cim::util::Json scan_section(bool smoke) {
  const auto instance =
      cim::tsp::generate_clustered(smoke ? 2000 : 20000, 16, 99);
  const std::size_t k = 12;
  cim::tsp::NeighborLists::Options options;
  options.with_distances = true;
  const cim::tsp::NeighborLists neighbors(instance, k, options);
  const std::size_t repeats = smoke ? 20 : 100;
  const std::size_t n = instance.size();

  // Tiled: read the blocked, precomputed candidate distances.
  cim::util::Timer timer;
  long long tiled_sum = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      for (const long long d :
           neighbors.dist_of(static_cast<cim::tsp::CityId>(c))) {
        tiled_sum += d;
      }
    }
  }
  const double tiled_s = timer.seconds();

  // Untiled: recompute each candidate distance on the fly.
  timer.restart();
  long long untiled_sum = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      for (const cim::tsp::CityId cand :
           neighbors.of(static_cast<cim::tsp::CityId>(c))) {
        untiled_sum +=
            instance.distance(static_cast<cim::tsp::CityId>(c), cand);
      }
    }
  }
  const double untiled_s = timer.seconds();
  CIM_REQUIRE(tiled_sum == untiled_sum,
              "bench_reuse: tiled and untiled scans disagree");

  const double candidates =
      static_cast<double>(repeats) * static_cast<double>(n) *
      static_cast<double>(k);
  cim::util::Json section = cim::util::Json::object();
  section["cities"] = static_cast<std::uint64_t>(n);
  section["k"] = static_cast<std::uint64_t>(k);
  section["candidates_scanned"] = candidates;
  section["tiled_ns_per_candidate"] = tiled_s * 1e9 / candidates;
  section["untiled_ns_per_candidate"] = untiled_s * 1e9 / candidates;
  section["speedup_tiled_vs_untiled"] =
      tiled_s > 0.0 ? untiled_s / tiled_s : 0.0;
  std::printf("scan n=%zu k=%zu: tiled %.2f ns/cand, untiled %.2f ns/cand "
              "(%.2fx)\n",
              n, k, tiled_s * 1e9 / candidates, untiled_s * 1e9 / candidates,
              tiled_s > 0.0 ? untiled_s / tiled_s : 0.0);
  return section;
}

cim::util::Json memoization_section(bool smoke) {
  const auto instance =
      cim::tsp::generate_clustered(smoke ? 300 : 1000, 6, 555);

  cim::anneal::AnnealerConfig memo_config;
  memo_config.clustering.p = 8;  // the acceptance point: p >= 8 windows
  memo_config.seed = 11;
  memo_config.memoize_partial_sums = true;
  auto recompute_config = memo_config;
  recompute_config.memoize_partial_sums = false;

  cim::util::Timer timer;
  const auto memo =
      cim::anneal::ClusteredAnnealer(memo_config).solve(instance);
  const double memo_s = timer.seconds();
  timer.restart();
  const auto recompute =
      cim::anneal::ClusteredAnnealer(recompute_config).solve(instance);
  const double recompute_s = timer.seconds();

  // §9 equivalence: the memo may only change wall time and hit counters.
  CIM_REQUIRE(memo.length == recompute.length &&
                  memo.tour == recompute.tour,
              "bench_reuse: memoized run diverged from recompute");
  CIM_REQUIRE(
      memo.hw.storage.macs == recompute.hw.storage.macs &&
          memo.hw.storage.mac_bit_reads == recompute.hw.storage.mac_bit_reads &&
          memo.hw.storage.pseudo_read_flips ==
              recompute.hw.storage.pseudo_read_flips,
      "bench_reuse: memoized run changed hardware MAC accounting");

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& level : memo.levels) {
    hits += level.memo_hits;
    misses += level.memo_misses;
  }
  const double hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;

  cim::util::Json section = cim::util::Json::object();
  section["cities"] = static_cast<std::uint64_t>(instance.size());
  section["p"] = static_cast<std::uint64_t>(memo_config.clustering.p);
  section["memo_seconds"] = memo_s;
  section["recompute_seconds"] = recompute_s;
  section["speedup_memo_vs_recompute"] =
      memo_s > 0.0 ? recompute_s / memo_s : 0.0;
  section["memo_hits"] = hits;
  section["memo_misses"] = misses;
  section["memo_hit_rate"] = hit_rate;
  section["identical"] = true;  // the CIM_REQUIREs above enforce it
  std::printf(
      "memoization n=%zu p=%zu: memo %.3fs, recompute %.3fs (%.2fx), "
      "hit rate %.2f%%\n",
      instance.size(), memo_config.clustering.p, memo_s, recompute_s,
      memo_s > 0.0 ? recompute_s / memo_s : 0.0, 100.0 * hit_rate);
  return section;
}

}  // namespace

int main() {
  try {
    const bool smoke = cim::util::Args::env_flag("CIMANNEAL_BENCH_SMOKE");
    const char* out_env = std::getenv("CIMANNEAL_BENCH_OUT_REUSE");
    const std::string out_path =
        out_env != nullptr ? out_env : "BENCH_reuse.json";
    cim::bench::print_header(
        "Reuse-aware memory hierarchy head-to-head",
        "DESIGN.md §16 (extension beyond the paper)");

    cim::util::Json report = cim::util::Json::object();
    report["benchmark"] = "reuse";
    report["smoke"] = smoke;
    report["warm_start"] = warm_start_section(smoke);
    report["scan"] = scan_section(smoke);
    report["memoization"] = memoization_section(smoke);
    report.save(out_path);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_reuse: %s\n", e.what());
    return 1;
  }
}
