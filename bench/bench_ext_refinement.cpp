// Extension bench: what the paper's "future work" buys — Amorphica-style
// replication and light CPU post-refinement of the hardware tour. Both
// attack the residual quality overhead of the hierarchical decomposition
// from outside the annealer.
#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "heuristics/reference.hpp"
#include "tsp/generator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "Extension — replication and CPU post-refinement",
      "beyond the paper: replicas (cf. Amorphica [25]) and boundary "
      "clean-up of the hierarchical tour");

  const std::vector<std::string> datasets =
      cim::bench::full_scale()
          ? std::vector<std::string>{"pcb3038", "rl5915"}
          : std::vector<std::string>{"pcb1173", "rl1304"};

  Table table({"dataset", "configuration", "optimal ratio", "host time"});
  for (const auto& name : datasets) {
    const auto inst = cim::tsp::make_paper_instance(name);
    const auto reference = cim::heuristics::compute_reference(inst);

    const auto run = [&](const char* label, std::size_t replicas,
                         cim::core::PostRefine refine) {
      cim::core::SolverConfig config;
      config.replicas = replicas;
      config.post_refine = refine;
      config.compute_reference = false;
      config.compute_ppa = false;
      config.seed = 5;
      const cim::util::Timer timer;
      const auto outcome = cim::core::CimSolver(config).solve(inst);
      table.add_row({name, label,
                     Table::num(static_cast<double>(outcome.tour_length) /
                                    static_cast<double>(reference.length),
                                3),
                     Table::num(timer.seconds() * 1e3, 0) + " ms"});
    };

    run("hardware only (paper)", 1, cim::core::PostRefine::kNone);
    run("4 replicas, best-of", 4, cim::core::PostRefine::kNone);
    run("+ light refinement", 1, cim::core::PostRefine::kLight);
    run("+ full refinement", 1, cim::core::PostRefine::kFull);
    run("4 replicas + light", 4, cim::core::PostRefine::kLight);
    table.add_separator();
  }
  table.add_footnote(
      "replication trims the seed-to-seed spread; local refinement "
      "repairs cluster-boundary crossings the hierarchy cannot see");
  table.print();
  return 0;
}
