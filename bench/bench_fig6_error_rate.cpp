// Fig. 6(b): SRAM pseudo-read error rate vs. supply voltage — Monte-Carlo
// over cells with process variation (the paper: 1000 samples per point,
// TSMC 16nm PDK; here: the compact butterfly/SNM model), for several
// bit-line capacitances.
#include <cstdio>

#include "bench_common.hpp"
#include "noise/monte_carlo.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "Fig. 6(b) — pseudo-read error rate vs. V_DD",
      "paper Fig. 6(b): sigmoid 0 -> ~50% from 800 mV down to 200 mV, "
      "sharper with higher C_BL");

  const std::vector<double> caps{5.0, 20.0, 80.0};  // fF
  cim::noise::SweepOptions sweep;
  sweep.samples = cim::bench::full_scale() ? 20000 : 1000;  // paper: 1000
  sweep.vdd_step = 0.04;

  std::vector<std::vector<cim::noise::ErrorRatePoint>> curves;
  for (const double c : caps) {
    cim::noise::SramNoiseParams params;
    params.bl_cap_ff = c;
    const cim::noise::SramCellModel model(params, 42);
    curves.push_back(cim::noise::error_rate_sweep(model, sweep));
  }

  Table table({"V_DD (mV)", "C_BL=5fF MC", "C_BL=5fF exact",
               "C_BL=20fF MC", "C_BL=20fF exact", "C_BL=80fF MC",
               "C_BL=80fF exact"});
  table.set_title("error rate (fraction of stored bits flipped), " +
                  std::to_string(sweep.samples) + " MC samples/point");
  cim::util::CsvWriter csv(
      {"vdd_mv", "mc_5ff", "exact_5ff", "mc_20ff", "exact_20ff", "mc_80ff",
       "exact_80ff"});
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    std::vector<std::string> row{
        Table::integer(static_cast<long long>(curves[0][i].vdd * 1000.0))};
    std::vector<std::string> crow = row;
    for (const auto& curve : curves) {
      row.push_back(Table::percent(curve[i].measured, 2));
      row.push_back(Table::percent(curve[i].analytic, 2));
      crow.push_back(Table::num(curve[i].measured, 5));
      crow.push_back(Table::num(curve[i].analytic, 5));
    }
    table.add_row(row);
    csv.add_row(crow);
  }
  table.add_footnote(
      "paper shape: ~0% at 800 mV rising to ~50% near 200 mV; higher "
      "bit-line capacitance gives a sharper transition");
  table.add_footnote("series exported to fig6_error_rate.csv");
  table.print();
  csv.save("fig6_error_rate.csv");

  // The annealing schedule window (§V): 300 -> 580 mV.
  const cim::noise::SramCellModel nominal;
  std::printf("\nschedule window: error(300mV)=%.1f%%  error(580mV)=%.4f%%\n",
              nominal.expected_error_rate(0.30) * 100.0,
              nominal.expected_error_rate(0.58) * 100.0);
  return 0;
}
