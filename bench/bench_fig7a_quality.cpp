// Fig. 7(a): optimal ratio vs. dataset for p_max ∈ {2,3,4} and the
// unlimited-p baseline. The paper's shape: quality improves with p_max
// and saturates around p_max = 3.
#include <cstdio>

#include "anneal/clustered_annealer.hpp"
#include "bench_common.hpp"
#include "heuristics/reference.hpp"
#include "tsp/generator.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

double solve_ratio(const cim::tsp::Instance& inst,
                   cim::cluster::Strategy strategy, std::uint32_t p,
                   long long reference) {
  // Mean over seeds: individual runs have enough variance to obscure the
  // p_max trend the figure reports.
  const std::size_t seeds = cim::bench::full_scale() ? 5 : 3;
  double acc = 0.0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    cim::anneal::AnnealerConfig config;
    config.clustering.strategy = strategy;
    config.clustering.p = p;
    config.seed = seed * 11;
    config.clustering.seed = seed;
    const auto result = cim::anneal::ClusteredAnnealer(config).solve(inst);
    acc += static_cast<double>(result.length) /
           static_cast<double>(reference);
  }
  return acc / static_cast<double>(seeds);
}

}  // namespace

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "Fig. 7(a) — optimal ratio vs dataset and p_max",
      "paper Fig. 7(a): ratio improves with p_max, saturating at "
      "p_max=3; baseline = unlimited p");

  Table table({"dataset", "N", "baseline", "p_max=2", "p_max=3",
               "p_max=4", "host time"});
  table.set_title("optimal ratio (tour / reference)");
  cim::util::CsvWriter csv(
      {"dataset", "n", "baseline", "pmax2", "pmax3", "pmax4"});

  for (const auto& name : cim::bench::quality_datasets()) {
    const cim::util::Timer timer;
    const auto inst = cim::tsp::make_paper_instance(name);
    const auto reference = cim::heuristics::compute_reference(inst);

    const double base = solve_ratio(
        inst, cim::cluster::Strategy::kUnlimited, 3, reference.length);
    double ratios[3] = {};
    for (std::uint32_t p = 2; p <= 4; ++p) {
      ratios[p - 2] = solve_ratio(
          inst, cim::cluster::Strategy::kSemiFlexible, p, reference.length);
    }
    table.add_row({name, Table::integer(static_cast<long long>(inst.size())),
                   Table::num(base, 3), Table::num(ratios[0], 3),
                   Table::num(ratios[1], 3), Table::num(ratios[2], 3),
                   Table::num(timer.seconds(), 1) + " s"});
    csv.add_row({name, Table::integer(static_cast<long long>(inst.size())),
                 Table::num(base, 4), Table::num(ratios[0], 4),
                 Table::num(ratios[1], 4), Table::num(ratios[2], 4)});
  }
  table.add_footnote(
      "paper band: 1.17-1.25 for semi-flex p_max>=3 at 3k-34k cities; "
      "p_max=2 visibly worse");
  table.add_footnote("series exported to fig7a_quality.csv");
  table.print();
  csv.save("fig7a_quality.csv");
  return 0;
}
