// Extension bench: Max-Cut on the noisy digital-CIM substrate — the
// problem class of every Table III competitor, run on this design's
// machinery. Demonstrates (a) the same noisy-SRAM entropy source anneals
// a second COP family and (b) the chromatic-parallel cycle advantage on
// sparse graphs.
#include <cstdio>

#include "anneal/maxcut_annealer.hpp"
#include "anneal/tempering.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using cim::util::Table;
  cim::bench::print_header(
      "Extension — Max-Cut on the noisy-CIM substrate",
      "executable counterpart of Table III's problem class (STATICA/"
      "CIM-Spin/Amorphica solve Max-Cut)");

  struct Case {
    const char* label;
    cim::ising::MaxCutProblem problem;
  };
  std::vector<Case> cases;
  cases.push_back({"ring1024 (2-colourable)",
                   cim::ising::ring_maxcut(1024)});
  cases.push_back({"G(512, 1%) w<=3",
                   cim::ising::random_maxcut(512, 0.01, 1, 3)});
  cases.push_back({"K64 +-1 (STATICA-style dense)",
                   cim::ising::complete_maxcut(64, 2)});
  if (cim::bench::full_scale()) {
    cases.push_back({"K512 +-1 (STATICA scale)",
                     cim::ising::complete_maxcut(512, 3)});
    cases.push_back({"G(2000, 0.3%) w<=5",
                     cim::ising::random_maxcut(2000, 0.003, 4, 5)});
  }

  Table table({"graph", "spins", "edges", "colors", "cut (cim)",
               "cut (PT)", "cut (greedy x8)", "cim/greedy", "hw cycles"});
  for (const auto& c : cases) {
    cim::anneal::MaxCutConfig config;
    config.record_trace = true;
    const auto result = cim::anneal::MaxCutAnnealer(config).solve(c.problem);

    // Parallel-tempering comparison ([20]-style, software ladder from the
    // same SRAM noise model) on tractable sizes.
    long long pt_cut = -1;
    if (c.problem.size() <= 512) {
      cim::anneal::TemperingConfig pt;
      pt.sweeps = 150;
      pt_cut = cim::anneal::ParallelTempering(pt).solve_maxcut(c.problem);
    }

    long long greedy = 0;
    for (std::uint64_t restart = 0; restart < 8; ++restart) {
      greedy = std::max(greedy,
                        cim::ising::greedy_maxcut(c.problem, restart));
    }
    table.add_row(
        {c.label, Table::integer(static_cast<long long>(c.problem.size())),
         Table::integer(static_cast<long long>(c.problem.edge_count())),
         Table::integer(static_cast<long long>(result.color_count)),
         Table::integer(result.best_cut),
         pt_cut >= 0 ? Table::integer(pt_cut) : "n/a",
         Table::integer(greedy),
         Table::num(static_cast<double>(result.best_cut) /
                        static_cast<double>(greedy),
                    3),
         Table::sci(static_cast<double>(result.update_cycles), 2)});
  }
  table.add_footnote(
      "ring optimum = n (even); chromatic classes stay small on sparse "
      "graphs, so a sweep costs O(colors) cycles, not O(n)");
  table.print();
  return 0;
}
