// §VI convergence-speed claim: the annealer reaches a near-optimal tour
// in tens of microseconds of (modelled) hardware time, versus Concorde's
// cited 22 h / 7 d / 155 d exact solves — a >10⁹ speedup at <25% quality
// overhead. Also compares against Neuro-Ising's published rl5934 numbers
// and a live CPU simulated-annealing baseline.
#include <cstdio>

#include "anneal/clustered_annealer.hpp"
#include "bench_common.hpp"
#include "heuristics/construct.hpp"
#include "heuristics/reference.hpp"
#include "heuristics/sa_baseline.hpp"
#include "ppa/report.hpp"
#include "tsp/best_known.hpp"
#include "tsp/generator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/units.hpp"

int main() {
  using cim::util::Table;
  using namespace cim::util;
  cim::bench::print_header(
      "§VI — convergence speedup vs CPU baselines",
      "paper §VI: 1e9-1e11x speedup vs Concorde with <25% overhead; "
      "rl5934 annealed in 44 us vs Neuro-Ising's ~8 s at ratio 1.7");

  const std::vector<std::string> datasets =
      cim::bench::full_scale()
          ? std::vector<std::string>{"pcb3038", "rl5934", "rl11849"}
          : std::vector<std::string>{"pcb3038", "rl5934"};

  Table table({"dataset", "anneal time (hw)", "optimal ratio",
               "Concorde (cited)", "speedup", "CPU-SA (live)",
               "CPU-SA ratio"});
  for (const auto& name : datasets) {
    const auto inst = cim::tsp::make_paper_instance(name);
    const auto reference = cim::heuristics::compute_reference(inst);

    // Our annealer: solution quality from the functional sim, hardware
    // time from the measured-cycle PPA model.
    cim::anneal::AnnealerConfig config;
    config.clustering.p = 3;
    config.seed = 3;
    const auto result = cim::anneal::ClusteredAnnealer(config).solve(inst);
    cim::ppa::DesignPoint point;
    point.instance_name = name;
    point.n_cities = inst.size();
    point.p = 3;
    const auto report = cim::ppa::measured_report(point, result.hw, result.hierarchy_depth);
    const double anneal_s = report.latency.total().seconds();
    const double ratio = static_cast<double>(result.length) /
                         static_cast<double>(reference.length);

    // Live CPU simulated-annealing baseline (same move class, software).
    const cim::util::Timer timer;
    cim::heuristics::SaOptions sa;
    sa.sweeps = 150;
    const auto initial = cim::heuristics::nearest_neighbor(inst);
    const auto sa_result =
        cim::heuristics::simulated_annealing(inst, initial, sa);
    const double sa_seconds = timer.seconds();
    const double sa_ratio = static_cast<double>(sa_result.final_length) /
                            static_cast<double>(reference.length);

    const auto concorde = cim::tsp::concorde_runtime_seconds(name);
    table.add_row(
        {name, format_seconds(anneal_s), Table::num(ratio, 3),
         concorde ? format_seconds(*concorde) : "n/a",
         concorde ? format_factor(*concorde / anneal_s) : "n/a",
         format_seconds(sa_seconds), Table::num(sa_ratio, 3)});
  }
  table.add_footnote(
      "Concorde runtimes are the paper's citation [13] (exact solves); "
      "speedup compares hardware time-to-approximate-solution against "
      "exact-solve time, as the paper does");
  table.add_footnote(
      "Neuro-Ising (paper §VI): rl5934 at ratio ~1.7 in ~8 s of Ising "
      "annealing — our hardware time above is ~1e5x faster at better "
      "ratio");
  table.print();
  return 0;
}
