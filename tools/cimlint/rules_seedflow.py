"""RNG seed-flow proofs: every reachable seeding site must show lineage.

PR 6's det-taint walked the call graph looking for two known-bad RNG
sources (std::random_device, rand). A blacklist proves nothing about
the sites it does not match: `Rng rng(some_local_arithmetic)` passes it
while silently splitting the determinism contract per worker. This pack
inverts the burden of proof. Every RNG construction / reseed inside a
function reachable from a CIM_DETERMINISM_ROOT must *prove* that its
seed expression derives from the deterministic chain of
src/util/random.hpp — util::stream_seed, util::hash_combine,
util::splitmix64, Rng::fork, integer literals, seed-named values — via
the intraprocedural provenance dataflow in flowfacts.py. What cannot be
proven is reported, with the witness call chain from the root.

Boundary assumptions (stated in flowfacts.py): function parameters are
trusted at entry — the call site is checked in its own enclosing
function — and the derive functions propagate provenance through their
first argument (the base; the second operand is a stream selector or
mixing constant). det-taint still covers non-deterministic sources of
any kind reaching a root through the same call graph.
"""

from __future__ import annotations

from typing import Iterable

from .callgraph import CallGraph
from .findings import Finding
from .index import ProjectIndex
from .rules import LintConfig, project_rule


@project_rule(
    "rng-unproven-seed",
    "RNG seeding site reachable from a determinism root cannot prove "
    "its seed derives from the deterministic chain",
    """Replaces det-taint's unseeded-rng blacklist with a provenance
proof. The index computes, per function, a seed-provenance dataflow
over its CFG: a value is *proven* when it is an integer literal, a
seed-named identifier (`config_.seed`, `level_stream`), a function
parameter (the boundary assumption — call sites are checked in their
own functions), `Rng::fork()`, or one of util::stream_seed /
util::hash_combine / util::splitmix64 applied to a proven base. The
must-analysis join means a variable seeded on only one branch is not
proven.

This rule then walks the name-resolved call graph from every
CIM_DETERMINISM_ROOT and reports each RNG construction, `reseed()`
call, or append into an RNG container whose seed expression the proof
cannot derive — with the witness chain from the root, so the reviewer
sees *which* hot path reaches the unproven seed.

A true positive is fixed by threading the seed through
util::stream_seed(base, stream) (stateless, worker-count independent)
instead of ad-hoc arithmetic or environment-dependent values. A
reviewed-and-deliberate site (e.g. a bench warmup RNG) carries a
NOLINT(rng-unproven-seed) with a justification.""",
)
def _rng_unproven_seed(index: ProjectIndex, _config: LintConfig
                       ) -> Iterable[Finding]:
    graph = CallGraph(index)
    reported: set[tuple[str, int, str]] = set()
    for root, func, chain in graph.reachable_functions():
        for site in func.flow.seed_sites:
            if site.proven:
                continue
            mark = (func.path, site.line, site.rng)
            if mark in reported:
                continue
            reported.add(mark)
            witness = " -> ".join(chain)
            yield Finding(
                path=func.path, line=site.line, rule="rng-unproven-seed",
                message=f"RNG '{site.rng}' seeded from an unproven "
                        f"source ({site.detail}); reachable from "
                        f"determinism root {root.qual_name}; "
                        f"witness: {witness}")
