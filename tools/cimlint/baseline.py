"""Checked-in baseline of grandfathered findings.

A baseline entry vouches for one existing finding so the gate can demand
*zero new* findings while known, justified ones remain visible in the
file history. Entries key on (rule, path, normalized line content) — not
line numbers — so edits elsewhere in a file do not invalidate them.

Format (tools/cimlint/baseline.txt), one entry per line:

    <fingerprint>  <rule>  <path>:<line-at-record-time>  # justification

Only the fingerprint is load-bearing; rule/path/line and the trailing
comment document the entry for reviewers. Regenerate with
`tools/lint.py --update-baseline` (which preserves nothing — justify
entries by editing the file afterwards; the diff shows exactly what was
added). Prefer NOLINT(<rule>) comments at the site for anything new: the
baseline exists for findings whose files should not be touched (vendored
or generated code) and for bulk-introducing a new rule.
"""

from __future__ import annotations

from pathlib import Path

from .findings import Finding

DEFAULT_BASELINE = Path(__file__).parent / "baseline.txt"


def load(path: Path) -> set[str]:
    """Fingerprints of grandfathered findings (empty when absent)."""
    if not path.is_file():
        return set()
    fingerprints: set[str] = set()
    for raw_line in path.read_text(encoding="utf-8").splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        fingerprints.add(line.split()[0])
    return fingerprints


def split(findings: list[Finding],
          fingerprints: set[str]) -> tuple[list[Finding], list[Finding]]:
    """(new, baselined) partition of `findings`."""
    new: list[Finding] = []
    old: list[Finding] = []
    for f in findings:
        (old if f.fingerprint() in fingerprints else new).append(f)
    return new, old


def render(findings: list[Finding]) -> str:
    """Baseline file contents for `findings`."""
    lines = [
        "# cimlint baseline — grandfathered findings (see baseline.py).",
        "# One entry per line: <fingerprint>  <rule>  <path>:<line>  # why.",
        "# Keyed on line *content*, so surrounding edits don't break it.",
    ]
    for f in sorted(findings):
        lines.append(f"{f.fingerprint()}  {f.rule}  {f.path}:{f.line}")
    return "\n".join(lines) + "\n"
