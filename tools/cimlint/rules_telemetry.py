"""Telemetry hygiene.

Instrumentation belongs in .cpp files. A TELEM_* macro in a public header
makes every includer pay for telemetry — it drags util/telemetry.hpp into
the include graph, couples header consumers to the build's telemetry
flavour, and hides emission sites from the module owner's review (the
header is compiled into dozens of targets, the .cpp into one).
"""

from __future__ import annotations

import re
from pathlib import PurePosixPath

from .rules import FileContext, rule
from .tokenizer import line_of

# The macro definitions themselves live here.
TELEMETRY_ALLOWLIST = {PurePosixPath("src/util/telemetry.hpp")}

_TELEM_MACRO = re.compile(r"\bTELEM_[A-Z_]+\s*\(")


@rule(
    "telemetry-in-header",
    "TELEM_* macro in a public header; instrument the .cpp instead",
    """TELEM_SCOPE / TELEM_COUNTER_ADD and friends expand to calls on the
global telemetry registry. Placed in a header they run (and cost) in
every translation unit that includes it, force util/telemetry.hpp into
the public include graph, and make the set of emission sites impossible
to audit from the implementation file. All shipped instrumentation sits
in .cpp files; headers stay telemetry-free so consumers can include them
without inheriting a dependency on the telemetry layer or its
compile-time flavour (CIMANNEAL_TELEMETRY).

src/util/telemetry.hpp itself — where the macros are defined — is
allowlisted. A header-only template that genuinely must emit events
carries NOLINT(telemetry-in-header) with a justification.""",
)
def _telemetry_in_header(ctx: FileContext):
    if not ctx.is_header or ctx.module() is None:
        return
    if PurePosixPath(ctx.rel) in TELEMETRY_ALLOWLIST:
        return
    for m in _TELEM_MACRO.finditer(ctx.code):
        yield ctx.finding(line_of(ctx.code, m.start()), "telemetry-in-header",
                          "TELEM_* macro in a public header; instrument "
                          "the .cpp instead")
