"""Cross-TU index: functions, call sites, macros, classes, taint sites.

The per-file rules (rules_*.py) see one file at a time; the project
rules (determinism-taint, lock-discipline) need whole-program facts: who
defines what, who calls whom, which class owns which mutex. This module
parses every first-party TU — with the same tokenizer/brace machinery
the per-file rules use, no real C++ front end — into a `ProjectIndex`:

  * `FunctionInfo` per function definition: best-effort qualified name
    (`LevelSolver::run`), the callee names its body mentions, the
    determinism-taint sites it contains, and whether its signature
    carries the `CIM_DETERMINISM_ROOT` marker
    (src/util/thread_annotations.hpp).
  * `MacroInfo` per function-like `#define`: macros are call-graph nodes
    too, so `TELEM_COUNTER_EVENT(...)` in the epoch loop correctly leads
    into `Registry::counter_event` through the macro's replacement text.
  * `ClassInfo` per class/struct: mutex and atomic members plus the
    CIM_GUARDED_BY / CIM_REQUIRES / CIM_EXCLUDES annotation sites — the
    machine-checkable half of the thread-annotation contract.

Everything is *over-approximate by construction* (DESIGN.md §13): calls
resolve by name, not by type; a lambda's calls attribute to its
enclosing function; an indirect call through `std::function` resolves to
nothing (which is why pool entry points are themselves roots). The index
is serialized to JSON and cached keyed on content hash (sha256 of the
file bytes; mtime/size ride along as diagnostics only), so a warm
`--changed-only` run re-parses only edited files — and a touched-but-
unchanged file, a same-size edit, or CI clock skew can never serve a
stale index.
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path, PurePosixPath

from . import contenthash, stats
from .flowfacts import (AcquireSite, FlowFacts, LockedCall, SeedSite,
                        extract_flow_facts)
from .functions import FunctionBlock, function_blocks
from .tokenizer import line_of, strip_comments_and_strings

#: Bump to invalidate on-disk caches when the index shape or the
#: extraction heuristics change.
#: v2: content-hash cache keys + per-function FlowFacts summaries.
INDEX_VERSION = 2

ROOT_MARKER = "CIM_DETERMINISM_ROOT"

# ---------------------------------------------------------------- taints

#: Determinism-taint sources: (kind, human detail, pattern). Matched
#: against stripped function bodies; the kinds are what the det-taint
#: rule reports and what fixture tests pin.
TAINT_PATTERNS: tuple[tuple[str, str, re.Pattern[str]], ...] = (
    ("wall-clock",
     "wall-clock read (chrono ::now)",
     re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)"
                r"\s*::\s*now\b")),
    ("wall-clock",
     "wall-clock read (C time API)",
     re.compile(r"(?<![\w:])(?:gettimeofday|clock_gettime|timespec_get)"
                r"\s*\(|(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)")),
    ("thread-id",
     "thread identity as a value (std::this_thread::get_id)",
     re.compile(r"\bthis_thread\s*::\s*get_id\b|\bpthread_self\s*\(")),
    ("unordered-container",
     "unordered container (iteration order is unspecified)",
     re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\b")),
    # "unseeded-rng" (std::random_device / rand) used to live here as a
    # blacklist pattern; the rng-unproven-seed provenance proof
    # (rules_seedflow.py) replaced it — every reachable RNG seeding site
    # must now *prove* its lineage instead of merely avoiding two known-
    # bad sources. The per-file rng-random-device / rng-libc-rand rules
    # still flag the sources themselves at their use sites.
    ("address-hash",
     "pointer value used as data (address-as-value hashing)",
     re.compile(r"\bstd\s*::\s*hash\s*<[^>]*\*|"
                r"\breinterpret_cast\s*<\s*(?:std\s*::\s*)?u?intptr_t\b")),
)

# ------------------------------------------------------------ data model


@dataclasses.dataclass(frozen=True)
class TaintSite:
    kind: str    # one of the TAINT_PATTERNS kinds
    detail: str  # human-readable description of the source
    line: int    # 1-based line of the match


@dataclasses.dataclass(frozen=True)
class FunctionInfo:
    name: str        # last identifier ("run")
    qual_name: str   # with class qualification where visible
    path: str        # repo-relative posix path
    line: int        # 1-based line of the name token
    is_root: bool    # CIM_DETERMINISM_ROOT in the signature region
    calls: tuple[str, ...]        # callee names, sorted, deduped
    taints: tuple[TaintSite, ...]
    flow: FlowFacts  # dataflow summaries (locks held, seed provenance)


@dataclasses.dataclass(frozen=True)
class MacroInfo:
    name: str
    path: str
    line: int
    calls: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class AnnotationSite:
    macro: str  # CIM_GUARDED_BY / CIM_PT_GUARDED_BY / CIM_REQUIRES / ...
    arg: str    # raw argument text, stripped
    line: int


@dataclasses.dataclass(frozen=True)
class ClassInfo:
    name: str    # possibly qualified ("ThreadPool::Batch")
    path: str
    line: int
    mutexes: tuple[tuple[str, int], ...]  # (member name, decl line)
    atomics: tuple[str, ...]
    annotations: tuple[AnnotationSite, ...]


@dataclasses.dataclass(frozen=True)
class FileIndex:
    functions: tuple[FunctionInfo, ...]
    macros: tuple[MacroInfo, ...]
    classes: tuple[ClassInfo, ...]


@dataclasses.dataclass
class ProjectIndex:
    root: Path
    files: dict[str, FileIndex]  # rel posix path -> facts

    def all_functions(self) -> list[FunctionInfo]:
        out: list[FunctionInfo] = []
        for rel in sorted(self.files):
            out.extend(self.files[rel].functions)
        return out

    def all_macros(self) -> list[MacroInfo]:
        out: list[MacroInfo] = []
        for rel in sorted(self.files):
            out.extend(self.files[rel].macros)
        return out

    def all_classes(self) -> list[ClassInfo]:
        out: list[ClassInfo] = []
        for rel in sorted(self.files):
            out.extend(self.files[rel].classes)
        return out

    def roots(self) -> list[FunctionInfo]:
        return [f for f in self.all_functions() if f.is_root]


# ------------------------------------------------- function/call parsing

_KEYWORDS = frozenset({
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "alignas", "catch", "new", "delete", "throw", "assert", "defined",
    "co_await", "co_return", "co_yield", "requires", "decltype", "typeid",
    "static_assert", "noexcept", "else", "do", "case", "operator",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
})

_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
_IDENT_TAIL = re.compile(r"([A-Za-z_]\w*)\s*$")


def _extract_calls(body: str) -> tuple[str, ...]:
    """Callee names a body mentions — over-approximate.

    `foo(`, `obj.foo(`, `ptr->foo(` and `ns::foo(` all yield `foo`.
    Additionally, `Type name(...)` declarations yield `Type` so
    constructor calls resolve (`telemetry::Scope s(...)` → `Scope`).
    """
    calls: set[str] = set()
    for m in _CALL_RE.finditer(body):
        name = m.group(1)
        if name in _KEYWORDS:
            continue
        calls.add(name)
        # Declaration form: the identifier before this one is a type
        # name whose constructor runs. `new Foo(` is already covered by
        # the keyword filter rejecting nothing here (Foo itself matched).
        before = body[:m.start(1)]
        tail = _IDENT_TAIL.search(before)
        if tail and tail.group(1) not in _KEYWORDS:
            calls.add(tail.group(1))
    return tuple(sorted(calls))


def _scan_taints(body: str, body_offset: int, code: str
                 ) -> tuple[TaintSite, ...]:
    sites: list[TaintSite] = []
    for kind, detail, pattern in TAINT_PATTERNS:
        for m in pattern.finditer(body):
            sites.append(TaintSite(
                kind=kind, detail=detail,
                line=line_of(code, body_offset + m.start())))
    sites.sort(key=lambda s: (s.line, s.kind))
    return tuple(sites)


def _name_token_before(code: str, pos: int) -> tuple[str, int]:
    """(token, start) of the identifier-ish token ending before `pos`."""
    j = pos
    while j > 0 and code[j - 1].isspace():
        j -= 1
    k = j
    while k > 0 and (code[k - 1].isalnum() or code[k - 1] == "_"):
        k -= 1
    return code[k:j], k


def _signature_name(code: str, block: FunctionBlock) -> tuple[str, str, int]:
    """(name, qualified name, name offset) for a function block.

    Re-derives the name from the parameter list's `)` like
    functions.py, but walks back through constructor initialiser-list
    entries (`: a_(x), b_(y) {` names `b_` there) to the real parameter
    list, then collects `Class::` qualification.
    """
    pos = block.start
    for _ in range(24):
        # Find the nearest ')' before pos.
        close = code.rfind(")", 0, pos)
        if close < 0:
            return block.name, block.name, block.start
        depth = 0
        open_paren = -1
        for j in range(close, -1, -1):
            if code[j] == ")":
                depth += 1
            elif code[j] == "(":
                depth -= 1
                if depth == 0:
                    open_paren = j
                    break
        if open_paren < 0:
            return block.name, block.name, block.start
        name, name_start = _name_token_before(code, open_paren)
        if not name:
            return block.name, block.name, block.start
        # Init-list entry: `, member_(x)` or `: member_(x)` — hop to the
        # previous ')' (ultimately the parameter list's).
        probe = name_start
        while probe > 0 and code[probe - 1].isspace():
            probe -= 1
        if probe > 0 and code[probe - 1] in ",:" and not (
            probe > 1 and code[probe - 2] == ":"  # `::` is qualification
        ):
            pos = open_paren
            continue
        qual = name
        scan = name_start
        while scan > 1 and code[scan - 2:scan] == "::":
            part, part_start = _name_token_before(code, scan - 2)
            if not part:
                break
            qual = f"{part}::{qual}"
            scan = part_start
        return name, qual, name_start
    return block.name, block.name, block.start


_ROOT_RE = re.compile(rf"\b{ROOT_MARKER}\b")


def _signature_region(code: str, name_offset: int) -> str:
    """Text from the previous declaration boundary to the name token —
    where CIM_DETERMINISM_ROOT and other signature markers live."""
    boundary = max(code.rfind(";", 0, name_offset),
                   code.rfind("}", 0, name_offset),
                   code.rfind("{", 0, name_offset), 0)
    return code[boundary:name_offset]


# --------------------------------------------------------- macro parsing

_DEFINE_RE = re.compile(r"^[ \t]*#[ \t]*define[ \t]+([A-Za-z_]\w*)\(",
                        re.MULTILINE)


def _extract_macros(code: str, rel: str) -> tuple[MacroInfo, ...]:
    macros: list[MacroInfo] = []
    for m in _DEFINE_RE.finditer(code):
        # Replacement text: this line plus backslash-continued lines.
        end = m.end()
        while True:
            nl = code.find("\n", end)
            if nl == -1:
                nl = len(code)
            line_text = code[end:nl]
            end = nl + 1
            if not line_text.rstrip().endswith("\\") or nl == len(code):
                break
        replacement = code[m.end():min(end, len(code))]
        macros.append(MacroInfo(
            name=m.group(1), path=rel,
            line=line_of(code, m.start(1)),
            calls=_extract_calls(replacement)))
    return tuple(macros)


# --------------------------------------------------------- class parsing

_CLASS_RE = re.compile(
    r"\b(class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?"
    r"([A-Za-z_][\w]*(?:\s*::\s*[A-Za-z_]\w*)*)\s*"
    r"(?:final\s*)?(?::[^{;]*)?\{")

_MUTEX_MEMBER_RE = re.compile(
    r"\bstd\s*::\s*((?:recursive_|shared_|timed_|recursive_timed_)?mutex)"
    r"\s+([A-Za-z_]\w*)")
_ATOMIC_MEMBER_RE = re.compile(
    r"\bstd\s*::\s*atomic\s*<[^;{]*?>\s+([A-Za-z_]\w*)")
_ANNOTATION_RE = re.compile(
    r"\b(CIM_GUARDED_BY|CIM_PT_GUARDED_BY|CIM_REQUIRES|CIM_EXCLUDES)"
    r"\s*\(([^)]*)\)")


def _match_brace(code: str, open_brace: int) -> int:
    """Offset of the `}` matching code[open_brace] == '{', or len(code)."""
    depth = 0
    for j in range(open_brace, len(code)):
        if code[j] == "{":
            depth += 1
        elif code[j] == "}":
            depth -= 1
            if depth == 0:
                return j
    return len(code)


def _flatten_class_body(code: str, open_brace: int, close_brace: int) -> str:
    """Class-scope text with nested brace regions blanked (newlines
    kept), offset-aligned with `code` from open_brace+1."""
    out: list[str] = []
    depth = 0
    for j in range(open_brace + 1, close_brace):
        ch = code[j]
        if ch == "{":
            depth += 1
            out.append(" ")
        elif ch == "}":
            depth -= 1
            out.append(" ")
        elif depth > 0:
            out.append(ch if ch == "\n" else " ")
        else:
            out.append(ch)
    return "".join(out)


def _extract_classes(code: str, rel: str) -> tuple[ClassInfo, ...]:
    classes: list[ClassInfo] = []
    for m in _CLASS_RE.finditer(code):
        # `enum class X {` is not a class scope.
        prefix = code[max(0, m.start() - 12):m.start()]
        if re.search(r"\benum\s*$", prefix):
            continue
        open_brace = m.end() - 1
        close_brace = _match_brace(code, open_brace)
        flat = _flatten_class_body(code, open_brace, close_brace)
        base = open_brace + 1

        mutexes = tuple(
            (mm.group(2), line_of(code, base + mm.start(2)))
            for mm in _MUTEX_MEMBER_RE.finditer(flat))
        atomics = tuple(am.group(1)
                        for am in _ATOMIC_MEMBER_RE.finditer(flat))
        annotations = tuple(
            AnnotationSite(macro=am.group(1), arg=am.group(2).strip(),
                           line=line_of(code, base + am.start()))
            for am in _ANNOTATION_RE.finditer(flat))
        classes.append(ClassInfo(
            name=re.sub(r"\s+", "", m.group(2)), path=rel,
            line=line_of(code, m.start()),
            mutexes=mutexes, atomics=atomics, annotations=annotations))
    return tuple(classes)


# ------------------------------------------------------------ file index


def index_file(code: str, rel: str) -> FileIndex:
    """Indexes one TU from its stripped text."""
    functions: list[FunctionInfo] = []
    for block in function_blocks(code):
        name, qual, name_offset = _signature_name(code, block)
        functions.append(FunctionInfo(
            name=name, qual_name=qual, path=rel,
            line=line_of(code, name_offset),
            is_root=bool(_ROOT_RE.search(
                _signature_region(code, name_offset))),
            calls=_extract_calls(block.body),
            taints=_scan_taints(block.body, block.start + 1, code),
            flow=extract_flow_facts(code, block.start, block.end,
                                    name_offset, _extract_calls)))
    return FileIndex(functions=tuple(functions),
                     macros=_extract_macros(code, rel),
                     classes=_extract_classes(code, rel))


# ------------------------------------------------------- (de)serializing


def _flow_to_json(flow: FlowFacts) -> dict:
    return {
        "requires": list(flow.requires),
        "acquires": [[a.mutex, a.line, list(a.held)]
                     for a in flow.acquires],
        "locked_calls": [[c.callee, c.line, list(c.held)]
                         for c in flow.locked_calls],
        "seed_sites": [[s.line, s.rng, s.proven, s.detail]
                       for s in flow.seed_sites],
    }


def _flow_from_json(data: dict) -> FlowFacts:
    return FlowFacts(
        requires=tuple(data["requires"]),
        acquires=tuple(AcquireSite(mutex=a[0], line=a[1], held=tuple(a[2]))
                       for a in data["acquires"]),
        locked_calls=tuple(LockedCall(callee=c[0], line=c[1],
                                      held=tuple(c[2]))
                           for c in data["locked_calls"]),
        seed_sites=tuple(SeedSite(line=s[0], rng=s[1], proven=s[2],
                                  detail=s[3])
                         for s in data["seed_sites"]),
    )


def _file_index_to_json(fi: FileIndex) -> dict:
    return {
        "functions": [{
            "name": f.name, "qual_name": f.qual_name, "path": f.path,
            "line": f.line, "is_root": f.is_root, "calls": list(f.calls),
            "taints": [dataclasses.asdict(t) for t in f.taints],
            "flow": _flow_to_json(f.flow),
        } for f in fi.functions],
        "macros": [dataclasses.asdict(m) for m in fi.macros],
        "classes": [{
            "name": c.name, "path": c.path, "line": c.line,
            "mutexes": [list(mx) for mx in c.mutexes],
            "atomics": list(c.atomics),
            "annotations": [dataclasses.asdict(a) for a in c.annotations],
        } for c in fi.classes],
    }


def _file_index_from_json(data: dict) -> FileIndex:
    return FileIndex(
        functions=tuple(FunctionInfo(
            name=f["name"], qual_name=f["qual_name"], path=f["path"],
            line=f["line"], is_root=f["is_root"], calls=tuple(f["calls"]),
            taints=tuple(TaintSite(**t) for t in f["taints"]),
            flow=_flow_from_json(f["flow"]))
            for f in data["functions"]),
        macros=tuple(MacroInfo(name=m["name"], path=m["path"],
                               line=m["line"], calls=tuple(m["calls"]))
                     for m in data["macros"]),
        classes=tuple(ClassInfo(
            name=c["name"], path=c["path"], line=c["line"],
            mutexes=tuple((mx[0], mx[1]) for mx in c["mutexes"]),
            atomics=tuple(c["atomics"]),
            annotations=tuple(AnnotationSite(**a)
                              for a in c["annotations"]))
            for c in data["classes"]),
    )


def build_index(root: Path, files: list[Path],
                cache_path: Path | None = None) -> ProjectIndex:
    """Indexes `files` (absolute paths under `root`), reusing the JSON
    cache at `cache_path` for files whose *content hash* is unchanged.

    Reuse is decided on sha256 of the file bytes, never on (mtime, size)
    alone: a `touch` without an edit still hits the cache, and a same-
    size edit (or CI clock skew restoring an old mtime) can never serve
    a stale whole-program index. mtime/size are stored as diagnostics.
    The cache is best-effort: unreadable/unwritable caches degrade to a
    full re-parse, never to an error."""
    with stats.GLOBAL.phase("index"):
        return _build_index(root, files, cache_path)


def _build_index(root: Path, files: list[Path],
                 cache_path: Path | None) -> ProjectIndex:
    cache: dict = {}
    if cache_path is not None and cache_path.is_file():
        try:
            loaded = json.loads(cache_path.read_text(encoding="utf-8"))
            if loaded.get("version") == INDEX_VERSION:
                cache = loaded.get("files", {})
        except (OSError, ValueError):
            cache = {}

    out_files: dict[str, FileIndex] = {}
    out_cache: dict[str, dict] = {}
    for path in files:
        rel = str(PurePosixPath(*path.relative_to(root).parts))
        try:
            stat = path.stat()
            raw_bytes = path.read_bytes()
        except OSError:
            continue
        digest = contenthash.content_hash(raw_bytes)
        key = {"mtime_ns": stat.st_mtime_ns, "size": stat.st_size,
               "sha256": digest}
        entry = cache.get(rel)
        if entry is not None and entry.get("sha256") == digest:
            try:
                out_files[rel] = _file_index_from_json(entry["index"])
                out_cache[rel] = {**entry, **key}
                continue
            except (KeyError, TypeError):
                pass  # malformed entry: re-parse
        raw = raw_bytes.decode("utf-8", errors="replace")
        fi = index_file(strip_comments_and_strings(raw), rel)
        out_files[rel] = fi
        out_cache[rel] = {**key, "index": _file_index_to_json(fi)}

    if cache_path is not None:
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            cache_path.write_text(
                json.dumps({"version": INDEX_VERSION, "files": out_cache}),
                encoding="utf-8")
        except OSError:
            pass
    return ProjectIndex(root=root, files=out_files)
