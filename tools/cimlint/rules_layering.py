"""Include-direction enforcement against the declared layering DAG.

The allowed DAG lives in tools/cimlint/layers.toml — checked in, reviewed
like code, and verified acyclic at load time. Every `#include "a/b.hpp"`
in src/<module>/ whose first path segment names another module must be an
edge of the DAG.
"""

from __future__ import annotations

import re

from .rules import FileContext, rule
from .tokenizer import line_of

_INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)


def check_acyclic(layers: dict[str, list[str]]) -> None:
    """Raises ValueError when the declared relation has a cycle."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {m: WHITE for m in layers}

    def visit(node: str, stack: list[str]) -> None:
        color[node] = GRAY
        for dep in layers.get(node, ()):  # unknown deps caught elsewhere
            if dep not in color:
                raise ValueError(
                    f"layers.toml: module '{node}' allows unknown module "
                    f"'{dep}'")
            if color[dep] == GRAY:
                cycle = " -> ".join(stack + [node, dep])
                raise ValueError(f"layers.toml: dependency cycle: {cycle}")
            if color[dep] == WHITE:
                visit(dep, stack + [node])
        color[node] = BLACK

    for module in layers:
        if color[module] == WHITE:
            visit(module, [])


@rule(
    "layer-dag",
    "include crosses the layering DAG declared in tools/cimlint/layers.toml",
    """The tree is layered (DESIGN.md "Static analysis"):

    src/util -> src/{geo,noise} -> src/{tsp,ising,cluster,cim,heuristics}
             -> src/anneal -> src/ppa -> src/core -> {bench,examples,
             tests,tools}

The exact allowed edges are declared in tools/cimlint/layers.toml (one
list per module; verified acyclic at load). An include whose first path
segment names a module outside the file's allowed list is a violation:
upward or sideways includes create hidden coupling that makes the
"refactor freely PR after PR" goal unsafe — e.g. the PPA models must
keep consuming hw::HardwareActivity rather than reaching up into the
annealer.

To legalise a new edge, add it to layers.toml in the same PR and justify
it in the review; per-site NOLINT(layer-dag) is reserved for temporary
migrations.""",
)
def _layer_dag(ctx: FileContext):
    layers = ctx.config.layers
    if not layers:
        return
    module = ctx.module()
    if module is None:
        # bench/examples/tests/tools (and any file outside src/) are top
        # layers when declared so; unknown trees are left alone.
        return
    if module not in layers:
        yield ctx.finding(
            1, "layer-dag",
            f"module 'src/{module}' is not declared in "
            "tools/cimlint/layers.toml; add it with its allowed "
            "dependencies")
        return
    allowed = {module, *layers[module]}
    # Include paths are string literals, so match against the
    # comments-only-stripped view (ctx.directives), not ctx.code.
    for m in _INCLUDE.finditer(ctx.directives):
        target = m.group(1).split("/", 1)[0]
        if target not in layers:
            continue  # not a module-qualified include (e.g. gtest)
        if target not in allowed:
            yield ctx.finding(
                line_of(ctx.directives, m.start()), "layer-dag",
                f"src/{module} must not include \"{m.group(1)}\": "
                f"'{target}' is not among its allowed layers "
                f"({', '.join(sorted(allowed))}) — see "
                "tools/cimlint/layers.toml")
