"""Generic forward worklist dataflow solver over cfg.Cfg.

One solver, three clients (lock sets, integer ranges, seed provenance).
A client implements the `Client` protocol below: an entry state, a join
(least upper bound), an optional widen (for lattices of unbounded
height, e.g. intervals), a per-statement transfer, and an optional
per-edge refinement (branch conditions, RAII releases).

States are ordinary immutable-ish Python values compared with `==`;
`None` stands for bottom/unreachable, and clients never see it. The
worklist is ordered by reverse post-order so loops converge in few
passes, and widening kicks in at loop heads after `widen_after`
re-visits, which bounds iteration for interval-style lattices.

Determinism: block order, RPO and the worklist are all derived from the
CFG's integer ids, so two runs over the same file produce bit-identical
fixpoints — the same bar the rest of cimlint holds itself to.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, Protocol

from .cfg import Cfg, Edge, Stmt

State = Any


class Client(Protocol):
    def entry_state(self) -> State: ...

    def join(self, a: State, b: State) -> State: ...

    def transfer(self, state: State, stmt: Stmt) -> State: ...

    # Optional hooks (defaults in solve()):
    # def widen(self, old: State, new: State,
    #           loop_stmts: list[Stmt] | None) -> State
    #   `loop_stmts` is every statement inside the natural loop of the
    #   head being widened — so a client can restrict widening to the
    #   variables that loop actually assigns. An outer counter flowing
    #   through an inner head is *converging*, not diverging; widening
    #   it there loses precision narrowing cannot recover (the back
    #   edge keeps regenerating the widened bound).
    # def refine(self, state: State, edge: Edge) -> State


def solve(cfg: Cfg, client: Client, widen_after: int = 3,
          narrow_iters: int = 2
          ) -> tuple[dict[int, State], dict[int, State]]:
    """Runs `client` to fixpoint; returns (in_states, out_states) keyed
    by block id. Unreachable blocks are absent from both maps.

    For widening clients, the widened fixpoint is followed by
    `narrow_iters` plain decreasing sweeps (no widening, joins recomputed
    from scratch). Widening at a loop head coarsens *every* variable
    joined there — including an outer loop's counter that was still
    converging — and only the head's own condition gets refined back.
    The fixpoint is a post-fixpoint (F(x) ⊑ x), so re-applying the
    transfer functions yields a decreasing chain of sound states; two
    sweeps recover e.g. the outer counter's bounds inside a nested
    loop."""
    widen = getattr(client, "widen", None)
    refine = getattr(client, "refine", None)

    order = cfg.rpo()
    pos = {block_id: k for k, block_id in enumerate(order)}
    out_edges: dict[int, list[Edge]] = {b.id: [] for b in cfg.blocks}
    for edge in cfg.edges:
        out_edges[edge.src].append(edge)

    loop_stmts = _loop_statements(cfg, pos) if widen is not None else {}

    ins: dict[int, State] = {cfg.entry: client.entry_state()}
    outs: dict[int, State] = {}
    visits: dict[int, int] = {}

    heap: list[tuple[int, int]] = [(pos[cfg.entry], cfg.entry)]
    queued = {cfg.entry}
    # Hard stop against non-convergence: a client whose transfer keeps
    # producing new states (a widening bug, an unbounded lattice) must
    # degrade to "function not analyzed" (callers catch ValueError),
    # never hang the lint run.
    budget = 256 * (len(cfg.blocks) + 4)
    steps = 0
    while heap:
        steps += 1
        if steps > budget:
            raise ValueError("dataflow solve did not converge "
                             f"within {budget} steps")
        _, block_id = heapq.heappop(heap)
        queued.discard(block_id)
        state = ins.get(block_id)
        if state is None:
            continue
        for stmt in cfg.blocks[block_id].stmts:
            state = client.transfer(state, stmt)
        outs[block_id] = state
        for edge in out_edges[block_id]:
            edge_state = refine(state, edge) if refine else state
            old = ins.get(edge.dst)
            if old is None:
                new = edge_state
            else:
                new = client.join(old, edge_state)
                if (widen is not None and edge.dst in cfg.loop_heads
                        and visits.get(edge.dst, 0) >= widen_after):
                    new = widen(old, new, loop_stmts.get(edge.dst))
            if old is not None and new == old:
                continue
            ins[edge.dst] = new
            visits[edge.dst] = visits.get(edge.dst, 0) + 1
            if edge.dst not in queued and edge.dst in pos:
                queued.add(edge.dst)
                heapq.heappush(heap, (pos[edge.dst], edge.dst))

    if widen is not None:
        in_edges: dict[int, list[Edge]] = {b.id: [] for b in cfg.blocks}
        for edge in cfg.edges:
            in_edges[edge.dst].append(edge)
        for _ in range(narrow_iters):
            for block_id in order:
                if block_id == cfg.entry:
                    state = client.entry_state()
                else:
                    state = None
                    for edge in in_edges[block_id]:
                        src_out = outs.get(edge.src)
                        if src_out is None:
                            continue
                        edge_state = (refine(src_out, edge) if refine
                                      else src_out)
                        state = edge_state if state is None \
                            else client.join(state, edge_state)
                    if state is None:
                        continue
                ins[block_id] = state
                for stmt in cfg.blocks[block_id].stmts:
                    state = client.transfer(state, stmt)
                outs[block_id] = state
    return ins, outs


def _loop_statements(cfg: Cfg, pos: dict[int, int]
                     ) -> dict[int, list[Stmt]]:
    """Statements inside each loop head's natural loop, keyed by head.

    A retreating edge (RPO position of src >= dst) into a loop head
    closes a loop; its natural loop is the head plus everything that
    reaches the edge's source without passing through the head — the
    standard backward walk over predecessors."""
    preds: dict[int, list[int]] = {b.id: [] for b in cfg.blocks}
    for edge in cfg.edges:
        preds[edge.dst].append(edge.src)
    out: dict[int, list[Stmt]] = {}
    for head in sorted(cfg.loop_heads):
        body = {head}
        stack = [e.src for e in cfg.edges
                 if e.dst == head and e.src in pos and head in pos
                 and pos[e.src] >= pos[head]]
        while stack:
            node = stack.pop()
            if node in body:
                continue
            body.add(node)
            stack.extend(preds[node])
        out[head] = [stmt for block_id in sorted(body)
                     for stmt in cfg.blocks[block_id].stmts]
    return out


def stmt_states(cfg: Cfg, client: Client, ins: dict[int, State]
                ) -> Iterator[tuple[Stmt, State]]:
    """(statement, state-before-it) pairs at the fixpoint, in block/
    statement order. Statements in unreachable blocks are skipped."""
    for block in cfg.blocks:
        state = ins.get(block.id)
        if state is None:
            continue
        for stmt in block.stmts:
            yield stmt, state
            state = client.transfer(state, stmt)


def branch_edges(cfg: Cfg, outs: dict[int, State]
                 ) -> Iterator[tuple[Edge, State]]:
    """(edge, state-at-the-branch) for every conditional edge whose
    source block is reachable — the raw material for dead-check
    detection (the state already reflects the source block's effects,
    not the edge's own refinement)."""
    for edge in cfg.edges:
        if edge.cond is None or edge.cond_value is None:
            continue
        state = outs.get(edge.src)
        if state is None:
            continue
        yield edge, state
