"""Static deadlock detection: global lock-acquisition-order cycles.

Every function's FlowFacts (index.py / flowfacts.py) record, from the
must-hold lock-set dataflow over its CFG, (a) each guard acquisition
with the locks already held and (b) each call made under a held lock.
This pack stitches those summaries into one global digraph over mutex
names:

  * a direct edge `a -> b` when some function acquires `b` while the
    solver proves `a` is held (CIM_REQUIRES contributes the entry set);
  * a transitive edge `a -> b` when a function holding `a` calls into a
    (name-resolved) callee whose may-acquire closure contains `b`.

A cycle in that graph is a deadlock two threads can realise by running
the two witness paths concurrently — the schedule TSan would need luck
to hit, proven without running anything. Mutex identity is by *name*
(the same over-approximation the rest of the analyzer uses): two
classes with a member both called `mu_` conflate, which can produce a
false cycle but never hides a true one. Self-edges (re-acquiring the
mutex you hold) are skipped for exactly that reason — name conflation
makes them mostly noise, and the recursive-mutex case is legitimate.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Iterable

from .callgraph import _in_node_dirs
from .findings import Finding
from .index import FunctionInfo, ProjectIndex
from .rules import LintConfig, project_rule

_FnKey = tuple[str, int]


@dataclasses.dataclass(frozen=True)
class _Witness:
    text: str   # human-readable acquisition path
    path: str   # file of the first step (where the finding anchors)
    line: int


def _build_graph(index: ProjectIndex
                 ) -> dict[tuple[str, str], _Witness]:
    """(held, acquired) -> first witness, deterministically."""
    funcs = sorted((f for f in index.all_functions()
                    if _in_node_dirs(f.path)),
                   key=lambda f: (f.path, f.line))
    by_name: dict[str, list[FunctionInfo]] = collections.defaultdict(list)
    for f in funcs:
        by_name[f.name].append(f)

    def key(f: FunctionInfo) -> _FnKey:
        return (f.path, f.line)

    by_key = {key(f): f for f in funcs}
    adj: dict[_FnKey, list[_FnKey]] = {}
    direct: dict[_FnKey, dict[str, int]] = {}  # mutex -> acquire line
    for f in funcs:
        callees: list[_FnKey] = []
        for name in f.calls:
            callees.extend(key(g) for g in by_name.get(name, ()))
        adj[key(f)] = sorted(set(callees))
        acq: dict[str, int] = {}
        for site in f.flow.acquires:
            acq.setdefault(site.mutex, site.line)
        direct[key(f)] = acq

    # May-acquire closure over the call graph (fixpoint; the graph is
    # small and the sets are over mutex names, so this converges fast).
    may: dict[_FnKey, frozenset[str]] = {
        k: frozenset(direct[k]) for k in adj}
    changed = True
    while changed:
        changed = False
        for k in adj:
            merged = set(may[k])
            for c in adj[k]:
                merged |= may[c]
            fs = frozenset(merged)
            if fs != may[k]:
                may[k] = fs
                changed = True

    def acquire_chain(start: _FnKey, mutex: str
                      ) -> tuple[list[_FnKey], int] | None:
        """Shortest call path from `start` to a direct acquirer of
        `mutex`; returns (path of function keys, acquire line)."""
        seen = {start}
        queue: collections.deque[tuple[_FnKey, list[_FnKey]]] = \
            collections.deque([(start, [start])])
        while queue:
            node, path = queue.popleft()
            if mutex in direct[node]:
                return path, direct[node][mutex]
            for c in adj[node]:
                if c in seen or mutex not in may[c]:
                    continue
                seen.add(c)
                queue.append((c, path + [c]))
        return None

    edges: dict[tuple[str, str], _Witness] = {}
    for f in funcs:
        for site in f.flow.acquires:
            for held in site.held:
                if held == site.mutex:
                    continue
                edges.setdefault((held, site.mutex), _Witness(
                    text=f"{f.qual_name} ({f.path}:{site.line}) acquires "
                         f"'{site.mutex}' while holding '{held}'",
                    path=f.path, line=site.line))
        for call in f.flow.locked_calls:
            for g in by_name.get(call.callee, ()):
                gk = key(g)
                for mutex in sorted(may[gk]):
                    if mutex in call.held:
                        continue
                    for held in call.held:
                        if (held, mutex) in edges:
                            continue
                        found = acquire_chain(gk, mutex)
                        if found is None:
                            continue
                        chain, acq_line = found
                        names = " -> ".join(
                            by_key[k].qual_name for k in chain)
                        last = by_key[chain[-1]]
                        edges[(held, mutex)] = _Witness(
                            text=f"{f.qual_name} ({f.path}:{call.line}) "
                                 f"holds '{held}' and calls {names}, "
                                 f"which acquires '{mutex}' "
                                 f"({last.path}:{acq_line})",
                            path=f.path, line=call.line)
    return edges


def _sccs(nodes: list[str], succ: dict[str, list[str]]) -> list[list[str]]:
    """Tarjan SCCs, iterative, deterministic (sorted roots/successors)."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = succ.get(node, [])
            for j in range(pi, len(children)):
                child = children[j]
                if child not in index_of:
                    work[-1] = (node, j + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index_of[node]:
                scc: list[str] = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    scc.append(top)
                    if top == node:
                        break
                out.append(sorted(scc))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    out.sort()
    return out


def _cycle_through(scc: list[str], succ: dict[str, list[str]]
                   ) -> list[str]:
    """A shortest cycle inside `scc` starting at its smallest mutex."""
    members = set(scc)
    start = scc[0]
    prev: dict[str, str] = {}
    queue: collections.deque[str] = collections.deque([start])
    seen = {start}
    while queue:
        node = queue.popleft()
        for nxt in succ.get(node, []):
            if nxt not in members:
                continue
            if nxt == start:
                cycle = [start]
                back = node
                while back != start:
                    cycle.append(back)
                    back = prev[back]
                if len(cycle) > 1:
                    cycle.append(start)
                    cycle.reverse()
                    return cycle
                continue
            if nxt in seen:
                continue
            seen.add(nxt)
            prev[nxt] = node
            queue.append(nxt)
    return []


@project_rule(
    "lock-order-cycle",
    "two lock acquisition paths take the same mutexes in opposite order "
    "(static deadlock)",
    """Builds the global lock-acquisition-order graph from every
function's lock-set dataflow: an edge `a -> b` means some path acquires
`b` while provably holding `a` — directly (a scoped guard inside
another guard's scope, or under a CIM_REQUIRES precondition) or through
a call chain into a function whose may-acquire closure contains `b`.
The RAII scope tracking in the CFG means a guard released at an
iteration or scope boundary does not leak into the next acquisition,
so the thread-pool worker loop's sleep lock does not fabricate an
inverted edge.

A cycle `a -> b -> a` is a deadlock two threads can realise by running
the two witness paths concurrently; ThreadSanitizer only reports it if
the schedule actually interleaves that way in a test run, while this
proof needs no execution. The finding names every mutex on the cycle
and one witness acquisition path per edge.

Mutex identity is by name (over-approximate, DESIGN.md §13): rename one
of the mutexes or add a NOLINT(lock-order-cycle) with a justification
if two unrelated members conflate. The real fix for a true positive is
a single global acquisition order — lock the coarser mutex first, or
collapse the pair into one std::scoped_lock(a, b).""",
)
def _lock_order_cycle(index: ProjectIndex, _config: LintConfig
                      ) -> Iterable[Finding]:
    edges = _build_graph(index)
    succ: dict[str, list[str]] = collections.defaultdict(list)
    nodes: set[str] = set()
    for a, b in edges:
        succ[a].append(b)
        nodes.update((a, b))
    for a in succ:
        succ[a].sort()

    for scc in _sccs(sorted(nodes), succ):
        if len(scc) < 2:
            continue
        cycle = _cycle_through(scc, succ)
        if len(cycle) < 3:  # start -> ... -> start needs >= 2 mutexes
            continue
        arrows = " -> ".join(f"'{m}'" for m in cycle)
        steps = []
        for i in range(len(cycle) - 1):
            witness = edges[(cycle[i], cycle[i + 1])]
            steps.append(f"[path {i + 1}] {witness.text}")
        anchor = edges[(cycle[0], cycle[1])]
        yield Finding(
            path=anchor.path, line=anchor.line, rule="lock-order-cycle",
            message=f"lock acquisition order cycle {arrows}; "
                    + "; ".join(steps))
