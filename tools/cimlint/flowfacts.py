"""Per-function dataflow summaries: lock sets and seed provenance.

The interprocedural analyses (rules_lockorder, rules_seedflow) need one
fact bundle per function, computed once at index time and cached with
the rest of the project index:

  * `requires`      — mutexes named by CIM_REQUIRES on the signature;
                      they form the entry lock set.
  * `acquires`      — every scoped-guard acquisition with the *must-
                      hold* lock set at that point. `held -> mutex`
                      edges are exactly the global lock-order graph.
  * `locked_calls`  — callee names invoked while a lock is held, so the
                      order graph extends through the call graph
                      (f holds `mu` and calls g; g locks `nu` ⇒ mu→nu).
  * `seed_sites`    — every RNG construction / reseed with a provenance
                      verdict: does the seed expression derive from
                      util::stream_seed / hash_combine / splitmix64 /
                      fork / a literal / a seed-named value through a
                      chain the intraprocedural solver can follow?

Both clients run the generic worklist solver over the cfg.py CFG with
must-analysis joins (set intersection), so a lock released on one path
is not "held" at the join and a variable seeded on one branch only is
not proven.

Boundary assumptions, stated rather than hidden (DESIGN.md §13): at
function entry, parameters count as proven seed material — call sites
are checked in *their* enclosing functions, and det-taint still flags
non-deterministic sources anywhere in the cone. For the seed-derivation
calls (stream_seed/hash_combine/splitmix64) provenance follows the
FIRST argument: the base carries the lineage, the second operand is a
stream selector / mixing constant.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Callable

from . import stats
from .cfg import Cfg, Edge, Stmt, _split_args, build_cfg
from .dataflow import solve, stmt_states

# ------------------------------------------------------------ data model


@dataclasses.dataclass(frozen=True)
class AcquireSite:
    mutex: str
    line: int
    held: tuple[str, ...]   # sorted must-hold set just before acquiring


@dataclasses.dataclass(frozen=True)
class LockedCall:
    callee: str
    line: int
    held: tuple[str, ...]   # sorted must-hold set at the call


@dataclasses.dataclass(frozen=True)
class SeedSite:
    line: int
    rng: str       # variable / receiver being seeded
    proven: bool
    detail: str    # why the proof failed ("" when proven)


@dataclasses.dataclass(frozen=True)
class FlowFacts:
    requires: tuple[str, ...]
    acquires: tuple[AcquireSite, ...]
    locked_calls: tuple[LockedCall, ...]
    seed_sites: tuple[SeedSite, ...]


EMPTY_FACTS = FlowFacts(requires=(), acquires=(), locked_calls=(),
                        seed_sites=())

# ----------------------------------------------------- signature parsing

_REQUIRES_RE = re.compile(r"\bCIM_REQUIRES\s*\(([^)]*)\)")
_LAST_IDENT = re.compile(r"([A-Za-z_]\w*)\s*$")


def signature_requires(code: str, name_offset: int, body_start: int
                       ) -> tuple[str, ...]:
    """Mutex names from CIM_REQUIRES between the function name and its
    opening brace (where the annotation macro sits)."""
    out: list[str] = []
    for m in _REQUIRES_RE.finditer(code[name_offset:body_start]):
        for arg in _split_args(m.group(1)):
            last = _LAST_IDENT.search(arg)
            if last:
                out.append(last.group(1))
    return tuple(out)


def signature_params(code: str, name_offset: int, body_start: int
                     ) -> tuple[str, ...]:
    """Best-effort parameter names of the function whose name token is at
    `name_offset` (last identifier of each declarator, defaults
    stripped)."""
    open_paren = code.find("(", name_offset, body_start)
    if open_paren < 0:
        return ()
    depth = 0
    close = -1
    for j in range(open_paren, body_start):
        if code[j] == "(":
            depth += 1
        elif code[j] == ")":
            depth -= 1
            if depth == 0:
                close = j
                break
    if close < 0:
        return ()
    out: list[str] = []
    for arg in _split_args(code[open_paren + 1:close]):
        arg = arg.split("=", 1)[0]
        last = _LAST_IDENT.search(arg)
        if last:
            out.append(last.group(1))
    return tuple(out)


# ------------------------------------------------------- lock-set client

_METHOD_LOCK_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*(lock|unlock)\s*\(")


class _LockClient:
    """Must-hold lock sets: frozenset of mutex names."""

    def __init__(self, requires: tuple[str, ...],
                 guard_vars: dict[str, tuple[str, ...]]):
        self.requires = requires
        self.guard_vars = guard_vars  # guard var -> its mutexes

    def entry_state(self) -> frozenset[str]:
        return frozenset(self.requires)

    def join(self, a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
        return a & b

    def transfer(self, state: frozenset[str], stmt: Stmt) -> frozenset[str]:
        if stmt.guard is not None:
            return state | frozenset(stmt.guard.mutexes)
        for m in _METHOD_LOCK_RE.finditer(stmt.text):
            names = self.guard_vars.get(m.group(1), (m.group(1),))
            if m.group(2) == "lock":
                state = state | frozenset(names)
            else:
                state = state - frozenset(names)
        return state

    def refine(self, state: frozenset[str], edge: Edge) -> frozenset[str]:
        if edge.releases:
            return state - frozenset(edge.releases)
        return state


# ------------------------------------------------- seed-provenance client

#: Functions whose result inherits the provenance of their first
#: argument (the seed-derivation chain of random.hpp).
_DERIVE_FNS = frozenset({"stream_seed", "hash_combine", "splitmix64"})

#: Numeric-type functional casts: pass-through.
_TYPE_FNS = frozenset({
    "uint64_t", "uint32_t", "uint16_t", "uint8_t", "int64_t", "int32_t",
    "size_t", "int", "unsigned", "long", "uint64", "u64", "auto",
})

_CAST_RE = re.compile(
    r"^(?:static_cast|const_cast|reinterpret_cast)\s*<[^()]*>\s*\((.*)\)$",
    re.DOTALL)
_NUM_RE = re.compile(r"(?:0[xX][0-9a-fA-F']+|\d[\d'.]*)(?:[uUlLzZfF]*)")
_PATH_RE = re.compile(
    r"[A-Za-z_]\w*(?:\s*(?:::|\.|->)\s*[A-Za-z_]\w*)*")

_BIN_OPS = ("<<", ">>", "+", "-", "*", "/", "%", "^", "|", "&")


def _strip_parens(expr: str) -> str:
    expr = expr.strip()
    while expr.startswith("(") and expr.endswith(")"):
        depth = 0
        for i, ch in enumerate(expr):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0 and i != len(expr) - 1:
                    return expr
        expr = expr[1:-1].strip()
    return expr


def _split_binary(expr: str) -> list[str]:
    """Top-level operands of `expr` under the +,-,*,... operators
    (returns [expr] when it is not a binary expression)."""
    parts: list[str] = []
    depth = 0
    start = 0
    i = 0
    n = len(expr)
    while i < n:
        ch = expr[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif depth == 0:
            if expr.startswith("->", i):
                i += 2
                continue
            for op in _BIN_OPS:
                if expr.startswith(op, i):
                    parts.append(expr[start:i])
                    i += len(op)
                    start = i
                    break
            else:
                i += 1
                continue
            continue
        i += 1
    parts.append(expr[start:])
    return [p for p in (p.strip() for p in parts) if p]


def _prove_seed(expr: str, proven: frozenset[str]) -> tuple[bool, str]:
    """(proven?, failure detail) for a seed expression.

    The proof follows the *derivation spine*: literals, seed-named
    values, variables the dataflow already proved, fork(), and the
    derive functions applied to a proven base.
    """
    expr = _strip_parens(expr)
    if not expr or _NUM_RE.fullmatch(expr) or expr in ("true", "false"):
        return True, ""
    if expr[0] in "-~!+":
        return _prove_seed(expr[1:], proven)

    # Ternary: both arms must be proven.
    depth = 0
    for i, ch in enumerate(expr):
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "?" and depth == 0 and expr[i + 1:i + 2] != ":":
            colon = -1
            d2 = 0
            for j in range(i + 1, len(expr)):
                if expr[j] in "([{":
                    d2 += 1
                elif expr[j] in ")]}":
                    d2 -= 1
                elif expr[j] == ":" and d2 == 0 \
                        and expr[j - 1] != ":" and expr[j + 1:j + 2] != ":":
                    colon = j
                    break
            if colon > 0:
                ok_a, why_a = _prove_seed(expr[i + 1:colon], proven)
                if not ok_a:
                    return False, why_a
                return _prove_seed(expr[colon + 1:], proven)

    operands = _split_binary(expr)
    if len(operands) > 1:
        for op in operands:
            ok, why = _prove_seed(op, proven)
            if not ok:
                return False, why
        return True, ""

    m = _CAST_RE.match(expr)
    if m:
        return _prove_seed(m.group(1), proven)

    pm = _PATH_RE.match(expr)
    if pm:
        path = pm.group(0)
        last = re.split(r"::|\.|->", path)[-1].strip()
        rest = expr[pm.end():].lstrip()
        if not rest:
            if last in proven or "seed" in last.lower():
                return True, ""
            return False, f"'{last}' has no seed provenance"
        if rest.startswith("(") and rest.endswith(")"):
            args = _split_args(rest[1:-1])
            if last in _DERIVE_FNS:
                if not args:
                    return False, f"'{last}()' called without a base seed"
                return _prove_seed(args[0], proven)
            if last == "fork":
                return True, ""
            if last in _TYPE_FNS:
                return _prove_seed(rest[1:-1], proven)
            if "seed" in last.lower():
                return True, ""
            return False, (f"value flows through '{last}()', which is not "
                           f"a recognised seed derivation")
        if rest.startswith("["):
            return False, f"indexed value '{path}[...]'"
    return False, "unrecognised seed expression"


def _find_assignment(text: str) -> tuple[int, bool] | None:
    """(offset of top-level '=', is_compound) or None."""
    depth = 0
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "=" and depth == 0:
            if text[i + 1:i + 2] == "=":
                i += 2
                continue
            prev = text[i - 1:i]
            if prev in ("<", ">", "!"):
                i += 1
                continue
            return i, prev in ("+", "-", "*", "/", "%", "^", "|", "&")
        i += 1
    return None


class _SeedClient:
    """Provenance lattice: frozenset of proven variable names."""

    def __init__(self, params: tuple[str, ...]):
        self.params = params

    def entry_state(self) -> frozenset[str]:
        return frozenset(self.params)

    def join(self, a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
        return a & b

    def transfer(self, state: frozenset[str], stmt: Stmt) -> frozenset[str]:
        found = _find_assignment(stmt.text)
        if found is None:
            return state
        eq, compound = found
        lhs = stmt.text[:eq - 1] if compound else stmt.text[:eq]
        last = _LAST_IDENT.search(lhs)
        if last is None:
            return state
        var = last.group(1)
        ok, _ = _prove_seed(stmt.text[eq + 1:].rstrip(";"), state)
        if compound:
            ok = ok and var in state
        return (state | {var}) if ok else (state - {var})


# ------------------------------------------------------- site extraction

_RNG_DECL_RE = re.compile(
    r"(?:^|[(\s])(?:util\s*::\s*)?"
    r"(?:Rng|std\s*::\s*mt19937(?:_64)?|mt19937(?:_64)?|"
    r"default_random_engine|minstd_rand0?)"
    r"\s+([A-Za-z_]\w*)\s*([({])")
_RESEED_RE = re.compile(
    r"\b([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)"
    r"\s*(?:\.|->)\s*(?:reseed|seed)\s*\(")
_RNG_APPEND_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*\.\s*(?:emplace_back|push_back)\s*\(")


def _balanced_span(text: str, open_at: int) -> int:
    """Offset one past the bracket matching text[open_at] ('(' or '{')."""
    pairs = {"(": ")", "{": "}"}
    close = pairs[text[open_at]]
    open_ch = text[open_at]
    depth = 0
    for j in range(open_at, len(text)):
        if text[j] == open_ch:
            depth += 1
        elif text[j] == close:
            depth -= 1
            if depth == 0:
                return j + 1
    return len(text)


def _seed_sites_in_stmt(stmt: Stmt, state: frozenset[str]
                        ) -> list[SeedSite]:
    text = " ".join(stmt.text.split())
    sites: list[SeedSite] = []
    for m in _RNG_DECL_RE.finditer(text):
        open_at = m.start(2)
        inner = text[open_at + 1:_balanced_span(text, open_at) - 1]
        args = _split_args(inner)
        if not args:   # default-seeded: fixed constant in random.hpp
            ok, why = True, ""
        else:
            ok, why = _prove_seed(args[0], state)
        sites.append(SeedSite(line=stmt.line, rng=m.group(1),
                              proven=ok, detail=why))
    for m in _RESEED_RE.finditer(text):
        open_at = text.find("(", m.end() - 1)
        inner = text[open_at + 1:_balanced_span(text, open_at) - 1]
        args = _split_args(inner)
        ok, why = _prove_seed(args[0], state) if args else (True, "")
        receiver = re.sub(r"\s+", "", m.group(1))
        sites.append(SeedSite(line=stmt.line, rng=receiver,
                              proven=ok, detail=why))
    for m in _RNG_APPEND_RE.finditer(text):
        if "rng" not in m.group(1).lower():
            continue
        open_at = text.find("(", m.end() - 1)
        inner = text[open_at + 1:_balanced_span(text, open_at) - 1]
        args = _split_args(inner)
        if not args:
            continue
        ok, why = _prove_seed(args[0], state)
        sites.append(SeedSite(line=stmt.line, rng=m.group(1),
                              proven=ok, detail=why))
    return sites


# -------------------------------------------------------------- top level


def extract_flow_facts(code: str, body_start: int, body_end: int,
                       name_offset: int,
                       extract_calls: Callable[[str], tuple[str, ...]],
                       ) -> FlowFacts:
    """Computes the FlowFacts bundle for the function whose body is
    code[body_start+1:body_end-1] (offsets of the braces, absolute in
    the stripped file). Degrades to EMPTY_FACTS on any internal failure
    — a summary miss is an analysis gap, never a crash."""
    try:
        return _extract(code, body_start, body_end, name_offset,
                        extract_calls)
    except (RecursionError, IndexError, ValueError):
        return EMPTY_FACTS


def _extract(code: str, body_start: int, body_end: int, name_offset: int,
             extract_calls: Callable[[str], tuple[str, ...]]) -> FlowFacts:
    with stats.GLOBAL.phase("cfg"):
        cfg: Cfg = build_cfg(code, body_start + 1, body_end - 1)
    requires = signature_requires(code, name_offset, body_start)
    params = signature_params(code, name_offset, body_start)

    guard_vars: dict[str, tuple[str, ...]] = {}
    has_locks = bool(requires)
    has_seeds = False
    for stmt in cfg.all_stmts():
        if stmt.guard is not None:
            guard_vars[stmt.guard.var] = stmt.guard.mutexes
            has_locks = True
        elif _METHOD_LOCK_RE.search(stmt.text):
            has_locks = True
        if ("Rng" in stmt.text or "mt19937" in stmt.text
                or "reseed" in stmt.text or "random_engine" in stmt.text
                or "minstd_rand" in stmt.text or "rng" in stmt.text.lower()):
            has_seeds = True

    acquires: list[AcquireSite] = []
    locked_calls: list[LockedCall] = []
    if has_locks:
        lock_client = _LockClient(requires, guard_vars)
        with stats.GLOBAL.phase("solve"):
            ins, _ = solve(cfg, lock_client)
        for stmt, state in stmt_states(cfg, lock_client, ins):
            if stmt.guard is not None:
                held = tuple(sorted(state))
                for mutex in stmt.guard.mutexes:
                    acquires.append(AcquireSite(
                        mutex=mutex, line=stmt.line, held=held))
                continue
            for m in _METHOD_LOCK_RE.finditer(stmt.text):
                if m.group(2) != "lock":
                    continue
                held = tuple(sorted(state))
                for mutex in guard_vars.get(m.group(1), (m.group(1),)):
                    if mutex not in state:
                        acquires.append(AcquireSite(
                            mutex=mutex, line=stmt.line, held=held))
            if state:
                held = tuple(sorted(state))
                for callee in extract_calls(stmt.text):
                    locked_calls.append(LockedCall(
                        callee=callee, line=stmt.line, held=held))

    seed_sites: list[SeedSite] = []
    if has_seeds:
        seed_client = _SeedClient(params)
        with stats.GLOBAL.phase("solve"):
            ins, _ = solve(cfg, seed_client)
        for stmt, state in stmt_states(cfg, seed_client, ins):
            seed_sites.extend(_seed_sites_in_stmt(stmt, state))

    acquires.sort(key=lambda a: (a.line, a.mutex))
    locked_calls.sort(key=lambda c: (c.line, c.callee))
    seed_sites.sort(key=lambda s: (s.line, s.rng))
    return FlowFacts(requires=requires, acquires=tuple(acquires),
                     locked_calls=tuple(dict.fromkeys(locked_calls)),
                     seed_sites=tuple(seed_sites))
