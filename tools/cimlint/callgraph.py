"""Name-resolved call graph and taint reachability over a ProjectIndex.

Resolution is by *last name*: a call site `run(` resolves to every
indexed definition named `run`, wherever it lives. That is deliberately
over-approximate — without a type checker we cannot tell `LevelSolver::
run` from `ThreadPool::run` — and it errs on the side of reporting:
a taint reachable through *any* same-named definition is reported, and
suppressed where a human has reviewed it (NOLINT/baseline). Two
narrowing filters keep the noise tolerable in practice:

  * Only definitions under first-party runtime code (`src/`, relative to
    the scanned root) become call-graph nodes. Standard-library and
    test-only names never pull taints into a runtime chain.
  * Function-like macros are nodes too, so `TELEM_COUNTER_EVENT(...)`
    chains through the macro body into `Registry::counter_event` instead
    of dead-ending at an unresolved name.

Traversal is a breadth-first search from every `CIM_DETERMINISM_ROOT`
function, visiting in sorted (path, line) order so findings and witness
chains are bit-stable across runs — the same determinism bar the
analyzer holds the annealer to.
"""

from __future__ import annotations

import collections
import dataclasses

from .index import FunctionInfo, MacroInfo, ProjectIndex, TaintSite

#: Call-graph nodes are restricted to definitions under these top-level
#: directories (relative to the scanned root). Fixture trees mirror the
#: real layout, so the same filter applies there.
NODE_DIRS = ("src",)


@dataclasses.dataclass(frozen=True)
class TaintFinding:
    """One reachable taint: the root, the witness chain of qualified
    names from the root to the function containing the source, and the
    source site itself (where the finding is reported)."""
    root: FunctionInfo
    chain: tuple[str, ...]  # qual names, root first, sink last
    sink: FunctionInfo      # function containing the taint site
    site: TaintSite


def _in_node_dirs(path: str) -> bool:
    return path.split("/", 1)[0] in NODE_DIRS


class CallGraph:
    """Adjacency from (kind, path, line) node keys to node keys."""

    def __init__(self, index: ProjectIndex) -> None:
        self._funcs: list[FunctionInfo] = [
            f for f in index.all_functions() if _in_node_dirs(f.path)]
        self._macros: list[MacroInfo] = [
            m for m in index.all_macros() if _in_node_dirs(m.path)]

        # last name -> definitions. Macros keep their (upper-case) name.
        self._by_name: dict[str, list[FunctionInfo | MacroInfo]] = \
            collections.defaultdict(list)
        for f in self._funcs:
            self._by_name[f.name].append(f)
        for m in self._macros:
            self._by_name[m.name].append(m)
        for defs in self._by_name.values():
            defs.sort(key=lambda d: (d.path, d.line))

    def roots(self) -> list[FunctionInfo]:
        return sorted((f for f in self._funcs if f.is_root),
                      key=lambda f: (f.path, f.line))

    def callees(self, node: FunctionInfo | MacroInfo
                ) -> list[FunctionInfo | MacroInfo]:
        out: list[FunctionInfo | MacroInfo] = []
        for name in node.calls:
            out.extend(self._by_name.get(name, ()))
        return out

    @staticmethod
    def _key(node: FunctionInfo | MacroInfo) -> tuple[str, int, str]:
        return (node.path, node.line, node.name)

    @staticmethod
    def _label(node: FunctionInfo | MacroInfo) -> str:
        if isinstance(node, MacroInfo):
            return node.name  # macro: name is already the whole story
        return node.qual_name

    def reachable_functions(self) -> list[
            tuple[FunctionInfo, "FunctionInfo", tuple[str, ...]]]:
        """(root, function, witness chain) for every function reachable
        from a determinism root — the shortest chain, first root wins.

        Each function is reported once (keyed on its definition site),
        visiting roots in sorted order, so the witness set is bit-stable.
        The seed-flow proof consumes this: every RNG seeding site inside
        a reachable function owes a provenance proof.
        """
        out: list[tuple[FunctionInfo, FunctionInfo, tuple[str, ...]]] = []
        claimed: set[tuple[str, int, str]] = set()
        for root in self.roots():
            seen: set[tuple[str, int, str]] = {self._key(root)}
            queue: collections.deque[
                tuple[FunctionInfo | MacroInfo, tuple[str, ...]]] = \
                collections.deque([(root, (self._label(root),))])
            while queue:
                node, chain = queue.popleft()
                key = self._key(node)
                if isinstance(node, FunctionInfo) and key not in claimed:
                    claimed.add(key)
                    out.append((root, node, chain))
                for callee in self.callees(node):
                    ckey = self._key(callee)
                    if ckey in seen:
                        continue
                    seen.add(ckey)
                    queue.append((callee, chain + (self._label(callee),)))
        out.sort(key=lambda t: (t[1].path, t[1].line))
        return out

    def reachable_taints(self) -> list[TaintFinding]:
        """All (root, taint site) pairs with one witness chain each.

        BFS guarantees the *shortest* chain is the witness; per
        (root, sink path, site line, site kind) only the first chain
        found is kept, so every distinct source is reported exactly once
        per root even when many paths reach it.
        """
        findings: list[TaintFinding] = []
        for root in self.roots():
            seen: set[tuple[str, int, str]] = {self._key(root)}
            queue: collections.deque[
                tuple[FunctionInfo | MacroInfo, tuple[str, ...]]] = \
                collections.deque([(root, (self._label(root),))])
            reported: set[tuple[str, int, str]] = set()
            while queue:
                node, chain = queue.popleft()
                if isinstance(node, FunctionInfo):
                    for site in node.taints:
                        mark = (node.path, site.line, site.kind)
                        if mark in reported:
                            continue
                        reported.add(mark)
                        findings.append(TaintFinding(
                            root=root, chain=chain, sink=node, site=site))
                for callee in self.callees(node):
                    key = self._key(callee)
                    if key in seen:
                        continue
                    seen.add(key)
                    queue.append((callee, chain + (self._label(callee),)))
        findings.sort(key=lambda f: (f.sink.path, f.site.line, f.site.kind,
                                     f.root.path, f.root.line))
        return findings
