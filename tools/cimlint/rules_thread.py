"""Parallel-runtime discipline.

All threading must flow through the persistent work-stealing pool in
src/util/thread_pool.hpp (plus the parallel_for/parallel_reduce wrappers
layered on it). Raw std::thread at a call site reintroduces exactly the
per-epoch spawn/join churn the pool was built to kill, bypasses the
pool's deterministic lowest-index exception contract, and dodges the
threads_created() accounting the benches use to prove hot loops spawn
nothing.
"""

from __future__ import annotations

import re
from pathlib import PurePosixPath

from .rules import FileContext, rule
from .tokenizer import line_of

# The runtime itself may (must) own raw threads.
THREAD_ALLOWDIR = PurePosixPath("src/util")

# Negative lookahead: std::thread::id and friends are inert handle types,
# not thread creation — only the class itself (ctor) spawns.
_RAW_THREAD = re.compile(r"\bstd\s*::\s*j?thread\b(?!\s*::)")


@rule(
    "raw-thread",
    "std::thread outside src/util/; run on util::ThreadPool instead",
    """Spawning std::thread at a call site costs ~50 µs per thread and, in
a loop, dwarfs the work it parallelises — the annealer's colour-parallel
epochs lost their sparse-kernel speedup to exactly this churn before the
pool existed. Raw threads also skip the runtime's contracts: the
deterministic lowest-index exception rethrow, the helping-caller
nested-submit guarantee, and the threads_created() counter benches use to
assert hot loops create nothing.

Use util::ThreadPool::shared() (or a locally sized pool) with run(),
parallel_for or parallel_reduce. Only src/util/ — the runtime itself —
may construct std::thread. Legitimate exceptions (e.g. a test that needs
an out-of-pool driver thread, or a bench measuring the spawn baseline
itself) carry NOLINT(raw-thread) with a justification.""",
)
def _raw_thread(ctx: FileContext):
    if THREAD_ALLOWDIR in PurePosixPath(ctx.rel).parents:
        return
    for m in _RAW_THREAD.finditer(ctx.code):
        yield ctx.finding(line_of(ctx.code, m.start()), "raw-thread",
                          "std::thread outside src/util/; run on "
                          "util::ThreadPool instead")
