"""Warm-start store serialisation discipline.

Every byte the store persists goes through the one versioned,
digest-trailed record format in src/store/format.cpp. A raw fread/fwrite
anywhere else is a second serialisation path: unversioned (no format
gate on read-back), unverified (no digest, so truncation and bit rot
read as data) and invisible to the store's corrupt-entry accounting.
"""

from __future__ import annotations

import re
from pathlib import PurePosixPath

from .rules import FileContext, rule
from .tokenizer import line_of

# The sanctioned serialisation path: the record format implementation.
STORE_IO_ALLOWLIST = {PurePosixPath("src/store/format.cpp")}

_RAW_IO = re.compile(r"\b(?:std\s*::\s*)?(fread|fwrite)\s*\(")
_STD_STREAM = re.compile(r"\b(?:std\s*::\s*)?(stdout|stderr)\s*\)")


@rule(
    "store-unversioned-io",
    "raw fread/fwrite outside src/store/format.cpp; use the record format",
    """Persistent artifacts must be written through store::write_record /
read back through store::read_record (src/store/format.{hpp,cpp}): the
record format carries a magic, a format version and a SHA-256 trailer,
so a reader can tell truncation, bit rot and foreign-version files apart
from data and degrade to a cold start instead of consuming garbage. A
raw std::fread/std::fwrite call anywhere else creates a second, silent
serialisation path with none of those guarantees — exactly the drift
the format file exists to prevent. src/store/format.cpp itself is
allowlisted as the single sanctioned implementation.

Console output is not serialisation: fwrite to stdout/stderr (e.g. the
table printer's bulk write) is exempt. Text-mode std::ifstream /
std::ofstream readers of *foreign* formats (TSPLIB files, tour dumps)
are out of scope — the rule targets the C stdio block-I/O calls that
byte-serialise internal state.""",
)
def _store_unversioned_io(ctx: FileContext):
    if PurePosixPath(ctx.rel) in STORE_IO_ALLOWLIST:
        return
    for m in _RAW_IO.finditer(ctx.code):
        # Exempt console writes: the call's FILE* argument is
        # stdout/stderr on the same statement.
        line = line_of(ctx.code, m.start())
        stmt_end = ctx.code.find(";", m.start())
        stmt = ctx.code[m.start():stmt_end if stmt_end != -1 else m.endpos]
        if m.group(1) == "fwrite" and _STD_STREAM.search(stmt):
            continue
        yield ctx.finding(
            line, "store-unversioned-io",
            f"raw {m.group(1)} outside src/store/format.cpp; persist "
            "through store::write_record/read_record")
