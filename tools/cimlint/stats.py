"""Wall-time accounting for `cimlint --stats`.

Process-local accumulators: phases (index / cfg / solve / scan /
project) and per-rule seconds. The engine merges the per-process maps
returned by parallel scan workers into the coordinator's, so the JSON
the CLI writes covers the whole run regardless of --jobs. scripts/ci.sh
archives the file and warns (softly) when the total blows the latency
budget — the dataflow analyses must not creep pre-commit latency up
unnoticed.
"""

from __future__ import annotations

import contextlib
import time


class StatsRegistry:
    def __init__(self) -> None:
        self.phases: dict[str, float] = {}
        self.rules: dict[str, float] = {}
        self.rule_findings: dict[str, int] = {}

    @contextlib.contextmanager
    def phase(self, name: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.phases[name] = (self.phases.get(name, 0.0)
                                 + time.perf_counter() - t0)

    def add_rule(self, name: str, seconds: float, findings: int) -> None:
        self.rules[name] = self.rules.get(name, 0.0) + seconds
        self.rule_findings[name] = self.rule_findings.get(name, 0) + findings

    def snapshot_and_reset(self) -> tuple[dict[str, float], dict[str, float],
                                          dict[str, int]]:
        """Hands the accumulated maps to the caller and starts afresh —
        how a scan worker ships its share back to the coordinator
        without double-counting across the batches it processes."""
        snap = (self.phases, self.rules, self.rule_findings)
        self.phases, self.rules, self.rule_findings = {}, {}, {}
        return snap

    def merge(self, phases: dict[str, float], rules: dict[str, float],
              rule_findings: dict[str, int]) -> None:
        for k, v in phases.items():
            self.phases[k] = self.phases.get(k, 0.0) + v
        for k, v in rules.items():
            self.rules[k] = self.rules.get(k, 0.0) + v
        for k, n in rule_findings.items():
            self.rule_findings[k] = self.rule_findings.get(k, 0) + n

    def to_json(self, scanned_files: int, total_seconds: float) -> dict:
        return {
            "schema_version": 1,
            "scanned_files": scanned_files,
            "total_seconds": round(total_seconds, 6),
            "phases": {k: round(v, 6)
                       for k, v in sorted(self.phases.items())},
            "rules": {
                name: {"seconds": round(self.rules[name], 6),
                       "findings": self.rule_findings.get(name, 0)}
                for name in sorted(self.rules)
            },
        }


#: The registry the current process accumulates into. Worker processes
#: get a fresh one per task batch and ship the maps back to the parent.
GLOBAL = StatsRegistry()
