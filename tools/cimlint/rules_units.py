"""Unit hygiene: steer PPA quantities onto the strong types.

The paper's tables mix picojoules, nanoseconds, square microns and
milliwatts; a pJ value flowing into an ns slot regenerates a wrong table
that still *looks* plausible. src/util/units.hpp provides tagged strong
types (Picojoule, Nanosecond, SquareMicron, Milliwatt) that turn such
mix-ups into compile errors — these rules keep new code from bypassing
them.
"""

from __future__ import annotations

import re

from .rules import FileContext, rule
from .tokenizer import line_of

# `double` declarations (return types, parameters, fields) whose
# identifier is unit-suffixed: *_pj, *_ns, *_um2, *_mw (or the bare
# suffix). These should be the strong types instead.
_RAW_DOUBLE = re.compile(r"\bdouble\s+([A-Za-z_]\w*)")
_UNIT_NAME = re.compile(r"(?:\w*_)?(?:pj|ns|um2|mw)", re.IGNORECASE)

# Raw float(ing-point) equality: a comparison with a floating literal on
# either side. Rounded results differ across optimisation levels and
# FMA availability, so exact comparison is a latent platform dependence.
_FLOAT_EQ = re.compile(
    r"[=!]=\s*[+-]?(?:\d+\.\d*|\.\d+|\d+[eE][+-]?\d+)(?:[eE][+-]?\d+)?[fFlL]?"
    r"|(?:\d+\.\d*|\.\d+|\d+[eE][+-]?\d+)(?:[eE][+-]?\d+)?[fFlL]?\s*[=!]="
)
_CMP_GUARD = re.compile(r"[<>=!]$")  # excludes <=, >=, ==, != prefixes


@rule(
    "unit-raw-double",
    "raw double with a unit-suffixed name in a header; use the strong type",
    """A header declaring `double energy_pj` (or *_ns, *_um2, *_mw — as a
parameter, field, or double-returning function) re-opens the door the
strong types closed: every caller must remember the unit, and a pJ↔ns
transposition compiles silently. Declare the quantity as
util::Picojoule / util::Nanosecond / util::SquareMicron / util::Milliwatt
(src/util/units.hpp) instead; conversions to raw doubles are explicit
(.value(), .joules(), .seconds(), ...) and live at I/O boundaries only.

The rule scans headers because signatures are where unit contracts live;
.cpp-local doubles are implementation detail.""",
)
def _raw_double(ctx: FileContext):
    if not ctx.is_header:
        return
    for m in _RAW_DOUBLE.finditer(ctx.code):
        name = m.group(1)
        if _UNIT_NAME.fullmatch(name):
            yield ctx.finding(
                line_of(ctx.code, m.start()), "unit-raw-double",
                f"'double {name}' carries a unit in its name; declare it "
                "as the strong type from util/units.hpp (Picojoule / "
                "Nanosecond / SquareMicron / Milliwatt) so unit mix-ups "
                "fail to compile")


@rule(
    "unit-float-eq",
    "exact ==/!= against a floating-point literal",
    """`x == 0.05` on doubles is a latent platform dependence: the left
side is the result of rounded arithmetic that can differ in the last ulp
across compilers, optimisation levels and FMA contraction — and the
repo's comparability argument rests on bit-stable behaviour everywhere.
Compare against an explicit tolerance, restructure to integer/ordinal
comparison, or — for genuine sentinel checks like `rate == 0.0` guarding
a division — keep the comparison and justify it with
NOLINT(unit-float-eq).""",
)
def _float_eq(ctx: FileContext):
    for m in _FLOAT_EQ.finditer(ctx.code):
        # Reject <=, >=, === (none in C++ but cheap to guard), and
        # relational operators picked up by the literal-on-left branch.
        if m.start() > 0 and _CMP_GUARD.match(ctx.code[m.start() - 1]):
            continue
        yield ctx.finding(
            line_of(ctx.code, m.start()), "unit-float-eq",
            "exact floating-point ==/!= against a literal; compare with a "
            "tolerance or justify a sentinel check with "
            "NOLINT(unit-float-eq)")
