"""Heuristic function-body extraction from stripped C++.

cimlint is regex-based, but the counter-charge rule needs *per-function*
granularity: "this function reads storage rows, does it also charge the
counters?". A full parser is out of scope; instead we brace-match on the
stripped text and classify each top-level `{` as a function body when it
is preceded by a parameter list — `) [qualifiers] {`, allowing
const/noexcept/override/final/ref-qualifiers, trailing return types and
constructor initialiser lists (whose last element also ends in `)`).

Control-flow braces (`if (...) {`) never reach the classifier because
they only occur inside an already-open function body, which the scanner
treats as opaque.
"""

from __future__ import annotations

import dataclasses
import re

_QUALIFIERS = {"const", "noexcept", "override", "final", "mutable", "try"}
_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*$")


@dataclasses.dataclass(frozen=True)
class FunctionBlock:
    name: str        # best-effort identifier before the parameter list
    start: int       # offset of the opening brace in the stripped text
    end: int         # offset one past the closing brace
    body: str        # stripped text between the braces


def _token_before(code: str, pos: int) -> tuple[str, int]:
    """(token, start) of the token ending just before offset `pos`."""
    j = pos
    while j > 0 and code[j - 1].isspace():
        j -= 1
    if j == 0:
        return "", 0
    ch = code[j - 1]
    if ch in ")(&":
        # Collapse && to one token.
        if ch == "&" and j >= 2 and code[j - 2] == "&":
            return "&&", j - 2
        return ch, j - 1
    if ch.isalnum() or ch == "_":
        k = j
        while k > 0 and (code[k - 1].isalnum() or code[k - 1] == "_"):
            k -= 1
        return code[k:j], k
    return ch, j - 1


def _match_backwards_paren(code: str, close: int) -> int:
    """Offset of the '(' matching the ')' at `close`, or -1."""
    depth = 0
    for j in range(close, -1, -1):
        if code[j] == ")":
            depth += 1
        elif code[j] == "(":
            depth -= 1
            if depth == 0:
                return j
    return -1


def _opens_function_body(code: str, brace: int) -> tuple[bool, str]:
    """Classifies the `{` at offset `brace`; returns (is_function, name)."""
    pos = brace
    # Walk back over trailing qualifiers and an optional trailing return
    # type (`) -> std::uint64_t {`), looking for the parameter list's `)`.
    for _ in range(16):
        token, start = _token_before(code, pos)
        if token == ")":
            open_paren = _match_backwards_paren(code, start)
            if open_paren < 0:
                return False, ""
            name, _ = _token_before(code, open_paren)
            if not _IDENT.match(name):
                # Operator overloads: `operator+=(...)`, `operator==(...)`.
                if re.search(r"\boperator\b[^();{}]{0,12}$",
                             code[max(0, open_paren - 24):open_paren]):
                    return True, "operator"
                return False, ""
            return True, name
        if token in _QUALIFIERS or token in {"&", "&&"}:
            pos = start
            continue
        if _IDENT.match(token) or token in {">", ":", ","}:
            # Possibly inside a trailing return type or ctor initialiser
            # (`: base_(x), member_(y) {`); keep walking a little.
            pos = start
            continue
        return False, ""
    return False, ""


def function_blocks(code: str) -> list[FunctionBlock]:
    """All outermost function bodies in stripped text, in file order."""
    blocks: list[FunctionBlock] = []
    depth = 0
    body_depth: int | None = None
    body_start = 0
    body_name = ""
    i, n = 0, len(code)
    while i < n:
        ch = code[i]
        if ch == "{":
            if body_depth is None:
                is_fn, name = _opens_function_body(code, i)
                if is_fn:
                    body_depth = depth
                    body_start = i
                    body_name = name
            depth += 1
        elif ch == "}":
            depth -= 1
            if body_depth is not None and depth == body_depth:
                blocks.append(FunctionBlock(
                    name=body_name, start=body_start, end=i + 1,
                    body=code[body_start + 1:i]))
                body_depth = None
        i += 1
    return blocks
