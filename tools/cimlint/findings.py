"""Finding: one rule violation at one source location."""

from __future__ import annotations

import dataclasses
import hashlib


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str
    snippet: str = ""  # raw source line, for baseline fingerprints

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def fingerprint(self) -> str:
        """Stable identity for the baseline: rule + path + the content of
        the offending line (whitespace-insensitive), *not* the line
        number, so unrelated edits above a grandfathered finding do not
        invalidate the baseline entry."""
        normalized = "".join(self.snippet.split())
        digest = hashlib.sha256(
            f"{self.rule}|{self.path}|{normalized}".encode()
        ).hexdigest()
        return digest[:16]
