"""Finding: one rule violation at one source location."""

from __future__ import annotations

import dataclasses

from . import contenthash


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str
    snippet: str = ""  # raw source line, for baseline fingerprints

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def fingerprint(self) -> str:
        """Stable identity for the baseline: rule + path + the content of
        the offending line (whitespace-insensitive), *not* the line
        number, so unrelated edits above a grandfathered finding do not
        invalidate the baseline entry. Shared with merge_sarif's dedup
        via cimlint.contenthash — the two must stay byte-identical."""
        return contenthash.finding_fingerprint(self.rule, self.path,
                                               self.snippet)
