"""SIMD containment.

Raw vector intrinsics live in exactly one file: src/util/simd.hpp, the
dispatch layer that pairs every accelerated body with the portable
fallback the determinism oracle is checked against. An intrinsic at any
other site forks the kernel surface: it compiles only on one ISA, it
dodges the CIMANNEAL_PORTABLE_SIMD escape hatch the no-AVX2 CI leg
builds with, and its results are never covered by the bit-identity
sweep that pins the vector path to the scalar oracle.
"""

from __future__ import annotations

import re
from pathlib import PurePosixPath

from .rules import FileContext, rule
from .tokenizer import line_of

# The dispatch layer itself — the only legitimate home for intrinsics.
SIMD_ALLOWFILE = PurePosixPath("src/util/simd.hpp")

# x86: _mm_/_mm256_/_mm512_ calls, vector register types, gcc builtins.
# ARM: NEON register types and the v<op>q_<lane> call family.
_INTRINSIC = re.compile(
    r"\b_mm\d*_[a-z0-9_]+\b"
    r"|\b__m(?:64|128|256|512)[a-z]*\b"
    r"|\b__builtin_ia32_[a-z0-9_]+\b"
    r"|\b(?:u?int|float|poly)(?:8|16|32|64)x\d+(?:x\d+)?_t\b"
    r"|\bv[a-z][a-z0-9_]*q_(?:[usfp](?:8|16|32|64))\b")

# Vendor intrinsic headers (strings kept: read from ctx.directives).
_INTRIN_INCLUDE = re.compile(
    r"#\s*include\s*[<\"]"
    r"(?:immintrin|x86intrin|[exptsnwa]mmintrin|avx\w*intrin|popcntintrin|"
    r"arm_neon|arm_sve)\.h[>\"]")


@rule(
    "simd-intrinsics-confined",
    "raw SIMD intrinsic outside src/util/simd.hpp; use the util::simd "
    "wrappers",
    """src/util/simd.hpp is the single dispatch point for vectorized
kernels: every accelerated body there is paired with a portable fallback,
selected at runtime behind cpu-feature checks, overridable with
CIMANNEAL_PORTABLE_SIMD / CIMANNEAL_DISABLE_SIMD, and pinned bit-for-bit
to the scalar determinism oracle by the storage and annealer test sweeps.

An intrinsic (or a vendor intrinsic header) anywhere else escapes all of
that: the no-AVX2 CI leg can't build it out, the portable-mode escape
hatch doesn't reach it, and nothing asserts its results match the scalar
path. Call the util::simd entry points (and_popcount, mac_bitplanes,
mac_bitplanes_batch, plane_popcounts, ...) instead; if a kernel needs a
new primitive, add it to simd.hpp with a portable twin and dispatch.""",
)
def _simd_intrinsics_confined(ctx: FileContext):
    if PurePosixPath(ctx.rel) == SIMD_ALLOWFILE:
        return
    msg = ("raw SIMD intrinsic outside src/util/simd.hpp; use the "
           "util::simd wrappers")
    for m in _INTRIN_INCLUDE.finditer(ctx.directives):
        yield ctx.finding(line_of(ctx.directives, m.start()),
                          "simd-intrinsics-confined", msg)
    for m in _INTRINSIC.finditer(ctx.code):
        yield ctx.finding(line_of(ctx.code, m.start()),
                          "simd-intrinsics-confined", msg)
