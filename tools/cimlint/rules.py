"""Rule model and registry.

A rule is a named check over one file. Rules declare themselves with the
@rule decorator; the registry drives them, applies the shared NOLINT
suppression, and feeds `--explain` / `--list-rules` / the SARIF rule
metadata from the same declaration — one source of truth per rule.

Project rules are the cross-TU counterpart: they see the whole-program
`ProjectIndex` (tools/cimlint/index.py) instead of one file, declare
themselves with @project_rule, and share everything else — NOLINT
suppression at the finding site, baseline fingerprints, --explain text,
SARIF metadata. The two registries use one namespace so a NOLINT
(det-taint) audits identically to a NOLINT(raw-thread).
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path, PurePosixPath
from typing import TYPE_CHECKING, Callable, Iterable

from . import stats
from .findings import Finding
from .nolint import NolintIndex

if TYPE_CHECKING:
    from .index import ProjectIndex

HEADER_EXTS = {".hpp", ".h", ".hh"}
SOURCE_EXTS = {".cpp", ".cc", ".cxx"} | HEADER_EXTS


@dataclasses.dataclass
class FileContext:
    """Everything a rule may look at for one file."""

    root: Path
    rel: PurePosixPath        # repo-relative posix path
    raw: str                  # file contents as read
    code: str                 # comments/strings blanked (tokenizer)
    directives: str           # comments blanked, strings kept — for rules
                              # that read literal contents (#include paths)
    raw_lines: list[str]      # raw.splitlines()
    config: "LintConfig"

    @property
    def is_header(self) -> bool:
        return PurePosixPath(self.rel).suffix in HEADER_EXTS

    def top_dir(self) -> str:
        return self.rel.parts[0] if self.rel.parts else ""

    def module(self) -> str | None:
        """'cim' for src/cim/..., None outside src/."""
        parts = self.rel.parts
        if len(parts) >= 3 and parts[0] == "src":
            return parts[1]
        return None

    def finding(self, line: int, rule: str, message: str) -> Finding:
        snippet = self.raw_lines[line - 1] if 0 < line <= len(self.raw_lines) else ""
        return Finding(path=str(self.rel), line=line, rule=rule,
                       message=message, snippet=snippet)


@dataclasses.dataclass
class LintConfig:
    """Tree-level configuration shared by the rules."""

    layers: dict[str, list[str]] = dataclasses.field(default_factory=dict)
    top_layers: list[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass(frozen=True)
class Rule:
    name: str
    summary: str           # one line, shown in findings and --list-rules
    explanation: str       # multi-paragraph --explain text
    check: Callable[[FileContext], Iterable[Finding]]
    suppressible: bool = True


@dataclasses.dataclass(frozen=True)
class ProjectRule:
    """A whole-program rule: checked once per tree over the cross-TU
    index, not once per file."""

    name: str
    summary: str
    explanation: str
    check: Callable[["ProjectIndex", "LintConfig"], Iterable[Finding]]
    suppressible: bool = True


_REGISTRY: dict[str, Rule] = {}
_PROJECT_REGISTRY: dict[str, ProjectRule] = {}


def rule(name: str, summary: str, explanation: str, suppressible: bool = True):
    """Decorator registering a per-file rule's check function."""

    def wrap(fn: Callable[[FileContext], Iterable[Finding]]):
        if name in _REGISTRY or name in _PROJECT_REGISTRY:
            raise ValueError(f"duplicate rule name: {name}")
        _REGISTRY[name] = Rule(name=name, summary=summary,
                               explanation=explanation, check=fn,
                               suppressible=suppressible)
        return fn

    return wrap


def project_rule(name: str, summary: str, explanation: str,
                 suppressible: bool = True):
    """Decorator registering a whole-program rule's check function."""

    def wrap(fn: Callable[["ProjectIndex", "LintConfig"], Iterable[Finding]]):
        if name in _REGISTRY or name in _PROJECT_REGISTRY:
            raise ValueError(f"duplicate rule name: {name}")
        _PROJECT_REGISTRY[name] = ProjectRule(
            name=name, summary=summary, explanation=explanation, check=fn,
            suppressible=suppressible)
        return fn

    return wrap


def all_rules() -> dict[str, Rule]:
    _load_rule_packs()
    return dict(_REGISTRY)


def all_project_rules() -> dict[str, ProjectRule]:
    _load_rule_packs()
    return dict(_PROJECT_REGISTRY)


def known_rule_names() -> set[str]:
    """Every rule name a NOLINT may legitimately reference."""
    return set(all_rules()) | set(all_project_rules())


def _load_rule_packs() -> None:
    # Importing the packs registers their rules (idempotent).
    from . import (  # noqa: F401  (import side effects)
        rules_anneal, rules_cim, rules_determinism, rules_header,
        rules_layering, rules_lockorder, rules_locks, rules_ranges,
        rules_rng, rules_seedflow, rules_simd, rules_store,
        rules_telemetry, rules_thread, rules_units,
    )


@rule(
    "nolint-unknown-rule",
    "NOLINT marker is bare or names a rule that does not exist",
    """A NOLINT with a typo in the rule name suppresses nothing — the
finding it meant to silence still fires, or worse, the author believes a
risky site is vouched for when it is not. Every NOLINT marker must name
at least one real cimlint rule (see --list-rules); clang-tidy-namespaced
names (bugprone-*, performance-*, ...) belong to clang-tidy and are left
alone. Bare `NOLINT` without a rule list is rejected for the same reason:
it documents nothing and would blanket-suppress rules the author never
reviewed.

This audit is not itself suppressible.""",
    suppressible=False,
)
def _nolint_audit(_ctx: FileContext):
    # Findings are produced by NolintIndex.audit() in scan_file(); the
    # registration here gives the rule a name, --explain text and SARIF
    # metadata like any other.
    return ()


def scan_file(ctx: FileContext) -> list[Finding]:
    """Runs every registered rule on one file, honouring NOLINT."""
    rules = all_rules()
    nolint = NolintIndex(ctx.raw)
    findings: list[Finding] = []
    for r in rules.values():
        t0 = time.perf_counter()
        produced = list(r.check(ctx))
        kept = [f for f in produced
                if not (r.suppressible and nolint.suppresses(r.name, f.line))]
        stats.GLOBAL.add_rule(r.name, time.perf_counter() - t0, len(kept))
        findings.extend(kept)
    # The audit rule: malformed / unknown NOLINT markers. Not itself
    # suppressible — a NOLINT cannot vouch for another NOLINT. Project
    # rule names are valid targets too (their suppressions live in the
    # same files).
    findings.extend(nolint.audit(str(ctx.rel), known_rule_names(),
                                 ctx.raw_lines))
    findings.sort()
    return findings
