"""Per-function control-flow graphs over stripped C++ bodies.

The PR-6 index reasons about *reachability* (which functions a root can
call); the dataflow clients (lock order, index ranges, seed provenance)
reason about *state along paths*, which needs statement-level control
flow. This module parses one function body — the same brace-matched,
comment-stripped text `functions.py` extracts — into a small statement
AST and lowers it to a basic-block CFG:

  * statements split at top-level `;` (brace-init and lambda bodies are
    swallowed into their statement, so `pool.run(n, [&]{...});` is one
    opaque statement — its *calls* are still visible to the index);
  * `if`/`else`, `for` (incl. range-for), `while`, `do`, `switch` and
    `try` produce branch/join/back edges; `return`/`break`/`continue`
    produce early exits;
  * RAII lock scopes: a `std::lock_guard` / `unique_lock` /
    `scoped_lock` / `shared_lock` declaration is an *acquire* attached
    to its statement, and every edge that leaves the guard's lexical
    scope — fall-through, back edge, break/continue, return — carries
    the matching *releases*, so a lock-set analysis never leaks a lock
    across an iteration boundary (the thread-pool worker loop re-enters
    `pop_task` only after its sleep lock dies with the iteration).

Everything stays heuristic and over-approximate in the DESIGN.md §13
tradition: no types, no templates, no goto. A construct the parser does
not model (a `goto`, a statement-expression) degrades to an opaque
statement, never to a crash — clients see TOP, not garbage.

Offsets are absolute within the stripped file text, so `line_of` keeps
working and findings point at real lines.
"""

from __future__ import annotations

import dataclasses
import re

from .tokenizer import line_of

# --------------------------------------------------------------- guards

#: Scoped-guard declaration at statement granularity. `std::scoped_lock
#: l(a, b);` acquires both; tag arguments (std::defer_lock & friends)
#: are not mutexes.
_GUARD_RE = re.compile(
    r"^(?:const\s+)?(?:std\s*::\s*)?"
    r"(lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"\s*(?:<[^;()]*>)?\s*([A-Za-z_]\w*)\s*[({](.*)[)}]\s*$",
    re.DOTALL)

_LOCK_TAGS = {"defer_lock", "try_to_lock", "adopt_lock"}

_LAST_IDENT = re.compile(r"([A-Za-z_]\w*)\s*$")


@dataclasses.dataclass(frozen=True)
class GuardDecl:
    kind: str                 # lock_guard / unique_lock / ...
    var: str                  # guard variable name
    mutexes: tuple[str, ...]  # last identifier of each mutex expression


def _split_args(text: str) -> list[str]:
    """Top-level comma split (parens/braces/brackets/angles are opaque)."""
    out: list[str] = []
    depth = 0
    start = 0
    for i, ch in enumerate(text):
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth -= 1
        elif ch == "," and depth == 0:
            out.append(text[start:i])
            start = i + 1
    out.append(text[start:])
    return [a.strip() for a in out if a.strip()]


def parse_guard(stmt_text: str) -> GuardDecl | None:
    """GuardDecl when `stmt_text` declares a scoped lock, else None."""
    m = _GUARD_RE.match(" ".join(stmt_text.split()))
    if m is None:
        return None
    mutexes: list[str] = []
    for arg in _split_args(m.group(3)):
        last = _LAST_IDENT.search(arg.rstrip(")").rstrip())
        if last is None or last.group(1) in _LOCK_TAGS:
            continue
        mutexes.append(last.group(1))
    if not mutexes:
        return None
    return GuardDecl(kind=m.group(1), var=m.group(2), mutexes=tuple(mutexes))


# ------------------------------------------------------------- statement AST


@dataclasses.dataclass
class Simple:
    text: str
    line: int


@dataclasses.dataclass
class Return:
    text: str
    line: int


@dataclasses.dataclass
class BreakStmt:
    line: int


@dataclasses.dataclass
class ContinueStmt:
    line: int


@dataclasses.dataclass
class If:
    cond: str
    line: int
    then: list
    els: list | None


@dataclasses.dataclass
class Loop:
    kind: str          # "for" | "while" | "dowhile"
    init: Simple | None
    cond: str | None   # None: range-for / infinite
    line: int
    step: str | None
    body: list


@dataclasses.dataclass
class Switch:
    cond: str
    line: int
    body: list


@dataclasses.dataclass
class Try:
    body: list
    handlers: list[list]


@dataclasses.dataclass
class BlockNode:
    body: list


_WORD = re.compile(r"[A-Za-z_]\w*")


class _Parser:
    """Recursive-descent statement parser over code[start:end]."""

    def __init__(self, code: str):
        self.code = code

    def parse(self, start: int, end: int) -> list:
        nodes, _ = self._sequence(start, end)
        return nodes

    # -- lexing helpers

    def _skip_ws(self, i: int, end: int) -> int:
        while i < end and self.code[i].isspace():
            i += 1
        return i

    def _match_paren(self, i: int, end: int) -> int:
        """code[i] == '(' → offset one past the matching ')'."""
        depth = 0
        while i < end:
            ch = self.code[i]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return end

    def _match_brace(self, i: int, end: int) -> int:
        """code[i] == '{' → offset one past the matching '}'."""
        depth = 0
        while i < end:
            ch = self.code[i]
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return end

    def _statement_end(self, i: int, end: int) -> int:
        """Offset one past the `;` ending the plain statement at i.

        Parens, brackets and braces (brace-init, lambda bodies) are
        opaque: a `;` inside them does not end the statement.
        """
        depth = 0
        while i < end:
            ch = self.code[i]
            if ch in "([{":
                depth += 1
            elif ch in ")]}":
                depth -= 1
            elif ch == ";" and depth <= 0:
                return i + 1
            i += 1
        return end

    # -- grammar

    def _sequence(self, i: int, end: int) -> tuple[list, int]:
        nodes: list = []
        while True:
            i = self._skip_ws(i, end)
            if i >= end:
                return nodes, i
            node, i = self._statement(i, end)
            if node is not None:
                nodes.append(node)

    def _statement(self, i: int, end: int):
        code = self.code
        ch = code[i]
        if ch == ";":
            return None, i + 1
        if ch == "{":
            close = self._match_brace(i, end)
            return BlockNode(self.parse(i + 1, close - 1)), close
        if ch == "#":  # stray preprocessor line inside a body: skip it
            nl = code.find("\n", i)
            return None, (end if nl == -1 or nl >= end else nl + 1)
        m = _WORD.match(code, i)
        word = m.group(0) if m else ""
        line = line_of(code, i)
        if word == "if":
            return self._if(i, end)
        if word in ("for", "while"):
            return self._loop(word, i, end)
        if word == "do":
            return self._dowhile(i, end)
        if word == "switch":
            return self._switch(i, end)
        if word == "try":
            return self._try(i, end)
        if word == "return":
            stop = self._statement_end(i, end)
            return Return(code[i:stop].strip(), line), stop
        if word in ("break", "continue"):
            stop = self._statement_end(i, end)
            node = BreakStmt(line) if word == "break" else ContinueStmt(line)
            return node, stop
        if word in ("case", "default"):
            # Labels: consume through the ':' (':' only — '::' is a
            # qualifier) and fall through to the labelled statement.
            j = i + len(word)
            while j < end:
                if code[j] == ":" and code[j + 1:j + 2] != ":" \
                        and code[j - 1:j] != ":":
                    return None, j + 1
                if code[j] == ";":  # malformed: bail to plain statement
                    break
                j += 1
            stop = self._statement_end(i, end)
            return Simple(code[i:stop].strip(), line), stop
        stop = self._statement_end(i, end)
        text = code[i:stop].strip().rstrip(";").strip()
        if not text:
            return None, stop
        return Simple(text, line), stop

    def _body_or_stmt(self, i: int, end: int) -> tuple[list, int]:
        i = self._skip_ws(i, end)
        if i < end and self.code[i] == "{":
            close = self._match_brace(i, end)
            return self.parse(i + 1, close - 1), close
        node, i = self._statement(i, end)
        return ([node] if node is not None else []), i

    def _if(self, i: int, end: int):
        code = self.code
        line = line_of(code, i)
        open_paren = code.find("(", i, end)
        if open_paren < 0:
            stop = self._statement_end(i, end)
            return Simple(code[i:stop].strip(), line), stop
        close = self._match_paren(open_paren, end)
        cond = " ".join(code[open_paren + 1:close - 1].split())
        then, i = self._body_or_stmt(close, end)
        j = self._skip_ws(i, end)
        els = None
        m = _WORD.match(code, j)
        if m and m.group(0) == "else":
            els, i = self._body_or_stmt(j + 4, end)
        return If(cond, line, then, els), i

    def _loop(self, kind: str, i: int, end: int):
        code = self.code
        line = line_of(code, i)
        open_paren = code.find("(", i, end)
        if open_paren < 0:
            stop = self._statement_end(i, end)
            return Simple(code[i:stop].strip(), line), stop
        close = self._match_paren(open_paren, end)
        header = code[open_paren + 1:close - 1]
        init: Simple | None = None
        cond: str | None
        step: str | None = None
        if kind == "for":
            parts = self._split_header(header)
            if parts is None:  # range-for: opaque init, unknown trip count
                init = Simple(" ".join(header.split()), line)
                cond = None
            else:
                init_text, cond_text, step_text = parts
                if init_text.strip():
                    init = Simple(" ".join(init_text.split()), line)
                cond = " ".join(cond_text.split()) or None
                step = " ".join(step_text.split()) or None
        else:
            cond = " ".join(header.split()) or None
            if cond == "true":
                cond = None
        body, i = self._body_or_stmt(close, end)
        return Loop(kind, init, cond, line, step, body), i

    def _split_header(self, header: str) -> tuple[str, str, str] | None:
        """init/cond/step of a classic for header; None for range-for."""
        parts: list[str] = []
        depth = 0
        start = 0
        for i, ch in enumerate(header):
            if ch in "([{":
                depth += 1
            elif ch in ")]}":
                depth -= 1
            elif ch == ";" and depth == 0:
                parts.append(header[start:i])
                start = i + 1
        if len(parts) != 2:
            return None
        return parts[0], parts[1], header[start:]

    def _dowhile(self, i: int, end: int):
        code = self.code
        line = line_of(code, i)
        body, i = self._body_or_stmt(i + 2, end)
        i = self._skip_ws(i, end)
        cond = None
        m = _WORD.match(code, i)
        if m and m.group(0) == "while":
            open_paren = code.find("(", i, end)
            if open_paren >= 0:
                close = self._match_paren(open_paren, end)
                cond = " ".join(code[open_paren + 1:close - 1].split())
                i = self._statement_end(close, end)
        return Loop("dowhile", None, cond or None, line, None, body), i

    def _switch(self, i: int, end: int):
        code = self.code
        line = line_of(code, i)
        open_paren = code.find("(", i, end)
        close = self._match_paren(open_paren, end) if open_paren >= 0 else i
        cond = " ".join(code[open_paren + 1:close - 1].split()) \
            if open_paren >= 0 else ""
        body, i = self._body_or_stmt(close, end)
        return Switch(cond, line, body), i

    def _try(self, i: int, end: int):
        code = self.code
        body, i = self._body_or_stmt(i + 3, end)
        handlers: list[list] = []
        while True:
            j = self._skip_ws(i, end)
            m = _WORD.match(code, j)
            if not (m and m.group(0) == "catch"):
                break
            open_paren = code.find("(", j, end)
            if open_paren < 0:
                break
            close = self._match_paren(open_paren, end)
            handler, i = self._body_or_stmt(close, end)
            handlers.append(handler)
        return Try(body, handlers), i


# ------------------------------------------------------------------ CFG


@dataclasses.dataclass
class Stmt:
    text: str
    line: int
    guard: GuardDecl | None = None


@dataclasses.dataclass
class Edge:
    src: int
    dst: int
    cond: str | None = None       # branch condition text, if any
    cond_value: bool | None = None  # sense of this edge w.r.t. cond
    origin: str = "fall"          # "if" | "loop" | "switch" | "fall" | ...
    releases: tuple[str, ...] = ()  # guard mutexes dying on this edge
    line: int = 0                 # source line of the condition, if any


@dataclasses.dataclass
class Block:
    id: int
    stmts: list[Stmt] = dataclasses.field(default_factory=list)


class Cfg:
    """Basic blocks + edges for one function body."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.edges: list[Edge] = []
        self.entry: int = 0
        self.exit: int = 0
        self.loop_heads: set[int] = set()

    def new_block(self) -> Block:
        block = Block(id=len(self.blocks))
        self.blocks.append(block)
        return block

    def add_edge(self, src: int, dst: int, **kw) -> None:
        self.edges.append(Edge(src=src, dst=dst, **kw))

    def out_edges(self, block_id: int) -> list[Edge]:
        return [e for e in self.edges if e.src == block_id]

    def rpo(self) -> list[int]:
        """Reverse post-order block ids from the entry (deterministic)."""
        succs: dict[int, list[int]] = {b.id: [] for b in self.blocks}
        for e in self.edges:
            succs[e.src].append(e.dst)
        seen: set[int] = set()
        order: list[int] = []

        def visit(b: int) -> None:
            stack = [(b, iter(sorted(succs[b])))]
            seen.add(b)
            while stack:
                node, it = stack[-1]
                for nxt in it:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, iter(sorted(succs[nxt]))))
                        break
                else:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order

    def all_stmts(self) -> list[Stmt]:
        out: list[Stmt] = []
        for block in self.blocks:
            out.extend(block.stmts)
        return out


@dataclasses.dataclass
class _LoopCtx:
    head: int            # continue target
    after: int           # break target
    scope_depth: int     # scope-stack depth at loop entry


class _Lowerer:
    """AST → CFG, threading lexical guard scopes through the edges."""

    def __init__(self) -> None:
        self.cfg = Cfg()
        self.scopes: list[list[str]] = []   # mutexes per open scope
        self.loops: list[_LoopCtx] = []

    def lower(self, nodes: list) -> Cfg:
        entry = self.cfg.new_block()
        exit_block = self.cfg.new_block()
        self.cfg.entry = entry.id
        self.cfg.exit = exit_block.id
        self.exit_id = exit_block.id
        cur = self._scope_seq(nodes, entry.id)
        if cur is not None:
            self.cfg.add_edge(cur, exit_block.id)
        return self.cfg

    # -- scope helpers

    def _releases_from(self, depth: int) -> tuple[str, ...]:
        """Mutexes of every scope at index >= depth (being exited)."""
        out: list[str] = []
        for scope in self.scopes[depth:]:
            out.extend(scope)
        return tuple(out)

    def _scope_seq(self, nodes: list, cur: int) -> int | None:
        """Lowers `nodes` inside a fresh lexical scope; returns the live
        block after it (None when every path terminated). The scope's
        guards are released on the edge out."""
        self.scopes.append([])
        cur2 = self._seq(nodes, cur)
        scope = self.scopes.pop()
        if cur2 is None:
            return None
        if scope:
            nxt = self.cfg.new_block()
            self.cfg.add_edge(cur2, nxt.id, releases=tuple(scope))
            return nxt.id
        return cur2

    def _seq(self, nodes: list, cur: int | None) -> int | None:
        for node in nodes:
            if cur is None:
                # Unreachable trailing code (after return/break): skip.
                return None
            cur = self._node(node, cur)
        return cur

    # -- node lowering

    def _node(self, node, cur: int) -> int | None:
        cfg = self.cfg
        if isinstance(node, Simple):
            guard = parse_guard(node.text)
            cfg.blocks[cur].stmts.append(
                Stmt(text=node.text, line=node.line, guard=guard))
            if guard:
                self.scopes[-1].extend(guard.mutexes)
            return cur
        if isinstance(node, Return):
            cfg.blocks[cur].stmts.append(Stmt(text=node.text, line=node.line))
            cfg.add_edge(cur, self.exit_id, origin="return",
                         releases=self._releases_from(0))
            return None
        if isinstance(node, BreakStmt):
            if self.loops:
                ctx = self.loops[-1]
                cfg.add_edge(cur, ctx.after, origin="break",
                             releases=self._releases_from(ctx.scope_depth))
            return None
        if isinstance(node, ContinueStmt):
            if self.loops:
                ctx = self.loops[-1]
                cfg.add_edge(cur, ctx.head, origin="continue",
                             releases=self._releases_from(ctx.scope_depth))
            return None
        if isinstance(node, BlockNode):
            return self._scope_seq(node.body, cur)
        if isinstance(node, If):
            return self._if(node, cur)
        if isinstance(node, Loop):
            return self._loop(node, cur)
        if isinstance(node, Switch):
            return self._switch(node, cur)
        if isinstance(node, Try):
            return self._try(node, cur)
        return cur

    def _if(self, node: If, cur: int) -> int | None:
        cfg = self.cfg
        then_blk = cfg.new_block()
        join = cfg.new_block()
        cfg.add_edge(cur, then_blk.id, cond=node.cond, cond_value=True,
                     origin="if", line=node.line)
        then_end = self._scope_seq(node.then, then_blk.id)
        if then_end is not None:
            cfg.add_edge(then_end, join.id)
        if node.els is None:
            cfg.add_edge(cur, join.id, cond=node.cond, cond_value=False,
                         origin="if", line=node.line)
        else:
            else_blk = cfg.new_block()
            cfg.add_edge(cur, else_blk.id, cond=node.cond, cond_value=False,
                         origin="if", line=node.line)
            else_end = self._scope_seq(node.els, else_blk.id)
            if else_end is not None:
                cfg.add_edge(else_end, join.id)
        return join.id

    def _loop(self, node: Loop, cur: int) -> int | None:
        cfg = self.cfg
        if node.init is not None:
            cur2 = self._node(node.init, cur)
            assert cur2 is not None
            cur = cur2
        head = cfg.new_block()
        after = cfg.new_block()
        cfg.loop_heads.add(head.id)
        body_blk = cfg.new_block()
        if node.kind == "dowhile":
            # Body runs first; the head is the condition point.
            cfg.add_edge(cur, body_blk.id)
        else:
            cfg.add_edge(cur, head.id)
            cfg.add_edge(head.id, body_blk.id, cond=node.cond,
                         cond_value=True, origin="loop", line=node.line)
        cfg.add_edge(head.id, after.id, cond=node.cond, cond_value=False,
                     origin="loop", line=node.line)
        self.loops.append(_LoopCtx(head=head.id, after=after.id,
                                   scope_depth=len(self.scopes)))
        body_nodes = list(node.body)
        if node.step is not None:
            body_nodes.append(Simple(node.step, node.line))
        body_end = self._scope_seq(body_nodes, body_blk.id)
        self.loops.pop()
        if body_end is not None:
            if node.kind == "dowhile":
                cfg.add_edge(body_end, head.id)
                cfg.add_edge(head.id, body_blk.id, cond=node.cond,
                             cond_value=True, origin="loop")
            else:
                cfg.add_edge(body_end, head.id, origin="back")
        elif node.kind == "dowhile":
            # Terminated body: head is unreachable, after still joins via
            # break edges (if any).
            pass
        return after.id

    def _switch(self, node: Switch, cur: int) -> int | None:
        cfg = self.cfg
        body_blk = cfg.new_block()
        join = cfg.new_block()
        # Over-approximation: the body may run (entered at the top) or be
        # skipped entirely (no matching case); `break` targets the join.
        cfg.add_edge(cur, body_blk.id, cond=node.cond, cond_value=None,
                     origin="switch")
        cfg.add_edge(cur, join.id, cond=node.cond, cond_value=None,
                     origin="switch")
        self.loops.append(_LoopCtx(head=join.id, after=join.id,
                                   scope_depth=len(self.scopes)))
        body_end = self._scope_seq(node.body, body_blk.id)
        self.loops.pop()
        if body_end is not None:
            cfg.add_edge(body_end, join.id)
        return join.id

    def _try(self, node: Try, cur: int) -> int | None:
        cfg = self.cfg
        join = cfg.new_block()
        body_end = self._scope_seq(node.body, cur)
        if body_end is not None:
            cfg.add_edge(body_end, join.id)
        for handler in node.handlers:
            h_blk = cfg.new_block()
            # A handler can be entered from anywhere in the body; the
            # pre-try block is the sound (if coarse) source.
            cfg.add_edge(cur, h_blk.id, origin="catch")
            h_end = self._scope_seq(handler, h_blk.id)
            if h_end is not None:
                cfg.add_edge(h_end, join.id)
        return join.id


def build_cfg(code: str, start: int, end: int) -> Cfg:
    """CFG of the function body occupying code[start:end] (the text
    between the braces, offsets absolute in the stripped file)."""
    nodes = _Parser(code).parse(start, end)
    return _Lowerer().lower(nodes)
