"""Value-range analysis: storage indices vs extents, dead range checks.

The >256-row faithfulness bug (PR 2) was an index aliasing a window
extent; strong RowIndex/ColIndex types stop *unit* confusion but not
*magnitude* bugs — a `<=` where a `<` was meant still walks one column
past the end. This pack runs an interval dataflow over each function's
CFG (widening at loop heads, branch-condition refinement on the edges)
and checks it against storage extents discovered in the same file:

  * `index-range-overflow` — a mac/mac_sparse/mac_packed/weight call
    whose index argument's derived range provably escapes [0, extent).
    Only *proven* violations fire: a TOP range (runtime-sized storage,
    unanalyzable arithmetic) is silent, so the real tree stays quiet
    and every finding is actionable.
  * `index-check-dead` — an `if` range check that the intervals decide
    at compile time (always true / always false). A dead guard is
    either a vestigial double check or — worse — a bounds check written
    after the access it was meant to protect; either way the control
    flow is not doing what it reads as doing. Loop conditions are
    exempt (they are *supposed* to go false eventually), as are
    degenerate single-value ranges (constant folding is not a bug).

Extents come from direct `FooStorage s(R, C, ...)` declarations and
`make_*storage(R, C, ...)` factory assignments with literal dimensions
in the analyzed function's file. `s.rows()` / `s.cols()` evaluate to
those extents, so `for (i = 0; i <= s.cols(); ++i)` is caught as the
off-by-one it is.
"""

from __future__ import annotations

import math
import re
from typing import Iterable

from .cfg import Cfg, Edge, Stmt, _split_args, build_cfg
from .dataflow import branch_edges, solve, stmt_states
from .findings import Finding
from .flowfacts import _find_assignment
from .functions import function_blocks
from .rules import FileContext, rule

INF = math.inf

Range = tuple[float, float]
State = dict[str, Range]

# ------------------------------------------------------------- extents

_STORAGE_DECL_RE = re.compile(
    r"\b[A-Za-z_]\w*Storage\s+([A-Za-z_]\w*)\s*[({]")
_FACTORY_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*=\s*(?:[\w:]+\s*::\s*)?"
    r"(make_\w*storage\w*)\s*\(")
_INT_RE = re.compile(r"\d+")


def _literal(text: str) -> int | None:
    text = text.strip()
    return int(text) if _INT_RE.fullmatch(text) else None


def _balanced_inner(text: str, open_at: int) -> str:
    close = {"(": ")", "{": "}"}[text[open_at]]
    depth = 0
    for j in range(open_at, len(text)):
        if text[j] == text[open_at]:
            depth += 1
        elif text[j] == close:
            depth -= 1
            if depth == 0:
                return text[open_at + 1:j]
    return text[open_at + 1:]


def _extents(code: str) -> dict[str, tuple[int, int]]:
    """storage variable -> (rows, cols), for declarations/factory calls
    with literal dimensions. Conflicting re-declarations drop the var."""
    out: dict[str, tuple[int, int]] = {}
    dropped: set[str] = set()

    def record(var: str, args: list[str]) -> None:
        if len(args) < 2:
            return
        rows, cols = _literal(args[0]), _literal(args[1])
        if rows is None or cols is None:
            return
        if var in dropped:
            return
        if var in out and out[var] != (rows, cols):
            del out[var]
            dropped.add(var)
            return
        out[var] = (rows, cols)

    for m in _STORAGE_DECL_RE.finditer(code):
        record(m.group(1), _split_args(
            _balanced_inner(code, m.end() - 1)))
    for m in _FACTORY_RE.finditer(code):
        record(m.group(1), _split_args(
            _balanced_inner(code, m.end() - 1)))
    return out


# ------------------------------------------------------ interval client

_INCDEC_RE = re.compile(
    r"^(?:(\+\+|--)\s*([A-Za-z_]\w*)|([A-Za-z_]\w*)\s*(\+\+|--))$")
_INDEX_CTOR_RE = re.compile(
    r"^(?:[\w:]+\s*::\s*)?(?:RowIndex|ColIndex)\s+([A-Za-z_]\w*)"
    r"\s*[({](.*)[)}]$", re.DOTALL)
_CAST_RE = re.compile(r"^static_cast\s*<[^()]*>\s*\((.*)\)$", re.DOTALL)
_INDEX_WRAP_RE = re.compile(
    r"^(?:[\w:]+\s*::\s*)?(?:RowIndex|ColIndex)\s*[({](.*)[)}]$",
    re.DOTALL)
_DIM_CALL_RE = re.compile(
    r"^([A-Za-z_]\w*)\s*(?:\.|->)\s*(rows|cols)\s*\(\s*\)$")
_VALUE_CALL_RE = re.compile(
    r"^([A-Za-z_]\w*)\s*(?:\.|->)\s*value\s*\(\s*\)$")
_IDENT_PATH_RE = re.compile(
    r"^[A-Za-z_]\w*(?:\s*(?:::|\.|->)\s*[A-Za-z_]\w*)*$")
_LAST_IDENT_RE = re.compile(r"([A-Za-z_]\w*)\s*$")


def _strip_parens(expr: str) -> str:
    expr = expr.strip()
    while expr.startswith("(") and expr.endswith(")"):
        depth = 0
        for i, ch in enumerate(expr):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0 and i != len(expr) - 1:
                    return expr
        expr = expr[1:-1].strip()
    return expr


def _split_additive(expr: str) -> list[tuple[str, str]]:
    """[(sign, operand)] at top level for + and - (unary folded in)."""
    parts: list[tuple[str, str]] = []
    depth = 0
    start = 0
    sign = "+"
    i = 0
    while i < len(expr):
        ch = expr[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif depth == 0 and ch in "+-" and not expr.startswith("->", i):
            if expr[:i].strip():
                parts.append((sign, expr[start:i].strip()))
                sign = ch
                start = i + 1
        i += 1
    parts.append((sign, expr[start:].strip()))
    return [p for p in parts if p[1]]


class _IntervalClient:
    """Intervals over integer-ish locals; missing key == TOP."""

    def __init__(self, extents: dict[str, tuple[int, int]]):
        self.extents = extents
        # id -> (stmts, assigned vars). The list itself is kept in the
        # value so its id cannot be recycled for a different loop's list
        # after garbage collection — the client outlives many solve()
        # calls (one per function in the file).
        self._loop_vars: dict[int, tuple[object, set[str]]] = {}

    def entry_state(self) -> State:
        return {}

    def join(self, a: State, b: State) -> State:
        out: State = {}
        for k in a.keys() & b.keys():
            out[k] = (min(a[k][0], b[k][0]), max(a[k][1], b[k][1]))
        return out

    def widen(self, old: State, new: State,
              loop_stmts: "list[Stmt] | None" = None) -> State:
        # Only variables the loop itself assigns can diverge through its
        # back edge; everything else (an outer counter, a loop-invariant
        # bound) is converging and keeps the plain join — widening it
        # here would stick at ±inf, out of narrowing's reach.
        unstable = self._assigned_in(loop_stmts)
        out: State = {}
        for k in old.keys() & new.keys():
            lo, hi = min(old[k][0], new[k][0]), max(old[k][1], new[k][1])
            if unstable is None or k in unstable:
                lo = old[k][0] if new[k][0] >= old[k][0] else -INF
                hi = old[k][1] if new[k][1] <= old[k][1] else INF
            out[k] = (lo, hi)
        return out

    def _assigned_in(self, loop_stmts: "list[Stmt] | None"
                     ) -> set[str] | None:
        if loop_stmts is None:
            return None
        key = id(loop_stmts)
        cached = self._loop_vars.get(key)
        if cached is not None and cached[0] is loop_stmts:
            return cached[1]
        assigned: set[str] = set()
        for stmt in loop_stmts:
            text = " ".join(stmt.text.split())
            m = _INCDEC_RE.match(text)
            if m:
                assigned.add(m.group(2) or m.group(3))
                continue
            m = _INDEX_CTOR_RE.match(text)
            if m:
                assigned.add(m.group(1))
                continue
            found = _find_assignment(text)
            if found is None:
                continue
            eq, compound = found
            lhs = text[:eq - 1] if compound else text[:eq]
            last = _LAST_IDENT_RE.search(lhs)
            if last is not None:
                assigned.add(last.group(1))
        self._loop_vars[key] = (loop_stmts, assigned)
        return assigned

    # -- expression evaluation

    def eval(self, expr: str, state: State) -> Range | None:
        expr = _strip_parens(" ".join(expr.split()))
        if not expr:
            return None
        if _INT_RE.fullmatch(expr):
            n = int(expr)
            return (n, n)
        for pat in (_CAST_RE, _INDEX_WRAP_RE):
            m = pat.match(expr)
            if m:
                return self.eval(m.group(1), state)
        m = _DIM_CALL_RE.match(expr)
        if m and m.group(1) in self.extents:
            dims = self.extents[m.group(1)]
            n = dims[0] if m.group(2) == "rows" else dims[1]
            return (n, n)
        m = _VALUE_CALL_RE.match(expr)
        if m:
            return state.get(m.group(1))
        if _IDENT_PATH_RE.match(expr):
            last = re.split(r"::|\.|->", expr)[-1].strip()
            return state.get(last)
        parts = _split_additive(expr)
        if len(parts) > 1:
            lo, hi = 0.0, 0.0
            for sign, operand in parts:
                r = self.eval(operand, state)
                if r is None:
                    return None
                if sign == "+":
                    lo, hi = lo + r[0], hi + r[1]
                else:
                    lo, hi = lo - r[1], hi - r[0]
            return (lo, hi)
        return None

    # -- transfer / refine

    def transfer(self, state: State, stmt: Stmt) -> State:
        text = " ".join(stmt.text.split())
        m = _INCDEC_RE.match(text)
        if m:
            var = m.group(2) or m.group(3)
            op = m.group(1) or m.group(4)
            if var in state:
                lo, hi = state[var]
                delta = 1 if op == "++" else -1
                state = dict(state)
                state[var] = (lo + delta, hi + delta)
            return state
        m = _INDEX_CTOR_RE.match(text)
        if m:
            r = self.eval(m.group(2), state)
            state = dict(state)
            if r is None:
                state.pop(m.group(1), None)
            else:
                state[m.group(1)] = r
            return state
        found = _find_assignment(text)
        if found is None:
            return state
        eq, compound = found
        lhs = text[:eq - 1] if compound else text[:eq]
        last = _LAST_IDENT_RE.search(lhs)
        if last is None:
            return state
        var = last.group(1)
        rhs = text[eq + 1:].strip().rstrip(";")
        state = dict(state)
        if compound:
            op = text[eq - 1]
            cur = state.get(var)
            delta = self.eval(rhs, state)
            if cur is None or delta is None or op not in "+-":
                state.pop(var, None)
            elif op == "+":
                state[var] = (cur[0] + delta[0], cur[1] + delta[1])
            else:
                state[var] = (cur[0] - delta[1], cur[1] - delta[0])
            return state
        r = self.eval(rhs, state)
        if r is None:
            state.pop(var, None)
        else:
            state[var] = r
        return state

    def refine(self, state: State, edge: Edge) -> State:
        if edge.cond is None or edge.cond_value is None:
            return state
        cond = edge.cond
        if edge.cond_value:
            if "||" in cond:
                return state
            conjuncts = cond.split("&&")
            negate = False
        else:
            if "&&" in cond:
                return state
            conjuncts = cond.split("||")
            negate = True
        for part in conjuncts:
            state = self._refine_cmp(state, part.strip(), negate)
        return state

    _CMP_RE = re.compile(r"^(.*?)(<=|>=|==|!=|<|>)(.*)$", re.DOTALL)
    _NEGATE = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
               "==": "!=", "!=": "=="}

    def _var_of(self, expr: str) -> str | None:
        expr = _strip_parens(expr)
        m = _VALUE_CALL_RE.match(expr)
        if m:
            return m.group(1)
        if _IDENT_PATH_RE.match(expr):
            return re.split(r"::|\.|->", expr)[-1].strip()
        return None

    def _refine_cmp(self, state: State, cmp_text: str, negate: bool
                    ) -> State:
        m = self._CMP_RE.match(cmp_text)
        if m is None:
            return state
        lhs, op, rhs = m.group(1).strip(), m.group(2), m.group(3).strip()
        if "<" in lhs or ">" in lhs:  # avoid shift/template misparse
            return state
        if negate:
            op = self._NEGATE[op]
        var = self._var_of(lhs)
        other = rhs
        if var is None:
            var = self._var_of(rhs)
            other = lhs
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                  "==": "==", "!=": "!="}[op]
        if var is None:
            return state
        bound = self.eval(other, state)
        if bound is None or op == "!=":
            return state
        lo, hi = state.get(var, (-INF, INF))
        if op == "<":
            hi = min(hi, bound[1] - 1)
        elif op == "<=":
            hi = min(hi, bound[1])
        elif op == ">":
            lo = max(lo, bound[0] + 1)
        elif op == ">=":
            lo = max(lo, bound[0])
        elif op == "==":
            lo, hi = max(lo, bound[0]), min(hi, bound[1])
        if lo > hi:
            return state  # infeasible edge; keep the old state
        state = dict(state)
        state[var] = (lo, hi)
        return state


# ------------------------------------------------------------- findings

_ACCESS_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*"
    r"(mac|mac_sparse|mac_packed|weight)\s*\(")

#: method -> list of (argument position, extent axis).
_CHECKED_ARGS = {
    "mac": [(0, "col")],
    "mac_sparse": [(0, "col")],
    "mac_packed": [(0, "col")],
    "weight": [(0, "row"), (1, "col")],
}


def _fmt(x: float) -> str:
    if x == INF:
        return "+inf"
    if x == -INF:
        return "-inf"
    return str(int(x))


def _analyze(ctx: FileContext) -> tuple[list[Finding], list[Finding]]:
    cached = getattr(ctx, "_range_cache", None)
    if cached is not None:
        return cached
    overflow: list[Finding] = []
    dead: list[Finding] = []
    extents = _extents(ctx.code)
    client = _IntervalClient(extents)
    for block in function_blocks(ctx.code):
        try:
            cfg: Cfg = build_cfg(ctx.code, block.start + 1, block.end - 1)
            ins, outs = solve(cfg, client)
        except (RecursionError, IndexError, ValueError):
            continue
        if extents:
            _check_overflow(ctx, client, cfg, ins, extents, overflow)
        _check_dead(ctx, client, cfg, outs, dead)
    result = (overflow, dead)
    ctx._range_cache = result  # one interval pass feeds both rules
    return result


def _check_overflow(ctx: FileContext, client: _IntervalClient, cfg: Cfg,
                    ins: dict, extents: dict[str, tuple[int, int]],
                    out: list[Finding]) -> None:
    seen: set[tuple[int, str]] = set()
    for stmt, state in stmt_states(cfg, client, ins):
        text = " ".join(stmt.text.split())
        for m in _ACCESS_RE.finditer(text):
            receiver, method = m.group(1), m.group(2)
            if receiver not in extents:
                continue
            open_at = text.find("(", m.end() - 1)
            args = _split_args(_balanced_inner(text, open_at))
            rows, cols = extents[receiver]
            for arg_pos, axis in _CHECKED_ARGS[method]:
                if arg_pos >= len(args):
                    continue
                r = client.eval(args[arg_pos], state)
                if r is None:
                    continue
                extent = rows if axis == "row" else cols
                # An infinite bound is lost precision, not a proven
                # violation — only finite escapes are reported.
                if ((math.isfinite(r[1]) and r[1] >= extent)
                        or (math.isfinite(r[0]) and r[0] < 0)):
                    mark = (stmt.line, f"{receiver}.{method}#{arg_pos}")
                    if mark in seen:
                        continue
                    seen.add(mark)
                    out.append(ctx.finding(
                        stmt.line, "index-range-overflow",
                        f"{method}() {axis} index range "
                        f"[{_fmt(r[0])}, {_fmt(r[1])}] can escape "
                        f"'{receiver}' {axis} extent {extent} "
                        f"(valid [0, {extent - 1}])"))


def _check_dead(ctx: FileContext, client: _IntervalClient, cfg: Cfg,
                outs: dict, out: list[Finding]) -> None:
    seen: set[tuple[int, str]] = set()
    for edge, state in branch_edges(cfg, outs):
        if edge.origin != "if" or not edge.cond_value:
            continue
        cond = edge.cond or ""
        if "&&" in cond or "||" in cond:
            continue
        m = _IntervalClient._CMP_RE.match(cond)
        if m is None:
            continue
        lhs, op, rhs = m.group(1).strip(), m.group(2), m.group(3).strip()
        if "<" in lhs or ">" in lhs:
            continue
        var = client._var_of(lhs)
        a = client.eval(lhs, state)
        b = client.eval(rhs, state)
        if var is None or a is None or b is None:
            continue
        if a[0] == a[1]:
            continue  # degenerate: constant folding, not a range bug
        verdict = _decide(a, b, op)
        if verdict is None:
            continue
        mark = (edge.line, cond)
        if mark in seen:
            continue
        seen.add(mark)
        out.append(ctx.finding(
            edge.line, "index-check-dead",
            f"range check '{cond}' is provably always "
            f"{'true' if verdict else 'false'} "
            f"('{var}' in [{_fmt(a[0])}, {_fmt(a[1])}]) — the guard is "
            f"dead"))


def _decide(a: Range, b: Range, op: str) -> bool | None:
    """True/False when the comparison is decided by the intervals."""
    if op == "<":
        if a[1] < b[0]:
            return True
        if a[0] >= b[1]:
            return False
    elif op == "<=":
        if a[1] <= b[0]:
            return True
        if a[0] > b[1]:
            return False
    elif op == ">":
        if a[0] > b[1]:
            return True
        if a[1] <= b[0]:
            return False
    elif op == ">=":
        if a[0] >= b[1]:
            return True
        if a[1] < b[0]:
            return False
    elif op == "==":
        if a[1] < b[0] or a[0] > b[1]:
            return False
    elif op == "!=":
        if a[1] < b[0] or a[0] > b[1]:
            return True
    return None


@rule(
    "index-range-overflow",
    "derived index range provably escapes the storage extent at a "
    "mac/weight call site",
    """Runs an interval dataflow over each function's CFG — constants,
copies, ±const arithmetic, RowIndex/ColIndex construction, widening at
loop heads, branch-condition refinement on the edges — and checks the
derived range of every index argument at mac(), mac_sparse(),
mac_packed() and weight() call sites against the receiving storage's
extents (taken from same-file declarations or make_*storage factory
calls with literal dimensions; s.rows()/s.cols() evaluate to them).

The classic instance is the off-by-one loop `for (i = 0; i <= s.cols();
++i) s.mac(ColIndex(i), ...)`: refinement of the loop condition leaves
`i` in [0, cols] on the body edge, and cols is one past the last valid
column. That walk past the extent is exactly the window/row aliasing
shape behind the >256-row faithfulness bug (PR 2) — the storage mock
may tolerate it; the hardware window does not.

Only proven violations fire: a range the analysis cannot bound (TOP) is
silent, so runtime-sized storages and complex arithmetic never produce
noise. If the access is intentionally out of the declared window (a
deliberate halo read), widen the declared extent or carry a
NOLINT(index-range-overflow) with a justification.""",
)
def _index_range_overflow(ctx: FileContext) -> Iterable[Finding]:
    return _analyze(ctx)[0]


@rule(
    "index-check-dead",
    "an if-guard range check is provably always true or always false",
    """Uses the same interval dataflow as index-range-overflow to decide
`if` conditions that compare a tracked variable against a bound. When
the variable's derived range makes the comparison constant — always
true or always false — the guard is dead: either a vestigial double
check (the loop bound already enforces it), or a bounds check placed
where it can no longer protect anything (e.g. after the loop that
needed it, or testing `i < cols` when the enclosing loop already
guarantees it). Dead guards misdocument the control flow and hide the
one case where the check was actually needed.

Loop conditions are exempt — they are supposed to become false — and so
are degenerate single-value ranges (deciding `if (kEnabled)` is
constant folding, not a range bug). Delete the dead guard, or fix the
range it was meant to check; suppress a deliberate defensive check with
NOLINT(index-check-dead) and a justification.""",
)
def _index_check_dead(ctx: FileContext) -> Iterable[Finding]:
    return _analyze(ctx)[1]
