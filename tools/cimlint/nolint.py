"""Shared NOLINT(<rule>) suppression.

Every rule accepts a `NOLINT(rule)` (or `NOLINT(rule-a, rule-b)`) marker
in a comment on the finding's line or up to three lines above it — the
PR-2 convention that only `anneal-dense-rebuild` used to honour. Markers
are looked up in the *raw* text because they live in comments, which the
stripped text blanks.

Strictness rules:

  * the rule name must be spelled exactly — `NOLINT(<typo>)` silently
    disabling nothing is itself reported as `nolint-unknown-rule`;
  * a bare `NOLINT` without a rule list is also reported — blanket
    suppression would hide future rules the author never saw.
"""

from __future__ import annotations

import re
from typing import Iterable

from .findings import Finding

# How many lines above the finding a marker may sit (plus the line itself).
CONTEXT_LINES = 3

_MARKER = re.compile(r"\bNOLINT\b(?:\(([^)\n]*)\))?")

# clang-tidy owns its own NOLINT namespace; names under these category
# prefixes are its business, not ours, and pass the audit untouched.
_CLANG_TIDY_PREFIXES = (
    "bugprone-", "cert-", "clang-analyzer-", "clang-diagnostic-",
    "concurrency-", "cppcoreguidelines-", "google-", "hicpp-", "llvm-",
    "misc-", "modernize-", "performance-", "portability-", "readability-",
)


def _is_clang_tidy_name(name: str) -> bool:
    return name.startswith(_CLANG_TIDY_PREFIXES)


class NolintIndex:
    """Parsed NOLINT markers of one file, by line."""

    def __init__(self, raw_text: str):
        self._rules_by_line: dict[int, set[str]] = {}
        self.markers: list[tuple[int, str | None]] = []  # (line, rule list)
        for lineno, line in enumerate(raw_text.splitlines(), start=1):
            for m in _MARKER.finditer(line):
                body = m.group(1)
                self.markers.append((lineno, body))
                if body is None:
                    continue
                names = {part.strip() for part in body.split(",") if part.strip()}
                self._rules_by_line.setdefault(lineno, set()).update(names)

    def suppresses(self, rule: str, line: int) -> bool:
        for probe in range(max(1, line - CONTEXT_LINES), line + 1):
            if rule in self._rules_by_line.get(probe, ()):
                return True
        return False

    def audit(self, path: str, known_rules: Iterable[str],
              raw_lines: list[str]) -> list[Finding]:
        """Reports malformed markers: unknown rule names and bare NOLINT."""
        known = set(known_rules)
        findings: list[Finding] = []
        for lineno, body in self.markers:
            snippet = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
            if body is None:
                findings.append(Finding(
                    path=path, line=lineno, rule="nolint-unknown-rule",
                    message="bare NOLINT suppresses nothing here; name the "
                            "rule: NOLINT(<rule>)",
                    snippet=snippet))
                continue
            names = [part.strip() for part in body.split(",")]
            for name in names:
                if _is_clang_tidy_name(name):
                    continue
                if not name or name not in known:
                    findings.append(Finding(
                        path=path, line=lineno, rule="nolint-unknown-rule",
                        message=f"NOLINT names unknown rule '{name}'; a typo "
                                "here would silently fail to suppress "
                                "(see --list-rules)",
                        snippet=snippet))
        return findings
