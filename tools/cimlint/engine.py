"""File collection and (optionally parallel) scanning."""

from __future__ import annotations

import concurrent.futures
import os
import tomllib
from pathlib import Path, PurePosixPath

from .findings import Finding
from .rules import LintConfig, FileContext, SOURCE_EXTS, scan_file
from .rules_layering import check_acyclic
from .tokenizer import strip_comments_and_strings

SCAN_DIRS = ("src", "tests", "bench", "examples")

# Directory names skipped everywhere: fixture corpora contain *intentional*
# violations (the lint.selftest asserts their exact counts) and must never
# leak into the production gate.
EXCLUDED_DIR_NAMES = {"lint_fixtures"}

DEFAULT_LAYERS = Path(__file__).parent / "layers.toml"


def load_config(layers_path: Path | None = None) -> LintConfig:
    path = layers_path or DEFAULT_LAYERS
    config = LintConfig()
    if path.is_file():
        data = tomllib.loads(path.read_text(encoding="utf-8"))
        modules = data.get("modules", {})
        config.top_layers = list(modules.pop("top", []))
        config.layers = {name: list(deps) for name, deps in modules.items()}
        check_acyclic(config.layers)
    return config


def collect_files(root: Path, scan_dirs: tuple[str, ...] = SCAN_DIRS
                  ) -> list[Path]:
    files: list[Path] = []
    for top in scan_dirs:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_EXTS or not path.is_file():
                continue
            rel_parts = path.relative_to(root).parts
            if EXCLUDED_DIR_NAMES.intersection(rel_parts):
                continue
            files.append(path)
    return files


def lint_one(root: Path, path: Path, config: LintConfig) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    ctx = FileContext(
        root=root,
        rel=PurePosixPath(*path.relative_to(root).parts),
        raw=raw,
        code=strip_comments_and_strings(raw),
        directives=strip_comments_and_strings(raw, keep_strings=True),
        raw_lines=raw.splitlines(),
        config=config,
    )
    return scan_file(ctx)


def lint_tree(root: Path, config: LintConfig, jobs: int | None = None
              ) -> tuple[list[Finding], int]:
    """Scans the tree; returns (findings sorted by path/line, file count).

    `jobs` > 1 fans files out over processes (regex matching is
    CPU-bound and the files are independent); jobs == 1 or a single-CPU
    host scans serially. Ordering is deterministic either way.
    """
    files = collect_files(root)
    if jobs is None:
        jobs = min(8, os.cpu_count() or 1)
    findings: list[Finding] = []
    if jobs > 1 and len(files) > 16:
        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            for result in pool.map(_lint_one_star,
                                   [(root, f, config) for f in files],
                                   chunksize=8):
                findings.extend(result)
    else:
        for path in files:
            findings.extend(lint_one(root, path, config))
    findings.sort()
    return findings, len(files)


def _lint_one_star(args: tuple[Path, Path, LintConfig]) -> list[Finding]:
    return lint_one(*args)
