"""File collection and (optionally parallel) scanning.

Two stages per run:

  1. per-file rules over each scanned file (optionally fanned out over
     processes — the files are independent);
  2. project rules over the cross-TU index (tools/cimlint/index.py),
     built once for the whole tree and cached on disk.

`--changed-only` narrows stage 1 to the files a git diff touches and
filters stage 2's findings to those files — but the *index* always
covers the full tree, because a call-graph rule on one file is only
sound with every other file's definitions in view.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import subprocess
import time
import tomllib
from pathlib import Path, PurePosixPath

from . import stats
from .findings import Finding
from .index import build_index
from .nolint import NolintIndex
from .rules import (LintConfig, FileContext, SOURCE_EXTS, all_project_rules,
                    scan_file)
from .rules_layering import check_acyclic
from .tokenizer import strip_comments_and_strings

SCAN_DIRS = ("src", "tests", "bench", "examples")

#: Default on-disk location of the cross-TU index cache, relative to the
#: scanned root. Lives under build/ so it is ignored by git and removed
#: by a clean.
INDEX_CACHE_REL = Path("build") / "cimlint" / "index.json"

# Directory names skipped everywhere: fixture corpora contain *intentional*
# violations (the lint.selftest asserts their exact counts) and must never
# leak into the production gate.
EXCLUDED_DIR_NAMES = {"lint_fixtures"}

DEFAULT_LAYERS = Path(__file__).parent / "layers.toml"


def load_config(layers_path: Path | None = None) -> LintConfig:
    path = layers_path or DEFAULT_LAYERS
    config = LintConfig()
    if path.is_file():
        data = tomllib.loads(path.read_text(encoding="utf-8"))
        modules = data.get("modules", {})
        config.top_layers = list(modules.pop("top", []))
        config.layers = {name: list(deps) for name, deps in modules.items()}
        check_acyclic(config.layers)
    return config


def collect_files(root: Path, scan_dirs: tuple[str, ...] = SCAN_DIRS
                  ) -> list[Path]:
    files: list[Path] = []
    for top in scan_dirs:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_EXTS or not path.is_file():
                continue
            rel_parts = path.relative_to(root).parts
            if EXCLUDED_DIR_NAMES.intersection(rel_parts):
                continue
            files.append(path)
    return files


def lint_one(root: Path, path: Path, config: LintConfig) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    ctx = FileContext(
        root=root,
        rel=PurePosixPath(*path.relative_to(root).parts),
        raw=raw,
        code=strip_comments_and_strings(raw),
        directives=strip_comments_and_strings(raw, keep_strings=True),
        raw_lines=raw.splitlines(),
        config=config,
    )
    return scan_file(ctx)


def lint_tree(root: Path, config: LintConfig, jobs: int | None = None,
              changed: set[str] | None = None,
              index_cache: Path | None = None,
              ) -> tuple[list[Finding], int]:
    """Scans the tree; returns (findings sorted by path/line, file count).

    `jobs` > 1 fans files out over processes (regex matching is
    CPU-bound and the files are independent); jobs == 1 or a single-CPU
    host scans serially. Ordering is deterministic either way.

    `changed` (repo-relative posix paths) restricts per-file rules to
    those files and filters project-rule findings to them; the cross-TU
    index is still built over the full tree. `index_cache` is the JSON
    cache path for the index (None disables caching).
    """
    files = collect_files(root)
    scan_files = files
    if changed is not None:
        scan_files = [f for f in files
                      if str(PurePosixPath(*f.relative_to(root).parts))
                      in changed]
    if jobs is None:
        jobs = min(8, os.cpu_count() or 1)
    findings: list[Finding] = []
    with stats.GLOBAL.phase("scan"):
        if jobs > 1 and len(scan_files) > 16:
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=jobs) as pool:
                for result, worker_stats in pool.map(
                        _lint_one_star,
                        [(root, f, config) for f in scan_files],
                        chunksize=8):
                    findings.extend(result)
                    stats.GLOBAL.merge(*worker_stats)
        else:
            for path in scan_files:
                findings.extend(lint_one(root, path, config))

    project = run_project_rules(root, files, config, index_cache)
    if changed is not None:
        project = [f for f in project if f.path in changed]
    findings.extend(project)

    findings.sort()
    return findings, len(scan_files)


def _lint_one_star(args: tuple[Path, Path, LintConfig]
                   ) -> tuple[list[Finding], tuple[dict, dict, dict]]:
    """Worker entry: findings plus this task's stats delta. The snapshot
    is reset per task so a worker reused across map batches never ships
    the same seconds twice."""
    result = lint_one(*args)
    return result, stats.GLOBAL.snapshot_and_reset()


def run_project_rules(root: Path, files: list[Path], config: LintConfig,
                      index_cache: Path | None = None) -> list[Finding]:
    """Builds the cross-TU index and runs every project rule over it.

    NOLINT suppression is applied at the finding's own file/line — a
    project finding is silenced exactly like a per-file one, by a marker
    at the reported site — and snippets are filled from the source so
    baseline fingerprints work unchanged.
    """
    index = build_index(root, files, index_cache)
    raw_cache: dict[str, str] = {}
    nolint_cache: dict[str, NolintIndex] = {}

    def raw_text(rel: str) -> str:
        if rel not in raw_cache:
            try:
                raw_cache[rel] = (root / rel).read_text(
                    encoding="utf-8", errors="replace")
            except OSError:
                raw_cache[rel] = ""
        return raw_cache[rel]

    findings: list[Finding] = []
    with stats.GLOBAL.phase("project"):
        for pr in all_project_rules().values():
            t0 = time.perf_counter()
            kept = 0
            for finding in pr.check(index, config):
                if pr.suppressible:
                    nolint = nolint_cache.get(finding.path)
                    if nolint is None:
                        nolint = NolintIndex(raw_text(finding.path))
                        nolint_cache[finding.path] = nolint
                    if nolint.suppresses(finding.rule, finding.line):
                        continue
                if not finding.snippet:
                    lines = raw_text(finding.path).splitlines()
                    if 0 < finding.line <= len(lines):
                        finding = dataclasses.replace(
                            finding, snippet=lines[finding.line - 1])
                findings.append(finding)
                kept += 1
            stats.GLOBAL.add_rule(pr.name, time.perf_counter() - t0, kept)
    return findings


def changed_files(root: Path, base_ref: str = "HEAD") -> set[str] | None:
    """Repo-relative paths git considers changed: the diff against
    `base_ref` plus untracked (non-ignored) files. Returns None when git
    is unavailable or `root` is not inside a work tree — callers fall
    back to a full scan."""
    changed: set[str] = set()
    # --relative: diff paths come back relative to `root`, not the git
    # toplevel, so they compare directly against finding paths even when
    # root is a subdirectory of the work tree. (ls-files is cwd-relative
    # already.)
    for cmd in (["git", "-C", str(root), "diff", "--name-only", "--relative",
                 base_ref, "--", "."],
                ["git", "-C", str(root), "ls-files", "--others",
                 "--exclude-standard"]):
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=30)
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        changed.update(line.strip() for line in proc.stdout.splitlines()
                       if line.strip())
    return changed
