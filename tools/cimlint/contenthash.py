"""Canonical content-hash helpers shared across the Python tooling.

Content identity in this repo is SHA-256 everywhere: the C++ side keys
warm-start records on util::sha256 / tsp::instance_fingerprint
("sha256:<hex>"), and the Python tooling keys the cimlint index cache,
baseline fingerprints and SARIF dedup identities on the same digest.
This module is the single Python home of those conventions so the three
call sites (index cache, Finding.fingerprint, merge_sarif dedup) cannot
drift apart — in particular, baseline fingerprints and merge_sarif
fingerprints MUST stay byte-identical, or cross-run dedup silently
breaks.
"""

from __future__ import annotations

import hashlib

#: Tag prefix of a self-describing content hash, matching the C++ side's
#: util::sha256_tagged ("sha256:<hex>").
SCHEME = "sha256:"


def content_hash(data: bytes) -> str:
    """Full lowercase hex SHA-256 of raw bytes (index-cache keys)."""
    return hashlib.sha256(data).hexdigest()


def tagged(data: bytes) -> str:
    """Self-describing "sha256:<hex>" form of content_hash()."""
    return SCHEME + content_hash(data)


def finding_fingerprint(rule: str, path: str, snippet: str) -> str:
    """Stable 16-hex identity of one finding: rule + path + the
    whitespace-insensitive content of the flagged line — never the line
    number, so unrelated edits above the site keep the identity. Used by
    the cimlint baseline and by merge_sarif's cross-run dedup; both MUST
    agree, which is why this is the only implementation."""
    normalized = "".join(snippet.split())
    digest = hashlib.sha256(f"{rule}|{path}|{normalized}".encode()).hexdigest()
    return digest[:16]
