"""Counter-charge enforcement for the CIM hardware model.

The PPA tables are only as honest as the hardware counters: every energy
and latency number is derived from StorageCounters / AdderTree counters,
so a function that models a hardware access without charging a counter
silently cheapens the chip (DESIGN.md §9, "Same counters"). This rule
mechanizes the invariant: any function under src/cim/ whose body reads
weight cells or drives the adder tree must also touch a hardware counter,
or carry NOLINT(cim-counter-charge) with a justification.
"""

from __future__ import annotations

import re

from .functions import function_blocks
from .rules import FileContext, rule
from .tokenizer import line_of

# Hardware accesses that must be charged: weight-cell reads/writes via the
# backend arrays, and adder-tree drives from outside the tree.
_ACCESS = re.compile(
    r"\bstored_\s*\[|\bcurrent_\s*\[|\.\s*shift_and_add(?:_sparse)?\s*\(|"
    r"\btree_\s*\.\s*reduce\s*\(")

# Touching any hardware counter counts as charging: the storage counter
# struct (counters_) or the adder tree's own tallies.
_CHARGE = re.compile(r"\bcounters_\b|\badder_ops_\b|\breductions_\b")


@rule(
    "cim-counter-charge",
    "function models a hardware access without charging the counters",
    """StorageCounters model hardware row *reads*, not simulator work: a
MAC pseudo-reads every cell of the addressed column on real silicon, so
the counters must advance identically on every code path that models an
array access — dense or sparse, fast or bit-level backend — or the PPA
energy/latency tables drift away from the hardware they claim to
describe (the PR-2 counter-equivalence invariant, DESIGN.md §9).

The rule flags any function under src/cim/ whose body reads weight cells
(stored_[...] / current_[...]) or drives the adder tree
(.shift_and_add(...) / tree_.reduce(...)) without touching a hardware
counter (counters_, adder_ops_, reductions_).

Genuine non-hardware accesses — debug accessors, golden-image installs,
manufacturing-fault application — carry NOLINT(cim-counter-charge) with
a one-line justification of why no hardware event occurs.""",
)
def _counter_charge(ctx: FileContext):
    if ctx.module() != "cim":
        return
    for block in function_blocks(ctx.code):
        access = _ACCESS.search(block.body)
        if access is None:
            continue
        if _CHARGE.search(block.body):
            continue
        # Report at the function's opening line so the NOLINT lives next
        # to the signature, where reviewers read justifications.
        yield ctx.finding(
            line_of(ctx.code, block.start),
            "cim-counter-charge",
            f"'{block.name}' (first uncharged access at line "
            f"{line_of(ctx.code, block.start + 1 + access.start())}) reads "
            "storage rows or drives the adder tree but never touches a "
            "hardware counter; charge StorageCounters / the tree tallies, "
            "or justify with NOLINT(cim-counter-charge)")
