"""C++ comment/string stripping for pattern-based rules.

The rules match regexes against *code*, so comments and literals must be
blanked first (prose that mentions a banned construct is fine). The
stripper preserves newlines and column positions: every blanked character
becomes a space, so line/column arithmetic on the stripped text maps
directly back to the raw file.

Two constructs the PR-1 stripper mishandled are covered with regression
cases (tests/lint_selftest.py::TokenizerUnit and
tests/lint_fixtures/repo/src/util/tokenizer_cases.cpp):

  * C++14 digit separators — `1'000'000` must not open a char literal
    (the old stripper blanked everything to the next apostrophe, hiding
    real code from the rules);
  * raw string literals — `R"delim( ... )delim"` has no escape
    processing and may span lines; the old stripper treated the `"` as a
    regular string opener and desynchronised on the first inner quote.
"""

from __future__ import annotations

import re

# A digit separator is an apostrophe *between* alphanumeric characters
# (C++14 allows hex digits and exponents around it: 0xBEEF'CAFE, 1'000.0).
_DIGIT_SEP_BEFORE = re.compile(r"[0-9a-zA-Z]$")

# Raw string opener: an R immediately followed by `"`, optionally prefixed
# by an encoding prefix (u8R, uR, UR, LR). The char before the prefix must
# not be an identifier character (`FooR"(x)"` is a macro call, not raw).
_RAW_OPENER = re.compile(r'(?:u8|[uUL])?R"([^ ()\\\t\v\f\n]{0,16})\(')


def _is_digit_separator(text: str, i: int) -> bool:
    """True when text[i] == "'" acts as a C++14 digit separator."""
    if i == 0 or i + 1 >= len(text):
        return False
    prev = text[i - 1]
    nxt = text[i + 1]
    # Separators sit between digits/hex-digits; `'` after a digit and
    # before an alphanumeric covers 1'000, 0xFF'FF and 1'0e3.
    return (prev.isdigit() or (prev in "abcdefABCDEF" and _looks_numeric(text, i))) and (
        nxt.isdigit() or nxt in "abcdefABCDEF"
    )


def _looks_numeric(text: str, i: int) -> bool:
    """Walks left from a hex-ish letter to check we are inside a number."""
    j = i - 1
    while j >= 0 and (text[j].isalnum() or text[j] in "'."):
        j -= 1
    return j >= 0 and j + 1 < len(text) and text[j + 1].isdigit()


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blanks comments, string and char literals, preserving newlines.

    Handles //, /* */, "..." with escapes, '...' with escapes, C++14
    digit separators (not literal openers) and raw strings R"d(...)d".

    `keep_strings=True` blanks comments but keeps ordinary quoted
    literals — for rules that must read literal contents, like layer-dag
    reading #include "module/file.hpp" paths (a commented-out include
    must still not count). Raw strings are blanked even then: an include
    path is never a raw string, and a multi-line R"(...)" can contain
    lines that *look* like directives.
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            end = text.find("\n", i)
            i = n if end == -1 else end
        elif ch == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            stop = n if end == -1 else end + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:stop]))
            i = stop
        elif ch in "RuUL" and (m := _RAW_OPENER.match(text, i)) and not (
            i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_")
        ):
            # Raw string literal: no escapes; ends at )delim" only.
            # Always blanked (even under keep_strings): raw contents can
            # span lines and masquerade as preprocessor directives.
            closer = ")" + m.group(1) + '"'
            end = text.find(closer, m.end())
            stop = n if end == -1 else end + len(closer)
            out.append("".join(c if c == "\n" else " "
                               for c in text[i:stop]))
            i = stop
        elif ch == "'" and _is_digit_separator(text, i):
            # C++14 digit separator (1'000'000) — part of a number, not a
            # char literal opener. Keep it so the number stays one token.
            out.append(ch)
            i += 1
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\n" and quote == "'":
                    break  # unterminated char literal: stop at line end
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            if keep_strings:
                out.append(text[i:j])
            else:
                out.append("".join(c if c == "\n" else " "
                                   for c in text[i:j]))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    """1-based line number of byte offset `pos` in `text`."""
    return text.count("\n", 0, pos) + 1
