"""Finding renderers: plain text, JSON, and SARIF 2.1.0.

SARIF is the interchange format CI dashboards and code-review tools
ingest (github code scanning, VS Code SARIF viewer). We emit the minimal
valid subset: tool metadata with per-rule descriptions, and one result
per finding with a physical location. Baselined findings are emitted
with `"baselineState": "unchanged"` so viewers can fold them away.
"""

from __future__ import annotations

import json
from typing import Mapping

from . import __version__
from .findings import Finding

_INFO_URI = "https://github.com/cimanneal/cimanneal/blob/main/tools/cimlint"


def render_text(new: list[Finding], baselined: list[Finding],
                scanned: int, verbose_baseline: bool = False) -> str:
    lines = [f.render() for f in new]
    if verbose_baseline:
        lines.extend(f"{f.render()} (baselined)" for f in baselined)
    suffix = f", {len(baselined)} baselined" if baselined else ""
    lines.append(
        f"cimlint: scanned {scanned} files, {len(new)} finding(s){suffix}")
    return "\n".join(lines)


def render_json(new: list[Finding], baselined: list[Finding],
                scanned: int) -> str:
    def encode(f: Finding, is_baselined: bool) -> dict:
        return {
            "path": f.path,
            "line": f.line,
            "rule": f.rule,
            "message": f.message,
            "fingerprint": f.fingerprint(),
            "baselined": is_baselined,
        }

    payload = {
        "tool": "cimlint",
        "version": __version__,
        "scanned_files": scanned,
        "findings": [encode(f, False) for f in new]
        + [encode(f, True) for f in baselined],
    }
    return json.dumps(payload, indent=2) + "\n"


def render_sarif(new: list[Finding], baselined: list[Finding],
                 rule_meta: Mapping[str, tuple[str, str]]) -> str:
    """SARIF 2.1.0. `rule_meta` maps rule id -> (summary, explanation)."""

    def result(f: Finding, baseline_state: str | None) -> dict:
        r: dict = {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": f.line},
                },
            }],
            "partialFingerprints": {"cimlint/v1": f.fingerprint()},
        }
        if baseline_state is not None:
            r["baselineState"] = baseline_state
        return r

    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": summary},
            "fullDescription": {"text": explanation},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, (summary, explanation) in sorted(rule_meta.items())
    ]
    sarif = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "cimlint",
                    "version": __version__,
                    "informationUri": _INFO_URI,
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"description": {
                    "text": "cimanneal repository root"}},
            },
            "results": [result(f, None) for f in new]
            + [result(f, "unchanged") for f in baselined],
        }],
    }
    return json.dumps(sarif, indent=2) + "\n"
