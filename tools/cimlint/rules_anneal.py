"""Anneal hot-path rules (ported from the PR-2 lint)."""

from __future__ import annotations

import re

from .rules import FileContext, rule
from .tokenizer import line_of

# Full-vector input rebuilds (`input.assign(shape.rows(), 0)` and friends)
# in the annealer: the swap hot path iterates only the p + 2 set rows, so
# a dense rebuild there is an O(rows) regression hiding in plain sight.
_DENSE_REBUILD = re.compile(r"\.assign\s*\(\s*[\w.\->]*\brows\s*\(\)\s*,")


@rule(
    "anneal-dense-rebuild",
    "dense input rebuild in the anneal hot path; use the incremental "
    "sparse row list",
    """The 4-MAC swap evaluation is the hot path of every solve and its
input vector carries exactly p + 2 set bits. PR 2 made the kernel sparse
and incremental (persistent per-slot active-row lists, O(1) updates on
accept/revert); a dense `x.assign(rows(), 0)`-style rebuild inside
src/anneal/ reintroduces an O(rows) scan per swap — a quiet order-of-
magnitude regression at scale (DESIGN.md §9).

Intentional sites (the dense ablation kernel, one-time construction)
carry NOLINT(anneal-dense-rebuild) with a justification comment.""",
)
def _dense_rebuild(ctx: FileContext):
    if ctx.module() != "anneal":
        return
    for m in _DENSE_REBUILD.finditer(ctx.code):
        yield ctx.finding(
            line_of(ctx.code, m.start()), "anneal-dense-rebuild",
            "dense input rebuild in the anneal hot path; use the "
            "incremental sparse row list or suppress with "
            "NOLINT(anneal-dense-rebuild)")
