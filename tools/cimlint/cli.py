"""Command-line front end (invoked through tools/lint.py).

Exit status: 0 clean (all findings baselined or none), 1 non-baselined
findings, 2 usage / configuration error — so the ctest entries and
scripts/ci.sh can consume it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
import time
from pathlib import Path

from . import (__version__, baseline as baseline_mod, engine, output,
               rulesdoc, stats)
from .rules import all_project_rules, all_rules


def _merged_rules() -> dict:
    """Per-file and project rules, one namespace (they share it)."""
    merged: dict = dict(all_rules())
    merged.update(all_project_rules())
    return merged


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tools/lint.py",
        description="cimanneal project lint: determinism, header hygiene, "
                    "layering DAG, CIM counter charging, unit safety.",
        epilog="Use --list-rules for the rule inventory and "
               "--explain <rule> for the reasoning behind any rule.")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent.parent,
                        help="repository root (default: repo containing "
                             "tools/)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="stdout format (default: text)")
    parser.add_argument("--output", type=Path, metavar="FILE",
                        help="also write the chosen format to FILE")
    parser.add_argument("--sarif", type=Path, metavar="FILE",
                        help="additionally write SARIF 2.1.0 to FILE "
                             "(independent of --format)")
    parser.add_argument("--baseline", type=Path,
                        default=baseline_mod.DEFAULT_BASELINE,
                        help="baseline file (default: "
                             "tools/cimlint/baseline.txt)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: report every finding")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to grandfather every "
                             "current finding, then exit 0")
    parser.add_argument("--show-baselined", action="store_true",
                        help="also print baselined findings (text format)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel scan processes (default: min(8, "
                             "cpu count); 1 disables)")
    parser.add_argument("--changed-only", action="store_true",
                        help="lint only files changed vs --base-ref (plus "
                             "untracked); falls back to a full scan when "
                             "git is unavailable")
    parser.add_argument("--base-ref", default="HEAD", metavar="REF",
                        help="git ref --changed-only diffs against "
                             "(default: HEAD)")
    parser.add_argument("--index-cache", type=Path, metavar="FILE",
                        help="cross-TU index cache location (default: "
                             "<root>/build/cimlint/index.json)")
    parser.add_argument("--no-index-cache", action="store_true",
                        help="rebuild the cross-TU index from scratch and "
                             "do not write a cache")
    parser.add_argument("--stats", type=Path, metavar="FILE",
                        help="write per-rule and per-phase wall-time JSON "
                             "to FILE after the scan")
    parser.add_argument("--write-rules-md", action="store_true",
                        help="regenerate tools/cimlint/RULES.md from the "
                             "rule registry and exit")
    parser.add_argument("--check-rules-md", action="store_true",
                        help="exit 2 if tools/cimlint/RULES.md is stale "
                             "vs the rule registry")
    parser.add_argument("--list-rules", action="store_true",
                        help="list every registered rule and exit")
    parser.add_argument("--explain", metavar="RULE",
                        help="print the full rationale for RULE and exit")
    parser.add_argument("--version", action="version",
                        version=f"cimlint {__version__}")
    return parser


def _explain(rule_name: str) -> int:
    rules = _merged_rules()
    if rule_name not in rules:
        print(f"cimlint: unknown rule '{rule_name}'. Known rules:",
              file=sys.stderr)
        for name in sorted(rules):
            print(f"  {name}", file=sys.stderr)
        return 2
    rule = rules[rule_name]
    print(f"{rule.name} — {rule.summary}\n")
    print(textwrap.dedent(rule.explanation).strip())
    if not rule.suppressible:
        print("\nThis rule cannot be suppressed with NOLINT.")
    else:
        print(f"\nSuppress an intentional site with a "
              f"`NOLINT({rule.name})` comment on the line or up to "
              "3 lines above it, plus a short justification.")
    return 0


def _list_rules() -> int:
    for name, rule in sorted(_merged_rules().items()):
        print(f"{name:22s} {rule.summary}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        return _list_rules()
    if args.explain:
        return _explain(args.explain)
    if args.write_rules_md:
        rulesdoc.write()
        print(f"cimlint: wrote {rulesdoc.DEFAULT_PATH}")
        return 0
    if args.check_rules_md:
        if rulesdoc.check():
            return 0
        print("cimlint: tools/cimlint/RULES.md is stale — regenerate with "
              "tools/lint.py --write-rules-md", file=sys.stderr)
        return 2

    root = args.root.resolve()
    try:
        config = engine.load_config()
    except ValueError as err:
        print(f"cimlint: error: {err}", file=sys.stderr)
        return 2

    changed: set[str] | None = None
    if args.changed_only:
        changed = engine.changed_files(root, args.base_ref)
        if changed is None:
            print("cimlint: note: git unavailable or not a work tree; "
                  "--changed-only falling back to a full scan",
                  file=sys.stderr)

    index_cache: Path | None = None
    if not args.no_index_cache:
        index_cache = (args.index_cache if args.index_cache is not None
                       else root / engine.INDEX_CACHE_REL)

    t_start = time.perf_counter()
    findings, scanned = engine.lint_tree(root, config, jobs=args.jobs,
                                         changed=changed,
                                         index_cache=index_cache)
    if args.stats:
        args.stats.parent.mkdir(parents=True, exist_ok=True)
        args.stats.write_text(json.dumps(stats.GLOBAL.to_json(
            scanned, time.perf_counter() - t_start), indent=2) + "\n",
            encoding="utf-8")
    if scanned == 0 and changed is None:
        # A misconfigured --root must not silently pass the gate. (With
        # --changed-only an empty change set is a legitimate clean run.)
        print(f"cimlint: error: no C++ sources found under {root} "
              f"(looked in {', '.join(engine.SCAN_DIRS)})", file=sys.stderr)
        return 2

    if args.update_baseline:
        args.baseline.write_text(baseline_mod.render(findings),
                                 encoding="utf-8")
        print(f"cimlint: baselined {len(findings)} finding(s) into "
              f"{args.baseline}")
        return 0

    fingerprints = set() if args.no_baseline else baseline_mod.load(
        args.baseline)
    new, baselined = baseline_mod.split(findings, fingerprints)

    rule_meta = {name: (r.summary, r.explanation)
                 for name, r in _merged_rules().items()}
    renders = {
        "text": lambda: output.render_text(new, baselined, scanned,
                                           args.show_baselined),
        "json": lambda: output.render_json(new, baselined, scanned),
        "sarif": lambda: output.render_sarif(new, baselined, rule_meta),
    }
    rendered = renders[args.format]()
    print(rendered, end="" if rendered.endswith("\n") else "\n")
    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(rendered, encoding="utf-8")
    if args.sarif:
        args.sarif.parent.mkdir(parents=True, exist_ok=True)
        args.sarif.write_text(output.render_sarif(new, baselined, rule_meta),
                              encoding="utf-8")
    return 1 if new else 0
