"""cimlint — project-specific static analysis for the cimanneal tree.

Grown from the single-file determinism lint of PR 1 into a small framework:

  * tokenizer.py  — comment/string stripping that understands C++14 digit
                    separators and raw string literals
  * rules.py      — Rule dataclass, the registry, and the per-file scan
  * rules_*.py    — the rule packs (RNG discipline, header hygiene, anneal
                    hot path, layering DAG, CIM counter charging, unit
                    hygiene)
  * nolint.py     — NOLINT(<rule>) suppression shared by every rule
  * baseline.py   — checked-in grandfather list for intentional findings
  * output.py     — text / JSON / SARIF 2.1.0 renderers
  * engine.py     — file collection and (optionally parallel) scanning
  * index.py      — cross-TU project index (content-hash cached) feeding
                    the @project_rule packs and the flow-facts summaries
  * cfg.py        — per-function control-flow graphs with RAII scope
                    tracking (lock_guard/unique_lock release edges)
  * dataflow.py   — generic worklist solver (RPO, loop-scoped widening,
                    narrowing) over cfg.Cfg
  * flowfacts.py  — per-function dataflow summaries: lock acquisition
                    sites, calls-under-lock, RNG seed provenance proofs
  * stats.py      — per-phase / per-rule wall-time accounting (--stats)
  * rulesdoc.py   — RULES.md generated from the registry
  * cli.py        — the command-line front end behind tools/lint.py

The public entry point is cli.main(); `python3 tools/lint.py --help` shows
the interface and `--explain <rule>` documents any individual rule.
"""

from __future__ import annotations

__version__ = "3.0.0"
