"""Header hygiene (ported from the PR-1 determinism lint)."""

from __future__ import annotations

import re

from .rules import FileContext, rule
from .tokenizer import line_of

_USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\b", re.MULTILINE)
_PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\b", re.MULTILINE)


@rule(
    "hdr-using-namespace",
    "`using namespace` in a header leaks into every includer",
    """A namespace-scope `using namespace` in a header changes name lookup
in every translation unit that includes it, directly or transitively —
overload resolution can silently change in unrelated code. Qualify names
or use narrow using-declarations inside function bodies instead.""",
)
def _using_namespace(ctx: FileContext):
    if not ctx.is_header:
        return
    for m in _USING_NAMESPACE.finditer(ctx.code):
        yield ctx.finding(line_of(ctx.code, m.start()), "hdr-using-namespace",
                          "`using namespace` in a header leaks into every "
                          "includer")


@rule(
    "hdr-pragma-once",
    "header missing `#pragma once`",
    """Every header must start with `#pragma once` so double inclusion is
harmless. The repo standardises on the pragma (all supported compilers
honour it) rather than include guards, whose names drift when files
move.""",
)
def _pragma_once(ctx: FileContext):
    if not ctx.is_header:
        return
    if not _PRAGMA_ONCE.search(ctx.raw):
        yield ctx.finding(1, "hdr-pragma-once",
                          "header missing `#pragma once`")
