"""Lock discipline: annotated ownership, scoped acquisition.

Three rules enforce the thread-annotation contract from
src/util/thread_annotations.hpp:

  * `lock-raw-call` (per-file): mutexes are acquired through scoped
    guards (std::lock_guard / std::unique_lock / std::scoped_lock),
    never via member `.lock()` / `.unlock()` calls — a manual unlock on
    an early return or exception path is the classic silent deadlock.
  * `lock-mutex-unannotated` (project): every std::mutex member of a
    first-party class must be referenced by at least one CIM_GUARDED_BY
    / CIM_PT_GUARDED_BY / CIM_REQUIRES / CIM_EXCLUDES annotation in that
    class, so the data it protects is machine-readable (and checkable by
    clang -Wthread-safety when available).
  * `lock-annotation-unknown` (project): the argument of every CIM_*
    lock annotation must name a declared mutex member of the enclosing
    class — a typo'd annotation documents (and, under clang, checks)
    nothing.
"""

from __future__ import annotations

import re
from typing import Iterable

from .findings import Finding
from .index import ProjectIndex
from .rules import FileContext, LintConfig, project_rule, rule
from .tokenizer import line_of

_RAW_LOCK_CALL = re.compile(
    r"(?:\.|->)\s*((?:try_)?(?:un)?lock(?:_shared)?)\s*\(")

#: Annotation macros whose argument(s) must each be a mutex member of the
#: enclosing class.
_LOCK_ANNOTATIONS = ("CIM_GUARDED_BY", "CIM_PT_GUARDED_BY",
                     "CIM_REQUIRES", "CIM_EXCLUDES")


@rule(
    "lock-raw-call",
    "raw .lock()/.unlock() call; use a scoped guard "
    "(std::lock_guard/std::unique_lock)",
    """A manual mutex.lock() obliges every exit path — returns, breaks,
exceptions — to run the matching unlock(); the first forgotten path is a
deadlock that only reproduces under contention. Scoped guards make the
critical section a lexical region: std::lock_guard for plain sections,
std::unique_lock where a condition_variable needs to drop and reacquire,
std::scoped_lock for multi-mutex acquisition with deadlock-free
ordering.

The guard types call .lock()/.unlock() internally, but user code never
should. A site that genuinely needs manual control (e.g. handing a
locked mutex across an ABI boundary) carries NOLINT(lock-raw-call) with
a justification.""",
)
def _lock_raw_call(ctx: FileContext) -> Iterable[Finding]:
    for m in _RAW_LOCK_CALL.finditer(ctx.code):
        yield ctx.finding(
            line_of(ctx.code, m.start()), "lock-raw-call",
            f"raw .{m.group(1)}() call; acquire through a scoped guard "
            "(std::lock_guard / std::unique_lock / std::scoped_lock)")


def _annotation_args(arg_text: str) -> list[str]:
    return [a.strip() for a in arg_text.split(",") if a.strip()]


@project_rule(
    "lock-mutex-unannotated",
    "std::mutex member not referenced by any CIM_* lock annotation in "
    "its class",
    """Every mutex exists to protect specific state; a mutex member with
no CIM_GUARDED_BY / CIM_PT_GUARDED_BY / CIM_REQUIRES / CIM_EXCLUDES
annotation anywhere in its class leaves that relationship in the
author's head. Annotate the protected members with
CIM_GUARDED_BY(the_mutex) (and lock-order contracts on methods with
CIM_REQUIRES / CIM_EXCLUDES) so the ownership is machine-readable:
cimlint checks the annotations are present and well-formed on every
compiler, and clang -Wthread-safety verifies them against actual lock
sites when available (see src/util/thread_annotations.hpp).

Scope: first-party runtime classes (src/). A mutex that truly guards
nothing-by-design (e.g. one serialising an external C API) carries
NOLINT(lock-mutex-unannotated) at its declaration.""",
)
def _mutex_unannotated(index: ProjectIndex, _config: LintConfig
                       ) -> Iterable[Finding]:
    for cls in index.all_classes():
        if not cls.path.startswith("src/"):
            continue
        referenced: set[str] = set()
        for ann in cls.annotations:
            if ann.macro in _LOCK_ANNOTATIONS:
                referenced.update(_annotation_args(ann.arg))
        for name, line in cls.mutexes:
            if name not in referenced:
                yield Finding(
                    path=cls.path, line=line, rule="lock-mutex-unannotated",
                    message=f"mutex member '{name}' of {cls.name} is not "
                            "referenced by any CIM_GUARDED_BY / "
                            "CIM_REQUIRES / CIM_EXCLUDES annotation in "
                            "the class")


@project_rule(
    "lock-annotation-unknown",
    "CIM_* lock annotation argument is not a mutex member of the "
    "enclosing class",
    """A CIM_GUARDED_BY(typo_mu_) compiles fine on GCC (the macros expand
to nothing there) and documents a mutex that does not exist — worse than
no annotation, because a reader trusts it. Every argument of
CIM_GUARDED_BY / CIM_PT_GUARDED_BY / CIM_REQUIRES / CIM_EXCLUDES inside
a class body must name a std::mutex member declared in that same class.

Scope: first-party runtime classes (src/). Annotations on out-of-line
definitions or naming non-member capabilities are outside this check's
model (DESIGN.md §13); if one is legitimately needed, suppress with
NOLINT(lock-annotation-unknown) and a justification.""",
)
def _annotation_unknown(index: ProjectIndex, _config: LintConfig
                        ) -> Iterable[Finding]:
    for cls in index.all_classes():
        if not cls.path.startswith("src/"):
            continue
        declared = {name for name, _line in cls.mutexes}
        for ann in cls.annotations:
            if ann.macro not in _LOCK_ANNOTATIONS:
                continue
            for arg in _annotation_args(ann.arg):
                if arg not in declared:
                    yield Finding(
                        path=cls.path, line=ann.line,
                        rule="lock-annotation-unknown",
                        message=f"{ann.macro}({arg}) in {cls.name} does "
                                f"not name a std::mutex member of the "
                                "class")
