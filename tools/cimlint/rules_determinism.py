"""Determinism-taint: no hot path may reach a non-deterministic source.

The repo's headline runtime contract is bit-identical trajectories for a
given seed on any worker count (DESIGN.md §11–12). The per-file rules
catch *local* violations (raw std::thread, ad-hoc RNG construction);
this pack catches the transitive ones: a hot-loop function calls a
helper calls a utility that quietly reads the wall clock or iterates an
unordered container, and the non-determinism is three frames away from
the code a reviewer looked at.

Roots are declared in the source with the CIM_DETERMINISM_ROOT marker
(src/util/thread_annotations.hpp): the annealer epoch loops and swap
kernels, the replica-ensemble reduction, and the thread-pool task
execution paths (which cover every submitted task body). The rule walks
the name-resolved call graph from each root and reports every reachable
taint site with the witness chain, so the finding reads as a path a
human can check, not a bare accusation.
"""

from __future__ import annotations

from typing import Iterable

from .callgraph import CallGraph
from .findings import Finding
from .index import ProjectIndex
from .rules import LintConfig, project_rule


@project_rule(
    "det-taint",
    "non-deterministic source reachable from a CIM_DETERMINISM_ROOT "
    "hot path",
    """Functions marked CIM_DETERMINISM_ROOT (the annealer epoch loops,
swap kernels, replica-ensemble reduction and thread-pool task bodies)
must produce bit-identical results for a given seed on any worker count.
This rule indexes every first-party TU, builds a name-resolved call
graph, and reports any path from a root to a determinism-taint source:

  * wall-clock reads (std::chrono ::now, gettimeofday, clock_gettime,
    time(nullptr));
  * thread identity as a value (std::this_thread::get_id, pthread_self);
  * unordered-container use (iteration order is unspecified and varies
    across libstdc++ versions and address-space layouts);
  * non-deterministic RNG sources (std::random_device, rand/srand);
  * pointer values used as data (std::hash over pointers,
    reinterpret_cast to [u]intptr_t).

The finding carries the witness call chain from the root to the source
so the path can be audited by eye. Resolution is by name and therefore
over-approximate (DESIGN.md §13): a same-named function on an unrelated
class can create a false edge, and unordered-container *lookups* (which
are deterministic) are flagged alongside iteration. Reviewed sites —
observability-only timestamps, lookup-only hash maps — carry a
NOLINT(det-taint) with a justification at the taint site.""",
)
def _det_taint(index: ProjectIndex, _config: LintConfig
               ) -> Iterable[Finding]:
    graph = CallGraph(index)
    for f in graph.reachable_taints():
        chain = " -> ".join(f.chain)
        yield Finding(
            path=f.sink.path, line=f.site.line, rule="det-taint",
            message=f"{f.site.detail} reachable from determinism root "
                    f"{f.root.qual_name}; witness: {chain}")
