"""RNG discipline (ported from the PR-1 determinism lint).

Annealer results are only comparable when runs are bit-reproducible, so
all randomness must flow through the seeded cim::util::Rng (xoshiro256++
over splitmix64). These rules make the discipline mechanical.
"""

from __future__ import annotations

import re
from pathlib import PurePosixPath

from .rules import FileContext, rule
from .tokenizer import line_of

# Files allowed to own raw PRNG machinery. Everything else must go through
# cim::util::Rng.
RNG_ALLOWLIST = {
    PurePosixPath("src/util/random.hpp"),
    PurePosixPath("src/util/random.cpp"),
}

_RANDOM_DEVICE = re.compile(r"\bstd\s*::\s*random_device\b")
_LIBC_RAND = re.compile(r"(?<![\w:])s?rand(_r)?\s*\(")
_TIME_SEED = re.compile(r"(?<![\w:])time\s*\(\s*(nullptr|NULL|0)\s*\)")
_MT19937 = re.compile(r"\bmt19937(_64)?\b")


@rule(
    "rng-random-device",
    "std::random_device is non-deterministic; seed cim::util::Rng explicitly",
    """std::random_device pulls entropy from the OS, so two runs with the
same configuration produce different numbers — which breaks the
bit-reproducibility every benchmark comparison in this repo rests on
(same seed → same tour, on every platform).

Thread seeds through the API instead: construct a cim::util::Rng from an
explicit 64-bit seed, and derive per-component streams with
util::stream_seed().""",
)
def _random_device(ctx: FileContext):
    for m in _RANDOM_DEVICE.finditer(ctx.code):
        yield ctx.finding(line_of(ctx.code, m.start()), "rng-random-device",
                          "std::random_device is non-deterministic; seed "
                          "cim::util::Rng explicitly")


@rule(
    "rng-libc-rand",
    "libc rand()/srand() has hidden global state; use cim::util::Rng",
    """libc rand() draws from one hidden global stream: any library call
may advance it behind your back, its algorithm differs across platforms,
and srand() makes ordering between components significant. All three
properties break reproducibility. Draw from a locally owned, explicitly
seeded cim::util::Rng instead.""",
)
def _libc_rand(ctx: FileContext):
    for m in _LIBC_RAND.finditer(ctx.code):
        yield ctx.finding(line_of(ctx.code, m.start()), "rng-libc-rand",
                          "libc rand()/srand() has hidden global state; use "
                          "cim::util::Rng")


@rule(
    "rng-time-seed",
    "wall-clock seeding breaks reproducibility; pass seeds explicitly",
    """time(nullptr) as an entropy source means every run uses a different
seed, so no experiment can be re-run bit-identically. Seeds are part of
the experiment configuration in this repo: accept them on the command
line / config struct and record them in reports.""",
)
def _time_seed(ctx: FileContext):
    for m in _TIME_SEED.finditer(ctx.code):
        yield ctx.finding(line_of(ctx.code, m.start()), "rng-time-seed",
                          "wall-clock seeding breaks reproducibility; pass "
                          "seeds explicitly")


@rule(
    "rng-mt19937",
    "std::mt19937 is banned outside src/util/random.*; use cim::util::Rng",
    """std::mt19937 itself is standardised, but the *distributions* wrapped
around it (uniform_int_distribution etc.) are implementation-defined —
the same seed yields different sequences on libstdc++ and libc++. The
repo's xoshiro256++ Rng with its own distribution code is identical
everywhere. Only src/util/random.{hpp,cpp} may mention mt19937 (for
comparison tests).""",
)
def _mt19937(ctx: FileContext):
    if PurePosixPath(ctx.rel) in RNG_ALLOWLIST:
        return
    for m in _MT19937.finditer(ctx.code):
        yield ctx.finding(line_of(ctx.code, m.start()), "rng-mt19937",
                          "std::mt19937 is banned outside src/util/random.*; "
                          "use cim::util::Rng")
