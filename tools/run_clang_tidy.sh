#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over every first-party translation
# unit using the compile_commands.json of an existing build tree.
#
#   tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Defaults to build/release, falling back to build/. Exits 0 with a SKIPPED
# notice when clang-tidy is not installed (the container bakes in only the
# gcc toolchain), so CI degrades gracefully instead of failing the gate.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-}"
if [[ -z "${build_dir}" ]]; then
  # Prefer release, then a bare build/, then any preset dir that has a
  # compilation database (e.g. build/asan-ubsan when only that was built).
  for candidate in "${repo_root}/build/release" "${repo_root}/build" \
                   "${repo_root}"/build/*; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  echo "run_clang_tidy.sh: SKIPPED (no clang-tidy on PATH; set CLANG_TIDY=...)"
  exit 0
fi

if [[ -z "${build_dir}" || ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: no compile_commands.json found." >&2
  echo "  Configure first: cmake --preset release" >&2
  exit 2
fi

# First-party TUs only: everything under src/, tests/, bench/, examples/.
# The lint fixture corpus holds intentional violations outside the build
# graph and is never a clang-tidy target.
mapfile -t files < <(cd "${repo_root}" &&
  find src tests bench examples -name '*.cpp' \
       -not -path 'tests/lint_fixtures/*' 2>/dev/null | sort)

echo "run_clang_tidy.sh: ${tidy_bin} on ${#files[@]} files (db: ${build_dir})"
status=0
for file in "${files[@]}"; do
  if ! "${tidy_bin}" -p "${build_dir}" --quiet "${repo_root}/${file}"; then
    status=1
  fi
done

if [[ ${status} -ne 0 ]]; then
  echo "run_clang_tidy.sh: FAILED (findings above)" >&2
else
  echo "run_clang_tidy.sh: clean"
fi
exit ${status}
