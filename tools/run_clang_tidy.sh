#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over every first-party translation
# unit using the compile_commands.json of an existing build tree.
#
#   tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Defaults to build/release, falling back to build/. Exits
# RUN_CLANG_TIDY_SKIP_CODE (default 0) with a SKIPPED notice when
# clang-tidy is not installed (the container bakes in only the gcc
# toolchain), so CI degrades gracefully instead of failing the gate —
# the ctest registration sets 77 to surface as a proper SKIPPED result.
#
# Files are checked in parallel (RUN_CLANG_TIDY_JOBS, default: nproc)
# via xargs -P; each file's diagnostics go to a private temp file and
# are concatenated in file order afterwards, so the aggregate output is
# deterministic regardless of scheduling and the exit status is the OR
# over all files. RUN_CLANG_TIDY_LOG=<path> additionally captures the
# aggregated diagnostics for tools/merge_sarif.py.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-}"
if [[ -z "${build_dir}" ]]; then
  # Prefer release, then a bare build/, then any preset dir that has a
  # compilation database (e.g. build/asan-ubsan when only that was built).
  for candidate in "${repo_root}/build/release" "${repo_root}/build" \
                   "${repo_root}"/build/*; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  echo "run_clang_tidy.sh: SKIPPED (no clang-tidy on PATH; set CLANG_TIDY=...)"
  exit "${RUN_CLANG_TIDY_SKIP_CODE:-0}"
fi

if [[ -z "${build_dir}" || ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: no compile_commands.json found." >&2
  echo "  Configure first: cmake --preset release" >&2
  exit 2
fi

# First-party TUs only: everything under src/, tests/, bench/, examples/.
# The lint fixture corpus holds intentional violations outside the build
# graph and is never a clang-tidy target.
mapfile -t files < <(cd "${repo_root}" &&
  find src tests bench examples -name '*.cpp' \
       -not -path 'tests/lint_fixtures/*' 2>/dev/null | sort)

jobs="${RUN_CLANG_TIDY_JOBS:-$(nproc 2>/dev/null || echo 4)}"
echo "run_clang_tidy.sh: ${tidy_bin} on ${#files[@]} files," \
     "${jobs} jobs (db: ${build_dir})"

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

# Fan out over files. Each invocation writes to ${tmpdir}/<index>.log and
# drops <index>.failed on a nonzero exit; aggregation below re-reads the
# logs in file order so output and status are independent of scheduling.
i=0
for file in "${files[@]}"; do
  printf '%d\t%s\n' "${i}" "${file}"
  i=$((i + 1))
done | xargs -P "${jobs}" -n 1 -d '\n' bash -c '
  idx="${0%%	*}"; file="${0#*	}"
  if ! '"${tidy_bin}"' -p "'"${build_dir}"'" --quiet \
       "'"${repo_root}"'/${file}" >"'"${tmpdir}"'/${idx}.log" 2>&1; then
    touch "'"${tmpdir}"'/${idx}.failed"
  fi' || true

aggregate="${tmpdir}/aggregate.log"
i=0
for file in "${files[@]}"; do
  if [[ -s "${tmpdir}/${i}.log" ]]; then
    cat "${tmpdir}/${i}.log"
  fi
  i=$((i + 1))
done >"${aggregate}"
cat "${aggregate}"
if [[ -n "${RUN_CLANG_TIDY_LOG:-}" ]]; then
  cp "${aggregate}" "${RUN_CLANG_TIDY_LOG}"
fi

status=0
if compgen -G "${tmpdir}/*.failed" >/dev/null; then
  status=1
fi

if [[ ${status} -ne 0 ]]; then
  echo "run_clang_tidy.sh: FAILED (findings above)" >&2
else
  echo "run_clang_tidy.sh: clean"
fi
exit ${status}
