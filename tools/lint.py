#!/usr/bin/env python3
"""Thin launcher for the cimlint framework (tools/cimlint/).

Kept so the existing entry points — the `lint.determinism` ctest,
scripts/ci.sh, and muscle memory — keep working unchanged. All behaviour
lives in the package: tokenizer, rule packs (RNG discipline, header
hygiene, anneal hot path, layering DAG, CIM counter charging, unit
safety), NOLINT suppression, the baseline, and text/JSON/SARIF output.

  python3 tools/lint.py                  # scan the tree, text output
  python3 tools/lint.py --list-rules     # rule inventory
  python3 tools/lint.py --explain <rule> # rationale for one rule
  python3 tools/lint.py --sarif out.sarif

Exit status: 0 clean, 1 non-baselined findings, 2 usage/config error.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from cimlint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
