#!/usr/bin/env python3
"""Determinism / hygiene lint for the cimanneal tree.

Annealer results are only comparable when runs are bit-reproducible, so all
randomness must flow through the seeded cim::util::Rng (xoshiro256++). This
lint enforces that mechanically rather than by convention:

  rng-random-device   std::random_device anywhere (non-deterministic seed)
  rng-libc-rand       rand()/srand()/rand_r() (global hidden state)
  rng-time-seed       time(nullptr)/time(NULL)/time(0) used as entropy
  rng-mt19937         std::mt19937 construction outside src/util/random.*
                      (distribution implementations differ across stdlibs)
  hdr-using-namespace `using namespace` at namespace scope in a header
  hdr-pragma-once     header missing `#pragma once`
  anneal-dense-rebuild  `x.assign(...rows(), 0)`-style dense input rebuilds
                      under src/anneal — the swap hot path must use the
                      incremental sparse row list; suppress intentional
                      sites with a `NOLINT(anneal-dense-rebuild)` comment
                      on the line or the three lines above it

Comments and string literals are stripped before matching, so prose that
*mentions* a banned construct is fine (the NOLINT suppression is looked up
in the raw text for the same reason). Exit status is the number of findings
capped at 1, so it slots directly into ctest / CI.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

HEADER_EXTS = {".hpp", ".h", ".hh"}
SOURCE_EXTS = {".cpp", ".cc", ".cxx"} | HEADER_EXTS
SCAN_DIRS = ("src", "tests", "bench", "examples")

# Files allowed to own raw PRNG machinery. Everything else must go through
# cim::util::Rng.
RNG_ALLOWLIST = {Path("src/util/random.hpp"), Path("src/util/random.cpp")}

RULES = [
    ("rng-random-device", re.compile(r"\bstd\s*::\s*random_device\b"),
     "std::random_device is non-deterministic; seed cim::util::Rng explicitly"),
    ("rng-libc-rand", re.compile(r"(?<![\w:])s?rand(_r)?\s*\("),
     "libc rand()/srand() has hidden global state; use cim::util::Rng"),
    ("rng-time-seed", re.compile(r"(?<![\w:])time\s*\(\s*(nullptr|NULL|0)\s*\)"),
     "wall-clock seeding breaks reproducibility; pass seeds explicitly"),
    ("rng-mt19937", re.compile(r"\bmt19937(_64)?\b"),
     "std::mt19937 is banned outside src/util/random.*; use cim::util::Rng"),
]

USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\b", re.MULTILINE)
PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\b", re.MULTILINE)

# Full-vector input rebuilds (`input.assign(shape.rows(), 0)` and friends)
# in the annealer: the swap hot path iterates only the p + 2 set rows, so
# a dense rebuild there is an O(rows) regression hiding in plain sight.
DENSE_REBUILD = re.compile(r"\.assign\s*\(\s*[\w.\->]*\brows\s*\(\)\s*,")
DENSE_REBUILD_DIR = Path("src/anneal")
NOLINT_DENSE = "NOLINT(anneal-dense-rebuild)"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving newlines."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            end = text.find("\n", i)
            i = n if end == -1 else end
        elif ch == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            stop = n if end == -1 else end + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:stop]))
            i = stop
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(" " * (j - i))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def lint_file(root: Path, path: Path) -> list[str]:
    rel = path.relative_to(root)
    raw = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(raw)
    findings: list[str] = []

    for rule, pattern, message in RULES:
        if rule == "rng-mt19937" and rel in RNG_ALLOWLIST:
            continue
        for m in pattern.finditer(code):
            findings.append(
                f"{rel}:{line_of(code, m.start())}: [{rule}] {message}")

    if DENSE_REBUILD_DIR in rel.parents:
        raw_lines = raw.splitlines()
        for m in DENSE_REBUILD.finditer(code):
            ln = line_of(code, m.start())
            # The marker lives in a comment, which the stripped text has
            # blanked — look it up in the raw line or the 3 lines above.
            context = "\n".join(raw_lines[max(0, ln - 4):ln])
            if NOLINT_DENSE in context:
                continue
            findings.append(
                f"{rel}:{ln}: [anneal-dense-rebuild] dense input rebuild in "
                "the anneal hot path; use the incremental sparse row list "
                f"or suppress with {NOLINT_DENSE}")

    if path.suffix in HEADER_EXTS:
        for m in USING_NAMESPACE.finditer(code):
            findings.append(
                f"{rel}:{line_of(code, m.start())}: [hdr-using-namespace] "
                "`using namespace` in a header leaks into every includer")
        if not PRAGMA_ONCE.search(raw):
            findings.append(
                f"{rel}:1: [hdr-pragma-once] header missing `#pragma once`")
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path(__file__).parent.parent,
                        help="repository root (default: repo containing tools/)")
    args = parser.parse_args()
    root = args.root.resolve()

    files: list[Path] = []
    for top in SCAN_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        files.extend(p for p in sorted(base.rglob("*"))
                     if p.suffix in SOURCE_EXTS and p.is_file())
    if not files:
        # A misconfigured --root must not silently pass the gate.
        print(f"lint.py: error: no C++ sources found under {root} "
              f"(looked in {', '.join(SCAN_DIRS)})", file=sys.stderr)
        return 2

    findings: list[str] = []
    for path in files:
        findings.extend(lint_file(root, path))

    for finding in findings:
        print(finding)
    print(f"lint.py: scanned {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
