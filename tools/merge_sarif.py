#!/usr/bin/env python3
"""Merge per-tool SARIF documents into one multi-run analysis.sarif.

scripts/ci.sh runs three analyzers with three native outputs: cimlint
(SARIF), GCC -fanalyzer (SARIF via tools/analyzer_gate.py) and — when
the binary exists — clang-tidy (a text log). One reviewable artifact
beats three: SARIF 2.1.0 models exactly this as one document with one
`run` per tool, which is what code-scanning UIs ingest.

    python3 tools/merge_sarif.py --output analysis.sarif \
        lint.sarif analyzer.sarif --clang-tidy-log tidy.log

Inputs that do not exist are skipped with a note (clang-tidy is
optional in the gcc-only container); an output with zero runs is an
error so the CI artifact gate cannot be satisfied by an empty shell.
Results appearing in more than one input (a re-run SARIF merged twice,
overlapping analyzer legs) are deduplicated by a stable fingerprint —
ruleId + path + a content hash of the flagged line, so the identity
survives line-number drift from unrelated edits above the site.
Exit status: 0 wrote the merged document, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from cimlint import contenthash  # noqa: E402

REPO = Path(__file__).resolve().parent.parent

# clang-tidy diagnostics: `path:line:col: severity: message [check,...]`.
_TIDY_LINE = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<severity>warning|error):\s+(?P<message>.*?)\s+"
    r"\[(?P<checks>[\w.,-]+)\]\s*$")


def load_sarif_runs(path: Path) -> list[dict]:
    doc = json.loads(path.read_text(encoding="utf-8"))
    runs = doc.get("runs", [])
    if not isinstance(runs, list):
        raise ValueError(f"{path}: 'runs' is not a list")
    return runs


def clang_tidy_run(log_path: Path, root: Path) -> dict:
    results: list[dict] = []
    checks: set[str] = set()
    seen: set[tuple] = set()
    for line in log_path.read_text(encoding="utf-8",
                                   errors="replace").splitlines():
        m = _TIDY_LINE.match(line)
        if not m:
            continue
        rel = m.group("path")
        try:
            rel = str(Path(rel).resolve().relative_to(root))
        except ValueError:
            pass
        check = m.group("checks").split(",")[0]
        key = (rel, m.group("line"), m.group("col"), check)
        if key in seen:
            continue
        seen.add(key)
        checks.add(check)
        results.append({
            "ruleId": check,
            "level": m.group("severity"),
            "message": {"text": m.group("message")},
            "locations": [{"physicalLocation": {
                "artifactLocation": {"uri": rel},
                "region": {"startLine": int(m.group("line")),
                           "startColumn": int(m.group("col"))},
            }}],
        })
    return {
        "tool": {"driver": {
            "name": "clang-tidy",
            "rules": [{"id": c} for c in sorted(checks)],
        }},
        "results": results,
    }


def _result_key(result: dict, file_lines) -> tuple[str, str, str]:
    """(ruleId, path, content-hash-of-flagged-line) — the same
    whitespace-insensitive identity cimlint's baseline uses, so a
    finding keeps one fingerprint across line-number drift. Falls back
    to reading the line from disk when the region carries no snippet."""
    rule = result.get("ruleId", "")
    loc = (result.get("locations") or [{}])[0]
    phys = loc.get("physicalLocation", {})
    uri = phys.get("artifactLocation", {}).get("uri", "")
    region = phys.get("region", {})
    snippet = (region.get("snippet") or {}).get("text")
    if snippet is None:
        line = region.get("startLine", 0)
        lines = file_lines(uri)
        snippet = lines[line - 1] if 0 < line <= len(lines) else ""
    digest = contenthash.finding_fingerprint(rule, uri, snippet)
    return (rule, uri, digest)


def dedupe_runs(runs: list[dict], root: Path) -> int:
    """Drops results whose fingerprint already appeared in an earlier
    run; returns the number dropped. Two same-content findings *within*
    one run stay distinct (occurrence ordinals disambiguate them) — only
    cross-run repeats of the same Nth occurrence are duplicates."""
    cache: dict[str, list[str]] = {}

    def file_lines(uri: str) -> list[str]:
        if uri not in cache:
            try:
                cache[uri] = (root / uri).read_text(
                    encoding="utf-8", errors="replace").splitlines()
            except OSError:
                cache[uri] = []
        return cache[uri]

    seen: set[tuple] = set()
    dropped = 0
    for run in runs:
        ordinals: dict[tuple, int] = {}
        kept = []
        for result in run.get("results", []):
            base = _result_key(result, file_lines)
            ordinal = ordinals.get(base, 0)
            ordinals[base] = ordinal + 1
            key = (*base, ordinal)
            if key in seen:
                dropped += 1
                continue
            seen.add(key)
            kept.append(result)
        run["results"] = kept
    return dropped


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("sarif", nargs="*", type=Path,
                        help="SARIF inputs to merge (missing files are "
                             "skipped with a note)")
    parser.add_argument("--clang-tidy-log", type=Path, metavar="FILE",
                        help="clang-tidy text log to convert into a run")
    parser.add_argument("--output", type=Path, required=True, metavar="FILE",
                        help="merged SARIF output path")
    parser.add_argument("--root", type=Path, default=REPO,
                        help="repo root for path relativization")
    args = parser.parse_args(argv)

    runs: list[dict] = []
    for path in args.sarif:
        if not path.is_file():
            print(f"merge_sarif: skipping missing input {path}")
            continue
        try:
            loaded = load_sarif_runs(path)
        except (ValueError, json.JSONDecodeError) as err:
            print(f"merge_sarif: unreadable SARIF {path}: {err}",
                  file=sys.stderr)
            return 2
        runs.extend(loaded)
        print(f"merge_sarif: {path}: {len(loaded)} run(s), "
              f"{sum(len(r.get('results', [])) for r in loaded)} result(s)")

    if args.clang_tidy_log is not None:
        if args.clang_tidy_log.is_file():
            run = clang_tidy_run(args.clang_tidy_log, args.root.resolve())
            runs.append(run)
            print(f"merge_sarif: {args.clang_tidy_log}: "
                  f"{len(run['results'])} clang-tidy result(s)")
        else:
            print(f"merge_sarif: skipping missing clang-tidy log "
                  f"{args.clang_tidy_log}")

    if not runs:
        print("merge_sarif: no runs to merge — refusing to write an empty "
              "document", file=sys.stderr)
        return 2

    dropped = dedupe_runs(runs, args.root.resolve())
    if dropped:
        print(f"merge_sarif: dropped {dropped} duplicate result(s) "
              "(same ruleId + path + flagged-line content)")

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps({
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": runs,
    }, indent=2) + "\n", encoding="utf-8")
    total = sum(len(r.get("results", [])) for r in runs)
    print(f"merge_sarif: wrote {args.output} ({len(runs)} run(s), "
          f"{total} result(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
