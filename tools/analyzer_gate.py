#!/usr/bin/env python3
"""Triage gate for GCC -fanalyzer builds (preset: gcc-analyzer).

GCC's interprocedural analyzer is valuable on this codebase (it traced
the pool's batch lifetime and the telemetry sink handoff correctly) but
it is not clean: on C++ it produces a handful of stable false-positive
classes (operator-new "possible NULL dereference", leak reports against
arena-owned allocations). Rather than turning the analyzer off, the
warnings are *pinned*: every known warning is recorded in
tools/analyzer_triage.txt as

    <relpath> [-Wanalyzer-<id>]    # one per line, '#' comments allowed

and CI fails on any warning whose (file, analyzer id) pair is not in
the list. Line numbers are deliberately NOT part of the key — edits
above a pinned site must not invalidate the triage — which means a
*new* instance of an already-pinned (file, id) pair rides along until
the pin is removed; the gate prints per-key counts so drift is visible.

Usage:
    cmake --preset gcc-analyzer && cmake --build --preset gcc-analyzer \
        2>&1 | tee analyzer.log
    python3 tools/analyzer_gate.py --log analyzer.log          # gate
    python3 tools/analyzer_gate.py --log analyzer.log --update # re-pin

Exit status: 0 all warnings pinned, 1 unpinned warnings, 2 usage error.
"""

from __future__ import annotations

import argparse
import collections
import json
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_TRIAGE = REPO / "tools" / "analyzer_triage.txt"

# `path:line:col: warning: message [-Wanalyzer-id]` — the event traces
# GCC prints after each warning are ignored; only the head line counts.
_WARNING = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+):(?P<col>\d+):\s+warning:\s+"
    r"(?P<message>.*?)\s+\[(?P<flag>-Wanalyzer-[\w-]+)\]\s*$")

# Interprocedural diagnostics GCC cannot anchor to a line come out as
# `cc1plus: warning: ... [-Wanalyzer-id]`. Keyed as `<unknown> [flag]` so
# a brand-new flag still trips the gate even without a location.
_WARNING_NOLOC = re.compile(
    r"^cc1plus:\s+warning:\s+(?P<message>.*?)\s+"
    r"\[(?P<flag>-Wanalyzer-[\w-]+)\]\s*$")


def parse_log(text: str, root: Path) -> list[dict]:
    """Unique analyzer warnings: path (repo-relative where possible),
    line, col, message, flag."""
    seen: set[tuple[str, int, int, str]] = set()
    warnings: list[dict] = []
    for line in text.splitlines():
        m = _WARNING.match(line)
        if m:
            path = m.group("path")
            try:
                path = str(Path(path).resolve().relative_to(root))
            except ValueError:
                pass
            entry = {"path": path, "line": int(m.group("line")),
                     "col": int(m.group("col")),
                     "message": m.group("message"),
                     "flag": m.group("flag")}
        else:
            m = _WARNING_NOLOC.match(line)
            if not m:
                continue
            entry = {"path": "<unknown>", "line": 0, "col": 0,
                     "message": m.group("message"), "flag": m.group("flag")}
        key = (entry["path"], entry["line"], entry["col"], entry["flag"])
        if key in seen:  # GCC repeats the head line inside event traces
            continue
        seen.add(key)
        warnings.append(entry)
    warnings.sort(key=lambda w: (w["path"], w["line"], w["col"], w["flag"]))
    return warnings


def triage_key(warning: dict) -> str:
    return f"{warning['path']} [{warning['flag']}]"


def load_triage(path: Path) -> set[str]:
    pins: set[str] = set()
    if not path.is_file():
        return pins
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            pins.add(line)
    return pins


def render_triage(warnings: list[dict]) -> str:
    counts = collections.Counter(triage_key(w) for w in warnings)
    lines = [
        "# GCC -fanalyzer triage list (tools/analyzer_gate.py).",
        "#",
        "# One `<relpath> [-Wanalyzer-<id>]` per line: warnings with a key",
        "# in this list are reviewed false positives / accepted risks;",
        "# anything else fails CI. Regenerate after review with:",
        "#   python3 tools/analyzer_gate.py --log <build log> --update",
        "",
    ]
    lines += [key for key in sorted(counts)]
    return "\n".join(lines) + "\n"


def render_sarif(warnings: list[dict]) -> str:
    flags = sorted({w["flag"] for w in warnings})
    return json.dumps({
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "gcc-fanalyzer",
                "rules": [{"id": flag} for flag in flags],
            }},
            "results": [{
                "ruleId": w["flag"],
                "level": "warning",
                "message": {"text": w["message"]},
                "locations": [{"physicalLocation": {
                    "artifactLocation": {"uri": w["path"]},
                    "region": {"startLine": w["line"],
                               "startColumn": w["col"]},
                }}],
            } for w in warnings],
        }],
    }, indent=2) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--log", type=Path, metavar="FILE",
                        help="build log to parse (default: stdin)")
    parser.add_argument("--triage", type=Path, default=DEFAULT_TRIAGE,
                        help="pinned-warning list (default: "
                             "tools/analyzer_triage.txt)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the triage list from this log and "
                             "exit 0")
    parser.add_argument("--sarif", type=Path, metavar="FILE",
                        help="also write the warnings as SARIF 2.1.0")
    parser.add_argument("--root", type=Path, default=REPO,
                        help="repo root for path relativization")
    args = parser.parse_args(argv)

    if args.log is not None:
        if not args.log.is_file():
            print(f"analyzer_gate: no such log: {args.log}", file=sys.stderr)
            return 2
        text = args.log.read_text(encoding="utf-8", errors="replace")
    else:
        text = sys.stdin.read()

    warnings = parse_log(text, args.root.resolve())

    if args.sarif:
        args.sarif.parent.mkdir(parents=True, exist_ok=True)
        args.sarif.write_text(render_sarif(warnings), encoding="utf-8")

    if args.update:
        args.triage.write_text(render_triage(warnings), encoding="utf-8")
        print(f"analyzer_gate: pinned {len(warnings)} warning(s) "
              f"({len({triage_key(w) for w in warnings})} key(s)) into "
              f"{args.triage}")
        return 0

    pins = load_triage(args.triage)
    counts = collections.Counter(triage_key(w) for w in warnings)
    unpinned = [w for w in warnings if triage_key(w) not in pins]
    stale = pins - set(counts)

    for key in sorted(counts):
        mark = "PINNED" if key in pins else "NEW"
        print(f"analyzer_gate: [{mark}] {key} x{counts[key]}")
    for key in sorted(stale):
        print(f"analyzer_gate: [STALE PIN] {key} — no longer reported; "
              "consider removing it from the triage list")

    if unpinned:
        print(f"analyzer_gate: FAILED — {len(unpinned)} warning(s) not in "
              f"{args.triage}:", file=sys.stderr)
        for w in unpinned:
            print(f"  {w['path']}:{w['line']}:{w['col']}: {w['message']} "
                  f"[{w['flag']}]", file=sys.stderr)
        return 1
    print(f"analyzer_gate: clean — {len(warnings)} warning(s), all pinned "
          f"({len(stale)} stale pin(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
