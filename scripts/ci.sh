#!/usr/bin/env bash
# The full correctness gate, runnable locally and in CI with one command:
#
#   scripts/ci.sh [fast|full]
#
#   fast (default) — release preset (warnings-as-errors): configure, build,
#                    ctest (includes lint.determinism + lint.selftest),
#                    the annealer suites re-run with the vector kernel
#                    forced on and off and with the partial-sum memo
#                    disabled, a CIMANNEAL_DISABLE_SIMD=ON
#                    portable-fallback build of the kernel suites, the
#                    bench smoke runs (BENCH_swap_kernel, BENCH_reuse and
#                    BENCH_ext_qubo with structural gates), then cimlint
#                    (archiving
#                    lint.sarif), the GCC -fanalyzer triage gate,
#                    clang-tidy, and the merged analysis.sarif artifact.
#   full           — fast + the asan-ubsan and tsan presets over the whole
#                    test suite. This is the gate every perf PR must pass.
#
# Every preset builds with CIMANNEAL_WERROR=ON; the sanitizer presets skip
# bench/examples to keep instrumented builds focused on the test suite.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

mode="${1:-fast}"
jobs="${CIMANNEAL_CI_JOBS:-$(nproc)}"

# Fails loudly when an expected artifact was not produced or came out
# empty — a bench that silently wrote nothing must not look green.
require_artifact() {
  local path="$1"
  if [[ ! -s "${path}" ]]; then
    echo "ci.sh: missing or empty artifact: ${path}" >&2
    exit 1
  fi
  echo "archived ${path}"
}

run_preset() {
  local preset="$1"
  echo "==== [${preset}] configure"
  cmake --preset "${preset}"
  echo "==== [${preset}] build"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==== [${preset}] ctest"
  ctest --preset "${preset}" -j "${jobs}"
}

case "${mode}" in
  fast)
    presets=(release)
    ;;
  full)
    presets=(release asan-ubsan tsan)
    ;;
  *)
    echo "usage: scripts/ci.sh [fast|full]" >&2
    exit 2
    ;;
esac

for preset in "${presets[@]}"; do
  run_preset "${preset}"
done

# The annealer suites run once per kernel path: CIMANNEAL_VECTOR_KERNEL
# seeds the `vector_kernel` config default, so these legs prove both the
# bit-sliced path and the scalar oracle stay green regardless of the
# environment CI happens to inherit. The bit-identity tests inside the
# suites compare the two paths directly; these legs additionally pin the
# default-path plumbing.
anneal_suites='^(Annealer|AnnealEdge|MaxCutAnnealer|GenericAnnealer|SwapKernel|Ensemble|EnsembleThreads|Tempering|Integration|CimSolver|TopRing|NoiseSource)\.'
for vec in 1 0; do
  echo "==== annealer suites with CIMANNEAL_VECTOR_KERNEL=${vec}"
  CIMANNEAL_VECTOR_KERNEL="${vec}" \
    ctest --preset release -j "${jobs}" -R "${anneal_suites}"
done

# Same idea for the partial-sum memo: it defaults on, so the discovery run
# above already covers the memoized path; this leg proves the recompute
# path (the §9 oracle the memo must stay bit-identical to) stays green
# when the environment disables it.
echo "==== annealer suites with CIMANNEAL_MEMOIZE=0"
CIMANNEAL_MEMOIZE=0 \
  ctest --preset release -j "${jobs}" -R "${anneal_suites}"

echo "==== portable-SIMD build (no AVX2/popcnt tiers compiled in)"
# A separate tree with CIMANNEAL_DISABLE_SIMD=ON: every util::simd entry
# point must fall back to the portable scalar bodies and still match the
# oracle bit for bit. Only the kernel-adjacent suites rebuild here.
portable_dir="${repo_root}/build/portable-simd"
cmake -B "${portable_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release -DCIMANNEAL_WERROR=ON \
  -DCIMANNEAL_DISABLE_SIMD=ON
cmake --build "${portable_dir}" -j "${jobs}" --target \
  test_cim_bitslice test_cim_storage test_anneal_swap_kernel \
  test_anneal_maxcut
(cd "${portable_dir}" && ctest -j "${jobs}" \
  -R '^(PackedBits|BitPlaneMatrix|Simd|PackedMac|DegenerateConfigs|Storage|SwapKernel|MaxCutAnnealer)\.')

echo "==== bench smoke (swap-kernel + parallel-runtime benches at reduced scale)"
bench_bin="${repo_root}/build/release/bench/bench_micro_kernels"
bench_out_dir="${repo_root}/build/release/bench-out"
if [[ -x "${bench_bin}" ]]; then
  mkdir -p "${bench_out_dir}"
  CIMANNEAL_BENCH_SMOKE=1 \
    CIMANNEAL_BENCH_OUT="${bench_out_dir}/BENCH_swap_kernel.json" \
    CIMANNEAL_BENCH_OUT_RUNTIME="${bench_out_dir}/BENCH_parallel_runtime.json" \
    CIMANNEAL_BENCH_OUT_TRACE="${bench_out_dir}/BENCH_telemetry.json" \
    "${bench_bin}" --benchmark_filter='BM_SwapKernel.*|BM_DistanceCacheRescan.*'
  require_artifact "${bench_out_dir}/BENCH_swap_kernel.json"
  # Structural gate on the swap-kernel report: the vector head-to-head
  # columns must be present and self-consistent — a bench refactor that
  # silently drops the vector rows must fail here, not in a dashboard.
  python3 - "${bench_out_dir}/BENCH_swap_kernel.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["simd_backend"] in ("avx2", "popcnt", "neon", "portable"), \
    report.get("simd_backend")
assert report["scales"], "empty swap-kernel scales table"
for row in report["scales"]:
    for key in ("dense_ns_per_swap", "sparse_ns_per_swap",
                "incremental_ns_per_swap", "vector_ns_per_swap",
                "speedup_vector_vs_dense"):
        assert row.get(key, 0) > 0, (key, row)
assert report["replica_scales"], "empty replica head-to-head table"
for row in report["replica_scales"]:
    for key in ("scalar_ns_per_swap", "sparse_ns_per_swap",
                "vector_ns_per_swap", "speedup_vector_vs_scalar",
                "speedup_vector_vs_sparse"):
        assert row.get(key, 0) > 0, (key, row)
print("swap-kernel report structure OK "
      f"(simd_backend={report['simd_backend']}, "
      f"{len(report['replica_scales'])} replica rows)")
PY
  require_artifact "${bench_out_dir}/BENCH_parallel_runtime.json"
  # One telemetry snapshot + Chrome trace per CI run (loadable in
  # chrome://tracing / ui.perfetto.dev). Present in every build flavour:
  # a CIMANNEAL_TELEMETRY=OFF build writes them with
  # telemetry_enabled=false rather than not at all.
  require_artifact "${bench_out_dir}/BENCH_telemetry.json"
  require_artifact "${bench_out_dir}/BENCH_telemetry.trace.json"
else
  echo "bench_micro_kernels not built (CIMANNEAL_BUILD_BENCH=OFF?); skipping"
fi

echo "==== bench_reuse (warm-start / tiled-scan / memoization head-to-head)"
reuse_bin="${repo_root}/build/release/bench/bench_reuse"
if [[ -x "${reuse_bin}" ]]; then
  mkdir -p "${bench_out_dir}"
  CIMANNEAL_BENCH_SMOKE=1 \
    CIMANNEAL_BENCH_OUT_REUSE="${bench_out_dir}/BENCH_reuse.json" \
    "${reuse_bin}"
  require_artifact "${bench_out_dir}/BENCH_reuse.json"
  # Structural gate on the reuse report: the three sections must be
  # present, the memoized run must have stayed bit-identical with real
  # hits, and the warm start must beat the cold solve to the 1% gap by
  # the DESIGN.md §16 acceptance margin (>= 2x).
  python3 - "${bench_out_dir}/BENCH_reuse.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
ws = report["warm_start"]
for key in ("cold_seconds", "warm_seconds", "cold_time_to_target_s",
            "warm_time_to_target_s", "speedup_time_to_target"):
    assert ws.get(key, 0) > 0, (key, ws)
assert ws["speedup_time_to_target"] >= 2.0, \
    f"warm start only {ws['speedup_time_to_target']:.2f}x to the 1% gap"
scan = report["scan"]
for key in ("tiled_ns_per_candidate", "untiled_ns_per_candidate",
            "speedup_tiled_vs_untiled"):
    assert scan.get(key, 0) > 0, (key, scan)
memo = report["memoization"]
assert memo["identical"] is True, memo
assert memo["memo_hits"] > 0 and memo["memo_misses"] > 0, memo
assert memo.get("speedup_memo_vs_recompute", 0) > 0, memo
print("reuse report structure OK "
      f"(warm {ws['speedup_time_to_target']:.1f}x to 1% gap, "
      f"scan {scan['speedup_tiled_vs_untiled']:.1f}x, "
      f"memo hit rate {100 * memo['memo_hit_rate']:.1f}%)")
PY
else
  echo "bench_reuse not built (CIMANNEAL_BUILD_BENCH=OFF?); skipping"
fi

echo "==== bench_ext_qubo (QUBO/Ising front-end quality/speed table)"
qubo_bin="${repo_root}/build/release/bench/bench_ext_qubo"
if [[ -x "${qubo_bin}" ]]; then
  mkdir -p "${bench_out_dir}"
  CIMANNEAL_BENCH_SMOKE=1 \
    CIMANNEAL_BENCH_OUT_QUBO="${bench_out_dir}/BENCH_ext_qubo.json" \
    "${qubo_bin}"
  require_artifact "${bench_out_dir}/BENCH_ext_qubo.json"
  # Structural gate on the front-end report: all three problem families
  # must be covered, every row needs its quality and speed columns, and
  # the four kernel variants must have stayed bit-identical on every
  # workload — a refactor that breaks the scalar/vector/memo equivalence
  # must fail here, not in a dashboard.
  python3 - "${bench_out_dir}/BENCH_ext_qubo.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["benchmark"] == "ext_qubo", report.get("benchmark")
assert report["all_variants_equivalent"] is True, "kernel variants diverged"
rows = report["rows"]
assert rows, "empty ext_qubo row table"
families = {row["family"] for row in rows}
assert {"maxcut", "coloring", "knapsack"} <= families, families
for row in rows:
    for key in ("instance", "spins", "strategy", "best_energy",
                "solve_seconds", "update_cycles"):
        assert key in row, (key, row)
    assert row["spins"] > 0 and row["update_cycles"] > 0, row
    assert row["variants_equivalent"] is True, row
    if row["oracle_known"]:
        assert row["oracle_gap"] >= 0, row
oracle_rows = [r for r in rows if r["oracle_known"]]
reached = sum(1 for r in oracle_rows if r["reached_oracle"])
assert any(r["reached_oracle"] for r in oracle_rows), \
    "no oracle-verified row reached its brute-force optimum"
print(f"ext_qubo report structure OK ({len(rows)} rows, "
      f"{len(families)} families, {reached}/{len(oracle_rows)} "
      "oracle rows at optimum)")
PY
else
  echo "bench_ext_qubo not built (CIMANNEAL_BUILD_BENCH=OFF?); skipping"
fi

echo "==== cimlint (also registered as ctest 'lint.determinism'/'lint.selftest')"
lint_out_dir="${repo_root}/build/release/lint-out"
mkdir -p "${lint_out_dir}"
python3 tools/lint.py --root "${repo_root}" --sarif "${lint_out_dir}/lint.sarif" \
  --stats "${lint_out_dir}/lint_stats.json"
python3 tests/lint_selftest.py
python3 tools/lint.py --check-rules-md
require_artifact "${lint_out_dir}/lint.sarif"
require_artifact "${lint_out_dir}/lint_stats.json"
# Soft latency budget: the dataflow analyses (CFG + worklist solves) run
# on every pre-commit lint, so a creeping slowdown is a workflow
# regression even while results stay correct. Warn, don't fail — CI
# machines vary — but make the number visible in every log.
python3 - "${lint_out_dir}/lint_stats.json" \
  "${CIMANNEAL_LINT_BUDGET_S:-20}" <<'PY'
import json, sys
stats = json.load(open(sys.argv[1]))
budget = float(sys.argv[2])
total = stats["total_seconds"]
phases = ", ".join(f"{k}={v:.2f}s" for k, v in stats["phases"].items())
print(f"cimlint wall time {total:.2f}s over {stats['scanned_files']} files "
      f"({phases})")
if total > budget:
    print(f"ci.sh: WARNING: cimlint took {total:.2f}s, over the "
          f"{budget:.0f}s soft budget (CIMANNEAL_LINT_BUDGET_S)")
PY

echo "==== gcc -fanalyzer (triaged against tools/analyzer_triage.txt)"
analyzer_log="${lint_out_dir}/analyzer.log"
cmake --preset gcc-analyzer
# Force full recompilation so every TU's warnings appear in this log —
# an incremental build would only re-emit warnings for changed files.
cmake --build --preset gcc-analyzer --target clean
cmake --build --preset gcc-analyzer -j "${jobs}" 2>&1 | tee "${analyzer_log}"
python3 tools/analyzer_gate.py --log "${analyzer_log}" \
  --sarif "${lint_out_dir}/analyzer.sarif"
require_artifact "${lint_out_dir}/analyzer.sarif"

echo "==== clang-tidy (skips cleanly when the binary is absent)"
RUN_CLANG_TIDY_LOG="${lint_out_dir}/clang_tidy.log" \
  tools/run_clang_tidy.sh "${repo_root}/build/release"

echo "==== merged analysis artifact (cimlint + -fanalyzer + clang-tidy)"
python3 tools/merge_sarif.py \
  --output "${lint_out_dir}/analysis.sarif" \
  "${lint_out_dir}/lint.sarif" "${lint_out_dir}/analyzer.sarif" \
  --clang-tidy-log "${lint_out_dir}/clang_tidy.log"
require_artifact "${lint_out_dir}/analysis.sarif"

echo "==== ci.sh: all gates passed (${mode})"
