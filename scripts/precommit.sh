#!/usr/bin/env bash
# Fast pre-commit gate: lint only what the commit touches.
#
#   scripts/precommit.sh              # diff against HEAD (staged + unstaged)
#   scripts/precommit.sh origin/main  # diff against a review base
#
# Runs cimlint in --changed-only mode: per-file rules on the changed
# files, project rules (det-taint, lock discipline) over the full
# cross-TU index with findings filtered to the change — a warm index
# cache makes this a sub-second check. Install as a git hook with:
#
#   ln -s ../../scripts/precommit.sh .git/hooks/pre-commit
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_REF="${1:-HEAD}"

exec python3 tools/lint.py --changed-only --base-ref "$BASE_REF"
