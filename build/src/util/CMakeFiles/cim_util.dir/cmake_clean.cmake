file(REMOVE_RECURSE
  "CMakeFiles/cim_util.dir/args.cpp.o"
  "CMakeFiles/cim_util.dir/args.cpp.o.d"
  "CMakeFiles/cim_util.dir/csv.cpp.o"
  "CMakeFiles/cim_util.dir/csv.cpp.o.d"
  "CMakeFiles/cim_util.dir/json.cpp.o"
  "CMakeFiles/cim_util.dir/json.cpp.o.d"
  "CMakeFiles/cim_util.dir/log.cpp.o"
  "CMakeFiles/cim_util.dir/log.cpp.o.d"
  "CMakeFiles/cim_util.dir/random.cpp.o"
  "CMakeFiles/cim_util.dir/random.cpp.o.d"
  "CMakeFiles/cim_util.dir/stats.cpp.o"
  "CMakeFiles/cim_util.dir/stats.cpp.o.d"
  "CMakeFiles/cim_util.dir/table.cpp.o"
  "CMakeFiles/cim_util.dir/table.cpp.o.d"
  "CMakeFiles/cim_util.dir/units.cpp.o"
  "CMakeFiles/cim_util.dir/units.cpp.o.d"
  "libcim_util.a"
  "libcim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
