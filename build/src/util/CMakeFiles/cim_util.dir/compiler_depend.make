# Empty compiler generated dependencies file for cim_util.
# This may be replaced when dependencies are built.
