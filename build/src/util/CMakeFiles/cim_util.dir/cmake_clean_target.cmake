file(REMOVE_RECURSE
  "libcim_util.a"
)
