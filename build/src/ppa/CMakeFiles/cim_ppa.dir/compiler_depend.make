# Empty compiler generated dependencies file for cim_ppa.
# This may be replaced when dependencies are built.
