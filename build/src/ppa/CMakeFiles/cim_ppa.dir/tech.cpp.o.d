src/ppa/CMakeFiles/cim_ppa.dir/tech.cpp.o: /root/repo/src/ppa/tech.cpp \
 /usr/include/stdc-predef.h /root/repo/src/ppa/tech.hpp
