file(REMOVE_RECURSE
  "libcim_ppa.a"
)
