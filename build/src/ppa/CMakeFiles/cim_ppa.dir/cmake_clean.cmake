file(REMOVE_RECURSE
  "CMakeFiles/cim_ppa.dir/area.cpp.o"
  "CMakeFiles/cim_ppa.dir/area.cpp.o.d"
  "CMakeFiles/cim_ppa.dir/breakdown.cpp.o"
  "CMakeFiles/cim_ppa.dir/breakdown.cpp.o.d"
  "CMakeFiles/cim_ppa.dir/capacity.cpp.o"
  "CMakeFiles/cim_ppa.dir/capacity.cpp.o.d"
  "CMakeFiles/cim_ppa.dir/energy.cpp.o"
  "CMakeFiles/cim_ppa.dir/energy.cpp.o.d"
  "CMakeFiles/cim_ppa.dir/floorplan.cpp.o"
  "CMakeFiles/cim_ppa.dir/floorplan.cpp.o.d"
  "CMakeFiles/cim_ppa.dir/maxcut_ppa.cpp.o"
  "CMakeFiles/cim_ppa.dir/maxcut_ppa.cpp.o.d"
  "CMakeFiles/cim_ppa.dir/report.cpp.o"
  "CMakeFiles/cim_ppa.dir/report.cpp.o.d"
  "CMakeFiles/cim_ppa.dir/sota.cpp.o"
  "CMakeFiles/cim_ppa.dir/sota.cpp.o.d"
  "CMakeFiles/cim_ppa.dir/tech.cpp.o"
  "CMakeFiles/cim_ppa.dir/tech.cpp.o.d"
  "CMakeFiles/cim_ppa.dir/timing.cpp.o"
  "CMakeFiles/cim_ppa.dir/timing.cpp.o.d"
  "libcim_ppa.a"
  "libcim_ppa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_ppa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
