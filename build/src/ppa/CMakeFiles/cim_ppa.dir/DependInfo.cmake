
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppa/area.cpp" "src/ppa/CMakeFiles/cim_ppa.dir/area.cpp.o" "gcc" "src/ppa/CMakeFiles/cim_ppa.dir/area.cpp.o.d"
  "/root/repo/src/ppa/breakdown.cpp" "src/ppa/CMakeFiles/cim_ppa.dir/breakdown.cpp.o" "gcc" "src/ppa/CMakeFiles/cim_ppa.dir/breakdown.cpp.o.d"
  "/root/repo/src/ppa/capacity.cpp" "src/ppa/CMakeFiles/cim_ppa.dir/capacity.cpp.o" "gcc" "src/ppa/CMakeFiles/cim_ppa.dir/capacity.cpp.o.d"
  "/root/repo/src/ppa/energy.cpp" "src/ppa/CMakeFiles/cim_ppa.dir/energy.cpp.o" "gcc" "src/ppa/CMakeFiles/cim_ppa.dir/energy.cpp.o.d"
  "/root/repo/src/ppa/floorplan.cpp" "src/ppa/CMakeFiles/cim_ppa.dir/floorplan.cpp.o" "gcc" "src/ppa/CMakeFiles/cim_ppa.dir/floorplan.cpp.o.d"
  "/root/repo/src/ppa/maxcut_ppa.cpp" "src/ppa/CMakeFiles/cim_ppa.dir/maxcut_ppa.cpp.o" "gcc" "src/ppa/CMakeFiles/cim_ppa.dir/maxcut_ppa.cpp.o.d"
  "/root/repo/src/ppa/report.cpp" "src/ppa/CMakeFiles/cim_ppa.dir/report.cpp.o" "gcc" "src/ppa/CMakeFiles/cim_ppa.dir/report.cpp.o.d"
  "/root/repo/src/ppa/sota.cpp" "src/ppa/CMakeFiles/cim_ppa.dir/sota.cpp.o" "gcc" "src/ppa/CMakeFiles/cim_ppa.dir/sota.cpp.o.d"
  "/root/repo/src/ppa/tech.cpp" "src/ppa/CMakeFiles/cim_ppa.dir/tech.cpp.o" "gcc" "src/ppa/CMakeFiles/cim_ppa.dir/tech.cpp.o.d"
  "/root/repo/src/ppa/timing.cpp" "src/ppa/CMakeFiles/cim_ppa.dir/timing.cpp.o" "gcc" "src/ppa/CMakeFiles/cim_ppa.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cim/CMakeFiles/cim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/anneal/CMakeFiles/cim_anneal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/cim_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/cim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/ising/CMakeFiles/cim_ising.dir/DependInfo.cmake"
  "/root/repo/build/src/tsp/CMakeFiles/cim_tsp.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cim_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
