file(REMOVE_RECURSE
  "libcim_noise.a"
)
