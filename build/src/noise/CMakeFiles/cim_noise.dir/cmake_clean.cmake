file(REMOVE_RECURSE
  "CMakeFiles/cim_noise.dir/monte_carlo.cpp.o"
  "CMakeFiles/cim_noise.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/cim_noise.dir/schedule.cpp.o"
  "CMakeFiles/cim_noise.dir/schedule.cpp.o.d"
  "CMakeFiles/cim_noise.dir/sram_model.cpp.o"
  "CMakeFiles/cim_noise.dir/sram_model.cpp.o.d"
  "libcim_noise.a"
  "libcim_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
