
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noise/monte_carlo.cpp" "src/noise/CMakeFiles/cim_noise.dir/monte_carlo.cpp.o" "gcc" "src/noise/CMakeFiles/cim_noise.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/noise/schedule.cpp" "src/noise/CMakeFiles/cim_noise.dir/schedule.cpp.o" "gcc" "src/noise/CMakeFiles/cim_noise.dir/schedule.cpp.o.d"
  "/root/repo/src/noise/sram_model.cpp" "src/noise/CMakeFiles/cim_noise.dir/sram_model.cpp.o" "gcc" "src/noise/CMakeFiles/cim_noise.dir/sram_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
