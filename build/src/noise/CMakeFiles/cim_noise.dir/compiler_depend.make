# Empty compiler generated dependencies file for cim_noise.
# This may be replaced when dependencies are built.
