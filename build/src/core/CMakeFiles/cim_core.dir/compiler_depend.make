# Empty compiler generated dependencies file for cim_core.
# This may be replaced when dependencies are built.
