file(REMOVE_RECURSE
  "libcim_core.a"
)
