file(REMOVE_RECURSE
  "CMakeFiles/cim_core.dir/report.cpp.o"
  "CMakeFiles/cim_core.dir/report.cpp.o.d"
  "CMakeFiles/cim_core.dir/solver.cpp.o"
  "CMakeFiles/cim_core.dir/solver.cpp.o.d"
  "libcim_core.a"
  "libcim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
