file(REMOVE_RECURSE
  "CMakeFiles/cim_heuristics.dir/construct.cpp.o"
  "CMakeFiles/cim_heuristics.dir/construct.cpp.o.d"
  "CMakeFiles/cim_heuristics.dir/exact.cpp.o"
  "CMakeFiles/cim_heuristics.dir/exact.cpp.o.d"
  "CMakeFiles/cim_heuristics.dir/lower_bound.cpp.o"
  "CMakeFiles/cim_heuristics.dir/lower_bound.cpp.o.d"
  "CMakeFiles/cim_heuristics.dir/or_opt.cpp.o"
  "CMakeFiles/cim_heuristics.dir/or_opt.cpp.o.d"
  "CMakeFiles/cim_heuristics.dir/reference.cpp.o"
  "CMakeFiles/cim_heuristics.dir/reference.cpp.o.d"
  "CMakeFiles/cim_heuristics.dir/sa_baseline.cpp.o"
  "CMakeFiles/cim_heuristics.dir/sa_baseline.cpp.o.d"
  "CMakeFiles/cim_heuristics.dir/two_opt.cpp.o"
  "CMakeFiles/cim_heuristics.dir/two_opt.cpp.o.d"
  "libcim_heuristics.a"
  "libcim_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
