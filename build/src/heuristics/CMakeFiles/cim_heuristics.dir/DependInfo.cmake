
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heuristics/construct.cpp" "src/heuristics/CMakeFiles/cim_heuristics.dir/construct.cpp.o" "gcc" "src/heuristics/CMakeFiles/cim_heuristics.dir/construct.cpp.o.d"
  "/root/repo/src/heuristics/exact.cpp" "src/heuristics/CMakeFiles/cim_heuristics.dir/exact.cpp.o" "gcc" "src/heuristics/CMakeFiles/cim_heuristics.dir/exact.cpp.o.d"
  "/root/repo/src/heuristics/lower_bound.cpp" "src/heuristics/CMakeFiles/cim_heuristics.dir/lower_bound.cpp.o" "gcc" "src/heuristics/CMakeFiles/cim_heuristics.dir/lower_bound.cpp.o.d"
  "/root/repo/src/heuristics/or_opt.cpp" "src/heuristics/CMakeFiles/cim_heuristics.dir/or_opt.cpp.o" "gcc" "src/heuristics/CMakeFiles/cim_heuristics.dir/or_opt.cpp.o.d"
  "/root/repo/src/heuristics/reference.cpp" "src/heuristics/CMakeFiles/cim_heuristics.dir/reference.cpp.o" "gcc" "src/heuristics/CMakeFiles/cim_heuristics.dir/reference.cpp.o.d"
  "/root/repo/src/heuristics/sa_baseline.cpp" "src/heuristics/CMakeFiles/cim_heuristics.dir/sa_baseline.cpp.o" "gcc" "src/heuristics/CMakeFiles/cim_heuristics.dir/sa_baseline.cpp.o.d"
  "/root/repo/src/heuristics/two_opt.cpp" "src/heuristics/CMakeFiles/cim_heuristics.dir/two_opt.cpp.o" "gcc" "src/heuristics/CMakeFiles/cim_heuristics.dir/two_opt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tsp/CMakeFiles/cim_tsp.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cim_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
