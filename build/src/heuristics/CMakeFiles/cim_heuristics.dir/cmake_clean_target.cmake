file(REMOVE_RECURSE
  "libcim_heuristics.a"
)
