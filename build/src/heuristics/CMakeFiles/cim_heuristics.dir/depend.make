# Empty dependencies file for cim_heuristics.
# This may be replaced when dependencies are built.
