file(REMOVE_RECURSE
  "CMakeFiles/cim_cluster.dir/agglomerate.cpp.o"
  "CMakeFiles/cim_cluster.dir/agglomerate.cpp.o.d"
  "CMakeFiles/cim_cluster.dir/hierarchy.cpp.o"
  "CMakeFiles/cim_cluster.dir/hierarchy.cpp.o.d"
  "CMakeFiles/cim_cluster.dir/refine.cpp.o"
  "CMakeFiles/cim_cluster.dir/refine.cpp.o.d"
  "libcim_cluster.a"
  "libcim_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
