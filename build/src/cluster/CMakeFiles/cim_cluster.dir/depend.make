# Empty dependencies file for cim_cluster.
# This may be replaced when dependencies are built.
