file(REMOVE_RECURSE
  "libcim_cluster.a"
)
