
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/agglomerate.cpp" "src/cluster/CMakeFiles/cim_cluster.dir/agglomerate.cpp.o" "gcc" "src/cluster/CMakeFiles/cim_cluster.dir/agglomerate.cpp.o.d"
  "/root/repo/src/cluster/hierarchy.cpp" "src/cluster/CMakeFiles/cim_cluster.dir/hierarchy.cpp.o" "gcc" "src/cluster/CMakeFiles/cim_cluster.dir/hierarchy.cpp.o.d"
  "/root/repo/src/cluster/refine.cpp" "src/cluster/CMakeFiles/cim_cluster.dir/refine.cpp.o" "gcc" "src/cluster/CMakeFiles/cim_cluster.dir/refine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tsp/CMakeFiles/cim_tsp.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cim_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
