file(REMOVE_RECURSE
  "CMakeFiles/cim_geo.dir/kdtree.cpp.o"
  "CMakeFiles/cim_geo.dir/kdtree.cpp.o.d"
  "CMakeFiles/cim_geo.dir/metric.cpp.o"
  "CMakeFiles/cim_geo.dir/metric.cpp.o.d"
  "libcim_geo.a"
  "libcim_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
