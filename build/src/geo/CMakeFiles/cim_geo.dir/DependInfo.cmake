
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/kdtree.cpp" "src/geo/CMakeFiles/cim_geo.dir/kdtree.cpp.o" "gcc" "src/geo/CMakeFiles/cim_geo.dir/kdtree.cpp.o.d"
  "/root/repo/src/geo/metric.cpp" "src/geo/CMakeFiles/cim_geo.dir/metric.cpp.o" "gcc" "src/geo/CMakeFiles/cim_geo.dir/metric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
