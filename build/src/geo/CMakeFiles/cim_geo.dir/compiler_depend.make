# Empty compiler generated dependencies file for cim_geo.
# This may be replaced when dependencies are built.
