file(REMOVE_RECURSE
  "libcim_geo.a"
)
