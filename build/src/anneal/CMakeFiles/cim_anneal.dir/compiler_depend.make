# Empty compiler generated dependencies file for cim_anneal.
# This may be replaced when dependencies are built.
