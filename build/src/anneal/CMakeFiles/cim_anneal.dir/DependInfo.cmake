
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anneal/clustered_annealer.cpp" "src/anneal/CMakeFiles/cim_anneal.dir/clustered_annealer.cpp.o" "gcc" "src/anneal/CMakeFiles/cim_anneal.dir/clustered_annealer.cpp.o.d"
  "/root/repo/src/anneal/ensemble.cpp" "src/anneal/CMakeFiles/cim_anneal.dir/ensemble.cpp.o" "gcc" "src/anneal/CMakeFiles/cim_anneal.dir/ensemble.cpp.o.d"
  "/root/repo/src/anneal/maxcut_annealer.cpp" "src/anneal/CMakeFiles/cim_anneal.dir/maxcut_annealer.cpp.o" "gcc" "src/anneal/CMakeFiles/cim_anneal.dir/maxcut_annealer.cpp.o.d"
  "/root/repo/src/anneal/noise_source.cpp" "src/anneal/CMakeFiles/cim_anneal.dir/noise_source.cpp.o" "gcc" "src/anneal/CMakeFiles/cim_anneal.dir/noise_source.cpp.o.d"
  "/root/repo/src/anneal/tempering.cpp" "src/anneal/CMakeFiles/cim_anneal.dir/tempering.cpp.o" "gcc" "src/anneal/CMakeFiles/cim_anneal.dir/tempering.cpp.o.d"
  "/root/repo/src/anneal/top_ring.cpp" "src/anneal/CMakeFiles/cim_anneal.dir/top_ring.cpp.o" "gcc" "src/anneal/CMakeFiles/cim_anneal.dir/top_ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/cim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/cim/CMakeFiles/cim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/cim_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/ising/CMakeFiles/cim_ising.dir/DependInfo.cmake"
  "/root/repo/build/src/tsp/CMakeFiles/cim_tsp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cim_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
