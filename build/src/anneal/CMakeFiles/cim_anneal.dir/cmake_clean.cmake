file(REMOVE_RECURSE
  "CMakeFiles/cim_anneal.dir/clustered_annealer.cpp.o"
  "CMakeFiles/cim_anneal.dir/clustered_annealer.cpp.o.d"
  "CMakeFiles/cim_anneal.dir/ensemble.cpp.o"
  "CMakeFiles/cim_anneal.dir/ensemble.cpp.o.d"
  "CMakeFiles/cim_anneal.dir/maxcut_annealer.cpp.o"
  "CMakeFiles/cim_anneal.dir/maxcut_annealer.cpp.o.d"
  "CMakeFiles/cim_anneal.dir/noise_source.cpp.o"
  "CMakeFiles/cim_anneal.dir/noise_source.cpp.o.d"
  "CMakeFiles/cim_anneal.dir/tempering.cpp.o"
  "CMakeFiles/cim_anneal.dir/tempering.cpp.o.d"
  "CMakeFiles/cim_anneal.dir/top_ring.cpp.o"
  "CMakeFiles/cim_anneal.dir/top_ring.cpp.o.d"
  "libcim_anneal.a"
  "libcim_anneal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_anneal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
