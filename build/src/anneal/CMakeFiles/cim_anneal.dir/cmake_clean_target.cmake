file(REMOVE_RECURSE
  "libcim_anneal.a"
)
