file(REMOVE_RECURSE
  "libcim_tsp.a"
)
