# Empty dependencies file for cim_tsp.
# This may be replaced when dependencies are built.
