
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsp/best_known.cpp" "src/tsp/CMakeFiles/cim_tsp.dir/best_known.cpp.o" "gcc" "src/tsp/CMakeFiles/cim_tsp.dir/best_known.cpp.o.d"
  "/root/repo/src/tsp/generator.cpp" "src/tsp/CMakeFiles/cim_tsp.dir/generator.cpp.o" "gcc" "src/tsp/CMakeFiles/cim_tsp.dir/generator.cpp.o.d"
  "/root/repo/src/tsp/instance.cpp" "src/tsp/CMakeFiles/cim_tsp.dir/instance.cpp.o" "gcc" "src/tsp/CMakeFiles/cim_tsp.dir/instance.cpp.o.d"
  "/root/repo/src/tsp/instance_stats.cpp" "src/tsp/CMakeFiles/cim_tsp.dir/instance_stats.cpp.o" "gcc" "src/tsp/CMakeFiles/cim_tsp.dir/instance_stats.cpp.o.d"
  "/root/repo/src/tsp/neighbors.cpp" "src/tsp/CMakeFiles/cim_tsp.dir/neighbors.cpp.o" "gcc" "src/tsp/CMakeFiles/cim_tsp.dir/neighbors.cpp.o.d"
  "/root/repo/src/tsp/tour.cpp" "src/tsp/CMakeFiles/cim_tsp.dir/tour.cpp.o" "gcc" "src/tsp/CMakeFiles/cim_tsp.dir/tour.cpp.o.d"
  "/root/repo/src/tsp/tour_compare.cpp" "src/tsp/CMakeFiles/cim_tsp.dir/tour_compare.cpp.o" "gcc" "src/tsp/CMakeFiles/cim_tsp.dir/tour_compare.cpp.o.d"
  "/root/repo/src/tsp/tour_io.cpp" "src/tsp/CMakeFiles/cim_tsp.dir/tour_io.cpp.o" "gcc" "src/tsp/CMakeFiles/cim_tsp.dir/tour_io.cpp.o.d"
  "/root/repo/src/tsp/tsplib.cpp" "src/tsp/CMakeFiles/cim_tsp.dir/tsplib.cpp.o" "gcc" "src/tsp/CMakeFiles/cim_tsp.dir/tsplib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/cim_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
