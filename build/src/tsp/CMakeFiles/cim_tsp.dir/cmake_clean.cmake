file(REMOVE_RECURSE
  "CMakeFiles/cim_tsp.dir/best_known.cpp.o"
  "CMakeFiles/cim_tsp.dir/best_known.cpp.o.d"
  "CMakeFiles/cim_tsp.dir/generator.cpp.o"
  "CMakeFiles/cim_tsp.dir/generator.cpp.o.d"
  "CMakeFiles/cim_tsp.dir/instance.cpp.o"
  "CMakeFiles/cim_tsp.dir/instance.cpp.o.d"
  "CMakeFiles/cim_tsp.dir/instance_stats.cpp.o"
  "CMakeFiles/cim_tsp.dir/instance_stats.cpp.o.d"
  "CMakeFiles/cim_tsp.dir/neighbors.cpp.o"
  "CMakeFiles/cim_tsp.dir/neighbors.cpp.o.d"
  "CMakeFiles/cim_tsp.dir/tour.cpp.o"
  "CMakeFiles/cim_tsp.dir/tour.cpp.o.d"
  "CMakeFiles/cim_tsp.dir/tour_compare.cpp.o"
  "CMakeFiles/cim_tsp.dir/tour_compare.cpp.o.d"
  "CMakeFiles/cim_tsp.dir/tour_io.cpp.o"
  "CMakeFiles/cim_tsp.dir/tour_io.cpp.o.d"
  "CMakeFiles/cim_tsp.dir/tsplib.cpp.o"
  "CMakeFiles/cim_tsp.dir/tsplib.cpp.o.d"
  "libcim_tsp.a"
  "libcim_tsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_tsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
