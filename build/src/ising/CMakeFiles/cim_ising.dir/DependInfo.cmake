
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ising/maxcut.cpp" "src/ising/CMakeFiles/cim_ising.dir/maxcut.cpp.o" "gcc" "src/ising/CMakeFiles/cim_ising.dir/maxcut.cpp.o.d"
  "/root/repo/src/ising/model.cpp" "src/ising/CMakeFiles/cim_ising.dir/model.cpp.o" "gcc" "src/ising/CMakeFiles/cim_ising.dir/model.cpp.o.d"
  "/root/repo/src/ising/pbm.cpp" "src/ising/CMakeFiles/cim_ising.dir/pbm.cpp.o" "gcc" "src/ising/CMakeFiles/cim_ising.dir/pbm.cpp.o.d"
  "/root/repo/src/ising/qubo.cpp" "src/ising/CMakeFiles/cim_ising.dir/qubo.cpp.o" "gcc" "src/ising/CMakeFiles/cim_ising.dir/qubo.cpp.o.d"
  "/root/repo/src/ising/tsp_hamiltonian.cpp" "src/ising/CMakeFiles/cim_ising.dir/tsp_hamiltonian.cpp.o" "gcc" "src/ising/CMakeFiles/cim_ising.dir/tsp_hamiltonian.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tsp/CMakeFiles/cim_tsp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cim_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
