# Empty dependencies file for cim_ising.
# This may be replaced when dependencies are built.
