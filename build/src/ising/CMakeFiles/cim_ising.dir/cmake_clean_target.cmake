file(REMOVE_RECURSE
  "libcim_ising.a"
)
