file(REMOVE_RECURSE
  "CMakeFiles/cim_ising.dir/maxcut.cpp.o"
  "CMakeFiles/cim_ising.dir/maxcut.cpp.o.d"
  "CMakeFiles/cim_ising.dir/model.cpp.o"
  "CMakeFiles/cim_ising.dir/model.cpp.o.d"
  "CMakeFiles/cim_ising.dir/pbm.cpp.o"
  "CMakeFiles/cim_ising.dir/pbm.cpp.o.d"
  "CMakeFiles/cim_ising.dir/qubo.cpp.o"
  "CMakeFiles/cim_ising.dir/qubo.cpp.o.d"
  "CMakeFiles/cim_ising.dir/tsp_hamiltonian.cpp.o"
  "CMakeFiles/cim_ising.dir/tsp_hamiltonian.cpp.o.d"
  "libcim_ising.a"
  "libcim_ising.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_ising.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
