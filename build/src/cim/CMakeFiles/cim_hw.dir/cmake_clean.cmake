file(REMOVE_RECURSE
  "CMakeFiles/cim_hw.dir/adder_tree.cpp.o"
  "CMakeFiles/cim_hw.dir/adder_tree.cpp.o.d"
  "CMakeFiles/cim_hw.dir/array.cpp.o"
  "CMakeFiles/cim_hw.dir/array.cpp.o.d"
  "CMakeFiles/cim_hw.dir/chip.cpp.o"
  "CMakeFiles/cim_hw.dir/chip.cpp.o.d"
  "CMakeFiles/cim_hw.dir/dataflow.cpp.o"
  "CMakeFiles/cim_hw.dir/dataflow.cpp.o.d"
  "CMakeFiles/cim_hw.dir/interconnect.cpp.o"
  "CMakeFiles/cim_hw.dir/interconnect.cpp.o.d"
  "CMakeFiles/cim_hw.dir/pipeline.cpp.o"
  "CMakeFiles/cim_hw.dir/pipeline.cpp.o.d"
  "CMakeFiles/cim_hw.dir/storage.cpp.o"
  "CMakeFiles/cim_hw.dir/storage.cpp.o.d"
  "CMakeFiles/cim_hw.dir/window.cpp.o"
  "CMakeFiles/cim_hw.dir/window.cpp.o.d"
  "libcim_hw.a"
  "libcim_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
