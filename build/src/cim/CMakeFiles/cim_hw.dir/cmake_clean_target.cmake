file(REMOVE_RECURSE
  "libcim_hw.a"
)
