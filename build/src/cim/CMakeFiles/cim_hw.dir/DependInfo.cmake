
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cim/adder_tree.cpp" "src/cim/CMakeFiles/cim_hw.dir/adder_tree.cpp.o" "gcc" "src/cim/CMakeFiles/cim_hw.dir/adder_tree.cpp.o.d"
  "/root/repo/src/cim/array.cpp" "src/cim/CMakeFiles/cim_hw.dir/array.cpp.o" "gcc" "src/cim/CMakeFiles/cim_hw.dir/array.cpp.o.d"
  "/root/repo/src/cim/chip.cpp" "src/cim/CMakeFiles/cim_hw.dir/chip.cpp.o" "gcc" "src/cim/CMakeFiles/cim_hw.dir/chip.cpp.o.d"
  "/root/repo/src/cim/dataflow.cpp" "src/cim/CMakeFiles/cim_hw.dir/dataflow.cpp.o" "gcc" "src/cim/CMakeFiles/cim_hw.dir/dataflow.cpp.o.d"
  "/root/repo/src/cim/interconnect.cpp" "src/cim/CMakeFiles/cim_hw.dir/interconnect.cpp.o" "gcc" "src/cim/CMakeFiles/cim_hw.dir/interconnect.cpp.o.d"
  "/root/repo/src/cim/pipeline.cpp" "src/cim/CMakeFiles/cim_hw.dir/pipeline.cpp.o" "gcc" "src/cim/CMakeFiles/cim_hw.dir/pipeline.cpp.o.d"
  "/root/repo/src/cim/storage.cpp" "src/cim/CMakeFiles/cim_hw.dir/storage.cpp.o" "gcc" "src/cim/CMakeFiles/cim_hw.dir/storage.cpp.o.d"
  "/root/repo/src/cim/window.cpp" "src/cim/CMakeFiles/cim_hw.dir/window.cpp.o" "gcc" "src/cim/CMakeFiles/cim_hw.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noise/CMakeFiles/cim_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
