# Empty dependencies file for cim_hw.
# This may be replaced when dependencies are built.
