file(REMOVE_RECURSE
  "CMakeFiles/maxcut_demo.dir/maxcut_demo.cpp.o"
  "CMakeFiles/maxcut_demo.dir/maxcut_demo.cpp.o.d"
  "maxcut_demo"
  "maxcut_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxcut_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
