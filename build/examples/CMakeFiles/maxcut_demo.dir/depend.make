# Empty dependencies file for maxcut_demo.
# This may be replaced when dependencies are built.
