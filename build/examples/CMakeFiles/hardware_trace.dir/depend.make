# Empty dependencies file for hardware_trace.
# This may be replaced when dependencies are built.
