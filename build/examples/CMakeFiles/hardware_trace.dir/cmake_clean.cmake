file(REMOVE_RECURSE
  "CMakeFiles/hardware_trace.dir/hardware_trace.cpp.o"
  "CMakeFiles/hardware_trace.dir/hardware_trace.cpp.o.d"
  "hardware_trace"
  "hardware_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
