# Empty dependencies file for tsplib_solver.
# This may be replaced when dependencies are built.
