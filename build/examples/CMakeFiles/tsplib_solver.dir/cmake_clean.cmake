file(REMOVE_RECURSE
  "CMakeFiles/tsplib_solver.dir/tsplib_solver.cpp.o"
  "CMakeFiles/tsplib_solver.dir/tsplib_solver.cpp.o.d"
  "tsplib_solver"
  "tsplib_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsplib_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
