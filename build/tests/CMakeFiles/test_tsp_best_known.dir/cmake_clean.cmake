file(REMOVE_RECURSE
  "CMakeFiles/test_tsp_best_known.dir/test_tsp_best_known.cpp.o"
  "CMakeFiles/test_tsp_best_known.dir/test_tsp_best_known.cpp.o.d"
  "test_tsp_best_known"
  "test_tsp_best_known.pdb"
  "test_tsp_best_known[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsp_best_known.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
