# Empty dependencies file for test_tsp_best_known.
# This may be replaced when dependencies are built.
