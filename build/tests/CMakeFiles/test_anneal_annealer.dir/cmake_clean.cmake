file(REMOVE_RECURSE
  "CMakeFiles/test_anneal_annealer.dir/test_anneal_annealer.cpp.o"
  "CMakeFiles/test_anneal_annealer.dir/test_anneal_annealer.cpp.o.d"
  "test_anneal_annealer"
  "test_anneal_annealer.pdb"
  "test_anneal_annealer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anneal_annealer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
