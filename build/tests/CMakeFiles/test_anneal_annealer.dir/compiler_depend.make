# Empty compiler generated dependencies file for test_anneal_annealer.
# This may be replaced when dependencies are built.
