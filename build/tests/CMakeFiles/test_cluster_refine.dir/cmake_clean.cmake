file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_refine.dir/test_cluster_refine.cpp.o"
  "CMakeFiles/test_cluster_refine.dir/test_cluster_refine.cpp.o.d"
  "test_cluster_refine"
  "test_cluster_refine.pdb"
  "test_cluster_refine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
