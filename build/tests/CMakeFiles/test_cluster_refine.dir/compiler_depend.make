# Empty compiler generated dependencies file for test_cluster_refine.
# This may be replaced when dependencies are built.
