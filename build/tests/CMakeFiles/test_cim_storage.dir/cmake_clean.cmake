file(REMOVE_RECURSE
  "CMakeFiles/test_cim_storage.dir/test_cim_storage.cpp.o"
  "CMakeFiles/test_cim_storage.dir/test_cim_storage.cpp.o.d"
  "test_cim_storage"
  "test_cim_storage.pdb"
  "test_cim_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cim_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
