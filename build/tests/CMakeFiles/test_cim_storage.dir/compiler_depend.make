# Empty compiler generated dependencies file for test_cim_storage.
# This may be replaced when dependencies are built.
