# Empty dependencies file for test_anneal_maxcut.
# This may be replaced when dependencies are built.
