file(REMOVE_RECURSE
  "CMakeFiles/test_anneal_maxcut.dir/test_anneal_maxcut.cpp.o"
  "CMakeFiles/test_anneal_maxcut.dir/test_anneal_maxcut.cpp.o.d"
  "test_anneal_maxcut"
  "test_anneal_maxcut.pdb"
  "test_anneal_maxcut[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anneal_maxcut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
