file(REMOVE_RECURSE
  "CMakeFiles/test_heuristics_two_opt.dir/test_heuristics_two_opt.cpp.o"
  "CMakeFiles/test_heuristics_two_opt.dir/test_heuristics_two_opt.cpp.o.d"
  "test_heuristics_two_opt"
  "test_heuristics_two_opt.pdb"
  "test_heuristics_two_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heuristics_two_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
