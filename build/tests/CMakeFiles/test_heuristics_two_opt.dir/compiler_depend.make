# Empty compiler generated dependencies file for test_heuristics_two_opt.
# This may be replaced when dependencies are built.
