# Empty dependencies file for test_heuristics_exact.
# This may be replaced when dependencies are built.
