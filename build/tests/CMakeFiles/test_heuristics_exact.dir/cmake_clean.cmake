file(REMOVE_RECURSE
  "CMakeFiles/test_heuristics_exact.dir/test_heuristics_exact.cpp.o"
  "CMakeFiles/test_heuristics_exact.dir/test_heuristics_exact.cpp.o.d"
  "test_heuristics_exact"
  "test_heuristics_exact.pdb"
  "test_heuristics_exact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heuristics_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
