# Empty compiler generated dependencies file for test_util_args_units.
# This may be replaced when dependencies are built.
