file(REMOVE_RECURSE
  "CMakeFiles/test_tsp_generator.dir/test_tsp_generator.cpp.o"
  "CMakeFiles/test_tsp_generator.dir/test_tsp_generator.cpp.o.d"
  "test_tsp_generator"
  "test_tsp_generator.pdb"
  "test_tsp_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsp_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
