# Empty compiler generated dependencies file for test_tsp_generator.
# This may be replaced when dependencies are built.
