file(REMOVE_RECURSE
  "CMakeFiles/test_ising_tsp_hamiltonian.dir/test_ising_tsp_hamiltonian.cpp.o"
  "CMakeFiles/test_ising_tsp_hamiltonian.dir/test_ising_tsp_hamiltonian.cpp.o.d"
  "test_ising_tsp_hamiltonian"
  "test_ising_tsp_hamiltonian.pdb"
  "test_ising_tsp_hamiltonian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ising_tsp_hamiltonian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
