# Empty compiler generated dependencies file for test_ising_tsp_hamiltonian.
# This may be replaced when dependencies are built.
