# Empty dependencies file for test_heuristics_or_opt.
# This may be replaced when dependencies are built.
