# Empty dependencies file for test_tsp_tour_io.
# This may be replaced when dependencies are built.
