# Empty dependencies file for test_tsp_tour.
# This may be replaced when dependencies are built.
