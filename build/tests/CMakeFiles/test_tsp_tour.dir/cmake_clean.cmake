file(REMOVE_RECURSE
  "CMakeFiles/test_tsp_tour.dir/test_tsp_tour.cpp.o"
  "CMakeFiles/test_tsp_tour.dir/test_tsp_tour.cpp.o.d"
  "test_tsp_tour"
  "test_tsp_tour.pdb"
  "test_tsp_tour[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsp_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
