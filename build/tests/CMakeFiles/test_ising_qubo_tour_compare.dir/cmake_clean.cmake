file(REMOVE_RECURSE
  "CMakeFiles/test_ising_qubo_tour_compare.dir/test_ising_qubo_tour_compare.cpp.o"
  "CMakeFiles/test_ising_qubo_tour_compare.dir/test_ising_qubo_tour_compare.cpp.o.d"
  "test_ising_qubo_tour_compare"
  "test_ising_qubo_tour_compare.pdb"
  "test_ising_qubo_tour_compare[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ising_qubo_tour_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
