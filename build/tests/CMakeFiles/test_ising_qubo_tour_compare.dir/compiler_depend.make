# Empty compiler generated dependencies file for test_ising_qubo_tour_compare.
# This may be replaced when dependencies are built.
