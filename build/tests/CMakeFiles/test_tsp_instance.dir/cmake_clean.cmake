file(REMOVE_RECURSE
  "CMakeFiles/test_tsp_instance.dir/test_tsp_instance.cpp.o"
  "CMakeFiles/test_tsp_instance.dir/test_tsp_instance.cpp.o.d"
  "test_tsp_instance"
  "test_tsp_instance.pdb"
  "test_tsp_instance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsp_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
