# Empty dependencies file for test_tsp_instance.
# This may be replaced when dependencies are built.
