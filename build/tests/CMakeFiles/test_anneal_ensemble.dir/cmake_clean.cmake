file(REMOVE_RECURSE
  "CMakeFiles/test_anneal_ensemble.dir/test_anneal_ensemble.cpp.o"
  "CMakeFiles/test_anneal_ensemble.dir/test_anneal_ensemble.cpp.o.d"
  "test_anneal_ensemble"
  "test_anneal_ensemble.pdb"
  "test_anneal_ensemble[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anneal_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
