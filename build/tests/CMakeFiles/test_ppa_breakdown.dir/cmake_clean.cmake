file(REMOVE_RECURSE
  "CMakeFiles/test_ppa_breakdown.dir/test_ppa_breakdown.cpp.o"
  "CMakeFiles/test_ppa_breakdown.dir/test_ppa_breakdown.cpp.o.d"
  "test_ppa_breakdown"
  "test_ppa_breakdown.pdb"
  "test_ppa_breakdown[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppa_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
