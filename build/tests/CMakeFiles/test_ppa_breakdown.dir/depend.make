# Empty dependencies file for test_ppa_breakdown.
# This may be replaced when dependencies are built.
