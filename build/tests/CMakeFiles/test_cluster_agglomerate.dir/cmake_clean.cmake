file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_agglomerate.dir/test_cluster_agglomerate.cpp.o"
  "CMakeFiles/test_cluster_agglomerate.dir/test_cluster_agglomerate.cpp.o.d"
  "test_cluster_agglomerate"
  "test_cluster_agglomerate.pdb"
  "test_cluster_agglomerate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_agglomerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
