# Empty compiler generated dependencies file for test_cluster_agglomerate.
# This may be replaced when dependencies are built.
