file(REMOVE_RECURSE
  "CMakeFiles/test_anneal_top_ring.dir/test_anneal_top_ring.cpp.o"
  "CMakeFiles/test_anneal_top_ring.dir/test_anneal_top_ring.cpp.o.d"
  "test_anneal_top_ring"
  "test_anneal_top_ring.pdb"
  "test_anneal_top_ring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anneal_top_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
