# Empty dependencies file for test_anneal_top_ring.
# This may be replaced when dependencies are built.
