# Empty dependencies file for test_cim_array_chip.
# This may be replaced when dependencies are built.
