file(REMOVE_RECURSE
  "CMakeFiles/test_cim_array_chip.dir/test_cim_array_chip.cpp.o"
  "CMakeFiles/test_cim_array_chip.dir/test_cim_array_chip.cpp.o.d"
  "test_cim_array_chip"
  "test_cim_array_chip.pdb"
  "test_cim_array_chip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cim_array_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
