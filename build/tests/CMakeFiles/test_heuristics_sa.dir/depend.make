# Empty dependencies file for test_heuristics_sa.
# This may be replaced when dependencies are built.
