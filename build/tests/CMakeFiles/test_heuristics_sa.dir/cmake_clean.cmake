file(REMOVE_RECURSE
  "CMakeFiles/test_heuristics_sa.dir/test_heuristics_sa.cpp.o"
  "CMakeFiles/test_heuristics_sa.dir/test_heuristics_sa.cpp.o.d"
  "test_heuristics_sa"
  "test_heuristics_sa.pdb"
  "test_heuristics_sa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heuristics_sa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
