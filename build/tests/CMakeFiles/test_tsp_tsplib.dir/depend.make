# Empty dependencies file for test_tsp_tsplib.
# This may be replaced when dependencies are built.
