file(REMOVE_RECURSE
  "CMakeFiles/test_tsp_tsplib.dir/test_tsp_tsplib.cpp.o"
  "CMakeFiles/test_tsp_tsplib.dir/test_tsp_tsplib.cpp.o.d"
  "test_tsp_tsplib"
  "test_tsp_tsplib.pdb"
  "test_tsp_tsplib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsp_tsplib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
