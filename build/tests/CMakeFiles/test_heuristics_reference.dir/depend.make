# Empty dependencies file for test_heuristics_reference.
# This may be replaced when dependencies are built.
