file(REMOVE_RECURSE
  "CMakeFiles/test_heuristics_reference.dir/test_heuristics_reference.cpp.o"
  "CMakeFiles/test_heuristics_reference.dir/test_heuristics_reference.cpp.o.d"
  "test_heuristics_reference"
  "test_heuristics_reference.pdb"
  "test_heuristics_reference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heuristics_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
