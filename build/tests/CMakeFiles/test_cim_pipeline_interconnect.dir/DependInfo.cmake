
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cim_pipeline_interconnect.cpp" "tests/CMakeFiles/test_cim_pipeline_interconnect.dir/test_cim_pipeline_interconnect.cpp.o" "gcc" "tests/CMakeFiles/test_cim_pipeline_interconnect.dir/test_cim_pipeline_interconnect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ppa/CMakeFiles/cim_ppa.dir/DependInfo.cmake"
  "/root/repo/build/src/anneal/CMakeFiles/cim_anneal.dir/DependInfo.cmake"
  "/root/repo/build/src/cim/CMakeFiles/cim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/cim_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/cim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/ising/CMakeFiles/cim_ising.dir/DependInfo.cmake"
  "/root/repo/build/src/heuristics/CMakeFiles/cim_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/tsp/CMakeFiles/cim_tsp.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cim_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
