# Empty dependencies file for test_cim_pipeline_interconnect.
# This may be replaced when dependencies are built.
