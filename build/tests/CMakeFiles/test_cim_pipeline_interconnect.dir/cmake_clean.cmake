file(REMOVE_RECURSE
  "CMakeFiles/test_cim_pipeline_interconnect.dir/test_cim_pipeline_interconnect.cpp.o"
  "CMakeFiles/test_cim_pipeline_interconnect.dir/test_cim_pipeline_interconnect.cpp.o.d"
  "test_cim_pipeline_interconnect"
  "test_cim_pipeline_interconnect.pdb"
  "test_cim_pipeline_interconnect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cim_pipeline_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
