file(REMOVE_RECURSE
  "CMakeFiles/test_cim_adder_tree.dir/test_cim_adder_tree.cpp.o"
  "CMakeFiles/test_cim_adder_tree.dir/test_cim_adder_tree.cpp.o.d"
  "test_cim_adder_tree"
  "test_cim_adder_tree.pdb"
  "test_cim_adder_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cim_adder_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
