# Empty dependencies file for test_cim_adder_tree.
# This may be replaced when dependencies are built.
