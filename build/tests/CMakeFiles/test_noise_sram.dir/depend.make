# Empty dependencies file for test_noise_sram.
# This may be replaced when dependencies are built.
