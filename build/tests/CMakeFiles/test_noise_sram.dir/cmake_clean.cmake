file(REMOVE_RECURSE
  "CMakeFiles/test_noise_sram.dir/test_noise_sram.cpp.o"
  "CMakeFiles/test_noise_sram.dir/test_noise_sram.cpp.o.d"
  "test_noise_sram"
  "test_noise_sram.pdb"
  "test_noise_sram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
