# Empty compiler generated dependencies file for test_cim_window.
# This may be replaced when dependencies are built.
