file(REMOVE_RECURSE
  "CMakeFiles/test_cim_window.dir/test_cim_window.cpp.o"
  "CMakeFiles/test_cim_window.dir/test_cim_window.cpp.o.d"
  "test_cim_window"
  "test_cim_window.pdb"
  "test_cim_window[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cim_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
