file(REMOVE_RECURSE
  "CMakeFiles/test_heuristics_lower_bound.dir/test_heuristics_lower_bound.cpp.o"
  "CMakeFiles/test_heuristics_lower_bound.dir/test_heuristics_lower_bound.cpp.o.d"
  "test_heuristics_lower_bound"
  "test_heuristics_lower_bound.pdb"
  "test_heuristics_lower_bound[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heuristics_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
