file(REMOVE_RECURSE
  "CMakeFiles/test_tsp_instance_stats.dir/test_tsp_instance_stats.cpp.o"
  "CMakeFiles/test_tsp_instance_stats.dir/test_tsp_instance_stats.cpp.o.d"
  "test_tsp_instance_stats"
  "test_tsp_instance_stats.pdb"
  "test_tsp_instance_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsp_instance_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
