# Empty dependencies file for test_tsp_instance_stats.
# This may be replaced when dependencies are built.
