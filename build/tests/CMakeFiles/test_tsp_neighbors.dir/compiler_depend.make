# Empty compiler generated dependencies file for test_tsp_neighbors.
# This may be replaced when dependencies are built.
