file(REMOVE_RECURSE
  "CMakeFiles/test_tsp_neighbors.dir/test_tsp_neighbors.cpp.o"
  "CMakeFiles/test_tsp_neighbors.dir/test_tsp_neighbors.cpp.o.d"
  "test_tsp_neighbors"
  "test_tsp_neighbors.pdb"
  "test_tsp_neighbors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsp_neighbors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
