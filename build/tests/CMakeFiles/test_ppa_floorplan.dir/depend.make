# Empty dependencies file for test_ppa_floorplan.
# This may be replaced when dependencies are built.
