file(REMOVE_RECURSE
  "CMakeFiles/test_ppa_floorplan.dir/test_ppa_floorplan.cpp.o"
  "CMakeFiles/test_ppa_floorplan.dir/test_ppa_floorplan.cpp.o.d"
  "test_ppa_floorplan"
  "test_ppa_floorplan.pdb"
  "test_ppa_floorplan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppa_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
