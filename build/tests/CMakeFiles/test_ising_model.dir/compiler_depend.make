# Empty compiler generated dependencies file for test_ising_model.
# This may be replaced when dependencies are built.
