file(REMOVE_RECURSE
  "CMakeFiles/test_ising_model.dir/test_ising_model.cpp.o"
  "CMakeFiles/test_ising_model.dir/test_ising_model.cpp.o.d"
  "test_ising_model"
  "test_ising_model.pdb"
  "test_ising_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ising_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
