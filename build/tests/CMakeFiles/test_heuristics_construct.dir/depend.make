# Empty dependencies file for test_heuristics_construct.
# This may be replaced when dependencies are built.
