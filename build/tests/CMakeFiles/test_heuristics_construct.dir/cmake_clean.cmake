file(REMOVE_RECURSE
  "CMakeFiles/test_heuristics_construct.dir/test_heuristics_construct.cpp.o"
  "CMakeFiles/test_heuristics_construct.dir/test_heuristics_construct.cpp.o.d"
  "test_heuristics_construct"
  "test_heuristics_construct.pdb"
  "test_heuristics_construct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heuristics_construct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
