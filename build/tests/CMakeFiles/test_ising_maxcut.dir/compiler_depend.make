# Empty compiler generated dependencies file for test_ising_maxcut.
# This may be replaced when dependencies are built.
