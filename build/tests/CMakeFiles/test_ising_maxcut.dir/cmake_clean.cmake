file(REMOVE_RECURSE
  "CMakeFiles/test_ising_maxcut.dir/test_ising_maxcut.cpp.o"
  "CMakeFiles/test_ising_maxcut.dir/test_ising_maxcut.cpp.o.d"
  "test_ising_maxcut"
  "test_ising_maxcut.pdb"
  "test_ising_maxcut[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ising_maxcut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
