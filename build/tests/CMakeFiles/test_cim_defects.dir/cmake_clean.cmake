file(REMOVE_RECURSE
  "CMakeFiles/test_cim_defects.dir/test_cim_defects.cpp.o"
  "CMakeFiles/test_cim_defects.dir/test_cim_defects.cpp.o.d"
  "test_cim_defects"
  "test_cim_defects.pdb"
  "test_cim_defects[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cim_defects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
