# Empty dependencies file for test_cim_defects.
# This may be replaced when dependencies are built.
