# Empty compiler generated dependencies file for test_core_solver.
# This may be replaced when dependencies are built.
