file(REMOVE_RECURSE
  "CMakeFiles/test_core_solver.dir/test_core_solver.cpp.o"
  "CMakeFiles/test_core_solver.dir/test_core_solver.cpp.o.d"
  "test_core_solver"
  "test_core_solver.pdb"
  "test_core_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
