file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_hierarchy.dir/test_cluster_hierarchy.cpp.o"
  "CMakeFiles/test_cluster_hierarchy.dir/test_cluster_hierarchy.cpp.o.d"
  "test_cluster_hierarchy"
  "test_cluster_hierarchy.pdb"
  "test_cluster_hierarchy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
