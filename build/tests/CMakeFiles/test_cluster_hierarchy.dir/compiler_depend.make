# Empty compiler generated dependencies file for test_cluster_hierarchy.
# This may be replaced when dependencies are built.
