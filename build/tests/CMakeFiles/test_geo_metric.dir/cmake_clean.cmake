file(REMOVE_RECURSE
  "CMakeFiles/test_geo_metric.dir/test_geo_metric.cpp.o"
  "CMakeFiles/test_geo_metric.dir/test_geo_metric.cpp.o.d"
  "test_geo_metric"
  "test_geo_metric.pdb"
  "test_geo_metric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geo_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
