# Empty dependencies file for test_anneal_edge_cases.
# This may be replaced when dependencies are built.
