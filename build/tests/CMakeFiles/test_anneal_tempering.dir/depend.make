# Empty dependencies file for test_anneal_tempering.
# This may be replaced when dependencies are built.
