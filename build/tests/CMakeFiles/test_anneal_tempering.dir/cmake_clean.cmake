file(REMOVE_RECURSE
  "CMakeFiles/test_anneal_tempering.dir/test_anneal_tempering.cpp.o"
  "CMakeFiles/test_anneal_tempering.dir/test_anneal_tempering.cpp.o.d"
  "test_anneal_tempering"
  "test_anneal_tempering.pdb"
  "test_anneal_tempering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anneal_tempering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
