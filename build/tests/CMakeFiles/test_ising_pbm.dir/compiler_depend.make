# Empty compiler generated dependencies file for test_ising_pbm.
# This may be replaced when dependencies are built.
