file(REMOVE_RECURSE
  "CMakeFiles/test_ising_pbm.dir/test_ising_pbm.cpp.o"
  "CMakeFiles/test_ising_pbm.dir/test_ising_pbm.cpp.o.d"
  "test_ising_pbm"
  "test_ising_pbm.pdb"
  "test_ising_pbm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ising_pbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
