file(REMOVE_RECURSE
  "CMakeFiles/test_noise_schedule.dir/test_noise_schedule.cpp.o"
  "CMakeFiles/test_noise_schedule.dir/test_noise_schedule.cpp.o.d"
  "test_noise_schedule"
  "test_noise_schedule.pdb"
  "test_noise_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
