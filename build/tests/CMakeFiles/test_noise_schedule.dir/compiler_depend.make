# Empty compiler generated dependencies file for test_noise_schedule.
# This may be replaced when dependencies are built.
