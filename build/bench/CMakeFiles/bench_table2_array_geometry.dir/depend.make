# Empty dependencies file for bench_table2_array_geometry.
# This may be replaced when dependencies are built.
