# Empty dependencies file for bench_ablation_noise_placement.
# This may be replaced when dependencies are built.
