file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_schedule.dir/bench_ext_schedule.cpp.o"
  "CMakeFiles/bench_ext_schedule.dir/bench_ext_schedule.cpp.o.d"
  "bench_ext_schedule"
  "bench_ext_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
