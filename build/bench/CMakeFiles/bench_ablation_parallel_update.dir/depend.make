# Empty dependencies file for bench_ablation_parallel_update.
# This may be replaced when dependencies are built.
