file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_instance_stats.dir/bench_ext_instance_stats.cpp.o"
  "CMakeFiles/bench_ext_instance_stats.dir/bench_ext_instance_stats.cpp.o.d"
  "bench_ext_instance_stats"
  "bench_ext_instance_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_instance_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
