file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7bcd_ppa.dir/bench_fig7bcd_ppa.cpp.o"
  "CMakeFiles/bench_fig7bcd_ppa.dir/bench_fig7bcd_ppa.cpp.o.d"
  "bench_fig7bcd_ppa"
  "bench_fig7bcd_ppa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7bcd_ppa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
