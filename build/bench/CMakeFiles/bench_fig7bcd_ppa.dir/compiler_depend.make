# Empty compiler generated dependencies file for bench_fig7bcd_ppa.
# This may be replaced when dependencies are built.
