# Empty dependencies file for bench_ext_clustering.
# This may be replaced when dependencies are built.
