file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_clustering.dir/bench_ext_clustering.cpp.o"
  "CMakeFiles/bench_ext_clustering.dir/bench_ext_clustering.cpp.o.d"
  "bench_ext_clustering"
  "bench_ext_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
