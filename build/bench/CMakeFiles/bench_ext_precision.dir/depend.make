# Empty dependencies file for bench_ext_precision.
# This may be replaced when dependencies are built.
