file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_precision.dir/bench_ext_precision.cpp.o"
  "CMakeFiles/bench_ext_precision.dir/bench_ext_precision.cpp.o.d"
  "bench_ext_precision"
  "bench_ext_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
