# Empty dependencies file for bench_speedup_vs_cpu.
# This may be replaced when dependencies are built.
