# Empty compiler generated dependencies file for bench_ext_refinement.
# This may be replaced when dependencies are built.
