file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_refinement.dir/bench_ext_refinement.cpp.o"
  "CMakeFiles/bench_ext_refinement.dir/bench_ext_refinement.cpp.o.d"
  "bench_ext_refinement"
  "bench_ext_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
