# Empty dependencies file for bench_table1_cluster_strategy.
# This may be replaced when dependencies are built.
