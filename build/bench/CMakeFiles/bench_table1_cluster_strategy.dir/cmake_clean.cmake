file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cluster_strategy.dir/bench_table1_cluster_strategy.cpp.o"
  "CMakeFiles/bench_table1_cluster_strategy.dir/bench_table1_cluster_strategy.cpp.o.d"
  "bench_table1_cluster_strategy"
  "bench_table1_cluster_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cluster_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
