# Empty compiler generated dependencies file for bench_ext_maxcut.
# This may be replaced when dependencies are built.
