file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_maxcut.dir/bench_ext_maxcut.cpp.o"
  "CMakeFiles/bench_ext_maxcut.dir/bench_ext_maxcut.cpp.o.d"
  "bench_ext_maxcut"
  "bench_ext_maxcut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_maxcut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
