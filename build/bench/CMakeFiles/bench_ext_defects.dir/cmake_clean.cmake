file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_defects.dir/bench_ext_defects.cpp.o"
  "CMakeFiles/bench_ext_defects.dir/bench_ext_defects.cpp.o.d"
  "bench_ext_defects"
  "bench_ext_defects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_defects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
