# Empty dependencies file for bench_ext_defects.
# This may be replaced when dependencies are built.
