# Empty dependencies file for bench_table3_sota_comparison.
# This may be replaced when dependencies are built.
