#include "ppa/floorplan.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace cim::ppa {
namespace {

hw::ChipLayout layout_for(std::size_t n_cities, std::uint32_t p) {
  hw::ChipConfig config;
  config.n_cities = n_cities;
  config.p = p;
  config.array.p_max = p;
  return hw::plan_chip(config);
}

TEST(Floorplan, GridCoversAllArrays) {
  for (std::size_t n : {100U, 3038U, 85900U}) {
    const auto layout = layout_for(n, 3);
    hw::ArrayGeometry geom;
    geom.p_max = 3;
    const auto plan = plan_floorplan(layout, geom);
    EXPECT_GE(plan.grid_cols * plan.grid_rows, layout.arrays);
    EXPECT_LT((plan.grid_rows - 1) * plan.grid_cols, layout.arrays);
  }
}

TEST(Floorplan, NearSquareAspect) {
  const auto layout = layout_for(85900, 3);
  hw::ArrayGeometry geom;
  geom.p_max = 3;
  const auto plan = plan_floorplan(layout, geom);
  EXPECT_GT(plan.aspect_ratio, 0.7);
  EXPECT_LT(plan.aspect_ratio, 1.5);
}

TEST(Floorplan, AreaConsistentWithAggregateModel) {
  // The floorplanned die should be close to the aggregate model's
  // arrays × footprint × (1 + routing overhead).
  const auto layout = layout_for(85900, 3);
  hw::ArrayGeometry geom;
  geom.p_max = 3;
  const auto plan = plan_floorplan(layout, geom);
  const double aggregate = chip_area(layout, geom).um2();
  EXPECT_NEAR(plan.area().um2(), aggregate, aggregate * 0.12);
  EXPECT_GT(plan.routing_fraction(), 0.0);
  EXPECT_LT(plan.routing_fraction(), 0.15);
}

TEST(Floorplan, SingleArrayDegenerate) {
  hw::ChipLayout tiny;
  tiny.arrays = 1;
  tiny.windows = 10;
  tiny.capacity_bits = 1;
  hw::ArrayGeometry geom;
  geom.p_max = 2;
  const auto plan = plan_floorplan(tiny, geom);
  EXPECT_EQ(plan.grid_cols, 1U);
  EXPECT_EQ(plan.grid_rows, 1U);
  EXPECT_GT(plan.htree_wire_um, 0.0);
}

TEST(Floorplan, WireLengthGrowsWithArrayCount) {
  hw::ArrayGeometry geom;
  geom.p_max = 3;
  const auto small = plan_floorplan(layout_for(3038, 3), geom);
  const auto large = plan_floorplan(layout_for(85900, 3), geom);
  EXPECT_GT(large.htree_wire_um, small.htree_wire_um * 5.0);
}

TEST(Floorplan, ZeroArraysThrows) {
  hw::ChipLayout empty;
  hw::ArrayGeometry geom;
  EXPECT_THROW(plan_floorplan(empty, geom), ConfigError);
}

}  // namespace
}  // namespace cim::ppa
