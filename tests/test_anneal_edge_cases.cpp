// Edge-case coverage for the clustered annealer: unusual metrics, ring
// parities (odd rings need a third chromatic colour; 2-rings make both
// neighbours the same slot), large p_max windows, and degenerate
// hierarchies.
#include <gtest/gtest.h>

#include "anneal/clustered_annealer.hpp"
#include "heuristics/exact.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::anneal {
namespace {

AnnealerConfig config_with_p(std::uint32_t p) {
  AnnealerConfig config;
  config.clustering.strategy = cluster::Strategy::kSemiFlexible;
  config.clustering.p = p;
  config.seed = 1;
  return config;
}

class LargePmax : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LargePmax, WindowsScaleBeyondPaperRange) {
  // The paper evaluates p_max ∈ {2,3,4}; the machinery must extend to
  // larger windows (the formulas are generic).
  const auto inst = test::random_instance(200, 77);
  const auto result =
      ClusteredAnnealer(config_with_p(GetParam())).solve(inst);
  EXPECT_TRUE(result.tour.is_valid(200));
  EXPECT_LE(result.max_cluster_size, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Pmax, LargePmax,
                         ::testing::Values<std::uint32_t>(5, 6, 8));

TEST(AnnealEdge, CeilMetricInstance) {
  const tsp::Instance base = test::random_instance(120, 3);
  const tsp::Instance ceil_inst(
      "ceil", geo::Metric::kCeil2D,
      {base.coords().begin(), base.coords().end()});
  const auto result =
      ClusteredAnnealer(config_with_p(3)).solve(ceil_inst);
  EXPECT_TRUE(result.tour.is_valid(120));
  EXPECT_EQ(result.length, result.tour.length(ceil_inst));
}

TEST(AnnealEdge, AttMetricInstance) {
  const tsp::Instance base = test::random_instance(100, 4);
  const tsp::Instance att("att", geo::Metric::kAtt,
                          {base.coords().begin(), base.coords().end()});
  const auto result = ClusteredAnnealer(config_with_p(3)).solve(att);
  EXPECT_TRUE(result.tour.is_valid(100));
}

TEST(AnnealEdge, GeoMetricInstance) {
  // Geographic coordinates (DDD.MM lat/lon): the level-0 distances use
  // the great-circle metric while upper levels use planar centroids.
  util::Rng rng(5);
  std::vector<geo::Point> coords(60);
  for (auto& p : coords) {
    p = {rng.uniform(40.0, 49.0), rng.uniform(-120.0, -80.0)};
  }
  const tsp::Instance geo_inst("geo", geo::Metric::kGeo, std::move(coords));
  const auto result = ClusteredAnnealer(config_with_p(3)).solve(geo_inst);
  EXPECT_TRUE(result.tour.is_valid(60));
  EXPECT_EQ(result.length, result.tour.length(geo_inst));
}

TEST(AnnealEdge, TwoSlotRing) {
  // Small instance with top_size 2: the first solved level is a 2-ring,
  // where each slot's predecessor and successor are the same neighbour.
  const auto inst = test::random_instance(12, 6);
  AnnealerConfig config = config_with_p(3);
  config.clustering.top_size = 2;
  const auto result = ClusteredAnnealer(config).solve(inst);
  EXPECT_TRUE(result.tour.is_valid(12));
}

TEST(AnnealEdge, OddRingsGetThreeColors) {
  // With chromatic parallelism on an odd ring, the third phase shows up
  // as extra update cycles per iteration (3×4 instead of 2×4) at the
  // affected levels. We verify indirectly: cycles per level per iteration
  // is either 8, 12 (+write-back rows), never corrupt.
  const auto inst = test::random_instance(90, 7);
  const auto result = ClusteredAnnealer(config_with_p(3)).solve(inst);
  for (const auto& level : result.levels) {
    const std::size_t wb_cycles = level.update_cycles % 4;
    (void)wb_cycles;  // write-back rows may not be a multiple of 4
    EXPECT_GT(level.update_cycles, 0U);
  }
  EXPECT_TRUE(result.tour.is_valid(90));
}

TEST(AnnealEdge, TopSizeEightUsesHeuristicRing) {
  // top_size 8 exercises the NN+2-opt top-ring path (enumeration caps at
  // 7 nodes).
  const auto inst = test::random_instance(100, 8);
  AnnealerConfig config = config_with_p(3);
  config.clustering.top_size = 8;
  const auto result = ClusteredAnnealer(config).solve(inst);
  EXPECT_TRUE(result.tour.is_valid(100));
  // Fewer levels than the default top_size 4.
  AnnealerConfig deep = config_with_p(3);
  deep.clustering.top_size = 2;
  const auto deep_result = ClusteredAnnealer(deep).solve(inst);
  EXPECT_GE(deep_result.hierarchy_depth, result.hierarchy_depth);
}

TEST(AnnealEdge, OptimalityOnCircleSmall) {
  // 8 cities on a circle: hierarchical annealing should find the hull
  // order (or land very close) — the cluster structure is unambiguous.
  const auto inst = test::circle_instance(8);
  const auto optimal = heuristics::brute_force(inst);
  long long best = std::numeric_limits<long long>::max();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    AnnealerConfig config = config_with_p(3);
    config.seed = seed;
    best = std::min(best, ClusteredAnnealer(config).solve(inst).length);
  }
  EXPECT_LE(best, optimal.length(inst) * 11 / 10);
}

TEST(AnnealEdge, ClusterSeedChangesHierarchyOnly) {
  // Same anneal seed, different clustering seed: results may differ, but
  // both stay valid and within a sane band of each other.
  const auto inst = test::random_instance(200, 9);
  AnnealerConfig a = config_with_p(3);
  a.clustering.seed = 1;
  AnnealerConfig b = config_with_p(3);
  b.clustering.seed = 2;
  const auto ra = ClusteredAnnealer(a).solve(inst);
  const auto rb = ClusteredAnnealer(b).solve(inst);
  EXPECT_TRUE(ra.tour.is_valid(200));
  EXPECT_TRUE(rb.tour.is_valid(200));
  EXPECT_LT(static_cast<double>(std::max(ra.length, rb.length)),
            1.3 * static_cast<double>(std::min(ra.length, rb.length)));
}

TEST(AnnealEdge, SingleSlotRing) {
  // An instance no larger than p collapses into one cluster, so the
  // solved level is a 1-ring: the slot is its own predecessor and
  // successor, and its boundary input rows move whenever its *own*
  // first/last order changes — the case the sparse kernel's mid-swap
  // boundary refresh exists for. Sparse and dense must agree.
  const auto inst = test::random_instance(6, 12);
  AnnealerConfig config = config_with_p(6);
  config.clustering.strategy = cluster::Strategy::kFixed;
  const auto sparse = ClusteredAnnealer(config).solve(inst);
  EXPECT_EQ(sparse.levels.back().clusters, 1U);
  config.sparse_swap_kernel = false;
  config.vector_kernel = false;  // dense ablation: no packed plane to ride on
  const auto dense = ClusteredAnnealer(config).solve(inst);
  EXPECT_TRUE(sparse.tour.is_valid(6));
  EXPECT_TRUE(sparse.tour == dense.tour);
  EXPECT_EQ(sparse.hw.storage.macs, dense.hw.storage.macs);
  EXPECT_EQ(sparse.hw.storage.mac_bit_reads, dense.hw.storage.mac_bit_reads);
}

TEST(AnnealEdge, SingleSlotRingWithSpinNoise) {
  const auto inst = test::random_instance(5, 13);
  AnnealerConfig config = config_with_p(5);
  config.clustering.strategy = cluster::Strategy::kFixed;
  config.noise = NoiseMode::kSramSpin;
  const auto sparse = ClusteredAnnealer(config).solve(inst);
  EXPECT_EQ(sparse.levels.back().clusters, 1U);
  config.sparse_swap_kernel = false;
  config.vector_kernel = false;  // dense ablation: no packed plane to ride on
  const auto dense = ClusteredAnnealer(config).solve(inst);
  EXPECT_TRUE(sparse.tour.is_valid(5));
  EXPECT_TRUE(sparse.tour == dense.tour);
}

TEST(AnnealEdge, SingleMemberClusters) {
  // p = 1: every window is degenerate (one own row) and no swap is ever
  // possible — the solve must still stitch a valid tour from the ring.
  const auto inst = test::random_instance(16, 14);
  const auto result = ClusteredAnnealer(config_with_p(1)).solve(inst);
  EXPECT_TRUE(result.tour.is_valid(16));
}

TEST(AnnealEdge, LargeWindowSpinNoiseRegression) {
  // p = 16 gives windows of 16² + 16 + 16 = 288 > 256 rows. The spin
  // register cell ids used to stride by 2⁸ between slots, so adjacent
  // slots shared (aliased) error-pattern ids; the stride now follows the
  // largest window. Sparse and dense read the same ids, so they must
  // still agree — and the solve must stay valid.
  const auto inst = test::random_instance(120, 15);
  AnnealerConfig config = config_with_p(16);
  config.noise = NoiseMode::kSramSpin;
  config.schedule.total_iterations = 60;
  const auto sparse = ClusteredAnnealer(config).solve(inst);
  config.sparse_swap_kernel = false;
  config.vector_kernel = false;  // dense ablation: no packed plane to ride on
  const auto dense = ClusteredAnnealer(config).solve(inst);
  EXPECT_TRUE(sparse.tour.is_valid(120));
  EXPECT_TRUE(sparse.tour == dense.tour);
  EXPECT_EQ(sparse.hw.storage.macs, dense.hw.storage.macs);
}

TEST(AnnealEdge, SpinCellBasesAreDisjoint) {
  // Unit check of the id allocator: ranges [base, base + rows) must never
  // overlap, and the historical 256 stride survives for small windows.
  const std::vector<hw::WindowShape> small = {
      hw::WindowShape::hardware(3), hw::WindowShape::hardware(3),
      hw::WindowShape::hardware(3)};
  const auto small_bases = spin_cell_bases(small);
  EXPECT_EQ(small_bases[1] - small_bases[0], 256U);
  EXPECT_EQ(small_bases[2] - small_bases[1], 256U);

  const std::vector<hw::WindowShape> large = {
      hw::WindowShape::hardware(16), hw::WindowShape{4, 16, 16},
      hw::WindowShape::hardware(16)};
  const auto large_bases = spin_cell_bases(large);
  for (std::size_t a = 0; a < large.size(); ++a) {
    for (std::size_t b = a + 1; b < large.size(); ++b) {
      const bool disjoint =
          large_bases[a] + large[a].rows() <= large_bases[b] ||
          large_bases[b] + large[b].rows() <= large_bases[a];
      EXPECT_TRUE(disjoint) << a << " vs " << b;
    }
  }
}

TEST(AnnealEdge, VeryDeepSchedule) {
  // A 1-iteration schedule must still produce valid output (single noisy
  // greedy pass).
  const auto inst = test::random_instance(80, 10);
  AnnealerConfig config = config_with_p(3);
  config.schedule.total_iterations = 1;
  config.schedule.iterations_per_step = 1;
  const auto result = ClusteredAnnealer(config).solve(inst);
  EXPECT_TRUE(result.tour.is_valid(80));
  EXPECT_EQ(result.levels.front().iterations, 1U);
}

}  // namespace
}  // namespace cim::anneal
