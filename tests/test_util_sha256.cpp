// SHA-256 and instance-fingerprint tests. The digests are pinned to the
// FIPS 180-4 / NIST CAVP vectors so the warm-start store keys and the
// cimlint index cache (tools/cimlint/contenthash.py) can never drift
// apart: both sides must produce the same "sha256:<hex>" strings.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tsp/fingerprint.hpp"
#include "tsp/generator.hpp"
#include "util/error.hpp"
#include "util/sha256.hpp"

namespace {

using cim::util::hash_file;
using cim::util::Sha256;
using cim::util::sha256_hex;
using cim::util::sha256_tagged;

TEST(Sha256, EmptyStringVector) {
  EXPECT_EQ(sha256_hex(std::string_view{}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  EXPECT_EQ(sha256_hex(std::string_view("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector) {
  // 56-byte message: exercises the pad-spills-into-second-block path.
  EXPECT_EQ(sha256_hex(std::string_view(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(hasher.hex_digest(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  // Feeding awkward chunk sizes (1, 63, 64, 65 bytes) must agree with the
  // one-shot digest — the buffered path is where streaming bugs hide.
  std::string text;
  for (int i = 0; i < 300; ++i) text.push_back(static_cast<char>('a' + i % 26));
  const std::string expected = sha256_hex(text);
  for (const std::size_t step : {std::size_t{1}, std::size_t{63},
                                 std::size_t{64}, std::size_t{65}}) {
    Sha256 hasher;
    for (std::size_t off = 0; off < text.size(); off += step) {
      hasher.update(std::string_view(text).substr(off, step));
    }
    EXPECT_EQ(hasher.hex_digest(), expected) << "chunk step " << step;
  }
}

TEST(Sha256, ResetReusesObject) {
  Sha256 hasher;
  hasher.update(std::string_view("abc"));
  (void)hasher.hex_digest();
  hasher.reset();
  hasher.update(std::string_view("abc"));
  EXPECT_EQ(hasher.hex_digest(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TaggedForm) {
  EXPECT_EQ(sha256_tagged("deadbeef"), "sha256:deadbeef");
}

TEST(Sha256, HashFileMatchesInMemoryDigest) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "cim_sha256_test.bin";
  std::string payload;
  for (int i = 0; i < 100000; ++i) payload.push_back(static_cast<char>(i));
  {
    std::ofstream out(path, std::ios::binary);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
  EXPECT_EQ(hash_file(path.string()), sha256_tagged(sha256_hex(payload)));
  std::filesystem::remove(path);
}

TEST(Sha256, HashFileMissingThrows) {
  EXPECT_THROW(hash_file("/nonexistent/cim_sha256_missing"), cim::Error);
}

TEST(InstanceFingerprint, IgnoresNameAndComment) {
  auto a = cim::tsp::generate_clustered(64, 4, 1234);
  auto b = cim::tsp::generate_clustered(64, 4, 1234);
  b.set_comment("different comment");
  const std::string fp_a = cim::tsp::instance_fingerprint(a);
  EXPECT_TRUE(fp_a.starts_with("sha256:"));
  EXPECT_EQ(fp_a, cim::tsp::instance_fingerprint(b));
}

TEST(InstanceFingerprint, SensitiveToContent) {
  const auto a = cim::tsp::generate_clustered(64, 4, 1234);
  const auto b = cim::tsp::generate_clustered(64, 4, 1235);
  EXPECT_NE(cim::tsp::instance_fingerprint(a),
            cim::tsp::instance_fingerprint(b));
}

TEST(InstanceFingerprint, MatrixInstancesHashValues) {
  const std::vector<long long> m1 = {0, 2, 2, 0};
  std::vector<long long> m2 = {0, 3, 3, 0};
  const cim::tsp::Instance a("a", m1, 2);
  const cim::tsp::Instance b("b", m1, 2);
  const cim::tsp::Instance c("c", m2, 2);
  EXPECT_EQ(cim::tsp::instance_fingerprint(a),
            cim::tsp::instance_fingerprint(b));
  EXPECT_NE(cim::tsp::instance_fingerprint(a),
            cim::tsp::instance_fingerprint(c));
}

TEST(InstanceFingerprint, KeyFormat) {
  const auto inst = cim::tsp::generate_clustered(32, 4, 7);
  const std::string key = cim::tsp::instance_key(inst);
  EXPECT_NE(key.find("|32|"), std::string::npos) << key;
}

}  // namespace
