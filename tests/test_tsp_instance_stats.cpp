#include "tsp/instance_stats.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tsp/generator.hpp"
#include "util/error.hpp"

namespace cim::tsp {
namespace {

TEST(InstanceStats, UniformLooksUniform) {
  const auto inst = generate_uniform(3000, 1);
  const auto stats = compute_stats(inst);
  EXPECT_EQ(stats.n, 3000U);
  // Poisson NN ratio ≈ 1 for uniform points.
  EXPECT_NEAR(stats.nn_ratio, 1.0, 0.12);
  EXPECT_LT(stats.axis_alignment, 0.05);
}

TEST(InstanceStats, ClusteredHasLowNnRatioAndHighVariation) {
  const auto uniform = compute_stats(generate_uniform(3000, 2));
  const auto clustered =
      compute_stats(generate_clustered(3000, 20, 2));
  EXPECT_LT(clustered.nn_ratio, uniform.nn_ratio * 0.8);
  EXPECT_GT(clustered.nn_cv, uniform.nn_cv);
}

TEST(InstanceStats, DrillGridIsAxisAligned) {
  const auto drill = compute_stats(generate_drill_grid(2000, 3));
  EXPECT_GT(drill.axis_alignment, 0.5);
  const auto uniform = compute_stats(generate_uniform(2000, 3));
  EXPECT_GT(drill.axis_alignment, uniform.axis_alignment * 5.0);
}

TEST(InstanceStats, PlaRowsAreAxisAligned) {
  const auto pla = compute_stats(generate_pla(2000, 4));
  EXPECT_GT(pla.axis_alignment, 0.6);
}

TEST(InstanceStats, GeographicIsClustered) {
  const auto geo_stats = compute_stats(generate_geographic(3000, 5));
  EXPECT_LT(geo_stats.nn_ratio, 0.9);
}

TEST(InstanceStats, FamiliesAreDistinguishable) {
  // The property matrix that justifies the synthetic substitution: each
  // family lands in its own region of (nn_ratio, axis_alignment).
  const auto pcb = compute_stats(make_paper_instance("pcb1173"));
  const auto rl = compute_stats(make_paper_instance("rl1304"));
  const auto pla = compute_stats(make_paper_instance("pla1500"));
  EXPECT_GT(pcb.axis_alignment, rl.axis_alignment);
  EXPECT_GT(pla.axis_alignment, rl.axis_alignment);
  EXPECT_LT(rl.nn_ratio, 0.9);  // strongly clustered
}

TEST(InstanceStats, TinyAndDegenerateInputs) {
  const Instance one("one", geo::Metric::kEuc2D, {{5, 5}});
  const auto s1 = compute_stats(one);
  EXPECT_EQ(s1.n, 1U);
  EXPECT_EQ(s1.nn_mean, 0.0);

  const Instance dup("dup", geo::Metric::kEuc2D, {{1, 1}, {1, 1}});
  const auto s2 = compute_stats(dup);
  EXPECT_EQ(s2.nn_mean, 0.0);
}

TEST(InstanceStats, ExplicitInstanceThrows) {
  const auto expl = test::to_explicit(test::random_instance(5, 1));
  EXPECT_THROW(compute_stats(expl), ConfigError);
}

}  // namespace
}  // namespace cim::tsp
