#include "tsp/neighbors.hpp"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::tsp {
namespace {

std::vector<CityId> brute_k_nearest(const Instance& inst, CityId c,
                                    std::size_t k) {
  std::vector<CityId> others;
  for (CityId o = 0; o < inst.size(); ++o) {
    if (o != c) others.push_back(o);
  }
  std::sort(others.begin(), others.end(), [&](CityId a, CityId b) {
    return inst.distance(c, a) < inst.distance(c, b);
  });
  others.resize(k);
  return others;
}

class NeighborSizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(NeighborSizes, MatchesBruteForceDistances) {
  const auto [n, k] = GetParam();
  const auto inst = test::random_instance(n, n * 3 + 1);
  const NeighborLists lists(inst, k);
  EXPECT_EQ(lists.k(), std::min(k, n - 1));
  for (CityId c = 0; c < n; ++c) {
    const auto got = lists.of(c);
    const auto want = brute_k_nearest(inst, c, lists.k());
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      // Ties can permute candidates; distances must match exactly.
      EXPECT_EQ(inst.distance(c, got[i]), inst.distance(c, want[i]));
      EXPECT_NE(got[i], c);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NeighborSizes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{2, 1},
                      std::pair<std::size_t, std::size_t>{10, 3},
                      std::pair<std::size_t, std::size_t>{50, 8},
                      std::pair<std::size_t, std::size_t>{200, 10},
                      std::pair<std::size_t, std::size_t>{50, 100}));

TEST(Neighbors, SortedAscending) {
  const auto inst = test::random_instance(100, 9);
  const NeighborLists lists(inst, 10);
  for (CityId c = 0; c < 100; ++c) {
    const auto nb = lists.of(c);
    for (std::size_t i = 1; i < nb.size(); ++i) {
      EXPECT_LE(inst.distance(c, nb[i - 1]), inst.distance(c, nb[i]));
    }
  }
}

TEST(Neighbors, ExplicitMatrixPath) {
  const auto base = test::random_instance(30, 21);
  const auto expl = test::to_explicit(base);
  const NeighborLists from_coords(base, 5);
  const NeighborLists from_matrix(expl, 5);
  for (CityId c = 0; c < 30; ++c) {
    const auto a = from_coords.of(c);
    const auto b = from_matrix.of(c);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(base.distance(c, a[i]), expl.distance(c, b[i]));
    }
  }
}

// Large enough that the kd-tree build spans several parallel chunks on
// the shared pool; every list must still match the brute-force answer.
TEST(Neighbors, ParallelCoordBuildMatchesBruteForce) {
  const std::size_t n = 700;
  const auto inst = test::random_instance(n, 77);
  const NeighborLists lists(inst, 12);
  for (CityId c = 0; c < n; ++c) {
    const auto got = lists.of(c);
    const auto want = brute_k_nearest(inst, c, lists.k());
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(inst.distance(c, got[i]), inst.distance(c, want[i]));
    }
  }
}

// Same for the explicit-matrix path (n > one chunk), which also exercises
// the per-chunk reused candidate buffer.
TEST(Neighbors, ParallelMatrixBuildMatchesBruteForce) {
  const std::size_t n = 300;
  const auto base = test::random_instance(n, 31);
  const auto expl = test::to_explicit(base);
  const NeighborLists lists(expl, 10);
  for (CityId c = 0; c < n; ++c) {
    const auto got = lists.of(c);
    const auto want = brute_k_nearest(expl, c, lists.k());
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(expl.distance(c, got[i]), expl.distance(c, want[i]));
    }
  }
}

TEST(Neighbors, TooSmallInstanceThrows) {
  const auto inst = test::random_instance(1, 1);
  EXPECT_THROW(NeighborLists(inst, 3), ConfigError);
}

// Blocked candidate distances must equal the metric exactly on both build
// paths — consumers substitute dist_of() for instance.distance() and rely
// on bit-identical values.
TEST(Neighbors, CandidateDistancesMatchMetric) {
  const auto inst = test::random_instance(250, 55);
  const auto expl = test::to_explicit(test::random_instance(90, 56));
  for (const Instance* target : {&inst, &expl}) {
    const NeighborLists lists(*target, 9, {.with_distances = true});
    ASSERT_TRUE(lists.has_distances());
    for (CityId c = 0; c < target->size(); ++c) {
      const auto nb = lists.of(c);
      const auto nd = lists.dist_of(c);
      ASSERT_EQ(nb.size(), nd.size());
      for (std::size_t i = 0; i < nb.size(); ++i) {
        EXPECT_EQ(nd[i], target->distance(c, nb[i]));
      }
    }
  }
}

TEST(Neighbors, DistancesAbsentByDefault) {
  const auto inst = test::random_instance(40, 3);
  const NeighborLists lists(inst, 5);
  EXPECT_FALSE(lists.has_distances());
  EXPECT_TRUE(lists.dist_of(0).empty());
}

// Tile determinism: the whole lists_/dists_ images must be bit-identical
// across repeated builds in the same process (the pool's worker count and
// scheduling must never leak into tile contents). The ctest registrations
// additionally rerun this binary under CIMANNEAL_THREADS=1/2/8 and the
// brute-force oracles above pin the absolute answer, so worker-count
// variation across processes is covered too.
TEST(Neighbors, TileDeterminismAcrossRebuilds) {
  const std::size_t n = 500;
  const auto inst = test::random_instance(n, 91);
  const NeighborLists first(inst, 11, {.with_distances = true});
  for (int rebuild = 0; rebuild < 3; ++rebuild) {
    const NeighborLists again(inst, 11, {.with_distances = true});
    for (CityId c = 0; c < n; ++c) {
      const auto a = first.of(c);
      const auto b = again.of(c);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
      const auto da = first.dist_of(c);
      const auto db = again.dist_of(c);
      ASSERT_TRUE(std::equal(da.begin(), da.end(), db.begin(), db.end()));
    }
  }
}

}  // namespace
}  // namespace cim::tsp
