#include "util/random.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace cim::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(7);
  const auto first = rng();
  rng.reseed(7);
  EXPECT_EQ(rng(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 5.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentred) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7U);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0U);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(Rng, PickReturnsElement) {
  Rng rng(37);
  const std::vector<int> v{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.pick(v));
  EXPECT_EQ(seen.size(), 3U);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(41);
  Rng child = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RandomPermutation, IsValidPermutation) {
  Rng rng(43);
  const auto perm = random_permutation(257, rng);
  ASSERT_EQ(perm.size(), 257U);
  std::vector<char> seen(257, 0);
  for (const auto v : perm) {
    ASSERT_LT(v, 257U);
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
  }
}

TEST(Splitmix, DeterministicAndMixing) {
  std::uint64_t s1 = 1;
  std::uint64_t s2 = 1;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  std::uint64_t s3 = 2;
  EXPECT_NE(splitmix64(s1), splitmix64(s3));
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

}  // namespace
}  // namespace cim::util
