#include "tsp/tour.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::tsp {
namespace {

TEST(Tour, IdentityIsValid) {
  const Tour t = Tour::identity(5);
  EXPECT_TRUE(t.is_valid(5));
  EXPECT_FALSE(t.is_valid(4));
  EXPECT_FALSE(t.is_valid(6));
}

TEST(Tour, InvalidTours) {
  EXPECT_FALSE(Tour({0, 1, 1}).is_valid(3));       // duplicate
  EXPECT_FALSE(Tour({0, 1, 5}).is_valid(3));       // out of range
  EXPECT_FALSE(Tour({0, 1}).is_valid(3));          // missing city
}

TEST(Tour, LengthIsCyclic) {
  const Instance inst("sq", geo::Metric::kEuc2D,
                      {{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  EXPECT_EQ(Tour::identity(4).length(inst), 40);
  // Crossing diagonal order is longer.
  const Tour crossed({0, 2, 1, 3});
  EXPECT_GT(crossed.length(inst), 40);
}

TEST(Tour, SingleAndPairLengths) {
  const Instance one("one", geo::Metric::kEuc2D, {{0, 0}});
  EXPECT_EQ(Tour::identity(1).length(one), 0);
  const Instance two("two", geo::Metric::kEuc2D, {{0, 0}, {7, 0}});
  // A 2-city "cycle" traverses the edge twice.
  EXPECT_EQ(Tour::identity(2).length(two), 14);
}

TEST(Tour, SuccessorPredecessorWrap) {
  const Tour t({3, 1, 0, 2});
  EXPECT_EQ(t.successor(3), 3U);
  EXPECT_EQ(t.predecessor(0), 2U);
  EXPECT_EQ(t.successor(0), 1U);
}

TEST(Tour, PositionOfInvertsOrder) {
  const Tour t({3, 1, 0, 2});
  const auto pos = t.position_of();
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(pos[t.at(i)], i);
  }
}

TEST(Tour, ReverseSegment) {
  Tour t({0, 1, 2, 3, 4});
  t.reverse_segment(1, 3);
  EXPECT_EQ(t.order()[1], 3U);
  EXPECT_EQ(t.order()[2], 2U);
  EXPECT_EQ(t.order()[3], 1U);
  EXPECT_TRUE(t.is_valid(5));
}

TEST(Tour, ReverseWholeKeepsLength) {
  const auto inst = test::random_instance(20, 3);
  Tour t = Tour::identity(20);
  const long long before = t.length(inst);
  t.reverse_segment(0, 19);
  EXPECT_EQ(t.length(inst), before);
}

TEST(Tour, EqualityOperator) {
  EXPECT_EQ(Tour({0, 1, 2}), Tour({0, 1, 2}));
  EXPECT_FALSE(Tour({0, 1, 2}) == Tour({0, 2, 1}));
}

TEST(OptimalRatio, Basics) {
  EXPECT_DOUBLE_EQ(optimal_ratio(150, 100), 1.5);
  EXPECT_DOUBLE_EQ(optimal_ratio(100, 100), 1.0);
}

TEST(Tour, LengthMatchesManualSum) {
  const auto inst = test::random_instance(50, 17);
  util::Rng rng(5);
  auto perm = util::random_permutation(50, rng);
  const Tour t{std::vector<CityId>(perm.begin(), perm.end())};
  long long manual = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    manual += inst.distance(t.at(i), t.at((i + 1) % 50));
  }
  EXPECT_EQ(t.length(inst), manual);
}

}  // namespace
}  // namespace cim::tsp
