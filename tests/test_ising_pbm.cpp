#include "ising/pbm.hpp"

#include <gtest/gtest.h>

#include "heuristics/construct.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::ising {
namespace {

class PbmSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PbmSizes, SwapDeltaMatchesLengthDelta) {
  const std::size_t n = GetParam();
  const auto inst = test::random_instance(n, n * 3 + 7);
  util::Rng rng(n);
  PbmState state(inst, heuristics::random_tour(inst, 1));
  for (int trial = 0; trial < 200; ++trial) {
    const auto i = static_cast<std::size_t>(rng.below(n));
    const auto j = static_cast<std::size_t>(rng.below(n));
    const long long predicted = state.swap_delta(i, j);
    const long long before = state.recompute_length();
    state.apply_swap(i, j);
    const long long after = state.recompute_length();
    EXPECT_EQ(after - before, predicted)
        << "n=" << n << " i=" << i << " j=" << j;
    EXPECT_EQ(state.length(), after);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PbmSizes,
                         ::testing::Values<std::size_t>(2, 3, 4, 5, 8, 16,
                                                        40));

TEST(Pbm, AdjacentSwapExplicit) {
  // Hand-checked: square 0-1-2-3, swap orders 1 and 2.
  const tsp::Instance inst("sq", geo::Metric::kEuc2D,
                           {{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  PbmState state(inst, tsp::Tour::identity(4));
  EXPECT_EQ(state.length(), 40);
  // Swapping cities at orders 1,2 crosses the square: new tour 0,2,1,3
  // has two diagonals (14 each) and two sides: 14+14+10+10 = 48... check
  // via recompute rather than hand arithmetic:
  const long long delta = state.swap_delta(1, 2);
  state.apply_swap(1, 2);
  EXPECT_EQ(state.length(), state.recompute_length());
  EXPECT_EQ(state.length(), 40 + delta);
  EXPECT_GT(delta, 0);
}

TEST(Pbm, WrapAroundSwap) {
  const auto inst = test::random_instance(6, 55);
  PbmState state(inst, tsp::Tour::identity(6));
  // Swap the first and last orders (cyclically adjacent).
  const long long predicted = state.swap_delta(0, 5);
  const long long before = state.recompute_length();
  state.apply_swap(0, 5);
  EXPECT_EQ(state.recompute_length() - before, predicted);
}

TEST(Pbm, SelfSwapIsZero) {
  const auto inst = test::random_instance(5, 56);
  PbmState state(inst, tsp::Tour::identity(5));
  EXPECT_EQ(state.swap_delta(2, 2), 0);
}

TEST(Pbm, SwapIsItsOwnInverse) {
  const auto inst = test::random_instance(12, 57);
  PbmState state(inst, heuristics::random_tour(inst, 2));
  const long long initial = state.length();
  state.apply_swap(3, 9);
  state.apply_swap(3, 9);
  EXPECT_EQ(state.length(), initial);
}

TEST(Pbm, LocalEnergyMatchesAdjacency) {
  const auto inst = test::random_instance(9, 58);
  const auto tour = heuristics::random_tour(inst, 3);
  PbmState state(inst, tour);
  for (std::size_t order = 0; order < 9; ++order) {
    const tsp::CityId city = tour.at(order);
    const long long expected =
        inst.distance(city, tour.predecessor(order)) +
        inst.distance(city, tour.successor(order));
    EXPECT_EQ(state.local_energy(order, city), expected);
  }
}

TEST(Pbm, InvalidInitialTourThrows) {
  const auto inst = test::random_instance(5, 59);
  EXPECT_THROW(PbmState(inst, tsp::Tour({0, 1})), ConfigError);
}

TEST(Pbm, GreedySwapDescentImproves) {
  // Driving PBM swaps greedily is a crude solver; it must improve a
  // random tour.
  const auto inst = test::random_instance(40, 60);
  PbmState state(inst, heuristics::random_tour(inst, 4));
  const long long initial = state.length();
  util::Rng rng(5);
  for (int step = 0; step < 4000; ++step) {
    const auto i = static_cast<std::size_t>(rng.below(40));
    const auto j = static_cast<std::size_t>(rng.below(40));
    if (state.swap_delta(i, j) < 0) state.apply_swap(i, j);
  }
  EXPECT_LT(state.length(), initial);
  EXPECT_EQ(state.length(), state.recompute_length());
}

}  // namespace
}  // namespace cim::ising
