// util::telemetry unit tests: metric semantics (counter monotonicity,
// histogram bucket edges, gauge last-write, reset), trace-event begin/end
// nesting, the deterministic sink-merge contract, and the exported JSON
// (snapshot schema version, Chrome-trace round-trip through the strict
// util::Json parser).
//
// The pool stress cases double as the TSan workload for the telemetry
// layer: many pool tasks hammer one counter / histogram / scope while the
// test asserts the merged output is independent of the interleaving.
#include "util/telemetry.hpp"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace cim::util::telemetry {
namespace {

#if CIMANNEAL_TELEMETRY_ENABLED

TEST(TelemetryCounter, MonotonicAcrossStripesAndReset) {
  Registry registry;
  Counter& counter = registry.counter("t.counter");
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  // Same name resolves to the same counter object.
  EXPECT_EQ(&registry.counter("t.counter"), &counter);
  registry.counter("t.counter").add(8);
  EXPECT_EQ(counter.value(), 50u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(TelemetryCounter, ExactUnderConcurrentStripedWriters) {
  Registry registry;
  Counter& counter = registry.counter("t.stress");
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kAddsPerTask = 1000;
  ThreadPool pool(4);
  pool.run(kTasks, [&counter](std::size_t) {
    for (std::uint64_t i = 0; i < kAddsPerTask; ++i) counter.add();
  });
  // Stripe sums are exact whatever the interleaving: unsigned addition
  // commutes.
  EXPECT_EQ(counter.value(), kTasks * kAddsPerTask);
}

TEST(TelemetryGauge, LastWriteWinsAndReset) {
  Registry registry;
  Gauge& gauge = registry.gauge("t.gauge");
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(2.5);
  gauge.set(-7.25);
  EXPECT_EQ(gauge.value(), -7.25);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(TelemetryHistogram, BucketEdgesAreInclusiveUpperBounds) {
  Registry registry;
  Histogram& hist = registry.histogram("t.hist", {1.0, 2.0, 4.0});
  EXPECT_EQ(hist.bucket_count(), 4u);  // 3 edges + overflow

  hist.observe(0.5);  // <= 1.0        -> bucket 0
  hist.observe(1.0);  // == edge 1.0   -> bucket 0 (edges are inclusive)
  hist.observe(1.5);  // <= 2.0        -> bucket 1
  hist.observe(4.0);  // == edge 4.0   -> bucket 2
  hist.observe(9.0);  // above last    -> overflow bucket 3

  EXPECT_EQ(hist.count_in_bucket(0), 2u);
  EXPECT_EQ(hist.count_in_bucket(1), 1u);
  EXPECT_EQ(hist.count_in_bucket(2), 1u);
  EXPECT_EQ(hist.count_in_bucket(3), 1u);
  EXPECT_EQ(hist.total_count(), 5u);

  hist.reset();
  EXPECT_EQ(hist.total_count(), 0u);
  for (std::size_t b = 0; b < hist.bucket_count(); ++b) {
    EXPECT_EQ(hist.count_in_bucket(b), 0u);
  }
}

TEST(TelemetryHistogram, ReRegistrationValidatesEdges) {
  Registry registry;
  registry.histogram("t.hist", {1.0, 2.0});
  EXPECT_NO_THROW(registry.histogram("t.hist", {1.0, 2.0}));
  EXPECT_THROW(registry.histogram("t.hist", {1.0, 3.0}), ConfigError);
  EXPECT_THROW(Registry().histogram("t.bad", {}), ConfigError);
  EXPECT_THROW(Registry().histogram("t.bad", {2.0, 1.0}), ConfigError);
}

TEST(TelemetryTrace, SingleThreadEventsKeepProgramOrder) {
  Registry registry;
  registry.begin("outer", {{"k", 1.0}});
  registry.instant("mark");
  registry.begin("inner");
  registry.end("inner");
  registry.counter_event("sample", {{"v", 3.0}});
  registry.end("outer");

  const auto events = registry.merged_events();
  ASSERT_EQ(events.size(), 6u);
  const char phases[] = {'B', 'i', 'B', 'E', 'C', 'E'};
  const char* names[] = {"outer", "mark", "inner", "inner", "sample",
                         "outer"};
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].phase, phases[i]) << i;
    EXPECT_EQ(events[i].name, names[i]) << i;
    EXPECT_EQ(events[i].tid, 0u) << i;  // one sink, merged first
  }
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "k");
  EXPECT_EQ(events[0].args[0].value, 1.0);
  // Timestamps are monotone within one sink.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST(TelemetryTrace, ScopeEmitsMatchedBeginEnd) {
  Registry registry;
  {
    const Scope scope(registry, "scoped", {{"arg", 7.0}});
    registry.instant("inside");
  }
  const auto events = registry.merged_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[0].name, "scoped");
  EXPECT_EQ(events[1].name, "inside");
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_EQ(events[2].name, "scoped");
}

TEST(TelemetryTrace, ResetDropsEventsButKeepsMetricStorage) {
  Registry registry;
  Counter& counter = registry.counter("t.kept");
  counter.add(3);
  registry.instant("gone");
  registry.reset();
  EXPECT_TRUE(registry.merged_events().empty());
  EXPECT_EQ(counter.value(), 0u);
  // The reference survives reset and keeps counting.
  counter.add(2);
  EXPECT_EQ(registry.counter("t.kept").value(), 2u);
}

/// Pool stress: tasks emit scopes and metric updates concurrently. The
/// *placement* of a task's events (which worker's sink) is scheduling-
/// dependent by design — what must be invariant is the aggregate: exact
/// metric totals, one matched B/E pair per task, and well-nested
/// per-sink streams in every run.
TEST(TelemetryTrace, PoolStressAggregatesAreInterleavingIndependent) {
  constexpr std::size_t kTasks = 48;
  constexpr int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    Registry registry;
    Counter& counter = registry.counter("t.pool");
    Histogram& hist = registry.histogram("t.pool_hist", {8.0, 24.0, 48.0});
    ThreadPool pool(4);
    pool.run(kTasks, [&](std::size_t task) {
      const Scope scope(registry, "stress.task",
                        {{"task", static_cast<double>(task)}});
      counter.add(task + 1);
      hist.observe(static_cast<double>(task));
    });

    EXPECT_EQ(counter.value(), kTasks * (kTasks + 1) / 2);
    EXPECT_EQ(hist.total_count(), kTasks);

    const auto events = registry.merged_events();
    std::size_t begins = 0;
    std::size_t ends = 0;
    std::map<std::uint64_t, int> depth_by_tid;
    for (const TraceEvent& event : events) {
      if (event.phase == 'B') {
        ++begins;
        ++depth_by_tid[event.tid];
      } else if (event.phase == 'E') {
        ++ends;
        // Per-sink streams are program order, so nesting never goes
        // negative inside any one sink.
        EXPECT_GT(depth_by_tid[event.tid], 0);
        --depth_by_tid[event.tid];
      }
    }
    EXPECT_EQ(begins, kTasks);
    EXPECT_EQ(ends, kTasks);
    for (const auto& [tid, depth] : depth_by_tid) {
      EXPECT_EQ(depth, 0) << "unbalanced scope in sink " << tid;
    }
  }
}

TEST(TelemetrySnapshot, CarriesSchemaVersionAndSortedMetrics) {
  Registry registry;
  registry.counter("b.second").add(2);
  registry.counter("a.first").add(1);
  registry.gauge("g.value").set(1.5);
  registry.histogram("h.hist", {10.0}).observe(3.0);

  const Json snap = registry.snapshot();
  EXPECT_EQ(snap.at("schema_version").integer(), kSchemaVersion);
  EXPECT_TRUE(snap.at("telemetry_enabled").boolean());
  const Json& counters = snap.at("counters");
  ASSERT_EQ(counters.size(), 2u);
  // std::map iteration == lexicographic name order.
  EXPECT_EQ(counters.key_at(0), "a.first");
  EXPECT_EQ(counters.key_at(1), "b.second");
  EXPECT_EQ(counters.at("a.first").integer(), 1);
  EXPECT_EQ(snap.at("gauges").at("g.value").number(), 1.5);
  const Json& hist = snap.at("histograms").at("h.hist");
  EXPECT_EQ(hist.at("edges").size(), 1u);
  EXPECT_EQ(hist.at("counts").size(), 2u);
  EXPECT_EQ(hist.at("counts").at(std::size_t{0}).integer(), 1);
  EXPECT_EQ(hist.at("total").integer(), 1);
}

TEST(TelemetryChromeTrace, RoundTripsThroughJsonParser) {
  Registry registry;
  {
    const Scope scope(registry, "solve", {{"cities", 100.0}});
    registry.counter_event("epoch", {{"energy", 123.5}, {"accepted", 7.0}});
  }
  const Json parsed = Json::parse(registry.chrome_trace().dump());
  EXPECT_EQ(parsed.at("schema_version").integer(), kSchemaVersion);
  const Json& events = parsed.at("traceEvents");
  ASSERT_EQ(events.size(), 3u);

  const Json& begin = events.at(std::size_t{0});
  EXPECT_EQ(begin.at("name").str(), "solve");
  EXPECT_EQ(begin.at("ph").str(), "B");
  EXPECT_EQ(begin.at("pid").integer(), 1);
  EXPECT_EQ(begin.at("tid").integer(), 0);
  EXPECT_GE(begin.at("ts").number(), 0.0);
  EXPECT_EQ(begin.at("args").at("cities").number(), 100.0);

  const Json& sample = events.at(std::size_t{1});
  EXPECT_EQ(sample.at("ph").str(), "C");
  EXPECT_EQ(sample.at("args").at("energy").number(), 123.5);
  EXPECT_EQ(sample.at("args").at("accepted").number(), 7.0);

  EXPECT_EQ(events.at(std::size_t{2}).at("ph").str(), "E");
  EXPECT_EQ(events.at(std::size_t{2}).find("args"), nullptr);
}

#else  // !CIMANNEAL_TELEMETRY_ENABLED

TEST(TelemetryStub, ExportsCarryDisabledMarker) {
  Registry& registry = Registry::global();
  registry.counter("noop").add(5);
  EXPECT_EQ(registry.counter("noop").value(), 0u);
  EXPECT_TRUE(registry.merged_events().empty());
  const Json snap = registry.snapshot();
  EXPECT_EQ(snap.at("schema_version").integer(), kSchemaVersion);
  EXPECT_FALSE(snap.at("telemetry_enabled").boolean());
  const Json trace = registry.chrome_trace();
  EXPECT_FALSE(trace.at("telemetry_enabled").boolean());
  EXPECT_EQ(trace.at("traceEvents").size(), 0u);
}

#endif  // CIMANNEAL_TELEMETRY_ENABLED

}  // namespace
}  // namespace cim::util::telemetry
