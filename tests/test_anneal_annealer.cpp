#include "anneal/clustered_annealer.hpp"

#include <gtest/gtest.h>

#include "heuristics/construct.hpp"
#include "heuristics/exact.hpp"
#include "test_helpers.hpp"
#include "tsp/generator.hpp"
#include "util/error.hpp"

namespace cim::anneal {
namespace {

AnnealerConfig base_config() {
  AnnealerConfig config;
  config.clustering.strategy = cluster::Strategy::kSemiFlexible;
  config.clustering.p = 3;
  config.seed = 1;
  return config;
}

struct ModeCase {
  NoiseMode mode;
  cluster::Strategy strategy;
  std::uint32_t p;
};

class AnnealerModes : public ::testing::TestWithParam<ModeCase> {};

TEST_P(AnnealerModes, ProducesValidToursOnAllModes) {
  const auto [mode, strategy, p] = GetParam();
  const auto inst = test::random_instance(150, 42);
  AnnealerConfig config = base_config();
  config.noise = mode;
  config.clustering.strategy = strategy;
  config.clustering.p = p;
  const ClusteredAnnealer annealer(config);
  const auto result = annealer.solve(inst);
  EXPECT_TRUE(result.tour.is_valid(150));
  EXPECT_EQ(result.length, result.tour.length(inst));
  EXPECT_GE(result.hierarchy_depth, 1U);
  EXPECT_FALSE(result.levels.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, AnnealerModes,
    ::testing::Values(
        ModeCase{NoiseMode::kSramWeight, cluster::Strategy::kSemiFlexible, 3},
        ModeCase{NoiseMode::kSramSpin, cluster::Strategy::kSemiFlexible, 3},
        ModeCase{NoiseMode::kLfsr, cluster::Strategy::kSemiFlexible, 3},
        ModeCase{NoiseMode::kNone, cluster::Strategy::kSemiFlexible, 3},
        ModeCase{NoiseMode::kSramWeight, cluster::Strategy::kFixed, 2},
        ModeCase{NoiseMode::kSramWeight, cluster::Strategy::kFixed, 4},
        ModeCase{NoiseMode::kSramWeight, cluster::Strategy::kUnlimited, 3},
        ModeCase{NoiseMode::kSramWeight, cluster::Strategy::kSemiFlexible,
                 2},
        ModeCase{NoiseMode::kSramWeight, cluster::Strategy::kSemiFlexible,
                 4}));

TEST(Annealer, BeatsRandomTourByFar) {
  const auto inst = test::random_instance(300, 7);
  const ClusteredAnnealer annealer(base_config());
  const auto result = annealer.solve(inst);
  const auto random = heuristics::random_tour(inst, 1);
  EXPECT_LT(result.length, random.length(inst) / 2);
}

TEST(Annealer, SeedDeterminism) {
  const auto inst = test::random_instance(120, 9);
  AnnealerConfig config = base_config();
  config.seed = 12345;
  const ClusteredAnnealer annealer(config);
  const auto a = annealer.solve(inst);
  const auto b = annealer.solve(inst);
  EXPECT_EQ(a.length, b.length);
  EXPECT_EQ(a.tour, b.tour);
}

TEST(Annealer, DifferentSeedsExploreDifferently) {
  // Different seeds change both the clustering tie-breaking and the
  // annealing randomness; across a few seeds at least two outcomes must
  // differ (a single pair can legitimately coincide after convergence).
  const auto inst = test::random_instance(200, 10);
  std::vector<tsp::Tour> tours;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    AnnealerConfig config = base_config();
    config.seed = seed;
    config.clustering.seed = seed;
    tours.push_back(ClusteredAnnealer(config).solve(inst).tour);
  }
  EXPECT_TRUE(!(tours[0] == tours[1]) || !(tours[0] == tours[2]));
}

TEST(Annealer, TinyInstances) {
  for (std::size_t n : {1U, 2U, 3U, 4U, 5U, 7U}) {
    const auto inst = test::random_instance(n, n + 33);
    const ClusteredAnnealer annealer(base_config());
    const auto result = annealer.solve(inst);
    EXPECT_TRUE(result.tour.is_valid(n)) << "n=" << n;
  }
}

TEST(Annealer, OptimalOnTinyInstances) {
  // n ≤ 4: the top-ring enumeration alone must give the optimum.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = test::random_instance(4, 60 + seed);
    const auto result = ClusteredAnnealer(base_config()).solve(inst);
    const auto optimal = heuristics::brute_force(inst);
    EXPECT_EQ(result.length, optimal.length(inst));
  }
}

TEST(Annealer, LevelStatsAreConsistent) {
  const auto inst = test::random_instance(200, 11);
  const ClusteredAnnealer annealer(base_config());
  const auto result = annealer.solve(inst);
  EXPECT_EQ(result.levels.size(), result.hierarchy_depth);
  for (const auto& level : result.levels) {
    EXPECT_GE(level.swaps_attempted, level.swaps_accepted);
    EXPECT_GT(level.clusters, 0U);
    EXPECT_EQ(level.iterations, 400U);
    EXPECT_GT(level.update_cycles, 0U);
    EXPECT_GT(level.ring_length_after, 0.0);
  }
  // Levels are emitted top-down; the last is the city level.
  EXPECT_EQ(result.levels.back().level, 0U);
}

TEST(Annealer, HardwareCountersPopulated) {
  const auto inst = test::random_instance(150, 12);
  const ClusteredAnnealer annealer(base_config());
  const auto result = annealer.solve(inst);
  EXPECT_GT(result.hw.swap_attempts, 0U);
  EXPECT_GT(result.hw.storage.macs, 0U);
  // 4 MACs per swap attempt, exactly (clusters of size ≥ 2 only).
  EXPECT_EQ(result.hw.storage.macs, result.hw.swap_attempts * 4U);
  EXPECT_GT(result.hw.storage.writeback_events, 0U);
  EXPECT_GT(result.hw.update_cycles, 0U);
  EXPECT_GT(result.hw.writeback_cycles, 0U);
  EXPECT_GT(result.hw.dataflow.edge_bits_transferred(), 0U);
}

TEST(Annealer, UphillMovesOnlyWithNoise) {
  const auto inst = test::random_instance(200, 21);
  const auto uphill_total = [&](NoiseMode mode) {
    AnnealerConfig config = base_config();
    config.noise = mode;
    const auto result = ClusteredAnnealer(config).solve(inst);
    std::size_t total = 0;
    for (const auto& level : result.levels) total += level.uphill_accepted;
    return total;
  };
  // Greedy descent never accepts a truly uphill swap; noisy modes do
  // (quantisation alone can produce a handful of tiny "uphill" accepts in
  // greedy mode, hence the strict-zero check uses the exact-delta margin).
  EXPECT_EQ(uphill_total(NoiseMode::kNone), 0U);
  EXPECT_GT(uphill_total(NoiseMode::kSramWeight), 0U);
  EXPECT_GT(uphill_total(NoiseMode::kLfsr), 0U);
}

TEST(Annealer, SramWeightNoiseInjectsFlips) {
  const auto inst = test::random_instance(150, 13);
  AnnealerConfig config = base_config();
  config.noise = NoiseMode::kSramWeight;
  const auto result = ClusteredAnnealer(config).solve(inst);
  EXPECT_GT(result.hw.storage.pseudo_read_flips, 0U);
}

TEST(Annealer, CleanModesHaveNoFlips) {
  const auto inst = test::random_instance(150, 13);
  for (const NoiseMode mode : {NoiseMode::kNone, NoiseMode::kLfsr}) {
    AnnealerConfig config = base_config();
    config.noise = mode;
    const auto result = ClusteredAnnealer(config).solve(inst);
    EXPECT_EQ(result.hw.storage.pseudo_read_flips, 0U);
  }
}

TEST(Annealer, TraceRecordsLevelZeroIterations) {
  const auto inst = test::random_instance(100, 14);
  AnnealerConfig config = base_config();
  config.record_trace = true;
  const auto result = ClusteredAnnealer(config).solve(inst);
  EXPECT_EQ(result.trace.size(), 400U);
  for (const double len : result.trace) EXPECT_GT(len, 0.0);
  // The level-0 ring length converges downwards overall.
  EXPECT_LE(result.trace.back(), result.trace.front());
}

TEST(Annealer, SequentialGibbsAblation) {
  // Sequential updates: same machinery, more cycles for the same sweep.
  const auto inst = test::random_instance(150, 15);
  AnnealerConfig par = base_config();
  AnnealerConfig seq = base_config();
  seq.chromatic_parallel = false;
  const auto rp = ClusteredAnnealer(par).solve(inst);
  const auto rs = ClusteredAnnealer(seq).solve(inst);
  EXPECT_TRUE(rs.tour.is_valid(150));
  EXPECT_GT(rs.hw.update_cycles, rp.hw.update_cycles);
  // Solution quality comparable: within 25% of each other.
  EXPECT_LT(static_cast<double>(rs.length),
            static_cast<double>(rp.length) * 1.25);
  EXPECT_LT(static_cast<double>(rp.length),
            static_cast<double>(rs.length) * 1.25);
}

TEST(Annealer, BitLevelBackendMatchesFastBackend) {
  // With the settle-at-write-back policy both backends read identical
  // corrupted weights, so the whole anneal must be bit-identical.
  const auto inst = test::random_instance(60, 16);
  AnnealerConfig fast = base_config();
  fast.backend = BackendKind::kFast;
  AnnealerConfig bits = base_config();
  bits.backend = BackendKind::kBitLevel;
  const auto rf = ClusteredAnnealer(fast).solve(inst);
  const auto rb = ClusteredAnnealer(bits).solve(inst);
  EXPECT_EQ(rf.tour, rb.tour);
  EXPECT_EQ(rf.length, rb.length);
}

TEST(Annealer, ReducedPrecisionStillSolves) {
  const auto inst = test::random_instance(100, 17);
  AnnealerConfig config = base_config();
  config.weight_bits = 4;
  config.schedule.lsb_start = 3;
  const auto result = ClusteredAnnealer(config).solve(inst);
  EXPECT_TRUE(result.tour.is_valid(100));
}

TEST(Annealer, ShortScheduleWorks) {
  const auto inst = test::random_instance(100, 18);
  AnnealerConfig config = base_config();
  config.schedule.total_iterations = 40;
  config.schedule.iterations_per_step = 5;
  const auto result = ClusteredAnnealer(config).solve(inst);
  EXPECT_TRUE(result.tour.is_valid(100));
  EXPECT_EQ(result.levels.front().iterations, 40U);
}

TEST(Annealer, InvalidConfigThrows) {
  AnnealerConfig config = base_config();
  config.weight_bits = 0;
  EXPECT_THROW(ClusteredAnnealer{config}, ConfigError);
  config = base_config();
  config.weight_bits = 9;
  EXPECT_THROW(ClusteredAnnealer{config}, ConfigError);
}

TEST(Annealer, WarmStartFromPreviousTour) {
  // Seeding with a previous solve's tour (the src/store warm-start path)
  // must produce a valid tour, be deterministic, and not lose the warm
  // tour's quality by more than the anneal can recover — on a re-solve of
  // the same instance the warm result should be at least competitive.
  const auto inst = test::random_instance(120, 7);
  auto config = base_config();
  const auto cold = ClusteredAnnealer(config).solve(inst);
  const auto cold_order = cold.tour.order();
  config.initial_order.assign(cold_order.begin(), cold_order.end());
  const auto warm_a = ClusteredAnnealer(config).solve(inst);
  const auto warm_b = ClusteredAnnealer(config).solve(inst);
  EXPECT_TRUE(warm_a.tour.is_valid(120));
  EXPECT_TRUE(warm_a.tour == warm_b.tour);
  EXPECT_EQ(warm_a.length, warm_b.length);
  // The warm construction preserves the tour's visiting order through the
  // hierarchy, so the warm solve starts near the cold optimum instead of
  // the cold construction's starting point.
  EXPECT_LE(warm_a.length, cold.length * 3 / 2);
}

TEST(Annealer, WarmStartValidation) {
  const auto inst = test::random_instance(30, 3);
  auto config = base_config();
  config.initial_order.assign(10, 0);  // wrong size
  EXPECT_THROW(ClusteredAnnealer(config).solve(inst), ConfigError);
  config.initial_order.resize(30);
  for (std::uint32_t i = 0; i < 30; ++i) config.initial_order[i] = i;
  config.initial_order[5] = 4;  // duplicate
  EXPECT_THROW(ClusteredAnnealer(config).solve(inst), ConfigError);
  config.initial_order[5] = 5;
  EXPECT_NO_THROW(ClusteredAnnealer(config).solve(inst));
}

TEST(Annealer, DistanceCacheCountersPopulateAtLevelZero) {
  // Level 0 routes exact-distance queries (window build, ring scoring,
  // accepted-swap deltas) through the sharded distance cache; its traffic
  // lands in the level stats. Upper levels use centroid geometry and
  // never touch the cache.
  const auto inst = test::random_instance(100, 13);
  const auto result = ClusteredAnnealer(base_config()).solve(inst);
  ASSERT_FALSE(result.levels.empty());
  const auto& level0 = result.levels.back();  // levels are top-first
  EXPECT_EQ(level0.level, 0U);
  EXPECT_GT(level0.dcache_hits + level0.dcache_misses, 0U);
  EXPECT_GT(level0.dcache_hits, 0U);  // window build re-queries pairs
  EXPECT_GT(level0.dcache_bytes, 0U);
  for (const auto& level : result.levels) {
    if (level.level != 0) {
      EXPECT_EQ(level.dcache_hits + level.dcache_misses, 0U);
    }
  }
}

TEST(Annealer, ClusteredStructureInstance) {
  // On a clustered instance (the annealer's home turf) quality should be
  // decent: within 2x of the greedy reference.
  const auto inst = tsp::make_paper_instance("rl900");
  const auto result = ClusteredAnnealer(base_config()).solve(inst);
  const auto greedy = heuristics::greedy_edge(inst);
  EXPECT_LT(result.length, greedy.length(inst) * 2);
}

}  // namespace
}  // namespace cim::anneal
