#include "ising/model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::ising {
namespace {

IsingModel random_model(std::size_t n, std::size_t edges,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  IsingModel model(n);
  for (std::size_t e = 0; e < edges; ++e) {
    const auto a = static_cast<SpinIndex>(rng.below(n));
    auto b = static_cast<SpinIndex>(rng.below(n - 1));
    if (b >= a) ++b;
    model.add_coupling(a, b, rng.uniform(-2.0, 2.0));
  }
  for (SpinIndex i = 0; i < n; ++i) {
    model.add_field(i, rng.uniform(-1.0, 1.0));
  }
  return model;
}

TEST(IsingModel, HamiltonianOfKnownPair) {
  IsingModel model(2);
  model.add_coupling(0, 1, 1.0);  // ferromagnetic
  const std::vector<Spin> aligned{1, 1};
  const std::vector<Spin> anti{1, -1};
  EXPECT_DOUBLE_EQ(model.hamiltonian(aligned), -1.0);
  EXPECT_DOUBLE_EQ(model.hamiltonian(anti), 1.0);
}

TEST(IsingModel, FieldTerm) {
  IsingModel model(1);
  model.add_field(0, 2.0);
  EXPECT_DOUBLE_EQ(model.hamiltonian(std::vector<Spin>{1}), -2.0);
  EXPECT_DOUBLE_EQ(model.hamiltonian(std::vector<Spin>{-1}), 2.0);
}

TEST(IsingModel, FlipDeltaMatchesRecompute) {
  const auto model = random_model(30, 80, 1);
  util::Rng rng(2);
  auto spins = random_spins(30, rng);
  for (int trial = 0; trial < 100; ++trial) {
    const auto i = static_cast<SpinIndex>(rng.below(30));
    const double before = model.hamiltonian(spins);
    const double predicted = model.flip_delta(spins, i);
    spins[i] = static_cast<Spin>(-spins[i]);
    const double after = model.hamiltonian(spins);
    EXPECT_NEAR(after - before, predicted, 1e-9);
  }
}

TEST(IsingModel, LocalEnergyEquation2) {
  // H(σ_i) = -(Σ_j J_ij σ_j + h_i) σ_i, checked by hand on a triangle.
  IsingModel model(3);
  model.add_coupling(0, 1, 2.0);
  model.add_coupling(0, 2, -1.0);
  model.add_field(0, 0.5);
  const std::vector<Spin> spins{1, 1, -1};
  // Σ = 2·1 + (−1)·(−1) + 0.5 = 3.5 → H(σ_0) = −3.5.
  EXPECT_DOUBLE_EQ(model.local_energy(spins, 0), -3.5);
}

TEST(IsingModel, SumOfLocalEnergiesCountsPairsTwice) {
  const auto model = random_model(20, 40, 3);
  util::Rng rng(4);
  const auto spins = random_spins(20, rng);
  double local_sum = 0.0;
  for (SpinIndex i = 0; i < 20; ++i) {
    local_sum += model.local_energy(spins, i);
  }
  // Each coupling appears in two local energies, each field in one:
  // Σ H(σ_i) = 2·H_couplings + H_fields. Verify via a field-free model.
  IsingModel no_field(20);
  util::Rng rng2(3);
  for (std::size_t e = 0; e < 40; ++e) {
    const auto a = static_cast<SpinIndex>(rng2.below(20));
    auto b = static_cast<SpinIndex>(rng2.below(19));
    if (b >= a) ++b;
    no_field.add_coupling(a, b, rng2.uniform(-2.0, 2.0));
  }
  double lsum = 0.0;
  for (SpinIndex i = 0; i < 20; ++i) {
    lsum += no_field.local_energy(spins, i);
  }
  EXPECT_NEAR(lsum, 2.0 * no_field.hamiltonian(spins), 1e-9);
}

TEST(IsingModel, MetropolisAtZeroTemperatureDescends) {
  const auto model = random_model(50, 120, 5);
  util::Rng rng(6);
  auto spins = random_spins(50, rng);
  double energy = model.hamiltonian(spins);
  for (int sweep = 0; sweep < 20; ++sweep) {
    model.metropolis_sweep(spins, 0.0, rng);
    const double now = model.hamiltonian(spins);
    EXPECT_LE(now, energy + 1e-9);
    energy = now;
  }
}

TEST(IsingModel, MetropolisHighTemperatureAcceptsMost) {
  const auto model = random_model(50, 120, 7);
  util::Rng rng(8);
  auto spins = random_spins(50, rng);
  const std::size_t accepted = model.metropolis_sweep(spins, 1e9, rng);
  EXPECT_GT(accepted, 45U);
}

TEST(IsingModel, ChromaticPartitionIsProper) {
  const auto model = random_model(60, 150, 9);
  const auto colors = model.chromatic_partition();
  ASSERT_EQ(colors.size(), 60U);
  for (SpinIndex i = 0; i < 60; ++i) {
    for (const auto& nb : model.neighbors(i)) {
      EXPECT_NE(colors[i], colors[nb.index])
          << "spins " << i << " and " << nb.index << " share a colour";
    }
  }
}

TEST(IsingModel, ChromaticPartitionOfRingUsesFewColors) {
  // An even cycle is 2-colourable — exactly the paper's odd/even cluster
  // update argument.
  IsingModel ring(8);
  for (SpinIndex i = 0; i < 8; ++i) {
    ring.add_coupling(i, (i + 1) % 8, 1.0);
  }
  const auto colors = ring.chromatic_partition();
  std::uint32_t max_color = 0;
  for (const auto c : colors) max_color = std::max(max_color, c);
  EXPECT_LE(max_color, 1U);
}

TEST(IsingModel, SelfCouplingThrows) {
  IsingModel model(3);
  EXPECT_THROW(model.add_coupling(1, 1, 1.0), ConfigError);
}

TEST(RandomSpins, OnlyPlusMinusOne) {
  util::Rng rng(10);
  const auto spins = random_spins(1000, rng);
  std::size_t up = 0;
  for (const Spin s : spins) {
    EXPECT_TRUE(s == 1 || s == -1);
    up += s == 1;
  }
  EXPECT_GT(up, 400U);
  EXPECT_LT(up, 600U);
}

}  // namespace
}  // namespace cim::ising
