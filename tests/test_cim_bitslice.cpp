// The bit-sliced packed datapath (util/simd.hpp + cim/bitslice.hpp +
// WeightStorage::mac_packed) must be a pure re-layout: for any weight
// image, input vector, backend, pseudo-read policy and noise phase it has
// to reproduce the scalar MACs bit for bit — values, storage state AND
// hardware counters (which model physical row reads, not host
// instructions).
#include "cim/bitslice.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cim/adder_tree.hpp"
#include "cim/storage.hpp"
#include "util/error.hpp"
#include "util/random.hpp"
#include "util/simd.hpp"

namespace cim::hw {
namespace {

std::vector<std::uint8_t> random_image(std::uint32_t rows, std::uint32_t cols,
                                       std::uint32_t bits,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> image(static_cast<std::size_t>(rows) * cols);
  for (auto& w : image) {
    w = static_cast<std::uint8_t>(rng.below(1ULL << bits));
  }
  return image;
}

noise::SchedulePhase phase(std::uint64_t epoch, double vdd,
                           unsigned noisy_lsbs) {
  noise::SchedulePhase p;
  p.epoch = epoch;
  p.vdd = vdd;
  p.noisy_lsbs = noisy_lsbs;
  p.write_back = true;
  return p;
}

PackedBits pack(const std::vector<std::uint8_t>& input) {
  PackedBits packed(static_cast<std::uint32_t>(input.size()));
  for (std::uint32_t r = 0; r < input.size(); ++r) {
    if (input[r]) packed.set(r);
  }
  return packed;
}

TEST(PackedBits, SetClearTestRoundTrip) {
  PackedBits bits(130);  // 3 words, last one partial
  EXPECT_EQ(bits.rows(), 130U);
  EXPECT_EQ(bits.words().size(), packed_words(130));
  for (const std::uint32_t r : {0U, 63U, 64U, 127U, 128U, 129U}) {
    EXPECT_FALSE(bits.test(r));
    bits.set(r);
    EXPECT_TRUE(bits.test(r));
  }
  EXPECT_EQ(bits.words()[0], (std::uint64_t{1} << 63) | 1U);
  bits.clear(63);
  EXPECT_FALSE(bits.test(63));
  EXPECT_EQ(bits.words()[0], 1U);
  bits.resize(10);
  EXPECT_EQ(bits.words().size(), 1U);
  EXPECT_FALSE(bits.test(0));
}

TEST(PackedBits, PackedWordsCount) {
  EXPECT_EQ(packed_words(1), 1U);
  EXPECT_EQ(packed_words(64), 1U);
  EXPECT_EQ(packed_words(65), 2U);
  EXPECT_EQ(packed_words(128), 2U);
  EXPECT_EQ(packed_words(129), 3U);
}

TEST(Simd, AndPopcountMatchesPortableOnAllBackends) {
  // Whatever backend the host resolves (avx2 / neon / portable), the
  // result is exact integer arithmetic and must equal the reference loop
  // at every length, including the vector-body thresholds and tails.
  util::Rng rng(11);
  for (const std::size_t n : {0U, 1U, 3U, 4U, 7U, 8U, 9U, 31U, 64U, 100U}) {
    std::vector<std::uint64_t> a(n);
    std::vector<std::uint64_t> b(n);
    for (auto& w : a) w = rng();
    for (auto& w : b) w = rng();
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expected += util::simd::popcount64(a[i] & b[i]);
    }
    EXPECT_EQ(util::simd::and_popcount(a.data(), b.data(), n), expected)
        << "n=" << n << " backend=" << util::simd::backend();
  }
}

TEST(BitPlaneMatrix, MacMatchesScalarDotProduct) {
  util::Rng rng(13);
  for (const std::uint32_t rows : {5U, 63U, 64U, 70U, 150U}) {
    for (const std::uint32_t bits : {1U, 4U, 8U}) {
      const std::uint32_t cols = 7;
      const auto image = random_image(rows, cols, bits, rows * 31 + bits);
      BitPlaneMatrix matrix;
      matrix.reset(rows, cols, bits);
      for (std::uint32_t r = 0; r < rows; ++r) {
        for (std::uint32_t c = 0; c < cols; ++c) {
          matrix.set_weight(r, c, image[static_cast<std::size_t>(r) * cols + c]);
        }
      }
      for (int trial = 0; trial < 10; ++trial) {
        std::vector<std::uint8_t> input(rows);
        for (auto& v : input) v = rng.chance(0.5) ? 1 : 0;
        const auto packed = pack(input);
        const auto col = static_cast<std::uint32_t>(rng.below(cols));
        std::uint64_t expected = 0;
        for (std::uint32_t r = 0; r < rows; ++r) {
          if (input[r]) {
            expected += image[static_cast<std::size_t>(r) * cols + col];
          }
        }
        EXPECT_EQ(matrix.mac(col, packed.words()), expected)
            << "rows=" << rows << " bits=" << bits;
        // plane_sums must be the per-bit decomposition of the same MAC.
        std::vector<std::uint32_t> sums(bits);
        matrix.plane_sums(col, packed.words(), sums);
        std::uint64_t recombined = 0;
        for (std::uint32_t b = 0; b < bits; ++b) {
          recombined += static_cast<std::uint64_t>(sums[b]) << b;
        }
        EXPECT_EQ(recombined, expected);
      }
    }
  }
}

TEST(BitPlaneMatrix, SetWeightOverwritesAllBits) {
  BitPlaneMatrix matrix;
  matrix.reset(4, 2, 8);
  matrix.set_weight(1, 0, 0xFF);
  matrix.set_weight(1, 0, 0x05);  // must clear the stale high bits
  PackedBits input(4);
  input.set(1);
  EXPECT_EQ(matrix.mac(0, input.words()), 0x05U);
  EXPECT_EQ(matrix.mac(1, input.words()), 0U);
}

// The central property: a randomized sweep over window shapes, weight
// precisions, backends, pseudo-read policies and noise phases asserting
// that dense, sparse, packed and batched MACs agree on values, final
// weights and every StorageCounters field.
TEST(PackedMac, PropertySweepAllPathsBitIdentical) {
  const noise::SramCellModel model(noise::SramNoiseParams{}, 101);
  util::Rng rng(17);
  struct Backend {
    bool bit_level;
    PseudoReadPolicy policy;
  };
  const Backend backends[] = {
      {false, PseudoReadPolicy::kSettleAtWriteBack},
      {true, PseudoReadPolicy::kSettleAtWriteBack},
      {true, PseudoReadPolicy::kFlipOnAccess},
  };
  for (int config = 0; config < 12; ++config) {
    const std::uint32_t rows = 2 + static_cast<std::uint32_t>(rng.below(90));
    const std::uint32_t cols = 1 + static_cast<std::uint32_t>(rng.below(12));
    const std::uint32_t bits = 1 + static_cast<std::uint32_t>(rng.below(8));
    const bool noisy = rng.chance(0.7);
    const auto image = random_image(rows, cols, bits, 1000 + config);
    for (const Backend& backend : backends) {
      const noise::SramCellModel* m = noisy ? &model : nullptr;
      const auto make = [&] {
        return backend.bit_level
                   ? make_bit_level_storage(rows, cols, m, 4096, bits,
                                            backend.policy)
                   : make_fast_storage(rows, cols, m, 4096, bits);
      };
      auto dense = make();
      auto sparse = make();
      auto packed = make();
      auto batched = make();
      for (auto* s : {&dense, &sparse, &packed, &batched}) {
        (*s)->write(image);
        (*s)->write_back(phase(static_cast<std::uint64_t>(config), 0.30,
                               noisy ? 6 : 0));
      }
      std::vector<PackedMac> reqs;
      std::vector<std::uint64_t> arena;
      std::vector<std::int64_t> batch_out;
      const std::uint32_t words = packed_words(rows);
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<std::uint8_t> input(rows);
        std::vector<std::uint32_t> active;
        for (std::uint32_t r = 0; r < rows; ++r) {
          input[r] = rng.chance(0.4) ? 1 : 0;
          if (input[r]) active.push_back(r);
        }
        const auto packed_in = pack(input);
        const auto col = ColIndex(static_cast<std::uint32_t>(rng.below(cols)));
        const auto d = dense->mac(col, input);
        const auto s = sparse->mac_sparse(col, active);
        const auto p = packed->mac_packed(col, packed_in.words());
        EXPECT_EQ(p, d) << "packed vs dense rows=" << rows
                        << " bits=" << bits;
        EXPECT_EQ(p, s) << "packed vs sparse";
        reqs.push_back(
            PackedMac{col, static_cast<std::uint32_t>(trial)});
        arena.insert(arena.end(), packed_in.words().begin(),
                     packed_in.words().end());
        batch_out.push_back(0);
      }
      batched->mac_packed_batch(reqs, arena, words, batch_out);
      for (std::size_t t = 0; t < reqs.size(); ++t) {
        // Corruption is sticky until the next write-back, so replaying a
        // request on the per-call storage reproduces its original value.
        EXPECT_EQ(batch_out[t],
                  packed->mac_packed(reqs[t].col,
                                     std::span<const std::uint64_t>(
                                         arena.data() + t * words, words)))
            << "batch vs replay trial " << t;
      }
      // The replay above doubled the packed storage's MAC counters;
      // account for that when comparing.
      const auto& cd = dense->counters();
      const auto& cs = sparse->counters();
      const auto& cp = packed->counters();
      const auto& cb = batched->counters();
      EXPECT_EQ(cs.macs, cd.macs);
      EXPECT_EQ(cp.macs, 2 * cd.macs);
      EXPECT_EQ(cb.macs, cd.macs);
      EXPECT_EQ(cs.mac_bit_reads, cd.mac_bit_reads);
      EXPECT_EQ(cp.mac_bit_reads, 2 * cd.mac_bit_reads);
      EXPECT_EQ(cb.mac_bit_reads, cd.mac_bit_reads);
      EXPECT_EQ(cs.pseudo_read_flips, cd.pseudo_read_flips);
      EXPECT_EQ(cp.pseudo_read_flips, cd.pseudo_read_flips);
      EXPECT_EQ(cb.pseudo_read_flips, cd.pseudo_read_flips);
      EXPECT_EQ(cs.writeback_bits, cd.writeback_bits);
      // Final weights identical across all four state machines.
      for (std::uint32_t r = 0; r < rows; ++r) {
        for (std::uint32_t c = 0; c < cols; ++c) {
          const auto w = dense->weight(RowIndex(r), ColIndex(c));
          ASSERT_EQ(sparse->weight(RowIndex(r), ColIndex(c)), w);
          ASSERT_EQ(packed->weight(RowIndex(r), ColIndex(c)), w);
          ASSERT_EQ(batched->weight(RowIndex(r), ColIndex(c)), w);
        }
      }
    }
  }
}

TEST(PackedMac, LazyCorruptionTriggersIdentically) {
  // kFlipOnAccess pseudo-reads the whole addressed column on a packed MAC
  // exactly like the scalar paths: same flip pattern, same counters.
  const noise::SramCellModel model(noise::SramNoiseParams{}, 19);
  const auto image = random_image(15, 9, 8, 12);
  auto scalar = make_bit_level_storage(15, 9, &model, 0, 8,
                                       PseudoReadPolicy::kFlipOnAccess);
  auto packed = make_bit_level_storage(15, 9, &model, 0, 8,
                                       PseudoReadPolicy::kFlipOnAccess);
  scalar->write(image);
  packed->write(image);
  const auto p = phase(1, 0.24, 6);
  scalar->write_back(p);
  packed->write_back(p);
  std::vector<std::uint8_t> input(15, 0);
  std::vector<std::uint32_t> active;
  for (std::uint32_t r = 0; r < 15; r += 3) {
    input[r] = 1;
    active.push_back(r);
  }
  const auto packed_in = pack(input);
  for (std::uint32_t c = 0; c < 9; c += 2) {
    EXPECT_EQ(scalar->mac_sparse(ColIndex(c), active),
              packed->mac_packed(ColIndex(c), packed_in.words()));
    for (std::uint32_t r = 0; r < 15; ++r) {
      for (std::uint32_t cc = 0; cc < 9; ++cc) {
        ASSERT_EQ(scalar->weight(RowIndex(r), ColIndex(cc)),
                  packed->weight(RowIndex(r), ColIndex(cc)))
            << "after column " << c << " at " << r << "," << cc;
      }
    }
    EXPECT_EQ(scalar->counters().pseudo_read_flips,
              packed->counters().pseudo_read_flips);
  }
}

TEST(PackedMac, BitLevelTreeCountersMatchSparse) {
  // The bit-level backend's packed path must charge the AdderTree like
  // the sparse path (full fan-in per plane, one reduction per plane) —
  // verified indirectly: two identical request sequences leave identical
  // mac counters, and directly on a standalone tree below.
  AdderTree tree(10);
  std::vector<std::uint32_t> sums = {3, 7, 1};
  const auto value = tree.shift_and_add_sparse(sums);
  EXPECT_EQ(value, 3U + (7U << 1) + (1U << 2));
  EXPECT_EQ(tree.reductions(), 3U);
  EXPECT_EQ(tree.total_adder_ops(), 3U * 9U);
}

TEST(DegenerateConfigs, FailFastWithConfigErrors) {
  // Zero-sized windows and fan-in/plane mismatches must throw ConfigError
  // with a diagnostic, not UB or silent empties.
  EXPECT_THROW(make_fast_storage(0, 4, nullptr, 0), ConfigError);
  EXPECT_THROW(make_fast_storage(4, 0, nullptr, 0), ConfigError);
  EXPECT_THROW(make_bit_level_storage(0, 4, nullptr, 0), ConfigError);

  BitPlaneMatrix matrix;
  EXPECT_THROW(matrix.reset(0, 4, 8), ConfigError);
  EXPECT_THROW(matrix.reset(4, 0, 8), ConfigError);
  EXPECT_THROW(matrix.reset(4, 4, 0), ConfigError);
  EXPECT_THROW(matrix.reset(4, 4, 9), ConfigError);

  AdderTree tree(8);
  EXPECT_THROW(tree.reduce(std::vector<std::uint8_t>(7)), ConfigError);
  EXPECT_THROW(tree.shift_and_add(std::vector<std::uint8_t>(15), 2),
               ConfigError);
  EXPECT_THROW(tree.shift_and_add(std::vector<std::uint8_t>(0), 0),
               ConfigError);
  EXPECT_THROW(
      tree.shift_and_add_sparse(std::vector<std::uint32_t>{}),
      ConfigError);
  // A plane sum exceeding the fan-in is physically impossible input.
  EXPECT_THROW(
      tree.shift_and_add_sparse(std::vector<std::uint32_t>{9}),
      ConfigError);
  EXPECT_THROW(AdderTree{0}, ConfigError);

  // Packed input word-count mismatches fail fast on both backends.
  for (const bool bit_level : {false, true}) {
    auto storage = bit_level ? make_bit_level_storage(70, 3, nullptr, 0)
                             : make_fast_storage(70, 3, nullptr, 0);
    storage->write(std::vector<std::uint8_t>(70 * 3, 1));
    const std::vector<std::uint64_t> short_input(1, ~0ULL);
    EXPECT_THROW(storage->mac_packed(ColIndex(0), short_input), ConfigError);
    std::vector<PackedMac> reqs = {PackedMac{ColIndex(0), 0}};
    std::vector<std::int64_t> out(1);
    // Wrong stride.
    EXPECT_THROW(
        storage->mac_packed_batch(reqs, std::vector<std::uint64_t>(1), 1,
                                  out),
        ConfigError);
    // Arena too small for the request.
    EXPECT_THROW(
        storage->mac_packed_batch(reqs, std::vector<std::uint64_t>(1), 2,
                                  out),
        ConfigError);
    // Output span size mismatch.
    std::vector<std::int64_t> bad_out(2);
    EXPECT_THROW(
        storage->mac_packed_batch(reqs, std::vector<std::uint64_t>(2), 2,
                                  bad_out),
        ConfigError);
  }
}

}  // namespace
}  // namespace cim::hw
