#include "geo/metric.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace cim::geo {
namespace {

TEST(Metric, ParseRoundTrip) {
  for (const Metric m :
       {Metric::kEuc2D, Metric::kCeil2D, Metric::kAtt, Metric::kGeo,
        Metric::kMan2D, Metric::kMax2D, Metric::kExplicit}) {
    EXPECT_EQ(parse_metric(metric_name(m)), m);
  }
}

TEST(Metric, ParseUnknownThrows) {
  EXPECT_THROW(parse_metric("EUC_3D"), ParseError);
  EXPECT_THROW(parse_metric(""), ParseError);
}

TEST(Metric, Euc2dRoundsToNearest) {
  // 3-4-5 triangle: exact 5.
  EXPECT_EQ(tsplib_distance(Metric::kEuc2D, {0, 0}, {3, 4}), 5);
  // sqrt(2) = 1.414 → 1.
  EXPECT_EQ(tsplib_distance(Metric::kEuc2D, {0, 0}, {1, 1}), 1);
  // sqrt(8) = 2.828 → 3.
  EXPECT_EQ(tsplib_distance(Metric::kEuc2D, {0, 0}, {2, 2}), 3);
}

TEST(Metric, Ceil2dRoundsUp) {
  EXPECT_EQ(tsplib_distance(Metric::kCeil2D, {0, 0}, {1, 1}), 2);
  EXPECT_EQ(tsplib_distance(Metric::kCeil2D, {0, 0}, {3, 4}), 5);
}

TEST(Metric, ManhattanAndChebyshev) {
  EXPECT_EQ(tsplib_distance(Metric::kMan2D, {0, 0}, {3, 4}), 7);
  EXPECT_EQ(tsplib_distance(Metric::kMax2D, {0, 0}, {3, 4}), 4);
}

TEST(Metric, AttPseudoEuclidean) {
  // TSPLIB: rij = sqrt((dx²+dy²)/10), tij = round(rij), +1 if tij < rij.
  // dx=10, dy=0 → rij = sqrt(10) = 3.162 → tij = 3 < rij → 4.
  EXPECT_EQ(tsplib_distance(Metric::kAtt, {0, 0}, {10, 0}), 4);
  // dx=30, dy=40 → rij = sqrt(250)=15.81 → tij=16 ≥ rij → 16.
  EXPECT_EQ(tsplib_distance(Metric::kAtt, {0, 0}, {30, 40}), 16);
}

TEST(Metric, GeoKnownDistance) {
  // One degree of longitude along the equator:
  // 2π·6378.388/360 ≈ 111.3 km; TSPLIB's +1.0 truncation gives 111.
  const long long d = tsplib_distance(Metric::kGeo, {0.0, 0.0}, {0.0, 1.0});
  EXPECT_GE(d, 111);
  EXPECT_LE(d, 112);
}

TEST(Metric, GeoMinutesEncoding) {
  // x = DDD.MM: 10.30 means 10 degrees 30 minutes = 10.5 degrees.
  // Compare two encodings of the same point: distance must be 0-ish.
  const long long d =
      tsplib_distance(Metric::kGeo, {10.30, 20.30}, {10.30, 20.30});
  EXPECT_EQ(d, 1);  // acos rounding in TSPLIB gives the +1.0 floor
}

TEST(Metric, SymmetryProperty) {
  const Point a{12.5, -7.25};
  const Point b{-3.0, 41.0};
  for (const Metric m : {Metric::kEuc2D, Metric::kCeil2D, Metric::kAtt,
                         Metric::kMan2D, Metric::kMax2D}) {
    EXPECT_EQ(tsplib_distance(m, a, b), tsplib_distance(m, b, a));
  }
}

TEST(Metric, TriangleInequalityEuc) {
  const Point a{0, 0};
  const Point b{100, 17};
  const Point c{43, 91};
  // Rounded metrics can violate the triangle inequality by ±1; allow it.
  EXPECT_LE(tsplib_distance(Metric::kEuc2D, a, c),
            tsplib_distance(Metric::kEuc2D, a, b) +
                tsplib_distance(Metric::kEuc2D, b, c) + 1);
}

TEST(Metric, ExplicitDistanceThrows) {
  EXPECT_THROW(tsplib_distance(Metric::kExplicit, {0, 0}, {1, 1}),
               Error);
  EXPECT_THROW(continuous_distance(Metric::kExplicit, {0, 0}, {1, 1}),
               Error);
}

TEST(Metric, ContinuousMatchesShape) {
  const Point a{0, 0};
  const Point b{3, 4};
  EXPECT_DOUBLE_EQ(continuous_distance(Metric::kEuc2D, a, b), 5.0);
  EXPECT_DOUBLE_EQ(continuous_distance(Metric::kCeil2D, a, b), 5.0);
  EXPECT_DOUBLE_EQ(continuous_distance(Metric::kMan2D, a, b), 7.0);
  EXPECT_DOUBLE_EQ(continuous_distance(Metric::kMax2D, a, b), 4.0);
  EXPECT_NEAR(continuous_distance(Metric::kAtt, a, b), std::sqrt(2.5),
              1e-12);
}

TEST(BoundingBox, ExpandAndDistance) {
  BoundingBox box;
  EXPECT_TRUE(box.empty());
  box.expand({0, 0});
  box.expand({10, 20});
  EXPECT_FALSE(box.empty());
  EXPECT_DOUBLE_EQ(box.width(), 10.0);
  EXPECT_DOUBLE_EQ(box.height(), 20.0);
  EXPECT_DOUBLE_EQ(box.squared_distance_to({5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(box.squared_distance_to({13, 24}), 9.0 + 16.0);
  EXPECT_DOUBLE_EQ(box.center().x, 5.0);
}

TEST(Centroid, WeightedAverage) {
  const std::vector<Point> pts{{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  const Point c = centroid(pts);
  EXPECT_DOUBLE_EQ(c.x, 5.0);
  EXPECT_DOUBLE_EQ(c.y, 5.0);
}

}  // namespace
}  // namespace cim::geo
