#include "tsp/best_known.hpp"

#include <gtest/gtest.h>

namespace cim::tsp {
namespace {

TEST(BestKnown, PaperInstancesPresent) {
  // The instances the paper's evaluation uses (§V, §VI).
  EXPECT_EQ(best_known_length("pcb3038"), 137694);
  EXPECT_EQ(best_known_length("rl5915"), 565530);
  EXPECT_EQ(best_known_length("rl5934"), 556045);
  EXPECT_EQ(best_known_length("rl11849"), 923288);
  EXPECT_EQ(best_known_length("usa13509"), 19982859);
  EXPECT_EQ(best_known_length("d18512"), 645238);
  EXPECT_EQ(best_known_length("pla33810"), 66048945);
  EXPECT_EQ(best_known_length("pla85900"), 142382641);
}

TEST(BestKnown, ClassicSmallInstances) {
  EXPECT_EQ(best_known_length("berlin52"), 7542);
  EXPECT_EQ(best_known_length("eil51"), 426);
  EXPECT_EQ(best_known_length("pcb442"), 50778);
}

TEST(BestKnown, UnknownReturnsEmpty) {
  EXPECT_FALSE(best_known_length("not_an_instance").has_value());
  EXPECT_FALSE(best_known_length("").has_value());
}

TEST(ConcordeRuntime, PaperCitations) {
  // §VI: 22 hours, 7 days, 155 days from [13].
  ASSERT_TRUE(concorde_runtime_seconds("pcb3038").has_value());
  EXPECT_DOUBLE_EQ(*concorde_runtime_seconds("pcb3038"), 22.0 * 3600.0);
  EXPECT_DOUBLE_EQ(*concorde_runtime_seconds("rl5934"), 7.0 * 86400.0);
  EXPECT_DOUBLE_EQ(*concorde_runtime_seconds("rl11849"), 155.0 * 86400.0);
  EXPECT_FALSE(concorde_runtime_seconds("pla85900").has_value());
}

TEST(BestKnown, SpeedupArithmetic) {
  // The paper's >1e9 claim: Concorde seconds / ~44 µs anneal time.
  const double concorde = *concorde_runtime_seconds("rl5934");
  EXPECT_GT(concorde / 44e-6, 1e9);
  EXPECT_GT(*concorde_runtime_seconds("rl11849") / 44e-6, 1e11);
}

}  // namespace
}  // namespace cim::tsp
