#include "geo/kdtree.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace cim::geo {
namespace {

std::vector<Point> random_points(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    p = {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
  }
  return pts;
}

std::size_t brute_nearest(const std::vector<Point>& pts, Point q,
                          const std::vector<char>& active,
                          std::size_t exclude) {
  std::size_t best = KdTree::npos;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (!active[i] || i == exclude) continue;
    const double d = squared_distance(pts[i], q);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

class KdTreeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KdTreeSizes, NearestMatchesBruteForce) {
  const auto pts = random_points(GetParam(), GetParam() * 7 + 1);
  const KdTree tree(pts);
  const std::vector<char> active(pts.size(), 1);
  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const Point q{rng.uniform(-100.0, 1100.0), rng.uniform(-100.0, 1100.0)};
    const std::size_t got = tree.nearest(q);
    const std::size_t want = brute_nearest(pts, q, active, KdTree::npos);
    ASSERT_NE(got, KdTree::npos);
    // Ties are possible; compare distances, not indices.
    EXPECT_DOUBLE_EQ(squared_distance(pts[got], q),
                     squared_distance(pts[want], q));
  }
}

TEST_P(KdTreeSizes, NearestKSortedAndCorrect) {
  const auto pts = random_points(GetParam(), GetParam() * 13 + 3);
  const KdTree tree(pts);
  util::Rng rng(7);
  const std::size_t k = std::min<std::size_t>(8, pts.size());
  for (int trial = 0; trial < 20; ++trial) {
    const Point q{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    const auto got = tree.nearest_k(q, k);
    ASSERT_EQ(got.size(), k);
    // Ascending by distance.
    for (std::size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(squared_distance(pts[got[i - 1]], q),
                squared_distance(pts[got[i]], q));
    }
    // k-th distance matches brute force k-th.
    std::vector<double> dists;
    for (const auto& p : pts) dists.push_back(squared_distance(p, q));
    std::sort(dists.begin(), dists.end());
    EXPECT_DOUBLE_EQ(squared_distance(pts[got.back()], q), dists[k - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KdTreeSizes,
                         ::testing::Values<std::size_t>(1, 2, 15, 16, 17, 100,
                                                        1000));

TEST(KdTree, ExcludeSkipsPoint) {
  const auto pts = random_points(50, 5);
  const KdTree tree(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const std::size_t nn = tree.nearest(pts[i], i);
    EXPECT_NE(nn, i);
    EXPECT_NE(nn, KdTree::npos);
  }
}

TEST(KdTree, SelfIsNearestWithoutExclude) {
  const auto pts = random_points(50, 6);
  const KdTree tree(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const std::size_t nn = tree.nearest(pts[i]);
    EXPECT_DOUBLE_EQ(squared_distance(pts[nn], pts[i]), 0.0);
  }
}

TEST(KdTree, SoftDelete) {
  const auto pts = random_points(100, 8);
  KdTree tree(pts);
  std::vector<char> active(pts.size(), 1);
  util::Rng rng(1);
  for (int round = 0; round < 60; ++round) {
    const std::size_t kill = rng.below(pts.size());
    tree.set_active(kill, false);
    active[kill] = 0;
    const Point q{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    const std::size_t got = tree.nearest(q);
    const std::size_t want = brute_nearest(pts, q, active, KdTree::npos);
    if (want == KdTree::npos) {
      EXPECT_EQ(got, KdTree::npos);
    } else {
      ASSERT_NE(got, KdTree::npos);
      EXPECT_TRUE(active[got]);
      EXPECT_DOUBLE_EQ(squared_distance(pts[got], q),
                       squared_distance(pts[want], q));
    }
  }
  EXPECT_EQ(tree.active_count(),
            static_cast<std::size_t>(
                std::count(active.begin(), active.end(), 1)));
}

TEST(KdTree, ReactivateRestores) {
  const auto pts = random_points(10, 9);
  KdTree tree(pts);
  tree.set_active(3, false);
  EXPECT_FALSE(tree.is_active(3));
  tree.set_active(3, true);
  EXPECT_TRUE(tree.is_active(3));
  EXPECT_EQ(tree.active_count(), 10U);
  // Idempotent.
  tree.set_active(3, true);
  EXPECT_EQ(tree.active_count(), 10U);
}

TEST(KdTree, AllDeletedReturnsNpos) {
  const auto pts = random_points(5, 10);
  KdTree tree(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) tree.set_active(i, false);
  EXPECT_EQ(tree.nearest({0, 0}), KdTree::npos);
  EXPECT_TRUE(tree.nearest_k({0, 0}, 3).empty());
}

TEST(KdTree, WithinRadius) {
  std::vector<Point> pts{{0, 0}, {1, 0}, {5, 0}, {0, 2}, {10, 10}};
  const KdTree tree(pts);
  auto hits = tree.within_radius({0, 0}, 2.5);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(KdTree, EmptyTree) {
  const KdTree tree(std::vector<Point>{});
  EXPECT_EQ(tree.nearest({0, 0}), KdTree::npos);
  EXPECT_TRUE(tree.within_radius({0, 0}, 10.0).empty());
}

TEST(KdTree, DuplicatePoints) {
  std::vector<Point> pts(20, Point{5, 5});
  const KdTree tree(pts);
  const auto nn = tree.nearest_k({5, 5}, 20);
  EXPECT_EQ(nn.size(), 20U);
}

}  // namespace
}  // namespace cim::geo
