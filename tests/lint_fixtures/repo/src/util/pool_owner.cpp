// Fixture: the runtime itself may own raw threads — src/util/ is the
// raw-thread allowlist (0 findings).
#include <thread>
#include <vector>

namespace fixture {

void runtime_owns_threads() {
  std::vector<std::thread> workers;
  workers.emplace_back([] {});
  for (auto& w : workers) w.join();
}

}  // namespace fixture
