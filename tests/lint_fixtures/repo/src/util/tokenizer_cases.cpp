// Fixture: tokenizer regressions — digit separators and raw strings
// (1 × unit-float-eq; everything else must stay silent).
namespace fixture {

// A digit separator must not open a character literal: a stripper that
// treats 1'000'000 as `'0...'` blanks the rest of the statement and the
// comparison below silently vanishes from the scan.
bool digit_separator(double v) {
  const long big = 1'000'000;
  return big > 0 && v == 2.5;  // expected: unit-float-eq
}

// Raw-string contents are data, not code: neither the comparison text
// nor the directive-looking line may produce findings (raw strings are
// blanked in every scan view, including the directives view).
const char* raw_string() {
  return R"(x == 3.5
#include "anneal/fake.hpp")";
}

// Ordinary string literals are visible to the directives view, but an
// include must start a preprocessor line to count:
const char* plain_string() { return "#include \"anneal/fake.hpp\""; }

// Comments are blanked in every view, include scanning included:
// #include "anneal/fake.hpp"

}  // namespace fixture
