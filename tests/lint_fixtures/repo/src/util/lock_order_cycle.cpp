// Fixture: lock-order inversion across two functions (one edge direct,
// one through a call made under a held lock). flush_table() holds
// table_mu and calls append_journal(), which acquires journal_mu —
// edge table_mu -> journal_mu. reload_table() nests the guards the
// other way — edge journal_mu -> table_mu. Two threads running the two
// paths concurrently deadlock; lock-order-cycle must report the cycle
// with both acquisition paths.
#include <mutex>

namespace fx {

std::mutex table_mu;
std::mutex journal_mu;

void append_journal(int entry) {
  std::lock_guard<std::mutex> g(journal_mu);
  (void)entry;
}

void flush_table() {
  std::lock_guard<std::mutex> g(table_mu);
  append_journal(42);
}

void reload_table() {
  std::lock_guard<std::mutex> outer(journal_mu);
  std::lock_guard<std::mutex> inner(table_mu);
}

}  // namespace fx
