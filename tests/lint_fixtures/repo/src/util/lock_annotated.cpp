// Fixture: lock discipline, clean twin (0 findings).
//
// The mutex is referenced by a CIM_GUARDED_BY on the state it protects,
// the annotation names a real member, and acquisition is scoped.

namespace fixture {

class AnnotatedQueue {
 public:
  void push(int v) {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    depth_ = depth_ + v;
  }

 private:
  std::mutex queue_mu_;
  int depth_ CIM_GUARDED_BY(queue_mu_) = 0;
};

}  // namespace fixture
