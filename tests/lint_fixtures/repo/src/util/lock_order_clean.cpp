// Clean twin of lock_order_cycle.cpp: the same two mutexes, every path
// acquiring in the same global order (ledger_mu before audit_mu), plus
// the RAII trap from the thread-pool worker loop — a guard that dies
// with each loop iteration must NOT leak across the back edge into the
// next iteration's call, or take_both() would fabricate an inverted
// edge. lock-order-cycle must stay silent on this file.
#include <mutex>

namespace fx {

std::mutex ledger_mu;
std::mutex audit_mu;

void record_audit(int entry) {
  std::lock_guard<std::mutex> g(audit_mu);
  (void)entry;
}

void take_both() {
  std::lock_guard<std::mutex> g(ledger_mu);
  record_audit(7);  // ledger_mu -> audit_mu, consistent everywhere
}

void settle() {
  std::lock_guard<std::mutex> outer(ledger_mu);
  std::lock_guard<std::mutex> inner(audit_mu);
}

void poll_ledger() {
  for (int i = 0; i < 8; ++i) {
    take_both();
    // Scope guard taken *after* the call, released at the iteration
    // boundary: the next iteration's take_both() runs lock-free.
    std::lock_guard<std::mutex> g(audit_mu);
  }
}

}  // namespace fx
