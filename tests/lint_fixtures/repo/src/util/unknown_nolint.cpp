// Fixture: malformed suppressions the audit must catch
// (2 × nolint-unknown-rule; the clang-tidy marker passes untouched).
namespace fixture {

int bare_marker() { return 1; }  // NOLINT

int typo_marker() { return 2; }  // NOLINT(unit-flaot-eq)

int tidy_marker() { return 3; }  // NOLINT(readability-magic-numbers)

}  // namespace fixture
