// Fixture: lock discipline, violating twin (4 findings).
//
//   line 12: lock-mutex-unannotated — queue_mu_ never referenced by an
//            annotation in the class;
//   line 13: lock-annotation-unknown — typo_mu_ is not a member;
//   lines 18 and 21: lock-raw-call — manual .lock()/.unlock().

namespace fixture {

class UnguardedQueue {
 private:
  std::mutex queue_mu_;
  int depth_ CIM_GUARDED_BY(typo_mu_) = 0;
  int items_[4] = {};
};

void unguarded_push(UnguardedQueue& q, std::mutex& mu, int v) {
  mu.lock();
  static_cast<void>(q);
  static_cast<void>(v);
  mu.unlock();
}

}  // namespace fixture
