// Fixture for callgraph name resolution (no findings expected).
//
// Two overloads of scale() plus a templated clamp_to(): the index keys
// functions by unqualified last name, so both overloads land under one
// name and resolution is deterministic (first definition in path/line
// order wins). The callgraph tests pin that behaviour here.

namespace fixture {

int scale(int v) { return v * 2; }

float scale(float v) { return v * 2.0F; }

template <typename T>
T clamp_to(T v, T hi) {
  return v > hi ? hi : v;
}

int overload_driver() {
  const int a = scale(3);
  const float b = scale(1.5F);
  return a + clamp_to(static_cast<int>(b), 7);
}

}  // namespace fixture
