// Fixture: header hygiene (hdr-pragma-once + hdr-using-namespace).
// Deliberately missing #pragma once.

#include <string>

using namespace std;  // expected: hdr-using-namespace

namespace fixture {
inline string greet() { return "hi"; }
}  // namespace fixture
