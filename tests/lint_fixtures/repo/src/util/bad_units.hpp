// Fixture: unit-suffixed raw doubles in a header (2 × unit-raw-double).
#pragma once

namespace fixture {

struct Costs {
  double energy_pj = 0.0;  // expected: unit-raw-double
};

double latency_ns();  // expected: unit-raw-double

// Strong-typed twin: silent (no raw double carries a unit suffix).
struct TypedCosts {
  int epochs = 0;
};

}  // namespace fixture
