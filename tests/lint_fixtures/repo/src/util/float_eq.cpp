// Fixture: exact float comparisons and the suppression distance window
// (2 × unit-float-eq fire; 2 are suppressed).
namespace fixture {

bool bare(double x) { return x == 0.5; }  // expected: unit-float-eq

bool inline_suppressed(double y) {
  return y != 1.0;  // NOLINT(unit-float-eq): sentinel fixture
}

// NOLINT(unit-float-eq): marker two lines above the comparison,
// inside the 3-line suppression window.
bool above_suppressed(double z) { return z == 2.0; }

// NOLINT(unit-float-eq): this marker sits four lines above the
// comparison — one past the window — so the finding still fires,
// proving the window does not creep.
//
bool too_far(double w) { return w == 3.0; }  // expected: unit-float-eq

}  // namespace fixture
