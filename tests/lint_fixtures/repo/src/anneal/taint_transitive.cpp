// Fixture: det-taint, transitive source (1 finding, line 9).
//
// The taint sits two calls below the root; the finding's witness chain
// must name the full path root -> helper_a -> helper_b.

namespace fixture {

long taint_helper_b() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long taint_helper_a() { return taint_helper_b() + 1; }

long taint_clean_path() { return 42; }

CIM_DETERMINISM_ROOT
long taint_transitive_root() {
  return taint_helper_a() + taint_clean_path();
}

}  // namespace fixture
