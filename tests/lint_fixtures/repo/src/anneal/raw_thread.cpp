// Fixture: raw thread spawn outside src/util/
// (1 × raw-thread; the suppressed baseline twin and the inert handle
// types stay silent).
#include <thread>
#include <vector>

namespace fixture {

void per_epoch_spawn() {
  std::vector<std::thread> workers;  // expected: raw-thread
  for (auto& w : workers) w.join();
}

void spawn_baseline_bench() {
  // NOLINT(raw-thread): measuring the spawn cost itself.
  std::vector<std::thread> workers;
  for (auto& w : workers) w.join();
}

unsigned inert_handle_types() {
  // thread::id and hardware_concurrency are handles/queries, not spawns.
  [[maybe_unused]] std::thread::id id;
  return std::thread::hardware_concurrency();
}

}  // namespace fixture
