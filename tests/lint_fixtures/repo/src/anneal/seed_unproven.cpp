// Fixture: rng-unproven-seed (1 finding).
//
// The determinism root seeds an Rng from `mix`, whose provenance chain
// bottoms out at ticket() — an opaque call that is neither a seed
// derivation helper (stream_seed/hash_combine/splitmix64/fork) nor a
// function parameter. The proof fails and the finding carries the
// witness chain from the root.

namespace fixture {

unsigned long long ticket();

CIM_DETERMINISM_ROOT
void seed_unproven_replay() {
  const unsigned long long mix = ticket() * 31ULL;
  util::Rng rng(mix);
  (void)rng;
}

}  // namespace fixture
