// Clean twin of range_overflow.cpp: same storage shape, same access
// patterns, but every index stays inside the extent and the one guard
// present is genuinely undecidable (it tests a caller-supplied offset
// the analysis knows nothing about). Neither index-range-overflow nor
// index-check-dead may fire here.
#include <cstdint>

namespace fixture {

struct WindowStorage2 {
  WindowStorage2(std::uint32_t r, std::uint32_t c);
  std::uint32_t rows() const;
  std::uint32_t cols() const;
  float mac(std::uint32_t col, const float* in) const;
  float weight(std::uint32_t row, std::uint32_t col) const;
};

float sweep_window_clean(const float* input) {
  WindowStorage2 s(16, 8);
  float acc = 0.0F;
  for (std::uint32_t c = 0; c < s.cols(); ++c) {
    acc += s.mac(c, input);
  }
  return acc;
}

float offset_scan(const float* input, std::uint32_t offset) {
  WindowStorage2 s(16, 8);
  float acc = 0.0F;
  for (std::uint32_t c = 0; c < s.cols(); ++c) {
    // `offset` is caller data: the guard is live, not provably constant.
    if (offset < 4) {
      acc += s.weight(offset, c);
    }
  }
  return acc;
}

}  // namespace fixture
