// Fixture: det-taint, suppressed (0 findings).
//
// The same read as taint_direct.cpp, but the site carries a reviewed
// suppression marker — proving it reaches project-rule findings.

namespace fixture {

CIM_DETERMINISM_ROOT
long taint_vouched_epoch() {
  // NOLINT(det-taint): observability-only timestamp, never fed to state.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
