// Fixture: det-taint, direct source (1 finding, line 10).
//
// The root reads the wall clock in its own body; det-taint reports the
// site with a one-hop witness chain (root only).

namespace fixture {

CIM_DETERMINISM_ROOT
long taint_direct_epoch() {
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

}  // namespace fixture
