// Fixture: index-range-overflow + index-check-dead (2 findings).
//
// sweep_window() iterates `c <= s.cols()` over an 8-column storage: the
// last iteration calls mac with column 8 against extent 8 — the classic
// off-by-one window walk. index-range-overflow must report the mac call
// with the proven interval. guarded_scan() carries a bounds check that
// the loop condition already implies; index-check-dead must flag it.
#include <cstdint>

namespace fixture {

struct WindowStorage {
  WindowStorage(std::uint32_t r, std::uint32_t c);
  std::uint32_t rows() const;
  std::uint32_t cols() const;
  float mac(std::uint32_t col, const float* in) const;
  float weight(std::uint32_t row, std::uint32_t col) const;
};

float sweep_window(const float* input) {
  WindowStorage s(16, 8);
  float acc = 0.0F;
  for (std::uint32_t c = 0; c <= s.cols(); ++c) {
    acc += s.mac(c, input);
  }
  return acc;
}

float guarded_scan(const float* input) {
  WindowStorage s(16, 8);
  float acc = 0.0F;
  for (std::uint32_t c = 0; c < s.cols(); ++c) {
    if (c < 8) {
      acc += s.mac(c, input);
    }
  }
  return acc;
}

}  // namespace fixture
