// Clean twin of seed_unproven.cpp: every Rng under the root is seeded
// through the deterministic derivation chain — stream_seed/hash_combine
// over a parameter, including a branch whose two arms are each proven
// (the join keeps the proof). rng-unproven-seed must stay silent.

namespace fixture {

CIM_DETERMINISM_ROOT
void seed_proven_replay(unsigned long long base_seed, bool alt_stream) {
  const unsigned long long mixed = util::hash_combine(base_seed, 0x9e37ULL);
  util::Rng rng(util::stream_seed(mixed, 2));
  (void)rng;

  unsigned long long pick = base_seed;
  if (alt_stream) {
    pick = util::splitmix64(base_seed);
  }
  util::Rng rng2(pick + 1);
  (void)rng2;
}

}  // namespace fixture
