// Fixture: dense input rebuild in the anneal hot path
// (1 × anneal-dense-rebuild; the suppressed ablation twin stays silent).
#include <cstdint>
#include <vector>

namespace fixture {

struct Shape {
  std::uint32_t rows() const { return 32; }
};

void hot_path(std::vector<std::uint8_t>& input, const Shape& shape) {
  input.assign(shape.rows(), 0);  // expected: anneal-dense-rebuild
}

void ablation_kernel(std::vector<std::uint8_t>& input, const Shape& shape) {
  // Dense reference baseline fixture, kept for A/B comparison.
  input.assign(shape.rows(), 0);  // NOLINT(anneal-dense-rebuild)
}

}  // namespace fixture
