// Fixture: include against the layering DAG (1 × layer-dag).
// tools/cimlint/layers.toml allows ppa -> {cim, noise, util} only; the
// anneal include below is the exact inversion PR 3 removed.
#pragma once

#include "anneal/clustered_annealer.hpp"  // expected: layer-dag
#include "cim/activity.hpp"               // allowed: ppa -> cim
#include "util/units.hpp"                 // allowed: ppa -> util

namespace fixture {
struct Report {};
}  // namespace fixture
