// Fixture: banned randomness sources
// (rng-mt19937, rng-random-device, rng-libc-rand ×2, rng-time-seed).
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int banned_engine() {
  std::mt19937 gen(std::random_device{}());  // expected: rng-mt19937 + rng-random-device
  return static_cast<int>(gen());
}

int banned_libc() {
  srand(static_cast<unsigned>(time(nullptr)));  // expected: rng-libc-rand + rng-time-seed
  return rand();  // expected: rng-libc-rand
}

}  // namespace fixture
