// Fixture: telemetry macro in a public header
// (1 × telemetry-in-header; the suppressed template twin stays silent).
#pragma once

namespace fixture {

inline void hot_path_in_header() {
  TELEM_COUNTER_ADD("fixture.calls", 1);  // expected: telemetry-in-header
}

template <typename T>
void vouched_template(const T& value) {
  // NOLINT(telemetry-in-header): header-only template must emit here.
  TELEM_SCOPE("fixture.template");
  static_cast<void>(value);
}

}  // namespace fixture
