// Fixture: raw SIMD intrinsics outside src/util/simd.hpp
// (2 × simd-intrinsics-confined: the vendor include and the intrinsic
// call; the suppressed twin and the wrapper call stay silent).
#include <immintrin.h>  // expected: simd-intrinsics-confined
#include <cstdint>

namespace fixture {

std::uint64_t hand_rolled_popcount(const std::uint64_t* a, int n) {
  std::uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    total += _mm_popcnt_u64(a[i]);  // expected: simd-intrinsics-confined
  }
  return total;
}

// One-off ISA probe kept out of the dispatch layer on purpose.
// NOLINT(simd-intrinsics-confined)
std::uint64_t vouched_probe(std::uint64_t w) { return _mm_popcnt_u64(w); }

// Silent: util::simd wrapper names are not intrinsics.
std::uint64_t wrapper_call(std::uint64_t w) {
  const auto and_popcount = [](std::uint64_t x) { return x & 1; };
  return and_popcount(w);
}

}  // namespace fixture
