// Fixture: hardware accesses vs. counter charging
// (1 × cim-counter-charge; the charged and NOLINTed twins stay silent).
#include <cstdint>
#include <vector>

namespace fixture {

class Storage {
 public:
  // expected: cim-counter-charge — reads a weight cell, never charges.
  std::uint8_t uncharged_peek(std::size_t w) {
    return current_[w];
  }

  // Silent: the access is charged to the hardware counters.
  std::uint8_t charged_read(std::size_t w) {
    ++counters_.reads;
    return current_[w];
  }

  // Debug accessor fixture: no hardware event occurs.
  // NOLINT(cim-counter-charge)
  std::uint8_t suppressed_peek(std::size_t w) {
    return current_[w];
  }

 private:
  struct Counters {
    std::uint64_t reads = 0;
  };
  Counters counters_;
  std::vector<std::uint8_t> current_;
};

}  // namespace fixture
