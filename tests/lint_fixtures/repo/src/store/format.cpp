// Fixture: the sanctioned serialisation path — src/store/format.cpp is
// allowlisted, so its raw stdio calls fire nothing.
#include <cstdio>
#include <vector>

namespace fixture {

void write_record_like(const std::vector<unsigned char>& body,
                       std::FILE* file) {
  std::fwrite(body.data(), 1, body.size(), file);
}

void read_record_like(std::vector<unsigned char>& body, std::FILE* file) {
  std::fread(body.data(), 1, body.size(), file);
}

}  // namespace fixture
