// Fixture: raw stdio serialisation outside the record format
// (2 × store-unversioned-io; the console write and the NOLINTed site
// stay silent).
#include <cstdio>
#include <vector>

namespace fixture {

void save_state(const std::vector<unsigned char>& bytes, std::FILE* file) {
  // expected: store-unversioned-io — unversioned byte dump to a file.
  std::fwrite(bytes.data(), 1, bytes.size(), file);
}

void load_state(std::vector<unsigned char>& bytes, std::FILE* file) {
  // expected: store-unversioned-io — reads back with no digest check.
  std::fread(bytes.data(), 1, bytes.size(), file);
}

// Silent: console output is not serialisation.
void print_state(const std::vector<unsigned char>& bytes) {
  std::fwrite(bytes.data(), 1, bytes.size(), stdout);
}

// Silent: vouched-for legacy dump path.
void legacy_dump(const std::vector<unsigned char>& bytes, std::FILE* file) {
  std::fwrite(bytes.data(), 1, bytes.size(), file);  // NOLINT(store-unversioned-io)
}

}  // namespace fixture
