#include "heuristics/or_opt.hpp"

#include <gtest/gtest.h>

#include "heuristics/construct.hpp"
#include "heuristics/two_opt.hpp"
#include "test_helpers.hpp"

namespace cim::heuristics {
namespace {

TEST(OrOpt, NeverWorsensAndStaysValid) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto inst = test::random_instance(150, 70 + seed);
    auto tour = random_tour(inst, seed);
    const long long before = tour.length(inst);
    const auto result = or_opt(inst, tour);
    EXPECT_LE(result.final_length, before);
    EXPECT_EQ(result.final_length, tour.length(inst));
    EXPECT_TRUE(tour.is_valid(150));
  }
}

// The parallel scan must produce the exact same tour for every
// scan_threads > 1: index-fixed chunking plus serial in-order apply keep
// the pool width out of the result.
TEST(OrOpt, ParallelScanIdenticalAcrossThreadCounts) {
  const auto inst = test::random_instance(400, 91);
  const auto base = random_tour(inst, 5);
  const auto run_with = [&](std::size_t threads) {
    auto tour = base;
    OrOptOptions opt;
    opt.scan_threads = threads;
    const auto result = or_opt(inst, tour, opt);
    EXPECT_EQ(result.final_length, tour.length(inst));
    EXPECT_TRUE(tour.is_valid(inst.size()));
    return tour;
  };
  const auto t2 = run_with(2);
  const auto t3 = run_with(3);
  const auto t8 = run_with(8);
  EXPECT_EQ(t2, t3);
  EXPECT_EQ(t2, t8);
  EXPECT_LT(t2.length(inst), base.length(inst));
}

TEST(OrOpt, ParallelScanNeverWorsensAndStaysValid) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto inst = test::random_instance(150, 170 + seed);
    auto tour = random_tour(inst, seed);
    const long long before = tour.length(inst);
    OrOptOptions opt;
    opt.scan_threads = 4;
    const auto result = or_opt(inst, tour, opt);
    EXPECT_LE(result.final_length, before);
    EXPECT_EQ(result.final_length, tour.length(inst));
    EXPECT_TRUE(tour.is_valid(150));
  }
}

TEST(OrOpt, ImprovesTwoOptLocalOptima) {
  // Or-opt moves are outside the 2-opt neighbourhood; over several seeds
  // it should find at least one further improvement.
  std::size_t improved = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto inst = test::random_instance(200, 80 + seed);
    auto tour = random_tour(inst, seed);
    two_opt(inst, tour);
    const long long after_two_opt = tour.length(inst);
    or_opt(inst, tour);
    if (tour.length(inst) < after_two_opt) ++improved;
  }
  EXPECT_GE(improved, 1U);
}

TEST(OrOpt, RelocatesObviousSegment) {
  // A point dropped far from its tour position: or-opt must pull it back.
  //
  //   0 -- 1 -- X -- 2 -- 3   with X spatially between 3 and 0.
  const tsp::Instance inst("relocate", geo::Metric::kEuc2D,
                           {{0, 0},      // 0
                            {100, 0},    // 1
                            {5, 80},     // 2 (the stray, near 0-4 edge)
                            {100, 100},  // 3
                            {0, 100}});  // 4
  tsp::Tour tour({0, 1, 2, 3, 4});  // stray city 2 visited mid-right side
  const long long before = tour.length(inst);
  const auto result = or_opt(inst, tour);
  EXPECT_GT(result.moves, 0U);
  EXPECT_LT(tour.length(inst), before);
}

TEST(OrOpt, TinyInstancesNoOp) {
  for (std::size_t n : {1U, 2U, 3U, 4U}) {
    const auto inst = test::random_instance(n, n + 90);
    auto tour = tsp::Tour::identity(n);
    const auto result = or_opt(inst, tour);
    EXPECT_EQ(result.moves, 0U);
    EXPECT_TRUE(tour.is_valid(n));
  }
}

TEST(OrOpt, SegmentLengthCap) {
  const auto inst = test::random_instance(100, 95);
  auto tour = random_tour(inst, 1);
  OrOptOptions opt;
  opt.max_segment = 1;  // single-city relocation only
  const auto result = or_opt(inst, tour, opt);
  EXPECT_LE(result.final_length, result.initial_length);
  EXPECT_TRUE(tour.is_valid(100));
}

TEST(OrOpt, ConvergesToFixedPointUnderRepetition) {
  const auto inst = test::random_instance(120, 97);
  auto tour = random_tour(inst, 2);
  long long prev = tour.length(inst);
  bool fixed_point = false;
  for (int run = 0; run < 6; ++run) {
    const auto result = or_opt(inst, tour);
    EXPECT_LE(result.final_length, prev);
    if (result.moves == 0) {
      fixed_point = true;
      break;
    }
    prev = result.final_length;
  }
  EXPECT_TRUE(fixed_point);
}

}  // namespace
}  // namespace cim::heuristics
