// Golden regression pins for the QUBO/Ising front-end: fixed-seed
// anneals of the fixture GSet instances and the small penalty families
// must reproduce these exact values on every platform and under every
// CIMANNEAL_THREADS setting (the qubo_golden_threads_* ctest variants
// rerun this binary pinned to 1, 2 and 8 workers — the annealers are
// host-thread-independent, so the pins must not move).
#include <gtest/gtest.h>

#include "anneal/generic_annealer.hpp"
#include "anneal/maxcut_annealer.hpp"
#include "ising/generic.hpp"
#include "qubo/coloring.hpp"
#include "qubo/io.hpp"
#include "qubo/knapsack.hpp"

namespace cim {
namespace {

const std::string kFixtureDir = QUBO_FIXTURE_DIR;

anneal::MaxCutConfig maxcut_config(std::uint64_t seed) {
  anneal::MaxCutConfig config;
  config.schedule.total_iterations = 200;
  config.schedule.iterations_per_step = 25;
  config.seed = seed;
  return config;
}

anneal::GenericAnnealConfig generic_config(std::uint64_t seed) {
  anneal::GenericAnnealConfig config;
  config.schedule.total_iterations = 200;
  config.schedule.iterations_per_step = 25;
  config.seed = seed;
  return config;
}

TEST(QuboGolden, GsetBestCutsArePinned) {
  const struct {
    const char* file;
    std::uint64_t seed;
    long long optimum;   ///< brute-force maximum cut
    long long best_cut;  ///< pinned annealed result at this seed
  } cases[] = {
      {"ring8.gset", 1, 8, 8},
      {"petersen.gset", 1, 12, 12},
      {"signed5.gset", 1, 10, 10},
  };
  for (const auto& test_case : cases) {
    SCOPED_TRACE(test_case.file);
    const auto problem =
        qubo::load_gset_file(kFixtureDir + "/" + test_case.file);
    EXPECT_EQ(ising::brute_force_maxcut(problem), test_case.optimum);
    const auto result =
        anneal::MaxCutAnnealer(maxcut_config(test_case.seed)).solve(problem);
    EXPECT_EQ(result.best_cut, test_case.best_cut);
    // The pin must be reproducible within the same process too.
    const auto again =
        anneal::MaxCutAnnealer(maxcut_config(test_case.seed)).solve(problem);
    EXPECT_EQ(again.best_cut, result.best_cut);
    EXPECT_EQ(again.spins, result.spins);
  }
}

TEST(QuboGolden, ColoringReachesBruteForceOptimum) {
  // Even 6-ring, 2 colours, 12 variables encoded — 2-colourable, so the
  // pinned optimum is feasibility at energy exactly 0 (seed 8 is the
  // first seed whose 200-sweep anneal lands there).
  const auto instance = qubo::ring_coloring(6, 2);
  ASSERT_TRUE(qubo::brute_force_colorable(instance));
  const auto encoding = qubo::encode_coloring(instance);
  const auto result =
      anneal::GenericAnnealer(generic_config(8)).solve(encoding.model);
  EXPECT_DOUBLE_EQ(result.best_energy, 0.0);
  const auto decoded = encoding.decode(instance, result.best_spins);
  EXPECT_TRUE(decoded.feasible);
}

TEST(QuboGolden, KnapsackReachesBruteForceOptimum) {
  // 6 items + 4 slack digits, brute-force optimum 13 (items 1+2+4 at
  // weight 7). The capacity-7 mapping overflows 8-bit weights, so the
  // deterministic sign-descent mode plateaus on quantised dynamics —
  // the Metropolis (kLfsr) mode at seed 6 is the pinned run that lands
  // on the optimum.
  const auto instance =
      qubo::make_knapsack("golden6", {7, 2, 5, 4, 3, 6},
                          {4, 1, 3, 2, 2, 5}, 7);
  const long long oracle = qubo::brute_force_knapsack(instance);
  EXPECT_EQ(oracle, 13);
  const auto encoding = qubo::encode_knapsack(instance);
  auto config = generic_config(6);
  config.noise = anneal::NoiseMode::kLfsr;
  const auto result = anneal::GenericAnnealer(config).solve(encoding.model);
  EXPECT_DOUBLE_EQ(result.best_energy, -static_cast<double>(oracle));
  const auto decoded = encoding.decode(instance, result.best_spins);
  EXPECT_TRUE(decoded.feasible);
  EXPECT_EQ(decoded.value, oracle);
}

TEST(QuboGolden, JhFixtureAnnealIsPinned) {
  // chain4.jh: 4 spins, mixed couplings/fields — small enough that the
  // anneal must land on the brute-force optimum; both the integer energy
  // and the fingerprint are pinned.
  const auto model = qubo::load_jh_file(kFixtureDir + "/chain4.jh");
  EXPECT_EQ(model.fingerprint(),
            "sha256:"
            "ba84300c828933ab15696da40aa93e699e0967a44c2ada3a8fb97b9862e4251f");
  const auto result =
      anneal::GenericAnnealer(generic_config(1)).solve(model);
  EXPECT_EQ(result.best_energy_hw, -11);  // exhaustive optimum over 4 spins
}

}  // namespace
}  // namespace cim
