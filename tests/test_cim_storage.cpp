#include "cim/storage.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::hw {
namespace {

std::vector<std::uint8_t> random_image(std::uint32_t rows, std::uint32_t cols,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> image(static_cast<std::size_t>(rows) * cols);
  for (auto& w : image) w = static_cast<std::uint8_t>(rng.below(256));
  return image;
}

noise::SchedulePhase phase(std::uint64_t epoch, double vdd,
                           unsigned noisy_lsbs) {
  noise::SchedulePhase p;
  p.epoch = epoch;
  p.vdd = vdd;
  p.noisy_lsbs = noisy_lsbs;
  p.write_back = true;
  return p;
}

TEST(Storage, NoiseFreeMacIsExactDotProduct) {
  const auto image = random_image(15, 9, 1);
  for (const bool bit_level : {false, true}) {
    auto storage = bit_level
                       ? make_bit_level_storage(15, 9, nullptr, 0)
                       : make_fast_storage(15, 9, nullptr, 0);
    storage->write(image);
    util::Rng rng(2);
    for (int trial = 0; trial < 30; ++trial) {
      std::vector<std::uint8_t> input(15);
      for (auto& b : input) b = rng.chance(0.5) ? 1 : 0;
      const auto col = static_cast<std::uint32_t>(rng.below(9));
      std::int64_t expected = 0;
      for (std::uint32_t r = 0; r < 15; ++r) {
        if (input[r]) expected += image[r * 9 + col];
      }
      EXPECT_EQ(storage->mac(ColIndex(col), input), expected)
          << (bit_level ? "bit-level" : "fast");
    }
  }
}

TEST(Storage, BackendsProduceIdenticalErrorPatterns) {
  // The headline equivalence property: identical (model, cell_base, epoch,
  // vdd) must corrupt both backends identically, bit for bit.
  const noise::SramCellModel model(noise::SramNoiseParams{}, 99);
  const auto image = random_image(15, 9, 3);
  auto fast = make_fast_storage(15, 9, &model, 4096);
  auto bits = make_bit_level_storage(15, 9, &model, 4096);
  fast->write(image);
  bits->write(image);
  for (std::uint64_t epoch = 0; epoch < 6; ++epoch) {
    const auto p = phase(epoch, 0.30 + 0.04 * static_cast<double>(epoch),
                         6 - static_cast<unsigned>(epoch));
    fast->write_back(p);
    bits->write_back(p);
    for (std::uint32_t r = 0; r < 15; ++r) {
      for (std::uint32_t c = 0; c < 9; ++c) {
        ASSERT_EQ(fast->weight(RowIndex(r), ColIndex(c)), bits->weight(RowIndex(r), ColIndex(c)))
            << "epoch " << epoch << " cell " << r << "," << c;
      }
    }
    EXPECT_EQ(fast->counters().pseudo_read_flips,
              bits->counters().pseudo_read_flips);
  }
}

TEST(Storage, BackendsAgreeWithStuckCellsAndNoise) {
  // Regression: FastStorage::write_back used to corrupt on top of the
  // golden value instead of the stuck-adjusted one, silently healing hard
  // faults whenever noisy_lsbs > 0 and diverging from BitLevelStorage.
  noise::SramNoiseParams params;
  params.stuck_cell_rate = 0.05;
  const noise::SramCellModel model(params, 99);
  const auto image = random_image(15, 9, 3);
  auto fast = make_fast_storage(15, 9, &model, 4096);
  auto bits = make_bit_level_storage(15, 9, &model, 4096);
  fast->write(image);
  bits->write(image);
  std::size_t stuck_divergent = 0;
  for (std::uint64_t epoch = 0; epoch < 6; ++epoch) {
    const auto p = phase(epoch, 0.30 + 0.04 * static_cast<double>(epoch),
                         6 - static_cast<unsigned>(epoch));
    fast->write_back(p);
    bits->write_back(p);
    for (std::uint32_t r = 0; r < 15; ++r) {
      for (std::uint32_t c = 0; c < 9; ++c) {
        ASSERT_EQ(fast->weight(RowIndex(r), ColIndex(c)), bits->weight(RowIndex(r), ColIndex(c)))
            << "epoch " << epoch << " cell " << r << "," << c;
        if (fast->weight(RowIndex(r), ColIndex(c)) != image[r * 9 + c]) ++stuck_divergent;
      }
    }
    EXPECT_EQ(fast->counters().pseudo_read_flips,
              bits->counters().pseudo_read_flips);
  }
  // With a 5 % stuck rate some cells must diverge from the golden image
  // even after the backends agree — those are the hard faults the fast
  // backend used to erase.
  EXPECT_GT(stuck_divergent, 0U);
}

TEST(Storage, SparseMacMatchesDense) {
  // Equivalence invariant of mac_sparse(): same value and same counters
  // as mac() for any input and its set-row list (counters model hardware
  // row reads, so mac_bit_reads advances by rows·bits either way).
  const auto image = random_image(15, 9, 21);
  for (const bool bit_level : {false, true}) {
    auto dense = bit_level ? make_bit_level_storage(15, 9, nullptr, 0)
                           : make_fast_storage(15, 9, nullptr, 0);
    auto sparse = bit_level ? make_bit_level_storage(15, 9, nullptr, 0)
                            : make_fast_storage(15, 9, nullptr, 0);
    dense->write(image);
    sparse->write(image);
    util::Rng rng(4);
    for (int trial = 0; trial < 30; ++trial) {
      std::vector<std::uint8_t> input(15);
      std::vector<std::uint32_t> active;
      for (std::uint32_t r = 0; r < 15; ++r) {
        input[r] = rng.chance(0.4) ? 1 : 0;
        if (input[r]) active.push_back(r);
      }
      const auto col = static_cast<std::uint32_t>(rng.below(9));
      EXPECT_EQ(dense->mac(ColIndex(col), input), sparse->mac_sparse(ColIndex(col), active))
          << (bit_level ? "bit-level" : "fast");
    }
    EXPECT_EQ(dense->counters().macs, sparse->counters().macs);
    EXPECT_EQ(dense->counters().mac_bit_reads,
              sparse->counters().mac_bit_reads);
  }
}

TEST(Storage, SparseMacTriggersLazyCorruptionIdentically) {
  // kFlipOnAccess corrupts every cell of the addressed column on a MAC
  // (the pseudo-read hits the whole column on hardware); the sparse path
  // must replicate that state change exactly, not just the sum.
  const noise::SramCellModel model(noise::SramNoiseParams{}, 19);
  const auto image = random_image(15, 9, 12);
  auto dense = make_bit_level_storage(15, 9, &model, 0, 8,
                                      PseudoReadPolicy::kFlipOnAccess);
  auto sparse = make_bit_level_storage(15, 9, &model, 0, 8,
                                       PseudoReadPolicy::kFlipOnAccess);
  dense->write(image);
  sparse->write(image);
  const auto p = phase(1, 0.24, 6);
  dense->write_back(p);
  sparse->write_back(p);
  std::vector<std::uint8_t> input(15, 0);
  std::vector<std::uint32_t> active;
  for (std::uint32_t r = 0; r < 15; r += 3) {
    input[r] = 1;
    active.push_back(r);
  }
  for (std::uint32_t c = 0; c < 9; c += 2) {
    EXPECT_EQ(dense->mac(ColIndex(c), input), sparse->mac_sparse(ColIndex(c), active));
    for (std::uint32_t r = 0; r < 15; ++r) {
      for (std::uint32_t cc = 0; cc < 9; ++cc) {
        ASSERT_EQ(dense->weight(RowIndex(r), ColIndex(cc)), sparse->weight(RowIndex(r), ColIndex(cc)))
            << "after column " << c << " at " << r << "," << cc;
      }
    }
    EXPECT_EQ(dense->counters().pseudo_read_flips,
              sparse->counters().pseudo_read_flips);
  }
}

TEST(Storage, LowVddCorruptsManyCells) {
  const noise::SramCellModel model(noise::SramNoiseParams{}, 7);
  const auto image = random_image(24, 16, 5);
  auto storage = make_fast_storage(24, 16, &model, 0);
  storage->write(image);
  storage->write_back(phase(0, 0.25, 6));
  EXPECT_GT(storage->counters().pseudo_read_flips, 50U);
}

TEST(Storage, NominalVddIsClean) {
  const noise::SramCellModel model(noise::SramNoiseParams{}, 7);
  const auto image = random_image(24, 16, 6);
  auto storage = make_fast_storage(24, 16, &model, 0);
  storage->write(image);
  storage->write_back(phase(0, 0.80, 6));
  EXPECT_EQ(storage->counters().pseudo_read_flips, 0U);
  for (std::uint32_t r = 0; r < 24; ++r) {
    for (std::uint32_t c = 0; c < 16; ++c) {
      EXPECT_EQ(storage->weight(RowIndex(r), ColIndex(c)), image[r * 16 + c]);
    }
  }
}

TEST(Storage, ZeroNoisyLsbsIsClean) {
  const noise::SramCellModel model(noise::SramNoiseParams{}, 7);
  const auto image = random_image(15, 9, 7);
  auto storage = make_fast_storage(15, 9, &model, 0);
  storage->write(image);
  storage->write_back(phase(0, 0.20, 0));
  EXPECT_EQ(storage->counters().pseudo_read_flips, 0U);
}

TEST(Storage, NoiseConfinedToLsbs) {
  const noise::SramCellModel model(noise::SramNoiseParams{}, 11);
  const auto image = random_image(15, 9, 8);
  for (unsigned lsbs : {1U, 3U, 6U}) {
    auto storage = make_fast_storage(15, 9, &model, 0);
    storage->write(image);
    storage->write_back(phase(0, 0.22, lsbs));
    const std::uint8_t mask = static_cast<std::uint8_t>(~((1U << lsbs) - 1U));
    for (std::uint32_t r = 0; r < 15; ++r) {
      for (std::uint32_t c = 0; c < 9; ++c) {
        EXPECT_EQ(storage->weight(RowIndex(r), ColIndex(c)) & mask, image[r * 9 + c] & mask)
            << "MSBs must stay intact with " << lsbs << " noisy LSBs";
      }
    }
  }
}

TEST(Storage, WriteBackRestoresBeforeCorrupting) {
  // Consecutive write-backs must not accumulate: the error pattern of
  // epoch k is applied to the GOLDEN image, not to epoch k-1's corruption.
  const noise::SramCellModel model(noise::SramNoiseParams{}, 13);
  const auto image = random_image(15, 9, 9);
  auto a = make_fast_storage(15, 9, &model, 0);
  a->write(image);
  a->write_back(phase(5, 0.30, 6));
  std::vector<std::uint8_t> after_direct;
  for (std::uint32_t r = 0; r < 15; ++r) {
    for (std::uint32_t c = 0; c < 9; ++c) {
      after_direct.push_back(a->weight(RowIndex(r), ColIndex(c)));
    }
  }
  auto b = make_fast_storage(15, 9, &model, 0);
  b->write(image);
  b->write_back(phase(0, 0.20, 6));  // heavy corruption first
  b->write_back(phase(5, 0.30, 6));  // then the same epoch-5 pattern
  std::size_t i = 0;
  for (std::uint32_t r = 0; r < 15; ++r) {
    for (std::uint32_t c = 0; c < 9; ++c, ++i) {
      EXPECT_EQ(b->weight(RowIndex(r), ColIndex(c)), after_direct[i]);
    }
  }
}

TEST(Storage, DisjointCellBasesDecorrelate) {
  const noise::SramCellModel model(noise::SramNoiseParams{}, 17);
  const auto image = random_image(15, 9, 10);
  auto a = make_fast_storage(15, 9, &model, 0);
  auto b = make_fast_storage(15, 9, &model, 15 * 9 * 8);
  a->write(image);
  b->write(image);
  a->write_back(phase(0, 0.25, 6));
  b->write_back(phase(0, 0.25, 6));
  std::size_t differing = 0;
  for (std::uint32_t r = 0; r < 15; ++r) {
    for (std::uint32_t c = 0; c < 9; ++c) {
      if (a->weight(RowIndex(r), ColIndex(c)) != b->weight(RowIndex(r), ColIndex(c))) ++differing;
    }
  }
  EXPECT_GT(differing, 0U);
}

TEST(Storage, CountersAccumulate) {
  auto storage = make_fast_storage(10, 4, nullptr, 0, 8);
  storage->write(random_image(10, 4, 11));
  const std::vector<std::uint8_t> input(10, 1);
  storage->mac(ColIndex(0), input);
  storage->mac(ColIndex(1), input);
  storage->write_back(phase(0, 0.8, 0));
  const auto& c = storage->counters();
  EXPECT_EQ(c.macs, 2U);
  EXPECT_EQ(c.mac_bit_reads, 2U * 10U * 8U);
  EXPECT_EQ(c.writeback_events, 1U);
  EXPECT_EQ(c.writeback_bits, 10U * 4U * 8U);
  storage->reset_counters();
  EXPECT_EQ(storage->counters().macs, 0U);
}

TEST(Storage, FlipOnAccessOnlyTouchesAccessedCells) {
  const noise::SramCellModel model(noise::SramNoiseParams{}, 19);
  const auto image = random_image(15, 9, 12);
  auto lazy = make_bit_level_storage(15, 9, &model, 0, 8,
                                     PseudoReadPolicy::kFlipOnAccess);
  lazy->write(image);
  lazy->write_back(phase(0, 0.22, 6));
  // Nothing accessed yet: weights must still be golden.
  for (std::uint32_t r = 0; r < 15; ++r) {
    for (std::uint32_t c = 0; c < 9; ++c) {
      EXPECT_EQ(lazy->weight(RowIndex(r), ColIndex(c)), image[r * 9 + c]);
    }
  }
  // Access column 3: exactly that column may corrupt.
  std::vector<std::uint8_t> input(15, 1);
  lazy->mac(ColIndex(3), input);
  for (std::uint32_t r = 0; r < 15; ++r) {
    for (std::uint32_t c = 0; c < 9; ++c) {
      if (c != 3) {
        EXPECT_EQ(lazy->weight(RowIndex(r), ColIndex(c)), image[r * 9 + c]);
      }
    }
  }
}

TEST(Storage, FlipOnAccessConvergesToSettledPattern) {
  // After touching every column, the lazy policy must match the settle
  // policy exactly (same hash-derived pattern).
  const noise::SramCellModel model(noise::SramNoiseParams{}, 23);
  const auto image = random_image(15, 9, 13);
  auto lazy = make_bit_level_storage(15, 9, &model, 77, 8,
                                     PseudoReadPolicy::kFlipOnAccess);
  auto settle = make_bit_level_storage(15, 9, &model, 77, 8,
                                       PseudoReadPolicy::kSettleAtWriteBack);
  lazy->write(image);
  settle->write(image);
  const auto p = phase(2, 0.30, 6);
  lazy->write_back(p);
  settle->write_back(p);
  const std::vector<std::uint8_t> input(15, 1);
  for (std::uint32_t c = 0; c < 9; ++c) lazy->mac(ColIndex(c), input);
  for (std::uint32_t r = 0; r < 15; ++r) {
    for (std::uint32_t c = 0; c < 9; ++c) {
      EXPECT_EQ(lazy->weight(RowIndex(r), ColIndex(c)), settle->weight(RowIndex(r), ColIndex(c)));
    }
  }
}

TEST(Storage, StickyWithinEpoch) {
  // Two MACs in the same epoch read the same corrupted values.
  const noise::SramCellModel model(noise::SramNoiseParams{}, 29);
  auto storage = make_bit_level_storage(15, 9, &model, 0, 8,
                                        PseudoReadPolicy::kFlipOnAccess);
  storage->write(random_image(15, 9, 14));
  storage->write_back(phase(0, 0.25, 6));
  const std::vector<std::uint8_t> input(15, 1);
  const auto first = storage->mac(ColIndex(4), input);
  const auto second = storage->mac(ColIndex(4), input);
  EXPECT_EQ(first, second);
}

TEST(Storage, ValidationErrors) {
  EXPECT_THROW(make_fast_storage(0, 4, nullptr, 0), ConfigError);
  EXPECT_THROW(make_fast_storage(4, 4, nullptr, 0, 9), ConfigError);
  auto storage = make_fast_storage(4, 4, nullptr, 0);
  EXPECT_THROW(storage->write(std::vector<std::uint8_t>(3)), ConfigError);
  storage->write(std::vector<std::uint8_t>(16, 1));
  // Wrong input size trips the invariant.
  EXPECT_THROW(storage->mac(ColIndex(0), std::vector<std::uint8_t>(3)),
               InvariantError);
}

TEST(Storage, ReducedPrecision) {
  // 4-bit weights: values above 15 are never produced by MACs of 4-bit
  // images.
  auto storage = make_fast_storage(8, 2, nullptr, 0, 4);
  std::vector<std::uint8_t> image(16, 0x0F);
  storage->write(image);
  const std::vector<std::uint8_t> input(8, 1);
  EXPECT_EQ(storage->mac(ColIndex(0), input), 8 * 0x0F);
}

}  // namespace
}  // namespace cim::hw
