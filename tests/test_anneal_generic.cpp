// GenericAnnealer: the clustered-window anneal of arbitrary
// QUBO/Ising models. Mirrors the Max-Cut suite's equivalence discipline —
// the scalar unmemoized path is the oracle, and the vector kernel and
// partial-sum memo must reproduce it bit for bit (spins, energies, flip
// sequence, StorageCounters) — plus the front-end specifics: external
// fields via the bias row, group-strategy windows, exact integer
// energies from penalty families.
#include "anneal/generic_annealer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "ising/partition.hpp"
#include "qubo/coloring.hpp"
#include "qubo/knapsack.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::anneal {
namespace {

GenericAnnealConfig base_config() {
  GenericAnnealConfig config;
  config.schedule.total_iterations = 200;
  config.schedule.iterations_per_step = 25;
  config.seed = 1;
  return config;
}

/// Small random model with both couplings and fields, integer
/// coefficients (exact on the hardware).
ising::GenericModel random_model(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  ising::GenericModel model("rand", n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.chance(0.3)) {
        model.add_coupling(static_cast<ising::SpinIndex>(i),
                           static_cast<ising::SpinIndex>(j),
                           static_cast<double>(rng.range(-4, 4)));
      }
    }
    if (rng.chance(0.4)) {
      model.add_field(static_cast<ising::SpinIndex>(i),
                      static_cast<double>(rng.range(-3, 3)));
    }
  }
  return model;
}

long long brute_force_energy_hw(const ising::GenericModel& model) {
  const auto mapping = ising::map_to_hardware(model);
  const std::size_t n = model.size();
  EXPECT_LE(n, 20U);
  long long best = std::numeric_limits<long long>::max();
  std::vector<ising::Spin> spins(n);
  for (std::uint32_t mask = 0; mask < (1U << n); ++mask) {
    for (std::size_t i = 0; i < n; ++i) {
      spins[i] = (mask >> i) & 1U ? 1 : -1;
    }
    best = std::min(best, mapping.energy_hw(spins));
  }
  return best;
}

TEST(GenericAnnealer, ReachesBruteForceOptimumWithFields) {
  // Fields exercise the bias row; the optimum must appear across a few
  // seeds on instances this small.
  const auto model = random_model(12, 0xA001);
  const long long optimum = brute_force_energy_hw(model);
  long long best = std::numeric_limits<long long>::max();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto config = base_config();
    config.seed = seed;
    const auto result = GenericAnnealer(config).solve(model);
    EXPECT_GE(result.best_energy_hw, optimum);
    EXPECT_TRUE(result.exact_mapping);
    best = std::min(best, result.best_energy_hw);
  }
  EXPECT_EQ(best, optimum);
}

TEST(GenericAnnealer, SolvesColoringToFeasibility) {
  const auto instance = qubo::ring_coloring(6, 2);
  const auto encoding = qubo::encode_coloring(instance);
  double best = std::numeric_limits<double>::max();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto config = base_config();
    config.seed = seed;
    const auto result = GenericAnnealer(config).solve(encoding.model);
    best = std::min(best, result.best_energy);
    // Energies are exact hw integers, so 0 is exact.
    if (result.best_energy == 0.0) {  // NOLINT(unit-float-eq)
      const auto decoded = encoding.decode(instance, result.best_spins);
      EXPECT_TRUE(decoded.feasible);
    }
  }
  // A proper 2-colouring of the even ring has model energy exactly 0.
  EXPECT_DOUBLE_EQ(best, 0.0);
}

TEST(GenericAnnealer, SolvesKnapsackToOracleValue) {
  const auto instance =
      qubo::make_knapsack("toy", {6, 5, 4, 3}, {3, 2, 2, 1}, 5);
  const auto encoding = qubo::encode_knapsack(instance);
  const long long oracle = qubo::brute_force_knapsack(instance);
  const auto mapping = ising::map_to_hardware(encoding.model);
  // The tight default penalty (max value + 1) keeps this toy instance
  // exact in the 8-bit weight planes, so the dynamics see the true
  // value terms — with Σv + 1 they quantise to zero and the anneal
  // plateaus on an arbitrary feasible subset.
  EXPECT_TRUE(mapping.exact_in_bits(8));
  double best = std::numeric_limits<double>::max();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto config = base_config();
    config.seed = seed;
    const auto result = GenericAnnealer(config).solve(encoding.model);
    best = std::min(best,
                    mapping.to_model_energy(result.best_energy_hw,
                                            encoding.model.offset()));
  }
  EXPECT_DOUBLE_EQ(best, -static_cast<double>(oracle));
}

TEST(GenericAnnealer, EveryStrategyAnnealsValidly) {
  const auto model = random_model(30, 0xA002);
  for (const auto strategy : ising::all_group_strategies()) {
    SCOPED_TRACE(ising::group_strategy_name(strategy));
    auto config = base_config();
    config.strategy = strategy;
    config.group_block = 8;
    const auto result = GenericAnnealer(config).solve(model);
    EXPECT_EQ(result.spins.size(), model.size());
    EXPECT_GT(result.group_count, 0U);
    EXPECT_EQ(result.parallel_groups,
              strategy == ising::GroupStrategy::kChromatic);
    // Reported energies must match an independent evaluation.
    const auto mapping = ising::map_to_hardware(model);
    EXPECT_EQ(result.energy_hw, mapping.energy_hw(result.spins));
    EXPECT_EQ(result.best_energy_hw, mapping.energy_hw(result.best_spins));
    EXPECT_LE(result.best_energy_hw, result.energy_hw);
  }
}

TEST(GenericAnnealer, ChromaticCyclesBeatSequentialCycles) {
  const auto model = random_model(60, 0xA003);
  auto config = base_config();
  config.strategy = ising::GroupStrategy::kChromatic;
  const auto chromatic = GenericAnnealer(config).solve(model);
  config.strategy = ising::GroupStrategy::kIndexBlocks;
  const auto blocked = GenericAnnealer(config).solve(model);
  // Chromatic updates a whole independent set per cycle; blocked
  // strategies pay one cycle per spin.
  EXPECT_LT(chromatic.update_cycles, blocked.update_cycles);
}

TEST(GenericAnnealer, VectorKernelAndMemoMatchScalarExactly) {
  // 2×2 variant cross-product against the scalar unmemoized oracle, for
  // each strategy: identical spins, energies, flips, trace and counters.
  const auto model = random_model(70, 0xA004);
  for (const auto strategy :
       {ising::GroupStrategy::kChromatic, ising::GroupStrategy::kBfsBlocks}) {
    SCOPED_TRACE(ising::group_strategy_name(strategy));
    auto config = base_config();
    config.strategy = strategy;
    config.record_trace = true;
    config.vector_kernel = false;
    config.memoize_partial_sums = false;
    const auto oracle = GenericAnnealer(config).solve(model);
    for (const bool vector : {false, true}) {
      for (const bool memo : {false, true}) {
        if (!vector && !memo) continue;
        config.vector_kernel = vector;
        config.memoize_partial_sums = memo;
        const auto variant = GenericAnnealer(config).solve(model);
        SCOPED_TRACE(testing::Message()
                     << "vector " << vector << " memo " << memo);
        EXPECT_EQ(variant.spins, oracle.spins);
        EXPECT_EQ(variant.best_spins, oracle.best_spins);
        EXPECT_EQ(variant.energy_hw, oracle.energy_hw);
        EXPECT_EQ(variant.best_energy_hw, oracle.best_energy_hw);
        EXPECT_EQ(variant.flips, oracle.flips);
        EXPECT_EQ(variant.trace, oracle.trace);
        EXPECT_EQ(variant.storage.macs, oracle.storage.macs);
        EXPECT_EQ(variant.storage.mac_bit_reads,
                  oracle.storage.mac_bit_reads);
        EXPECT_EQ(variant.storage.writeback_events,
                  oracle.storage.writeback_events);
        EXPECT_EQ(variant.storage.writeback_bits,
                  oracle.storage.writeback_bits);
        EXPECT_EQ(variant.storage.pseudo_read_flips,
                  oracle.storage.pseudo_read_flips);
        if (memo) {
          EXPECT_GT(variant.memo_hits, 0U);
          EXPECT_EQ(variant.memo_hits + variant.memo_misses,
                    variant.sweeps * model.size());
        } else {
          EXPECT_EQ(variant.memo_hits, 0U);
        }
      }
    }
  }
}

TEST(GenericAnnealer, DeterministicPerSeed) {
  const auto model = random_model(40, 0xA005);
  const auto a = GenericAnnealer(base_config()).solve(model);
  const auto b = GenericAnnealer(base_config()).solve(model);
  EXPECT_EQ(a.spins, b.spins);
  EXPECT_EQ(a.energy_hw, b.energy_hw);
  EXPECT_EQ(a.flips, b.flips);
}

TEST(GenericAnnealer, QuantisedMappingStillReportsExactEnergies) {
  // Coefficients beyond the 8-bit plane range are scaled down for the
  // dynamics, but reported energies must stay exact (unquantised
  // mapping evaluation).
  ising::GenericModel model("big", 10);
  util::Rng rng(0xA006);
  for (std::size_t i = 0; i + 1 < 10; ++i) {
    model.add_coupling(static_cast<ising::SpinIndex>(i),
                       static_cast<ising::SpinIndex>(i + 1),
                       static_cast<double>(rng.range(-2000, 2000)));
  }
  const auto result = GenericAnnealer(base_config()).solve(model);
  EXPECT_FALSE(result.exact_mapping);
  const auto mapping = ising::map_to_hardware(model);
  EXPECT_EQ(result.energy_hw, mapping.energy_hw(result.spins));
  EXPECT_EQ(result.best_energy_hw, mapping.energy_hw(result.best_spins));
}

TEST(GenericAnnealer, LfsrAndNoNoiseModesRun) {
  const auto model = random_model(24, 0xA007);
  for (const NoiseMode mode : {NoiseMode::kNone, NoiseMode::kLfsr}) {
    auto config = base_config();
    config.noise = mode;
    const auto result = GenericAnnealer(config).solve(model);
    const auto mapping = ising::map_to_hardware(model);
    EXPECT_EQ(result.energy_hw, mapping.energy_hw(result.spins));
  }
}

TEST(GenericAnnealer, TraceRecordsEverySweep) {
  auto config = base_config();
  config.record_trace = true;
  const auto model = random_model(20, 0xA008);
  const auto result = GenericAnnealer(config).solve(model);
  EXPECT_EQ(result.trace.size(), result.sweeps);
  EXPECT_LE(result.best_energy_hw,
            *std::min_element(result.trace.begin(), result.trace.end()));
}

TEST(GenericAnnealer, WarmStartValidation) {
  const auto model = random_model(16, 0xA009);
  auto config = base_config();
  config.initial_spins.assign(8, 1);  // wrong size
  EXPECT_THROW(GenericAnnealer(config).solve(model), ConfigError);
  config.initial_spins.assign(16, 1);
  config.initial_spins[5] = 0;  // not ±1
  EXPECT_THROW(GenericAnnealer(config).solve(model), ConfigError);
  config.initial_spins[5] = -1;
  const auto warm_a = GenericAnnealer(config).solve(model);
  const auto warm_b = GenericAnnealer(config).solve(model);
  EXPECT_EQ(warm_a.spins, warm_b.spins);
}

TEST(GenericAnnealer, InvalidConfigThrows) {
  auto bad = base_config();
  bad.weight_bits = 0;
  EXPECT_THROW(GenericAnnealer{bad}, ConfigError);
  auto bad_block = base_config();
  bad_block.group_block = 0;
  EXPECT_THROW(GenericAnnealer{bad_block}, ConfigError);
}

TEST(GenericAnnealer, SingleSpinFieldOnlyModel) {
  // Degenerate shape: one spin, one field — the window is 2×1 (bias row
  // only coupling) and the optimum aligns the spin with the field.
  ising::GenericModel model("one", 1);
  model.add_field(0, 3.0);
  const auto result = GenericAnnealer(base_config()).solve(model);
  EXPECT_EQ(result.best_spins[0], 1);  // E = −h·σ minimised at σ = +1
  EXPECT_EQ(result.best_energy_hw, -3);
}

}  // namespace
}  // namespace cim::anneal
