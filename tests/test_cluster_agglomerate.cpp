#include "cluster/agglomerate.hpp"

#include <limits>
#include <numeric>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::cluster {
namespace {

std::vector<geo::Point> points_of(const tsp::Instance& inst) {
  return {inst.coords().begin(), inst.coords().end()};
}

void expect_partition(const std::vector<std::vector<std::uint32_t>>& groups,
                      std::size_t m) {
  std::vector<char> seen(m, 0);
  for (const auto& g : groups) {
    EXPECT_FALSE(g.empty());
    for (const auto idx : g) {
      ASSERT_LT(idx, m);
      EXPECT_FALSE(seen[idx]) << "point " << idx << " grouped twice";
      seen[idx] = 1;
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_TRUE(seen[i]) << "point " << i << " ungrouped";
  }
}

TEST(GroupFixed, ExactSizesWithOneRaggedTail) {
  const auto pts = points_of(test::random_instance(103, 1));
  util::Rng rng(1);
  const auto groups = group_fixed(pts, 4, rng);
  expect_partition(groups, 103);
  std::size_t ragged = 0;
  for (const auto& g : groups) {
    if (g.size() != 4) {
      ++ragged;
      EXPECT_LT(g.size(), 4U);
    }
  }
  EXPECT_LE(ragged, 1U);
  EXPECT_EQ(groups.size(), (103 + 3) / 4);
}

TEST(GroupFixed, SizeOneIsSingletons) {
  const auto pts = points_of(test::random_instance(10, 2));
  util::Rng rng(2);
  const auto groups = group_fixed(pts, 1, rng);
  EXPECT_EQ(groups.size(), 10U);
  expect_partition(groups, 10);
}

TEST(GroupFixed, FewerPointsThanSizeGivesOneGroup) {
  const auto pts = points_of(test::random_instance(3, 3));
  util::Rng rng(3);
  const auto groups = group_fixed(pts, 5, rng);
  EXPECT_EQ(groups.size(), 1U);
  expect_partition(groups, 3);
}

TEST(GroupFixed, GroupsAreSpatiallyCoherent) {
  // Grouped points must be closer to each other than to the average pair:
  // compare mean intra-group distance against the global mean.
  const auto inst = test::random_instance(200, 4, 1000.0);
  const auto pts = points_of(inst);
  util::Rng rng(4);
  const auto groups = group_fixed(pts, 3, rng);
  double intra = 0.0;
  std::size_t intra_n = 0;
  for (const auto& g : groups) {
    for (std::size_t a = 0; a < g.size(); ++a) {
      for (std::size_t b = a + 1; b < g.size(); ++b) {
        intra += geo::euclidean(pts[g[a]], pts[g[b]]);
        ++intra_n;
      }
    }
  }
  intra /= static_cast<double>(intra_n);
  // Uniform points in a 1000² square: mean pair distance ≈ 521.
  EXPECT_LT(intra, 260.0);
}

TEST(GroupAgglomerative, ReachesTargetRespectingCap) {
  const auto pts = points_of(test::random_instance(300, 5));
  const std::vector<std::uint32_t> weights(300, 1);
  util::Rng rng(5);
  const auto groups = group_agglomerative(pts, weights, 150, 3, rng);
  expect_partition(groups, 300);
  EXPECT_LE(groups.size(), 160U);  // near target (stalls allowed but rare)
  for (const auto& g : groups) {
    EXPECT_LE(g.size(), 3U);
  }
}

TEST(GroupAgglomerative, UnlimitedCap) {
  const auto pts = points_of(test::random_instance(128, 6));
  const std::vector<std::uint32_t> weights(128, 1);
  util::Rng rng(6);
  const auto groups = group_agglomerative(
      pts, weights, 64, std::numeric_limits<std::size_t>::max(), rng);
  expect_partition(groups, 128);
  EXPECT_EQ(groups.size(), 64U);
}

TEST(GroupAgglomerative, TargetAboveCountIsIdentity) {
  const auto pts = points_of(test::random_instance(10, 7));
  const std::vector<std::uint32_t> weights(10, 1);
  util::Rng rng(7);
  const auto groups = group_agglomerative(pts, weights, 20, 4, rng);
  EXPECT_EQ(groups.size(), 10U);
}

TEST(GroupAgglomerative, MergesNearestPairsFirst) {
  // Two tight pairs and two isolated points: with target 4 the pairs
  // must merge, the isolated points must stay single.
  const std::vector<geo::Point> pts{{0, 0},     {1, 0},      // pair A
                                    {100, 100}, {101, 100},  // pair B
                                    {500, 0},   {0, 500}};   // isolated
  const std::vector<std::uint32_t> weights(6, 1);
  util::Rng rng(8);
  const auto groups = group_agglomerative(pts, weights, 4, 2, rng);
  expect_partition(groups, 6);
  ASSERT_EQ(groups.size(), 4U);
  std::size_t pairs = 0;
  for (const auto& g : groups) {
    if (g.size() == 2) {
      ++pairs;
      const double d = geo::euclidean(pts[g[0]], pts[g[1]]);
      EXPECT_LT(d, 2.0);
    }
  }
  EXPECT_EQ(pairs, 2U);
}

TEST(GroupAgglomerative, InvalidArgsThrow) {
  const std::vector<geo::Point> pts{{0, 0}, {1, 1}};
  const std::vector<std::uint32_t> weights(2, 1);
  util::Rng rng(9);
  EXPECT_THROW(group_agglomerative(pts, weights, 0, 2, rng), ConfigError);
  EXPECT_THROW(group_agglomerative(pts, weights, 1, 1, rng), ConfigError);
}

}  // namespace
}  // namespace cim::cluster
