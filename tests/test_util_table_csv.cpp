#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace cim::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4  |"), std::string::npos);
}

TEST(Table, TitleAndFootnotes) {
  Table t({"x"});
  t.set_title("My Table");
  t.add_row({"v"});
  t.add_footnote("a note");
  const std::string out = t.render();
  EXPECT_NE(out.find("== My Table =="), std::string::npos);
  EXPECT_NE(out.find("* a note"), std::string::npos);
}

TEST(Table, SeparatorRow) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // 3 border rules + 1 separator = 4 "+--" lines.
  std::size_t rules = 0;
  for (std::size_t pos = out.find("+-"); pos != std::string::npos;
       pos = out.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_GE(rules, 4U);
}

TEST(Table, WrongArityThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InvariantError);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::percent(0.255, 1), "25.5%");
  const std::string sci = Table::sci(12345.0, 2);
  EXPECT_NE(sci.find("e+04"), std::string::npos);
}

TEST(Csv, RoundTripSimple) {
  CsvWriter w({"a", "b"});
  w.add_row({"1", "hello"});
  w.add_row({"2", "world"});
  const auto rows = parse_csv(w.render());
  ASSERT_EQ(rows.size(), 3U);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"2", "world"}));
}

TEST(Csv, QuotingRoundTrip) {
  CsvWriter w({"text"});
  w.add_row({"has,comma"});
  w.add_row({"has\"quote"});
  w.add_row({"has\nnewline"});
  const auto rows = parse_csv(w.render());
  ASSERT_EQ(rows.size(), 4U);
  EXPECT_EQ(rows[1][0], "has,comma");
  EXPECT_EQ(rows[2][0], "has\"quote");
  EXPECT_EQ(rows[3][0], "has\nnewline");
}

TEST(Csv, ParseCrlf) {
  const auto rows = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(Csv, ParseEmptyFields) {
  const auto rows = parse_csv("a,,c\n");
  ASSERT_EQ(rows.size(), 1U);
  ASSERT_EQ(rows[0].size(), 3U);
  EXPECT_EQ(rows[0][1], "");
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("\"oops"), ParseError);
}

TEST(Csv, WrongArityThrows) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), InvariantError);
}

TEST(Csv, SaveFailsOnBadPath) {
  CsvWriter w({"a"});
  w.add_row({"1"});
  EXPECT_THROW(w.save("/nonexistent_dir_zz/file.csv"), Error);
}

}  // namespace
}  // namespace cim::util
