#include "cim/adder_tree.hpp"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::hw {
namespace {

TEST(AdderTree, DepthIsCeilLog2) {
  EXPECT_EQ(AdderTree(1).depth(), 0U);
  EXPECT_EQ(AdderTree(2).depth(), 1U);
  EXPECT_EQ(AdderTree(3).depth(), 2U);
  EXPECT_EQ(AdderTree(8).depth(), 3U);
  EXPECT_EQ(AdderTree(9).depth(), 4U);
  // The paper's p_max=3 window column: p²+2p = 15 rows → depth 4.
  EXPECT_EQ(AdderTree(15).depth(), 4U);
}

TEST(AdderTree, AdderCountIsFanInMinusOne) {
  for (std::uint32_t fan_in : {1U, 2U, 5U, 8U, 15U, 24U, 100U}) {
    EXPECT_EQ(AdderTree(fan_in).adders_per_reduction(), fan_in - 1)
        << "fan_in=" << fan_in;
  }
}

TEST(AdderTree, ReduceEqualsPlainSum) {
  util::Rng rng(1);
  for (std::uint32_t fan_in : {1U, 2U, 7U, 15U, 24U, 63U}) {
    AdderTree tree(fan_in);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<std::uint8_t> products(fan_in);
      std::uint32_t expected = 0;
      for (auto& p : products) {
        p = rng.chance(0.5) ? 1 : 0;
        expected += p;
      }
      EXPECT_EQ(tree.reduce(products), expected);
    }
  }
}

TEST(AdderTree, ShiftAndAddEqualsDotProduct) {
  util::Rng rng(2);
  constexpr std::uint32_t kFanIn = 15;
  constexpr std::uint32_t kBits = 8;
  AdderTree tree(kFanIn);
  for (int trial = 0; trial < 50; ++trial) {
    // Random 8-bit weights and input bits; planes laid out bit-major.
    std::vector<std::uint8_t> weights(kFanIn);
    std::vector<std::uint8_t> inputs(kFanIn);
    for (std::uint32_t r = 0; r < kFanIn; ++r) {
      weights[r] = static_cast<std::uint8_t>(rng.below(256));
      inputs[r] = rng.chance(0.5) ? 1 : 0;
    }
    std::vector<std::uint8_t> planes(kBits * kFanIn);
    for (std::uint32_t b = 0; b < kBits; ++b) {
      for (std::uint32_t r = 0; r < kFanIn; ++r) {
        planes[b * kFanIn + r] =
            static_cast<std::uint8_t>(inputs[r] & ((weights[r] >> b) & 1));
      }
    }
    std::uint64_t expected = 0;
    for (std::uint32_t r = 0; r < kFanIn; ++r) {
      if (inputs[r]) expected += weights[r];
    }
    EXPECT_EQ(tree.shift_and_add(planes, kBits), expected);
  }
}

TEST(AdderTree, CountersTrackActivity) {
  AdderTree tree(8);
  const std::vector<std::uint8_t> ones(8, 1);
  EXPECT_EQ(tree.reductions(), 0U);
  tree.reduce(ones);
  tree.reduce(ones);
  EXPECT_EQ(tree.reductions(), 2U);
  EXPECT_EQ(tree.total_adder_ops(), 2U * 7U);
  tree.reset_counters();
  EXPECT_EQ(tree.reductions(), 0U);
  EXPECT_EQ(tree.total_adder_ops(), 0U);
}

TEST(AdderTree, ShiftAndAddCountsBitPlaneReductions) {
  AdderTree tree(4);
  const std::vector<std::uint8_t> planes(4 * 8, 1);
  tree.shift_and_add(planes, 8);
  EXPECT_EQ(tree.reductions(), 8U);
}

TEST(AdderTree, SingleInputPassThrough) {
  AdderTree tree(1);
  EXPECT_EQ(tree.reduce(std::vector<std::uint8_t>{1}), 1U);
  EXPECT_EQ(tree.reduce(std::vector<std::uint8_t>{0}), 0U);
  EXPECT_EQ(tree.adders_per_reduction(), 0U);
}

TEST(AdderTree, ZeroFanInThrows) {
  EXPECT_THROW(AdderTree(0), ConfigError);
}

TEST(AdderTree, MaxValueNoOverflow) {
  // All ones at the paper's largest window (p_max=4: 24 rows, 8 bits):
  // result = 24 * 255.
  constexpr std::uint32_t kFanIn = 24;
  AdderTree tree(kFanIn);
  std::vector<std::uint8_t> planes(8 * kFanIn, 1);
  EXPECT_EQ(tree.shift_and_add(planes, 8),
            static_cast<std::uint64_t>(kFanIn) * 255U);
}

}  // namespace
}  // namespace cim::hw
