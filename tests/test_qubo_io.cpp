// The QUBO/Ising front-end parsers (src/qubo/io.hpp): fixture corpus,
// strict-rejection properties, write→parse round-trip identity, and
// deterministic mutation fuzzing. The corpus contract is documented in
// tests/qubo_fixtures/README.md: bad_* must raise ConfigError, the rest
// must parse and round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ising/generic.hpp"
#include "qubo/io.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cim {
namespace {

namespace fs = std::filesystem;

const fs::path kFixtureDir = QUBO_FIXTURE_DIR;

std::string slurp(const fs::path& path) {
  std::ifstream stream(path);
  EXPECT_TRUE(stream.good()) << path;
  std::ostringstream text;
  text << stream.rdbuf();
  return text.str();
}

std::vector<fs::path> corpus(const std::string& extension, bool bad) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(kFixtureDir)) {
    const auto name = entry.path().filename().string();
    if (entry.path().extension() != extension) continue;
    if ((name.rfind("bad_", 0) == 0) != bad) continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  EXPECT_FALSE(files.empty()) << extension << " bad=" << bad;
  return files;
}

TEST(QuboFixtures, ValidGsetFilesParseAndRoundTrip) {
  for (const auto& path : corpus(".gset", /*bad=*/false)) {
    SCOPED_TRACE(path.string());
    const auto problem = qubo::load_gset_file(path.string());
    EXPECT_GE(problem.size(), 2U);
    EXPECT_EQ(problem.name(), path.string());

    const std::string canon = qubo::write_gset(problem);
    const auto reparsed = qubo::parse_gset(canon, "round-trip");
    ASSERT_EQ(reparsed.size(), problem.size());
    ASSERT_EQ(reparsed.edge_count(), problem.edge_count());
    for (std::size_t e = 0; e < problem.edge_count(); ++e) {
      EXPECT_EQ(reparsed.edges()[e].a, problem.edges()[e].a);
      EXPECT_EQ(reparsed.edges()[e].b, problem.edges()[e].b);
      EXPECT_EQ(reparsed.edges()[e].w, problem.edges()[e].w);
    }
    // The canonical writer is a fixed point.
    EXPECT_EQ(qubo::write_gset(reparsed), canon);
  }
}

TEST(QuboFixtures, ValidJhFilesParseAndRoundTrip) {
  for (const auto& path : corpus(".jh", /*bad=*/false)) {
    SCOPED_TRACE(path.string());
    const auto model = qubo::load_jh_file(path.string());
    EXPECT_GE(model.size(), 1U);

    const std::string canon = qubo::write_jh(model);
    const auto reparsed = qubo::parse_jh(canon, "round-trip");
    ASSERT_EQ(reparsed.size(), model.size());
    EXPECT_DOUBLE_EQ(reparsed.offset(), model.offset());
    for (ising::SpinIndex i = 0; i < model.size(); ++i) {
      EXPECT_DOUBLE_EQ(reparsed.field(i), model.field(i));
    }
    ASSERT_EQ(reparsed.coupling_count(), model.coupling_count());
    for (std::size_t c = 0; c < model.coupling_count(); ++c) {
      EXPECT_EQ(reparsed.couplings()[c].a, model.couplings()[c].a);
      EXPECT_EQ(reparsed.couplings()[c].b, model.couplings()[c].b);
      EXPECT_DOUBLE_EQ(reparsed.couplings()[c].j, model.couplings()[c].j);
    }
    // Identical content ⇒ identical fingerprint and canonical text.
    EXPECT_EQ(reparsed.fingerprint(), model.fingerprint());
    EXPECT_EQ(qubo::write_jh(reparsed), canon);
  }
}

TEST(QuboFixtures, BadGsetFilesRaiseConfigError) {
  for (const auto& path : corpus(".gset", /*bad=*/true)) {
    SCOPED_TRACE(path.string());
    EXPECT_THROW(qubo::load_gset_file(path.string()), ConfigError);
  }
}

TEST(QuboFixtures, BadJhFilesRaiseConfigError) {
  for (const auto& path : corpus(".jh", /*bad=*/true)) {
    SCOPED_TRACE(path.string());
    EXPECT_THROW(qubo::load_jh_file(path.string()), ConfigError);
  }
}

TEST(QuboIo, ErrorsCarryTheOffendingLineNumber) {
  // Edge 2 is on line 3 of the text.
  try {
    qubo::parse_gset("3 2\n1 2 1\n2 2 1\n");
    FAIL() << "self-loop must be rejected";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
  }
}

TEST(QuboIo, MissingFileRaisesTypedError) {
  EXPECT_THROW(qubo::load_gset_file("/nonexistent/x.gset"), Error);
  EXPECT_THROW(qubo::load_jh_file("/nonexistent/x.jh"), Error);
}

TEST(QuboIo, EmptyInputsAreRejected) {
  EXPECT_THROW(qubo::parse_gset(""), ConfigError);
  EXPECT_THROW(qubo::parse_jh(""), ConfigError);
  EXPECT_THROW(qubo::parse_jh("# only a comment\n"), ConfigError);
}

TEST(QuboIo, JhCommentsAndBlankLinesAreIgnored) {
  const auto model = qubo::parse_jh(
      "# header comment\n\n2 1   # trailing comment\n\n0 1 -3.5\n");
  EXPECT_EQ(model.size(), 2U);
  ASSERT_EQ(model.coupling_count(), 1U);
  EXPECT_DOUBLE_EQ(model.couplings()[0].j, -3.5);
}

TEST(QuboIo, GsetRejectsIntegerOverflowInEveryField) {
  EXPECT_THROW(qubo::parse_gset("99999999999 0\n"), ConfigError);
  EXPECT_THROW(qubo::parse_gset("3 99999999999\n"), ConfigError);
  EXPECT_THROW(qubo::parse_gset("3 1\n1 2 3000000000\n"), ConfigError);
}

TEST(QuboIo, JhWriterEmitsParseableDoublesAtFullPrecision) {
  ising::GenericModel model("precision", 3);
  model.add_coupling(0, 1, 1.0 / 3.0);
  model.add_field(2, -0.1234567890123456789);
  model.add_offset(1e-300);
  const auto reparsed = qubo::parse_jh(qubo::write_jh(model));
  EXPECT_DOUBLE_EQ(reparsed.couplings()[0].j, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(reparsed.field(2), -0.1234567890123456789);
  EXPECT_DOUBLE_EQ(reparsed.offset(), 1e-300);
}

/// Applies `count` random single-character mutations (same idiom as
/// tests/test_fuzz_robustness.cpp).
std::string mutate(const std::string& base, util::Rng& rng,
                   std::size_t count) {
  std::string text = base;
  for (std::size_t m = 0; m < count && !text.empty(); ++m) {
    const std::size_t pos = rng.below(text.size());
    switch (rng.below(3)) {
      case 0:
        text[pos] = static_cast<char>(rng.range(32, 126));
        break;
      case 1:
        text.erase(pos, 1);
        break;
      default:
        text.insert(pos, 1, static_cast<char>(rng.range(32, 126)));
    }
  }
  return text;
}

TEST(QuboFuzz, GsetParserNeverEscapesTypedErrors) {
  const std::string valid = slurp(kFixtureDir / "petersen.gset");
  util::Rng rng(0xBEE1);
  std::size_t parsed_ok = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const auto text = mutate(valid, rng, 1 + rng.below(8));
    try {
      const auto problem = qubo::parse_gset(text, "fuzz");
      // A parse that succeeds must be internally consistent.
      EXPECT_GE(problem.size(), 2U);
      for (const auto& e : problem.edges()) {
        EXPECT_LT(e.a, problem.size());
        EXPECT_LT(e.b, problem.size());
        EXPECT_NE(e.a, e.b);
      }
      ++parsed_ok;
    } catch (const Error&) {
      // Typed rejection is the expected outcome for most mutations.
    }
  }
  EXPECT_GT(parsed_ok, 0U);
}

TEST(QuboFuzz, JhParserNeverEscapesTypedErrors) {
  const std::string valid = slurp(kFixtureDir / "chain4.jh");
  util::Rng rng(0xBEE2);
  std::size_t parsed_ok = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const auto text = mutate(valid, rng, 1 + rng.below(8));
    try {
      const auto model = qubo::parse_jh(text, "fuzz");
      EXPECT_GE(model.size(), 1U);
      for (const auto& c : model.couplings()) {
        EXPECT_LT(c.a, c.b);
        EXPECT_LT(c.b, model.size());
      }
      ++parsed_ok;
    } catch (const Error&) {
    }
  }
  EXPECT_GT(parsed_ok, 0U);
}

TEST(QuboFuzz, RandomModelsRoundTripThroughJhText) {
  util::Rng rng(0xBEE3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.below(12);
    ising::GenericModel model("rt", n);
    const std::size_t terms = rng.below(2 * n + 1);
    for (std::size_t t = 0; t < terms; ++t) {
      const auto i = static_cast<ising::SpinIndex>(rng.below(n));
      const auto j = static_cast<ising::SpinIndex>(rng.below(n));
      const double value = rng.uniform(-8.0, 8.0);
      if (i == j) {
        model.add_field(i, value);
      } else {
        model.add_coupling(i, j, value);
      }
    }
    if (rng.chance(0.5)) model.add_offset(rng.uniform(-10.0, 10.0));
    const auto reparsed = qubo::parse_jh(qubo::write_jh(model), "rt");
    EXPECT_EQ(reparsed.fingerprint(), model.fingerprint());
  }
}

}  // namespace
}  // namespace cim
