// Failure-injection tests: malformed inputs, hostile configurations and
// corrupted hardware state must fail loudly (typed exceptions), never
// silently corrupt results.
#include <gtest/gtest.h>

#include "anneal/clustered_annealer.hpp"
#include "cim/storage.hpp"
#include "cluster/hierarchy.hpp"
#include "core/solver.hpp"
#include "ising/pbm.hpp"
#include "test_helpers.hpp"
#include "tsp/tsplib.hpp"
#include "util/error.hpp"

namespace cim {
namespace {

TEST(FailureInjection, TruncatedTsplibFile) {
  const std::string truncated =
      "NAME : broken\nTYPE : TSP\nDIMENSION : 100\n"
      "EDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 1 1\n";
  EXPECT_THROW(tsp::parse_tsplib(truncated), ParseError);
}

TEST(FailureInjection, GarbageTsplibFile) {
  EXPECT_THROW(tsp::parse_tsplib("complete nonsense\nnot a tsp file\n"),
               ParseError);
  EXPECT_THROW(tsp::parse_tsplib(""), ParseError);
}

TEST(FailureInjection, BinaryGarbage) {
  std::string binary(256, '\0');
  for (std::size_t i = 0; i < binary.size(); ++i) {
    binary[i] = static_cast<char>(i ^ 0xA5);
  }
  EXPECT_THROW(tsp::parse_tsplib(binary), Error);
}

TEST(FailureInjection, NegativeDimension) {
  EXPECT_THROW(
      tsp::parse_tsplib("TYPE : TSP\nDIMENSION : -5\n"
                        "EDGE_WEIGHT_TYPE : EUC_2D\n"
                        "NODE_COORD_SECTION\n1 0 0\nEOF\n"),
      ParseError);
}

TEST(FailureInjection, HostileSolverConfigs) {
  core::SolverConfig p_zero;
  p_zero.p_max = 0;
  EXPECT_THROW(core::CimSolver{p_zero}, ConfigError);

  core::SolverConfig bits_zero;
  bits_zero.weight_bits = 0;
  EXPECT_THROW(core::CimSolver(bits_zero).solve(test::random_instance(10, 1)),
               ConfigError);

  core::SolverConfig bad_schedule;
  bad_schedule.schedule.total_iterations = 0;
  EXPECT_THROW(
      core::CimSolver(bad_schedule).solve(test::random_instance(10, 1)),
      ConfigError);

  core::SolverConfig bad_sram;
  bad_sram.sram.sigma_vth = -1.0;
  EXPECT_THROW(
      core::CimSolver(bad_sram).solve(test::random_instance(10, 1)),
      ConfigError);
}

TEST(FailureInjection, AnnealerOnExplicitInstance) {
  // Clustering needs coordinates; an explicit matrix must be rejected
  // loudly, not produce a garbage hierarchy.
  const auto expl = test::to_explicit(test::random_instance(20, 2));
  anneal::AnnealerConfig config;
  EXPECT_THROW(anneal::ClusteredAnnealer(config).solve(expl), ConfigError);
}

TEST(FailureInjection, PbmRejectsForeignTour) {
  const auto inst = test::random_instance(10, 3);
  EXPECT_THROW(ising::PbmState(inst, tsp::Tour::identity(9)), ConfigError);
}

TEST(FailureInjection, StorageMisuse) {
  auto storage = hw::make_fast_storage(4, 4, nullptr, 0);
  // write_back before write violates an invariant.
  noise::SchedulePhase phase;
  EXPECT_THROW(storage->write_back(phase), InvariantError);
}

TEST(FailureInjection, StuckAtCellsDegradeGracefully) {
  // A pathological noise model where nearly every cell is broken (huge
  // mismatch): the annealer must still return a valid tour — quality
  // degrades, correctness does not.
  const auto inst = test::random_instance(80, 4);
  anneal::AnnealerConfig config;
  config.clustering.p = 3;
  config.sram.sigma_vth = 1.0;      // extreme variation
  config.sram.disturb_base = 2.0;   // extreme disturbance
  const auto result = anneal::ClusteredAnnealer(config).solve(inst);
  EXPECT_TRUE(result.tour.is_valid(80));
  EXPECT_GT(result.hw.storage.pseudo_read_flips, 0U);
}

TEST(FailureInjection, AllNoiseScheduleNeverConverging) {
  // A schedule that never anneals (VDD stays low) must still terminate
  // and produce a valid tour.
  const auto inst = test::random_instance(60, 5);
  anneal::AnnealerConfig config;
  config.schedule.vdd_step = 0.0;  // stuck at 300 mV
  const auto result = anneal::ClusteredAnnealer(config).solve(inst);
  EXPECT_TRUE(result.tour.is_valid(60));
}

TEST(FailureInjection, DegenerateGeometry) {
  // All cities collinear and tightly spaced: quantisation squeezes many
  // distances to the same code; still valid output.
  std::vector<geo::Point> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({static_cast<double>(i) * 0.001, 0.0});
  }
  const tsp::Instance inst("line", geo::Metric::kEuc2D, std::move(pts));
  anneal::AnnealerConfig config;
  const auto result = anneal::ClusteredAnnealer(config).solve(inst);
  EXPECT_TRUE(result.tour.is_valid(50));
}

TEST(FailureInjection, CoincidentCities) {
  // Duplicate coordinates give zero-distance pairs; nothing divides by
  // the distance so this must work.
  std::vector<geo::Point> pts(30, geo::Point{5.0, 5.0});
  pts.resize(60);
  for (std::size_t i = 30; i < 60; ++i) {
    pts[i] = {static_cast<double>(i), 10.0};
  }
  const tsp::Instance inst("dup", geo::Metric::kEuc2D, std::move(pts));
  anneal::AnnealerConfig config;
  const auto result = anneal::ClusteredAnnealer(config).solve(inst);
  EXPECT_TRUE(result.tour.is_valid(60));
}

TEST(FailureInjection, AssertMacrosThrow) {
  EXPECT_THROW(CIM_ASSERT(false), InvariantError);
  EXPECT_THROW(CIM_ASSERT_MSG(false, "context"), InvariantError);
  EXPECT_THROW(CIM_REQUIRE(false, "user error"), ConfigError);
  EXPECT_NO_THROW(CIM_ASSERT(true));
  try {
    CIM_ASSERT_MSG(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace cim
