#include "core/solver.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tsp/generator.hpp"
#include "util/error.hpp"

namespace cim::core {
namespace {

TEST(CimSolver, EndToEndOutcome) {
  const auto inst = test::random_instance(200, 1);
  const CimSolver solver;
  const auto outcome = solver.solve(inst);
  EXPECT_TRUE(outcome.anneal.tour.is_valid(200));
  EXPECT_EQ(outcome.tour_length, outcome.anneal.length);
  ASSERT_TRUE(outcome.reference_length.has_value());
  ASSERT_TRUE(outcome.optimal_ratio.has_value());
  EXPECT_GT(*outcome.optimal_ratio, 0.99);
  EXPECT_LT(*outcome.optimal_ratio, 3.0);
  ASSERT_TRUE(outcome.ppa.has_value());
  EXPECT_GT(outcome.ppa->chip_area.um2(), 0.0);
  EXPECT_GT(outcome.ppa->latency.total().seconds(), 0.0);
  EXPECT_GT(outcome.solve_wall_seconds, 0.0);
}

TEST(CimSolver, ReferenceCanBeDisabled) {
  const auto inst = test::random_instance(100, 2);
  SolverConfig config;
  config.compute_reference = false;
  config.compute_ppa = false;
  const CimSolver solver(config);
  const auto outcome = solver.solve(inst);
  EXPECT_FALSE(outcome.reference_length.has_value());
  EXPECT_FALSE(outcome.optimal_ratio.has_value());
  EXPECT_FALSE(outcome.ppa.has_value());
}

TEST(CimSolver, ConfigValidation) {
  SolverConfig zero_p;
  zero_p.p_max = 0;
  EXPECT_THROW(CimSolver{zero_p}, ConfigError);
  SolverConfig fixed_one;
  fixed_one.strategy = cluster::Strategy::kFixed;
  fixed_one.p_max = 1;
  EXPECT_THROW(CimSolver{fixed_one}, ConfigError);
}

TEST(CimSolver, DesignPointMirrorsConfig) {
  SolverConfig config;
  config.p_max = 4;
  config.strategy = cluster::Strategy::kFixed;
  const CimSolver solver(config);
  const auto point = solver.design_point("x", 1000);
  EXPECT_EQ(point.p, 4U);
  EXPECT_EQ(point.strategy, hw::SizingStrategy::kFixed);
  EXPECT_EQ(point.n_cities, 1000U);
}

TEST(CimSolver, AnnealerConfigMirrorsConfig) {
  SolverConfig config;
  config.p_max = 2;
  config.noise = anneal::NoiseMode::kLfsr;
  config.chromatic_parallel = false;
  const CimSolver solver(config);
  const auto cfg = solver.annealer_config();
  EXPECT_EQ(cfg.clustering.p, 2U);
  EXPECT_EQ(cfg.noise, anneal::NoiseMode::kLfsr);
  EXPECT_FALSE(cfg.chromatic_parallel);
}

TEST(CimSolver, QualityBandOnPaperStyleInstance) {
  // The headline quality claim: < 25% overhead over near-optimal on the
  // paper's instance families (small mimic for test speed).
  const auto inst = tsp::make_paper_instance("pcb700");
  SolverConfig config;
  config.p_max = 3;
  const auto outcome = CimSolver(config).solve(inst);
  ASSERT_TRUE(outcome.optimal_ratio.has_value());
  EXPECT_LT(*outcome.optimal_ratio, 1.5);
}

TEST(CimSolver, SeedReproducibility) {
  const auto inst = test::random_instance(150, 3);
  SolverConfig config;
  config.seed = 777;
  config.compute_reference = false;
  config.compute_ppa = false;
  const auto a = CimSolver(config).solve(inst);
  const auto b = CimSolver(config).solve(inst);
  EXPECT_EQ(a.tour_length, b.tour_length);
  EXPECT_EQ(a.anneal.tour, b.anneal.tour);
}

TEST(CimSolver, PostRefineImprovesOrMatches) {
  const auto inst = test::random_instance(250, 8);
  SolverConfig raw;
  raw.compute_ppa = false;
  SolverConfig light = raw;
  light.post_refine = PostRefine::kLight;
  SolverConfig full = raw;
  full.post_refine = PostRefine::kFull;

  const auto r = CimSolver(raw).solve(inst);
  const auto l = CimSolver(light).solve(inst);
  const auto f = CimSolver(full).solve(inst);
  EXPECT_EQ(r.tour_length, r.hardware_length);
  EXPECT_LE(l.tour_length, l.hardware_length);
  EXPECT_LE(f.tour_length, f.hardware_length);
  EXPECT_LE(f.tour_length, l.tour_length);
  EXPECT_TRUE(f.anneal.tour.is_valid(250));
  EXPECT_EQ(f.tour_length, f.anneal.tour.length(inst));
}

TEST(CimSolver, ReplicasKeepBest) {
  const auto inst = test::random_instance(150, 9);
  SolverConfig config;
  config.replicas = 4;
  config.compute_ppa = false;
  config.compute_reference = false;
  const auto outcome = CimSolver(config).solve(inst);
  ASSERT_EQ(outcome.replica_lengths.size(), 4U);
  for (const long long len : outcome.replica_lengths) {
    EXPECT_GE(len, outcome.hardware_length);
  }
}

TEST(CimSolver, ZeroReplicasRejected) {
  SolverConfig config;
  config.replicas = 0;
  EXPECT_THROW(CimSolver{config}, ConfigError);
}

TEST(CimSolver, PpaDesignPointUsesMeasuredDepth) {
  const auto inst = test::random_instance(300, 4);
  const auto outcome = CimSolver().solve(inst);
  ASSERT_TRUE(outcome.ppa.has_value());
  EXPECT_EQ(outcome.ppa->depth, outcome.anneal.hierarchy_depth);
}

}  // namespace
}  // namespace cim::core
