#include "anneal/ensemble.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::anneal {
namespace {

EnsembleConfig base_config(std::size_t replicas) {
  EnsembleConfig config;
  config.base.clustering.p = 3;
  config.base.seed = 9;
  config.replicas = replicas;
  return config;
}

TEST(Ensemble, BestIsMinimumOfReplicas) {
  const auto inst = test::random_instance(150, 1);
  const ReplicaEnsemble ensemble(base_config(4));
  const auto result = ensemble.solve(inst);
  ASSERT_EQ(result.replica_lengths.size(), 4U);
  const long long min_len = *std::min_element(
      result.replica_lengths.begin(), result.replica_lengths.end());
  EXPECT_EQ(result.best.length, min_len);
  EXPECT_EQ(result.replica_lengths[result.best_replica], min_len);
  EXPECT_TRUE(result.best.tour.is_valid(150));
  EXPECT_LE(result.best.length, static_cast<long long>(
                                    result.mean_length() + 0.5));
  EXPECT_GE(result.worst_length(), result.best.length);
}

TEST(Ensemble, ThreadedMatchesSequential) {
  const auto inst = test::random_instance(120, 2);
  auto threaded_cfg = base_config(3);
  auto sequential_cfg = base_config(3);
  sequential_cfg.use_threads = false;
  const auto threaded = ReplicaEnsemble(threaded_cfg).solve(inst);
  const auto sequential = ReplicaEnsemble(sequential_cfg).solve(inst);
  EXPECT_EQ(threaded.replica_lengths, sequential.replica_lengths);
  EXPECT_EQ(threaded.best.length, sequential.best.length);
}

TEST(Ensemble, ReplicasAreDiverse) {
  const auto inst = test::random_instance(200, 3);
  const auto result = ReplicaEnsemble(base_config(5)).solve(inst);
  // Not all replicas land on identical lengths (noise seeds differ).
  const auto& lens = result.replica_lengths;
  EXPECT_TRUE(std::adjacent_find(lens.begin(), lens.end(),
                                 std::not_equal_to<>()) != lens.end());
}

TEST(Ensemble, MoreReplicasNeverWorseInExpectation) {
  const auto inst = test::random_instance(150, 4);
  auto single = base_config(1);
  const auto one = ReplicaEnsemble(single).solve(inst);
  const auto many = ReplicaEnsemble(base_config(6)).solve(inst);
  // Replica 0 of the ensemble shares the derivation of the single run's
  // seed, so best-of-6 ≤ run-with-same-base-seed.
  EXPECT_LE(many.best.length, one.best.length);
}

TEST(Ensemble, SingleReplicaWorks) {
  const auto inst = test::random_instance(80, 5);
  const auto result = ReplicaEnsemble(base_config(1)).solve(inst);
  EXPECT_EQ(result.replica_lengths.size(), 1U);
  EXPECT_EQ(result.best_replica, 0U);
}

TEST(Ensemble, ZeroReplicasThrows) {
  EXPECT_THROW(ReplicaEnsemble{base_config(0)}, ConfigError);
}

}  // namespace
}  // namespace cim::anneal
