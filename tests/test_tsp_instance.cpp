#include "tsp/instance.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::tsp {
namespace {

TEST(Instance, CoordinateDistances) {
  const Instance inst("t", geo::Metric::kEuc2D,
                      {{0, 0}, {3, 4}, {3, 0}});
  EXPECT_EQ(inst.size(), 3U);
  EXPECT_TRUE(inst.has_coords());
  EXPECT_EQ(inst.distance(0, 1), 5);
  EXPECT_EQ(inst.distance(1, 0), 5);
  EXPECT_EQ(inst.distance(0, 0), 0);
  EXPECT_EQ(inst.distance(0, 2), 3);
  EXPECT_EQ(inst.distance(1, 2), 4);
}

TEST(Instance, ExplicitMatrix) {
  const std::vector<long long> m{0, 2, 9,  //
                                 2, 0, 6,  //
                                 9, 6, 0};
  const Instance inst("m", m, 3);
  EXPECT_FALSE(inst.has_coords());
  EXPECT_EQ(inst.metric(), geo::Metric::kExplicit);
  EXPECT_EQ(inst.distance(0, 2), 9);
  EXPECT_EQ(inst.distance(2, 1), 6);
  EXPECT_EQ(inst.distance_upper_bound(), 9);
}

TEST(Instance, AsymmetricMatrixThrows) {
  const std::vector<long long> m{0, 2,  //
                                 3, 0};
  EXPECT_THROW(Instance("bad", m, 2), ConfigError);
}

TEST(Instance, NonzeroDiagonalThrows) {
  const std::vector<long long> m{1, 2,  //
                                 2, 0};
  EXPECT_THROW(Instance("bad", m, 2), ConfigError);
}

TEST(Instance, NegativeDistanceThrows) {
  const std::vector<long long> m{0, -2,  //
                                 -2, 0};
  EXPECT_THROW(Instance("bad", m, 2), ConfigError);
}

TEST(Instance, WrongMatrixSizeThrows) {
  EXPECT_THROW(Instance("bad", std::vector<long long>{0, 1, 1, 0}, 3),
               ConfigError);
}

TEST(Instance, EmptyThrows) {
  EXPECT_THROW(Instance("bad", geo::Metric::kEuc2D, {}), ConfigError);
}

TEST(Instance, ExplicitMetricForCoordsThrows) {
  EXPECT_THROW(Instance("bad", geo::Metric::kExplicit, {{0, 0}}),
               ConfigError);
}

TEST(Instance, UpperBoundDominatesAllDistances) {
  const auto inst = test::random_instance(100, 42);
  const long long bound = inst.distance_upper_bound();
  for (CityId a = 0; a < 100; ++a) {
    for (CityId b = 0; b < 100; ++b) {
      EXPECT_LE(inst.distance(a, b), bound);
    }
  }
}

TEST(Instance, CommentRoundTrip) {
  Instance inst("t", geo::Metric::kEuc2D, {{0, 0}});
  inst.set_comment("hello");
  EXPECT_EQ(inst.comment(), "hello");
}

TEST(Instance, ExplicitUpperBoundFromMatrix) {
  const auto base = test::random_instance(20, 7);
  const auto expl = test::to_explicit(base);
  long long max_d = 0;
  for (CityId a = 0; a < 20; ++a) {
    for (CityId b = 0; b < 20; ++b) {
      max_d = std::max(max_d, expl.distance(a, b));
    }
  }
  EXPECT_EQ(expl.distance_upper_bound(), max_d);
}

}  // namespace
}  // namespace cim::tsp
