#include "heuristics/reference.hpp"

#include <gtest/gtest.h>

#include "heuristics/construct.hpp"
#include "heuristics/exact.hpp"
#include "heuristics/lower_bound.hpp"
#include "test_helpers.hpp"
#include "util/log.hpp"

namespace cim::heuristics {
namespace {

TEST(Reference, BeatsConstructionAlone) {
  const auto inst = test::random_instance(300, 1);
  const auto ref = compute_heuristic_reference(inst);
  EXPECT_TRUE(ref.tour.is_valid(300));
  EXPECT_EQ(ref.length, ref.tour.length(inst));
  EXPECT_FALSE(ref.from_registry);
  EXPECT_LT(ref.length, greedy_edge(inst).length(inst));
  EXPECT_LT(ref.length, nearest_neighbor(inst).length(inst));
}

TEST(Reference, NearOptimalOnSmall) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = test::random_instance(12, 600 + seed);
    const auto ref = compute_heuristic_reference(inst);
    const auto optimal = held_karp(inst);
    EXPECT_LE(ref.length, optimal.length(inst) * 21 / 20)  // within 5%
        << "seed " << seed;
    EXPECT_GE(ref.length, optimal.length(inst));
  }
}

// The threaded pipeline is a different (equally valid) deterministic
// trajectory: identical for every threads > 1, and of comparable quality
// to the sequential pipeline.
TEST(Reference, ThreadedPipelineDeterministicAndComparable) {
  const auto inst = test::random_instance(300, 3);
  ReferenceOptions two_threads;
  two_threads.threads = 2;
  ReferenceOptions four_threads;
  four_threads.threads = 4;
  const auto r2 = compute_heuristic_reference(inst, two_threads);
  const auto r4 = compute_heuristic_reference(inst, four_threads);
  EXPECT_EQ(r2.length, r4.length);
  EXPECT_EQ(r2.tour, r4.tour);
  EXPECT_TRUE(r2.tour.is_valid(300));

  const auto serial = compute_heuristic_reference(inst);
  // Same construction, different local-search trajectory: lengths agree
  // to within a few percent.
  EXPECT_LT(r2.length, serial.length * 103 / 100);
  EXPECT_GT(r2.length, serial.length * 97 / 100);
}

TEST(Reference, WithinCertifiedBound) {
  const auto inst = test::random_instance(500, 2);
  const auto ref = compute_heuristic_reference(inst);
  const auto lb = held_karp_lower_bound(inst);
  EXPECT_GE(static_cast<double>(ref.length), lb.bound);
  EXPECT_LE(static_cast<double>(ref.length), 1.12 * lb.bound);
}

TEST(Reference, TinyInstances) {
  for (std::size_t n : {1U, 2U, 3U, 4U}) {
    const auto inst = test::random_instance(n, 700 + n);
    const auto ref = compute_heuristic_reference(inst);
    EXPECT_TRUE(ref.tour.is_valid(n));
    EXPECT_EQ(ref.length, ref.tour.length(inst));
  }
}

TEST(Reference, RegistryNotUsedForSyntheticMimics) {
  // make_paper_instance("pcb3038") is synthetic here (no TSPLIB dir), so
  // the published optimum must NOT be used as the reference.
  ::unsetenv("CIMANNEAL_TSPLIB_DIR");
  const auto inst = test::random_instance(50, 3);
  const auto ref = compute_reference(inst);
  EXPECT_FALSE(ref.from_registry);
  EXPECT_FALSE(ref.tour.empty());
}

TEST(Reference, MoreRoundsNeverWorse) {
  const auto inst = test::random_instance(250, 4);
  ReferenceOptions one;
  one.rounds = 1;
  ReferenceOptions four;
  four.rounds = 4;
  EXPECT_GE(compute_heuristic_reference(inst, one).length,
            compute_heuristic_reference(inst, four).length);
}

TEST(LogThreshold, SetAndRestore) {
  const auto original = util::log_threshold();
  util::set_log_threshold(util::LogLevel::kError);
  EXPECT_EQ(util::log_threshold(), util::LogLevel::kError);
  // Dropped messages must not crash.
  CIM_LOG_DEBUG << "below threshold " << 42;
  util::set_log_threshold(util::LogLevel::kOff);
  CIM_LOG_ERROR << "also dropped";
  util::set_log_threshold(original);
}

}  // namespace
}  // namespace cim::heuristics
