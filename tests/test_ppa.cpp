#include <gtest/gtest.h>

#include "ppa/area.hpp"
#include "ppa/capacity.hpp"
#include "ppa/energy.hpp"
#include "ppa/report.hpp"
#include "ppa/sota.hpp"
#include "ppa/timing.hpp"
#include "util/error.hpp"

namespace cim::ppa {
namespace {

TEST(Capacity, Table1AllEntries) {
  const CapacityModel cap;
  // pcb3038 column (kB, 8-bit weights → bytes = weights).
  EXPECT_NEAR(cap.compact_weights_fixed(3038, 2) / 1e3, 48.6, 0.1);
  EXPECT_NEAR(cap.compact_weights_fixed(3038, 4) / 1e3, 291.8, 0.5);
  EXPECT_NEAR(cap.compact_weights_semiflex(3038, 2) / 1e3, 64.8, 0.1);
  EXPECT_NEAR(cap.compact_weights_semiflex(3038, 3) / 1e3, 205.1, 0.1);
  EXPECT_NEAR(cap.compact_weights_semiflex(3038, 4) / 1e3, 466.9, 0.5);
  // rl5915 column.
  EXPECT_NEAR(cap.compact_weights_fixed(5915, 2) / 1e3, 94.7, 0.1);
  EXPECT_NEAR(cap.compact_weights_fixed(5915, 4) / 1e3, 567.9, 0.1);
  EXPECT_NEAR(cap.compact_weights_semiflex(5915, 2) / 1e3, 126.2, 0.1);
  EXPECT_NEAR(cap.compact_weights_semiflex(5915, 3) / 1e3, 399.3, 0.1);
  EXPECT_NEAR(cap.compact_weights_semiflex(5915, 4) / 1e3, 908.5, 0.1);
}

TEST(Capacity, Pla85900Headline) {
  const CapacityModel cap;
  // §VI: 46.4 Mb SRAM for pla85900 at p_max = 3.
  EXPECT_NEAR(cap.bits(cap.compact_weights_semiflex(85900, 3)) / 1e6, 46.4,
              0.1);
}

TEST(Capacity, ComplexityOrdering) {
  const CapacityModel cap;
  // Fig. 1: O(N⁴) ≫ O(N²) ≫ O(N) at scale, and the gap widens with N.
  for (const double n : {1e3, 1e4, 1e5}) {
    EXPECT_GT(cap.naive_weights(n), cap.clustered_weights(n, 3));
    EXPECT_GT(cap.clustered_weights(n, 3),
              cap.compact_weights_semiflex(n, 3));
  }
  const double gap_small = cap.naive_weights(1e3) /
                           cap.compact_weights_semiflex(1e3, 3);
  const double gap_large = cap.naive_weights(1e5) /
                           cap.compact_weights_semiflex(1e5, 3);
  EXPECT_GT(gap_large, gap_small * 1e5);
}

TEST(Area, Table2ArrayAreas) {
  // Fitted constants must reproduce Table II within ~3%.
  const auto check = [](std::uint32_t p, double want_h, double want_w) {
    hw::ArrayGeometry geom;
    geom.p_max = p;
    const ArrayArea area = array_area(geom);
    EXPECT_NEAR(area.height_um, want_h, want_h * 0.03) << "p=" << p;
    EXPECT_NEAR(area.width_um, want_w, want_w * 0.03) << "p=" << p;
  };
  check(2, 57.0, 55.0);
  check(3, 102.0, 98.0);
  check(4, 161.0, 162.0);
}

TEST(Area, FlagshipChipArea) {
  // pla85900 @ p_max=3 → 43.7 mm² (Table III).
  hw::ChipConfig config;
  config.n_cities = 85900;
  config.p = 3;
  hw::ArrayGeometry geom;
  geom.p_max = 3;
  const SquareMicron area = chip_area(plan_chip(config), geom);
  EXPECT_NEAR(area.mm2(), 43.7, 1.5);
}

TEST(Timing, DepthEstimate) {
  // Semi-flexible p=3: mean size 2 → log2(N/4) levels.
  EXPECT_EQ(estimate_depth(85900, 2.0), 15U);
  EXPECT_EQ(estimate_depth(5934, 2.0), 11U);
  EXPECT_EQ(estimate_depth(4, 2.0), 1U);
  EXPECT_THROW(estimate_depth(100, 1.0), ConfigError);
}

TEST(Timing, Rl5934AnnealingTimeNearPaper) {
  // §VI: rl5934 annealing in 44 µs. Our analytic model should land in
  // the same few-tens-of-µs regime.
  noise::AnnealSchedule::Params schedule;
  const std::size_t depth = estimate_depth(5934, 2.0);
  const auto cycles = analytic_cycles(depth, schedule, 15);
  const auto latency = latency_from_cycles(cycles);
  EXPECT_GT(latency.total().seconds(), 20e-6);
  EXPECT_LT(latency.total().seconds(), 80e-6);
}

TEST(Timing, WriteShareIsSmall) {
  noise::AnnealSchedule::Params schedule;
  const auto cycles = analytic_cycles(12, schedule, 15);
  const auto latency = latency_from_cycles(cycles);
  EXPECT_LT(latency.write.nanoseconds(), latency.read_compute.nanoseconds());
}

TEST(Energy, MacEnergyScalesWithWindow) {
  EXPECT_GT(mac_energy(24, 8), mac_energy(15, 8));
  EXPECT_GT(mac_energy(15, 8), mac_energy(15, 4));
}

TEST(Energy, WriteShareIsSmall) {
  // Fig. 7(c)/(d): writes happen every 50 iterations, so their share is
  // far below reads.
  hw::ChipConfig config;
  config.n_cities = 10000;
  config.p = 3;
  const auto layout = plan_chip(config);
  noise::AnnealSchedule::Params schedule;
  const auto activity =
      analytic_activity(layout.windows, 2.0, 12, schedule, 3);
  const auto energy = energy_from_analytic(
      activity, layout, 15, 8, Nanosecond::from_seconds(50e-6));
  EXPECT_GT(energy.read_compute.picojoules(), energy.write.picojoules());
  EXPECT_GT(energy.read_compute.picojoules(), 0.0);
  EXPECT_GT(energy.write.picojoules(), 0.0);
}

TEST(Report, FlagshipPowerNearPaper) {
  // Table III: 433 mW average power for pla85900 @ p_max=3. The fitted
  // energy constants should land within a factor ~2.
  DesignPoint point;
  point.instance_name = "pla85900";
  point.n_cities = 85900;
  point.p = 3;
  const auto report = analytic_report(point);
  EXPECT_GT(report.average_power.watts(), 0.15);
  EXPECT_LT(report.average_power.watts(), 0.9);
  EXPECT_NEAR(report.capacity_mb(), 46.4, 0.1);
  EXPECT_NEAR(report.chip_area.mm2(), 43.7, 1.5);
}

TEST(Report, PerBitMetricsNearPaper) {
  // Table III: 0.94 µm²/bit and 9.3 nW/bit (physical normalisation).
  DesignPoint point;
  point.instance_name = "pla85900";
  point.n_cities = 85900;
  point.p = 3;
  const auto report = analytic_report(point);
  EXPECT_NEAR(report.area_per_weight_bit().um2(), 0.94, 0.1);
  EXPECT_GT(report.power_per_weight_bit_w(), 2e-9);
  EXPECT_LT(report.power_per_weight_bit_w(), 20e-9);
}

TEST(Report, AreaScalesWithCapacity) {
  // Fig. 7(b): chip area ∝ SRAM capacity.
  DesignPoint small;
  small.n_cities = 3038;
  small.p = 3;
  DesignPoint large;
  large.n_cities = 33810;
  large.p = 3;
  const auto rs = analytic_report(small);
  const auto rl = analytic_report(large);
  const double area_ratio = rl.chip_area / rs.chip_area;
  const double cap_ratio =
      static_cast<double>(rl.layout.capacity_bits) /
      static_cast<double>(rs.layout.capacity_bits);
  EXPECT_NEAR(area_ratio, cap_ratio, cap_ratio * 0.05);
}

TEST(Report, PmaxTradeoffShape) {
  // Fig. 7: p_max=2 smallest area but deepest hierarchy (longest
  // latency); p_max=4 largest area.
  DesignPoint p2;
  p2.n_cities = 10000;
  p2.p = 2;
  DesignPoint p3 = p2;
  p3.p = 3;
  DesignPoint p4 = p2;
  p4.p = 4;
  const auto r2 = analytic_report(p2);
  const auto r3 = analytic_report(p3);
  const auto r4 = analytic_report(p4);
  EXPECT_LT(r2.chip_area, r3.chip_area);
  EXPECT_LT(r3.chip_area, r4.chip_area);
  EXPECT_GT(r2.latency.total().seconds(), r3.latency.total().seconds());
  EXPECT_GT(r3.latency.total().seconds(), r4.latency.total().seconds());
}

TEST(Sota, TableEntriesPresent) {
  const auto& entries = sota_annealers();
  ASSERT_EQ(entries.size(), 5U);
  // STATICA: 12mm²/1.31Mb ≈ 9 µm²/bit (Table III).
  EXPECT_NEAR(entries[0].area_per_bit().um2(), 9.0, 0.5);
  // CIM-Spin: 0.4mm²/17.28kb ≈ 23 µm²/bit.
  EXPECT_NEAR(entries[1].area_per_bit().um2(), 23.0, 1.0);
  // Amorphica: 9mm²/8Mb ≈ 1.1 µm²/bit and 38 nW/bit.
  EXPECT_NEAR(entries[4].area_per_bit().um2(), 1.1, 0.1);
  ASSERT_TRUE(entries[4].power_per_bit_w().has_value());
  EXPECT_NEAR(*entries[4].power_per_bit_w() * 1e9, 39.0, 2.0);
  // One entry has no published power.
  EXPECT_FALSE(entries[2].power_w.has_value());
}

TEST(Sota, ThisDesignRowAndNormalization) {
  DesignPoint point;
  point.instance_name = "pla85900";
  point.n_cities = 85900;
  point.p = 3;
  const auto report = analytic_report(point);
  const auto row = this_design_row(report);

  // Physical: 0.39M spins (p²·2N/(1+p)), 46.4Mb.
  EXPECT_NEAR(row.physical_spins / 1e6, 0.39, 0.01);
  EXPECT_NEAR(row.physical_weight_bits / 1e6, 46.4, 0.1);
  // Functional: N² = 7.4G spins, N⁴·8 ≈ 4×10²⁰ b.
  EXPECT_NEAR(row.functional_spins / 1e9, 7.38, 0.05);
  EXPECT_NEAR(row.functional_weight_bits / 1e20, 4.4, 0.2);

  // Functional normalisation beats every competitor by > 10¹³.
  for (const auto& entry : sota_annealers()) {
    EXPECT_GT(entry.area_per_bit().um2() /
                  row.functional_area_per_bit().um2(),
              1e12);
  }
}

TEST(Report, InvalidPointThrows) {
  DesignPoint bad;
  bad.n_cities = 0;
  EXPECT_THROW(analytic_report(bad), ConfigError);
}

}  // namespace
}  // namespace cim::ppa
