// The parallel runtime's contracts: every index runs exactly once, the
// lowest-index exception is the one rethrown, nested submission does not
// deadlock, and parallel_for / parallel_reduce produce bit-identical
// results on every worker count. The stress tests double as the TSan
// workload for the pool internals.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/parallel_for.hpp"

namespace cim::util {
namespace {

TEST(ThreadPool, RunInvokesEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.run(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_GE(pool.tasks_executed(), kCount);
}

TEST(ThreadPool, ZeroWorkersRunsInlineOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.width(), 0U);
  EXPECT_EQ(pool.threads_created(), 0U);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.run(seen.size(),
           [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, CountZeroIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.run(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, LowestIndexExceptionWinsAndAllTasksStillRun) {
  for (const std::size_t width : {1U, 2U, 8U}) {
    ThreadPool pool(width);
    std::atomic<std::size_t> executed{0};
    const auto body = [&](std::size_t i) {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (i == 60 || i == 17 || i == 3) {
        throw std::runtime_error(std::to_string(i));
      }
    };
    try {
      pool.run(100, body);
      FAIL() << "run() swallowed the task exceptions (width " << width << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "3") << "width " << width;
    }
    // The failing batch still executed every task: an exception cancels
    // nothing, it is only reported after the batch drains.
    EXPECT_EQ(executed.load(), 100U) << "width " << width;
  }
}

TEST(ThreadPool, NestedRunFromWorkersDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<std::size_t> inner_total{0};
  pool.run(4, [&](std::size_t) {
    pool.run(8, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 32U);
}

TEST(ThreadPool, ThreadsCreatedNeverGrowsAfterConstruction) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.threads_created(), 3U);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.run(7, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200U * 7U);
  EXPECT_EQ(pool.threads_created(), 3U);
}

// TSan stress: many small batches with contended counters, plus enough
// imbalance that workers steal from each other.
TEST(ThreadPool, StressManySmallImbalancedBatches) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (int batch = 0; batch < 500; ++batch) {
    pool.run(9, [&](std::size_t i) {
      std::uint64_t local = 0;
      // Task 0 is much heavier than the rest → guarantees idle workers.
      const std::uint64_t spins = i == 0 ? 2000 : 10;
      for (std::uint64_t s = 0; s < spins; ++s) local += s * s + i;
      sum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  EXPECT_GT(sum.load(), 0U);
  EXPECT_GE(pool.tasks_executed(), 500U * 9U);
}

TEST(ThreadPool, ParseWidth) {
  EXPECT_EQ(ThreadPool::parse_width(nullptr), 0U);
  EXPECT_EQ(ThreadPool::parse_width(""), 0U);
  EXPECT_EQ(ThreadPool::parse_width("abc"), 0U);
  EXPECT_EQ(ThreadPool::parse_width("-3"), 0U);
  EXPECT_EQ(ThreadPool::parse_width("0"), 0U);
  EXPECT_EQ(ThreadPool::parse_width("8x"), 0U);
  EXPECT_EQ(ThreadPool::parse_width("5"), 5U);
  EXPECT_EQ(ThreadPool::parse_width("64"), 64U);
}

TEST(ParallelFor, ChunkCountIsPure) {
  EXPECT_EQ(parallel_chunk_count(0, 16), 0U);
  EXPECT_EQ(parallel_chunk_count(1, 16), 1U);
  EXPECT_EQ(parallel_chunk_count(16, 16), 1U);
  EXPECT_EQ(parallel_chunk_count(17, 16), 2U);
  EXPECT_EQ(parallel_chunk_count(160, 16), 10U);
  EXPECT_EQ(parallel_chunk_count(5, 0), 5U);  // grain 0 clamps to 1
}

TEST(ParallelFor, CoversEveryIndexWithDisjointWrites) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1234;
  std::vector<std::size_t> out(kN, 0);
  parallel_for(pool, kN, 37, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelFor, ChunkBoundariesIndependentOfWidth) {
  constexpr std::size_t kN = 1000;
  constexpr std::size_t kGrain = 64;
  const auto boundaries = [&](ThreadPool& pool) {
    std::vector<std::pair<std::size_t, std::size_t>> chunks(
        parallel_chunk_count(kN, kGrain));
    parallel_for_chunks(pool, kN, kGrain,
                        [&](std::size_t begin, std::size_t end) {
                          chunks[begin / kGrain] = {begin, end};
                        });
    return chunks;
  };
  ThreadPool one(1), two(2), eight(8);
  const auto a = boundaries(one);
  const auto b = boundaries(two);
  const auto c = boundaries(eight);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

// The keystone determinism test: a floating-point sum — a non-associative
// reduction — must come out bit-identical on 1, 2 and 8 workers because
// chunking and fold order are fixed by index, not by scheduling.
TEST(ParallelReduce, FloatingPointSumBitIdenticalAcrossWidths) {
  constexpr std::size_t kN = 10000;
  const auto reduce_on = [&](ThreadPool& pool) {
    return parallel_reduce(
        pool, kN, 113, 0.0,
        [](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            s += std::sin(static_cast<double>(i)) /
                 (1.0 + static_cast<double>(i % 97));
          }
          return s;
        },
        [](double acc, double chunk) { return acc + chunk; });
  };
  ThreadPool one(1), two(2), eight(8);
  const double a = reduce_on(one);
  const double b = reduce_on(two);
  const double c = reduce_on(eight);
  // Bitwise, not approximate: the contract is exact reproducibility.
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

// Same idea with an order-sensitive hash chain: any reordering of the
// fold would change the result.
TEST(ParallelReduce, HashChainIdenticalAcrossWidths) {
  constexpr std::size_t kN = 4096;
  const auto reduce_on = [&](ThreadPool& pool) {
    return parallel_reduce(
        pool, kN, 55, std::uint64_t{0xcbf29ce484222325ULL},
        [](std::size_t begin, std::size_t end) {
          std::uint64_t h = 0;
          for (std::size_t i = begin; i < end; ++i) {
            h = (h ^ (i * 0x9e3779b97f4a7c15ULL)) * 0x100000001b3ULL;
          }
          return h;
        },
        [](std::uint64_t acc, std::uint64_t chunk) {
          return (acc ^ chunk) * 0x100000001b3ULL;
        });
  };
  ThreadPool one(1), two(2), eight(8);
  const std::uint64_t a = reduce_on(one);
  const std::uint64_t b = reduce_on(two);
  const std::uint64_t c = reduce_on(eight);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(ParallelReduce, EmptyAndSingleChunkInline) {
  ThreadPool pool(2);
  const auto sum = [](std::size_t begin, std::size_t end) {
    std::uint64_t s = 0;
    for (std::size_t i = begin; i < end; ++i) s += i;
    return s;
  };
  const auto add = [](std::uint64_t a, std::uint64_t b) { return a + b; };
  EXPECT_EQ(parallel_reduce(pool, 0, 8, std::uint64_t{7}, sum, add), 7U);
  EXPECT_EQ(parallel_reduce(pool, 5, 8, std::uint64_t{0}, sum, add), 10U);
}

}  // namespace
}  // namespace cim::util
