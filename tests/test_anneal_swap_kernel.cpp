// The sparse incremental swap kernel must be a pure optimisation: for
// every noise mode and backend it has to reproduce the dense
// rebuild-and-scan kernel bit for bit — same tours, same hardware
// counters (which model hardware row reads, not simulator work). The
// colour-parallel mode has its own contract: deterministic for a given
// seed and independent of the thread count (> 1).
#include <gtest/gtest.h>

#include "anneal/clustered_annealer.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::anneal {
namespace {

AnnealerConfig base_config(std::uint32_t p, std::uint64_t seed) {
  AnnealerConfig config;
  config.clustering.strategy = cluster::Strategy::kSemiFlexible;
  config.clustering.p = p;
  config.seed = seed;
  return config;
}

void expect_identical(const AnnealResult& a, const AnnealResult& b,
                      const char* label) {
  EXPECT_TRUE(a.tour == b.tour) << label;
  EXPECT_EQ(a.length, b.length) << label;
  EXPECT_EQ(a.hw.storage.macs, b.hw.storage.macs) << label;
  EXPECT_EQ(a.hw.storage.mac_bit_reads, b.hw.storage.mac_bit_reads) << label;
  EXPECT_EQ(a.hw.storage.writeback_events, b.hw.storage.writeback_events)
      << label;
  EXPECT_EQ(a.hw.storage.writeback_bits, b.hw.storage.writeback_bits)
      << label;
  EXPECT_EQ(a.hw.storage.pseudo_read_flips, b.hw.storage.pseudo_read_flips)
      << label;
  EXPECT_EQ(a.hw.swap_attempts, b.hw.swap_attempts) << label;
  EXPECT_EQ(a.hw.dataflow.edge_bits_transferred(),
            b.hw.dataflow.edge_bits_transferred())
      << label;
  EXPECT_EQ(a.hw.dataflow.downstream_transfers(),
            b.hw.dataflow.downstream_transfers())
      << label;
  EXPECT_EQ(a.hw.dataflow.upstream_transfers(),
            b.hw.dataflow.upstream_transfers())
      << label;
  EXPECT_EQ(a.hw.dataflow.third_phase_transfers(),
            b.hw.dataflow.third_phase_transfers())
      << label;
}

class SparseKernelEquivalence
    : public ::testing::TestWithParam<std::tuple<NoiseMode, BackendKind>> {};

TEST_P(SparseKernelEquivalence, MatchesDenseKernelExactly) {
  const auto [mode, backend] = GetParam();
  const auto inst = test::random_instance(60, 17);
  AnnealerConfig config = base_config(3, 5);
  config.noise = mode;
  config.backend = backend;

  config.sparse_swap_kernel = true;
  const auto sparse = ClusteredAnnealer(config).solve(inst);
  config.sparse_swap_kernel = false;
  config.vector_kernel = false;  // dense ablation: no packed plane to ride on
  const auto dense = ClusteredAnnealer(config).solve(inst);

  expect_identical(sparse, dense, "sparse vs dense");
  EXPECT_TRUE(sparse.tour.is_valid(60));
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndBackends, SparseKernelEquivalence,
    ::testing::Combine(::testing::Values(NoiseMode::kNone,
                                         NoiseMode::kSramWeight,
                                         NoiseMode::kSramSpin,
                                         NoiseMode::kLfsr),
                       ::testing::Values(BackendKind::kFast,
                                         BackendKind::kBitLevel)));

class VectorKernelEquivalence
    : public ::testing::TestWithParam<std::tuple<NoiseMode, BackendKind>> {};

TEST_P(VectorKernelEquivalence, MatchesScalarOracleExactly) {
  // The bit-sliced packed kernel must be a pure optimisation of the
  // scalar sparse kernel (its determinism oracle): identical tours,
  // identical noise evolution, identical hardware counters.
  const auto [mode, backend] = GetParam();
  const auto inst = test::random_instance(60, 17);
  AnnealerConfig config = base_config(3, 5);
  config.noise = mode;
  config.backend = backend;

  config.vector_kernel = true;
  const auto vector = ClusteredAnnealer(config).solve(inst);
  config.vector_kernel = false;
  const auto scalar = ClusteredAnnealer(config).solve(inst);

  expect_identical(vector, scalar, "vector vs scalar");
  EXPECT_TRUE(vector.tour.is_valid(60));
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndBackends, VectorKernelEquivalence,
    ::testing::Combine(::testing::Values(NoiseMode::kNone,
                                         NoiseMode::kSramWeight,
                                         NoiseMode::kSramSpin,
                                         NoiseMode::kLfsr),
                       ::testing::Values(BackendKind::kFast,
                                         BackendKind::kBitLevel)));

TEST(SwapKernel, VectorKernelIndependentOfThreadCount) {
  // The colour-parallel contract extends to the packed path: for any
  // thread count > 1 the result is a function of the seed alone, and it
  // matches the scalar kernel at the same thread count.
  const auto inst = test::random_instance(150, 31);
  AnnealerConfig config = base_config(4, 11);
  config.vector_kernel = true;
  config.color_threads = 2;
  const auto two = ClusteredAnnealer(config).solve(inst);
  config.color_threads = 8;
  const auto eight = ClusteredAnnealer(config).solve(inst);
  expect_identical(two, eight, "vector 2 vs 8 threads");
  config.vector_kernel = false;
  config.color_threads = 2;
  const auto scalar = ClusteredAnnealer(config).solve(inst);
  expect_identical(two, scalar, "vector vs scalar under threads");
  EXPECT_TRUE(two.tour.is_valid(150));
}

TEST(SwapKernel, VectorKernelLargeClusters) {
  // p = 9 gives windows past 64 rows (9² + 2·9 = 99), so the packed input
  // spans multiple words — the multi-word kernel path must stay
  // bit-identical too.
  const auto inst = test::random_instance(120, 43);
  AnnealerConfig config = base_config(9, 7);
  config.schedule.total_iterations = 60;
  config.vector_kernel = true;
  const auto vector = ClusteredAnnealer(config).solve(inst);
  config.vector_kernel = false;
  const auto scalar = ClusteredAnnealer(config).solve(inst);
  expect_identical(vector, scalar, "multi-word vector vs scalar");
}

TEST(SwapKernel, SequentialGibbsAlsoEquivalent) {
  // The sequential (non-chromatic) ablation path uses the same kernel.
  const auto inst = test::random_instance(80, 23);
  AnnealerConfig config = base_config(3, 9);
  config.chromatic_parallel = false;
  config.sparse_swap_kernel = true;
  const auto sparse = ClusteredAnnealer(config).solve(inst);
  config.sparse_swap_kernel = false;
  config.vector_kernel = false;  // dense ablation: no packed plane to ride on
  const auto dense = ClusteredAnnealer(config).solve(inst);
  expect_identical(sparse, dense, "sequential");
}

TEST(SwapKernel, ColorThreadsIndependentOfThreadCount) {
  // Per-slot RNG streams make the result a function of the seed alone:
  // any thread count > 1 must produce the same tour and counters.
  const auto inst = test::random_instance(150, 31);
  AnnealerConfig config = base_config(4, 11);
  config.color_threads = 2;
  const auto two = ClusteredAnnealer(config).solve(inst);
  config.color_threads = 3;
  const auto three = ClusteredAnnealer(config).solve(inst);
  config.color_threads = 8;
  const auto eight = ClusteredAnnealer(config).solve(inst);
  expect_identical(two, three, "2 vs 3 threads");
  expect_identical(two, eight, "2 vs 8 threads");
  EXPECT_TRUE(two.tour.is_valid(150));
}

TEST(SwapKernel, ColorThreadsDeterministicAcrossRuns) {
  const auto inst = test::random_instance(120, 37);
  AnnealerConfig config = base_config(3, 13);
  config.color_threads = 4;
  const auto a = ClusteredAnnealer(config).solve(inst);
  const auto b = ClusteredAnnealer(config).solve(inst);
  expect_identical(a, b, "repeat run");
}

TEST(SwapKernel, ColorParallelStress) {
  // Larger ring with every noise mode's hot path exercised under
  // threads; primarily a tsan target (scripts/ci.sh runs the suite under
  // the tsan preset).
  for (const NoiseMode mode :
       {NoiseMode::kSramWeight, NoiseMode::kSramSpin, NoiseMode::kLfsr}) {
    const auto inst = test::random_instance(300, 41);
    AnnealerConfig config = base_config(4, 19);
    config.noise = mode;
    config.color_threads = 4;
    config.schedule.total_iterations = 40;
    const auto result = ClusteredAnnealer(config).solve(inst);
    EXPECT_TRUE(result.tour.is_valid(300));
  }
}

std::size_t total_memo_hits(const AnnealResult& r) {
  std::size_t total = 0;
  for (const auto& level : r.levels) total += level.memo_hits;
  return total;
}

std::size_t total_memo_misses(const AnnealResult& r) {
  std::size_t total = 0;
  for (const auto& level : r.levels) total += level.memo_misses;
  return total;
}

std::size_t total_attempts(const AnnealResult& r) {
  std::size_t total = 0;
  for (const auto& level : r.levels) total += level.swaps_attempted;
  return total;
}

class MemoKernelEquivalence
    : public ::testing::TestWithParam<std::tuple<NoiseMode, BackendKind>> {};

TEST_P(MemoKernelEquivalence, MatchesRecomputeExactly) {
  // The partial-sum memo must be a pure optimisation of the sparse
  // kernel: identical tours, identical noise evolution and identical
  // hardware counters (a memo hit charges the full row-read cost), for
  // every noise mode and both storage backends — including the
  // bit-level backend's lazy corrupted-weight path.
  const auto [mode, backend] = GetParam();
  const auto inst = test::random_instance(60, 17);
  AnnealerConfig config = base_config(3, 5);
  config.noise = mode;
  config.backend = backend;

  config.memoize_partial_sums = true;
  const auto memo = ClusteredAnnealer(config).solve(inst);
  config.memoize_partial_sums = false;
  const auto recompute = ClusteredAnnealer(config).solve(inst);

  expect_identical(memo, recompute, "memo vs recompute");
  // Every swap attempt issues exactly 4 MAC requests; each is either a
  // hit or a miss when the memo is on, and neither when it is off.
  EXPECT_EQ(total_memo_hits(memo) + total_memo_misses(memo),
            4 * total_attempts(memo));
  EXPECT_GT(total_memo_hits(memo), 0U);
  EXPECT_EQ(total_memo_hits(recompute), 0U);
  EXPECT_EQ(total_memo_misses(recompute), 0U);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndBackends, MemoKernelEquivalence,
    ::testing::Combine(::testing::Values(NoiseMode::kNone,
                                         NoiseMode::kSramWeight,
                                         NoiseMode::kSramSpin,
                                         NoiseMode::kLfsr),
                       ::testing::Values(BackendKind::kFast,
                                         BackendKind::kBitLevel)));

TEST(SwapKernel, MemoMatchesRecomputeUnderVectorKernel) {
  // The memo front-end sits above both scalar-sparse and packed MACs;
  // the packed path must stay bit-identical to the unmemoized scalar
  // oracle with it on.
  const auto inst = test::random_instance(80, 29);
  AnnealerConfig config = base_config(4, 3);
  config.vector_kernel = true;
  config.memoize_partial_sums = true;
  const auto memo_vector = ClusteredAnnealer(config).solve(inst);
  config.vector_kernel = false;
  config.memoize_partial_sums = false;
  const auto scalar = ClusteredAnnealer(config).solve(inst);
  expect_identical(memo_vector, scalar, "memo vector vs plain scalar");
  EXPECT_GT(total_memo_hits(memo_vector), 0U);
}

TEST(SwapKernel, MemoMatchesRecomputeUnderColorThreads) {
  // Memo state is per-slot and slots are partitioned across colour
  // workers, so the memo must not perturb the thread-count-independence
  // contract.
  const auto inst = test::random_instance(150, 31);
  AnnealerConfig config = base_config(4, 11);
  config.color_threads = 4;
  config.memoize_partial_sums = true;
  const auto memo = ClusteredAnnealer(config).solve(inst);
  config.memoize_partial_sums = false;
  const auto recompute = ClusteredAnnealer(config).solve(inst);
  expect_identical(memo, recompute, "memo vs recompute under threads");
  config.memoize_partial_sums = true;
  config.color_threads = 8;
  const auto memo8 = ClusteredAnnealer(config).solve(inst);
  expect_identical(memo, memo8, "memo 4 vs 8 threads");
}

TEST(SwapKernel, MemoOnCorruptedWeightGrids) {
  // Structured (grid) instances under heavy weight corruption: long
  // rejection streaks on ties are exactly where the memo earns hits, and
  // where a stale entry would surface as a divergent tour or counter.
  for (const BackendKind backend :
       {BackendKind::kFast, BackendKind::kBitLevel}) {
    const auto inst = test::grid_instance(8, 8);
    AnnealerConfig config = base_config(4, 21);
    config.noise = NoiseMode::kSramWeight;
    config.backend = backend;
    config.sram.sigma_vth = 0.10;  // heavier mismatch → more noisy LSBs
    config.memoize_partial_sums = true;
    const auto memo = ClusteredAnnealer(config).solve(inst);
    config.memoize_partial_sums = false;
    const auto recompute = ClusteredAnnealer(config).solve(inst);
    expect_identical(memo, recompute, "corrupted grid");
    EXPECT_GT(memo.hw.storage.pseudo_read_flips, 0U);
    EXPECT_GT(total_memo_hits(memo), 0U);
  }
}

TEST(SwapKernel, ConfigValidation) {
  AnnealerConfig config = base_config(3, 1);
  config.color_threads = 0;
  EXPECT_THROW(ClusteredAnnealer{config}, ConfigError);
  config.color_threads = 2;
  config.chromatic_parallel = false;
  EXPECT_THROW(ClusteredAnnealer{config}, ConfigError);
  config.chromatic_parallel = true;
  config.sparse_swap_kernel = false;
  EXPECT_THROW(ClusteredAnnealer{config}, ConfigError);
  config.sparse_swap_kernel = true;
  EXPECT_NO_THROW(ClusteredAnnealer{config});
  // The packed input plane is maintained by the sparse kernel's active-row
  // updates, so the vector kernel cannot ride on the dense ablation.
  config.vector_kernel = true;
  config.sparse_swap_kernel = false;
  config.color_threads = 1;
  EXPECT_THROW(ClusteredAnnealer{config}, ConfigError);
  config.sparse_swap_kernel = true;
  EXPECT_NO_THROW(ClusteredAnnealer{config});
}

}  // namespace
}  // namespace cim::anneal
