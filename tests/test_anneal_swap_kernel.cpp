// The sparse incremental swap kernel must be a pure optimisation: for
// every noise mode and backend it has to reproduce the dense
// rebuild-and-scan kernel bit for bit — same tours, same hardware
// counters (which model hardware row reads, not simulator work). The
// colour-parallel mode has its own contract: deterministic for a given
// seed and independent of the thread count (> 1).
#include <gtest/gtest.h>

#include "anneal/clustered_annealer.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::anneal {
namespace {

AnnealerConfig base_config(std::uint32_t p, std::uint64_t seed) {
  AnnealerConfig config;
  config.clustering.strategy = cluster::Strategy::kSemiFlexible;
  config.clustering.p = p;
  config.seed = seed;
  return config;
}

void expect_identical(const AnnealResult& a, const AnnealResult& b,
                      const char* label) {
  EXPECT_TRUE(a.tour == b.tour) << label;
  EXPECT_EQ(a.length, b.length) << label;
  EXPECT_EQ(a.hw.storage.macs, b.hw.storage.macs) << label;
  EXPECT_EQ(a.hw.storage.mac_bit_reads, b.hw.storage.mac_bit_reads) << label;
  EXPECT_EQ(a.hw.storage.writeback_events, b.hw.storage.writeback_events)
      << label;
  EXPECT_EQ(a.hw.storage.writeback_bits, b.hw.storage.writeback_bits)
      << label;
  EXPECT_EQ(a.hw.storage.pseudo_read_flips, b.hw.storage.pseudo_read_flips)
      << label;
  EXPECT_EQ(a.hw.swap_attempts, b.hw.swap_attempts) << label;
  EXPECT_EQ(a.hw.dataflow.edge_bits_transferred(),
            b.hw.dataflow.edge_bits_transferred())
      << label;
  EXPECT_EQ(a.hw.dataflow.downstream_transfers(),
            b.hw.dataflow.downstream_transfers())
      << label;
  EXPECT_EQ(a.hw.dataflow.upstream_transfers(),
            b.hw.dataflow.upstream_transfers())
      << label;
  EXPECT_EQ(a.hw.dataflow.third_phase_transfers(),
            b.hw.dataflow.third_phase_transfers())
      << label;
}

class SparseKernelEquivalence
    : public ::testing::TestWithParam<std::tuple<NoiseMode, BackendKind>> {};

TEST_P(SparseKernelEquivalence, MatchesDenseKernelExactly) {
  const auto [mode, backend] = GetParam();
  const auto inst = test::random_instance(60, 17);
  AnnealerConfig config = base_config(3, 5);
  config.noise = mode;
  config.backend = backend;

  config.sparse_swap_kernel = true;
  const auto sparse = ClusteredAnnealer(config).solve(inst);
  config.sparse_swap_kernel = false;
  config.vector_kernel = false;  // dense ablation: no packed plane to ride on
  const auto dense = ClusteredAnnealer(config).solve(inst);

  expect_identical(sparse, dense, "sparse vs dense");
  EXPECT_TRUE(sparse.tour.is_valid(60));
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndBackends, SparseKernelEquivalence,
    ::testing::Combine(::testing::Values(NoiseMode::kNone,
                                         NoiseMode::kSramWeight,
                                         NoiseMode::kSramSpin,
                                         NoiseMode::kLfsr),
                       ::testing::Values(BackendKind::kFast,
                                         BackendKind::kBitLevel)));

class VectorKernelEquivalence
    : public ::testing::TestWithParam<std::tuple<NoiseMode, BackendKind>> {};

TEST_P(VectorKernelEquivalence, MatchesScalarOracleExactly) {
  // The bit-sliced packed kernel must be a pure optimisation of the
  // scalar sparse kernel (its determinism oracle): identical tours,
  // identical noise evolution, identical hardware counters.
  const auto [mode, backend] = GetParam();
  const auto inst = test::random_instance(60, 17);
  AnnealerConfig config = base_config(3, 5);
  config.noise = mode;
  config.backend = backend;

  config.vector_kernel = true;
  const auto vector = ClusteredAnnealer(config).solve(inst);
  config.vector_kernel = false;
  const auto scalar = ClusteredAnnealer(config).solve(inst);

  expect_identical(vector, scalar, "vector vs scalar");
  EXPECT_TRUE(vector.tour.is_valid(60));
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndBackends, VectorKernelEquivalence,
    ::testing::Combine(::testing::Values(NoiseMode::kNone,
                                         NoiseMode::kSramWeight,
                                         NoiseMode::kSramSpin,
                                         NoiseMode::kLfsr),
                       ::testing::Values(BackendKind::kFast,
                                         BackendKind::kBitLevel)));

TEST(SwapKernel, VectorKernelIndependentOfThreadCount) {
  // The colour-parallel contract extends to the packed path: for any
  // thread count > 1 the result is a function of the seed alone, and it
  // matches the scalar kernel at the same thread count.
  const auto inst = test::random_instance(150, 31);
  AnnealerConfig config = base_config(4, 11);
  config.vector_kernel = true;
  config.color_threads = 2;
  const auto two = ClusteredAnnealer(config).solve(inst);
  config.color_threads = 8;
  const auto eight = ClusteredAnnealer(config).solve(inst);
  expect_identical(two, eight, "vector 2 vs 8 threads");
  config.vector_kernel = false;
  config.color_threads = 2;
  const auto scalar = ClusteredAnnealer(config).solve(inst);
  expect_identical(two, scalar, "vector vs scalar under threads");
  EXPECT_TRUE(two.tour.is_valid(150));
}

TEST(SwapKernel, VectorKernelLargeClusters) {
  // p = 9 gives windows past 64 rows (9² + 2·9 = 99), so the packed input
  // spans multiple words — the multi-word kernel path must stay
  // bit-identical too.
  const auto inst = test::random_instance(120, 43);
  AnnealerConfig config = base_config(9, 7);
  config.schedule.total_iterations = 60;
  config.vector_kernel = true;
  const auto vector = ClusteredAnnealer(config).solve(inst);
  config.vector_kernel = false;
  const auto scalar = ClusteredAnnealer(config).solve(inst);
  expect_identical(vector, scalar, "multi-word vector vs scalar");
}

TEST(SwapKernel, SequentialGibbsAlsoEquivalent) {
  // The sequential (non-chromatic) ablation path uses the same kernel.
  const auto inst = test::random_instance(80, 23);
  AnnealerConfig config = base_config(3, 9);
  config.chromatic_parallel = false;
  config.sparse_swap_kernel = true;
  const auto sparse = ClusteredAnnealer(config).solve(inst);
  config.sparse_swap_kernel = false;
  config.vector_kernel = false;  // dense ablation: no packed plane to ride on
  const auto dense = ClusteredAnnealer(config).solve(inst);
  expect_identical(sparse, dense, "sequential");
}

TEST(SwapKernel, ColorThreadsIndependentOfThreadCount) {
  // Per-slot RNG streams make the result a function of the seed alone:
  // any thread count > 1 must produce the same tour and counters.
  const auto inst = test::random_instance(150, 31);
  AnnealerConfig config = base_config(4, 11);
  config.color_threads = 2;
  const auto two = ClusteredAnnealer(config).solve(inst);
  config.color_threads = 3;
  const auto three = ClusteredAnnealer(config).solve(inst);
  config.color_threads = 8;
  const auto eight = ClusteredAnnealer(config).solve(inst);
  expect_identical(two, three, "2 vs 3 threads");
  expect_identical(two, eight, "2 vs 8 threads");
  EXPECT_TRUE(two.tour.is_valid(150));
}

TEST(SwapKernel, ColorThreadsDeterministicAcrossRuns) {
  const auto inst = test::random_instance(120, 37);
  AnnealerConfig config = base_config(3, 13);
  config.color_threads = 4;
  const auto a = ClusteredAnnealer(config).solve(inst);
  const auto b = ClusteredAnnealer(config).solve(inst);
  expect_identical(a, b, "repeat run");
}

TEST(SwapKernel, ColorParallelStress) {
  // Larger ring with every noise mode's hot path exercised under
  // threads; primarily a tsan target (scripts/ci.sh runs the suite under
  // the tsan preset).
  for (const NoiseMode mode :
       {NoiseMode::kSramWeight, NoiseMode::kSramSpin, NoiseMode::kLfsr}) {
    const auto inst = test::random_instance(300, 41);
    AnnealerConfig config = base_config(4, 19);
    config.noise = mode;
    config.color_threads = 4;
    config.schedule.total_iterations = 40;
    const auto result = ClusteredAnnealer(config).solve(inst);
    EXPECT_TRUE(result.tour.is_valid(300));
  }
}

TEST(SwapKernel, ConfigValidation) {
  AnnealerConfig config = base_config(3, 1);
  config.color_threads = 0;
  EXPECT_THROW(ClusteredAnnealer{config}, ConfigError);
  config.color_threads = 2;
  config.chromatic_parallel = false;
  EXPECT_THROW(ClusteredAnnealer{config}, ConfigError);
  config.chromatic_parallel = true;
  config.sparse_swap_kernel = false;
  EXPECT_THROW(ClusteredAnnealer{config}, ConfigError);
  config.sparse_swap_kernel = true;
  EXPECT_NO_THROW(ClusteredAnnealer{config});
  // The packed input plane is maintained by the sparse kernel's active-row
  // updates, so the vector kernel cannot ride on the dense ablation.
  config.vector_kernel = true;
  config.sparse_swap_kernel = false;
  config.color_threads = 1;
  EXPECT_THROW(ClusteredAnnealer{config}, ConfigError);
  config.sparse_swap_kernel = true;
  EXPECT_NO_THROW(ClusteredAnnealer{config});
}

}  // namespace
}  // namespace cim::anneal
