// Differential harness for the problem-family mappings: every family's
// encoded model is checked against a brute-force oracle over ALL
// assignments — GenericModel::energy against the source formulation,
// HardwareMapping::energy_hw against GenericModel::energy, and the
// penalty encodings' global optima against combinatorial ground truth
// (feasibility, optimal value).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "ising/generic.hpp"
#include "ising/maxcut.hpp"
#include "ising/partition.hpp"
#include "ising/qubo.hpp"
#include "qubo/coloring.hpp"
#include "qubo/io.hpp"
#include "qubo/knapsack.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cim {
namespace {

std::vector<ising::Spin> spins_from_mask(std::uint32_t mask, std::size_t n) {
  std::vector<ising::Spin> spins(n);
  for (std::size_t i = 0; i < n; ++i) {
    spins[i] = (mask >> i) & 1U ? 1 : -1;
  }
  return spins;
}

/// Minimum hardware-unit energy over all 2^n assignments, with the
/// matching spins.
std::pair<long long, std::vector<ising::Spin>> brute_force_hw(
    const ising::HardwareMapping& mapping) {
  const std::size_t n = mapping.size();
  EXPECT_LE(n, 20U);
  long long best = std::numeric_limits<long long>::max();
  std::vector<ising::Spin> best_spins;
  for (std::uint32_t mask = 0; mask < (1U << n); ++mask) {
    const auto spins = spins_from_mask(mask, n);
    const long long e = mapping.energy_hw(spins);
    if (e < best) {
      best = e;
      best_spins = spins;
    }
  }
  return {best, best_spins};
}

TEST(GenericModel, EnergyMatchesQuboOnAllAssignments) {
  util::Rng rng(0xD1F1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.below(8);
    ising::Qubo qubo(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        if (rng.chance(0.6)) {
          qubo.add(static_cast<ising::SpinIndex>(i),
                   static_cast<ising::SpinIndex>(j),
                   static_cast<double>(rng.range(-9, 9)));
        }
      }
    }
    const auto model = ising::GenericModel::from_qubo("q", qubo);
    for (std::uint32_t mask = 0; mask < (1U << n); ++mask) {
      const auto spins = spins_from_mask(mask, n);
      const auto x = ising::IsingImage::binary_from_spins(spins);
      EXPECT_NEAR(model.energy(spins), qubo.value(x), 1e-9);
    }
  }
}

TEST(GenericModel, MaxCutImageRecoversCutsOnAllAssignments) {
  const auto problem = ising::ring_maxcut(9);
  const auto model = ising::GenericModel::from_maxcut(problem);
  for (std::uint32_t mask = 0; mask < (1U << 9); ++mask) {
    const auto spins = spins_from_mask(mask, 9);
    // E = Σ w σσ (J = −w, no fields): cut = (W − E)/2.
    const double energy = model.energy(spins);
    EXPECT_NEAR(static_cast<double>(problem.cut_value(spins)),
                (static_cast<double>(problem.total_weight()) - energy) / 2.0,
                1e-9);
  }
  // Minimising the hardware image maximises the cut.
  const auto mapping = ising::map_to_hardware(model);
  const auto [best_hw, best_spins] = brute_force_hw(mapping);
  EXPECT_EQ(problem.cut_value(best_spins), ising::brute_force_maxcut(problem));
  EXPECT_EQ(best_hw, problem.total_weight() -
                         2 * ising::brute_force_maxcut(problem));
}

TEST(HardwareMapping, AgreesWithModelEnergyOnAllAssignments) {
  util::Rng rng(0xD1F2);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.below(8);
    ising::GenericModel model("hw", n);
    for (std::size_t t = 0; t < 2 * n; ++t) {
      const auto i = static_cast<ising::SpinIndex>(rng.below(n));
      const auto j = static_cast<ising::SpinIndex>(rng.below(n));
      // Quarter-integral coefficients: the exactness domain.
      const double value = static_cast<double>(rng.range(-20, 20)) / 4.0;
      if (i == j) {
        model.add_field(i, value);
      } else {
        model.add_coupling(i, j, value);
      }
    }
    model.add_offset(static_cast<double>(rng.range(-5, 5)));
    const auto mapping = ising::map_to_hardware(model);
    for (std::uint32_t mask = 0; mask < (1U << n); ++mask) {
      const auto spins = spins_from_mask(mask, n);
      EXPECT_NEAR(mapping.to_model_energy(mapping.energy_hw(spins),
                                          model.offset()),
                  model.energy(spins), 1e-9);
    }
  }
}

TEST(HardwareMapping, PicksTheSmallestSufficientMultiplier) {
  ising::GenericModel ints("i", 2);
  ints.add_coupling(0, 1, 3.0);
  EXPECT_EQ(ising::map_to_hardware(ints).multiplier, 1);

  ising::GenericModel halves("h", 2);
  halves.add_coupling(0, 1, 1.5);
  EXPECT_EQ(ising::map_to_hardware(halves).multiplier, 2);

  ising::GenericModel quarters("q", 2);
  quarters.add_coupling(0, 1, 0.75);
  EXPECT_EQ(ising::map_to_hardware(quarters).multiplier, 4);
}

TEST(HardwareMapping, RejectsNonRepresentableModels) {
  ising::GenericModel thirds("t", 2);
  thirds.add_coupling(0, 1, 1.0 / 3.0);
  EXPECT_THROW(ising::map_to_hardware(thirds), ConfigError);

  ising::GenericModel huge("o", 2);
  huge.add_coupling(0, 1, 1e18);
  EXPECT_THROW(ising::map_to_hardware(huge), ConfigError);
}

TEST(Partition, EveryStrategyCoversEachSpinExactlyOnce) {
  const auto model = ising::GenericModel::from_maxcut(
      ising::random_maxcut(40, 0.2, 0x9a9a, 3, true));
  for (const auto strategy : ising::all_group_strategies()) {
    const auto partition = ising::build_partition(model, strategy, 8);
    std::vector<int> seen(model.size(), 0);
    for (const auto& group : partition.groups) {
      for (const auto v : group) {
        ASSERT_LT(v, model.size());
        ++seen[v];
      }
    }
    for (const int count : seen) EXPECT_EQ(count, 1);
    if (strategy != ising::GroupStrategy::kChromatic) {
      EXPECT_LE(partition.max_group(), 8U);
      EXPECT_FALSE(partition.parallel_safe);
    }
  }
}

TEST(Partition, ChromaticGroupsAreIndependentSets) {
  const auto problem = ising::random_maxcut(30, 0.3, 0x7b7b, 2, true);
  const auto model = ising::GenericModel::from_maxcut(problem);
  const auto partition =
      ising::build_partition(model, ising::GroupStrategy::kChromatic);
  EXPECT_TRUE(partition.parallel_safe);
  std::vector<std::size_t> group_of(model.size());
  for (std::size_t g = 0; g < partition.groups.size(); ++g) {
    for (const auto v : partition.groups[g]) group_of[v] = g;
  }
  for (const auto& c : model.couplings()) {
    EXPECT_NE(group_of[c.a], group_of[c.b]);
  }
}

TEST(Coloring, EncodingOptimumIsZeroExactlyWhenColorable) {
  const struct {
    qubo::ColoringInstance instance;
    bool colorable;
  } cases[] = {
      {qubo::ring_coloring(4, 2), true},   // even ring, 2 colours
      {qubo::ring_coloring(5, 2), false},  // odd ring needs 3
      {qubo::ring_coloring(5, 3), true},
      {qubo::make_coloring("k4", 4, 3,
                           {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}),
       false},  // K4 needs 4 colours
      {qubo::make_coloring("path", 3, 2, {{0, 1}, {1, 2}}), true},
  };
  for (const auto& test_case : cases) {
    SCOPED_TRACE(test_case.instance.name);
    EXPECT_EQ(qubo::brute_force_colorable(test_case.instance),
              test_case.colorable);
    const auto encoding = qubo::encode_coloring(test_case.instance);
    const auto mapping = ising::map_to_hardware(encoding.model);
    EXPECT_TRUE(mapping.exact_in_bits(8));
    const auto [best_hw, best_spins] = brute_force_hw(mapping);
    const double best_energy =
        mapping.to_model_energy(best_hw, encoding.model.offset());
    if (test_case.colorable) {
      EXPECT_DOUBLE_EQ(best_energy, 0.0);
      const auto decoded = encoding.decode(test_case.instance, best_spins);
      EXPECT_TRUE(decoded.feasible);
      EXPECT_EQ(decoded.one_hot_violations, 0U);
      EXPECT_EQ(decoded.conflicts, 0U);
    } else {
      EXPECT_GT(best_energy, 0.0);
    }
  }
}

TEST(Coloring, DecodeCountsViolationsOfArbitraryStates) {
  const auto instance = qubo::ring_coloring(4, 2);
  const auto encoding = qubo::encode_coloring(instance);
  // All spins down: every one-hot row empty.
  std::vector<ising::Spin> spins(encoding.model.size(), -1);
  auto decoded = encoding.decode(instance, spins);
  EXPECT_EQ(decoded.one_hot_violations, 4U);
  EXPECT_FALSE(decoded.feasible);
  // Everyone colour 0: all one-hot rows fine, every edge monochromatic.
  for (std::size_t v = 0; v < 4; ++v) spins[encoding.var(v, 0)] = 1;
  decoded = encoding.decode(instance, spins);
  EXPECT_EQ(decoded.one_hot_violations, 0U);
  EXPECT_EQ(decoded.conflicts, 4U);
  EXPECT_FALSE(decoded.feasible);
}

TEST(Coloring, InvalidInstancesAreRejected) {
  EXPECT_THROW(qubo::make_coloring("x", 3, 1, {}), ConfigError);
  EXPECT_THROW(qubo::make_coloring("x", 3, 2, {{0, 3}}), ConfigError);
  EXPECT_THROW(qubo::make_coloring("x", 3, 2, {{1, 1}}), ConfigError);
  EXPECT_THROW(qubo::make_coloring("x", 3, 2, {{0, 1}, {1, 0}}),
               ConfigError);
}

TEST(Knapsack, EncodingOptimumIsMinusBestValue) {
  const struct {
    qubo::KnapsackInstance instance;
  } cases[] = {
      {qubo::make_knapsack("toy", {6, 5, 4}, {3, 2, 2}, 4)},
      {qubo::make_knapsack("six", {7, 2, 5, 4, 3, 6}, {4, 1, 3, 2, 2, 5},
                           9)},
      {qubo::make_knapsack("tight", {10, 10}, {5, 5}, 10)},
      {qubo::make_knapsack("loose", {1, 2, 3}, {1, 1, 1}, 7)},
  };
  for (const auto& test_case : cases) {
    SCOPED_TRACE(test_case.instance.name);
    const auto encoding = qubo::encode_knapsack(test_case.instance);
    // Slack register spans exactly 0..capacity.
    long long slack_total = 0;
    for (const long long c : encoding.slack_coeff) slack_total += c;
    EXPECT_EQ(slack_total, test_case.instance.capacity);

    const auto mapping = ising::map_to_hardware(encoding.model);
    const auto [best_hw, best_spins] = brute_force_hw(mapping);
    const double best_energy =
        mapping.to_model_energy(best_hw, encoding.model.offset());
    const long long oracle =
        qubo::brute_force_knapsack(test_case.instance);
    EXPECT_DOUBLE_EQ(best_energy, -static_cast<double>(oracle));

    const auto decoded = encoding.decode(test_case.instance, best_spins);
    EXPECT_TRUE(decoded.feasible);
    EXPECT_EQ(decoded.value, oracle);
  }
}

TEST(Knapsack, InvalidInstancesAreRejected) {
  EXPECT_THROW(qubo::make_knapsack("x", {}, {}, 5), ConfigError);
  EXPECT_THROW(qubo::make_knapsack("x", {1, 2}, {1}, 5), ConfigError);
  EXPECT_THROW(qubo::make_knapsack("x", {0}, {1}, 5), ConfigError);
  EXPECT_THROW(qubo::make_knapsack("x", {1}, {0}, 5), ConfigError);
  EXPECT_THROW(qubo::make_knapsack("x", {1}, {1}, 0), ConfigError);
}

TEST(Fingerprint, DependsOnContentNotName) {
  ising::GenericModel a("alpha", 3);
  a.add_coupling(0, 1, 2.0);
  ising::GenericModel b("beta", 3);
  b.add_coupling(0, 1, 2.0);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.add_field(2, 1.0);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint().rfind("sha256:", 0), 0U);
}

}  // namespace
}  // namespace cim
