// Cross-module integration tests: the full instance → cluster → window →
// noisy-MAC → anneal → tour pipeline, and the paper's qualitative claims
// as executable properties.
#include <gtest/gtest.h>

#include "anneal/clustered_annealer.hpp"
#include "core/solver.hpp"
#include "heuristics/reference.hpp"
#include "ising/pbm.hpp"
#include "test_helpers.hpp"
#include "tsp/generator.hpp"
#include "util/stats.hpp"

namespace cim {
namespace {

anneal::AnnealerConfig config_with(anneal::NoiseMode mode,
                                   std::uint64_t seed) {
  anneal::AnnealerConfig config;
  config.clustering.strategy = cluster::Strategy::kSemiFlexible;
  config.clustering.p = 3;
  config.noise = mode;
  config.seed = seed;
  return config;
}

double mean_length(anneal::NoiseMode mode, const tsp::Instance& inst,
                   std::size_t runs) {
  util::RunningStats stats;
  for (std::uint64_t seed = 0; seed < runs; ++seed) {
    const anneal::ClusteredAnnealer annealer(config_with(mode, seed + 1));
    stats.add(static_cast<double>(annealer.solve(inst).length));
  }
  return stats.mean();
}

TEST(Integration, WeightNoiseBeatsGreedyDescent) {
  // §IV.B: annealing (weight noise) escapes local minima that pure greedy
  // descent cannot. Averaged over seeds, SRAM-weight noise should not be
  // worse and typically wins.
  const auto inst = tsp::make_paper_instance("rl600");
  const double noisy = mean_length(anneal::NoiseMode::kSramWeight, inst, 5);
  const double greedy = mean_length(anneal::NoiseMode::kNone, inst, 5);
  EXPECT_LT(noisy, greedy * 1.05);
}

TEST(Integration, SpinNoiseIsWorseThanWeightNoise) {
  // The paper's central ablation: spatial noise on spins ([4]) performs
  // poorly; converting it to temporal noise via weights (this work) wins.
  const auto inst = tsp::make_paper_instance("rl600");
  const double weight_noise =
      mean_length(anneal::NoiseMode::kSramWeight, inst, 5);
  const double spin_noise =
      mean_length(anneal::NoiseMode::kSramSpin, inst, 5);
  EXPECT_LT(weight_noise, spin_noise);
}

TEST(Integration, SpinNoiseDynamicsAreDeterministicPerEpoch) {
  // With spatially fixed spin errors and fixed weights, two solves with
  // identical seeds follow identical trajectories (the [4] failure mode:
  // restarts do not explore).
  const auto inst = test::random_instance(100, 5);
  const anneal::ClusteredAnnealer annealer(
      config_with(anneal::NoiseMode::kSramSpin, 9));
  const auto a = annealer.solve(inst);
  const auto b = annealer.solve(inst);
  EXPECT_EQ(a.tour, b.tour);
}

TEST(Integration, SemiFlexibleBeatsFixedOnAverage) {
  // Table I's message: semi-flexible sizing beats strictly fixed sizing.
  const auto inst = tsp::make_paper_instance("pcb800");
  util::RunningStats semi;
  util::RunningStats fixed;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto cfg = config_with(anneal::NoiseMode::kSramWeight, seed);
    cfg.clustering.strategy = cluster::Strategy::kSemiFlexible;
    cfg.clustering.p = 3;
    semi.add(static_cast<double>(
        anneal::ClusteredAnnealer(cfg).solve(inst).length));
    cfg.clustering.strategy = cluster::Strategy::kFixed;
    cfg.clustering.p = 2;
    fixed.add(static_cast<double>(
        anneal::ClusteredAnnealer(cfg).solve(inst).length));
  }
  EXPECT_LT(semi.mean(), fixed.mean());
}

TEST(Integration, QualityWithinPaperBandOnPaperFamilies) {
  // §VI: < 25% overhead vs. optimal at paper scale. At our reduced test
  // scale (hierarchy overhead is relatively larger on small instances),
  // accept < 45% vs. the near-optimal reference.
  for (const char* name : {"pcb700", "rl700", "geo700"}) {
    const auto inst = tsp::make_paper_instance(name);
    const auto reference = heuristics::compute_reference(inst);
    const anneal::ClusteredAnnealer annealer(
        config_with(anneal::NoiseMode::kSramWeight, 3));
    const auto result = annealer.solve(inst);
    const double ratio = static_cast<double>(result.length) /
                         static_cast<double>(reference.length);
    EXPECT_LT(ratio, 1.45) << name;
    EXPECT_GE(ratio, 1.0 - 1e-9) << name;
  }
}

TEST(Integration, WindowMacsEqualPbmLocalEnergiesNoiseFree) {
  // The hardware path (window + storage MAC) must agree with the
  // software-exact PBM specification when noise and quantisation error
  // are absent. Run the annealer noise-free on an instance whose maximum
  // window distance is below 256 so quantisation is lossless, then check
  // the final tour's length bookkeeping.
  const auto inst = test::grid_instance(10, 10, 10.0);  // dmax small
  auto cfg = config_with(anneal::NoiseMode::kNone, 4);
  const auto result = anneal::ClusteredAnnealer(cfg).solve(inst);
  EXPECT_TRUE(result.tour.is_valid(100));
  EXPECT_EQ(result.length, result.tour.length(inst));
  // And the PBM view of the same tour agrees.
  const ising::PbmState pbm(inst, result.tour);
  EXPECT_EQ(pbm.length(), result.length);
}

TEST(Integration, EndToEndBitLevelSmall) {
  // The full solve on the faithful bit-level backend (slow path) must
  // agree exactly with the fast path (same noise semantics).
  const auto inst = tsp::make_paper_instance("pcb300");
  auto fast_cfg = config_with(anneal::NoiseMode::kSramWeight, 11);
  auto bit_cfg = fast_cfg;
  bit_cfg.backend = anneal::BackendKind::kBitLevel;
  const auto fast = anneal::ClusteredAnnealer(fast_cfg).solve(inst);
  const auto bits = anneal::ClusteredAnnealer(bit_cfg).solve(inst);
  EXPECT_EQ(fast.tour, bits.tour);
}

TEST(Integration, CapacityMatchesChipPlanForSolvedInstance) {
  const auto inst = tsp::make_paper_instance("pcb700");
  core::SolverConfig config;
  config.p_max = 3;
  const auto outcome = core::CimSolver(config).solve(inst);
  ASSERT_TRUE(outcome.ppa.has_value());
  // 2N/(1+p) windows at (p²+2p)p² bytes each.
  const double expected_bytes =
      (9.0 + 6.0) * 9.0 * (2.0 * 700.0 / 4.0);
  EXPECT_NEAR(outcome.ppa->layout.capacity_bytes(), expected_bytes,
              expected_bytes * 0.01);
}

TEST(Integration, ConvergenceTraceDescends) {
  const auto inst = tsp::make_paper_instance("rl500");
  auto cfg = config_with(anneal::NoiseMode::kSramWeight, 6);
  cfg.record_trace = true;
  const auto result = anneal::ClusteredAnnealer(cfg).solve(inst);
  ASSERT_EQ(result.trace.size(), 400U);
  // Mean of the last 50 iterations below mean of the first 50.
  double head = 0.0;
  double tail = 0.0;
  for (std::size_t i = 0; i < 50; ++i) {
    head += result.trace[i];
    tail += result.trace[350 + i];
  }
  EXPECT_LT(tail, head);
}

}  // namespace
}  // namespace cim
