#include "cluster/refine.hpp"

#include <gtest/gtest.h>

#include "cluster/agglomerate.hpp"
#include "cluster/hierarchy.hpp"
#include "test_helpers.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace cim::cluster {
namespace {

std::vector<geo::Point> points_of(const tsp::Instance& inst) {
  return {inst.coords().begin(), inst.coords().end()};
}

void expect_partition(const std::vector<std::vector<std::uint32_t>>& groups,
                      std::size_t m, std::size_t cap) {
  std::vector<char> seen(m, 0);
  for (const auto& g : groups) {
    EXPECT_FALSE(g.empty());
    EXPECT_LE(g.size(), cap);
    for (const auto idx : g) {
      ASSERT_LT(idx, m);
      EXPECT_FALSE(seen[idx]);
      seen[idx] = 1;
    }
  }
  for (std::size_t i = 0; i < m; ++i) EXPECT_TRUE(seen[i]);
}

double mean_point_to_centroid(
    const std::vector<geo::Point>& pts,
    const std::vector<std::vector<std::uint32_t>>& groups) {
  util::RunningStats stats;
  for (const auto& g : groups) {
    std::vector<geo::Point> members;
    for (const auto p : g) members.push_back(pts[p]);
    const geo::Point c = geo::centroid(members);
    for (const auto p : g) stats.add(geo::euclidean(pts[p], c));
  }
  return stats.mean();
}

TEST(Refine, FixesObviousMisassignment) {
  // Two tight blobs, but one point of blob B starts in group A.
  std::vector<geo::Point> pts{{0, 0},    {1, 0},     {0, 1},
                              {100, 100}, {101, 100}, {100, 101}};
  const std::vector<std::uint32_t> weights(6, 1);
  std::vector<std::vector<std::uint32_t>> groups{{0, 1, 2, 3}, {4, 5}};
  const auto stats = refine_groups(pts, weights, groups, 4);
  EXPECT_GT(stats.moves, 0U);
  expect_partition(groups, 6, 4);
  // Point 3 must have migrated to the far blob's group.
  for (const auto& g : groups) {
    if (std::find(g.begin(), g.end(), 3U) != g.end()) {
      EXPECT_TRUE(std::find(g.begin(), g.end(), 4U) != g.end());
    }
  }
}

TEST(Refine, ImprovesCompactnessOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto inst = test::random_instance(400, 100 + seed);
    const auto pts = points_of(inst);
    const std::vector<std::uint32_t> weights(400, 1);
    util::Rng rng(seed);
    auto groups = group_agglomerative(pts, weights, 200, 3, rng);
    const double before = mean_point_to_centroid(pts, groups);
    refine_groups(pts, weights, groups, 3);
    const double after = mean_point_to_centroid(pts, groups);
    EXPECT_LE(after, before + 1e-9);
    expect_partition(groups, 400, 3);
  }
}

TEST(Refine, RespectsSizeCap) {
  const auto inst = test::random_instance(200, 7);
  const auto pts = points_of(inst);
  const std::vector<std::uint32_t> weights(200, 1);
  util::Rng rng(1);
  auto groups = group_agglomerative(pts, weights, 100, 2, rng);
  refine_groups(pts, weights, groups, 2);
  expect_partition(groups, 200, 2);
}

TEST(Refine, NeverEmptiesAGroup) {
  // A singleton group far from everything must survive even though all
  // its mass "wants" to move.
  std::vector<geo::Point> pts{{0, 0}, {1, 1}, {2, 0}, {0.5, 0.5}};
  const std::vector<std::uint32_t> weights(4, 1);
  std::vector<std::vector<std::uint32_t>> groups{{0, 1, 2}, {3}};
  refine_groups(pts, weights, groups, 4);
  EXPECT_EQ(groups.size(), 2U);
  expect_partition(groups, 4, 4);
}

TEST(Refine, NoOpOnSingleGroup) {
  std::vector<geo::Point> pts{{0, 0}, {1, 1}};
  const std::vector<std::uint32_t> weights(2, 1);
  std::vector<std::vector<std::uint32_t>> groups{{0, 1}};
  const auto stats = refine_groups(pts, weights, groups, 4);
  EXPECT_EQ(stats.moves, 0U);
}

TEST(Refine, ConvergesWithinRounds) {
  const auto inst = test::random_instance(300, 9);
  const auto pts = points_of(inst);
  const std::vector<std::uint32_t> weights(300, 1);
  util::Rng rng(2);
  auto groups = group_agglomerative(pts, weights, 150, 3, rng);
  const auto stats = refine_groups(pts, weights, groups, 3, 32);
  EXPECT_LE(stats.rounds, 32U);
  // A second refinement makes no further moves.
  const auto again = refine_groups(pts, weights, groups, 3, 32);
  EXPECT_EQ(again.moves, 0U);
}

TEST(Refine, HierarchyIntegrationStaysValid) {
  const auto inst = test::random_instance(500, 11);
  Options with;
  with.refine = true;
  Options without;
  without.refine = false;
  const Hierarchy a(inst, with);
  const Hierarchy b(inst, without);
  EXPECT_NO_THROW(a.validate());
  EXPECT_NO_THROW(b.validate());
  EXPECT_LE(a.max_cluster_size(), 3U);
}

}  // namespace
}  // namespace cim::cluster
