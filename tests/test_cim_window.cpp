#include "cim/window.hpp"

#include <gtest/gtest.h>

#include "cim/storage.hpp"

namespace cim::hw {
namespace {

// A hand-built 3-cluster scenario: the middle cluster has members {A,B,C}
// at integer positions, the predecessor contributes boundary members
// {P0,P1}, the successor {S0,S1,S2}. Distances are filled directly as
// quantised weights so MAC results can be checked by hand.
class WindowScenario : public ::testing::Test {
 protected:
  WindowScenario() : shape_{3, 2, 3}, builder_(shape_) {
    // Own member distances: d(A,B)=10, d(A,C)=20, d(B,C)=5.
    builder_.set_own_distance(0, 1, 10);
    builder_.set_own_distance(0, 2, 20);
    builder_.set_own_distance(1, 2, 5);
    // Predecessor boundary distances to own members.
    builder_.set_prev_distance(0, 0, 7);   // P0–A
    builder_.set_prev_distance(0, 1, 8);   // P0–B
    builder_.set_prev_distance(0, 2, 9);   // P0–C
    builder_.set_prev_distance(1, 0, 17);  // P1–A
    builder_.set_prev_distance(1, 1, 18);
    builder_.set_prev_distance(1, 2, 19);
    // Successor boundary distances.
    builder_.set_next_distance(0, 0, 30);  // S0–A
    builder_.set_next_distance(0, 1, 31);
    builder_.set_next_distance(0, 2, 32);
    builder_.set_next_distance(1, 0, 40);
    builder_.set_next_distance(1, 1, 41);
    builder_.set_next_distance(1, 2, 42);
    builder_.set_next_distance(2, 0, 50);
    builder_.set_next_distance(2, 1, 51);
    builder_.set_next_distance(2, 2, 52);
    image_ = builder_.build();
  }

  std::uint8_t weight(RowIndex row, ColIndex col) const {
    return image_[static_cast<std::size_t>(row.get()) * shape_.cols() +
                  col.get()];
  }

  WindowShape shape_;
  WindowBuilder builder_;
  std::vector<std::uint8_t> image_;
};

TEST_F(WindowScenario, Dimensions) {
  EXPECT_EQ(shape_.own_rows(), 9U);
  EXPECT_EQ(shape_.rows(), 9U + 2U + 3U);
  EXPECT_EQ(shape_.cols(), 9U);
  EXPECT_EQ(shape_.weights(), 14U * 9U);
}

TEST_F(WindowScenario, HardwareShapeIsPaperFormula) {
  const WindowShape hw = WindowShape::hardware(3);
  EXPECT_EQ(hw.rows(), 15U);  // p²+2p = 15
  EXPECT_EQ(hw.cols(), 9U);   // p² = 9
  const WindowShape hw4 = WindowShape::hardware(4);
  EXPECT_EQ(hw4.rows(), 24U);
  EXPECT_EQ(hw4.cols(), 16U);
}

TEST_F(WindowScenario, OwnCouplingsOnlyBetweenAdjacentOrders) {
  for (std::uint32_t ri = 0; ri < 3; ++ri) {
    for (std::uint32_t rk = 0; rk < 3; ++rk) {
      for (std::uint32_t si = 0; si < 3; ++si) {
        for (std::uint32_t sk = 0; sk < 3; ++sk) {
          const std::uint8_t w =
              weight(builder_.own_row(ri, rk), builder_.col(si, sk));
          const bool adjacent = (ri + 1 == si) || (si + 1 == ri);
          if (!adjacent || rk == sk) {
            EXPECT_EQ(w, 0U) << ri << rk << si << sk;
          }
        }
      }
    }
  }
  // Spot-check a present coupling: member A at order 0 ↔ member B at
  // order 1 must carry d(A,B)=10 in both directions.
  EXPECT_EQ(weight(builder_.own_row(0, 0), builder_.col(1, 1)), 10U);
  EXPECT_EQ(weight(builder_.own_row(1, 1), builder_.col(0, 0)), 10U);
}

TEST_F(WindowScenario, BoundaryRowsTargetFirstAndLastOrderOnly) {
  for (std::uint32_t j = 0; j < shape_.p_prev; ++j) {
    for (std::uint32_t si = 0; si < 3; ++si) {
      for (std::uint32_t sk = 0; sk < 3; ++sk) {
        const std::uint8_t w = weight(builder_.prev_row(j),
                                      builder_.col(si, sk));
        if (si != 0) {
          EXPECT_EQ(w, 0U);
        }
      }
    }
  }
  for (std::uint32_t j = 0; j < shape_.p_next; ++j) {
    for (std::uint32_t si = 0; si < 3; ++si) {
      for (std::uint32_t sk = 0; sk < 3; ++sk) {
        const std::uint8_t w = weight(builder_.next_row(j),
                                      builder_.col(si, sk));
        if (si != 2) {
          EXPECT_EQ(w, 0U);
        }
      }
    }
  }
  EXPECT_EQ(weight(builder_.prev_row(1), builder_.col(0, 2)), 19U);
  EXPECT_EQ(weight(builder_.next_row(2), builder_.col(2, 0)), 50U);
}

// The MAC of a column must equal the spin's local energy: distance to the
// members at adjacent orders (or boundary members for edge orders).
TEST_F(WindowScenario, MacComputesLocalEnergy) {
  auto storage = make_fast_storage(shape_.rows(), shape_.cols(), nullptr, 0);
  storage->write(image_);

  // Permutation: order 0 → member B(1), order 1 → A(0), order 2 → C(2).
  // Prev boundary = P1 (index 1), next boundary = S0 (index 0).
  std::vector<std::uint8_t> input(shape_.rows(), 0);
  input[builder_.own_row(0, 1).get()] = 1;
  input[builder_.own_row(1, 0).get()] = 1;
  input[builder_.own_row(2, 2).get()] = 1;
  input[builder_.prev_row(1).get()] = 1;
  input[builder_.next_row(0).get()] = 1;

  // Local energy of spin (order 0, member B): d(P1,B) + d(B,A) = 18+10.
  EXPECT_EQ(storage->mac(builder_.col(0, 1), input), 28);
  // Spin (order 1, member A): d(B,A) + d(A,C) = 10+20.
  EXPECT_EQ(storage->mac(builder_.col(1, 0), input), 30);
  // Spin (order 2, member C): d(A,C) + d(S0,C) = 20+32.
  EXPECT_EQ(storage->mac(builder_.col(2, 2), input), 52);
}

// The paper's key §III.B argument: after compact relocation, an analog
// array would sum the ENTIRE physical column — including rows that belong
// to other (relocated) windows stacked above/below — and produce a wrong
// energy, while the digital adder tree sums only this window's section.
TEST_F(WindowScenario, AnalogFullColumnSumIsWrongAfterRelocation) {
  // Simulate two windows sharing a physical column: our window's section
  // plus a second window's section stacked below with its own (active)
  // inputs.
  auto upper = make_fast_storage(shape_.rows(), shape_.cols(), nullptr, 0);
  upper->write(image_);
  auto lower = make_fast_storage(shape_.rows(), shape_.cols(), nullptr, 1000);
  lower->write(image_);

  std::vector<std::uint8_t> input_upper(shape_.rows(), 0);
  input_upper[builder_.own_row(0, 1).get()] = 1;
  input_upper[builder_.own_row(1, 0).get()] = 1;
  input_upper[builder_.own_row(2, 2).get()] = 1;
  input_upper[builder_.prev_row(1).get()] = 1;
  input_upper[builder_.next_row(0).get()] = 1;
  const std::vector<std::uint8_t> input_lower = input_upper;

  // Digital: sectioned sums, each window independent and correct.
  const auto digital_upper = upper->mac(builder_.col(0, 1), input_upper);
  EXPECT_EQ(digital_upper, 28);

  // Analog: the column current accumulates across both sections.
  const auto analog = upper->mac(builder_.col(0, 1), input_upper) +
                      lower->mac(builder_.col(0, 1), input_lower);
  EXPECT_NE(analog, digital_upper);
  EXPECT_EQ(analog, 2 * 28);  // corrupted by the other window's section
}

TEST(WindowBuilder, SingleMemberCluster) {
  // p=1: no own couplings, only boundary rows into the single column.
  WindowBuilder builder(WindowShape{1, 1, 1});
  builder.set_prev_distance(0, 0, 11);
  builder.set_next_distance(0, 0, 22);
  const auto image = builder.build();
  ASSERT_EQ(image.size(), 3U);  // (1+1+1) rows × 1 col
  EXPECT_EQ(image[0], 0U);      // own row: no self coupling
  EXPECT_EQ(image[1], 11U);
  EXPECT_EQ(image[2], 22U);
}

TEST(WindowBuilder, InvalidShapeThrows) {
  EXPECT_THROW(WindowBuilder(WindowShape{0, 1, 1}), cim::ConfigError);
}

}  // namespace
}  // namespace cim::hw
