#include "tsp/tsplib.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::tsp {
namespace {

constexpr const char* kCoordFile = R"(NAME : tiny
COMMENT : a tiny test instance
TYPE : TSP
DIMENSION : 4
EDGE_WEIGHT_TYPE : EUC_2D
NODE_COORD_SECTION
1 0.0 0.0
2 3.0 0.0
3 3.0 4.0
4 0.0 4.0
EOF
)";

TEST(Tsplib, ParseCoordinateFile) {
  const Instance inst = parse_tsplib(kCoordFile);
  EXPECT_EQ(inst.name(), "tiny");
  EXPECT_EQ(inst.comment(), "a tiny test instance");
  EXPECT_EQ(inst.size(), 4U);
  EXPECT_EQ(inst.metric(), geo::Metric::kEuc2D);
  EXPECT_EQ(inst.distance(0, 1), 3);
  EXPECT_EQ(inst.distance(1, 2), 4);
  EXPECT_EQ(inst.distance(0, 2), 5);
}

TEST(Tsplib, ParseWithoutSpacesAroundColon) {
  const Instance inst = parse_tsplib(
      "NAME:x\nTYPE:TSP\nDIMENSION:1\nEDGE_WEIGHT_TYPE:EUC_2D\n"
      "NODE_COORD_SECTION\n1 5 5\nEOF\n");
  EXPECT_EQ(inst.size(), 1U);
}

TEST(Tsplib, ParseFullMatrix) {
  const Instance inst = parse_tsplib(
      "NAME : m\nTYPE : TSP\nDIMENSION : 3\n"
      "EDGE_WEIGHT_TYPE : EXPLICIT\nEDGE_WEIGHT_FORMAT : FULL_MATRIX\n"
      "EDGE_WEIGHT_SECTION\n0 2 9\n2 0 6\n9 6 0\nEOF\n");
  EXPECT_EQ(inst.distance(0, 2), 9);
  EXPECT_EQ(inst.distance(1, 2), 6);
}

TEST(Tsplib, ParseUpperRow) {
  const Instance inst = parse_tsplib(
      "NAME : m\nTYPE : TSP\nDIMENSION : 3\n"
      "EDGE_WEIGHT_TYPE : EXPLICIT\nEDGE_WEIGHT_FORMAT : UPPER_ROW\n"
      "EDGE_WEIGHT_SECTION\n2 9 6\nEOF\n");
  EXPECT_EQ(inst.distance(0, 1), 2);
  EXPECT_EQ(inst.distance(0, 2), 9);
  EXPECT_EQ(inst.distance(1, 2), 6);
}

TEST(Tsplib, ParseLowerRow) {
  const Instance inst = parse_tsplib(
      "NAME : m\nTYPE : TSP\nDIMENSION : 3\n"
      "EDGE_WEIGHT_TYPE : EXPLICIT\nEDGE_WEIGHT_FORMAT : LOWER_ROW\n"
      "EDGE_WEIGHT_SECTION\n2\n9 6\nEOF\n");
  EXPECT_EQ(inst.distance(1, 0), 2);
  EXPECT_EQ(inst.distance(2, 0), 9);
  EXPECT_EQ(inst.distance(2, 1), 6);
}

TEST(Tsplib, ParseUpperDiagRow) {
  const Instance inst = parse_tsplib(
      "NAME : m\nTYPE : TSP\nDIMENSION : 3\n"
      "EDGE_WEIGHT_TYPE : EXPLICIT\nEDGE_WEIGHT_FORMAT : UPPER_DIAG_ROW\n"
      "EDGE_WEIGHT_SECTION\n0 2 9\n0 6\n0\nEOF\n");
  EXPECT_EQ(inst.distance(0, 1), 2);
  EXPECT_EQ(inst.distance(1, 2), 6);
}

TEST(Tsplib, ParseLowerDiagRow) {
  const Instance inst = parse_tsplib(
      "NAME : m\nTYPE : TSP\nDIMENSION : 3\n"
      "EDGE_WEIGHT_TYPE : EXPLICIT\nEDGE_WEIGHT_FORMAT : LOWER_DIAG_ROW\n"
      "EDGE_WEIGHT_SECTION\n0\n2 0\n9 6 0\nEOF\n");
  EXPECT_EQ(inst.distance(0, 1), 2);
  EXPECT_EQ(inst.distance(0, 2), 9);
}

TEST(Tsplib, MissingDimensionThrows) {
  EXPECT_THROW(parse_tsplib("NAME : x\nTYPE : TSP\n"
                            "EDGE_WEIGHT_TYPE : EUC_2D\n"
                            "NODE_COORD_SECTION\n1 0 0\nEOF\n"),
               ParseError);
}

TEST(Tsplib, MissingWeightTypeThrows) {
  EXPECT_THROW(parse_tsplib("NAME : x\nTYPE : TSP\nDIMENSION : 1\n"
                            "NODE_COORD_SECTION\n1 0 0\nEOF\n"),
               ParseError);
}

TEST(Tsplib, UnsupportedTypeThrows) {
  EXPECT_THROW(parse_tsplib("TYPE : ATSP\nDIMENSION : 1\n"
                            "EDGE_WEIGHT_TYPE : EUC_2D\n"
                            "NODE_COORD_SECTION\n1 0 0\nEOF\n"),
               ParseError);
}

TEST(Tsplib, NodeIdOutOfRangeThrows) {
  EXPECT_THROW(parse_tsplib("TYPE : TSP\nDIMENSION : 2\n"
                            "EDGE_WEIGHT_TYPE : EUC_2D\n"
                            "NODE_COORD_SECTION\n1 0 0\n3 1 1\nEOF\n"),
               ParseError);
}

TEST(Tsplib, DuplicateNodeThrows) {
  EXPECT_THROW(parse_tsplib("TYPE : TSP\nDIMENSION : 2\n"
                            "EDGE_WEIGHT_TYPE : EUC_2D\n"
                            "NODE_COORD_SECTION\n1 0 0\n1 1 1\nEOF\n"),
               ParseError);
}

TEST(Tsplib, MissingNodeThrows) {
  EXPECT_THROW(parse_tsplib("TYPE : TSP\nDIMENSION : 2\n"
                            "EDGE_WEIGHT_TYPE : EUC_2D\n"
                            "NODE_COORD_SECTION\n1 0 0\nEOF\n"),
               ParseError);
}

TEST(Tsplib, MalformedCoordinateThrows) {
  EXPECT_THROW(parse_tsplib("TYPE : TSP\nDIMENSION : 1\n"
                            "EDGE_WEIGHT_TYPE : EUC_2D\n"
                            "NODE_COORD_SECTION\nbogus line\nEOF\n"),
               ParseError);
}

TEST(Tsplib, WrongWeightCountThrows) {
  EXPECT_THROW(parse_tsplib("TYPE : TSP\nDIMENSION : 3\n"
                            "EDGE_WEIGHT_TYPE : EXPLICIT\n"
                            "EDGE_WEIGHT_FORMAT : UPPER_ROW\n"
                            "EDGE_WEIGHT_SECTION\n1 2\nEOF\n"),
               ParseError);
}

TEST(Tsplib, UnsupportedFormatThrows) {
  EXPECT_THROW(parse_tsplib("TYPE : TSP\nDIMENSION : 2\n"
                            "EDGE_WEIGHT_TYPE : EXPLICIT\n"
                            "EDGE_WEIGHT_FORMAT : UPPER_COL\n"
                            "EDGE_WEIGHT_SECTION\n1\nEOF\n"),
               ParseError);
}

TEST(Tsplib, WriteParseRoundTrip) {
  const auto inst = test::random_instance(30, 11);
  const std::string text = write_tsplib(inst);
  const Instance back = parse_tsplib(text);
  ASSERT_EQ(back.size(), inst.size());
  EXPECT_EQ(back.name(), inst.name());
  EXPECT_EQ(back.metric(), inst.metric());
  for (CityId a = 0; a < inst.size(); ++a) {
    for (CityId b = 0; b < inst.size(); ++b) {
      EXPECT_EQ(back.distance(a, b), inst.distance(a, b));
    }
  }
}

TEST(Tsplib, WriteExplicitThrows) {
  const auto inst = test::to_explicit(test::random_instance(4, 1));
  EXPECT_THROW(write_tsplib(inst), ConfigError);
}

TEST(Tsplib, LoadMissingFileThrows) {
  EXPECT_THROW(load_tsplib("/no/such/file.tsp"), Error);
}

TEST(Tsplib, MultiLineComment) {
  const Instance inst = parse_tsplib(
      "NAME : c\nCOMMENT : line one\nCOMMENT : line two\nTYPE : TSP\n"
      "DIMENSION : 1\nEDGE_WEIGHT_TYPE : EUC_2D\n"
      "NODE_COORD_SECTION\n1 0 0\nEOF\n");
  EXPECT_EQ(inst.comment(), "line one\nline two");
}

}  // namespace
}  // namespace cim::tsp
