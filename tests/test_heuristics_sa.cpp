#include "heuristics/sa_baseline.hpp"

#include <gtest/gtest.h>

#include "heuristics/construct.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::heuristics {
namespace {

TEST(SaBaseline, ImprovesRandomTour) {
  const auto inst = test::random_instance(200, 1);
  const auto initial = random_tour(inst, 2);
  SaOptions opt;
  opt.sweeps = 100;
  const auto result = simulated_annealing(inst, initial, opt);
  EXPECT_LT(result.final_length, result.initial_length);
  EXPECT_TRUE(result.tour.is_valid(200));
  EXPECT_EQ(result.final_length, result.tour.length(inst));
}

TEST(SaBaseline, SeedDeterminism) {
  const auto inst = test::random_instance(100, 3);
  const auto initial = random_tour(inst, 4);
  SaOptions opt;
  opt.sweeps = 50;
  opt.seed = 77;
  const auto a = simulated_annealing(inst, initial, opt);
  const auto b = simulated_annealing(inst, initial, opt);
  EXPECT_EQ(a.final_length, b.final_length);
  EXPECT_EQ(a.tour, b.tour);
  opt.seed = 78;
  const auto c = simulated_annealing(inst, initial, opt);
  EXPECT_NE(a.tour, c.tour);
}

TEST(SaBaseline, TraceHasOneEntryPerSweep) {
  const auto inst = test::random_instance(80, 5);
  SaOptions opt;
  opt.sweeps = 37;
  const auto result = simulated_annealing(inst, random_tour(inst, 1), opt);
  EXPECT_EQ(result.trace.size(), 37U);
  // Converging: the last recorded length is below the first.
  EXPECT_LT(result.trace.back(), result.trace.front());
}

TEST(SaBaseline, TraceDisabled) {
  const auto inst = test::random_instance(60, 6);
  SaOptions opt;
  opt.sweeps = 10;
  opt.record_trace = false;
  const auto result = simulated_annealing(inst, random_tour(inst, 1), opt);
  EXPECT_TRUE(result.trace.empty());
}

TEST(SaBaseline, AcceptanceCountsConsistent) {
  const auto inst = test::random_instance(100, 7);
  SaOptions opt;
  opt.sweeps = 20;
  const auto result = simulated_annealing(inst, random_tour(inst, 2), opt);
  EXPECT_EQ(result.attempted, 20U * 100U);
  EXPECT_LE(result.accepted, result.attempted);
  EXPECT_GT(result.accepted, 0U);
}

TEST(SaBaseline, InvalidInitialTourThrows) {
  const auto inst = test::random_instance(10, 8);
  EXPECT_THROW(
      simulated_annealing(inst, tsp::Tour({0, 1, 2}), SaOptions{}),
      ConfigError);
}

TEST(SaBaseline, TinyInstanceNoCrash) {
  const auto inst = test::random_instance(3, 9);
  const auto result =
      simulated_annealing(inst, tsp::Tour::identity(3), SaOptions{});
  EXPECT_TRUE(result.tour.is_valid(3));
}

TEST(SaBaseline, HotterStartAcceptsMore) {
  const auto inst = test::random_instance(150, 11);
  const auto initial = nearest_neighbor(inst);
  SaOptions cold;
  cold.sweeps = 20;
  cold.t_start_factor = 0.001;
  SaOptions hot = cold;
  hot.t_start_factor = 2.0;
  const auto cold_result = simulated_annealing(inst, initial, cold);
  const auto hot_result = simulated_annealing(inst, initial, hot);
  EXPECT_GT(hot_result.accepted, cold_result.accepted);
}

}  // namespace
}  // namespace cim::heuristics
