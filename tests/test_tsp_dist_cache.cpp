#include "tsp/dist_cache.hpp"

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::tsp {
namespace {

TEST(DistCache, ReturnsExactMetricValues) {
  const auto inst = test::random_instance(120, 17);
  DistanceCache cache(inst, 10);
  for (CityId a = 0; a < inst.size(); ++a) {
    for (CityId b = 0; b < inst.size(); ++b) {
      EXPECT_EQ(cache.distance(a, b), inst.distance(a, b));
    }
  }
}

TEST(DistCache, SymmetricPairsShareASlot) {
  const auto inst = test::random_instance(50, 23);
  DistanceCache cache(inst, 10);
  EXPECT_EQ(cache.distance(3, 17), cache.distance(17, 3));
  // The second orientation of a cached pair must be a hit.
  cache.reset_stats();
  (void)cache.distance(17, 3);
  EXPECT_EQ(cache.stats().hits, 1U);
  EXPECT_EQ(cache.stats().misses, 0U);
}

TEST(DistCache, RepeatQueriesHit) {
  const auto inst = test::random_instance(64, 5);
  DistanceCache cache(inst, 12);
  cache.reset_stats();
  for (int round = 0; round < 4; ++round) {
    for (CityId a = 0; a < 8; ++a) {
      for (CityId b = 0; b < 8; ++b) {
        (void)cache.distance(a, b);
      }
    }
  }
  // 28 distinct pairs; unless two collide in the table, rounds 2-4 hit.
  const auto& s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 4U * 8U * 7U);
  EXPECT_GT(s.hits, s.misses);
  EXPECT_GT(s.bytes_touched, 0U);
}

TEST(DistCache, SelfDistanceIsZeroAndUncounted) {
  const auto inst = test::random_instance(10, 3);
  DistanceCache cache(inst, 10);
  cache.reset_stats();
  EXPECT_EQ(cache.distance(4, 4), 0);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 0U);
}

TEST(DistCache, ClearDropsEntriesKeepsStats) {
  const auto inst = test::random_instance(30, 7);
  DistanceCache cache(inst, 10);
  (void)cache.distance(1, 2);
  (void)cache.distance(1, 2);
  const auto before = cache.stats();
  EXPECT_EQ(before.hits, 1U);
  cache.clear();
  EXPECT_EQ(cache.stats().hits, before.hits);
  (void)cache.distance(1, 2);
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
}

// Determinism: the hit/miss sequence is a pure function of the query
// sequence — two caches fed the same queries report identical stats.
TEST(DistCache, DeterministicFillOrder) {
  const auto inst = test::random_instance(200, 41);
  DistanceCache a(inst, 8);
  DistanceCache b(inst, 8);
  std::uint64_t state = 99;
  std::vector<std::pair<CityId, CityId>> queries;
  for (int i = 0; i < 5000; ++i) {
    const CityId x = static_cast<CityId>(util::splitmix64(state) % 200);
    const CityId y = static_cast<CityId>(util::splitmix64(state) % 200);
    queries.emplace_back(x, y);
  }
  for (const auto& [x, y] : queries) EXPECT_EQ(a.distance(x, y), inst.distance(x, y));
  for (const auto& [x, y] : queries) (void)b.distance(x, y);
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().misses, b.stats().misses);
  EXPECT_EQ(a.stats().bytes_touched, b.stats().bytes_touched);
}

TEST(DistCache, RejectsDegenerateCapacity) {
  const auto inst = test::random_instance(10, 1);
  EXPECT_THROW(DistanceCache(inst, 2), ConfigError);
  EXPECT_THROW(DistanceCache(inst, 40), ConfigError);
}

}  // namespace
}  // namespace cim::tsp
