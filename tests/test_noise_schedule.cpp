#include "noise/schedule.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace cim::noise {
namespace {

TEST(Schedule, PaperDefaults) {
  const AnnealSchedule sched;
  EXPECT_EQ(sched.total_iterations(), 400U);
  EXPECT_EQ(sched.epochs(), 8U);
  EXPECT_TRUE(sched.ends_noise_free());
}

TEST(Schedule, VddRampMatchesPaper) {
  // §V: 300 mV to 580 mV in 40 mV increments every 50 iterations.
  const AnnealSchedule sched;
  EXPECT_NEAR(sched.at(0).vdd, 0.30, 1e-12);
  EXPECT_NEAR(sched.at(49).vdd, 0.30, 1e-12);
  EXPECT_NEAR(sched.at(50).vdd, 0.34, 1e-12);
  EXPECT_NEAR(sched.at(399).vdd, 0.58, 1e-12);
}

TEST(Schedule, LsbCountdown) {
  const AnnealSchedule sched;
  EXPECT_EQ(sched.at(0).noisy_lsbs, 6U);
  EXPECT_EQ(sched.at(50).noisy_lsbs, 5U);
  EXPECT_EQ(sched.at(250).noisy_lsbs, 1U);
  EXPECT_EQ(sched.at(300).noisy_lsbs, 0U);
  EXPECT_EQ(sched.at(399).noisy_lsbs, 0U);
}

TEST(Schedule, WriteBackOnEpochBoundaries) {
  const AnnealSchedule sched;
  EXPECT_TRUE(sched.at(0).write_back);
  EXPECT_FALSE(sched.at(1).write_back);
  EXPECT_FALSE(sched.at(49).write_back);
  EXPECT_TRUE(sched.at(50).write_back);
  EXPECT_TRUE(sched.at(350).write_back);
}

TEST(Schedule, EpochIndex) {
  const AnnealSchedule sched;
  EXPECT_EQ(sched.at(0).epoch, 0U);
  EXPECT_EQ(sched.at(49).epoch, 0U);
  EXPECT_EQ(sched.at(399).epoch, 7U);
}

TEST(Schedule, VddCappedAtNominal) {
  AnnealSchedule::Params params;
  params.total_iterations = 2000;
  params.iterations_per_step = 50;
  const AnnealSchedule sched(params);
  EXPECT_NEAR(sched.at(1999).vdd, params.vdd_nominal, 1e-12);
}

TEST(Schedule, NoiseLevelMonotonicallyDecreases) {
  const AnnealSchedule sched;
  double prev_vdd = 0.0;
  unsigned prev_lsbs = 100;
  for (std::size_t it = 0; it < sched.total_iterations(); ++it) {
    const auto phase = sched.at(it);
    EXPECT_GE(phase.vdd, prev_vdd);
    EXPECT_LE(phase.noisy_lsbs, prev_lsbs);
    prev_vdd = phase.vdd;
    prev_lsbs = phase.noisy_lsbs;
  }
}

TEST(Schedule, PartialFinalEpoch) {
  AnnealSchedule::Params params;
  params.total_iterations = 120;
  params.iterations_per_step = 50;
  const AnnealSchedule sched(params);
  EXPECT_EQ(sched.epochs(), 3U);
  EXPECT_EQ(sched.at(119).epoch, 2U);
}

TEST(Schedule, DescribeMentionsKeyNumbers) {
  const AnnealSchedule sched;
  const std::string desc = sched.describe();
  EXPECT_NE(desc.find("400"), std::string::npos);
  EXPECT_NE(desc.find("300"), std::string::npos);
  EXPECT_NE(desc.find("50"), std::string::npos);
}

TEST(Schedule, InvalidParamsThrow) {
  AnnealSchedule::Params zero_iters;
  zero_iters.total_iterations = 0;
  EXPECT_THROW(AnnealSchedule{zero_iters}, ConfigError);

  AnnealSchedule::Params start_above_nominal;
  start_above_nominal.vdd_start = 0.9;
  EXPECT_THROW(AnnealSchedule{start_above_nominal}, ConfigError);

  AnnealSchedule::Params too_many_lsbs;
  too_many_lsbs.lsb_start = 9;
  EXPECT_THROW(AnnealSchedule{too_many_lsbs}, ConfigError);
}

}  // namespace
}  // namespace cim::noise
