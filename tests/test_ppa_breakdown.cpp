#include "ppa/breakdown.hpp"

#include <gtest/gtest.h>

#include "ppa/energy.hpp"

namespace cim::ppa {
namespace {

TEST(AreaBreakdown, ComponentsSumToAggregateModel) {
  for (std::uint32_t p : {2U, 3U, 4U}) {
    hw::ArrayGeometry geom;
    geom.p_max = p;
    const auto total = array_area(geom);
    const auto breakdown = array_area_breakdown(geom);
    EXPECT_NEAR(breakdown.total().um2(), total.area().um2(),
                total.area().um2() * 1e-9)
        << "p=" << p;
  }
}

TEST(AreaBreakdown, CellsDominate) {
  // Digital CIM density argument: the storage region is the majority of
  // the array at every p_max.
  for (std::uint32_t p : {2U, 3U, 4U}) {
    hw::ArrayGeometry geom;
    geom.p_max = p;
    const auto breakdown = array_area_breakdown(geom);
    EXPECT_GT(breakdown.cell_fraction(), 0.5) << "p=" << p;
  }
}

TEST(AreaBreakdown, PeripheralShareShrinksWithArraySize) {
  hw::ArrayGeometry small;
  small.p_max = 2;
  hw::ArrayGeometry large;
  large.p_max = 4;
  EXPECT_GT(array_area_breakdown(large).cell_fraction(),
            array_area_breakdown(small).cell_fraction());
}

TEST(AreaBreakdown, AllComponentsPositive) {
  hw::ArrayGeometry geom;
  geom.p_max = 3;
  const auto b = array_area_breakdown(geom);
  EXPECT_GT(b.cell_array.um2(), 0.0);
  EXPECT_GT(b.adder_trees.um2(), 0.0);
  EXPECT_GT(b.write_drivers.um2(), 0.0);
  EXPECT_GT(b.decoders.um2(), 0.0);
  EXPECT_GT(b.switch_matrix.um2(), 0.0);
}

TEST(MacEnergyBreakdown, SumsToAggregate) {
  for (std::size_t rows : {8U, 15U, 24U}) {
    const double total = mac_energy(rows, 8).picojoules();
    const auto breakdown = mac_energy_breakdown(rows, 8);
    EXPECT_NEAR(breakdown.total().picojoules(), total, total * 1e-12);
    EXPECT_GT(breakdown.nor_products.picojoules(), 0.0);
    EXPECT_GT(breakdown.adder_tree.picojoules(), 0.0);
    EXPECT_GT(breakdown.mux.picojoules(), 0.0);
    // MUX is a small overhead.
    EXPECT_LT(breakdown.mux.picojoules(), 0.1 * total);
  }
}

TEST(MacEnergyBreakdown, ScalesWithWindowRows) {
  EXPECT_GT(mac_energy_breakdown(24, 8).total().picojoules(),
            mac_energy_breakdown(8, 8).total().picojoules());
}

}  // namespace
}  // namespace cim::ppa

#include "ppa/maxcut_ppa.hpp"

namespace cim::ppa {
namespace {

TEST(MaxCutMacro, CompetitiveAreaPerBit) {
  // Table III extension row: the 16nm 14T macro beats the 65/40nm
  // competitors on area/bit and is in the tens-of-nW/bit power class.
  const auto macro = maxcut_macro_report(512);
  EXPECT_NEAR(macro.capacity_bits, 512.0 * 512.0 * 8.0, 1.0);
  EXPECT_LT(macro.area_per_bit().um2(), 1.1);  // beats Amorphica's 1.1
  EXPECT_GT(macro.area_per_bit().um2(), 0.3);
  EXPECT_GT(macro.power.watts(), 0.0);
  EXPECT_LT(macro.power.watts(), 1.0);
}

TEST(MaxCutMacro, ScalesQuadratically) {
  const auto small = maxcut_macro_report(128);
  const auto large = maxcut_macro_report(1024);
  const double ratio = large.capacity_bits / small.capacity_bits;
  EXPECT_NEAR(ratio, 64.0, 1e-9);
  EXPECT_GT(large.area / small.area, 30.0);
}

TEST(MaxCutMacro, InvalidSizeThrows) {
  EXPECT_THROW(maxcut_macro_report(1), ConfigError);
}

}  // namespace
}  // namespace cim::ppa
