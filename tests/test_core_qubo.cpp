// CimSolver front-end entry points (solve_ising / solve_maxcut): spin
// warm starts through the persistent store — cold solve, warm re-solve
// keyed by content fingerprint, corrupt-record degradation to a cold
// start — plus group-strategy plumbing from SolverConfig.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/solver.hpp"
#include "ising/generic.hpp"
#include "ising/maxcut.hpp"
#include "qubo/coloring.hpp"
#include "util/random.hpp"

namespace cim::core {
namespace {

namespace fs = std::filesystem;

/// Self-cleaning temp directory for a store.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() / ("cim_qubo_" + tag);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

SolverConfig fast_config() {
  SolverConfig config;
  config.schedule.total_iterations = 120;
  config.schedule.iterations_per_step = 20;
  config.compute_reference = false;
  config.compute_ppa = false;
  return config;
}

ising::GenericModel test_model() {
  ising::GenericModel model("core-ising", 20);
  util::Rng rng(0xC0DE);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = i + 1; j < 20; ++j) {
      if (rng.chance(0.25)) {
        model.add_coupling(static_cast<ising::SpinIndex>(i),
                           static_cast<ising::SpinIndex>(j),
                           static_cast<double>(rng.range(-5, 5)));
      }
    }
  }
  model.add_field(3, 2.0);
  model.add_field(11, -1.0);
  return model;
}

TEST(CoreQubo, SolveIsingRunsWithoutStore) {
  const auto model = test_model();
  const CimSolver solver(fast_config());
  const auto outcome = solver.solve_ising(model);
  EXPECT_EQ(outcome.anneal.spins.size(), model.size());
  EXPECT_FALSE(outcome.warm_started);
  EXPECT_FALSE(outcome.warm_start.has_value());
  EXPECT_EQ(outcome.energy_hw, outcome.anneal.best_energy_hw);
  // Model-unit energy is derived from the same integers.
  EXPECT_DOUBLE_EQ(outcome.energy, outcome.anneal.best_energy);
}

TEST(CoreQubo, SolveIsingWarmStartRoundTrip) {
  const TempDir dir("ising");
  const auto model = test_model();
  auto config = fast_config();
  config.warm_start_dir = dir.path.string();

  const CimSolver solver(config);
  const auto cold = solver.solve_ising(model);
  EXPECT_FALSE(cold.warm_started);
  ASSERT_TRUE(cold.warm_start.has_value());
  EXPECT_EQ(cold.warm_start->misses, 1U);
  EXPECT_EQ(cold.warm_start->stores, 1U);

  // Second solve: the stored assignment seeds the anneal, and the final
  // result can only match or improve the stored score.
  const auto warm = solver.solve_ising(model);
  EXPECT_TRUE(warm.warm_started);
  ASSERT_TRUE(warm.warm_start.has_value());
  EXPECT_EQ(warm.warm_start->hits, 1U);
  EXPECT_LE(warm.energy_hw, cold.energy_hw);

  // A different seed still hits the same fingerprint.
  auto other = config;
  other.seed = 9;
  const auto reseeded = CimSolver(other).solve_ising(model);
  EXPECT_TRUE(reseeded.warm_started);
}

TEST(CoreQubo, SolveIsingCorruptRecordDegradesToCold) {
  const TempDir dir("corrupt");
  const auto model = test_model();
  auto config = fast_config();
  config.warm_start_dir = dir.path.string();
  const CimSolver solver(config);
  (void)solver.solve_ising(model);

  // Truncate every record file in the store.
  std::size_t truncated = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir.path)) {
    if (!entry.is_regular_file()) continue;
    std::ofstream(entry.path(), std::ios::trunc);
    ++truncated;
  }
  ASSERT_GT(truncated, 0U);

  const auto degraded = solver.solve_ising(model);
  EXPECT_FALSE(degraded.warm_started);  // cold start, no crash
  ASSERT_TRUE(degraded.warm_start.has_value());
  EXPECT_EQ(degraded.warm_start->hits, 0U);
}

TEST(CoreQubo, SolveMaxCutWarmStartRoundTrip) {
  const TempDir dir("maxcut");
  const auto problem = ising::random_maxcut(40, 0.15, 0x77, 3);
  auto config = fast_config();
  config.warm_start_dir = dir.path.string();
  const CimSolver solver(config);

  const auto cold = solver.solve_maxcut(problem);
  EXPECT_FALSE(cold.warm_started);
  EXPECT_EQ(cold.cut, cold.anneal.best_cut);

  const auto warm = solver.solve_maxcut(problem);
  EXPECT_TRUE(warm.warm_started);
  ASSERT_TRUE(warm.warm_start.has_value());
  EXPECT_EQ(warm.warm_start->hits, 1U);
  EXPECT_GE(warm.cut, cold.anneal.cut);
}

TEST(CoreQubo, IsingAndMaxCutStoresDoNotCollide) {
  // Same store directory, different fingerprints and record kinds: a
  // maxcut solve must not consume the ising record or vice versa.
  const TempDir dir("mixed");
  auto config = fast_config();
  config.warm_start_dir = dir.path.string();
  const CimSolver solver(config);
  (void)solver.solve_ising(test_model());
  const auto maxcut_cold =
      solver.solve_maxcut(ising::random_maxcut(30, 0.2, 0x55, 2));
  EXPECT_FALSE(maxcut_cold.warm_started);
}

TEST(CoreQubo, GroupStrategyKnobIsWired) {
  const auto model = test_model();
  auto config = fast_config();
  config.group_strategy = ising::GroupStrategy::kIndexBlocks;
  config.group_block = 4;
  const auto outcome = CimSolver(config).solve_ising(model);
  EXPECT_FALSE(outcome.anneal.parallel_groups);
  EXPECT_LE(outcome.anneal.max_group, 4U);
  EXPECT_EQ(outcome.anneal.group_count, 5U);  // ceil(20 / 4)
}

}  // namespace
}  // namespace cim::core
