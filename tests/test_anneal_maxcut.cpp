#include "anneal/maxcut_annealer.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace cim::anneal {
namespace {

MaxCutConfig base_config() {
  MaxCutConfig config;
  config.schedule.total_iterations = 200;
  config.schedule.iterations_per_step = 25;
  config.seed = 1;
  return config;
}

TEST(MaxCutAnnealer, NearOptimalOnRing) {
  // Rings carry marginally stable domain walls (field = 0 at a wall, and
  // the hardware keeps the spin on ties), so a single run may retain one
  // wall pair; across a few seeds the optimum must appear.
  const auto problem = ising::ring_maxcut(16);
  long long best = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto config = base_config();
    config.seed = seed;
    const auto result = MaxCutAnnealer(config).solve(problem);
    EXPECT_EQ(result.cut, problem.cut_value(result.spins));
    EXPECT_GE(result.best_cut, 14);  // at most one wall pair left
    best = std::max(best, result.best_cut);
  }
  EXPECT_EQ(best, 16);
}

TEST(MaxCutAnnealer, BipartiteFullCut) {
  std::vector<ising::WeightedEdge> edges;
  for (ising::SpinIndex a = 0; a < 8; ++a) {
    for (ising::SpinIndex b = 8; b < 16; ++b) edges.push_back({a, b, 1});
  }
  const ising::MaxCutProblem k88("k88", 16, std::move(edges));
  const auto result = MaxCutAnnealer(base_config()).solve(k88);
  EXPECT_EQ(result.cut, 64);
}

TEST(MaxCutAnnealer, NearOptimalOnSmallRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto problem = ising::random_maxcut(16, 0.4, 30 + seed, 4);
    const long long optimal = ising::brute_force_maxcut(problem);
    auto config = base_config();
    config.seed = seed + 1;
    const auto result = MaxCutAnnealer(config).solve(problem);
    EXPECT_GE(result.best_cut * 20, optimal * 19)  // within 5%
        << "seed " << seed;
    EXPECT_LE(result.best_cut, optimal);
  }
}

TEST(MaxCutAnnealer, CompetitiveWithGreedyOnSparseGraphs) {
  const auto problem = ising::random_maxcut(200, 0.03, 5, 3);
  const auto result = MaxCutAnnealer(base_config()).solve(problem);
  const long long greedy = ising::greedy_maxcut(problem, 1);
  // Annealing with noise should at least match a single greedy descent.
  EXPECT_GE(result.best_cut * 100, greedy * 97);
}

TEST(MaxCutAnnealer, SignedCompleteGraph) {
  // The STATICA-style shape: K_64 with ±1 couplings.
  const auto problem = ising::complete_maxcut(64, 7);
  const auto result = MaxCutAnnealer(base_config()).solve(problem);
  EXPECT_EQ(result.cut, problem.cut_value(result.spins));
  EXPECT_GT(result.cut, 0);
}

TEST(MaxCutAnnealer, ChromaticClassesBoundCycles) {
  const auto ring = ising::ring_maxcut(100);  // 2-colourable
  const auto result = MaxCutAnnealer(base_config()).solve(ring);
  EXPECT_EQ(result.color_count, 2U);
  // Cycles: 2 per sweep + write-back rows; far below n per sweep.
  EXPECT_LT(result.update_cycles,
            result.sweeps * 3 + 8 * 100 + 100);
}

TEST(MaxCutAnnealer, DeterministicPerSeed) {
  const auto problem = ising::random_maxcut(60, 0.1, 11, 2);
  const auto a = MaxCutAnnealer(base_config()).solve(problem);
  const auto b = MaxCutAnnealer(base_config()).solve(problem);
  EXPECT_EQ(a.cut, b.cut);
  EXPECT_EQ(a.spins, b.spins);
}

TEST(MaxCutAnnealer, TraceRecordsSweeps) {
  auto config = base_config();
  config.record_trace = true;
  const auto problem = ising::random_maxcut(40, 0.2, 13, 2);
  const auto result = MaxCutAnnealer(config).solve(problem);
  EXPECT_EQ(result.trace.size(), result.sweeps);
  EXPECT_GE(result.trace.back(), result.trace.front());
}

TEST(MaxCutAnnealer, NoiseEscapesGreedyPlateaus) {
  // Averaged over instances, the noisy annealer should beat pure
  // deterministic sign updates (kNone gets stuck in the first local
  // optimum / oscillation basin).
  long long noisy_total = 0;
  long long greedy_total = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto problem = ising::random_maxcut(80, 0.1, 50 + seed, 3);
    auto noisy_cfg = base_config();
    noisy_cfg.seed = seed + 1;
    auto greedy_cfg = noisy_cfg;
    greedy_cfg.noise = NoiseMode::kNone;
    noisy_total += MaxCutAnnealer(noisy_cfg).solve(problem).best_cut;
    greedy_total += MaxCutAnnealer(greedy_cfg).solve(problem).best_cut;
  }
  EXPECT_GE(noisy_total, greedy_total);
}

TEST(MaxCutAnnealer, StorageCountersPopulated) {
  const auto problem = ising::random_maxcut(50, 0.2, 17, 2);
  const auto result = MaxCutAnnealer(base_config()).solve(problem);
  EXPECT_GT(result.storage.macs, 0U);
  EXPECT_GT(result.storage.writeback_events, 0U);
  EXPECT_GT(result.storage.pseudo_read_flips, 0U);
  EXPECT_GT(result.flips, 0U);
}

TEST(MaxCutAnnealer, InvalidConfigThrows) {
  MaxCutConfig bad = base_config();
  bad.weight_bits = 0;
  EXPECT_THROW(MaxCutAnnealer{bad}, ConfigError);
}

TEST(MaxCutAnnealer, EmptyProblemThrows) {
  // A zero- or one-vertex graph would build a degenerate CIM window; the
  // problem type itself fails fast before any storage is sized.
  EXPECT_THROW(ising::MaxCutProblem("empty", 0, {}), ConfigError);
  EXPECT_THROW(ising::MaxCutProblem("one", 1, {}), ConfigError);
}

TEST(MaxCutAnnealer, VectorKernelMatchesScalarExactly) {
  // The packed spin register + mac_packed field evaluation must reproduce
  // the dense scalar path bit for bit: same flip sequence, same cuts,
  // same hardware counters — for every noise mode.
  for (const NoiseMode mode :
       {NoiseMode::kNone, NoiseMode::kSramWeight, NoiseMode::kSramSpin,
        NoiseMode::kLfsr}) {
    const auto problem = ising::random_maxcut(90, 0.15, 21, 3);
    auto config = base_config();
    config.noise = mode;
    config.record_trace = true;
    config.vector_kernel = true;
    const auto vector = MaxCutAnnealer(config).solve(problem);
    config.vector_kernel = false;
    const auto scalar = MaxCutAnnealer(config).solve(problem);
    EXPECT_EQ(vector.spins, scalar.spins) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(vector.cut, scalar.cut);
    EXPECT_EQ(vector.best_cut, scalar.best_cut);
    EXPECT_EQ(vector.flips, scalar.flips);
    EXPECT_EQ(vector.trace, scalar.trace);
    EXPECT_EQ(vector.storage.macs, scalar.storage.macs);
    EXPECT_EQ(vector.storage.mac_bit_reads, scalar.storage.mac_bit_reads);
    EXPECT_EQ(vector.storage.writeback_bits, scalar.storage.writeback_bits);
    EXPECT_EQ(vector.storage.pseudo_read_flips,
              scalar.storage.pseudo_read_flips);
  }
}

TEST(MaxCutAnnealer, MemoMatchesRecomputeExactly) {
  // The per-vertex partial-sum memo must be a pure optimisation: same
  // flip sequence, same cuts, same hardware counters (a hit charges the
  // full read cost of both planes), for every noise mode and both MAC
  // paths.
  for (const NoiseMode mode :
       {NoiseMode::kNone, NoiseMode::kSramWeight, NoiseMode::kLfsr}) {
    for (const bool vector : {false, true}) {
      const auto problem = ising::random_maxcut(90, 0.15, 21, 3);
      auto config = base_config();
      config.noise = mode;
      config.record_trace = true;
      config.vector_kernel = vector;
      config.memoize_partial_sums = true;
      const auto memo = MaxCutAnnealer(config).solve(problem);
      config.memoize_partial_sums = false;
      const auto recompute = MaxCutAnnealer(config).solve(problem);
      EXPECT_EQ(memo.spins, recompute.spins)
          << "mode " << static_cast<int>(mode) << " vector " << vector;
      EXPECT_EQ(memo.cut, recompute.cut);
      EXPECT_EQ(memo.best_cut, recompute.best_cut);
      EXPECT_EQ(memo.flips, recompute.flips);
      EXPECT_EQ(memo.trace, recompute.trace);
      EXPECT_EQ(memo.storage.macs, recompute.storage.macs);
      EXPECT_EQ(memo.storage.mac_bit_reads, recompute.storage.mac_bit_reads);
      EXPECT_EQ(memo.storage.writeback_bits, recompute.storage.writeback_bits);
      EXPECT_EQ(memo.storage.pseudo_read_flips,
                recompute.storage.pseudo_read_flips);
      // Every vertex is evaluated once per sweep; each evaluation is a
      // hit or a miss with the memo on, neither with it off.
      EXPECT_EQ(memo.memo_hits + memo.memo_misses,
                memo.sweeps * problem.size());
      EXPECT_GT(memo.memo_hits, 0U);
      EXPECT_EQ(recompute.memo_hits, 0U);
      EXPECT_EQ(recompute.memo_misses, 0U);
    }
  }
}

TEST(MaxCutAnnealer, WarmStartFromSpinAssignment) {
  // A warm start replaces the random initial spins; starting at a
  // previous solution must be deterministic and end at least as good as
  // the assignment it started from on a frozen-noise re-solve.
  const auto problem = ising::random_maxcut(60, 0.2, 11, 3);
  auto config = base_config();
  const auto cold = MaxCutAnnealer(config).solve(problem);
  config.initial_spins = cold.spins;
  const auto warm_a = MaxCutAnnealer(config).solve(problem);
  const auto warm_b = MaxCutAnnealer(config).solve(problem);
  EXPECT_EQ(warm_a.spins, warm_b.spins);
  EXPECT_EQ(warm_a.cut, warm_b.cut);
  EXPECT_GE(warm_a.best_cut, cold.cut);
}

TEST(MaxCutAnnealer, WarmStartValidation) {
  const auto problem = ising::random_maxcut(16, 0.4, 31, 4);
  auto config = base_config();
  config.initial_spins.assign(8, 1);  // wrong size
  EXPECT_THROW(MaxCutAnnealer(config).solve(problem), ConfigError);
  config.initial_spins.assign(16, 1);
  config.initial_spins[3] = 0;  // not ±1
  EXPECT_THROW(MaxCutAnnealer(config).solve(problem), ConfigError);
  config.initial_spins[3] = -1;
  EXPECT_NO_THROW(MaxCutAnnealer(config).solve(problem));
}

TEST(MaxCutAnnealer, VectorKernelMultiWordSpinRegister) {
  // Past 64 vertices the packed σ+ register spans multiple words.
  const auto problem = ising::random_maxcut(150, 0.05, 23, 2);
  auto config = base_config();
  config.vector_kernel = true;
  const auto vector = MaxCutAnnealer(config).solve(problem);
  config.vector_kernel = false;
  const auto scalar = MaxCutAnnealer(config).solve(problem);
  EXPECT_EQ(vector.spins, scalar.spins);
  EXPECT_EQ(vector.cut, scalar.cut);
  EXPECT_EQ(vector.storage.macs, scalar.storage.macs);
}

}  // namespace
}  // namespace cim::anneal
