// Golden-trajectory harness for the telemetry event stream (DESIGN.md
// §12): a fixed-seed pcb-grid instance is solved and the per-epoch
// "anneal.epoch" counter events (energy bits + swap/accept/noise counts)
// are folded into one fingerprint that is pinned here. The fingerprint
// must be bit-identical across CIMANNEAL_THREADS (the CMake registration
// reruns this binary under 1, 2 and 8) and across the pool-vs-serial
// execution paths, because every epoch event is emitted by the
// coordinating thread in program order — the pool schedules slot updates
// but never reorders the canonical event stream.
//
// Two constants, not one: color_threads == 1 anneals same-colour slots on
// one shared RNG stream, color_threads > 1 on per-slot streams — by
// design these are two different (each internally deterministic)
// trajectories (clustered_annealer.hpp).
#include <bit>
#include <cstdint>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "anneal/clustered_annealer.hpp"
#include "anneal/ensemble.hpp"
#include "tsp/generator.hpp"
#include "util/random.hpp"
#include "util/telemetry.hpp"

namespace cim::anneal {
namespace {

#if CIMANNEAL_TELEMETRY_ENABLED

namespace telemetry = util::telemetry;

// Pinned fingerprints for generate_drill_grid(120, 5), p = 3, seed = 9.
// If an intentional change to the annealer or the epoch-event schema
// moves these, rerun the test once and update the constants — but an
// unintentional move is exactly the regression this harness exists to
// catch.
constexpr std::uint64_t kSerialGolden = 1951260180603196579ULL;
constexpr std::uint64_t kParallelGolden = 7438773455538212720ULL;

AnnealerConfig config_with(std::uint32_t color_threads) {
  AnnealerConfig config;
  config.clustering.p = 3;
  config.seed = 9;
  config.color_threads = color_threads;
  return config;
}

tsp::Instance golden_instance() { return tsp::generate_drill_grid(120, 5); }

/// Solves on a clean registry and folds every "anneal.epoch" event —
/// argument count plus the raw bit pattern of every argument value, in
/// emission order — into one hash_combine chain.
std::uint64_t solve_fingerprint(const AnnealerConfig& config) {
  const auto inst = golden_instance();
  telemetry::Registry& telem = telemetry::Registry::global();
  telem.reset();
  ClusteredAnnealer(config).solve(inst);

  std::uint64_t h = 0x5EEDULL;
  std::size_t epochs = 0;
  for (const telemetry::TraceEvent& event : telem.merged_events()) {
    if (event.name != "anneal.epoch" || event.phase != 'C') continue;
    ++epochs;
    h = util::hash_combine(h, event.args.size());
    for (const telemetry::TraceArg& arg : event.args) {
      h = util::hash_combine(h, std::bit_cast<std::uint64_t>(arg.value));
    }
  }
  EXPECT_GT(epochs, 0u) << "no anneal.epoch events recorded";
  return h;
}

/// The annealer's monotonic counters after one solve on a clean registry.
std::map<std::string, std::uint64_t> solve_counters(
    const EnsembleConfig& config) {
  const auto inst = golden_instance();
  telemetry::Registry& telem = telemetry::Registry::global();
  telem.reset();
  ReplicaEnsemble(config).solve(inst);
  std::map<std::string, std::uint64_t> counters;
  for (const char* name :
       {"anneal.swaps_attempted", "anneal.swaps_accepted",
        "anneal.uphill_accepted", "anneal.settle_cache_hits",
        "anneal.settle_cache_refreshes", "anneal.noise_draws",
        "anneal.update_cycles", "anneal.levels_solved", "anneal.solves",
        "ensemble.replicas_solved", "cim.storage.macs",
        "cim.storage.writeback_bits"}) {
    counters[name] = telem.counter(name).value();
  }
  EXPECT_GT(counters["anneal.swaps_attempted"], 0u);
  EXPECT_GT(counters["cim.storage.macs"], 0u);
  return counters;
}

TEST(TelemetryGolden, SerialTrajectoryMatchesPinnedFingerprint) {
  const std::uint64_t first = solve_fingerprint(config_with(1));
  EXPECT_EQ(first, kSerialGolden);
  // And it is a property of the seed, not of registry or process state.
  EXPECT_EQ(solve_fingerprint(config_with(1)), kSerialGolden);
}

TEST(TelemetryGolden, ParallelTrajectoryIndependentOfTaskCount) {
  // Any task count > 1 must produce the same canonical event stream:
  // per-slot RNG streams + coordinator-only emission. The binary itself
  // is additionally rerun under CIMANNEAL_THREADS = 1, 2 and 8 (see
  // tests/CMakeLists.txt), so the same constant also pins independence
  // from the shared pool's worker count.
  EXPECT_EQ(solve_fingerprint(config_with(2)), kParallelGolden);
  EXPECT_EQ(solve_fingerprint(config_with(4)), kParallelGolden);
  EXPECT_EQ(solve_fingerprint(config_with(8)), kParallelGolden);
}

TEST(TelemetryGolden, EnsembleCountersAgreePoolVsSerial) {
  // Replica events race into per-worker sinks (their order is not part
  // of the contract) but the monotonic counters are order-independent
  // sums, so threaded and serial ensembles must agree exactly.
  EnsembleConfig serial;
  serial.base = config_with(1);
  serial.replicas = 3;
  serial.use_threads = false;
  EnsembleConfig threaded = serial;
  threaded.use_threads = true;
  EXPECT_EQ(solve_counters(serial), solve_counters(threaded));
}

#else  // !CIMANNEAL_TELEMETRY_ENABLED

TEST(TelemetryGolden, SkippedWhenTelemetryCompiledOff) {
  GTEST_SKIP() << "CIMANNEAL_TELEMETRY=OFF build: no event stream to pin";
}

#endif  // CIMANNEAL_TELEMETRY_ENABLED

}  // namespace
}  // namespace cim::anneal
