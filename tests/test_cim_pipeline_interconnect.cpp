#include <algorithm>

#include <gtest/gtest.h>

#include "anneal/clustered_annealer.hpp"
#include "cim/interconnect.hpp"
#include "cim/pipeline.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::hw {
namespace {

TEST(Pipeline, StageStructure) {
  const PipelineModel model(WindowShape::hardware(3));
  // IF + RD + 4 tree levels (15 rows → depth 4) + SA + CMP = 8 stages.
  EXPECT_EQ(model.depth(), 8U);
  EXPECT_EQ(model.stages().front().kind, StageKind::kInputFetch);
  EXPECT_EQ(model.stages().back().kind, StageKind::kCompare);
}

TEST(Pipeline, DepthGrowsWithWindowHeight) {
  const PipelineModel p2(WindowShape::hardware(2));   // 8 rows → depth 3
  const PipelineModel p4(WindowShape::hardware(4));   // 24 rows → depth 5
  EXPECT_LT(p2.depth(), p4.depth());
}

TEST(Pipeline, ThroughputMatchesAggregateModel) {
  // The aggregate timing model charges 4 cycles per update (issue rate);
  // the pipeline must issue its 4 MACs in exactly 4 consecutive cycles.
  const PipelineModel model(WindowShape::hardware(3));
  EXPECT_EQ(model.issue_interval(), 1U);
  const auto timeline = model.trace_update();
  std::vector<std::uint64_t> issue_cycles;
  for (const auto& event : timeline.events) {
    if (event.stage == StageKind::kInputFetch) {
      issue_cycles.push_back(event.cycle);
    }
  }
  ASSERT_EQ(issue_cycles.size(), 4U);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(issue_cycles[i], i);
  }
}

TEST(Pipeline, UpdateLatencyCoversFillPlusCompare) {
  const PipelineModel model(WindowShape::hardware(3));
  EXPECT_EQ(model.update_latency(), 3 + model.mac_latency() + 1);
  const auto timeline = model.trace_update();
  EXPECT_EQ(timeline.total_cycles, model.update_latency());
}

TEST(Pipeline, TwoComparesPerUpdate) {
  const PipelineModel model(WindowShape::hardware(3));
  const auto timeline = model.trace_update();
  const auto compares = std::count_if(
      timeline.events.begin(), timeline.events.end(), [](const auto& e) {
        return e.stage == StageKind::kCompare;
      });
  EXPECT_EQ(compares, 2);
}

TEST(Pipeline, StageNames) {
  EXPECT_STREQ(stage_name(StageKind::kInputFetch), "IF");
  EXPECT_STREQ(stage_name(StageKind::kAdderTree), "AT");
  EXPECT_STREQ(stage_name(StageKind::kCompare), "CMP");
}

TEST(Interconnect, OnlyBoundaryBitsMove) {
  InterconnectConfig config;
  config.clusters = 100;
  config.p = 3;
  const auto report = simulate_iteration(config);
  // Every cluster fetches exactly p boundary bits per iteration.
  EXPECT_EQ(report.total_bits_per_iteration, 100U * 3U);
  EXPECT_EQ(report.arrays, 10U);
  EXPECT_EQ(report.links, 9U);
}

TEST(Interconnect, LinkLoadIsAtMostPPerPhase) {
  // The paper's claim: per update phase a chain link carries p bits.
  for (std::size_t clusters : {20U, 95U, 100U, 1000U}) {
    InterconnectConfig config;
    config.clusters = clusters;
    config.p = 3;
    const auto report = simulate_iteration(config);
    EXPECT_LE(report.max_link_bits_per_phase, 3U) << clusters;
    EXPECT_TRUE(report.contention_free);
  }
}

TEST(Interconnect, DirectionsSeparateByPhase) {
  InterconnectConfig config;
  config.clusters = 200;
  config.p = 4;
  const auto report = simulate_iteration(config);
  // Even windows_per_array ⇒ boundary clusters alternate parity, so
  // every active link sees downstream traffic in the solid phase and
  // upstream in the dash phase.
  for (const auto& link : report.per_link) {
    EXPECT_LE(link.downstream_bits, 4U);
    EXPECT_LE(link.upstream_bits, 4U);
  }
}

TEST(Interconnect, SingleArrayHasNoLinks) {
  InterconnectConfig config;
  config.clusters = 8;
  const auto report = simulate_iteration(config);
  EXPECT_EQ(report.arrays, 1U);
  EXPECT_EQ(report.links, 0U);
  EXPECT_EQ(report.max_link_bits_per_phase, 0U);
}

TEST(Interconnect, TrafficIndependentOfWindowContents) {
  // Link traffic depends only on p, never on the window payload size
  // ((p²+2p)·p²·8 bits) — the compact mapping's locality win.
  InterconnectConfig config;
  config.clusters = 1000;
  config.p = 4;
  const auto report = simulate_iteration(config);
  const std::uint64_t window_bits = (16 + 8) * 16 * 8;
  EXPECT_LT(report.total_bits_per_iteration,
            config.clusters * window_bits / 100);
}

TEST(Interconnect, ParityTalliesCoverEverySwapAttempt) {
  // Every counted swap attempt records exactly one edge transfer, and the
  // extra chromatic phase of an odd ring goes to its own tally — colour 2
  // must never be folded into the solid (colour-0) direction, which would
  // skew the solid/dash split the interconnect model relies on.
  anneal::AnnealerConfig config;
  config.clustering.strategy = cluster::Strategy::kSemiFlexible;
  config.clustering.p = 3;
  config.clustering.top_size = 3;  // odd top ring → third colour exists
  config.seed = 2;
  const auto inst = test::random_instance(90, 44);
  const auto result = anneal::ClusteredAnnealer(config).solve(inst);
  const auto& df = result.hw.dataflow;
  EXPECT_EQ(df.downstream_transfers() + df.upstream_transfers() +
                df.third_phase_transfers(),
            result.hw.swap_attempts);
  EXPECT_GT(df.third_phase_transfers(), 0U);
  EXPECT_GT(df.downstream_transfers(), 0U);
  EXPECT_GT(df.upstream_transfers(), 0U);
}

TEST(Interconnect, InvalidConfigThrows) {
  InterconnectConfig bad;
  bad.clusters = 0;
  EXPECT_THROW(simulate_iteration(bad), ConfigError);
}

}  // namespace
}  // namespace cim::hw
