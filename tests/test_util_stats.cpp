#include "util/stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace cim::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (const double x : xs) s.add(x);
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.sum(), 31.0, 1e-12);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(1);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(5.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1U);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1U);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0U);
}

TEST(Histogram, CountsAndCenters) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.bin_count(b), 1U);
    EXPECT_NEAR(h.bin_center(b), static_cast<double>(b) + 0.5, 1e-12);
  }
  EXPECT_EQ(h.total(), 10U);
}

TEST(Histogram, OverUnderflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-1.0);
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.total(), 3U);
  EXPECT_DOUBLE_EQ(h.cdf(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(5.0), 1.0);
}

TEST(Histogram, CdfIsMonotone) {
  Rng rng(3);
  Histogram h(-4.0, 4.0, 64);
  for (int i = 0; i < 10000; ++i) h.add(rng.normal());
  double prev = 0.0;
  for (double x = -4.0; x <= 4.0; x += 0.25) {
    const double c = h.cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
  EXPECT_NEAR(h.cdf(0.0), 0.5, 0.03);
}

TEST(Histogram, AsciiRendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Quantile, KnownValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg(ys.rbegin(), ys.rend());
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Pearson, UncorrelatedNearZero) {
  Rng rng(7);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.normal());
    ys.push_back(rng.normal());
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.03);
}

TEST(GeometricMean, KnownValue) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0, 16.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0}), 2.0, 1e-12);
}

}  // namespace
}  // namespace cim::util
