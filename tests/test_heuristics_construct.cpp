#include "heuristics/construct.hpp"

#include <gtest/gtest.h>

#include "heuristics/exact.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::heuristics {
namespace {

TEST(NearestNeighbor, ProducesValidTour) {
  const auto inst = test::random_instance(200, 1);
  const auto tour = nearest_neighbor(inst);
  EXPECT_TRUE(tour.is_valid(200));
  EXPECT_EQ(tour.at(0), 0U);
}

TEST(NearestNeighbor, RespectsStartCity) {
  const auto inst = test::random_instance(50, 2);
  const auto tour = nearest_neighbor(inst, 17);
  EXPECT_TRUE(tour.is_valid(50));
  EXPECT_EQ(tour.at(0), 17U);
}

TEST(NearestNeighbor, StartOutOfRangeThrows) {
  const auto inst = test::random_instance(10, 3);
  EXPECT_THROW(nearest_neighbor(inst, 10), ConfigError);
}

TEST(NearestNeighbor, BeatsRandomTour) {
  const auto inst = test::random_instance(300, 4);
  const auto nn = nearest_neighbor(inst);
  const auto rnd = random_tour(inst, 99);
  EXPECT_LT(nn.length(inst), rnd.length(inst));
}

TEST(NearestNeighbor, ExplicitMatrixAgreesWithCoords) {
  const auto base = test::random_instance(40, 5);
  const auto expl = test::to_explicit(base);
  EXPECT_EQ(nearest_neighbor(base).length(base),
            nearest_neighbor(expl).length(expl));
}

TEST(NearestNeighbor, OptimalOnCircle) {
  // On a circle NN from any start walks around the hull = optimal.
  const auto inst = test::circle_instance(30);
  const auto tour = nearest_neighbor(inst);
  EXPECT_EQ(tour.length(inst), test::identity_length(inst));
}

TEST(GreedyEdge, ProducesValidTour) {
  const auto inst = test::random_instance(300, 6);
  const auto tour = greedy_edge(inst);
  EXPECT_TRUE(tour.is_valid(300));
}

TEST(GreedyEdge, TypicallyBeatsNearestNeighbor) {
  // Property over several seeds: greedy edge wins on average.
  long long greedy_total = 0;
  long long nn_total = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = test::random_instance(250, 100 + seed);
    greedy_total += greedy_edge(inst).length(inst);
    nn_total += nearest_neighbor(inst).length(inst);
  }
  EXPECT_LT(greedy_total, nn_total);
}

TEST(GreedyEdge, SmallInstances) {
  for (std::size_t n : {1U, 2U, 3U, 4U, 5U}) {
    const auto inst = test::random_instance(n, n);
    const auto tour = greedy_edge(inst);
    EXPECT_TRUE(tour.is_valid(n)) << "n=" << n;
  }
}

TEST(GreedyEdge, NearOptimalOnSmall) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = test::random_instance(9, 40 + seed);
    const auto greedy = greedy_edge(inst);
    const auto optimal = held_karp(inst);
    EXPECT_LE(greedy.length(inst), optimal.length(inst) * 13 / 10);
  }
}

TEST(RandomTour, ValidAndSeedDeterministic) {
  const auto inst = test::random_instance(64, 7);
  const auto a = random_tour(inst, 5);
  const auto b = random_tour(inst, 5);
  const auto c = random_tour(inst, 6);
  EXPECT_TRUE(a.is_valid(64));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace cim::heuristics
