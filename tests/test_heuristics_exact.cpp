#include "heuristics/exact.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "heuristics/construct.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::heuristics {
namespace {

class ExactSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExactSizes, HeldKarpMatchesBruteForce) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto inst = test::random_instance(n, n * 11 + seed);
    const auto hk = held_karp(inst);
    const auto bf = brute_force(inst);
    EXPECT_TRUE(hk.is_valid(n));
    EXPECT_TRUE(bf.is_valid(n));
    EXPECT_EQ(hk.length(inst), bf.length(inst)) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExactSizes,
                         ::testing::Values<std::size_t>(4, 5, 6, 7, 8, 9,
                                                        10));

TEST(HeldKarp, OptimalOnCircle) {
  const auto inst = test::circle_instance(12);
  const auto tour = held_karp(inst);
  EXPECT_EQ(tour.length(inst), test::identity_length(inst));
}

TEST(HeldKarp, NoWorseThanAnyHeuristic) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto inst = test::random_instance(12, 500 + seed);
    const auto optimal = held_karp(inst);
    EXPECT_LE(optimal.length(inst), nearest_neighbor(inst).length(inst));
    EXPECT_LE(optimal.length(inst), greedy_edge(inst).length(inst));
  }
}

TEST(HeldKarp, ExplicitMatrixAgrees) {
  const auto base = test::random_instance(9, 13);
  const auto expl = test::to_explicit(base);
  EXPECT_EQ(held_karp(base).length(base), held_karp(expl).length(expl));
}

TEST(HeldKarp, TinyInstances) {
  for (std::size_t n : {1U, 2U, 3U}) {
    const auto inst = test::random_instance(n, n);
    const auto tour = held_karp(inst);
    EXPECT_TRUE(tour.is_valid(n));
  }
}

TEST(HeldKarp, SizeLimitEnforced) {
  const auto inst = test::random_instance(21, 1);
  EXPECT_THROW(held_karp(inst), ConfigError);
}

TEST(BruteForce, SizeLimitEnforced) {
  const auto inst = test::random_instance(13, 1);
  EXPECT_THROW(brute_force(inst), ConfigError);
}

TEST(OptimalPath, MatchesExhaustiveOnSmall) {
  const auto inst = test::random_instance(8, 77);
  // Path 0 → {1..6 in some order} → 7; exhaust over permutations.
  std::vector<tsp::CityId> cities{0, 1, 2, 3, 4, 5, 6, 7};
  const long long dp = optimal_path_length(inst, cities);

  std::vector<tsp::CityId> mid{1, 2, 3, 4, 5, 6};
  std::sort(mid.begin(), mid.end());
  long long best = std::numeric_limits<long long>::max();
  do {
    long long len = inst.distance(0, mid.front());
    for (std::size_t i = 0; i + 1 < mid.size(); ++i) {
      len += inst.distance(mid[i], mid[i + 1]);
    }
    len += inst.distance(mid.back(), 7);
    best = std::min(best, len);
  } while (std::next_permutation(mid.begin(), mid.end()));
  EXPECT_EQ(dp, best);
}

TEST(OptimalPath, TwoCitiesIsDirectDistance) {
  const auto inst = test::random_instance(5, 3);
  EXPECT_EQ(optimal_path_length(inst, {1, 4}), inst.distance(1, 4));
}

TEST(OptimalPath, Validation) {
  const auto inst = test::random_instance(25, 4);
  EXPECT_THROW(optimal_path_length(inst, {0}), ConfigError);
  std::vector<tsp::CityId> too_many(21);
  for (tsp::CityId i = 0; i < 21; ++i) too_many[i] = i;
  EXPECT_THROW(optimal_path_length(inst, too_many), ConfigError);
}

}  // namespace
}  // namespace cim::heuristics
