#include "heuristics/two_opt.hpp"

#include <gtest/gtest.h>

#include "heuristics/construct.hpp"
#include "heuristics/exact.hpp"
#include "test_helpers.hpp"

namespace cim::heuristics {
namespace {

TEST(TwoOpt, NeverWorsens) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto inst = test::random_instance(150, 10 + seed);
    auto tour = random_tour(inst, seed);
    const long long before = tour.length(inst);
    const auto result = two_opt(inst, tour);
    EXPECT_EQ(result.initial_length, before);
    EXPECT_LE(result.final_length, before);
    EXPECT_EQ(result.final_length, tour.length(inst));
    EXPECT_TRUE(tour.is_valid(150));
  }
}

TEST(TwoOpt, SubstantialImprovementFromRandom) {
  const auto inst = test::random_instance(400, 20);
  auto tour = random_tour(inst, 1);
  const long long before = tour.length(inst);
  two_opt(inst, tour);
  // Random tours on uniform instances are several times longer than
  // 2-opt local optima.
  EXPECT_LT(tour.length(inst), before / 2);
}

TEST(TwoOpt, CloseToOptimalOnSmall) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto inst = test::random_instance(10, 30 + seed);
    auto tour = nearest_neighbor(inst);
    two_opt(inst, tour, {.neighbor_k = 9});
    const auto optimal = held_karp(inst);
    EXPECT_LE(tour.length(inst), optimal.length(inst) * 11 / 10)
        << "seed " << seed;
  }
}

TEST(TwoOpt, FindsCircleOptimum) {
  const auto inst = test::circle_instance(24);
  auto tour = random_tour(inst, 3);
  two_opt(inst, tour, {.neighbor_k = 12, .max_passes = 256});
  // 2-opt uncrosses everything on convex position → optimal.
  EXPECT_EQ(tour.length(inst), test::identity_length(inst));
}

// The parallel scan must produce the exact same tour for every
// scan_threads > 1: the scan is chunked by fixed grain and the apply is
// serial in city order, so the pool width never shows in the result.
TEST(TwoOpt, ParallelScanIdenticalAcrossThreadCounts) {
  const auto inst = test::random_instance(400, 55);
  const auto base = random_tour(inst, 2);
  const auto run_with = [&](std::size_t threads) {
    auto tour = base;
    TwoOptOptions opt;
    opt.scan_threads = threads;
    const auto result = two_opt(inst, tour, opt);
    EXPECT_EQ(result.final_length, tour.length(inst));
    EXPECT_TRUE(tour.is_valid(inst.size()));
    return tour;
  };
  const auto t2 = run_with(2);
  const auto t3 = run_with(3);
  const auto t8 = run_with(8);
  EXPECT_EQ(t2, t3);
  EXPECT_EQ(t2, t8);
  // And it is a real optimisation pass, not a no-op.
  EXPECT_LT(t2.length(inst), base.length(inst) / 2);
}

TEST(TwoOpt, ParallelScanNeverWorsens) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto inst = test::random_instance(150, 10 + seed);
    auto tour = random_tour(inst, seed);
    const long long before = tour.length(inst);
    TwoOptOptions opt;
    opt.scan_threads = 4;
    const auto result = two_opt(inst, tour, opt);
    EXPECT_LE(result.final_length, before);
    EXPECT_EQ(result.final_length, tour.length(inst));
    EXPECT_TRUE(tour.is_valid(150));
  }
}

TEST(TwoOpt, TinyInstancesAreNoOps) {
  for (std::size_t n : {1U, 2U, 3U}) {
    const auto inst = test::random_instance(n, n + 50);
    auto tour = tsp::Tour::identity(n);
    const auto result = two_opt(inst, tour);
    EXPECT_EQ(result.improvements, 0U);
    EXPECT_TRUE(tour.is_valid(n));
  }
}

TEST(TwoOpt, PrebuiltNeighborsGiveSameResult) {
  const auto inst = test::random_instance(120, 40);
  const tsp::NeighborLists nbrs(inst, 10);
  auto a = random_tour(inst, 2);
  auto b = a;
  two_opt(inst, a, {.neighbor_k = 10});
  TwoOptOptions opt;
  opt.neighbors = &nbrs;
  two_opt(inst, b, opt);
  EXPECT_EQ(a.length(inst), b.length(inst));
}

TEST(TwoOpt, MaxPassesRespected) {
  const auto inst = test::random_instance(300, 50);
  auto tour = random_tour(inst, 4);
  TwoOptOptions opt;
  opt.max_passes = 1;
  const auto result = two_opt(inst, tour, opt);
  EXPECT_EQ(result.passes, 1U);
}

TEST(TwoOpt, ConvergesToFixedPointUnderRepetition) {
  // Don't-look bits make a single run an approximation of the full 2-opt
  // neighbourhood; repeated runs must reach a true fixed point quickly
  // and never worsen.
  const auto inst = test::random_instance(100, 60);
  auto tour = random_tour(inst, 5);
  long long prev = tour.length(inst);
  bool fixed_point = false;
  for (int run = 0; run < 6; ++run) {
    const auto result = two_opt(inst, tour);
    EXPECT_LE(result.final_length, prev);
    if (result.improvements == 0) {
      fixed_point = true;
      break;
    }
    prev = result.final_length;
  }
  EXPECT_TRUE(fixed_point);
}

}  // namespace
}  // namespace cim::heuristics
