#include <cstdlib>

#include <gtest/gtest.h>

#include "util/args.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace cim::util {
namespace {

Args make_args(std::initializer_list<const char*> argv) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Args, NamedWithSpace) {
  const auto args = make_args({"--instance", "pcb3038"});
  EXPECT_EQ(args.get_or("instance", ""), "pcb3038");
}

TEST(Args, NamedWithEquals) {
  const auto args = make_args({"--p=4"});
  EXPECT_EQ(args.get_int("p", 0), 4);
}

TEST(Args, BareFlag) {
  const auto args = make_args({"--verbose", "--x", "1"});
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_FALSE(args.get_flag("quiet"));
}

TEST(Args, Positional) {
  const auto args = make_args({"file1", "--opt", "v", "file2"});
  ASSERT_EQ(args.positional().size(), 2U);
  EXPECT_EQ(args.positional()[0], "file1");
  EXPECT_EQ(args.positional()[1], "file2");
}

TEST(Args, Defaults) {
  const auto args = make_args({});
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(args.get("missing").has_value());
}

TEST(Args, BadIntegerThrows) {
  const auto args = make_args({"--n", "abc"});
  EXPECT_THROW(args.get_int("n", 0), ConfigError);
}

TEST(Args, BadDoubleThrows) {
  const auto args = make_args({"--x", "1.2.3zz"});
  // stod parses the 1.2 prefix; only entirely bogus strings throw.
  const auto bogus = make_args({"--x", "zz"});
  EXPECT_THROW(bogus.get_double("x", 0.0), ConfigError);
}

TEST(Args, EnvFlag) {
  ::setenv("CIM_TEST_FLAG", "1", 1);
  EXPECT_TRUE(Args::env_flag("CIM_TEST_FLAG"));
  ::setenv("CIM_TEST_FLAG", "0", 1);
  EXPECT_FALSE(Args::env_flag("CIM_TEST_FLAG"));
  ::setenv("CIM_TEST_FLAG", "false", 1);
  EXPECT_FALSE(Args::env_flag("CIM_TEST_FLAG"));
  ::unsetenv("CIM_TEST_FLAG");
  EXPECT_FALSE(Args::env_flag("CIM_TEST_FLAG"));
}

TEST(Units, Bytes) {
  EXPECT_EQ(format_bytes(48600.0), "48.6 kB");
  EXPECT_EQ(format_bytes(5798250.0, 2), "5.80 MB");
  EXPECT_EQ(format_bytes(12.0, 0), "12 B");
}

TEST(Units, Bits) {
  EXPECT_EQ(format_bits(46.4e6), "46.4 Mb");
  EXPECT_EQ(format_bits(4e20, 0), "400000000 Tb");
}

TEST(Units, Seconds) {
  EXPECT_EQ(format_seconds(44e-6, 0), "44 us");
  EXPECT_EQ(format_seconds(22.0 * 3600.0, 0), "22 h");
  EXPECT_EQ(format_seconds(155.0 * 86400.0, 0), "155 d");
  EXPECT_EQ(format_seconds(2.5), "2.5 s");
  EXPECT_EQ(format_seconds(90.0, 1), "1.5 min");
}

TEST(Units, WattsAndJoules) {
  EXPECT_EQ(format_watts(0.433, 0), "433 mW");
  EXPECT_EQ(format_watts(9.3e-9, 1), "9.3 nW");
  EXPECT_EQ(format_joules(1.5e-6, 1), "1.5 uJ");
  EXPECT_EQ(format_joules(2e-15, 0), "2 fJ");
}

TEST(Units, Area) {
  EXPECT_EQ(format_area(SquareMicron(43.7e6), 1), "43.7 mm^2");
  EXPECT_EQ(format_area(SquareMicron(102.0 * 98.0), 0), "9996 um^2");
}

TEST(Units, Factor) {
  EXPECT_EQ(format_factor(2.5), "2.5 x");
  const std::string big = format_factor(1.8e9);
  EXPECT_NE(big.find("e+09"), std::string::npos);
}

}  // namespace
}  // namespace cim::util
