#include "anneal/noise_source.hpp"

#include <gtest/gtest.h>

namespace cim::anneal {
namespace {

noise::SchedulePhase phase_at(double vdd, unsigned lsbs,
                              std::uint64_t epoch = 0) {
  noise::SchedulePhase phase;
  phase.vdd = vdd;
  phase.noisy_lsbs = lsbs;
  phase.epoch = epoch;
  return phase;
}

TEST(NoiseSource, ModeNames) {
  EXPECT_STREQ(noise_mode_name(NoiseMode::kSramWeight), "sram-weight");
  EXPECT_STREQ(noise_mode_name(NoiseMode::kSramSpin), "sram-spin");
  EXPECT_STREQ(noise_mode_name(NoiseMode::kLfsr), "lfsr");
  EXPECT_STREQ(noise_mode_name(NoiseMode::kNone), "none");
}

TEST(NoiseSource, WeightSigmaDecreasesAlongSchedule) {
  const noise::SramCellModel model;
  const noise::AnnealSchedule schedule;
  double prev = 1e9;
  for (std::size_t epoch = 0; epoch < schedule.epochs(); ++epoch) {
    const auto phase = schedule.at(epoch * 50);
    const double sigma = weight_noise_sigma(model, phase);
    EXPECT_LE(sigma, prev + 1e-12) << "epoch " << epoch;
    prev = sigma;
  }
  // Final epoch is noise-free.
  EXPECT_EQ(weight_noise_sigma(model, schedule.at(399)), 0.0);
}

TEST(NoiseSource, WeightSigmaGrowsWithLsbCount) {
  const noise::SramCellModel model;
  double prev = 0.0;
  for (unsigned lsbs = 0; lsbs <= 6; ++lsbs) {
    const double sigma = weight_noise_sigma(model, phase_at(0.30, lsbs));
    EXPECT_GE(sigma, prev);
    prev = sigma;
  }
  EXPECT_GT(prev, 1.0);  // 6 noisy LSBs at 300 mV is macroscopic noise
}

TEST(NoiseSource, EquivalentTemperatureTracksSigma) {
  const noise::SramCellModel model;
  const auto hot = phase_at(0.30, 6);
  const auto cold = phase_at(0.50, 1);
  EXPECT_GT(equivalent_temperature(model, hot),
            equivalent_temperature(model, cold));
  EXPECT_EQ(equivalent_temperature(model, phase_at(0.30, 0)), 0.0);
}

TEST(NoiseSource, SpinFilterIsDeterministicPerEpoch) {
  const noise::SramCellModel model;
  const auto phase = phase_at(0.30, 6, 3);
  for (std::uint64_t cell = 0; cell < 200; ++cell) {
    const bool a = filter_spin_bit(model, cell, phase, true);
    const bool b = filter_spin_bit(model, cell, phase, true);
    EXPECT_EQ(a, b);
  }
}

TEST(NoiseSource, SpinFilterCorruptsSomeBitsAtLowVdd) {
  const noise::SramCellModel model;
  const auto phase = phase_at(0.22, 6);
  std::size_t corrupted = 0;
  for (std::uint64_t cell = 0; cell < 2000; ++cell) {
    if (filter_spin_bit(model, cell, phase, true) != true) ++corrupted;
    if (filter_spin_bit(model, cell ^ 0x10000, phase, false) != false) {
      ++corrupted;
    }
  }
  EXPECT_GT(corrupted, 100U);
  EXPECT_LT(corrupted, 2500U);
}

TEST(NoiseSource, SpinFilterCleanWhenNoiseFree) {
  const noise::SramCellModel model;
  const auto phase = phase_at(0.30, 0);
  for (std::uint64_t cell = 0; cell < 100; ++cell) {
    EXPECT_TRUE(filter_spin_bit(model, cell, phase, true));
    EXPECT_FALSE(filter_spin_bit(model, cell, phase, false));
  }
}

}  // namespace
}  // namespace cim::anneal
