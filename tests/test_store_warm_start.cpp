// Warm-start store: versioned record format, two-level LRU behaviour,
// corruption / version-mismatch degradation, and the core::CimSolver
// warm_start_dir wiring (DESIGN.md §16).
#include "store/warm_start.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "store/format.hpp"
#include "test_helpers.hpp"
#include "tsp/fingerprint.hpp"
#include "util/error.hpp"
#include "util/sha256.hpp"

namespace cim::store {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test store directory under the system temp root.
class WarmStartStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("cim_store_") + info->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

std::string make_key(int i) {
  return util::sha256_tagged(util::sha256_hex("key" + std::to_string(i)));
}

std::vector<tsp::CityId> make_order(std::size_t n, std::size_t rotate) {
  std::vector<tsp::CityId> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = static_cast<tsp::CityId>((i + rotate) % n);
  }
  return order;
}

std::vector<std::uint8_t> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_all(const std::string& path,
               const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// The one file the key owns at `level` — mirrors the store's naming rule
/// (first 16 hex chars of the key after "sha256:").
std::string path_of(const std::string& dir, const std::string& key,
                    int level) {
  return (fs::path(dir) / (key.substr(7, 16) + (level == 0 ? ".l0" : ".l1")))
      .string();
}

/// Re-signs a tampered record body so only the version gate can reject it.
void resign(std::vector<std::uint8_t>& bytes) {
  ASSERT_GT(bytes.size(), 32U);
  util::Sha256 hasher;
  hasher.update(std::span<const std::uint8_t>(bytes.data(),
                                              bytes.size() - 32));
  const auto digest = hasher.digest();
  std::copy(digest.begin(), digest.end(), bytes.end() - 32);
}

TEST_F(WarmStartStoreTest, FormatRoundTrip) {
  fs::create_directories(dir_);
  Record record;
  record.kind = RecordKind::kSpins;
  record.key = make_key(1);
  record.sequence = 42;
  record.score = -17;
  record.payload = {1, -1, -1, 1};
  const std::string path = (fs::path(dir_) / "r.l0").string();
  write_record(path, record);

  ReadStatus status = ReadStatus::kCorrupt;
  const auto back = read_record(path, &status);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(status, ReadStatus::kOk);
  EXPECT_EQ(back->kind, record.kind);
  EXPECT_EQ(back->key, record.key);
  EXPECT_EQ(back->sequence, record.sequence);
  EXPECT_EQ(back->score, record.score);
  EXPECT_EQ(back->payload, record.payload);
}

TEST_F(WarmStartStoreTest, FormatDetectsDamage) {
  fs::create_directories(dir_);
  Record record;
  record.key = make_key(2);
  record.payload = {0, 1, 2, 3};
  const std::string path = (fs::path(dir_) / "r.l0").string();
  write_record(path, record);
  const auto pristine = read_all(path);

  // Single flipped payload bit → digest mismatch.
  auto flipped = pristine;
  flipped[flipped.size() - 40] ^= 0x01;
  write_all(path, flipped);
  ReadStatus status = ReadStatus::kOk;
  EXPECT_FALSE(read_record(path, &status).has_value());
  EXPECT_EQ(status, ReadStatus::kCorrupt);

  // Truncation (torn write) → corrupt, not a crash.
  auto truncated = pristine;
  truncated.resize(truncated.size() / 2);
  write_all(path, truncated);
  EXPECT_FALSE(read_record(path, &status).has_value());
  EXPECT_EQ(status, ReadStatus::kCorrupt);

  // Wrong magic → corrupt.
  auto wrong_magic = pristine;
  wrong_magic[0] = 'X';
  write_all(path, wrong_magic);
  EXPECT_FALSE(read_record(path, &status).has_value());
  EXPECT_EQ(status, ReadStatus::kCorrupt);

  // Missing file reports kMissing.
  fs::remove(path);
  EXPECT_FALSE(read_record(path, &status).has_value());
  EXPECT_EQ(status, ReadStatus::kMissing);
}

TEST_F(WarmStartStoreTest, FormatVersionGate) {
  fs::create_directories(dir_);
  Record record;
  record.key = make_key(3);
  record.payload = {5, 6};
  const std::string path = (fs::path(dir_) / "r.l0").string();
  write_record(path, record);

  auto bytes = read_all(path);
  ASSERT_EQ(bytes[8], kFormatVersion);  // u32 LE version after 8-byte magic
  bytes[8] = kFormatVersion + 1;

  // Version bumped but digest stale → corruption wins over the version gate.
  write_all(path, bytes);
  ReadStatus status = ReadStatus::kOk;
  EXPECT_FALSE(read_record(path, &status).has_value());
  EXPECT_EQ(status, ReadStatus::kCorrupt);

  // Re-signed foreign version → clean kVersionMismatch.
  resign(bytes);
  write_all(path, bytes);
  EXPECT_FALSE(read_record(path, &status).has_value());
  EXPECT_EQ(status, ReadStatus::kVersionMismatch);
}

TEST_F(WarmStartStoreTest, TourRoundTrip) {
  WarmStartStore store(dir_);
  const std::string key = make_key(4);
  EXPECT_FALSE(store.load_tour(key, 8).has_value());
  EXPECT_EQ(store.stats().misses, 1U);

  const auto order = make_order(8, 3);
  store.store_tour(key, order, 1000);
  const auto back = store.load_tour(key, 8);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, order);
  EXPECT_EQ(store.stats().hits, 1U);
  EXPECT_EQ(store.stats().stores, 1U);

  // A second store instance sees the persisted record.
  WarmStartStore reopened(dir_);
  EXPECT_TRUE(reopened.load_tour(key, 8).has_value());
}

TEST_F(WarmStartStoreTest, KeepsBetterScore) {
  WarmStartStore store(dir_);
  const std::string key = make_key(5);
  const auto best = make_order(6, 1);
  store.store_tour(key, best, 100);
  store.store_tour(key, make_order(6, 2), 150);  // worse → kept
  EXPECT_EQ(store.stats().kept, 1U);
  EXPECT_EQ(*store.load_tour(key, 6), best);

  const auto improved = make_order(6, 4);
  store.store_tour(key, improved, 90);  // better → replaces
  EXPECT_EQ(store.stats().stores, 2U);
  EXPECT_EQ(*store.load_tour(key, 6), improved);
}

TEST_F(WarmStartStoreTest, CorruptEntryDegradesToColdStart) {
  WarmStartStore store(dir_);
  const std::string key = make_key(6);
  store.store_tour(key, make_order(8, 0), 50);

  const std::string path = path_of(dir_, key, 0);
  auto bytes = read_all(path);
  bytes[bytes.size() - 8] ^= 0xFF;
  write_all(path, bytes);

  EXPECT_FALSE(store.load_tour(key, 8).has_value());
  EXPECT_EQ(store.stats().dropped, 1U);
  EXPECT_FALSE(fs::exists(path)) << "corrupt record must be removed";

  // The healed slot accepts a fresh store.
  store.store_tour(key, make_order(8, 2), 60);
  EXPECT_TRUE(store.load_tour(key, 8).has_value());
}

TEST_F(WarmStartStoreTest, VersionMismatchDegradesToColdStart) {
  WarmStartStore store(dir_);
  const std::string key = make_key(7);
  store.store_tour(key, make_order(8, 0), 50);

  const std::string path = path_of(dir_, key, 0);
  auto bytes = read_all(path);
  bytes[8] = kFormatVersion + 3;
  resign(bytes);
  write_all(path, bytes);

  EXPECT_FALSE(store.load_tour(key, 8).has_value());
  EXPECT_EQ(store.stats().dropped, 1U);
  EXPECT_FALSE(fs::exists(path));
}

TEST_F(WarmStartStoreTest, NonPermutationPayloadIsDropped) {
  WarmStartStore store(dir_);
  const std::string key = make_key(8);

  Record record;
  record.kind = RecordKind::kTour;
  record.key = key;
  record.sequence = 1;
  record.score = 10;
  record.payload = {0, 1, 1, 3};  // duplicate city
  write_record(path_of(dir_, key, 0), record);

  EXPECT_FALSE(store.load_tour(key, 4).has_value());
  EXPECT_EQ(store.stats().dropped, 1U);

  // Wrong length for this instance is equally useless.
  record.payload = {0, 1, 2, 3};
  write_record(path_of(dir_, key, 0), record);
  EXPECT_FALSE(store.load_tour(key, 5).has_value());
  EXPECT_EQ(store.stats().dropped, 2U);
}

TEST_F(WarmStartStoreTest, StemCollisionIsAMissNotAWrongAnswer) {
  // Filenames use only a 16-hex prefix of the key, so two keys can share a
  // slot. The record carries the full key and the store verifies it: a
  // foreign record in our slot is a miss, never a wrong answer.
  WarmStartStore store(dir_);
  Record record;
  record.kind = RecordKind::kTour;
  record.key = make_key(9);  // record claims another key...
  record.sequence = 1;
  record.score = 1;
  record.payload = {0, 1, 2, 3};
  const std::string victim = make_key(10);
  write_record(path_of(dir_, victim, 0), record);  // ...at the victim's slot
  EXPECT_FALSE(store.load_tour(victim, 4).has_value());
  EXPECT_EQ(store.stats().misses, 1U);
  EXPECT_EQ(store.stats().dropped, 0U) << "foreign record is left in place";
}

TEST_F(WarmStartStoreTest, LruDemotionPromotionEviction) {
  WarmStartStore store(dir_, /*l0_capacity=*/2, /*l1_capacity=*/2);
  const auto key0 = make_key(20);
  const auto key1 = make_key(21);
  const auto key2 = make_key(22);
  store.store_tour(key0, make_order(4, 0), 10);
  store.store_tour(key1, make_order(4, 1), 11);
  store.store_tour(key2, make_order(4, 2), 12);

  // Oldest entry (key0) demoted to L1.
  EXPECT_EQ(store.stats().demotions, 1U);
  EXPECT_TRUE(fs::exists(path_of(dir_, key0, 1)));
  EXPECT_FALSE(fs::exists(path_of(dir_, key0, 0)));

  // A hit on the demoted entry promotes it back to L0 (displacing key1,
  // now the least recent).
  ASSERT_TRUE(store.load_tour(key0, 4).has_value());
  EXPECT_EQ(store.stats().promotions, 1U);
  EXPECT_TRUE(fs::exists(path_of(dir_, key0, 0)));
  EXPECT_EQ(store.stats().demotions, 2U);
  EXPECT_TRUE(fs::exists(path_of(dir_, key1, 1)));

  // Two more inserts overflow L1 → the least recent cold entry is evicted
  // for good, and every surviving record still loads.
  store.store_tour(make_key(23), make_order(4, 3), 13);
  store.store_tour(make_key(24), make_order(4, 0), 14);
  EXPECT_GE(store.stats().evictions, 1U);
  std::size_t live = 0;
  for (const int i : {20, 21, 22, 23, 24}) {
    WarmStartStore probe(dir_, 2, 2);
    if (probe.load_tour(make_key(i), 4).has_value()) ++live;
  }
  EXPECT_EQ(live, 4U);
}

TEST_F(WarmStartStoreTest, SpinsRoundTripAndValidation) {
  WarmStartStore store(dir_);
  const std::string key = make_key(30);
  const std::vector<std::int8_t> spins = {1, -1, -1, 1, 1};
  store.store_spins(key, spins, 7);
  const auto back = store.load_spins(key, 5);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, spins);

  // A larger cut replaces; a smaller one is kept out.
  store.store_spins(key, std::vector<std::int8_t>(5, 1), 3);
  EXPECT_EQ(store.stats().kept, 1U);
  EXPECT_EQ(*store.load_spins(key, 5), spins);

  // Tours and spins under the same key do not alias.
  EXPECT_FALSE(store.load_tour(key, 5).has_value());

  // Out-of-alphabet spin values are dropped.
  Record record;
  record.kind = RecordKind::kSpins;
  record.key = make_key(31);
  record.sequence = 99;
  record.score = 0;
  record.payload = {1, 0, -1};
  write_record(path_of(dir_, record.key, 0), record);
  EXPECT_FALSE(store.load_spins(record.key, 3).has_value());
  EXPECT_EQ(store.stats().dropped, 1U);
}

TEST_F(WarmStartStoreTest, RejectsNonHexKeys) {
  WarmStartStore store(dir_);
  EXPECT_THROW(store.load_tour("sha256:", 4), ConfigError);
  EXPECT_THROW(store.load_tour("sha256:NOTHEX!", 4), ConfigError);
}

TEST_F(WarmStartStoreTest, SolverWarmStartRoundTrip) {
  const auto inst = cim::test::random_instance(120, 11);
  core::SolverConfig config;
  config.seed = 5;
  config.compute_reference = false;
  config.compute_ppa = false;
  config.warm_start_dir = dir_;

  const auto cold = core::CimSolver(config).solve(inst);
  EXPECT_FALSE(cold.warm_started);
  ASSERT_TRUE(cold.warm_start.has_value());
  EXPECT_EQ(cold.warm_start->stores, 1U);

  const auto warm = core::CimSolver(config).solve(inst);
  EXPECT_TRUE(warm.warm_started);
  ASSERT_TRUE(warm.warm_start.has_value());
  EXPECT_EQ(warm.warm_start->hits, 1U);
  EXPECT_TRUE(warm.anneal.tour.is_valid(120));

  // The stored record always tracks the best score seen so far.
  WarmStartStore probe(dir_);
  const auto stored = probe.load_tour(tsp::instance_fingerprint(inst), 120);
  ASSERT_TRUE(stored.has_value());
  const tsp::Tour stored_tour(*stored);
  EXPECT_LE(stored_tour.length(inst),
            std::max(cold.tour_length, warm.tour_length));

  // A perturbed instance has a different fingerprint → cold start again.
  const auto other = cim::test::random_instance(120, 12);
  const auto cross = core::CimSolver(config).solve(other);
  EXPECT_FALSE(cross.warm_started);
}

TEST_F(WarmStartStoreTest, SolverSurvivesCorruptStore) {
  const auto inst = cim::test::random_instance(80, 13);
  core::SolverConfig config;
  config.compute_reference = false;
  config.compute_ppa = false;
  config.warm_start_dir = dir_;
  (void)core::CimSolver(config).solve(inst);

  const std::string key = tsp::instance_fingerprint(inst);
  const std::string path = path_of(dir_, key, 0);
  ASSERT_TRUE(fs::exists(path));
  auto bytes = read_all(path);
  bytes[bytes.size() / 2] ^= 0x10;
  write_all(path, bytes);

  const auto outcome = core::CimSolver(config).solve(inst);
  EXPECT_FALSE(outcome.warm_started);
  ASSERT_TRUE(outcome.warm_start.has_value());
  EXPECT_EQ(outcome.warm_start->dropped, 1U);
  EXPECT_TRUE(outcome.anneal.tour.is_valid(80));
}

}  // namespace
}  // namespace cim::store
