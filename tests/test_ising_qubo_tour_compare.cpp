// QUBO↔Ising conversion and tour-comparison utility tests.
#include <gtest/gtest.h>

#include "heuristics/construct.hpp"
#include "ising/qubo.hpp"
#include "test_helpers.hpp"
#include "tsp/tour_compare.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cim {
namespace {

using ising::IsingImage;
using ising::Qubo;
using ising::Spin;

TEST(Qubo, CoefficientsSymmetrised) {
  Qubo q(4);
  q.add(2, 1, 3.0);
  q.add(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(q.coefficient(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(q.coefficient(2, 1), 4.0);
  q.add(3, 3, -2.0);
  EXPECT_DOUBLE_EQ(q.coefficient(3, 3), -2.0);
  EXPECT_DOUBLE_EQ(q.coefficient(0, 3), 0.0);
}

TEST(Qubo, ValueByHand) {
  // f(x) = 2x0 − 3x1 + 4x0x1.
  Qubo q(2);
  q.add(0, 0, 2.0);
  q.add(1, 1, -3.0);
  q.add(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(q.value({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(q.value({1, 0}), 2.0);
  EXPECT_DOUBLE_EQ(q.value({0, 1}), -3.0);
  EXPECT_DOUBLE_EQ(q.value({1, 1}), 3.0);
}

TEST(Qubo, IsingConversionIsExactOnAllAssignments) {
  // Random QUBO: the Ising image must reproduce f(x) for every x.
  util::Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    constexpr std::size_t kN = 8;
    Qubo q(kN);
    for (ising::SpinIndex i = 0; i < kN; ++i) {
      for (ising::SpinIndex j = i; j < kN; ++j) {
        if (rng.chance(0.6)) q.add(i, j, rng.uniform(-3.0, 3.0));
      }
    }
    const IsingImage image = ising::to_ising(q);
    for (std::uint32_t mask = 0; mask < (1U << kN); ++mask) {
      std::vector<std::uint8_t> x(kN);
      for (std::size_t v = 0; v < kN; ++v) x[v] = (mask >> v) & 1U;
      const auto spins = IsingImage::spins_from_binary(x);
      EXPECT_NEAR(q.value(x),
                  image.offset + image.model.hamiltonian(spins), 1e-9)
          << "mask " << mask;
    }
  }
}

TEST(Qubo, RoundTripBinarySpins) {
  const std::vector<std::uint8_t> x{1, 0, 1, 1, 0};
  const auto spins = IsingImage::spins_from_binary(x);
  EXPECT_EQ(spins[0], 1);
  EXPECT_EQ(spins[1], -1);
  EXPECT_EQ(IsingImage::binary_from_spins(spins), x);
}

TEST(Qubo, MinimisingIsingMinimisesQubo) {
  // Exhaustive check: argmin over σ of (offset + H) equals argmin of f.
  Qubo q(6);
  util::Rng rng(2);
  for (ising::SpinIndex i = 0; i < 6; ++i) {
    for (ising::SpinIndex j = i; j < 6; ++j) {
      q.add(i, j, rng.uniform(-2.0, 2.0));
    }
  }
  const IsingImage image = ising::to_ising(q);
  double best_f = 1e300;
  double best_h = 1e300;
  for (std::uint32_t mask = 0; mask < 64; ++mask) {
    std::vector<std::uint8_t> x(6);
    for (std::size_t v = 0; v < 6; ++v) x[v] = (mask >> v) & 1U;
    best_f = std::min(best_f, q.value(x));
    best_h = std::min(best_h,
                      image.offset + image.model.hamiltonian(
                                         IsingImage::spins_from_binary(x)));
  }
  EXPECT_NEAR(best_f, best_h, 1e-9);
}

TEST(TourCompare, CanonicalFormInvariantUnderRotation) {
  const tsp::Tour base({3, 1, 4, 0, 2});
  const tsp::Tour rotated({0, 2, 3, 1, 4});
  EXPECT_EQ(tsp::canonical_form(base), tsp::canonical_form(rotated));
  EXPECT_TRUE(tsp::same_cycle(base, rotated));
}

TEST(TourCompare, CanonicalFormInvariantUnderReflection) {
  const tsp::Tour base({0, 1, 2, 3, 4});
  const tsp::Tour reflected({0, 4, 3, 2, 1});
  EXPECT_TRUE(tsp::same_cycle(base, reflected));
  EXPECT_EQ(tsp::canonical_form(base).at(0), 0U);
}

TEST(TourCompare, DifferentCyclesDetected) {
  const tsp::Tour a({0, 1, 2, 3, 4});
  const tsp::Tour b({0, 2, 1, 3, 4});
  EXPECT_FALSE(tsp::same_cycle(a, b));
}

TEST(TourCompare, CanonicalStartsWithZeroAndSmallerNeighbor) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    auto perm = util::random_permutation(9, rng);
    const tsp::Tour tour{std::vector<tsp::CityId>(perm.begin(), perm.end())};
    const tsp::Tour canon = tsp::canonical_form(tour);
    EXPECT_EQ(canon.at(0), 0U);
    EXPECT_LE(canon.at(1), canon.at(8));
    EXPECT_TRUE(tsp::same_cycle(tour, canon));
  }
}

TEST(TourCompare, SharedEdgesBasics) {
  const tsp::Tour a({0, 1, 2, 3, 4, 5});
  EXPECT_EQ(tsp::shared_edges(a, a), 6U);
  EXPECT_DOUBLE_EQ(tsp::bond_distance(a, a), 0.0);
  // Swap two adjacent cities: breaks 2 edges... tour (0,1,2,3,4,5) vs
  // (0,2,1,3,4,5): removed (1,2)? no — removed (0,1),(2,3); kept (1,2);
  // shared = 6−2 = 4.
  const tsp::Tour b({0, 2, 1, 3, 4, 5});
  EXPECT_EQ(tsp::shared_edges(a, b), 4U);
  EXPECT_NEAR(tsp::bond_distance(a, b), 2.0 / 6.0, 1e-12);
}

TEST(TourCompare, ReflectionSharesAllEdges) {
  const tsp::Tour a({0, 1, 2, 3, 4});
  const tsp::Tour r({4, 3, 2, 1, 0});
  EXPECT_EQ(tsp::shared_edges(a, r), 5U);
}

TEST(TourCompare, RandomToursShareFewEdges) {
  util::Rng rng(4);
  const auto pa = util::random_permutation(200, rng);
  const auto pb = util::random_permutation(200, rng);
  const tsp::Tour a{std::vector<tsp::CityId>(pa.begin(), pa.end())};
  const tsp::Tour b{std::vector<tsp::CityId>(pb.begin(), pb.end())};
  EXPECT_GT(tsp::bond_distance(a, b), 0.9);
}

TEST(TourCompare, SizeMismatchThrows) {
  EXPECT_THROW(
      tsp::shared_edges(tsp::Tour({0, 1, 2}), tsp::Tour({0, 1, 2, 3})),
      ConfigError);
}

TEST(TourCompare, TinyTours) {
  EXPECT_TRUE(tsp::same_cycle(tsp::Tour({0, 1}), tsp::Tour({1, 0})));
  EXPECT_EQ(tsp::shared_edges(tsp::Tour({0, 1}), tsp::Tour({1, 0})), 1U);
  EXPECT_DOUBLE_EQ(tsp::bond_distance(tsp::Tour({0}), tsp::Tour({0})),
                   0.0);
}

}  // namespace
}  // namespace cim
