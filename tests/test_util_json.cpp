#include "util/json.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::util {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(static_cast<long long>(-7)).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("line\nbreak").dump(), "\"line\\nbreak\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(Json, ObjectCompact) {
  Json j = Json::object();
  j["a"] = 1;
  j["b"] = "two";
  EXPECT_EQ(j.dump(-1), "{\"a\":1,\"b\":\"two\"}");
  EXPECT_EQ(j.size(), 2U);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["z"] = 1;
  j["a"] = 2;
  const std::string text = j.dump(-1);
  EXPECT_LT(text.find("\"z\""), text.find("\"a\""));
}

TEST(Json, ObjectFieldOverwrite) {
  Json j = Json::object();
  j["x"] = 1;
  j["x"] = 2;
  EXPECT_EQ(j.dump(-1), "{\"x\":2}");
}

TEST(Json, ArrayAndNesting) {
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  Json inner = Json::object();
  inner["k"] = true;
  arr.push_back(std::move(inner));
  EXPECT_EQ(arr.dump(-1), "[1,\"two\",{\"k\":true}]");
  EXPECT_EQ(arr.size(), 3U);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::object().dump(), "{}");
  EXPECT_EQ(Json::array().dump(), "[]");
}

TEST(Json, IndentedOutput) {
  Json j = Json::object();
  j["a"] = 1;
  const std::string text = j.dump(2);
  EXPECT_NE(text.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(Json, MisuseThrows) {
  Json scalar(1);
  EXPECT_THROW(scalar["k"] = 2, InvariantError);
  EXPECT_THROW(scalar.push_back(1), InvariantError);
}

TEST(Json, SaveFailsOnBadPath) {
  EXPECT_THROW(Json(1).save("/no_such_dir_zz/x.json"), Error);
}

TEST(JsonReport, OutcomeSerialisation) {
  const auto inst = cim::test::random_instance(80, 1);
  cim::core::SolverConfig config;
  config.replicas = 2;
  const auto outcome = cim::core::CimSolver(config).solve(inst);
  const Json j = cim::core::outcome_to_json(outcome, inst.name());
  const std::string text = j.dump(-1);
  EXPECT_NE(text.find("\"tour_length\""), std::string::npos);
  EXPECT_NE(text.find("\"optimal_ratio\""), std::string::npos);
  EXPECT_NE(text.find("\"levels\""), std::string::npos);
  EXPECT_NE(text.find("\"pseudo_read_flips\""), std::string::npos);
  EXPECT_NE(text.find("\"replica_lengths\""), std::string::npos);
  EXPECT_NE(text.find("\"ppa\""), std::string::npos);
  EXPECT_NE(text.find("\"chip_area_um2\""), std::string::npos);
}

}  // namespace
}  // namespace cim::util
