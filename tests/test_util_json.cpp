#include "util/json.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::util {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(static_cast<long long>(-7)).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("line\nbreak").dump(), "\"line\\nbreak\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(Json, ObjectCompact) {
  Json j = Json::object();
  j["a"] = 1;
  j["b"] = "two";
  EXPECT_EQ(j.dump(-1), "{\"a\":1,\"b\":\"two\"}");
  EXPECT_EQ(j.size(), 2U);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["z"] = 1;
  j["a"] = 2;
  const std::string text = j.dump(-1);
  EXPECT_LT(text.find("\"z\""), text.find("\"a\""));
}

TEST(Json, ObjectFieldOverwrite) {
  Json j = Json::object();
  j["x"] = 1;
  j["x"] = 2;
  EXPECT_EQ(j.dump(-1), "{\"x\":2}");
}

TEST(Json, ArrayAndNesting) {
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  Json inner = Json::object();
  inner["k"] = true;
  arr.push_back(std::move(inner));
  EXPECT_EQ(arr.dump(-1), "[1,\"two\",{\"k\":true}]");
  EXPECT_EQ(arr.size(), 3U);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::object().dump(), "{}");
  EXPECT_EQ(Json::array().dump(), "[]");
}

TEST(Json, IndentedOutput) {
  Json j = Json::object();
  j["a"] = 1;
  const std::string text = j.dump(2);
  EXPECT_NE(text.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(Json, MisuseThrows) {
  Json scalar(1);
  EXPECT_THROW(scalar["k"] = 2, InvariantError);
  EXPECT_THROW(scalar.push_back(1), InvariantError);
}

TEST(Json, SaveFailsOnBadPath) {
  EXPECT_THROW(Json(1).save("/no_such_dir_zz/x.json"), Error);
}

TEST(JsonParse, ScalarsRoundTrip) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").boolean());
  EXPECT_FALSE(Json::parse("false").boolean());
  EXPECT_EQ(Json::parse("42").integer(), 42);
  EXPECT_EQ(Json::parse("-7").integer(), -7);
  EXPECT_TRUE(Json::parse("42").is_integer());
  EXPECT_EQ(Json::parse("1.5").number(), 1.5);
  EXPECT_EQ(Json::parse("2e3").number(), 2000.0);
  EXPECT_EQ(Json::parse("\"hi\"").str(), "hi");
  // Integers promote to double through number().
  EXPECT_EQ(Json::parse("3").number(), 3.0);
}

TEST(JsonParse, EscapesAndUnicode) {
  EXPECT_EQ(Json::parse("\"a\\\"b\"").str(), "a\"b");
  EXPECT_EQ(Json::parse("\"line\\nbreak\"").str(), "line\nbreak");
  EXPECT_EQ(Json::parse("\"back\\\\slash\"").str(), "back\\slash");
  EXPECT_EQ(Json::parse("\"\\u0041\"").str(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").str(), "\xc3\xa9");  // é as UTF-8
}

TEST(JsonParse, ContainersAndAccessors) {
  const Json j = Json::parse(
      " { \"a\" : [1, 2.5, \"x\"], \"b\": {\"nested\": true} } ");
  EXPECT_TRUE(j.is_object());
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.key_at(0), "a");
  const Json& arr = j.at("a");
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.at(std::size_t{0}).integer(), 1);
  EXPECT_EQ(arr.at(std::size_t{1}).number(), 2.5);
  EXPECT_EQ(arr.at(std::size_t{2}).str(), "x");
  EXPECT_TRUE(j.at("b").at("nested").boolean());
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_THROW(j.at("missing"), Error);
}

TEST(JsonParse, WriterOutputRoundTrips) {
  Json j = Json::object();
  j["name"] = "anneal.epoch";
  j["count"] = 17;
  j["rate"] = 0.375;  // exactly representable: survives the round trip
  Json arr = Json::array();
  arr.push_back(false);
  arr.push_back(Json());
  j["flags"] = std::move(arr);
  for (const int indent : {-1, 2}) {
    const Json back = Json::parse(j.dump(indent));
    EXPECT_EQ(back.at("name").str(), "anneal.epoch");
    EXPECT_EQ(back.at("count").integer(), 17);
    EXPECT_EQ(back.at("rate").number(), 0.375);
    EXPECT_FALSE(back.at("flags").at(std::size_t{0}).boolean());
    EXPECT_TRUE(back.at("flags").at(std::size_t{1}).is_null());
  }
}

TEST(JsonParse, MalformedInputThrows) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\" 1}", "[1 2]", "nul", "+5", "\"bad\\q\"", "{a: 1}"}) {
    EXPECT_THROW(Json::parse(bad), ParseError) << bad;
  }
}

TEST(JsonParse, AccessorKindMismatchThrows) {
  const Json j = Json::parse("{\"s\": \"text\"}");
  EXPECT_THROW(j.at("s").integer(), ConfigError);
  EXPECT_THROW(j.at("s").number(), ConfigError);
  EXPECT_THROW(j.at("s").boolean(), ConfigError);
  EXPECT_THROW(j.at("s").at(std::size_t{0}), ConfigError);
}

TEST(JsonReport, OutcomeSerialisation) {
  const auto inst = cim::test::random_instance(80, 1);
  cim::core::SolverConfig config;
  config.replicas = 2;
  const auto outcome = cim::core::CimSolver(config).solve(inst);
  const Json j = cim::core::outcome_to_json(outcome, inst.name());
  const std::string text = j.dump(-1);
  EXPECT_NE(text.find("\"tour_length\""), std::string::npos);
  EXPECT_NE(text.find("\"optimal_ratio\""), std::string::npos);
  EXPECT_NE(text.find("\"levels\""), std::string::npos);
  EXPECT_NE(text.find("\"pseudo_read_flips\""), std::string::npos);
  EXPECT_NE(text.find("\"replica_lengths\""), std::string::npos);
  EXPECT_NE(text.find("\"ppa\""), std::string::npos);
  EXPECT_NE(text.find("\"chip_area_um2\""), std::string::npos);
}

}  // namespace
}  // namespace cim::util
