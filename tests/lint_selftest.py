"""cimlint self-test (ctest: lint.selftest).

Runs tools/lint.py against the fixture corpus in tests/lint_fixtures/repo
and asserts exact finding counts, line numbers, exit codes, suppression
behaviour, baseline round-trips and SARIF shape — so a lint regression
(a rule silently going blind, a tokenizer bug swallowing code, an exit
code drifting) fails the build, not a code review six months later.

Run directly: python3 tests/lint_selftest.py
"""

from __future__ import annotations

import collections
import json
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "tools" / "lint.py"
FIXTURES = REPO / "tests" / "lint_fixtures" / "repo"

# The contract with tests/lint_fixtures/repo: every rule fires the exact
# number of times the fixture files promise in their comments.
EXPECTED_COUNTS = {
    "anneal-dense-rebuild": 1,
    "cim-counter-charge": 1,
    "det-taint": 2,
    "hdr-pragma-once": 1,
    "hdr-using-namespace": 1,
    "layer-dag": 1,
    "lock-annotation-unknown": 1,
    "lock-mutex-unannotated": 1,
    "lock-raw-call": 2,
    "nolint-unknown-rule": 2,
    "raw-thread": 1,
    "rng-libc-rand": 2,
    "rng-mt19937": 1,
    "rng-random-device": 1,
    "rng-time-seed": 1,
    "simd-intrinsics-confined": 2,
    "telemetry-in-header": 1,
    "unit-float-eq": 3,
    "unit-raw-double": 2,
}


def run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True, check=False)


def fixture_findings(*extra: str) -> tuple[list[dict], int]:
    proc = run_lint("--root", str(FIXTURES), "--no-baseline",
                    "--format", "json", *extra)
    data = json.loads(proc.stdout)
    return data["findings"], proc.returncode


class FixtureScan(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.findings, cls.exit_code = fixture_findings()

    def test_exit_code_signals_findings(self):
        self.assertEqual(self.exit_code, 1)

    def test_exact_per_rule_counts(self):
        counts = collections.Counter(f["rule"] for f in self.findings)
        self.assertEqual(dict(counts), EXPECTED_COUNTS)

    def test_total_count(self):
        self.assertEqual(len(self.findings), sum(EXPECTED_COUNTS.values()))

    def at(self, rule: str) -> list[tuple[str, int]]:
        return sorted((f["path"], f["line"])
                      for f in self.findings if f["rule"] == rule)

    def test_layer_dag_location(self):
        self.assertEqual(self.at("layer-dag"),
                         [("src/ppa/bad_include.hpp", 5)])

    def test_float_eq_nolint_window(self):
        # Lines 5 and 19 fire; the inline (8) and two-above (13) markers
        # suppress; the four-above marker does not reach line 19.
        self.assertEqual(self.at("unit-float-eq"),
                         [("src/util/float_eq.cpp", 5),
                          ("src/util/float_eq.cpp", 19),
                          ("src/util/tokenizer_cases.cpp", 10)])

    def test_digit_separator_not_swallowed(self):
        # The comparison after `1'000'000` must survive the stripper.
        self.assertIn(("src/util/tokenizer_cases.cpp", 10),
                      self.at("unit-float-eq"))

    def test_raw_string_include_does_not_fire(self):
        # R"(... #include "anneal/fake.hpp" ...)" is data, not a directive.
        for path, _ in self.at("layer-dag"):
            self.assertNotEqual(path, "src/util/tokenizer_cases.cpp")

    def test_counter_charge_reports_at_signature(self):
        self.assertEqual(self.at("cim-counter-charge"),
                         [("src/cim/uncharged.cpp", 11)])

    def test_raw_thread_fires_outside_util_only(self):
        # The spawn in src/anneal fires; the NOLINT twin, the inert
        # handle types and the src/util allowlisted file stay silent.
        self.assertEqual(self.at("raw-thread"),
                         [("src/anneal/raw_thread.cpp", 10)])

    def test_simd_confinement_locations(self):
        # The vendor include and the raw intrinsic call fire; the
        # suppressed twin and the wrapper-named lambda stay silent.
        self.assertEqual(self.at("simd-intrinsics-confined"),
                         [("src/cim/raw_intrinsic.cpp", 4),
                          ("src/cim/raw_intrinsic.cpp", 12)])

    def test_telemetry_in_header_location(self):
        # The bare macro fires; the NOLINT-vouched template twin and
        # every .cpp emission site stay silent.
        self.assertEqual(self.at("telemetry-in-header"),
                         [("src/cim/telem_header.hpp", 8)])

    def test_unknown_nolint_audit(self):
        self.assertEqual(self.at("nolint-unknown-rule"),
                         [("src/util/unknown_nolint.cpp", 5),
                          ("src/util/unknown_nolint.cpp", 7)])

    def messages(self, rule: str) -> dict[tuple[str, int], str]:
        return {(f["path"], f["line"]): f["message"]
                for f in self.findings if f["rule"] == rule}

    def test_det_taint_direct_and_transitive(self):
        self.assertEqual(self.at("det-taint"),
                         [("src/anneal/taint_direct.cpp", 10),
                          ("src/anneal/taint_transitive.cpp", 9)])

    def test_det_taint_witness_chain(self):
        # The transitive finding must carry the full call path from the
        # CIM_DETERMINISM_ROOT to the function containing the source —
        # two hops below the root.
        msg = self.messages("det-taint")[("src/anneal/taint_transitive.cpp",
                                          9)]
        self.assertIn("taint_transitive_root -> taint_helper_a -> "
                      "taint_helper_b", msg)
        self.assertIn("wall-clock", msg)

    def test_det_taint_nolint_suppressed(self):
        # The vouched twin (taint_nolint.cpp) must stay silent: project
        # findings honour NOLINT at the reported site like per-file ones.
        for f in self.findings:
            self.assertNotEqual(f["path"], "src/anneal/taint_nolint.cpp")

    def test_lock_discipline_locations(self):
        self.assertEqual(self.at("lock-mutex-unannotated"),
                         [("src/util/lock_unguarded.cpp", 12)])
        self.assertEqual(self.at("lock-annotation-unknown"),
                         [("src/util/lock_unguarded.cpp", 13)])
        self.assertEqual(self.at("lock-raw-call"),
                         [("src/util/lock_unguarded.cpp", 18),
                          ("src/util/lock_unguarded.cpp", 21)])

    def test_lock_annotated_twin_is_silent(self):
        for f in self.findings:
            self.assertNotEqual(f["path"], "src/util/lock_annotated.cpp")


class Sarif(unittest.TestCase):
    def test_sarif_shape(self):
        with tempfile.TemporaryDirectory() as tmp:
            sarif_path = Path(tmp) / "lint.sarif"
            proc = run_lint("--root", str(FIXTURES), "--no-baseline",
                            "--sarif", str(sarif_path))
            self.assertEqual(proc.returncode, 1)
            doc = json.loads(sarif_path.read_text(encoding="utf-8"))
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        results = run["results"]
        self.assertEqual(len(results), sum(EXPECTED_COUNTS.values()))
        declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
        used = {r["ruleId"] for r in results}
        self.assertTrue(used <= declared,
                        f"results reference undeclared rules: {used - declared}")
        loc = results[0]["locations"][0]["physicalLocation"]
        self.assertIn("artifactLocation", loc)
        self.assertIn("region", loc)


class BaselineRoundTrip(unittest.TestCase):
    def test_update_then_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = Path(tmp) / "baseline.txt"
            update = run_lint("--root", str(FIXTURES),
                              "--baseline", str(baseline),
                              "--update-baseline")
            self.assertEqual(update.returncode, 0, update.stderr)
            rerun = run_lint("--root", str(FIXTURES),
                             "--baseline", str(baseline))
            self.assertEqual(rerun.returncode, 0, rerun.stdout)
            self.assertIn("27 baselined", rerun.stdout)


class ChangedOnly(unittest.TestCase):
    def test_fallback_outside_git_scans_everything(self):
        # --changed-only on a tree that is not a git work tree must warn
        # and degrade to a full scan — same findings, same exit code.
        with tempfile.TemporaryDirectory() as tmp:
            copy = Path(tmp) / "repo"
            shutil.copytree(FIXTURES, copy)
            proc = run_lint("--root", str(copy), "--no-baseline",
                            "--no-index-cache", "--format", "json",
                            "--changed-only",
                            # A tmpdir nested under a real repo would
                            # still resolve; point git at nothing.
                            "--base-ref", "no-such-ref-cimlint-selftest")
            self.assertEqual(proc.returncode, 1, proc.stderr)
            self.assertIn("falling back to a full scan", proc.stderr)
            data = json.loads(proc.stdout)
            counts = collections.Counter(f["rule"] for f in data["findings"])
            self.assertEqual(dict(counts), EXPECTED_COUNTS)

    def test_index_cache_round_trip(self):
        # A warm cache must reproduce the cold run bit-for-bit.
        with tempfile.TemporaryDirectory() as tmp:
            cache = Path(tmp) / "index.json"
            cold = run_lint("--root", str(FIXTURES), "--no-baseline",
                            "--format", "json", "--index-cache", str(cache))
            self.assertTrue(cache.is_file())
            warm = run_lint("--root", str(FIXTURES), "--no-baseline",
                            "--format", "json", "--index-cache", str(cache))
            self.assertEqual(cold.stdout, warm.stdout)


class CliContracts(unittest.TestCase):
    def test_list_rules_complete(self):
        proc = run_lint("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in EXPECTED_COUNTS:
            self.assertIn(rule, proc.stdout)

    def test_explain_known_rule(self):
        proc = run_lint("--explain", "unit-float-eq")
        self.assertEqual(proc.returncode, 0)
        self.assertIn("unit-float-eq", proc.stdout)

    def test_explain_unknown_rule_is_usage_error(self):
        proc = run_lint("--explain", "no-such-rule")
        self.assertEqual(proc.returncode, 2)

    def test_empty_root_is_configuration_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            proc = run_lint("--root", tmp)
        self.assertEqual(proc.returncode, 2)


class TokenizerUnit(unittest.TestCase):
    """Direct regression checks on the stripper (satellite 1)."""

    @classmethod
    def setUpClass(cls):
        sys.path.insert(0, str(REPO / "tools"))
        from cimlint.tokenizer import strip_comments_and_strings
        cls.strip = staticmethod(strip_comments_and_strings)

    def test_digit_separator_is_not_char_literal(self):
        out = self.strip("int x = 1'000'000; int y = f();")
        self.assertIn("1'000'000", out)
        self.assertIn("f()", out)

    def test_char_literal_still_blanked(self):
        out = self.strip("char c = 'x'; g();")
        self.assertNotIn("'x'", out)
        self.assertIn("g()", out)

    def test_raw_string_blanked_without_desync(self):
        out = self.strip('auto s = R"(a "quoted" thing)"; h();')
        self.assertNotIn("quoted", out)
        self.assertIn("h()", out)

    def test_raw_string_blanked_even_with_keep_strings(self):
        out = self.strip('auto s = R"(\n#include "anneal/x.hpp"\n)"; i();',
                         keep_strings=True)
        self.assertNotIn("#include", out)
        self.assertIn("i()", out)

    def test_keep_strings_preserves_include_paths(self):
        out = self.strip('#include "cim/storage.hpp"  // comment',
                         keep_strings=True)
        self.assertIn('"cim/storage.hpp"', out)
        self.assertNotIn("comment", out)

    def test_newlines_and_columns_preserved(self):
        src = 'int a; /* multi\nline */ "str"\n'
        out = self.strip(src)
        self.assertEqual(len(out), len(src))
        self.assertEqual(out.count("\n"), src.count("\n"))


if __name__ == "__main__":
    unittest.main(verbosity=2)
