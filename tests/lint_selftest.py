"""cimlint self-test (ctest: lint.selftest).

Runs tools/lint.py against the fixture corpus in tests/lint_fixtures/repo
and asserts exact finding counts, line numbers, exit codes, suppression
behaviour, baseline round-trips and SARIF shape — so a lint regression
(a rule silently going blind, a tokenizer bug swallowing code, an exit
code drifting) fails the build, not a code review six months later.

Run directly: python3 tests/lint_selftest.py
"""

from __future__ import annotations

import collections
import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "tools" / "lint.py"
FIXTURES = REPO / "tests" / "lint_fixtures" / "repo"

# The contract with tests/lint_fixtures/repo: every rule fires the exact
# number of times the fixture files promise in their comments.
EXPECTED_COUNTS = {
    "anneal-dense-rebuild": 1,
    "cim-counter-charge": 1,
    "det-taint": 2,
    "hdr-pragma-once": 1,
    "hdr-using-namespace": 1,
    "index-check-dead": 1,
    "index-range-overflow": 1,
    "layer-dag": 1,
    "lock-annotation-unknown": 1,
    "lock-mutex-unannotated": 1,
    "lock-order-cycle": 1,
    "lock-raw-call": 2,
    "nolint-unknown-rule": 2,
    "raw-thread": 1,
    "rng-libc-rand": 2,
    "rng-mt19937": 1,
    "rng-random-device": 1,
    "rng-time-seed": 1,
    "rng-unproven-seed": 1,
    "simd-intrinsics-confined": 2,
    "store-unversioned-io": 2,
    "telemetry-in-header": 1,
    "unit-float-eq": 3,
    "unit-raw-double": 2,
}


def run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True, check=False)


def fixture_findings(*extra: str) -> tuple[list[dict], int]:
    proc = run_lint("--root", str(FIXTURES), "--no-baseline",
                    "--format", "json", *extra)
    data = json.loads(proc.stdout)
    return data["findings"], proc.returncode


class FixtureScan(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.findings, cls.exit_code = fixture_findings()

    def test_exit_code_signals_findings(self):
        self.assertEqual(self.exit_code, 1)

    def test_exact_per_rule_counts(self):
        counts = collections.Counter(f["rule"] for f in self.findings)
        self.assertEqual(dict(counts), EXPECTED_COUNTS)

    def test_total_count(self):
        self.assertEqual(len(self.findings), sum(EXPECTED_COUNTS.values()))

    def at(self, rule: str) -> list[tuple[str, int]]:
        return sorted((f["path"], f["line"])
                      for f in self.findings if f["rule"] == rule)

    def test_layer_dag_location(self):
        self.assertEqual(self.at("layer-dag"),
                         [("src/ppa/bad_include.hpp", 5)])

    def test_float_eq_nolint_window(self):
        # Lines 5 and 19 fire; the inline (8) and two-above (13) markers
        # suppress; the four-above marker does not reach line 19.
        self.assertEqual(self.at("unit-float-eq"),
                         [("src/util/float_eq.cpp", 5),
                          ("src/util/float_eq.cpp", 19),
                          ("src/util/tokenizer_cases.cpp", 10)])

    def test_digit_separator_not_swallowed(self):
        # The comparison after `1'000'000` must survive the stripper.
        self.assertIn(("src/util/tokenizer_cases.cpp", 10),
                      self.at("unit-float-eq"))

    def test_raw_string_include_does_not_fire(self):
        # R"(... #include "anneal/fake.hpp" ...)" is data, not a directive.
        for path, _ in self.at("layer-dag"):
            self.assertNotEqual(path, "src/util/tokenizer_cases.cpp")

    def test_counter_charge_reports_at_signature(self):
        self.assertEqual(self.at("cim-counter-charge"),
                         [("src/cim/uncharged.cpp", 11)])

    def test_raw_thread_fires_outside_util_only(self):
        # The spawn in src/anneal fires; the NOLINT twin, the inert
        # handle types and the src/util allowlisted file stay silent.
        self.assertEqual(self.at("raw-thread"),
                         [("src/anneal/raw_thread.cpp", 10)])

    def test_simd_confinement_locations(self):
        # The vendor include and the raw intrinsic call fire; the
        # suppressed twin and the wrapper-named lambda stay silent.
        self.assertEqual(self.at("simd-intrinsics-confined"),
                         [("src/cim/raw_intrinsic.cpp", 4),
                          ("src/cim/raw_intrinsic.cpp", 12)])

    def test_telemetry_in_header_location(self):
        # The bare macro fires; the NOLINT-vouched template twin and
        # every .cpp emission site stay silent.
        self.assertEqual(self.at("telemetry-in-header"),
                         [("src/cim/telem_header.hpp", 8)])

    def test_unknown_nolint_audit(self):
        self.assertEqual(self.at("nolint-unknown-rule"),
                         [("src/util/unknown_nolint.cpp", 5),
                          ("src/util/unknown_nolint.cpp", 7)])

    def messages(self, rule: str) -> dict[tuple[str, int], str]:
        return {(f["path"], f["line"]): f["message"]
                for f in self.findings if f["rule"] == rule}

    def test_det_taint_direct_and_transitive(self):
        self.assertEqual(self.at("det-taint"),
                         [("src/anneal/taint_direct.cpp", 10),
                          ("src/anneal/taint_transitive.cpp", 9)])

    def test_det_taint_witness_chain(self):
        # The transitive finding must carry the full call path from the
        # CIM_DETERMINISM_ROOT to the function containing the source —
        # two hops below the root.
        msg = self.messages("det-taint")[("src/anneal/taint_transitive.cpp",
                                          9)]
        self.assertIn("taint_transitive_root -> taint_helper_a -> "
                      "taint_helper_b", msg)
        self.assertIn("wall-clock", msg)

    def test_det_taint_nolint_suppressed(self):
        # The vouched twin (taint_nolint.cpp) must stay silent: project
        # findings honour NOLINT at the reported site like per-file ones.
        for f in self.findings:
            self.assertNotEqual(f["path"], "src/anneal/taint_nolint.cpp")

    def test_lock_discipline_locations(self):
        self.assertEqual(self.at("lock-mutex-unannotated"),
                         [("src/util/lock_unguarded.cpp", 12)])
        self.assertEqual(self.at("lock-annotation-unknown"),
                         [("src/util/lock_unguarded.cpp", 13)])
        self.assertEqual(self.at("lock-raw-call"),
                         [("src/util/lock_unguarded.cpp", 18),
                          ("src/util/lock_unguarded.cpp", 21)])

    def test_lock_annotated_twin_is_silent(self):
        for f in self.findings:
            self.assertNotEqual(f["path"], "src/util/lock_annotated.cpp")

    def test_lock_order_cycle_reports_both_paths(self):
        # The deadlock finding must name the cycle and carry *both*
        # acquisition paths — the direct nesting and the one through a
        # call made under a held lock — each with its witness site.
        self.assertEqual(self.at("lock-order-cycle"),
                         [("src/util/lock_order_cycle.cpp", 27)])
        msg = self.messages("lock-order-cycle")[
            ("src/util/lock_order_cycle.cpp", 27)]
        self.assertIn("cycle 'journal_mu' -> 'table_mu' -> 'journal_mu'",
                      msg)
        self.assertIn("[path 1] reload_table (src/util/lock_order_cycle"
                      ".cpp:27) acquires 'table_mu' while holding "
                      "'journal_mu'", msg)
        self.assertIn("[path 2] flush_table (src/util/lock_order_cycle"
                      ".cpp:22) holds 'table_mu' and calls append_journal, "
                      "which acquires 'journal_mu' "
                      "(src/util/lock_order_cycle.cpp:16)", msg)

    def test_lock_order_clean_twin_is_silent(self):
        # Consistent ordering plus an iteration-scoped guard: the RAII
        # release on the loop back edge must not fabricate an edge.
        for f in self.findings:
            self.assertNotEqual(f["path"], "src/util/lock_order_clean.cpp")

    def test_index_range_overflow_off_by_one(self):
        # `c <= s.cols()` walks one column past the 8-wide extent; the
        # message carries the proven interval and the valid range.
        self.assertEqual(self.at("index-range-overflow"),
                         [("src/anneal/range_overflow.cpp", 24)])
        msg = self.messages("index-range-overflow")[
            ("src/anneal/range_overflow.cpp", 24)]
        self.assertIn("range [0, 8]", msg)
        self.assertIn("col extent 8 (valid [0, 7])", msg)

    def test_index_check_dead_guard(self):
        # `if (c < 8)` under `c < s.cols()` with cols == 8 is always
        # true: the guard is dead and the message proves it.
        self.assertEqual(self.at("index-check-dead"),
                         [("src/anneal/range_overflow.cpp", 33)])
        msg = self.messages("index-check-dead")[
            ("src/anneal/range_overflow.cpp", 33)]
        self.assertIn("provably always true", msg)
        self.assertIn("'c' in [0, 7]", msg)

    def test_range_clean_twin_is_silent(self):
        # In-bounds walks and a guard on caller data (undecidable) —
        # neither range rule may fire.
        for f in self.findings:
            self.assertNotEqual(f["path"], "src/anneal/range_clean.cpp")

    def test_rng_unproven_seed_witness(self):
        # The seed provenance proof fails at ticket(); the finding names
        # the unproven variable and the chain from the determinism root.
        self.assertEqual(self.at("rng-unproven-seed"),
                         [("src/anneal/seed_unproven.cpp", 16)])
        msg = self.messages("rng-unproven-seed")[
            ("src/anneal/seed_unproven.cpp", 16)]
        self.assertIn("'mix' has no seed provenance", msg)
        self.assertIn("reachable from determinism root "
                      "seed_unproven_replay", msg)
        self.assertIn("witness: seed_unproven_replay", msg)

    def test_seed_proven_twin_is_silent(self):
        # stream_seed/hash_combine/splitmix64 chains over a parameter,
        # including a proven-on-both-arms branch join, satisfy the proof.
        for f in self.findings:
            self.assertNotEqual(f["path"], "src/anneal/seed_proven.cpp")

    def test_overload_fixture_is_silent(self):
        for f in self.findings:
            self.assertNotEqual(f["path"], "src/util/overload_resolve.cpp")


class Sarif(unittest.TestCase):
    def test_sarif_shape(self):
        with tempfile.TemporaryDirectory() as tmp:
            sarif_path = Path(tmp) / "lint.sarif"
            proc = run_lint("--root", str(FIXTURES), "--no-baseline",
                            "--sarif", str(sarif_path))
            self.assertEqual(proc.returncode, 1)
            doc = json.loads(sarif_path.read_text(encoding="utf-8"))
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        results = run["results"]
        self.assertEqual(len(results), sum(EXPECTED_COUNTS.values()))
        declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
        used = {r["ruleId"] for r in results}
        self.assertTrue(used <= declared,
                        f"results reference undeclared rules: {used - declared}")
        loc = results[0]["locations"][0]["physicalLocation"]
        self.assertIn("artifactLocation", loc)
        self.assertIn("region", loc)


class BaselineRoundTrip(unittest.TestCase):
    def test_update_then_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = Path(tmp) / "baseline.txt"
            update = run_lint("--root", str(FIXTURES),
                              "--baseline", str(baseline),
                              "--update-baseline")
            self.assertEqual(update.returncode, 0, update.stderr)
            rerun = run_lint("--root", str(FIXTURES),
                             "--baseline", str(baseline))
            self.assertEqual(rerun.returncode, 0, rerun.stdout)
            self.assertIn(f"{sum(EXPECTED_COUNTS.values())} baselined",
                          rerun.stdout)


class ChangedOnly(unittest.TestCase):
    def test_fallback_outside_git_scans_everything(self):
        # --changed-only on a tree that is not a git work tree must warn
        # and degrade to a full scan — same findings, same exit code.
        with tempfile.TemporaryDirectory() as tmp:
            copy = Path(tmp) / "repo"
            shutil.copytree(FIXTURES, copy)
            proc = run_lint("--root", str(copy), "--no-baseline",
                            "--no-index-cache", "--format", "json",
                            "--changed-only",
                            # A tmpdir nested under a real repo would
                            # still resolve; point git at nothing.
                            "--base-ref", "no-such-ref-cimlint-selftest")
            self.assertEqual(proc.returncode, 1, proc.stderr)
            self.assertIn("falling back to a full scan", proc.stderr)
            data = json.loads(proc.stdout)
            counts = collections.Counter(f["rule"] for f in data["findings"])
            self.assertEqual(dict(counts), EXPECTED_COUNTS)

    def test_index_cache_round_trip(self):
        # A warm cache must reproduce the cold run bit-for-bit.
        with tempfile.TemporaryDirectory() as tmp:
            cache = Path(tmp) / "index.json"
            cold = run_lint("--root", str(FIXTURES), "--no-baseline",
                            "--format", "json", "--index-cache", str(cache))
            self.assertTrue(cache.is_file())
            warm = run_lint("--root", str(FIXTURES), "--no-baseline",
                            "--format", "json", "--index-cache", str(cache))
            self.assertEqual(cold.stdout, warm.stdout)


class CliContracts(unittest.TestCase):
    def test_list_rules_complete(self):
        proc = run_lint("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in EXPECTED_COUNTS:
            self.assertIn(rule, proc.stdout)

    def test_explain_known_rule(self):
        proc = run_lint("--explain", "unit-float-eq")
        self.assertEqual(proc.returncode, 0)
        self.assertIn("unit-float-eq", proc.stdout)

    def test_explain_unknown_rule_is_usage_error(self):
        proc = run_lint("--explain", "no-such-rule")
        self.assertEqual(proc.returncode, 2)

    def test_empty_root_is_configuration_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            proc = run_lint("--root", tmp)
        self.assertEqual(proc.returncode, 2)


class TokenizerUnit(unittest.TestCase):
    """Direct regression checks on the stripper (satellite 1)."""

    @classmethod
    def setUpClass(cls):
        sys.path.insert(0, str(REPO / "tools"))
        from cimlint.tokenizer import strip_comments_and_strings
        cls.strip = staticmethod(strip_comments_and_strings)

    def test_digit_separator_is_not_char_literal(self):
        out = self.strip("int x = 1'000'000; int y = f();")
        self.assertIn("1'000'000", out)
        self.assertIn("f()", out)

    def test_char_literal_still_blanked(self):
        out = self.strip("char c = 'x'; g();")
        self.assertNotIn("'x'", out)
        self.assertIn("g()", out)

    def test_raw_string_blanked_without_desync(self):
        out = self.strip('auto s = R"(a "quoted" thing)"; h();')
        self.assertNotIn("quoted", out)
        self.assertIn("h()", out)

    def test_raw_string_blanked_even_with_keep_strings(self):
        out = self.strip('auto s = R"(\n#include "anneal/x.hpp"\n)"; i();',
                         keep_strings=True)
        self.assertNotIn("#include", out)
        self.assertIn("i()", out)

    def test_keep_strings_preserves_include_paths(self):
        out = self.strip('#include "cim/storage.hpp"  // comment',
                         keep_strings=True)
        self.assertIn('"cim/storage.hpp"', out)
        self.assertNotIn("comment", out)

    def test_newlines_and_columns_preserved(self):
        src = 'int a; /* multi\nline */ "str"\n'
        out = self.strip(src)
        self.assertEqual(len(out), len(src))
        self.assertEqual(out.count("\n"), src.count("\n"))


class CfgDataflowUnit(unittest.TestCase):
    """Direct checks on the CFG builder and the worklist solver."""

    @classmethod
    def setUpClass(cls):
        sys.path.insert(0, str(REPO / "tools"))

    def _solve(self, code: str):
        from cimlint import dataflow
        from cimlint.cfg import build_cfg
        from cimlint.rules_ranges import _IntervalClient
        body_start = code.index("{") + 1
        cfg = build_cfg(code, body_start, len(code) - 1)
        client = _IntervalClient({})
        ins, outs = dataflow.solve(cfg, client)
        states = {stmt.text: state for stmt, state
                  in dataflow.stmt_states(cfg, client, ins)}
        return cfg, states

    def test_loop_head_detected_and_cond_edges_labelled(self):
        from cimlint.cfg import build_cfg
        code = "void f() { for (int i = 0; i < 10; ++i) { g(i); } }"
        cfg = build_cfg(code, code.index("{") + 1, len(code) - 1)
        self.assertTrue(cfg.loop_heads)
        conds = {(e.cond, e.cond_value, e.origin) for e in cfg.edges
                 if e.cond is not None}
        self.assertIn(("i < 10", True, "loop"), conds)
        self.assertIn(("i < 10", False, "loop"), conds)

    def test_widen_then_narrow_recovers_exact_bounds(self):
        # Widening makes the loop terminate; the narrowing sweeps must
        # recover the exact interval inside and after the loop.
        _, states = self._solve(
            "void f() { for (int i = 0; i < 10; ++i) { int z = i; } "
            "int after = i; }")
        self.assertEqual(states["int z = i"]["i"], (0, 9))
        self.assertEqual(states["int after = i"]["i"], (10, 10))

    def test_nested_loop_outer_counter_not_lost(self):
        # The regression the narrowing pass exists for: widening at the
        # inner head must not leave the outer counter at [0, +inf].
        _, states = self._solve(
            "void f() { for (int r = 0; r < 4; ++r) { "
            "for (int c = 0; c < 6; ++c) { int probe = r; } } }")
        self.assertEqual(states["int probe = r"]["r"], (0, 3))
        self.assertEqual(states["int probe = r"]["c"], (0, 5))

    def test_branch_join_unions_intervals(self):
        _, states = self._solve(
            "void f(int flag) { int v = 1; if (flag) { v = 5; } "
            "int probe = v; }")
        self.assertEqual(states["int probe = v"]["v"], (1, 5))

    def test_raii_guard_release_on_scope_exit(self):
        from cimlint.cfg import build_cfg
        code = ("void f() { { std::lock_guard<std::mutex> g(mu); use(); } "
                "after(); }")
        cfg = build_cfg(code, code.index("{") + 1, len(code) - 1)
        released = [mu for e in cfg.edges for mu in e.releases]
        self.assertEqual(released, ["mu"])


class IndexCacheContentHash(unittest.TestCase):
    """Satellite: the index cache must key on content, not (mtime, size).

    An edit that keeps both byte size and mtime (editors restoring
    timestamps, fast successive writes within mtime granularity) must
    still invalidate the cached per-file summary.
    """

    @classmethod
    def setUpClass(cls):
        sys.path.insert(0, str(REPO / "tools"))

    def test_same_size_same_mtime_edit_invalidates(self):
        from cimlint.index import build_index
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            src = root / "src" / "util"
            src.mkdir(parents=True)
            probe = src / "probe.cpp"
            probe.write_text("void probe() { helper_one(); }\n",
                             encoding="utf-8")
            st = probe.stat()
            cache = root / "index.json"
            idx = build_index(root, [probe], cache)
            (fn,) = idx.all_functions()
            self.assertIn("helper_one", fn.calls)

            # Same byte count, same restored mtime — only content differs.
            probe.write_text("void probe() { helper_two(); }\n",
                             encoding="utf-8")
            os.utime(probe, ns=(st.st_atime_ns, st.st_mtime_ns))
            self.assertEqual(probe.stat().st_size, st.st_size)
            self.assertEqual(probe.stat().st_mtime_ns, st.st_mtime_ns)

            idx2 = build_index(root, [probe], cache)
            (fn2,) = idx2.all_functions()
            self.assertIn("helper_two", fn2.calls)


class MergeSarifDedupe(unittest.TestCase):
    """Satellite: cross-run duplicates collapse by stable fingerprint."""

    @classmethod
    def setUpClass(cls):
        sys.path.insert(0, str(REPO / "tools"))

    def _result(self, line: int) -> dict:
        return {
            "ruleId": "rng-libc-rand",
            "level": "warning",
            "message": {"text": "libc rand()"},
            "locations": [{"physicalLocation": {
                "artifactLocation": {"uri": "src/a.cpp"},
                "region": {"startLine": line},
            }}],
        }

    def test_cross_run_duplicate_dropped_same_run_repeats_kept(self):
        import merge_sarif
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "src").mkdir()
            # Two *identical* flagged lines: same content hash, distinct
            # occurrences — both must survive within one run.
            (root / "src" / "a.cpp").write_text(
                "int x = rand();\nint y = rand();\n", encoding="utf-8")
            run = {"tool": {"driver": {"name": "cimlint"}},
                   "results": [self._result(1), self._result(2)]}
            doc = {"version": "2.1.0", "runs": [run]}
            one = root / "one.sarif"
            two = root / "two.sarif"
            one.write_text(json.dumps(doc), encoding="utf-8")
            two.write_text(json.dumps(doc), encoding="utf-8")
            out = root / "merged.sarif"
            rc = merge_sarif.main([str(one), str(two),
                                   "--output", str(out),
                                   "--root", str(root)])
            self.assertEqual(rc, 0)
            merged = json.loads(out.read_text(encoding="utf-8"))
            counts = [len(r["results"]) for r in merged["runs"]]
            # Run 1 keeps both occurrences; run 2's copies are duplicates.
            self.assertEqual(counts, [2, 0])


class CallgraphResolution(unittest.TestCase):
    """Satellite: name resolution on overloaded / templated functions.

    Resolution is by last name and deliberately over-approximate: a call
    to `scale` resolves to *every* definition named scale, in sorted
    (path, line) order, and a templated definition is a node like any
    other. These tests pin that contract on the fixture.
    """

    @classmethod
    def setUpClass(cls):
        sys.path.insert(0, str(REPO / "tools"))
        from cimlint.callgraph import CallGraph
        from cimlint.index import build_index
        fixture = FIXTURES / "src" / "util" / "overload_resolve.cpp"
        cls.index = build_index(FIXTURES, [fixture], None)
        cls.graph = CallGraph(cls.index)

    def test_both_overloads_indexed(self):
        lines = sorted(f.line for f in self.index.all_functions()
                       if f.name == "scale")
        self.assertEqual(len(lines), 2)

    def test_templated_function_is_a_node(self):
        names = {f.name for f in self.index.all_functions()}
        self.assertIn("clamp_to", names)

    def test_call_resolves_to_every_overload_deterministically(self):
        (driver,) = [f for f in self.index.all_functions()
                     if f.name == "overload_driver"]
        callees = [(c.name, c.line) for c in self.graph.callees(driver)]
        scale_lines = [line for name, line in callees if name == "scale"]
        self.assertEqual(len(scale_lines), 2)
        self.assertEqual(scale_lines, sorted(scale_lines))
        self.assertIn("clamp_to", [name for name, _ in callees])


class StatsAndRulesDoc(unittest.TestCase):
    """Satellites: --stats JSON shape and the generated rule reference."""

    @classmethod
    def setUpClass(cls):
        sys.path.insert(0, str(REPO / "tools"))

    def test_stats_json_schema_and_phases(self):
        with tempfile.TemporaryDirectory() as tmp:
            stats_path = Path(tmp) / "stats.json"
            proc = run_lint("--root", str(FIXTURES), "--no-baseline",
                            "--no-index-cache", "--stats", str(stats_path))
            self.assertEqual(proc.returncode, 1, proc.stderr)
            data = json.loads(stats_path.read_text(encoding="utf-8"))
        self.assertEqual(data["schema_version"], 1)
        self.assertGreater(data["scanned_files"], 0)
        self.assertGreater(data["total_seconds"], 0)
        for phase in ("index", "cfg", "solve", "scan", "project"):
            self.assertIn(phase, data["phases"], data["phases"])
        for rule in EXPECTED_COUNTS:
            self.assertIn(rule, data["rules"])
            self.assertGreaterEqual(data["rules"][rule]["seconds"], 0.0)
        # Suppression-aware: the stats findings count what the scan kept.
        self.assertEqual(data["rules"]["lock-order-cycle"]["findings"], 1)
        self.assertEqual(data["rules"]["index-range-overflow"]["findings"],
                         1)

    def test_rules_md_fresh_and_check_detects_staleness(self):
        from cimlint import rulesdoc
        committed = (REPO / "tools" / "cimlint" / "RULES.md").read_text(
            encoding="utf-8")
        self.assertEqual(committed, rulesdoc.render(),
                         "RULES.md is stale — regenerate with "
                         "tools/lint.py --write-rules-md")
        with tempfile.TemporaryDirectory() as tmp:
            stale = Path(tmp) / "RULES.md"
            stale.write_text(committed + "tampered\n", encoding="utf-8")
            self.assertFalse(rulesdoc.check(stale))
            self.assertTrue(rulesdoc.check(
                REPO / "tools" / "cimlint" / "RULES.md"))

    def test_check_rules_md_cli_exit_codes(self):
        proc = run_lint("--check-rules-md")
        self.assertEqual(proc.returncode, 0, proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
