#include "ising/maxcut.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace cim::ising {
namespace {

TEST(MaxCut, CutValueByHand) {
  // Triangle with weights 1,2,3: best cut = 5 (isolate the 1-edge pair).
  MaxCutProblem tri("tri", 3, {{0, 1, 1}, {1, 2, 2}, {0, 2, 3}});
  EXPECT_EQ(tri.total_weight(), 6);
  const std::vector<Spin> split{1, 1, -1};  // cut edges (1,2) and (0,2)
  EXPECT_EQ(tri.cut_value(split), 5);
  const std::vector<Spin> all_same(3, 1);
  EXPECT_EQ(tri.cut_value(all_same), 0);
  EXPECT_EQ(brute_force_maxcut(tri), 5);
}

TEST(MaxCut, HamiltonianIdentity) {
  // cut = (W − Σwσσ)/2 via the Ising mapping, on random assignments.
  const auto problem = random_maxcut(12, 0.4, 1, 5, true);
  const IsingModel model = problem.to_ising();
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto spins = random_spins(12, rng);
    // H = −Σ Jσσ with J = −w, so H = Σ wσσ.
    const double h = model.hamiltonian(spins);
    EXPECT_EQ(problem.cut_from_hamiltonian(h), problem.cut_value(spins));
  }
}

TEST(MaxCut, RingOptimum) {
  // Even cycle: cut all n edges; odd cycle: n−1.
  EXPECT_EQ(brute_force_maxcut(ring_maxcut(8)), 8);
  EXPECT_EQ(brute_force_maxcut(ring_maxcut(9)), 8);
  EXPECT_EQ(brute_force_maxcut(ring_maxcut(12)), 12);
}

TEST(MaxCut, BipartiteIsFullyCuttable) {
  // K_{3,3}: all 9 edges cut at optimum.
  std::vector<WeightedEdge> edges;
  for (SpinIndex a = 0; a < 3; ++a) {
    for (SpinIndex b = 3; b < 6; ++b) edges.push_back({a, b, 1});
  }
  MaxCutProblem k33("k33", 6, std::move(edges));
  EXPECT_EQ(brute_force_maxcut(k33), 9);
}

TEST(MaxCut, GeneratorsProduceValidGraphs) {
  const auto g = random_maxcut(50, 0.1, 3, 4, true);
  EXPECT_EQ(g.size(), 50U);
  EXPECT_GT(g.edge_count(), 0U);
  EXPECT_GT(g.max_degree(), 0U);
  const auto k = complete_maxcut(20, 4);
  EXPECT_EQ(k.edge_count(), 20U * 19U / 2U);
  EXPECT_EQ(k.max_degree(), 19U);
}

TEST(MaxCut, GeneratorsAreDeterministic) {
  const auto a = random_maxcut(30, 0.3, 7, 3);
  const auto b = random_maxcut(30, 0.3, 7, 3);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.edge_count(); ++i) {
    EXPECT_EQ(a.edges()[i].a, b.edges()[i].a);
    EXPECT_EQ(a.edges()[i].w, b.edges()[i].w);
  }
}

TEST(MaxCut, GreedyReachesLocalOptimum) {
  const auto problem = random_maxcut(40, 0.2, 9, 3);
  std::vector<Spin> spins;
  const long long cut = greedy_maxcut(problem, 1, &spins);
  EXPECT_EQ(cut, problem.cut_value(spins));
  // Local optimality: no single flip improves.
  const IsingModel model = problem.to_ising();
  for (SpinIndex v = 0; v < 40; ++v) {
    EXPECT_GE(model.flip_delta(spins, v), 0.0);
  }
}

TEST(MaxCut, GreedyNearOptimalOnSmall) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto problem = random_maxcut(14, 0.4, 20 + seed, 5);
    const long long optimal = brute_force_maxcut(problem);
    long long best_greedy = 0;
    for (std::uint64_t restart = 0; restart < 8; ++restart) {
      best_greedy =
          std::max(best_greedy, greedy_maxcut(problem, restart));
    }
    EXPECT_GE(best_greedy * 10, optimal * 9);  // within 10%
    EXPECT_LE(best_greedy, optimal);
  }
}

TEST(MaxCut, Validation) {
  EXPECT_THROW(MaxCutProblem("bad", 1, {}), ConfigError);
  EXPECT_THROW(MaxCutProblem("bad", 3, {{0, 0, 1}}), ConfigError);
  EXPECT_THROW(MaxCutProblem("bad", 3, {{0, 5, 1}}), ConfigError);
  EXPECT_THROW(MaxCutProblem("bad", 3, {{0, 1, 0}}), ConfigError);
  EXPECT_THROW(random_maxcut(10, 0.0, 1), ConfigError);
  const auto big = random_maxcut(30, 0.5, 1);
  EXPECT_THROW(brute_force_maxcut(big), ConfigError);
}

}  // namespace
}  // namespace cim::ising
