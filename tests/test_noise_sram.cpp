#include "noise/sram_model.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "noise/monte_carlo.hpp"
#include "util/error.hpp"

namespace cim::noise {
namespace {

TEST(SramModel, ErrorRateMonotoneInVdd) {
  const SramCellModel model;
  double prev = 1.0;
  for (double vdd = 0.20; vdd <= 0.80 + 1e-9; vdd += 0.05) {
    const double rate = model.expected_error_rate(vdd);
    EXPECT_LE(rate, prev + 1e-12) << "vdd=" << vdd;
    prev = rate;
  }
}

TEST(SramModel, NominalSupplyIsErrorFree) {
  const SramCellModel model;
  EXPECT_LT(model.expected_error_rate(0.80), 1e-6);
}

TEST(SramModel, LowSupplyApproachesFiftyPercent) {
  const SramCellModel model;
  const double rate = model.expected_error_rate(0.18);
  EXPECT_GT(rate, 0.30);
  EXPECT_LE(rate, 0.50 + 1e-12);
}

TEST(SramModel, ScheduleWindowHasUsefulDynamicRange) {
  // The §V ramp (300 → 580 mV) must traverse from significant noise to
  // near-zero noise.
  const SramCellModel model;
  EXPECT_GT(model.expected_error_rate(0.30), 0.02);
  EXPECT_LT(model.expected_error_rate(0.58), 1e-3);
}

TEST(SramModel, HigherBlCapacitanceSharperTransition) {
  // Fig. 6(b): higher C_BL → sharper sigmoid. Compare the transition
  // width (vdd span between 5% and 40% error) of two capacitances.
  SramNoiseParams low_c;
  low_c.bl_cap_ff = 5.0;
  SramNoiseParams high_c;
  high_c.bl_cap_ff = 80.0;
  const SramCellModel low(low_c, 1);
  const SramCellModel high(high_c, 1);

  // A sharper sigmoid falls off faster: in the transition region the
  // high-C_BL curve sits strictly below the low-C_BL curve, while the two
  // agree at the extremes (0 at nominal, →50% at very low supply).
  for (double v = 0.25; v <= 0.50 + 1e-9; v += 0.05) {
    EXPECT_LT(high.expected_error_rate(v), low.expected_error_rate(v))
        << "vdd=" << v;
  }
  EXPECT_NEAR(high.expected_error_rate(0.15), low.expected_error_rate(0.15),
              0.02);
  EXPECT_NEAR(high.expected_error_rate(0.80), low.expected_error_rate(0.80),
              1e-6);
}

TEST(SramModel, SnmShrinksWithSupplyAndMismatch) {
  const SramCellModel model;
  EXPECT_GT(model.snm(0.8, 0.0), model.snm(0.4, 0.0));
  EXPECT_GT(model.snm(0.8, 0.0), model.snm(0.8, 0.1));
  EXPECT_DOUBLE_EQ(model.snm(0.1, 0.0), 0.0);  // clamped
}

TEST(SramModel, FlipProbabilityBounds) {
  const SramCellModel model;
  for (double dvth : {-0.2, -0.05, 0.0, 0.05, 0.2}) {
    for (double vdd : {0.2, 0.4, 0.6, 0.8}) {
      const double p = model.flip_probability(vdd, dvth);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(SramModel, TraitsAreDeterministicPerCell) {
  const SramCellModel model(SramNoiseParams{}, 42);
  const auto a = model.traits(1234);
  const auto b = model.traits(1234);
  EXPECT_EQ(a.delta_vth, b.delta_vth);
  EXPECT_EQ(a.preferred_bit, b.preferred_bit);
  const auto c = model.traits(1235);
  EXPECT_NE(a.delta_vth, c.delta_vth);
}

TEST(SramModel, TraitsPopulationStatistics) {
  const SramCellModel model(SramNoiseParams{}, 7);
  double sum = 0.0;
  double sum2 = 0.0;
  std::size_t preferred_ones = 0;
  constexpr int kCells = 20000;
  for (int c = 0; c < kCells; ++c) {
    const auto t = model.traits(static_cast<std::uint64_t>(c));
    sum += t.delta_vth;
    sum2 += t.delta_vth * t.delta_vth;
    preferred_ones += t.preferred_bit ? 1 : 0;
  }
  const double mean = sum / kCells;
  const double var = sum2 / kCells - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.002);
  EXPECT_NEAR(std::sqrt(var), model.params().sigma_vth, 0.002);
  EXPECT_NEAR(static_cast<double>(preferred_ones) / kCells, 0.5, 0.02);
}

TEST(SramModel, PreferredValueIsStable) {
  const SramCellModel model(SramNoiseParams{}, 3);
  for (std::uint64_t cell = 0; cell < 200; ++cell) {
    const auto t = model.traits(cell);
    // Writing the preferred value: never corrupted, at any supply.
    EXPECT_EQ(model.settled_value(cell, 0, 0.2, t.preferred_bit),
              t.preferred_bit);
  }
}

TEST(SramModel, FlipsGoTowardPreferredOnly) {
  const SramCellModel model(SramNoiseParams{}, 5);
  for (std::uint64_t cell = 0; cell < 500; ++cell) {
    const auto t = model.traits(cell);
    const bool anti = !t.preferred_bit;
    const bool settled = model.settled_value(cell, 1, 0.25, anti);
    // Either it stayed, or it flipped to the preferred value.
    EXPECT_TRUE(settled == anti || settled == t.preferred_bit);
  }
}

TEST(SramModel, SpatialPatternIsReproducible) {
  const SramCellModel model(SramNoiseParams{}, 11);
  for (std::uint64_t cell = 0; cell < 300; ++cell) {
    EXPECT_EQ(model.flips(cell, 4, 0.3), model.flips(cell, 4, 0.3));
  }
}

TEST(SramModel, EpochChangesDisturbance) {
  const SramCellModel model(SramNoiseParams{}, 13);
  std::size_t differing = 0;
  for (std::uint64_t cell = 0; cell < 2000; ++cell) {
    if (model.flips(cell, 0, 0.3) != model.flips(cell, 1, 0.3)) ++differing;
  }
  // Borderline cells flip in some epochs and not others, but the pattern
  // is mostly spatial (dominated by fixed ΔVth).
  EXPECT_GT(differing, 0U);
  EXPECT_LT(differing, 600U);
}

TEST(SramModel, InvalidParamsThrow) {
  SramNoiseParams bad;
  bad.sigma_vth = 0.0;
  EXPECT_THROW(SramCellModel(bad, 1), ConfigError);
  SramNoiseParams bad_cap;
  bad_cap.bl_cap_ff = 0.0;
  EXPECT_THROW(SramCellModel(bad_cap, 1), ConfigError);
}

TEST(MonteCarlo, MeasuredTracksAnalytic) {
  const SramCellModel model;
  SweepOptions options;
  options.samples = 4000;
  const auto points = error_rate_sweep(model, options);
  ASSERT_GT(points.size(), 8U);
  for (const auto& pt : points) {
    EXPECT_NEAR(pt.measured, pt.analytic, 0.035)
        << "vdd=" << pt.vdd;
  }
}

TEST(MonteCarlo, SweepCoversRequestedRange) {
  const SramCellModel model;
  SweepOptions options;
  options.samples = 100;
  const auto points = error_rate_sweep(model, options);
  EXPECT_NEAR(points.front().vdd, 0.80, 1e-9);
  EXPECT_NEAR(points.back().vdd, 0.20, 1e-9);
}

TEST(MonteCarlo, PaperSampleCountWorks) {
  // The paper uses 1000 Monte-Carlo samples per voltage.
  const SramCellModel model;
  SweepOptions options;
  options.samples = 1000;
  const auto points = error_rate_sweep(model, options);
  EXPECT_LT(points.front().measured, 0.01);  // 800 mV
  EXPECT_GT(points.back().measured, 0.25);   // 200 mV
}

TEST(MonteCarlo, InvalidOptionsThrow) {
  const SramCellModel model;
  SweepOptions bad;
  bad.samples = 0;
  EXPECT_THROW(error_rate_sweep(model, bad), ConfigError);
  SweepOptions reversed;
  reversed.vdd_start = 0.2;
  reversed.vdd_stop = 0.8;
  EXPECT_THROW(error_rate_sweep(model, reversed), ConfigError);
}

}  // namespace
}  // namespace cim::noise
