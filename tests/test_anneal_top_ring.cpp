#include "anneal/top_ring.hpp"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace cim::anneal {
namespace {

std::vector<geo::Point> random_centroids(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<geo::Point> pts(n);
  for (auto& p : pts) {
    p = {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
  }
  return pts;
}

double brute_force_best(const std::vector<geo::Point>& pts) {
  std::vector<std::uint32_t> perm(pts.size());
  std::iota(perm.begin(), perm.end(), 0U);
  double best = std::numeric_limits<double>::infinity();
  std::sort(perm.begin() + 1, perm.end());
  do {
    best = std::min(best, ring_length(pts, perm));
  } while (std::next_permutation(perm.begin() + 1, perm.end()));
  return best;
}

TEST(TopRing, IsAlwaysAPermutation) {
  for (std::size_t n : {1U, 2U, 3U, 4U, 6U, 7U, 8U, 15U}) {
    const auto pts = random_centroids(n, n * 3);
    const auto ring = order_top_ring(pts);
    ASSERT_EQ(ring.size(), n);
    std::vector<char> seen(n, 0);
    for (const auto v : ring) {
      ASSERT_LT(v, n);
      EXPECT_FALSE(seen[v]);
      seen[v] = 1;
    }
  }
}

class TopRingExhaustive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopRingExhaustive, OptimalForSmallTops) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto pts = random_centroids(n, 100 + seed);
    const auto ring = order_top_ring(pts);
    EXPECT_NEAR(ring_length(pts, ring), brute_force_best(pts), 1e-9)
        << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopRingExhaustive,
                         ::testing::Values<std::size_t>(4, 5, 6, 7));

TEST(TopRing, LargerTopsAreTwoOptClean) {
  const auto pts = random_centroids(12, 9);
  const auto ring = order_top_ring(pts);
  // 2-opt local optimality: no uncrossing move can improve.
  const double len = ring_length(pts, ring);
  for (std::size_t i = 0; i + 1 < ring.size(); ++i) {
    for (std::size_t j = i + 1; j < ring.size(); ++j) {
      auto candidate = ring;
      std::reverse(candidate.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                   candidate.begin() + static_cast<std::ptrdiff_t>(j) + 1);
      EXPECT_GE(ring_length(pts, candidate), len - 1e-9);
    }
  }
}

TEST(TopRing, RingLengthBasics) {
  const std::vector<geo::Point> square{{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  EXPECT_DOUBLE_EQ(ring_length(square, {0, 1, 2, 3}), 40.0);
  EXPECT_GT(ring_length(square, {0, 2, 1, 3}), 40.0);
  const std::vector<geo::Point> single{{5, 5}};
  EXPECT_DOUBLE_EQ(ring_length(single, {0}), 0.0);
}

}  // namespace
}  // namespace cim::anneal
