// Lightweight fuzzing: randomly mutated inputs and random operation
// sequences must never crash, corrupt state, or escape the typed
// exception hierarchy. (Deterministic seeds — these run in CI, not as an
// open-ended fuzzer.)
#include <gtest/gtest.h>

#include "cim/storage.hpp"
#include "noise/sram_model.hpp"
#include "tsp/tour_io.hpp"
#include "tsp/tsplib.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cim {
namespace {

const std::string kValidTsp =
    "NAME : fuzz\nTYPE : TSP\nDIMENSION : 5\nEDGE_WEIGHT_TYPE : EUC_2D\n"
    "NODE_COORD_SECTION\n1 0 0\n2 1 0\n3 2 1\n4 0 2\n5 3 3\nEOF\n";

/// Applies `count` random single-character mutations.
std::string mutate(const std::string& base, util::Rng& rng,
                   std::size_t count) {
  std::string text = base;
  for (std::size_t m = 0; m < count && !text.empty(); ++m) {
    const std::size_t pos = rng.below(text.size());
    switch (rng.below(3)) {
      case 0:  // replace
        text[pos] = static_cast<char>(rng.range(32, 126));
        break;
      case 1:  // delete
        text.erase(pos, 1);
        break;
      default:  // insert
        text.insert(pos, 1, static_cast<char>(rng.range(32, 126)));
    }
  }
  return text;
}

TEST(Fuzz, TsplibParserNeverEscapesTypedErrors) {
  util::Rng rng(0xF022);
  std::size_t parsed_ok = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const auto text = mutate(kValidTsp, rng, 1 + rng.below(8));
    try {
      const auto inst = tsp::parse_tsplib(text);
      // If it parsed, the instance must be internally consistent.
      EXPECT_GE(inst.size(), 1U);
      EXPECT_LE(inst.distance(0, 0), 0);
      ++parsed_ok;
    } catch (const Error&) {
      // Typed rejection is the expected outcome for most mutations.
    }
  }
  // Small mutations often leave the file valid; both paths must occur.
  EXPECT_GT(parsed_ok, 0U);
}

TEST(Fuzz, TourParserNeverEscapesTypedErrors) {
  const std::string valid =
      "TYPE : TOUR\nDIMENSION : 4\nTOUR_SECTION\n1\n2\n3\n4\n-1\nEOF\n";
  util::Rng rng(0xF033);
  for (int trial = 0; trial < 400; ++trial) {
    const auto text = mutate(valid, rng, 1 + rng.below(6));
    try {
      const auto tour = tsp::parse_tour(text);
      EXPECT_TRUE(tour.is_valid(tour.size()));
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, StorageRandomOperationSequences) {
  const noise::SramCellModel model(noise::SramNoiseParams{}, 0xF044);
  util::Rng rng(0xF055);
  for (int round = 0; round < 20; ++round) {
    const auto rows = static_cast<std::uint32_t>(rng.range(1, 24));
    const auto cols = static_cast<std::uint32_t>(rng.range(1, 16));
    const auto bits = static_cast<std::uint32_t>(rng.range(1, 8));
    auto storage = rng.chance(0.5)
                       ? hw::make_fast_storage(rows, cols, &model,
                                               rng(), bits)
                       : hw::make_bit_level_storage(rows, cols, &model,
                                                    rng(), bits);
    // Write a valid image first (write_back before write is a separate,
    // tested invariant).
    std::vector<std::uint8_t> image(
        static_cast<std::size_t>(rows) * cols);
    for (auto& w : image) {
      w = static_cast<std::uint8_t>(rng.below(1U << bits));
    }
    storage->write(image);

    for (int op = 0; op < 50; ++op) {
      switch (rng.below(3)) {
        case 0: {
          noise::SchedulePhase phase;
          phase.epoch = rng.below(16);
          phase.vdd = rng.uniform(0.18, 0.8);
          phase.noisy_lsbs = static_cast<unsigned>(rng.below(bits + 1));
          storage->write_back(phase);
          break;
        }
        case 1: {
          std::vector<std::uint8_t> input(rows);
          for (auto& b : input) b = rng.chance(0.5) ? 1 : 0;
          const auto col = static_cast<std::uint32_t>(rng.below(cols));
          const std::int64_t value = storage->mac(hw::ColIndex(col), input);
          EXPECT_GE(value, 0);
          EXPECT_LE(value, static_cast<std::int64_t>(rows) * 255);
          break;
        }
        default: {
          const auto r = static_cast<std::uint32_t>(rng.below(rows));
          const auto c = static_cast<std::uint32_t>(rng.below(cols));
          EXPECT_LT(storage->weight(hw::RowIndex(r), hw::ColIndex(c)), 1U << bits);
        }
      }
    }
  }
}

TEST(Fuzz, InstanceRoundTripUnderMutationSurvivors) {
  // Any mutated file the parser accepts must round-trip through the
  // writer (write → parse → identical distances).
  util::Rng rng(0xF066);
  for (int trial = 0; trial < 200; ++trial) {
    const auto text = mutate(kValidTsp, rng, 1 + rng.below(4));
    try {
      const auto inst = tsp::parse_tsplib(text);
      if (!inst.has_coords()) continue;
      const auto back = tsp::parse_tsplib(tsp::write_tsplib(inst));
      ASSERT_EQ(back.size(), inst.size());
      for (tsp::CityId a = 0; a < inst.size(); ++a) {
        for (tsp::CityId b = 0; b < inst.size(); ++b) {
          EXPECT_EQ(back.distance(a, b), inst.distance(a, b));
        }
      }
    } catch (const Error&) {
    }
  }
}

}  // namespace
}  // namespace cim
