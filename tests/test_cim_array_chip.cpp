#include <gtest/gtest.h>

#include "cim/array.hpp"
#include "cim/chip.hpp"
#include "cim/dataflow.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::hw {
namespace {

TEST(ArrayGeometry, PaperTable2CellCounts) {
  // Table II: array size (cell rows × bit columns) per p_max.
  ArrayGeometry p2;
  p2.p_max = 2;
  EXPECT_EQ(p2.cell_rows(), 40U);   // 5 windows × 8 rows
  EXPECT_EQ(p2.cell_cols(), 64U);   // 2 windows × 4 cols × 8 bits
  ArrayGeometry p3;
  p3.p_max = 3;
  EXPECT_EQ(p3.cell_rows(), 75U);   // 5 × 15
  EXPECT_EQ(p3.cell_cols(), 144U);  // 2 × 9 × 8
  ArrayGeometry p4;
  p4.p_max = 4;
  EXPECT_EQ(p4.cell_rows(), 120U);  // 5 × 24
  EXPECT_EQ(p4.cell_cols(), 256U);  // 2 × 16 × 8
}

TEST(CimArray, CycleMatchesPerWindowMacs) {
  ArrayGeometry geom;
  geom.p_max = 3;
  CimArray array(geom, Backend::kFast, nullptr, 0);
  util::Rng rng(1);
  const WindowShape shape = geom.window();

  // Load distinct random images into all 10 windows.
  std::vector<std::vector<std::uint8_t>> images;
  for (std::uint32_t wr = 0; wr < geom.window_rows; ++wr) {
    for (std::uint32_t wc = 0; wc < geom.window_cols; ++wc) {
      std::vector<std::uint8_t> image(shape.weights());
      for (auto& w : image) w = static_cast<std::uint8_t>(rng.below(256));
      array.window(wr, wc).write(image);
      images.push_back(image);
    }
  }

  std::vector<std::vector<std::uint8_t>> inputs(geom.window_rows);
  for (auto& input : inputs) {
    input.resize(shape.rows());
    for (auto& b : input) b = rng.chance(0.5) ? 1 : 0;
  }

  const std::uint32_t wcol = 1;
  const ColIndex cell_col{4};
  const auto results = array.cycle(wcol, cell_col, inputs);
  ASSERT_EQ(results.size(), geom.window_rows);
  for (std::uint32_t wr = 0; wr < geom.window_rows; ++wr) {
    std::int64_t expected = 0;
    const auto& image = images[wr * geom.window_cols + wcol];
    for (std::uint32_t r = 0; r < shape.rows(); ++r) {
      if (inputs[wr][r]) expected += image[r * shape.cols() + cell_col.get()];
    }
    EXPECT_EQ(results[wr], expected);
  }
  EXPECT_EQ(array.compute_cycles(), 1U);
}

TEST(CimArray, WriteBackAllPropagates) {
  const noise::SramCellModel model(noise::SramNoiseParams{}, 5);
  ArrayGeometry geom;
  geom.p_max = 2;
  CimArray array(geom, Backend::kFast, &model, 0);
  const WindowShape shape = geom.window();
  const std::vector<std::uint8_t> image(shape.weights(), 0xAA);
  for (std::uint32_t wr = 0; wr < geom.window_rows; ++wr) {
    for (std::uint32_t wc = 0; wc < geom.window_cols; ++wc) {
      array.window(wr, wc).write(image);
    }
  }
  noise::SchedulePhase phase;
  phase.vdd = 0.25;
  phase.noisy_lsbs = 6;
  array.write_back_all(phase);
  const auto counters = array.total_counters();
  EXPECT_EQ(counters.writeback_events, 10U);
  EXPECT_GT(counters.pseudo_read_flips, 0U);
}

TEST(CimArray, WindowsHaveDisjointNoise) {
  // Same image everywhere; corruption patterns must differ between
  // windows (distinct physical cells).
  const noise::SramCellModel model(noise::SramNoiseParams{}, 9);
  ArrayGeometry geom;
  geom.p_max = 3;
  CimArray array(geom, Backend::kFast, &model, 0);
  const WindowShape shape = geom.window();
  const std::vector<std::uint8_t> image(shape.weights(), 0x3C);
  for (std::uint32_t wr = 0; wr < geom.window_rows; ++wr) {
    for (std::uint32_t wc = 0; wc < geom.window_cols; ++wc) {
      array.window(wr, wc).write(image);
    }
  }
  noise::SchedulePhase phase;
  phase.vdd = 0.22;
  phase.noisy_lsbs = 6;
  array.write_back_all(phase);
  std::size_t differing = 0;
  for (std::uint32_t r = 0; r < shape.rows(); ++r) {
    for (std::uint32_t c = 0; c < shape.cols(); ++c) {
      if (array.window(0, 0).weight(RowIndex(r), ColIndex(c)) !=
          array.window(0, 1).weight(RowIndex(r), ColIndex(c))) {
        ++differing;
      }
    }
  }
  EXPECT_GT(differing, 0U);
}

TEST(ChipPlan, PaperCapacities) {
  // Table I / §VI headline numbers (8-bit weights).
  const auto mb = [](const ChipLayout& layout) {
    return static_cast<double>(layout.capacity_bits) / 1e6;
  };
  ChipConfig fixed2;
  fixed2.n_cities = 3038;
  fixed2.p = 2;
  fixed2.strategy = SizingStrategy::kFixed;
  EXPECT_NEAR(plan_chip(fixed2).capacity_bytes(), 48.6e3, 0.2e3);

  ChipConfig semi3;
  semi3.n_cities = 3038;
  semi3.p = 3;
  EXPECT_NEAR(plan_chip(semi3).capacity_bytes(), 205.1e3, 0.5e3);

  ChipConfig flagship;
  flagship.n_cities = 85900;
  flagship.p = 3;
  EXPECT_NEAR(mb(plan_chip(flagship)), 46.4, 0.1);  // the 46.4 Mb headline

  ChipConfig semi4;
  semi4.n_cities = 5915;
  semi4.p = 4;
  EXPECT_NEAR(plan_chip(semi4).capacity_bytes(), 908.5e3, 1e3);
}

TEST(ChipPlan, WindowAndArrayCounts) {
  ChipConfig config;
  config.n_cities = 85900;
  config.p = 3;
  const auto layout = plan_chip(config);
  EXPECT_EQ(layout.windows, 42950U);  // 2N/(1+p)
  EXPECT_EQ(layout.arrays, 4295U);    // 10 windows per array
}

TEST(ChipPlan, FixedStrategyWindows) {
  ChipConfig config;
  config.n_cities = 1000;
  config.p = 4;
  config.strategy = SizingStrategy::kFixed;
  const auto layout = plan_chip(config);
  EXPECT_EQ(layout.windows, 250U);
}

TEST(ChipPlan, InvalidConfigThrows) {
  ChipConfig bad;
  bad.n_cities = 0;
  EXPECT_THROW(plan_chip(bad), ConfigError);
}

TEST(Dataflow, CountsEvents) {
  DataflowTracker tracker;
  tracker.record_input_shift(3);
  tracker.record_input_shift(3);
  tracker.record_edge_transfer(UpdateParity::kSolid, 3);
  tracker.record_edge_transfer(UpdateParity::kDash, 3);
  tracker.record_edge_transfer(UpdateParity::kSolid, 3);
  EXPECT_EQ(tracker.input_shift_events(), 2U);
  EXPECT_EQ(tracker.input_bits_shifted(), 6U);
  EXPECT_EQ(tracker.downstream_transfers(), 2U);
  EXPECT_EQ(tracker.upstream_transfers(), 1U);
  EXPECT_EQ(tracker.edge_bits_transferred(), 9U);

  DataflowTracker other;
  other.record_input_shift(2);
  tracker += other;
  EXPECT_EQ(tracker.input_shift_events(), 3U);
}

TEST(Dataflow, OnlyEdgeDataCrossesArrays) {
  // The paper's claim (Fig. 5(e)): per update, exactly p bits cross each
  // array boundary — the transfer volume is independent of the window
  // height. Model a full iteration over 10 clusters of p=3.
  DataflowTracker tracker;
  constexpr std::uint32_t kP = 3;
  constexpr std::size_t kClusters = 10;
  for (std::size_t c = 0; c < kClusters; ++c) {
    const auto parity =
        c % 2 == 0 ? UpdateParity::kSolid : UpdateParity::kDash;
    tracker.record_edge_transfer(parity, kP);
  }
  EXPECT_EQ(tracker.edge_bits_transferred(), kClusters * kP);
  // Far less than moving whole windows ((p²+2p)·p²·8 bits each).
  EXPECT_LT(tracker.edge_bits_transferred(),
            kClusters * (kP * kP + 2 * kP) * kP * kP * 8 / 100);
}

}  // namespace
}  // namespace cim::hw
