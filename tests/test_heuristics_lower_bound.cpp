#include "heuristics/lower_bound.hpp"

#include <gtest/gtest.h>

#include "heuristics/exact.hpp"
#include "heuristics/reference.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::heuristics {
namespace {

TEST(LowerBound, MstWeightByHand) {
  // Path 0-1-2 on a line: MST = 10 + 10.
  const tsp::Instance line("line", geo::Metric::kEuc2D,
                           {{0, 0}, {10, 0}, {20, 0}});
  EXPECT_DOUBLE_EQ(mst_weight(line), 20.0);
}

TEST(LowerBound, MstIsBelowOptimalTour) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto inst = test::random_instance(10, 300 + seed);
    const auto optimal = held_karp(inst);
    EXPECT_LT(mst_weight(inst),
              static_cast<double>(optimal.length(inst)) + 1e-9);
  }
}

class BoundSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BoundSizes, BoundIsValidAndTight) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto inst = test::random_instance(n, 400 + seed * 7 + n);
    const auto optimal = held_karp(inst);
    const auto opt_len = static_cast<double>(optimal.length(inst));
    const auto lb = held_karp_lower_bound(inst);
    // Valid: never above the optimum (rounding slack of 1 per edge).
    EXPECT_LE(lb.bound, opt_len + 1e-6) << "n=" << n << " seed=" << seed;
    // Tight: ascent reaches >= 90% of optimum on small Euclidean sets.
    EXPECT_GE(lb.bound, 0.90 * opt_len) << "n=" << n << " seed=" << seed;
    // Ascent never loses to the plain 1-tree.
    EXPECT_GE(lb.bound, lb.plain_one_tree - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BoundSizes,
                         ::testing::Values<std::size_t>(6, 9, 12, 15));

TEST(LowerBound, AscentImprovesPlainOneTree) {
  const auto inst = test::random_instance(60, 11);
  LowerBoundOptions no_ascent;
  no_ascent.iterations = 0;
  const auto plain = held_karp_lower_bound(inst, no_ascent);
  const auto full = held_karp_lower_bound(inst);
  EXPECT_GT(full.bound, plain.bound);
}

TEST(LowerBound, CircleBoundIsNearExact) {
  // On a circle the optimal tour is the hull; the HK bound is very tight.
  const auto inst = test::circle_instance(40);
  const auto lb = held_karp_lower_bound(inst);
  const auto opt = static_cast<double>(test::identity_length(inst));
  EXPECT_GE(lb.bound, 0.97 * opt);
  EXPECT_LE(lb.bound, opt + 1e-6);
}

TEST(LowerBound, BracketsHeuristicReference) {
  // bound ≤ optimum ≤ reference: the certified sandwich used to validate
  // optimal ratios on synthetic instances.
  const auto inst = test::random_instance(300, 13);
  const auto reference = compute_heuristic_reference(inst);
  const auto lb = held_karp_lower_bound(inst);
  EXPECT_LE(lb.bound, static_cast<double>(reference.length));
  // And the reference is within a few percent of the bound.
  EXPECT_LE(static_cast<double>(reference.length), 1.10 * lb.bound);
}

TEST(LowerBound, SizeLimitEnforced) {
  const auto inst = test::random_instance(50, 14);
  LowerBoundOptions options;
  options.max_cities = 10;
  EXPECT_THROW(held_karp_lower_bound(inst, options), ConfigError);
}

TEST(LowerBound, ExplicitMatrixSupported) {
  const auto base = test::random_instance(12, 15);
  const auto expl = test::to_explicit(base);
  const auto a = held_karp_lower_bound(base);
  const auto b = held_karp_lower_bound(expl);
  EXPECT_NEAR(a.bound, b.bound, 1e-9);
}

}  // namespace
}  // namespace cim::heuristics
