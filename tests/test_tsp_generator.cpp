#include "tsp/generator.hpp"

#include <set>

#include <gtest/gtest.h>

#include "geo/kdtree.hpp"
#include "util/error.hpp"

namespace cim::tsp {
namespace {

bool all_distinct(const Instance& inst) {
  std::set<std::pair<double, double>> seen;
  for (const geo::Point p : inst.coords()) {
    if (!seen.insert({p.x, p.y}).second) return false;
  }
  return true;
}

TEST(Generator, UniformSizeAndBounds) {
  const auto inst = generate_uniform(500, 1, 100.0);
  EXPECT_EQ(inst.size(), 500U);
  for (const geo::Point p : inst.coords()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 101.0);  // distinctness jitter can push slightly past
  }
}

TEST(Generator, Deterministic) {
  const auto a = generate_uniform(100, 7);
  const auto b = generate_uniform(100, 7);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.coord(static_cast<CityId>(i)).x,
              b.coord(static_cast<CityId>(i)).x);
  }
}

TEST(Generator, SeedsDiffer) {
  const auto a = generate_uniform(100, 7);
  const auto b = generate_uniform(100, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < 100; ++i) {
    any_diff |= a.coord(static_cast<CityId>(i)).x !=
                b.coord(static_cast<CityId>(i)).x;
  }
  EXPECT_TRUE(any_diff);
}

class GeneratorFamilies
    : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorFamilies, ProducesValidDistinctInstances) {
  const std::string prefix = GetParam();
  const auto inst = make_paper_instance(prefix + "700");
  EXPECT_EQ(inst.size(), 700U);
  EXPECT_TRUE(inst.has_coords());
  EXPECT_TRUE(all_distinct(inst));
}

INSTANTIATE_TEST_SUITE_P(Families, GeneratorFamilies,
                         ::testing::Values("pcb", "rl", "pla", "geo",
                                           "uniform"));

TEST(Generator, NamedPaperInstancesHaveCorrectSizes) {
  EXPECT_EQ(make_paper_instance("pcb3038").size(), 3038U);
  EXPECT_EQ(make_paper_instance("rl5915").size(), 5915U);
  EXPECT_EQ(make_paper_instance("rl5934").size(), 5934U);
}

TEST(Generator, NamedInstanceDeterministicByName) {
  const auto a = make_paper_instance("pcb442");
  const auto b = make_paper_instance("pcb442");
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.coord(static_cast<CityId>(i)).x,
              b.coord(static_cast<CityId>(i)).x);
  }
}

TEST(Generator, UnknownFamilyThrows) {
  EXPECT_THROW(make_paper_instance("zzz123"), ConfigError);
  EXPECT_THROW(make_paper_instance("noNumber"), ConfigError);
}

TEST(Generator, ClusteredIsMoreClusteredThanUniform) {
  // Mean nearest-neighbour distance is smaller (relative to extent) for
  // clustered point sets of the same cardinality.
  const auto uniform = generate_uniform(800, 3, 10000.0);
  const auto clustered = generate_clustered(800, 8, 3, 10000.0);
  const auto mean_nn = [](const Instance& inst) {
    const geo::KdTree tree(inst.coords());
    double acc = 0.0;
    for (std::size_t i = 0; i < inst.size(); ++i) {
      const auto nn = tree.nearest(inst.coord(static_cast<CityId>(i)), i);
      acc += geo::euclidean(inst.coord(static_cast<CityId>(i)),
                            inst.coord(static_cast<CityId>(nn)));
    }
    return acc / static_cast<double>(inst.size());
  };
  EXPECT_LT(mean_nn(clustered), mean_nn(uniform));
}

TEST(Generator, DrillGridIsGridAligned) {
  // A large share of point pairs in a drill pattern share an x or y
  // coordinate (grid alignment); uniform instances essentially never do.
  const auto drill = generate_drill_grid(400, 5);
  std::size_t aligned = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t j = i + 1; j < 200; ++j) {
      const auto a = drill.coord(static_cast<CityId>(i));
      const auto b = drill.coord(static_cast<CityId>(j));
      if (a.x == b.x || a.y == b.y) ++aligned;
    }
  }
  EXPECT_GT(aligned, 50U);
}

TEST(Generator, InvalidSizesThrow) {
  EXPECT_THROW(generate_uniform(0, 1), ConfigError);
  EXPECT_THROW(generate_clustered(10, 0, 1), ConfigError);
}

TEST(Generator, HaveRealTsplibFalseWithoutEnv) {
  ::unsetenv("CIMANNEAL_TSPLIB_DIR");
  EXPECT_FALSE(have_real_tsplib("pcb3038"));
}

}  // namespace
}  // namespace cim::tsp
