#include "tsp/tour_io.hpp"

#include <cstdio>

#include <gtest/gtest.h>

#include "heuristics/construct.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::tsp {
namespace {

TEST(TourIo, RoundTrip) {
  const auto inst = test::random_instance(50, 1);
  const auto tour = heuristics::random_tour(inst, 2);
  const std::string text = write_tour(tour, "t50");
  const Tour back = parse_tour(text, 50);
  EXPECT_EQ(back, tour);
}

TEST(TourIo, FormatStructure) {
  const Tour tour({2, 0, 1});
  const std::string text = write_tour(tour, "tiny");
  EXPECT_NE(text.find("TYPE : TOUR"), std::string::npos);
  EXPECT_NE(text.find("DIMENSION : 3"), std::string::npos);
  EXPECT_NE(text.find("TOUR_SECTION\n3\n1\n2\n-1"), std::string::npos);
}

TEST(TourIo, ParsesMultipleIdsPerLine) {
  const Tour back =
      parse_tour("TYPE : TOUR\nTOUR_SECTION\n1 2 3\n4 -1\nEOF\n", 4);
  EXPECT_EQ(back, Tour({0, 1, 2, 3}));
}

TEST(TourIo, MissingSectionThrows) {
  EXPECT_THROW(parse_tour("TYPE : TOUR\n1 2 3\n-1\n"), ParseError);
}

TEST(TourIo, DimensionMismatchThrows) {
  EXPECT_THROW(
      parse_tour("DIMENSION : 5\nTOUR_SECTION\n1 2 3\n-1\nEOF\n"),
      ParseError);
}

TEST(TourIo, NotAPermutationThrows) {
  EXPECT_THROW(parse_tour("TOUR_SECTION\n1 1 2\n-1\nEOF\n", 3), ParseError);
  EXPECT_THROW(parse_tour("TOUR_SECTION\n1 2\n-1\nEOF\n", 3), ParseError);
  EXPECT_THROW(parse_tour("TOUR_SECTION\n0 1 2\n-1\nEOF\n", 3), ParseError);
}

TEST(TourIo, EmptyTourThrows) {
  EXPECT_THROW(parse_tour("TOUR_SECTION\n-1\nEOF\n"), ParseError);
}

TEST(TourIo, FileRoundTrip) {
  const auto inst = test::random_instance(20, 3);
  const auto tour = heuristics::random_tour(inst, 4);
  const std::string path = "/tmp/cimanneal_test_tour.tour";
  save_tour(tour, "t20", path);
  const Tour back = load_tour(path, 20);
  EXPECT_EQ(back, tour);
  std::remove(path.c_str());
}

TEST(TourIo, MissingFileThrows) {
  EXPECT_THROW(load_tour("/no/such/file.tour"), Error);
}

}  // namespace
}  // namespace cim::tsp
