#include "ising/tsp_hamiltonian.hpp"

#include <gtest/gtest.h>

#include "heuristics/construct.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::ising {
namespace {

TEST(TspHamiltonian, ObjectiveEqualsTourLength) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = test::random_instance(8, 200 + seed);
    const TspHamiltonian h(inst);
    const auto tour = heuristics::random_tour(inst, seed);
    const auto sigma = h.assignment_from_tour(tour);
    EXPECT_DOUBLE_EQ(h.objective(sigma),
                     static_cast<double>(tour.length(inst)));
  }
}

TEST(TspHamiltonian, FeasibleAssignmentHasZeroPenalty) {
  const auto inst = test::random_instance(6, 1);
  const TspHamiltonian h(inst);
  const auto sigma =
      h.assignment_from_tour(heuristics::random_tour(inst, 3));
  EXPECT_TRUE(h.feasible(sigma));
  EXPECT_DOUBLE_EQ(h.penalty(sigma), 0.0);
  EXPECT_DOUBLE_EQ(h.energy(sigma), h.objective(sigma));
}

TEST(TspHamiltonian, InfeasiblePenaltyDominates) {
  const auto inst = test::random_instance(5, 2);
  const TspHamiltonian h(inst);
  auto sigma = h.assignment_from_tour(tsp::Tour::identity(5));
  // Visit city 3 twice (also at order 0).
  sigma[TspHamiltonian::spin_index(0, 3, 5)] = 1;
  EXPECT_FALSE(h.feasible(sigma));
  EXPECT_GT(h.penalty(sigma), 0.0);
  // The auto-scaled b/c penalties exceed any single tour edge.
  EXPECT_GT(h.penalty(sigma),
            static_cast<double>(inst.distance_upper_bound()));
}

TEST(TspHamiltonian, AllZeroAssignmentPenalty) {
  const auto inst = test::random_instance(4, 3);
  const TspHamiltonian h(inst, {1.0, 10.0, 20.0});
  const std::vector<std::uint8_t> sigma(16, 0);
  // Each of the 4 order rows and 4 city columns misses its one-hot by 1.
  EXPECT_DOUBLE_EQ(h.penalty(sigma), 4.0 * 10.0 + 4.0 * 20.0);
}

TEST(TspHamiltonian, TourRoundTrip) {
  const auto inst = test::random_instance(9, 4);
  const TspHamiltonian h(inst);
  const auto tour = heuristics::random_tour(inst, 9);
  const auto sigma = h.assignment_from_tour(tour);
  const auto back = h.tour_from_assignment(sigma);
  EXPECT_EQ(back, tour);
}

TEST(TspHamiltonian, InfeasibleRoundTripThrows) {
  const auto inst = test::random_instance(4, 5);
  const TspHamiltonian h(inst);
  const std::vector<std::uint8_t> sigma(16, 0);
  EXPECT_THROW(h.tour_from_assignment(sigma), ConfigError);
}

TEST(TspHamiltonian, LocalEnergyIsAdjacentDistanceSum) {
  const auto inst = test::random_instance(7, 6);
  const TspHamiltonian h(inst);
  const auto tour = heuristics::random_tour(inst, 11);
  const auto sigma = h.assignment_from_tour(tour);
  for (std::size_t order = 0; order < 7; ++order) {
    const tsp::CityId city = tour.at(order);
    const tsp::CityId prev = tour.predecessor(order);
    const tsp::CityId next = tour.successor(order);
    const double expected = static_cast<double>(
        inst.distance(city, prev) + inst.distance(city, next));
    EXPECT_DOUBLE_EQ(h.local_energy(sigma, order, city), expected);
  }
}

TEST(TspHamiltonian, LocalEnergyZeroForUnsetSpin) {
  const auto inst = test::random_instance(5, 7);
  const TspHamiltonian h(inst);
  const auto sigma = h.assignment_from_tour(tsp::Tour::identity(5));
  // Spin (0, 3) is 0 in the identity assignment (city 0 is at order 0).
  EXPECT_DOUBLE_EQ(h.local_energy(sigma, 0, 3), 0.0);
}

TEST(TspHamiltonian, SwapDeltaViaLocalEnergies) {
  // The paper's 4-spin swap evaluation: ΔH = H(σ'_il)+H(σ'_jk)
  // −H(σ_ik)−H(σ_jl) must equal the true objective change.
  const auto inst = test::random_instance(10, 8);
  const TspHamiltonian h(inst);
  util::Rng rng(12);
  for (int trial = 0; trial < 30; ++trial) {
    auto tour = heuristics::random_tour(inst, 100 + trial);
    auto sigma = h.assignment_from_tour(tour);
    const double before_obj = h.objective(sigma);

    const auto i = static_cast<std::size_t>(rng.below(10));
    auto j = static_cast<std::size_t>(rng.below(9));
    if (j >= i) ++j;
    const tsp::CityId k = tour.at(i);
    const tsp::CityId l = tour.at(j);

    const double e_before =
        h.local_energy(sigma, i, k) + h.local_energy(sigma, j, l);

    auto& order = tour.mutable_order();
    std::swap(order[i], order[j]);
    auto sigma_after = h.assignment_from_tour(tour);
    const double e_after = h.local_energy(sigma_after, i, l) +
                           h.local_energy(sigma_after, j, k);

    const double after_obj = h.objective(sigma_after);
    EXPECT_NEAR(e_after - e_before, after_obj - before_obj, 1e-9)
        << "i=" << i << " j=" << j;
  }
}

TEST(TspHamiltonian, SpinCountScalesQuadratically) {
  const auto inst = test::random_instance(12, 13);
  const TspHamiltonian h(inst);
  EXPECT_EQ(h.spins(), 144U);
  EXPECT_EQ(h.cities(), 12U);
}

}  // namespace
}  // namespace cim::ising
