#include "anneal/tempering.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "anneal/maxcut_annealer.hpp"

#include "util/error.hpp"

namespace cim::anneal {
namespace {

TemperingConfig base_config() {
  TemperingConfig config;
  config.replicas = 6;
  config.sweeps = 150;
  config.seed = 1;
  return config;
}

TEST(Tempering, LadderIsGeometricAndOrdered) {
  const auto problem = ising::random_maxcut(30, 0.2, 1, 3);
  TemperingResult details;
  ParallelTempering(base_config()).solve_maxcut(problem, &details);
  ASSERT_EQ(details.temperatures.size(), 6U);
  for (std::size_t r = 1; r < details.temperatures.size(); ++r) {
    EXPECT_LT(details.temperatures[r], details.temperatures[r - 1]);
  }
  const double ratio0 = details.temperatures[1] / details.temperatures[0];
  const double ratio1 = details.temperatures[2] / details.temperatures[1];
  EXPECT_NEAR(ratio0, ratio1, 1e-9);
}

TEST(Tempering, FindsOptimumOnSmallProblems) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto problem = ising::random_maxcut(14, 0.4, 40 + seed, 4);
    const long long optimal = ising::brute_force_maxcut(problem);
    auto config = base_config();
    config.seed = seed + 1;
    const long long cut =
        ParallelTempering(config).solve_maxcut(problem);
    EXPECT_EQ(cut, optimal) << "seed " << seed;
  }
}

TEST(Tempering, BipartiteFullCut) {
  std::vector<ising::WeightedEdge> edges;
  for (ising::SpinIndex a = 0; a < 10; ++a) {
    for (ising::SpinIndex b = 10; b < 20; ++b) edges.push_back({a, b, 1});
  }
  const ising::MaxCutProblem k("k1010", 20, std::move(edges));
  EXPECT_EQ(ParallelTempering(base_config()).solve_maxcut(k), 100);
}

TEST(Tempering, ExchangesHappenAtHealthyRate) {
  const auto problem = ising::random_maxcut(60, 0.1, 7, 3);
  TemperingResult details;
  ParallelTempering(base_config()).solve_maxcut(problem, &details);
  EXPECT_GT(details.exchanges_attempted, 0U);
  // A reasonable ladder accepts a meaningful fraction of exchanges.
  EXPECT_GT(details.exchange_rate(), 0.1);
  EXPECT_LE(details.exchange_rate(), 1.0);
}

TEST(Tempering, BestEnergyMatchesBestSpins) {
  const auto problem = ising::random_maxcut(40, 0.2, 9, 2);
  const ising::IsingModel model = problem.to_ising();
  TemperingResult details;
  ParallelTempering(base_config()).solve_maxcut(problem, &details);
  EXPECT_NEAR(model.hamiltonian(details.best_spins), details.best_energy,
              1e-9);
  EXPECT_EQ(details.final_energies.size(), 6U);
}

TEST(Tempering, DeterministicPerSeed) {
  const auto problem = ising::random_maxcut(50, 0.15, 11, 3);
  const long long a = ParallelTempering(base_config()).solve_maxcut(problem);
  const long long b = ParallelTempering(base_config()).solve_maxcut(problem);
  EXPECT_EQ(a, b);
}

TEST(Tempering, BeatsOrMatchesSingleTemperatureAnnealing) {
  // PT's whole point: on rugged instances the exchange ladder beats the
  // same budget spent at one temperature. Compare total-sweep-matched
  // budgets over a few seeds.
  long long pt_total = 0;
  long long sa_total = 0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto problem = ising::complete_maxcut(48, 70 + seed);
    auto pt_config = base_config();
    pt_config.seed = seed + 1;
    pt_total += ParallelTempering(pt_config).solve_maxcut(problem);

    MaxCutConfig sa_config;
    sa_config.schedule.total_iterations =
        pt_config.sweeps * pt_config.replicas;
    sa_config.schedule.iterations_per_step =
        sa_config.schedule.total_iterations / 8;
    sa_config.seed = seed + 1;
    sa_total += MaxCutAnnealer(sa_config).solve(problem).best_cut;
  }
  EXPECT_GE(pt_total, sa_total);
}

TEST(Tempering, InvalidConfigsThrow) {
  TemperingConfig zero;
  zero.replicas = 0;
  EXPECT_THROW(ParallelTempering{zero}, ConfigError);
  TemperingConfig inverted = base_config();
  inverted.t_cold_factor = 2.0;
  EXPECT_THROW(ParallelTempering{inverted}, ConfigError);
  TemperingConfig no_sweeps = base_config();
  no_sweeps.sweeps = 0;
  EXPECT_THROW(ParallelTempering{no_sweeps}, ConfigError);
}

TEST(Tempering, SingleReplicaLadderIsFiniteHotTemperature) {
  // Regression: the geometric-decay exponent divides by replicas - 1, so
  // replicas == 1 used to produce a NaN/inf ladder that silently poisoned
  // every acceptance test. The degenerate ladder is {hot}.
  auto config = base_config();
  config.replicas = 1;
  config.sweeps = 40;
  const auto problem = ising::random_maxcut(20, 0.3, 5, 3);
  TemperingResult details;
  ParallelTempering(config).solve_maxcut(problem, &details);
  ASSERT_EQ(details.temperatures.size(), 1U);
  EXPECT_TRUE(std::isfinite(details.temperatures[0]));
  EXPECT_GT(details.temperatures[0], 0.0);
  // The single temperature equals the hot anchor of a multi-replica run
  // with the same config (ladder entry 0 is always hot).
  auto multi = config;
  multi.replicas = 4;
  TemperingResult multi_details;
  ParallelTempering(multi).solve_maxcut(problem, &multi_details);
  EXPECT_DOUBLE_EQ(details.temperatures[0], multi_details.temperatures[0]);
  // And the degenerate run still anneals: energies are finite and a best
  // state was tracked.
  ASSERT_EQ(details.final_energies.size(), 1U);
  EXPECT_TRUE(std::isfinite(details.final_energies[0]));
  EXPECT_TRUE(std::isfinite(details.best_energy));
  EXPECT_EQ(details.best_spins.size(), 20U);
  // No exchange partner exists, so no exchanges may be attempted.
  EXPECT_EQ(details.exchanges_attempted, 0U);
}

}  // namespace
}  // namespace cim::anneal
