#include "cluster/hierarchy.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tsp/generator.hpp"
#include "util/error.hpp"

namespace cim::cluster {
namespace {

struct Case {
  Strategy strategy;
  std::size_t p;
  std::size_t n;
};

class HierarchyCases : public ::testing::TestWithParam<Case> {};

TEST_P(HierarchyCases, PartitionIsValidAtEveryLevel) {
  const auto [strategy, p, n] = GetParam();
  const auto inst = test::random_instance(n, n * 7 + p);
  Options options;
  options.strategy = strategy;
  options.p = p;
  const Hierarchy h(inst, options);
  EXPECT_NO_THROW(h.validate());
  EXPECT_GE(h.depth(), 1U);
  EXPECT_LE(h.top().clusters.size(), options.top_size);
}

TEST_P(HierarchyCases, SizeConstraintsHold) {
  const auto [strategy, p, n] = GetParam();
  const auto inst = test::random_instance(n, n * 11 + p);
  Options options;
  options.strategy = strategy;
  options.p = p;
  const Hierarchy h(inst, options);
  if (strategy == Strategy::kFixed) {
    // All but at most one cluster per level has exactly p members.
    for (std::size_t k = 0; k < h.depth(); ++k) {
      std::size_t ragged = 0;
      for (const Cluster& c : h.level(k).clusters) {
        if (c.members.size() != p) ++ragged;
      }
      if (h.level(k).clusters.size() > 1 &&
          h.level(k).clusters.size() * p >= p) {
        EXPECT_LE(ragged, 1U + (k > 0 ? 1U : 0U));
      }
    }
  }
  if (strategy == Strategy::kSemiFlexible) {
    EXPECT_LE(h.max_cluster_size(), p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, HierarchyCases,
    ::testing::Values(Case{Strategy::kFixed, 2, 200},
                      Case{Strategy::kFixed, 3, 333},
                      Case{Strategy::kFixed, 4, 500},
                      Case{Strategy::kSemiFlexible, 2, 200},
                      Case{Strategy::kSemiFlexible, 3, 500},
                      Case{Strategy::kSemiFlexible, 4, 1000},
                      Case{Strategy::kUnlimited, 2, 300}));

TEST(Hierarchy, SemiFlexMeanSizeNearTarget) {
  const auto inst = test::random_instance(1200, 17);
  Options options;
  options.strategy = Strategy::kSemiFlexible;
  options.p = 3;
  const Hierarchy h(inst, options);
  // Mean (1+p)/2 = 2 with some tolerance (stalls, top level).
  EXPECT_GT(h.mean_cluster_size(), 1.5);
  EXPECT_LE(h.mean_cluster_size(), 3.0);
}

TEST(Hierarchy, DepthGrowsLogarithmically) {
  Options options;
  options.strategy = Strategy::kSemiFlexible;
  options.p = 3;
  const Hierarchy small(test::random_instance(100, 1), options);
  const Hierarchy large(test::random_instance(2000, 2), options);
  EXPECT_GT(large.depth(), small.depth());
  EXPECT_LE(large.depth(), 16U);
}

TEST(Hierarchy, TinyInstanceSingletons) {
  const auto inst = test::random_instance(3, 3);
  Options options;
  options.top_size = 4;
  const Hierarchy h(inst, options);
  EXPECT_EQ(h.depth(), 1U);
  EXPECT_EQ(h.level(0).clusters.size(), 3U);
  EXPECT_NO_THROW(h.validate());
}

TEST(Hierarchy, CitiesOfFlattensCorrectCounts) {
  const auto inst = test::random_instance(400, 23);
  Options options;
  options.strategy = Strategy::kSemiFlexible;
  options.p = 4;
  const Hierarchy h(inst, options);
  for (std::size_t k = 0; k < h.depth(); ++k) {
    std::size_t total = 0;
    for (std::uint32_t c = 0; c < h.level(k).clusters.size(); ++c) {
      const auto cities = h.cities_of(k, c);
      EXPECT_EQ(cities.size(), h.level(k).clusters[c].city_count);
      total += cities.size();
    }
    EXPECT_EQ(total, 400U);
  }
}

TEST(Hierarchy, CentroidInsideBoundingBox) {
  const auto inst = test::random_instance(300, 29);
  Options options;
  const Hierarchy h(inst, options);
  const auto box = geo::bounding_box(inst.coords());
  for (std::size_t k = 0; k < h.depth(); ++k) {
    for (const Cluster& c : h.level(k).clusters) {
      EXPECT_GE(c.centroid.x, box.lo.x - 1e-9);
      EXPECT_LE(c.centroid.x, box.hi.x + 1e-9);
      EXPECT_GE(c.centroid.y, box.lo.y - 1e-9);
      EXPECT_LE(c.centroid.y, box.hi.y + 1e-9);
    }
  }
}

TEST(Hierarchy, DeterministicForSeed) {
  const auto inst = test::random_instance(250, 31);
  Options options;
  options.seed = 5;
  const Hierarchy a(inst, options);
  const Hierarchy b(inst, options);
  ASSERT_EQ(a.depth(), b.depth());
  for (std::size_t k = 0; k < a.depth(); ++k) {
    ASSERT_EQ(a.level(k).clusters.size(), b.level(k).clusters.size());
    for (std::size_t c = 0; c < a.level(k).clusters.size(); ++c) {
      EXPECT_EQ(a.level(k).clusters[c].members,
                b.level(k).clusters[c].members);
    }
  }
}

TEST(Hierarchy, ExplicitInstanceThrows) {
  const auto expl = test::to_explicit(test::random_instance(10, 1));
  EXPECT_THROW(Hierarchy(expl, Options{}), ConfigError);
}

TEST(Hierarchy, BadOptionsThrow) {
  const auto inst = test::random_instance(10, 2);
  Options bad_top;
  bad_top.top_size = 1;
  EXPECT_THROW(Hierarchy(inst, bad_top), ConfigError);
  Options bad_p;
  bad_p.strategy = Strategy::kFixed;
  bad_p.p = 0;
  EXPECT_THROW(Hierarchy(inst, bad_p), ConfigError);
}

TEST(Hierarchy, StrategyNames) {
  EXPECT_STREQ(strategy_name(Strategy::kUnlimited), "unlimited");
  EXPECT_STREQ(strategy_name(Strategy::kFixed), "fixed");
  EXPECT_STREQ(strategy_name(Strategy::kSemiFlexible), "semi-flexible");
}

TEST(Hierarchy, PaperInstanceSmokeTest) {
  const auto inst = tsp::make_paper_instance("pcb442");
  Options options;
  options.strategy = Strategy::kSemiFlexible;
  options.p = 3;
  const Hierarchy h(inst, options);
  EXPECT_NO_THROW(h.validate());
  EXPECT_LE(h.max_cluster_size(), 3U);
}

}  // namespace
}  // namespace cim::cluster
