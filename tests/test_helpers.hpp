// Shared fixtures and builders for the cimanneal test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.hpp"
#include "tsp/instance.hpp"
#include "tsp/tour.hpp"
#include "util/random.hpp"

namespace cim::test {

/// Uniform random EUC_2D instance with a fixed seed.
inline tsp::Instance random_instance(std::size_t n, std::uint64_t seed,
                                     double extent = 1000.0) {
  util::Rng rng(seed);
  std::vector<geo::Point> pts(n);
  for (auto& p : pts) {
    p = {rng.uniform(0.0, extent), rng.uniform(0.0, extent)};
  }
  return tsp::Instance("rand" + std::to_string(n), geo::Metric::kEuc2D,
                       std::move(pts));
}

/// Cities on a w×h unit grid (known optimal structure for even w or h:
/// boustrophedon tour of length w*h when spacing is 1... used for sanity,
/// not exact checks).
inline tsp::Instance grid_instance(std::size_t w, std::size_t h,
                                   double spacing = 10.0) {
  std::vector<geo::Point> pts;
  pts.reserve(w * h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      pts.push_back({static_cast<double>(x) * spacing,
                     static_cast<double>(y) * spacing});
    }
  }
  return tsp::Instance("grid" + std::to_string(w) + "x" + std::to_string(h),
                       geo::Metric::kEuc2D, std::move(pts));
}

/// Cities evenly spaced on a circle: the optimal tour is the hull order
/// 0,1,...,n-1 — exact ground truth for solver tests.
inline tsp::Instance circle_instance(std::size_t n, double radius = 1000.0) {
  std::vector<geo::Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle =
        2.0 * 3.141592653589793 * static_cast<double>(i) /
        static_cast<double>(n);
    pts[i] = {radius * std::cos(angle), radius * std::sin(angle)};
  }
  return tsp::Instance("circle" + std::to_string(n), geo::Metric::kEuc2D,
                       std::move(pts));
}

/// Explicit-matrix instance mirroring a coordinate instance (for metric
/// cross-checks).
inline tsp::Instance to_explicit(const tsp::Instance& src) {
  const std::size_t n = src.size();
  std::vector<long long> m(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m[i * n + j] = src.distance(static_cast<tsp::CityId>(i),
                                  static_cast<tsp::CityId>(j));
    }
  }
  return tsp::Instance(src.name() + "_explicit", std::move(m), n);
}

/// Length of the identity tour 0..n-1 (circle optimum).
inline long long identity_length(const tsp::Instance& instance) {
  return tsp::Tour::identity(instance.size()).length(instance);
}

}  // namespace cim::test
