// Stuck-at manufacturing-defect tests: hard faults override writes at any
// supply voltage and must degrade solution quality gracefully, never
// correctness.
#include <gtest/gtest.h>

#include "anneal/clustered_annealer.hpp"
#include "cim/storage.hpp"
#include "noise/sram_model.hpp"
#include "test_helpers.hpp"
#include "util/random.hpp"

namespace cim {
namespace {

noise::SramCellModel defective_model(double rate, std::uint64_t seed) {
  noise::SramNoiseParams params;
  params.stuck_cell_rate = rate;
  return noise::SramCellModel(params, seed);
}

std::vector<std::uint8_t> random_image(std::uint32_t rows,
                                       std::uint32_t cols,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> image(static_cast<std::size_t>(rows) * cols);
  for (auto& w : image) w = static_cast<std::uint8_t>(rng.below(256));
  return image;
}

TEST(Defects, StuckMaskIsDeterministicAndDensityCorrect) {
  const auto model = defective_model(0.05, 1);
  std::size_t stuck = 0;
  constexpr std::uint64_t kCells = 50000;
  for (std::uint64_t c = 0; c < kCells; ++c) {
    if (model.is_stuck(c)) {
      ++stuck;
      EXPECT_TRUE(model.is_stuck(c));  // deterministic
    }
  }
  EXPECT_NEAR(static_cast<double>(stuck) / kCells, 0.05, 0.005);
}

TEST(Defects, ZeroRateHasNoStuckCells) {
  const auto model = defective_model(0.0, 2);
  for (std::uint64_t c = 0; c < 1000; ++c) {
    EXPECT_FALSE(model.is_stuck(c));
  }
}

TEST(Defects, StuckCellsIgnoreWritesEvenAtNominalVdd) {
  const auto model = defective_model(0.2, 3);
  // A stuck cell settles to its preferred value regardless of the written
  // bit, the epoch, and the supply voltage.
  std::size_t checked = 0;
  for (std::uint64_t c = 0; c < 2000 && checked < 50; ++c) {
    if (!model.is_stuck(c)) continue;
    const bool preferred = model.traits(c).preferred_bit;
    for (const bool written : {false, true}) {
      EXPECT_EQ(model.settled_value(c, 0, 0.80, written), preferred);
      EXPECT_EQ(model.settled_value(c, 5, 0.30, written), preferred);
    }
    ++checked;
  }
  EXPECT_GE(checked, 50U);
}

TEST(Defects, StoragePersistsFaultsAcrossWriteBacks) {
  const auto model = defective_model(0.1, 4);
  for (const bool bit_level : {false, true}) {
    auto storage =
        bit_level ? hw::make_bit_level_storage(15, 9, &model, 0)
                  : hw::make_fast_storage(15, 9, &model, 0);
    const auto image = random_image(15, 9, 5);
    storage->write(image);

    // Noise-free write-back at nominal supply: only stuck bits differ
    // from golden, and they differ identically on every write-back.
    noise::SchedulePhase nominal;
    nominal.vdd = 0.80;
    nominal.noisy_lsbs = 0;
    storage->write_back(nominal);
    std::vector<std::uint8_t> first;
    std::size_t faulty_bits = 0;
    for (std::uint32_t r = 0; r < 15; ++r) {
      for (std::uint32_t c = 0; c < 9; ++c) {
        first.push_back(storage->weight(hw::RowIndex(r), hw::ColIndex(c)));
        faulty_bits += static_cast<std::size_t>(__builtin_popcount(
            storage->weight(hw::RowIndex(r), hw::ColIndex(c)) ^ image[r * 9 + c]));
      }
    }
    EXPECT_GT(faulty_bits, 0U) << (bit_level ? "bit" : "fast");
    storage->write_back(nominal);
    std::size_t i = 0;
    for (std::uint32_t r = 0; r < 15; ++r) {
      for (std::uint32_t c = 0; c < 9; ++c, ++i) {
        EXPECT_EQ(storage->weight(hw::RowIndex(r), hw::ColIndex(c)), first[i]);
      }
    }
  }
}

TEST(Defects, BackendsAgreeOnFaultPatterns) {
  const auto model = defective_model(0.15, 6);
  auto fast = hw::make_fast_storage(15, 9, &model, 99);
  auto bits = hw::make_bit_level_storage(15, 9, &model, 99);
  const auto image = random_image(15, 9, 7);
  fast->write(image);
  bits->write(image);
  for (std::uint32_t r = 0; r < 15; ++r) {
    for (std::uint32_t c = 0; c < 9; ++c) {
      EXPECT_EQ(fast->weight(hw::RowIndex(r), hw::ColIndex(c)), bits->weight(hw::RowIndex(r), hw::ColIndex(c)));
    }
  }
}

TEST(Defects, AnnealerSurvivesDefectiveDie) {
  const auto inst = test::random_instance(150, 8);
  for (const double rate : {0.001, 0.01, 0.05}) {
    anneal::AnnealerConfig config;
    config.clustering.p = 3;
    config.sram.stuck_cell_rate = rate;
    config.seed = 9;
    const auto result = anneal::ClusteredAnnealer(config).solve(inst);
    EXPECT_TRUE(result.tour.is_valid(150)) << "rate " << rate;
  }
}

TEST(Defects, QualityDegradesGracefully) {
  // Averaged over seeds, a heavily defective die is no better than a
  // healthy one (and a healthy one is at least as good).
  const auto inst = test::random_instance(250, 10);
  const auto mean_length = [&](double rate) {
    double acc = 0.0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      anneal::AnnealerConfig config;
      config.clustering.p = 3;
      config.sram.stuck_cell_rate = rate;
      config.seed = seed;
      acc += static_cast<double>(
          anneal::ClusteredAnnealer(config).solve(inst).length);
    }
    return acc / 4.0;
  };
  EXPECT_LE(mean_length(0.0), mean_length(0.10) * 1.02);
}

}  // namespace
}  // namespace cim
