// Thread-stress tests for anneal::ReplicaEnsemble — the workload the TSan
// preset exercises. Several ensembles solve the same instance concurrently,
// publishing into a shared best-solution sink; bit-identical results for
// identical seeds must hold regardless of the host thread count, because
// replica seeds are derived from the base seed, never from scheduling.
#include "anneal/ensemble.hpp"

#include <algorithm>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace cim::anneal {
namespace {

EnsembleConfig small_config(std::uint64_t seed, std::size_t replicas,
                            bool use_threads) {
  EnsembleConfig config;
  config.base.clustering.p = 3;
  config.base.seed = seed;
  config.replicas = replicas;
  config.use_threads = use_threads;
  return config;
}

/// Shared best-solution sink: concurrent solvers publish their outcomes
/// and the sink keeps the champion (the production service shape — many
/// annealer shards racing toward one incumbent).
class BestSink {
 public:
  void offer(const EnsembleResult& result) {
    const std::lock_guard<std::mutex> lock(mu_);
    offers_.push_back(result.best.length);
    if (!has_best_ || result.best.length < best_.best.length) {
      best_ = result;
      has_best_ = true;
    }
  }

  EnsembleResult best() const {
    const std::lock_guard<std::mutex> lock(mu_);
    CIM_REQUIRE(has_best_, "sink received no offers");
    return best_;
  }

  std::vector<long long> offers() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return offers_;
  }

 private:
  mutable std::mutex mu_;
  bool has_best_ = false;
  EnsembleResult best_;
  std::vector<long long> offers_;
};

TEST(EnsembleThreads, IdenticalSeedsIdenticalResultsAcrossThreadCounts) {
  const auto inst = test::random_instance(120, 7);
  // The same seeded ensemble solved sequentially and threaded must agree
  // exactly; so must repeated threaded runs (no scheduling leakage).
  const auto sequential =
      ReplicaEnsemble(small_config(42, 4, false)).solve(inst);
  const auto threaded =
      ReplicaEnsemble(small_config(42, 4, true)).solve(inst);
  const auto threaded_again =
      ReplicaEnsemble(small_config(42, 4, true)).solve(inst);

  EXPECT_EQ(sequential.replica_lengths, threaded.replica_lengths);
  EXPECT_EQ(sequential.best.length, threaded.best.length);
  EXPECT_EQ(sequential.best_replica, threaded.best_replica);
  EXPECT_EQ(sequential.best.tour, threaded.best.tour);
  EXPECT_EQ(threaded.replica_lengths, threaded_again.replica_lengths);
  EXPECT_EQ(threaded.best.tour, threaded_again.best.tour);
}

TEST(EnsembleThreads, ConcurrentEnsemblesSharedSink) {
  const auto inst = test::random_instance(100, 11);
  constexpr std::size_t kConcurrent = 4;

  // Reference: each seeded ensemble solved alone, sequentially.
  std::vector<EnsembleResult> expected;
  expected.reserve(kConcurrent);
  for (std::size_t s = 0; s < kConcurrent; ++s) {
    expected.push_back(
        ReplicaEnsemble(small_config(100 + s, 3, false)).solve(inst));
  }

  // Same ensembles, all racing at once (threaded replicas inside threaded
  // drivers — the maximally contended shape), publishing into one sink.
  BestSink sink;
  std::vector<EnsembleResult> concurrent(kConcurrent);
  {
    // NOLINT(raw-thread): the test needs out-of-pool driver threads to
    // contend *with* the pool; running drivers on the pool itself would
    // serialise the very races under test.
    std::vector<std::thread> drivers;
    drivers.reserve(kConcurrent);
    for (std::size_t s = 0; s < kConcurrent; ++s) {
      drivers.emplace_back([&inst, &sink, &concurrent, s] {
        const ReplicaEnsemble ensemble(small_config(100 + s, 3, true));
        concurrent[s] = ensemble.solve(inst);
        sink.offer(concurrent[s]);
      });
    }
    for (std::thread& d : drivers) d.join();  // NOLINT(raw-thread): see above
  }

  long long best_expected = expected.front().best.length;
  for (std::size_t s = 0; s < kConcurrent; ++s) {
    EXPECT_EQ(concurrent[s].replica_lengths, expected[s].replica_lengths)
        << "ensemble seed " << 100 + s;
    EXPECT_EQ(concurrent[s].best.tour,
              expected[s].best.tour);
    best_expected = std::min(best_expected, expected[s].best.length);
  }
  EXPECT_EQ(sink.best().best.length, best_expected);
  EXPECT_EQ(sink.offers().size(), kConcurrent);
}

TEST(EnsembleThreads, ReplicaFailurePropagatesAndJoins) {
  // weight_bits = 0 makes every replica's ClusteredAnnealer constructor
  // throw *inside its worker thread*; the ensemble must join all workers
  // and rethrow on the calling thread instead of std::terminate-ing.
  const auto inst = test::random_instance(60, 13);
  auto config = small_config(5, 3, true);
  config.base.weight_bits = 0;
  const ReplicaEnsemble ensemble(config);
  EXPECT_THROW(ensemble.solve(inst), ConfigError);
}

}  // namespace
}  // namespace cim::anneal
