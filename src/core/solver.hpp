// cimanneal public API.
//
// CimSolver is the one-stop entry point a downstream user needs: configure
// the design point (cluster strategy, p_max, noise source, schedule,
// backend), call solve() on a TSP instance, and receive the tour, its
// quality relative to a near-optimal reference, and the hardware PPA
// projection of the design that produced it.
//
//   using namespace cim;
//   core::SolverConfig config;
//   config.p_max = 3;
//   core::CimSolver solver(config);
//   auto outcome = solver.solve(tsp::make_paper_instance("pcb3038"));
//   // outcome.optimal_ratio, outcome.ppa->chip_area.mm2(), ...
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "anneal/clustered_annealer.hpp"
#include "anneal/ensemble.hpp"
#include "anneal/generic_annealer.hpp"
#include "anneal/maxcut_annealer.hpp"
#include "heuristics/reference.hpp"
#include "ising/generic.hpp"
#include "ising/partition.hpp"
#include "ppa/report.hpp"
#include "store/warm_start.hpp"
#include "tsp/instance.hpp"

namespace cim::core {

/// Optional CPU post-processing of the hardware tour (an extension beyond
/// the paper: the hierarchical decomposition leaves cluster-boundary
/// crossings that cheap classical local search repairs).
enum class PostRefine {
  kNone,   ///< the paper's design: hardware output as-is
  kLight,  ///< two bounded 2-opt/Or-opt passes
  kFull,   ///< local search to a joint 2-opt/Or-opt optimum
};

struct SolverConfig {
  /// Cluster sizing strategy (Table I): semi-flexible is the paper's
  /// recommended operating point.
  cluster::Strategy strategy = cluster::Strategy::kSemiFlexible;
  std::uint32_t p_max = 3;

  /// Annealing noise source; kSramWeight is the paper's design.
  anneal::NoiseMode noise = anneal::NoiseMode::kSramWeight;
  anneal::BackendKind backend = anneal::BackendKind::kFast;
  bool chromatic_parallel = true;

  noise::AnnealSchedule::Params schedule;  ///< paper defaults (§V)
  noise::SramNoiseParams sram;             ///< 16 nm compact model defaults
  std::uint32_t weight_bits = 8;
  std::uint64_t seed = 1;
  bool record_trace = false;

  /// Spin-grouping strategy for solve_ising (ising/partition.hpp): the
  /// window-clustering axis of the generic QUBO/Ising front-end.
  ising::GroupStrategy group_strategy = ising::GroupStrategy::kChromatic;
  std::uint32_t group_block = 64;  ///< width bound for blocked strategies

  /// Compute the classical reference tour for optimal-ratio reporting
  /// (costs one greedy+2-opt+Or-opt pass; disable for timing studies).
  bool compute_reference = true;
  /// Attach the hardware PPA projection to the outcome.
  bool compute_ppa = true;

  /// Amorphica-style replication: run this many independently seeded
  /// replicas (host threads) and keep the best tour.
  std::size_t replicas = 1;
  /// CPU post-refinement of the hardware tour (see PostRefine).
  PostRefine post_refine = PostRefine::kNone;

  /// Non-empty → persistent warm-start store directory (DESIGN.md §16).
  /// Before the solve, the instance fingerprint is looked up and any
  /// stored best tour seeds the annealer's initial ring/slot order; after
  /// the solve, the final tour is written back when it improves on the
  /// stored score. A corrupt or version-mismatched store entry degrades
  /// to a cold start.
  std::string warm_start_dir;

  /// Non-empty → after the solve, the global telemetry registry is
  /// serialised here as a versioned JSON snapshot, with the Chrome-trace
  /// event buffer beside it at telemetry_trace_path(telemetry_out). With
  /// telemetry compiled off the files still appear, carrying
  /// telemetry_enabled=false (DESIGN.md §12).
  std::string telemetry_out;
};

/// The trace-file companion of a snapshot path: "x.json" → "x.trace.json"
/// (a missing .json suffix just appends ".trace.json").
std::string telemetry_trace_path(const std::string& snapshot_path);

struct SolveOutcome {
  anneal::AnnealResult anneal;      ///< tour, per-level stats, hw activity
  long long tour_length = 0;        ///< final (possibly refined) length
  long long hardware_length = 0;    ///< length straight out of the annealer
  /// Lengths of all replicas when replicas > 1 (best one is `anneal`).
  std::vector<long long> replica_lengths;
  std::optional<long long> reference_length;
  /// tour_length / reference_length (the paper's "optimal ratio");
  /// unset when the reference is disabled.
  std::optional<double> optimal_ratio;
  std::optional<ppa::PpaReport> ppa;
  double solve_wall_seconds = 0.0;  ///< host-side simulation time
  /// True when a stored tour seeded this solve (warm_start_dir hit).
  bool warm_started = false;
  /// Store traffic for this solve when warm_start_dir is set.
  std::optional<store::WarmStartStats> warm_start;
};

/// Outcome of a generic QUBO/Ising solve (CimSolver::solve_ising).
struct IsingOutcome {
  anneal::GenericResult anneal;  ///< spins, energies, window stats
  long long energy_hw = 0;       ///< best integer energy (hardware units)
  double energy = 0.0;           ///< same in model units (incl. offset)
  double solve_wall_seconds = 0.0;
  /// True when a stored assignment seeded this solve (warm_start_dir hit).
  bool warm_started = false;
  std::optional<store::WarmStartStats> warm_start;
};

/// Outcome of a Max-Cut solve (CimSolver::solve_maxcut).
struct MaxCutOutcome {
  anneal::MaxCutResult anneal;
  long long cut = 0;  ///< best cut seen
  double solve_wall_seconds = 0.0;
  bool warm_started = false;
  std::optional<store::WarmStartStats> warm_start;
};

class CimSolver {
 public:
  CimSolver() : CimSolver(SolverConfig{}) {}
  explicit CimSolver(SolverConfig config);

  const SolverConfig& config() const { return config_; }

  /// Solves `instance` end-to-end; see SolveOutcome.
  SolveOutcome solve(const tsp::Instance& instance) const;

  /// Solves a generic QUBO/Ising model on the CIM substrate using the
  /// configured group strategy. With warm_start_dir set, the model's
  /// content fingerprint is looked up for a stored ±1 assignment before
  /// the solve and the best assignment is written back after (score =
  /// −energy_hw; a corrupt record degrades to a cold start).
  IsingOutcome solve_ising(const ising::GenericModel& model) const;

  /// Solves a Max-Cut instance, with the same warm-start wiring keyed by
  /// the instance's Ising-image fingerprint (score = cut).
  MaxCutOutcome solve_maxcut(const ising::MaxCutProblem& problem) const;

  /// The annealer configuration this solver drives (for advanced use).
  anneal::AnnealerConfig annealer_config() const;

  /// The PPA design point for an instance of `n` cities.
  ppa::DesignPoint design_point(const std::string& name, std::size_t n) const;

 private:
  SolverConfig config_;
};

}  // namespace cim::core
