// Machine-readable solve reports: serialises a SolveOutcome (and its PPA
// projection) to JSON so downstream tooling can consume experiment
// results without scraping tables.
#pragma once

#include "core/solver.hpp"
#include "util/json.hpp"

namespace cim::core {

/// Full outcome report: quality, per-level annealing stats, hardware
/// activity, and the PPA projection when present.
util::Json outcome_to_json(const SolveOutcome& outcome,
                           const std::string& instance_name);

/// PPA-only report.
util::Json ppa_to_json(const ppa::PpaReport& report);

/// Writes the global telemetry registry: the versioned metrics snapshot
/// to `path` and the Chrome-trace event buffer to
/// telemetry_trace_path(path). With telemetry compiled off both files
/// still appear, carrying telemetry_enabled=false.
void save_telemetry(const std::string& path);

}  // namespace cim::core
