#include "core/solver.hpp"

#include "core/report.hpp"
#include "heuristics/or_opt.hpp"
#include "heuristics/two_opt.hpp"
#include "tsp/fingerprint.hpp"
#include "util/error.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace cim::core {

std::string telemetry_trace_path(const std::string& snapshot_path) {
  const std::string suffix = ".json";
  if (snapshot_path.size() > suffix.size() &&
      snapshot_path.compare(snapshot_path.size() - suffix.size(),
                            suffix.size(), suffix) == 0) {
    return snapshot_path.substr(0, snapshot_path.size() - suffix.size()) +
           ".trace.json";
  }
  return snapshot_path + ".trace.json";
}

CimSolver::CimSolver(SolverConfig config) : config_(std::move(config)) {
  CIM_REQUIRE(config_.p_max >= 1, "p_max must be at least 1");
  CIM_REQUIRE(config_.replicas >= 1, "replicas must be at least 1");
  if (config_.strategy != cluster::Strategy::kUnlimited) {
    CIM_REQUIRE(config_.p_max >= 2,
                "fixed/semi-flexible strategies need p_max >= 2");
  }
}

anneal::AnnealerConfig CimSolver::annealer_config() const {
  anneal::AnnealerConfig cfg;
  cfg.clustering.strategy = config_.strategy;
  cfg.clustering.p = config_.p_max;
  cfg.clustering.seed = util::hash_combine(config_.seed, 0xC105);
  cfg.schedule = config_.schedule;
  cfg.sram = config_.sram;
  cfg.noise = config_.noise;
  cfg.backend = config_.backend;
  cfg.chromatic_parallel = config_.chromatic_parallel;
  cfg.weight_bits = config_.weight_bits;
  cfg.seed = config_.seed;
  cfg.record_trace = config_.record_trace;
  return cfg;
}

ppa::DesignPoint CimSolver::design_point(const std::string& name,
                                         std::size_t n) const {
  ppa::DesignPoint point;
  point.instance_name = name;
  point.n_cities = n;
  point.p = config_.p_max;
  point.strategy = config_.strategy == cluster::Strategy::kFixed
                       ? hw::SizingStrategy::kFixed
                       : hw::SizingStrategy::kSemiFlexible;
  point.schedule = config_.schedule;
  point.weight_bits = config_.weight_bits;
  return point;
}

IsingOutcome CimSolver::solve_ising(const ising::GenericModel& model) const {
  IsingOutcome outcome;
  const util::Timer timer;

  anneal::GenericAnnealConfig cfg;
  cfg.schedule = config_.schedule;
  cfg.sram = config_.sram;
  cfg.noise = config_.noise;
  cfg.strategy = config_.group_strategy;
  cfg.group_block = config_.group_block;
  cfg.weight_bits = config_.weight_bits;
  cfg.seed = config_.seed;
  cfg.record_trace = config_.record_trace;

  std::optional<store::WarmStartStore> warm_store;
  std::string fingerprint;
  if (!config_.warm_start_dir.empty()) {
    warm_store.emplace(config_.warm_start_dir);
    fingerprint = model.fingerprint();
    if (auto spins = warm_store->load_spins(fingerprint, model.size())) {
      cfg.initial_spins = std::move(*spins);
      outcome.warm_started = true;
    }
  }

  const anneal::GenericAnnealer annealer(cfg);
  outcome.anneal = annealer.solve(model);
  outcome.energy_hw = outcome.anneal.best_energy_hw;
  outcome.energy = outcome.anneal.best_energy;
  outcome.solve_wall_seconds = timer.seconds();

  if (warm_store) {
    // The store ranks scores higher-is-better; energies are minimised.
    warm_store->store_spins(
        fingerprint,
        std::span<const ising::Spin>(outcome.anneal.best_spins.data(),
                                     outcome.anneal.best_spins.size()),
        -outcome.energy_hw);
    outcome.warm_start = warm_store->stats();
  }

  if (!config_.telemetry_out.empty()) {
    save_telemetry(config_.telemetry_out);
  }
  return outcome;
}

MaxCutOutcome CimSolver::solve_maxcut(
    const ising::MaxCutProblem& problem) const {
  MaxCutOutcome outcome;
  const util::Timer timer;

  anneal::MaxCutConfig cfg;
  cfg.schedule = config_.schedule;
  cfg.sram = config_.sram;
  cfg.noise = config_.noise;
  cfg.weight_bits = config_.weight_bits;
  cfg.seed = config_.seed;
  cfg.record_trace = config_.record_trace;

  std::optional<store::WarmStartStore> warm_store;
  std::string fingerprint;
  if (!config_.warm_start_dir.empty()) {
    warm_store.emplace(config_.warm_start_dir);
    fingerprint = ising::GenericModel::from_maxcut(problem).fingerprint();
    if (auto spins = warm_store->load_spins(fingerprint, problem.size())) {
      cfg.initial_spins = std::move(*spins);
      outcome.warm_started = true;
    }
  }

  const anneal::MaxCutAnnealer annealer(cfg);
  outcome.anneal = annealer.solve(problem);
  outcome.cut = outcome.anneal.best_cut;
  outcome.solve_wall_seconds = timer.seconds();

  if (warm_store) {
    warm_store->store_spins(
        fingerprint,
        std::span<const ising::Spin>(outcome.anneal.spins.data(),
                                     outcome.anneal.spins.size()),
        outcome.anneal.cut);
    outcome.warm_start = warm_store->stats();
  }

  if (!config_.telemetry_out.empty()) {
    save_telemetry(config_.telemetry_out);
  }
  return outcome;
}

SolveOutcome CimSolver::solve(const tsp::Instance& instance) const {
  SolveOutcome outcome;
  const util::Timer timer;

  // Warm start: seed the annealer from the persistent store when a valid
  // tour for this instance fingerprint exists (DESIGN.md §16).
  std::optional<store::WarmStartStore> warm_store;
  std::string fingerprint;
  anneal::AnnealerConfig base = annealer_config();
  if (!config_.warm_start_dir.empty()) {
    warm_store.emplace(config_.warm_start_dir);
    fingerprint = tsp::instance_fingerprint(instance);
    if (auto order = warm_store->load_tour(fingerprint, instance.size())) {
      base.initial_order = std::move(*order);
      outcome.warm_started = true;
    }
  }

  if (config_.replicas > 1) {
    anneal::EnsembleConfig ensemble_config;
    ensemble_config.base = base;
    ensemble_config.replicas = config_.replicas;
    const anneal::ReplicaEnsemble ensemble(ensemble_config);
    auto ensemble_result = ensemble.solve(instance);
    outcome.replica_lengths = std::move(ensemble_result.replica_lengths);
    outcome.anneal = std::move(ensemble_result.best);
  } else {
    const anneal::ClusteredAnnealer annealer(base);
    outcome.anneal = annealer.solve(instance);
  }
  outcome.hardware_length = outcome.anneal.length;
  outcome.tour_length = outcome.hardware_length;

  if (config_.post_refine != PostRefine::kNone && instance.size() >= 5) {
    heuristics::TwoOptOptions two;
    heuristics::OrOptOptions oro;
    if (config_.post_refine == PostRefine::kLight) {
      two.max_passes = 2;
      oro.max_passes = 2;
    }
    tsp::Tour& tour = outcome.anneal.tour;
    heuristics::two_opt(instance, tour, two);
    const auto refined = heuristics::or_opt(instance, tour, oro);
    outcome.anneal.length = refined.final_length;
    outcome.tour_length = refined.final_length;
  }
  outcome.solve_wall_seconds = timer.seconds();

  if (warm_store) {
    const auto order = outcome.anneal.tour.order();
    warm_store->store_tour(
        fingerprint, std::span<const tsp::CityId>(order.data(), order.size()),
        outcome.tour_length);
    outcome.warm_start = warm_store->stats();
  }

  if (config_.compute_reference) {
    const heuristics::Reference ref = heuristics::compute_reference(instance);
    outcome.reference_length = ref.length;
    if (ref.length > 0) {
      outcome.optimal_ratio =
          tsp::optimal_ratio(outcome.tour_length, ref.length);
    }
  }

  if (config_.compute_ppa) {
    outcome.ppa = ppa::measured_report(
        design_point(instance.name(), instance.size()), outcome.anneal.hw,
        outcome.anneal.hierarchy_depth);
  }

  if (!config_.telemetry_out.empty()) {
    save_telemetry(config_.telemetry_out);
  }
  return outcome;
}

}  // namespace cim::core
