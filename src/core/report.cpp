#include "core/report.hpp"

#include "util/telemetry.hpp"

namespace cim::core {

void save_telemetry(const std::string& path) {
  const util::telemetry::Registry& telem = util::telemetry::Registry::global();
  telem.save_snapshot(path);
  telem.save_trace(telemetry_trace_path(path));
}

util::Json ppa_to_json(const ppa::PpaReport& report) {
  util::Json j = util::Json::object();
  j["instance"] = report.point.instance_name;
  j["n_cities"] = report.point.n_cities;
  j["p"] = static_cast<long long>(report.point.p);
  j["strategy"] =
      report.point.strategy == hw::SizingStrategy::kFixed ? "fixed"
                                                          : "semi-flexible";
  j["windows"] = report.layout.windows;
  j["arrays"] = report.layout.arrays;
  j["capacity_bits"] = report.layout.capacity_bits;
  // JSON keys keep their explicit unit suffixes; the conversions from
  // the strong types happen here, at the serialisation boundary.
  j["chip_area_um2"] = report.chip_area.um2();
  j["hierarchy_depth"] = report.depth;
  j["latency_s"] = util::Json::object();
  j["latency_s"]["read_compute"] = report.latency.read_compute.seconds();
  j["latency_s"]["write"] = report.latency.write.seconds();
  j["latency_s"]["total"] = report.latency.total().seconds();
  j["energy_j"] = util::Json::object();
  j["energy_j"]["read_compute"] = report.energy.read_compute.joules();
  j["energy_j"]["write"] = report.energy.write.joules();
  j["energy_j"]["transfer"] = report.energy.transfer.joules();
  j["energy_j"]["leakage"] = report.energy.leakage.joules();
  j["energy_j"]["total"] = report.energy.total().joules();
  j["average_power_w"] = report.average_power.watts();
  j["area_per_weight_bit_um2"] = report.area_per_weight_bit().um2();
  j["power_per_weight_bit_w"] = report.power_per_weight_bit_w();
  return j;
}

util::Json outcome_to_json(const SolveOutcome& outcome,
                           const std::string& instance_name) {
  util::Json j = util::Json::object();
  j["instance"] = instance_name;
  j["tour_length"] = outcome.tour_length;
  j["hardware_length"] = outcome.hardware_length;
  if (outcome.reference_length) {
    j["reference_length"] = *outcome.reference_length;
  }
  if (outcome.optimal_ratio) {
    j["optimal_ratio"] = *outcome.optimal_ratio;
  }
  j["solve_wall_seconds"] = outcome.solve_wall_seconds;
  j["hierarchy_depth"] = outcome.anneal.hierarchy_depth;
  j["max_cluster_size"] = outcome.anneal.max_cluster_size;

  if (!outcome.replica_lengths.empty()) {
    util::Json replicas = util::Json::array();
    for (const long long len : outcome.replica_lengths) {
      replicas.push_back(len);
    }
    j["replica_lengths"] = std::move(replicas);
  }

  util::Json levels = util::Json::array();
  for (const auto& level : outcome.anneal.levels) {
    util::Json l = util::Json::object();
    l["level"] = level.level;
    l["clusters"] = level.clusters;
    l["iterations"] = level.iterations;
    l["swaps_attempted"] = level.swaps_attempted;
    l["swaps_accepted"] = level.swaps_accepted;
    l["uphill_accepted"] = level.uphill_accepted;
    l["settle_cache_hits"] = level.settle_cache_hits;
    l["settle_cache_refreshes"] = level.settle_cache_refreshes;
    l["noise_draws"] = level.noise_draws;
    l["update_cycles"] = level.update_cycles;
    l["ring_length_after"] = level.ring_length_after;
    levels.push_back(std::move(l));
  }
  j["levels"] = std::move(levels);

  util::Json hw = util::Json::object();
  const auto& activity = outcome.anneal.hw;
  hw["swap_attempts"] = activity.swap_attempts;
  hw["update_cycles"] = activity.update_cycles;
  hw["writeback_cycles"] = activity.writeback_cycles;
  hw["macs"] = activity.storage.macs;
  hw["mac_bit_reads"] = activity.storage.mac_bit_reads;
  hw["writeback_events"] = activity.storage.writeback_events;
  hw["writeback_bits"] = activity.storage.writeback_bits;
  hw["pseudo_read_flips"] = activity.storage.pseudo_read_flips;
  hw["edge_bits_transferred"] =
      activity.dataflow.edge_bits_transferred();
  j["hardware"] = std::move(hw);

  if (outcome.ppa) {
    j["ppa"] = ppa_to_json(*outcome.ppa);
  }
  return j;
}

}  // namespace cim::core
