// Cluster refinement: Lloyd-style boundary reassignment.
//
// The greedy/agglomerative grouping passes leave some points assigned to
// a cluster whose centroid is not their nearest (capacity and merge-order
// artifacts). Refinement sweeps move such points to a closer cluster when
// the size cap allows, tightening clusters — which directly improves the
// annealer's tour quality because inter-cluster edges get shorter.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.hpp"

namespace cim::cluster {

struct RefineStats {
  std::size_t moves = 0;
  std::size_t rounds = 0;
};

/// Reassigns points between groups to reduce point-to-centroid distances.
/// `groups` is a partition of [0, points.size()); sizes never exceed
/// `max_size` and never drop to zero. Centroids are weighted by
/// `weights`. Runs until a sweep makes no move or `max_rounds` is hit.
RefineStats refine_groups(const std::vector<geo::Point>& points,
                          const std::vector<std::uint32_t>& weights,
                          std::vector<std::vector<std::uint32_t>>& groups,
                          std::size_t max_size, std::size_t max_rounds = 8);

}  // namespace cim::cluster
