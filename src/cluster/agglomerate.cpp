#include "cluster/agglomerate.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "geo/kdtree.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace cim::cluster {

std::vector<std::vector<std::uint32_t>> group_fixed(
    const std::vector<geo::Point>& points, std::size_t p, util::Rng& rng) {
  const std::size_t m = points.size();
  CIM_REQUIRE(p >= 1, "fixed cluster size must be positive");
  std::vector<std::vector<std::uint32_t>> groups;
  if (p == 1 || m <= p) {
    if (p == 1) {
      groups.resize(m);
      for (std::uint32_t i = 0; i < m; ++i) groups[i] = {i};
    } else {
      groups.emplace_back(m);
      std::iota(groups.back().begin(), groups.back().end(), 0U);
    }
    return groups;
  }

  geo::KdTree tree(points);
  // Random seed order keeps the strategy unbiased across the plane.
  auto seeds = util::random_permutation(m, rng);
  groups.reserve(m / p + 1);
  for (const std::uint32_t seed : seeds) {
    if (!tree.is_active(seed)) continue;
    tree.set_active(seed, false);
    std::vector<std::uint32_t> group{seed};
    const auto nearest = tree.nearest_k(points[seed], p - 1);
    for (const std::size_t nb : nearest) {
      group.push_back(static_cast<std::uint32_t>(nb));
      tree.set_active(nb, false);
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

namespace {

struct Group {
  std::vector<std::uint32_t> members;
  geo::Point centroid;
  std::uint64_t weight = 0;
  bool active = true;
};

}  // namespace

std::vector<std::vector<std::uint32_t>> group_agglomerative(
    const std::vector<geo::Point>& points,
    const std::vector<std::uint32_t>& weights, std::size_t target_count,
    std::size_t max_size, util::Rng& rng) {
  const std::size_t m = points.size();
  CIM_ASSERT(weights.size() == m);
  CIM_REQUIRE(target_count >= 1, "target cluster count must be positive");
  CIM_REQUIRE(max_size >= 2 || m <= target_count,
              "max cluster size below 2 cannot reduce the level");

  std::vector<Group> groups(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    groups[i].members = {i};
    groups[i].centroid = points[i];
    groups[i].weight = weights[i];
  }
  std::size_t active_count = m;
  (void)rng;

  constexpr std::size_t kMaxRounds = 64;
  constexpr std::size_t kProbe = 8;  // nearest candidates examined

  for (std::size_t round = 0;
       round < kMaxRounds && active_count > target_count; ++round) {
    // Snapshot of active groups for this round.
    std::vector<std::uint32_t> ids;
    std::vector<geo::Point> centroids;
    ids.reserve(active_count);
    centroids.reserve(active_count);
    for (std::uint32_t g = 0; g < groups.size(); ++g) {
      if (groups[g].active) {
        ids.push_back(g);
        centroids.push_back(groups[g].centroid);
      }
    }
    const geo::KdTree tree(centroids);

    // Nearest feasible partner (round-local index) for every group.
    constexpr std::uint32_t kNone = 0xFFFFFFFFU;
    std::vector<std::uint32_t> partner(ids.size(), kNone);
    for (std::uint32_t li = 0; li < ids.size(); ++li) {
      const Group& gi = groups[ids[li]];
      for (const std::size_t lj :
           tree.nearest_k(centroids[li], kProbe, li)) {
        const Group& gj = groups[ids[lj]];
        if (gi.members.size() + gj.members.size() <= max_size) {
          partner[li] = static_cast<std::uint32_t>(lj);
          break;
        }
      }
    }

    // Merge mutual nearest pairs first; then greedy one-sided merges to
    // guarantee progress.
    std::size_t merges = 0;
    const auto merge = [&](std::uint32_t la, std::uint32_t lb) {
      Group& a = groups[ids[la]];
      Group& b = groups[ids[lb]];
      CIM_ASSERT(a.active && b.active);
      const double wa = static_cast<double>(a.weight);
      const double wb = static_cast<double>(b.weight);
      a.centroid = (a.centroid * wa + b.centroid * wb) / (wa + wb);
      a.weight += b.weight;
      a.members.insert(a.members.end(), b.members.begin(), b.members.end());
      b.active = false;
      b.members.clear();
      --active_count;
      ++merges;
    };

    for (std::uint32_t li = 0;
         li < ids.size() && active_count > target_count; ++li) {
      const std::uint32_t lj = partner[li];
      if (lj == kNone || lj <= li) continue;
      if (partner[lj] != li) continue;  // not mutual
      if (!groups[ids[li]].active || !groups[ids[lj]].active) continue;
      merge(li, lj);
    }
    if (merges == 0) {
      for (std::uint32_t li = 0;
           li < ids.size() && active_count > target_count; ++li) {
        const std::uint32_t lj = partner[li];
        if (lj == kNone) continue;
        if (!groups[ids[li]].active || !groups[ids[lj]].active) continue;
        if (groups[ids[li]].members.size() +
                groups[ids[lj]].members.size() >
            max_size) {
          continue;  // partner grew since matching
        }
        merge(li, lj);
      }
    }
    if (merges == 0) {
      CIM_LOG_WARN << "agglomerative grouping stalled at " << active_count
                   << " groups (target " << target_count << ")";
      break;
    }
  }

  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(active_count);
  for (auto& g : groups) {
    if (g.active) out.push_back(std::move(g.members));
  }
  return out;
}

}  // namespace cim::cluster
