// Hierarchical clustering of a TSP instance (§III.A, Fig. 4).
//
// Bottom-up: level 0 groups cities into clusters; level k groups level-k−1
// clusters (represented by centroids); clustering repeats until at most
// `top_size` clusters remain. Three sizing strategies are supported,
// matching Table I of the paper:
//
//   * kUnlimited    — "arbitrary": only the number of clusters per level is
//                     restricted (mean size 2); element count is free. This
//                     is the solution-quality baseline; it is hostile to
//                     hardware because window sizes vary unboundedly.
//   * kFixed        — every cluster holds exactly p elements (one ragged
//                     cluster absorbs the remainder). Cheap hardware, worst
//                     quality.
//   * kSemiFlexible — sizes range 1..p_max with mean (1+p_max)/2; the
//                     hardware provisions 2N/(1+p_max) windows of the
//                     maximal geometry (some columns redundant).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.hpp"
#include "tsp/instance.hpp"

namespace cim::cluster {

enum class Strategy { kUnlimited, kFixed, kSemiFlexible };

const char* strategy_name(Strategy strategy);

struct Options {
  Strategy strategy = Strategy::kSemiFlexible;
  std::size_t p = 3;          ///< exact size (kFixed) or p_max (kSemiFlexible)
  std::size_t top_size = 4;   ///< stop when a level has ≤ this many clusters
  std::uint64_t seed = 1;     ///< tie-breaking order
  /// Lloyd-style boundary reassignment after each level's grouping
  /// (skipped for kFixed, which requires exact sizes). Improves cluster
  /// compactness and thus tour quality; disable for the ablation.
  bool refine = true;
};

/// One cluster: member indices into the level below (level 0 members are
/// city ids) and the centroid of all cities transitively contained.
struct Cluster {
  std::vector<std::uint32_t> members;
  geo::Point centroid;
  std::uint32_t city_count = 0;  ///< transitive number of cities
};

/// One level of the hierarchy.
struct Level {
  std::vector<Cluster> clusters;
};

/// The full hierarchy. levels()[0] is the lowest (city) level; the last
/// level is the top. For a 1-level hierarchy the cities cluster directly
/// into ≤ top_size groups.
class Hierarchy {
 public:
  Hierarchy(const tsp::Instance& instance, Options options);

  const tsp::Instance& instance() const { return instance_; }
  const Options& options() const { return options_; }
  std::size_t depth() const { return levels_.size(); }
  const Level& level(std::size_t k) const { return levels_[k]; }
  const Level& top() const { return levels_.back(); }

  /// Maximum cluster size over all levels (the window dimension driver).
  std::size_t max_cluster_size() const;
  /// Mean cluster size over all levels.
  double mean_cluster_size() const;
  /// Total number of clusters across all levels.
  std::size_t total_clusters() const;

  /// Flattens cluster `c` of level `k` into the cities it contains, in
  /// member order.
  std::vector<tsp::CityId> cities_of(std::size_t k, std::uint32_t c) const;

  /// Structural validation: every city appears exactly once per level's
  /// partition; centroids and counts are consistent. Throws on violation.
  void validate() const;

 private:
  void build();

  const tsp::Instance& instance_;
  Options options_;
  std::vector<Level> levels_;
};

}  // namespace cim::cluster
