#include "cluster/refine.hpp"

#include <limits>

#include "geo/kdtree.hpp"
#include "util/error.hpp"

namespace cim::cluster {

namespace {

struct GroupState {
  geo::Point weighted_sum{};
  double weight = 0.0;
  std::size_t size = 0;
  geo::Point centroid() const { return weighted_sum / weight; }
};

}  // namespace

RefineStats refine_groups(const std::vector<geo::Point>& points,
                          const std::vector<std::uint32_t>& weights,
                          std::vector<std::vector<std::uint32_t>>& groups,
                          std::size_t max_size, std::size_t max_rounds) {
  CIM_ASSERT(points.size() == weights.size());
  RefineStats stats;
  if (groups.size() < 2) return stats;

  // Membership map + incremental centroid state.
  std::vector<std::uint32_t> member_of(points.size(), 0);
  std::vector<GroupState> state(groups.size());
  for (std::uint32_t g = 0; g < groups.size(); ++g) {
    for (const std::uint32_t p : groups[g]) {
      CIM_ASSERT(p < points.size());
      member_of[p] = g;
      const double w = static_cast<double>(weights[p]);
      state[g].weighted_sum = state[g].weighted_sum + points[p] * w;
      state[g].weight += w;
      ++state[g].size;
    }
    CIM_ASSERT_MSG(state[g].size > 0, "refine_groups: empty input group");
  }

  constexpr std::size_t kProbe = 4;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    ++stats.rounds;
    // Snapshot centroids into a kd-tree for nearest-cluster queries.
    std::vector<geo::Point> centroids(groups.size());
    for (std::uint32_t g = 0; g < groups.size(); ++g) {
      centroids[g] = state[g].centroid();
    }
    const geo::KdTree tree(centroids);

    std::size_t moves_this_round = 0;
    for (std::uint32_t p = 0; p < points.size(); ++p) {
      const std::uint32_t from = member_of[p];
      if (state[from].size <= 1) continue;  // never empty a cluster
      const double current_d2 =
          geo::squared_distance(points[p], centroids[from]);
      for (const std::size_t candidate :
           tree.nearest_k(points[p], kProbe)) {
        const auto to = static_cast<std::uint32_t>(candidate);
        if (to == from) break;  // own centroid is nearest: stop
        if (state[to].size >= max_size) continue;
        const double d2 = geo::squared_distance(points[p], centroids[to]);
        if (d2 >= current_d2) break;  // candidates sorted by distance

        // Move p: update membership and incremental centroid state (the
        // snapshot centroids stay fixed within the round, Lloyd-style).
        const double w = static_cast<double>(weights[p]);
        state[from].weighted_sum =
            state[from].weighted_sum - points[p] * w;
        state[from].weight -= w;
        --state[from].size;
        state[to].weighted_sum = state[to].weighted_sum + points[p] * w;
        state[to].weight += w;
        ++state[to].size;
        member_of[p] = to;
        ++moves_this_round;
        break;
      }
    }
    stats.moves += moves_this_round;
    if (moves_this_round == 0) break;
  }

  // Rebuild the group lists from the membership map.
  for (auto& g : groups) g.clear();
  for (std::uint32_t p = 0; p < points.size(); ++p) {
    groups[member_of[p]].push_back(p);
  }
  // Drop groups that somehow emptied (cannot happen by construction, but
  // keep the partition invariant robust).
  std::erase_if(groups, [](const auto& g) { return g.empty(); });
  return stats;
}

}  // namespace cim::cluster
