#include "cluster/hierarchy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/agglomerate.hpp"
#include "cluster/refine.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/random.hpp"

namespace cim::cluster {

const char* strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kUnlimited:
      return "unlimited";
    case Strategy::kFixed:
      return "fixed";
    case Strategy::kSemiFlexible:
      return "semi-flexible";
  }
  return "?";
}

Hierarchy::Hierarchy(const tsp::Instance& instance, Options options)
    : instance_(instance), options_(options) {
  CIM_REQUIRE(instance_.has_coords(),
              "hierarchical clustering requires a coordinate instance");
  CIM_REQUIRE(options_.top_size >= 2, "top_size must be at least 2");
  if (options_.strategy != Strategy::kUnlimited) {
    CIM_REQUIRE(options_.p >= 1, "cluster size parameter must be positive");
  }
  build();
}

void Hierarchy::build() {
  util::Rng rng(options_.seed);

  // Current items to be grouped: centroids + city weights + provenance.
  std::vector<geo::Point> item_points(instance_.coords().begin(),
                                      instance_.coords().end());
  std::vector<std::uint32_t> item_weights(instance_.size(), 1);

  while (true) {
    const std::size_t m = item_points.size();
    if (m <= options_.top_size && !levels_.empty()) break;

    std::vector<std::vector<std::uint32_t>> grouping;
    if (m <= options_.top_size) {
      // Tiny instance: one singleton cluster per city so the hierarchy has
      // at least one level.
      grouping.resize(m);
      for (std::uint32_t i = 0; i < m; ++i) grouping[i] = {i};
    } else {
      switch (options_.strategy) {
        case Strategy::kFixed:
          grouping = group_fixed(item_points, options_.p, rng);
          break;
        case Strategy::kSemiFlexible: {
          const auto target = static_cast<std::size_t>(std::ceil(
              2.0 * static_cast<double>(m) /
              (1.0 + static_cast<double>(options_.p))));
          grouping = group_agglomerative(item_points, item_weights,
                                         std::max<std::size_t>(target, 1),
                                         options_.p, rng);
          break;
        }
        case Strategy::kUnlimited: {
          const std::size_t target = (m + 1) / 2;
          grouping = group_agglomerative(
              item_points, item_weights, std::max<std::size_t>(target, 1),
              std::numeric_limits<std::size_t>::max(), rng);
          break;
        }
      }
    }

    if (options_.refine && options_.strategy != Strategy::kFixed &&
        grouping.size() > 1) {
      const std::size_t cap =
          options_.strategy == Strategy::kSemiFlexible
              ? options_.p
              : std::numeric_limits<std::size_t>::max();
      refine_groups(item_points, item_weights, grouping, cap);
    }

    Level level;
    level.clusters.reserve(grouping.size());
    std::vector<geo::Point> next_points;
    std::vector<std::uint32_t> next_weights;
    next_points.reserve(grouping.size());
    next_weights.reserve(grouping.size());
    for (auto& members : grouping) {
      CIM_ASSERT(!members.empty());
      Cluster cluster;
      double wsum = 0.0;
      geo::Point acc{};
      std::uint32_t cities = 0;
      for (const std::uint32_t mem : members) {
        const double w = static_cast<double>(item_weights[mem]);
        acc = acc + item_points[mem] * w;
        wsum += w;
        cities += item_weights[mem];
      }
      cluster.centroid = acc / wsum;
      cluster.city_count = cities;
      cluster.members = std::move(members);
      next_points.push_back(cluster.centroid);
      next_weights.push_back(cluster.city_count);
      level.clusters.push_back(std::move(cluster));
    }

    const std::size_t produced = level.clusters.size();
    levels_.push_back(std::move(level));
    if (produced >= m && m > options_.top_size) {
      CIM_LOG_WARN << "hierarchy level failed to reduce (" << m << " -> "
                   << produced << "); stopping";
      break;
    }
    item_points = std::move(next_points);
    item_weights = std::move(next_weights);
    if (item_points.size() <= options_.top_size) break;
  }
  CIM_ASSERT(!levels_.empty());
}

std::size_t Hierarchy::max_cluster_size() const {
  std::size_t best = 0;
  for (const Level& level : levels_) {
    for (const Cluster& c : level.clusters) {
      best = std::max(best, c.members.size());
    }
  }
  return best;
}

double Hierarchy::mean_cluster_size() const {
  std::size_t members = 0;
  std::size_t clusters = 0;
  for (const Level& level : levels_) {
    for (const Cluster& c : level.clusters) {
      members += c.members.size();
      ++clusters;
    }
  }
  return clusters ? static_cast<double>(members) /
                        static_cast<double>(clusters)
                  : 0.0;
}

std::size_t Hierarchy::total_clusters() const {
  std::size_t total = 0;
  for (const Level& level : levels_) total += level.clusters.size();
  return total;
}

std::vector<tsp::CityId> Hierarchy::cities_of(std::size_t k,
                                              std::uint32_t c) const {
  CIM_ASSERT(k < levels_.size());
  CIM_ASSERT(c < levels_[k].clusters.size());
  if (k == 0) {
    const auto& members = levels_[0].clusters[c].members;
    return {members.begin(), members.end()};
  }
  std::vector<tsp::CityId> cities;
  cities.reserve(levels_[k].clusters[c].city_count);
  for (const std::uint32_t child : levels_[k].clusters[c].members) {
    const auto sub = cities_of(k - 1, child);
    cities.insert(cities.end(), sub.begin(), sub.end());
  }
  return cities;
}

void Hierarchy::validate() const {
  const std::size_t n = instance_.size();
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    std::vector<char> seen(n, 0);
    std::size_t covered = 0;
    for (std::uint32_t c = 0; c < levels_[k].clusters.size(); ++c) {
      const auto cities = cities_of(k, c);
      CIM_ASSERT_MSG(cities.size() == levels_[k].clusters[c].city_count,
                     "cluster city_count mismatch");
      for (const tsp::CityId city : cities) {
        CIM_ASSERT_MSG(city < n && !seen[city],
                       "city repeated or out of range in level partition");
        seen[city] = 1;
        ++covered;
      }
    }
    CIM_ASSERT_MSG(covered == n, "level does not cover all cities");
    // Upper levels must reference every cluster of the level below exactly
    // once.
    if (k > 0) {
      std::vector<char> used(levels_[k - 1].clusters.size(), 0);
      for (const Cluster& c : levels_[k].clusters) {
        for (const std::uint32_t mem : c.members) {
          CIM_ASSERT_MSG(mem < used.size() && !used[mem],
                         "child cluster repeated or out of range");
          used[mem] = 1;
        }
      }
      for (const char u : used) CIM_ASSERT(u);
    }
  }
}

}  // namespace cim::cluster
