// Single-level grouping primitives used by the hierarchy builder.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.hpp"
#include "util/random.hpp"

namespace cim::cluster {

/// Groups `points` into clusters of exactly `p` members by greedy
/// seed-plus-nearest assignment (one ragged tail cluster when the count is
/// not divisible). Returns member-index lists.
std::vector<std::vector<std::uint32_t>> group_fixed(
    const std::vector<geo::Point>& points, std::size_t p, util::Rng& rng);

/// Agglomerative grouping by rounds of mutual-nearest-neighbour merging:
/// reduces `points` to at most `target_count` groups, never exceeding
/// `max_size` members per group (pass SIZE_MAX for unlimited). Weights are
/// per-point populations used for centroid updates.
std::vector<std::vector<std::uint32_t>> group_agglomerative(
    const std::vector<geo::Point>& points,
    const std::vector<std::uint32_t>& weights, std::size_t target_count,
    std::size_t max_size, util::Rng& rng);

}  // namespace cim::cluster
