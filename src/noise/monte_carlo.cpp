#include "noise/monte_carlo.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::noise {

std::vector<ErrorRatePoint> error_rate_sweep(const SramCellModel& model,
                                             const SweepOptions& options) {
  CIM_REQUIRE(options.samples > 0, "sweep needs at least one sample");
  CIM_REQUIRE(options.vdd_step > 0.0, "vdd_step must be positive");
  CIM_REQUIRE(options.vdd_start >= options.vdd_stop,
              "sweep runs from high to low supply");

  std::vector<ErrorRatePoint> points;
  util::Rng rng(options.seed);

  // Fresh cell population per sweep; each cell stores a random bit, is
  // pseudo-read once per voltage point (fresh write before each read so
  // points are independent, like the paper's per-voltage averaging).
  std::vector<std::uint64_t> cell_ids(options.samples);
  std::vector<char> written(options.samples);
  for (std::size_t i = 0; i < options.samples; ++i) {
    cell_ids[i] = rng();
    written[i] = rng.chance(0.5) ? 1 : 0;
  }

  const auto steps = static_cast<std::size_t>(
      (options.vdd_start - options.vdd_stop) / options.vdd_step + 1e-9);
  for (std::uint64_t epoch = 0; epoch <= steps; ++epoch) {
    const double vdd =
        options.vdd_start - options.vdd_step * static_cast<double>(epoch);
    ErrorRatePoint point;
    point.vdd = vdd;
    point.samples = options.samples;
    std::size_t flipped = 0;
    for (std::size_t i = 0; i < options.samples; ++i) {
      const bool value = model.settled_value(cell_ids[i], epoch, vdd,
                                             written[i] != 0);
      if (value != (written[i] != 0)) ++flipped;
    }
    point.measured =
        static_cast<double>(flipped) / static_cast<double>(options.samples);
    point.analytic = model.expected_error_rate(vdd);
    points.push_back(point);
  }
  return points;
}

}  // namespace cim::noise
