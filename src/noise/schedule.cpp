#include "noise/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace cim::noise {

AnnealSchedule::AnnealSchedule(Params params) : params_(params) {
  CIM_REQUIRE(params_.total_iterations >= 1, "schedule needs iterations");
  CIM_REQUIRE(params_.iterations_per_step >= 1,
              "iterations_per_step must be positive");
  CIM_REQUIRE(params_.vdd_step >= 0.0, "vdd_step must be non-negative");
  CIM_REQUIRE(params_.vdd_start <= params_.vdd_nominal,
              "vdd_start must not exceed nominal");
  CIM_REQUIRE(params_.lsb_start <= params_.weight_bits,
              "noisy LSBs cannot exceed weight precision");
}

std::size_t AnnealSchedule::epochs() const {
  return (params_.total_iterations + params_.iterations_per_step - 1) /
         params_.iterations_per_step;
}

SchedulePhase AnnealSchedule::at(std::size_t iteration) const {
  CIM_ASSERT(iteration < params_.total_iterations);
  SchedulePhase phase;
  phase.epoch = iteration / params_.iterations_per_step;
  phase.write_back = (iteration % params_.iterations_per_step) == 0;
  phase.vdd = std::min(
      params_.vdd_start + params_.vdd_step * static_cast<double>(phase.epoch),
      params_.vdd_nominal);
  const std::uint64_t drop = phase.epoch;
  phase.noisy_lsbs =
      drop >= params_.lsb_start
          ? 0U
          : params_.lsb_start - static_cast<unsigned>(drop);
  return phase;
}

bool AnnealSchedule::ends_noise_free() const {
  return at(params_.total_iterations - 1).noisy_lsbs == 0;
}

std::string AnnealSchedule::describe() const {
  std::ostringstream os;
  os << params_.total_iterations << " iterations, VDD "
     << params_.vdd_start * 1000.0 << "mV +" << params_.vdd_step * 1000.0
     << "mV every " << params_.iterations_per_step << " iters, "
     << params_.lsb_start << "/" << params_.weight_bits
     << " noisy LSBs initially";
  return os.str();
}

}  // namespace cim::noise
