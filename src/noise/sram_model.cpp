#include "noise/sram_model.hpp"

#include <array>
#include <bit>
#include <cmath>

#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::noise {

namespace {

/// Unit-variance draw from a centred Binomial(64, ½): (popcount − 32) / 4.
double z_from_hash(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t s = util::hash_combine(util::hash_combine(a, b), c);
  const std::uint64_t bits = util::splitmix64(s);
  return (static_cast<double>(std::popcount(bits)) - 32.0) / 4.0;
}

/// pmf of popcount(uniform 64-bit) = C(64,k) / 2^64.
const std::array<double, 65>& binomial64_pmf() {
  static const std::array<double, 65> pmf = [] {
    std::array<double, 65> out{};
    // log C(64,k) via lgamma for numeric safety.
    for (int k = 0; k <= 64; ++k) {
      const double logc = std::lgamma(65.0) - std::lgamma(k + 1.0) -
                          std::lgamma(65.0 - k);
      out[static_cast<std::size_t>(k)] =
          std::exp(logc - 64.0 * std::log(2.0));
    }
    return out;
  }();
  return pmf;
}

/// P(Z > x) for Z = (Binom(64,½) − 32)/4: tail of popcount > 32 + 4x.
double binomial_tail(double x) {
  const double cut = 32.0 + 4.0 * x;
  const auto& pmf = binomial64_pmf();
  double tail = 0.0;
  for (int k = 64; k >= 0; --k) {
    if (static_cast<double>(k) <= cut) break;
    tail += pmf[static_cast<std::size_t>(k)];
  }
  return tail;
}

}  // namespace

double SramNoiseParams::sigma_disturb() const {
  CIM_ASSERT(bl_cap_ff > 0.0);
  return disturb_base / std::sqrt(bl_cap_ff);
}

SramCellModel::SramCellModel(SramNoiseParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {
  CIM_REQUIRE(params_.sigma_vth > 0.0, "sigma_vth must be positive");
  CIM_REQUIRE(params_.snm_slope > 0.0, "snm_slope must be positive");
  CIM_REQUIRE(params_.bl_cap_ff > 0.0,
              "bit-line capacitance must be positive");
}

CellTraits SramCellModel::traits(std::uint64_t cell_id) const {
  CellTraits t;
  t.delta_vth = params_.sigma_vth * z_from_hash(seed_, cell_id, 0x7281DULL);
  std::uint64_t s = util::hash_combine(seed_, cell_id ^ 0xBEEFULL);
  t.preferred_bit = (util::splitmix64(s) & 1ULL) != 0;
  return t;
}

double SramCellModel::snm(double vdd, double delta_vth) const {
  const double ideal = params_.snm_slope * (vdd - params_.snm_v0);
  return std::max(0.0, ideal - std::abs(delta_vth));
}

double SramCellModel::flip_probability(double vdd, double delta_vth) const {
  const double margin = snm(vdd, delta_vth);
  // A cell with zero read margin cannot hold anti-preferred data through a
  // pseudo-read: it falls to its preferred state with certainty, which is
  // what drives the error rate to 50% at very low supply (Fig. 6(b)).
  if (margin <= 0.0) return 1.0;
  return binomial_tail(margin / params_.sigma_disturb());
}

bool SramCellModel::flips(std::uint64_t cell_id, std::uint64_t epoch,
                          double vdd) const {
  const double delta_vth =
      params_.sigma_vth * z_from_hash(seed_, cell_id, 0x7281DULL);
  const double margin = snm(vdd, delta_vth);
  if (margin <= 0.0) return true;  // no read margin: certain flip
  const double disturb = params_.sigma_disturb() *
                         z_from_hash(seed_ ^ 0xF11BULL, cell_id, epoch);
  return disturb > margin;
}

bool SramCellModel::is_stuck(std::uint64_t cell_id) const {
  if (params_.stuck_cell_rate <= 0.0) return false;
  std::uint64_t s = util::hash_combine(seed_ ^ 0x57DCULL, cell_id);
  const std::uint64_t bits = util::splitmix64(s);
  const double u =
      (static_cast<double>(bits >> 11) + 0.5) * 0x1.0p-53;
  return u < params_.stuck_cell_rate;
}

bool SramCellModel::settled_value(std::uint64_t cell_id, std::uint64_t epoch,
                                  double vdd, bool written) const {
  std::uint64_t s = util::hash_combine(seed_, cell_id ^ 0xBEEFULL);
  const bool preferred = (util::splitmix64(s) & 1ULL) != 0;
  // A stuck cell holds its preferred value no matter what was written or
  // how high the supply is.
  if (is_stuck(cell_id)) return preferred;
  if (written == preferred) return written;  // stable direction
  return flips(cell_id, epoch, vdd) ? preferred : written;
}

double SramCellModel::expected_error_rate(double vdd) const {
  // ΔVth takes the same 65 discrete values as the draw model, so the
  // expectation is an exact finite sum.
  const auto& pmf = binomial64_pmf();
  double acc = 0.0;
  for (int k = 0; k <= 64; ++k) {
    const double dvth =
        params_.sigma_vth * (static_cast<double>(k) - 32.0) / 4.0;
    acc += pmf[static_cast<std::size_t>(k)] * flip_probability(vdd, dvth);
  }
  // Half of random stored bits are anti-preferred.
  return 0.5 * acc;
}

}  // namespace cim::noise
