// Compact SRAM pseudo-read error model (§IV.A, Fig. 6).
//
// The paper characterises noisy-bit generation with Monte-Carlo SPICE on a
// TSMC 16 nm PDK: the word-line is asserted while the cell's supply voltage
// is lowered, shrinking the butterfly curve's static noise margin (SNM)
// until bit-line disturbance flips the storage node. We reproduce this with
// a compact analytic model:
//
//   * each cell carries a fixed threshold-voltage mismatch
//     ΔVth ~ N(0, σ_vth²) and a *preferred* storage value — the direction
//     the asymmetric latch falls towards (spatially fixed after
//     fabrication, exactly the property §IV.B exploits);
//   * the read SNM shrinks linearly with supply voltage and is eroded by
//     the mismatch magnitude:  SNM(v) = max(0, k·(v − v₀) − |ΔVth|);
//   * during a pseudo-read the bit-line injects a disturbance
//     δ ~ N(0, σ_d²) with σ_d ∝ 1/√C_BL — larger bit-line capacitance
//     filters the disturbance and sharpens the error-rate transition, as
//     the paper observes in Fig. 6(b);
//   * a cell storing its anti-preferred value flips iff δ > SNM(v); a cell
//     already holding its preferred value is stable. Flips are sticky until
//     the next write-back (the paper's "irreversible" voltage flipping).
//
// With random stored data the population error rate is
// 0.5 · E[P(δ > SNM(v, ΔVth))], a sigmoid in v that rises from ~0 at the
// 800 mV nominal supply towards 50 % at 200 mV — the shape of Fig. 6(b).
//
// Implementation notes:
//   * All per-cell randomness is counter-hashed from (model seed, cell id,
//     epoch), so the fast and bit-level storage backends reproduce
//     bit-identical error patterns without storing per-cell state.
//   * Normal draws use the popcount-binomial approximation
//     Z ≈ (popcount(hash64) − 32) / 4, i.e. a centred Binomial(64, ½)
//     scaled to unit variance. It is within ~0.3 % of the normal CDF,
//     costs one hash + one popcount per draw (the model sits on the hot
//     path of every write-back), and — unlike a true normal — admits an
//     *exact* closed form for the expected error rate, so the analytic
//     curve and the Monte-Carlo measurement in Fig. 6(b) agree to
//     sampling error.
#pragma once

#include <cstdint>

namespace cim::noise {

struct SramNoiseParams {
  double nominal_vdd = 0.80;   ///< V, 16 nm nominal supply
  double snm_slope = 0.50;     ///< V of read-SNM per V of supply
  double snm_v0 = 0.18;        ///< supply at which a perfect cell's SNM hits 0
  double sigma_vth = 0.05;     ///< V, per-cell mismatch std-dev
  double bl_cap_ff = 20.0;     ///< fF, bit-line capacitance
  double disturb_base = 0.045; ///< V·√fF, disturbance scale before C_BL filter
  /// Manufacturing defect density: fraction of bit cells stuck at a fixed
  /// value regardless of writes (hard faults, unlike the soft pseudo-read
  /// flips). 0 models a fully yielding die.
  double stuck_cell_rate = 0.0;

  /// Disturbance std-dev after bit-line filtering.
  double sigma_disturb() const;
};

/// Deterministic per-cell traits derived from (seed, cell id).
struct CellTraits {
  double delta_vth = 0.0;  ///< signed mismatch (V)
  bool preferred_bit = false;
};

class SramCellModel {
 public:
  SramCellModel() : SramCellModel(SramNoiseParams{}, 0x5EED) {}
  explicit SramCellModel(SramNoiseParams params,
                         std::uint64_t seed = 0x5EED);

  const SramNoiseParams& params() const { return params_; }
  std::uint64_t seed() const { return seed_; }

  /// Fixed fabrication traits of a cell.
  CellTraits traits(std::uint64_t cell_id) const;

  /// Read SNM at supply `vdd` for mismatch `delta_vth`; clamped at 0.
  double snm(double vdd, double delta_vth) const;

  /// Probability that one pseudo-read at `vdd` flips a cell with mismatch
  /// `delta_vth` that stores its anti-preferred value (exact under the
  /// binomial disturbance model).
  double flip_probability(double vdd, double delta_vth) const;

  /// Deterministic flip decision for (cell, epoch) at `vdd`: true iff the
  /// hashed disturbance draw exceeds the cell's SNM. Only meaningful when
  /// the stored value is anti-preferred.
  bool flips(std::uint64_t cell_id, std::uint64_t epoch, double vdd) const;

  /// The stored value of a cell after a pseudo-read settles, given the
  /// written value. Applies the stuck-at mask, then the
  /// preferred-direction rule.
  bool settled_value(std::uint64_t cell_id, std::uint64_t epoch, double vdd,
                     bool written) const;

  /// True iff the cell is a manufacturing defect (stuck at its preferred
  /// value); deterministic per cell.
  bool is_stuck(std::uint64_t cell_id) const;

  /// Population error rate for random stored data at `vdd`:
  /// 0.5 · E_ΔVth[P(δ > SNM)], exact under the binomial draw model.
  double expected_error_rate(double vdd) const;

 private:
  SramNoiseParams params_;
  std::uint64_t seed_ = 0;
};

}  // namespace cim::noise
