// Monte-Carlo characterisation of the SRAM pseudo-read error rate —
// reproduces the experiment behind Fig. 6(b): sweep the supply voltage,
// sample cells with process variation, store random data, pseudo-read and
// count flipped bits.
#pragma once

#include <cstdint>
#include <vector>

#include "noise/sram_model.hpp"

namespace cim::noise {

struct ErrorRatePoint {
  double vdd = 0.0;         ///< supply voltage (V)
  double measured = 0.0;    ///< Monte-Carlo flip fraction
  double analytic = 0.0;    ///< closed-form expected_error_rate
  std::size_t samples = 0;
};

struct SweepOptions {
  double vdd_start = 0.80;   ///< paper: 800 mV nominal down to 200 mV
  double vdd_stop = 0.20;
  double vdd_step = 0.05;
  std::size_t samples = 1000;  ///< paper: 1000 Monte-Carlo samples
  std::uint64_t seed = 42;
};

/// Runs the sweep; points are ordered from vdd_start towards vdd_stop.
std::vector<ErrorRatePoint> error_rate_sweep(const SramCellModel& model,
                                             const SweepOptions& options);

}  // namespace cim::noise
