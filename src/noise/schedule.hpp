// The annealing schedule of §IV.B / §V: weights are periodically written
// back, and each write-back epoch raises the pseudo-read supply voltage and
// shrinks the set of noisy LSBs, monotonically lowering the weight-noise
// level until all bits operate at nominal V_DD (no noise → greedy
// convergence).
//
// Paper defaults: 400 update iterations per annealing level, V_DD ramped
// from 300 mV to 580 mV in 40 mV increments every 50 iterations, 8-bit
// weights with 6 noisy LSBs initially.
#pragma once

#include <cstdint>
#include <string>

namespace cim::noise {

struct SchedulePhase {
  std::uint64_t epoch = 0;   ///< write-back epoch index
  double vdd = 0.0;          ///< pseudo-read supply for noisy LSBs (V)
  unsigned noisy_lsbs = 0;   ///< how many weight LSBs see the low supply
  bool write_back = false;   ///< true on the first iteration of the epoch
};

class AnnealSchedule {
 public:
  struct Params {
    std::size_t total_iterations = 400;
    std::size_t iterations_per_step = 50;
    double vdd_start = 0.30;   ///< V
    double vdd_step = 0.04;    ///< V per epoch
    double vdd_nominal = 0.80; ///< V, ceiling
    unsigned lsb_start = 6;    ///< noisy LSBs in the first epoch
    unsigned weight_bits = 8;
  };

  AnnealSchedule() : AnnealSchedule(Params{}) {}
  explicit AnnealSchedule(Params params);

  const Params& params() const { return params_; }
  std::size_t total_iterations() const { return params_.total_iterations; }
  std::size_t epochs() const;

  /// Schedule state at a given iteration (0-based).
  SchedulePhase at(std::size_t iteration) const;

  /// Final phase is noise-free iff the ramp reaches zero noisy LSBs.
  bool ends_noise_free() const;

  std::string describe() const;

 private:
  Params params_;
};

}  // namespace cim::noise
