#include "heuristics/sa_baseline.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tsp/neighbors.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cim::heuristics {

using tsp::CityId;
using tsp::Instance;
using tsp::Tour;

SaResult simulated_annealing(const Instance& instance, const Tour& initial,
                             const SaOptions& options) {
  const std::size_t n = instance.size();
  CIM_REQUIRE(initial.is_valid(n), "SA initial tour invalid");
  SaResult result;
  result.tour = initial;
  result.initial_length = initial.length(instance);
  result.final_length = result.initial_length;
  if (n < 4) return result;

  util::Rng rng(options.seed);
  const tsp::NeighborLists nbrs(instance, options.neighbor_k);

  std::vector<CityId>& order = result.tour.mutable_order();
  std::vector<std::uint32_t> pos = result.tour.position_of();

  // Temperature anchored to the tour's mean edge length.
  const double mean_edge =
      static_cast<double>(result.initial_length) / static_cast<double>(n);
  const double t_start = std::max(options.t_start_factor * mean_edge, 1e-9);
  const double t_end = std::max(options.t_end_factor * mean_edge, 1e-12);
  const std::size_t sweeps = std::max<std::size_t>(options.sweeps, 1);
  const double cooling =
      sweeps > 1 ? std::pow(t_end / t_start,
                            1.0 / static_cast<double>(sweeps - 1))
                 : 1.0;
  const std::size_t moves_per_sweep =
      options.moves_per_sweep ? options.moves_per_sweep : n;

  long long current = result.initial_length;

  const auto reverse_cyclic = [&](std::size_t i, std::size_t j) {
    // Same two-sided reversal as two_opt: reverse the shorter side.
    std::size_t lo = i + 1;
    std::size_t hi = j;
    const std::size_t inside = hi - lo + 1;
    if (inside * 2 <= n) {
      while (lo < hi) {
        std::swap(order[lo], order[hi]);
        pos[order[lo]] = static_cast<std::uint32_t>(lo);
        pos[order[hi]] = static_cast<std::uint32_t>(hi);
        ++lo;
        --hi;
      }
    } else {
      std::size_t outside = n - inside;
      std::size_t a = (j + 1) % n;
      std::size_t b = i;
      for (std::size_t s = 0; s < outside / 2; ++s) {
        std::swap(order[a], order[b]);
        pos[order[a]] = static_cast<std::uint32_t>(a);
        pos[order[b]] = static_cast<std::uint32_t>(b);
        a = (a + 1) % n;
        b = (b + n - 1) % n;
      }
    }
  };

  double temperature = t_start;
  for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
    for (std::size_t m = 0; m < moves_per_sweep; ++m) {
      ++result.attempted;
      // 2-opt move between a random city and one of its candidates.
      const auto a = static_cast<CityId>(rng.below(n));
      const auto cand = nbrs.of(a);
      const CityId b = cand[rng.below(cand.size())];
      std::size_t i = pos[a];
      std::size_t j = pos[b];
      if (i == j) continue;
      if (i > j) std::swap(i, j);
      if (j == i + 1 || (i == 0 && j == n - 1)) continue;

      const CityId ci = order[i];
      const CityId ci1 = order[i + 1];
      const CityId cj = order[j];
      const CityId cj1 = order[(j + 1) % n];
      const long long delta = instance.distance(ci, cj) +
                              instance.distance(ci1, cj1) -
                              instance.distance(ci, ci1) -
                              instance.distance(cj, cj1);
      const bool accept =
          delta <= 0 ||
          rng.uniform() < std::exp(-static_cast<double>(delta) / temperature);
      if (accept) {
        reverse_cyclic(i, j);
        current += delta;
        ++result.accepted;
      }
    }
    if (options.record_trace) result.trace.push_back(current);
    temperature *= cooling;
  }

  result.final_length = current;
  CIM_ASSERT_MSG(result.final_length == result.tour.length(instance),
                 "SA incremental length drifted");
  return result;
}

}  // namespace cim::heuristics
