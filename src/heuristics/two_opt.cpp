#include "heuristics/two_opt.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "util/error.hpp"
#include "util/parallel_for.hpp"

namespace cim::heuristics {

using tsp::CityId;
using tsp::Instance;
using tsp::NeighborLists;
using tsp::Tour;

namespace {

/// Cities per parallel scan chunk — fixed, so chunk boundaries (and the
/// scan result) never depend on the worker count.
constexpr std::size_t kScanGrain = 64;

/// One improving candidate found by the parallel scan: remove the edge
/// leaving `a` in direction `dir`, reconnect through `b`. delta >= 0
/// means "no move found for this city".
struct CandMove {
  CityId b = 0;
  long long delta = 0;
  std::uint8_t dir = 0;
};

}  // namespace

TwoOptResult two_opt(const Instance& instance, Tour& tour,
                     const TwoOptOptions& options) {
  const std::size_t n = instance.size();
  TwoOptResult result;
  result.initial_length = tour.length(instance);
  result.final_length = result.initial_length;
  if (n < 4) return result;

  std::unique_ptr<NeighborLists> owned;
  const NeighborLists* nbrs = options.neighbors;
  if (!nbrs) {
    owned = std::make_unique<NeighborLists>(instance, options.neighbor_k);
    nbrs = owned.get();
  }

  std::vector<CityId>& order = tour.mutable_order();
  std::vector<std::uint32_t> pos = tour.position_of();
  std::vector<char> dont_look(n, 0);

  // Reverses the shorter side of the cyclic segment between positions
  // (i+1..j) to keep each move O(min segment).
  const auto apply_move = [&](std::size_t i, std::size_t j) {
    // The move removes edges (order[i],order[i+1]) and (order[j],order[j+1])
    // and reconnects as (order[i],order[j]) + (order[i+1],order[j+1]).
    std::size_t lo = i + 1;
    std::size_t hi = j;
    CIM_ASSERT(lo <= hi);
    const std::size_t inside = hi - lo + 1;
    if (inside * 2 <= n) {
      while (lo < hi) {
        std::swap(order[lo], order[hi]);
        pos[order[lo]] = static_cast<std::uint32_t>(lo);
        pos[order[hi]] = static_cast<std::uint32_t>(hi);
        ++lo;
        --hi;
      }
      if (lo == hi) pos[order[lo]] = static_cast<std::uint32_t>(lo);
    } else {
      // Reverse the complementary (cyclic) segment instead: positions
      // j+1 .. i (mod n). The resulting cycle is identical up to
      // orientation.
      std::size_t outside = n - inside;
      std::size_t a = (j + 1) % n;
      std::size_t b = i;
      for (std::size_t s = 0; s < outside / 2; ++s) {
        std::swap(order[a], order[b]);
        pos[order[a]] = static_cast<std::uint32_t>(a);
        pos[order[b]] = static_cast<std::uint32_t>(b);
        a = (a + 1) % n;
        b = (b + n - 1) % n;
      }
    }
  };

  if (options.scan_threads > 1) {
    // Parallel candidate-move scan, serial deterministic apply: every
    // pass evaluates all cities' candidate moves against the frozen tour
    // snapshot on the shared pool (reads only; each city writes its own
    // scan slot), then applies surviving moves in ascending city order,
    // re-deriving each delta against the *current* tour so earlier
    // applies invalidate later stale candidates. Chunking is index-fixed
    // and the apply order is serial, so the outcome is identical for
    // every scan_threads > 1 and every pool width.
    std::vector<CandMove> scan(n);
    bool any_improved = true;
    while (any_improved && result.passes < options.max_passes) {
      any_improved = false;
      ++result.passes;

      util::parallel_for_chunks(
          n, kScanGrain, [&](std::size_t begin, std::size_t end) {
            for (std::size_t c = begin; c < end; ++c) {
              const CityId a = static_cast<CityId>(c);
              scan[c] = CandMove{};  // clear stale candidates
              if (dont_look[c]) continue;
              for (std::uint8_t dir = 0; dir < 2; ++dir) {
                const std::size_t pa = pos[a];
                const std::size_t pa_next =
                    dir == 0 ? (pa + 1) % n : (pa + n - 1) % n;
                const CityId a_next = order[pa_next];
                const long long d_a = instance.distance(a, a_next);
                const auto cands = nbrs->of(a);
                const auto cand_d = nbrs->dist_of(a);
                for (std::size_t ci = 0; ci < cands.size(); ++ci) {
                  const CityId b = cands[ci];
                  const long long d_ab =
                      cand_d.empty() ? instance.distance(a, b) : cand_d[ci];
                  if (d_ab >= d_a) break;  // candidates sorted by distance
                  const std::size_t pb = pos[b];
                  const std::size_t pb_next =
                      dir == 0 ? (pb + 1) % n : (pb + n - 1) % n;
                  const CityId b_next = order[pb_next];
                  if (b == a_next || b_next == a) continue;
                  const long long delta =
                      d_ab + instance.distance(a_next, b_next) - d_a -
                      instance.distance(b, b_next);
                  if (delta < scan[c].delta) {
                    scan[c] = CandMove{b, delta, dir};
                  }
                }
              }
              if (scan[c].delta >= 0) dont_look[c] = 1;
            }
          });

      for (std::size_t c = 0; c < n; ++c) {
        if (scan[c].delta >= 0) continue;
        // Revalidate against the current tour: earlier applies this pass
        // may have moved either endpoint.
        const CityId a = static_cast<CityId>(c);
        const CityId b = scan[c].b;
        const std::uint8_t dir = scan[c].dir;
        const std::size_t pa = pos[a];
        const std::size_t pa_next =
            dir == 0 ? (pa + 1) % n : (pa + n - 1) % n;
        const CityId a_next = order[pa_next];
        const std::size_t pb = pos[b];
        const std::size_t pb_next =
            dir == 0 ? (pb + 1) % n : (pb + n - 1) % n;
        const CityId b_next = order[pb_next];
        if (b == a_next || b_next == a) continue;
        const long long delta = instance.distance(a, b) +
                                instance.distance(a_next, b_next) -
                                instance.distance(a, a_next) -
                                instance.distance(b, b_next);
        if (delta >= 0) continue;
        // Normalise to forward orientation for apply_move.
        std::size_t i = dir == 0 ? pa : pa_next;
        std::size_t j = dir == 0 ? pb : pb_next;
        if (i > j) std::swap(i, j);
        apply_move(i, j);
        result.final_length += delta;
        ++result.improvements;
        dont_look[a] = dont_look[a_next] = 0;
        dont_look[b] = dont_look[b_next] = 0;
        any_improved = true;
      }
    }
  } else {
    bool any_improved = true;
    while (any_improved && result.passes < options.max_passes) {
      any_improved = false;
      ++result.passes;
      for (CityId a = 0; a < n; ++a) {
        if (dont_look[a]) continue;
        bool improved_here = false;

        // Consider a as the left endpoint of a removed edge, in both tour
        // directions.
        for (int dir = 0; dir < 2 && !improved_here; ++dir) {
          const std::size_t pa = pos[a];
          const std::size_t pa_next = dir == 0 ? (pa + 1) % n
                                               : (pa + n - 1) % n;
          const CityId a_next = order[pa_next];
          const long long d_a = instance.distance(a, a_next);

          const auto cands = nbrs->of(a);
          const auto cand_d = nbrs->dist_of(a);
          for (std::size_t ci = 0; ci < cands.size(); ++ci) {
            const CityId b = cands[ci];
            const long long d_ab =
                cand_d.empty() ? instance.distance(a, b) : cand_d[ci];
            if (d_ab >= d_a) break;  // candidates sorted by distance
            const std::size_t pb = pos[b];
            const std::size_t pb_next = dir == 0 ? (pb + 1) % n
                                                 : (pb + n - 1) % n;
            const CityId b_next = order[pb_next];
            if (b == a_next || b_next == a) continue;
            const long long delta = d_ab + instance.distance(a_next, b_next) -
                                    d_a - instance.distance(b, b_next);
            if (delta < 0) {
              // Normalise to forward orientation for apply_move.
              std::size_t i = dir == 0 ? pa : pa_next;
              std::size_t j = dir == 0 ? pb : pb_next;
              if (i > j) std::swap(i, j);
              apply_move(i, j);
              result.final_length += delta;
              ++result.improvements;
              dont_look[a] = dont_look[a_next] = 0;
              dont_look[b] = dont_look[b_next] = 0;
              improved_here = true;
              any_improved = true;
              break;
            }
          }
        }
        if (!improved_here) dont_look[a] = 1;
      }
    }
  }

  CIM_ASSERT_MSG(result.final_length == tour.length(instance),
                 "incremental 2-opt length drifted from recomputed length");
  return result;
}

}  // namespace cim::heuristics
